/**
 * @file
 * Tests of the multi-level cost composition (Sec. 5), the parallel
 * adjustments (Sec. 7), capacity checking, and parallel-split
 * enumeration.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "model/multi_level.hh"
#include "model/parallel_model.hh"
#include "model/pruned_classes.hh"

namespace mopt {
namespace {

ConvProblem
prob()
{
    ConvProblem p;
    p.name = "ml";
    p.n = 1;
    p.k = 64;
    p.c = 32;
    p.r = 3;
    p.s = 3;
    p.h = 28;
    p.w = 28;
    return p;
}

MultiLevelConfig
config(const ConvProblem &p)
{
    MultiLevelConfig cfg;
    const Permutation perm = Permutation::parse("kcrsnhw");
    for (int l = 0; l < NumMemLevels; ++l)
        cfg.level[static_cast<std::size_t>(l)].perm = perm;
    cfg.level[LvlReg].perm = Permutation::parse("nhwkcrs");
    cfg.level[LvlReg].tiles = {1, 16, 1, 1, 1, 1, 6};
    cfg.level[LvlL1].tiles = {1, 16, 8, 3, 3, 2, 12};
    cfg.level[LvlL2].tiles = {1, 32, 16, 3, 3, 7, 28};
    cfg.level[LvlL3].tiles = {1, 64, 32, 3, 3, 14, 28};
    (void)p;
    return cfg;
}

TEST(MultiLevel, BreakdownIsConsistent)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    const CostBreakdown cb =
        evalMultiLevel(config(p), p, m, false, DivMode::Continuous);

    for (int l = 0; l < NumMemLevels; ++l) {
        EXPECT_GT(cb.volume_words[static_cast<std::size_t>(l)], 0.0);
        EXPECT_GT(cb.seconds[static_cast<std::size_t>(l)], 0.0);
    }
    EXPECT_GE(cb.total_seconds, cb.compute_seconds);
    EXPECT_GE(cb.total_seconds,
              cb.seconds[static_cast<std::size_t>(cb.bottleneck)] -
                  1e-15);
    for (int l = 0; l < NumMemLevels; ++l)
        EXPECT_LE(cb.seconds[static_cast<std::size_t>(l)],
                  cb.seconds[static_cast<std::size_t>(cb.bottleneck)] +
                      1e-15);
    EXPECT_NEAR(cb.gflops, p.flops() / cb.total_seconds / 1e9, 1e-6);
}

TEST(MultiLevel, VolumesShrinkAsCacheTilesGrow)
{
    // Larger L2 tiles -> fewer L3-to-L2 transfers of L3-resident data.
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    MultiLevelConfig small = config(p);
    MultiLevelConfig big = config(p);
    big.level[LvlL2].tiles[DimK] = 64;
    const auto cb_small =
        evalMultiLevel(small, p, m, false, DivMode::Continuous);
    const auto cb_big =
        evalMultiLevel(big, p, m, false, DivMode::Continuous);
    // Growing the enclosing L2 tile cannot increase L1-level traffic
    // per word and reduces the k-replication of In at L2.
    EXPECT_LE(cb_big.volume_words[LvlL2],
              cb_small.volume_words[LvlL2] + 1e-6);
}

TEST(MultiLevel, OuterVolumeBoundedByInner)
{
    // Traffic at an outer boundary never exceeds the inner boundary's
    // (every word entering L1 came through L2, etc.) for nested tiles.
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    const auto cb =
        evalMultiLevel(config(p), p, m, false, DivMode::Continuous);
    EXPECT_LE(cb.volume_words[LvlL2], cb.volume_words[LvlL1] * 1.01);
    EXPECT_LE(cb.volume_words[LvlL3], cb.volume_words[LvlL2] * 1.01);
}

TEST(MultiLevel, ParallelReducesPredictedTime)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    MultiLevelConfig cfg = config(p);
    const auto seq = evalMultiLevel(cfg, p, m, false, DivMode::Ceil);
    cfg.par = {1, 8, 1, 1, 1, 1, 1};
    const auto par = evalMultiLevel(cfg, p, m, true, DivMode::Ceil);
    EXPECT_LT(par.total_seconds, seq.total_seconds);
    EXPECT_LT(par.compute_seconds, seq.compute_seconds);
}

TEST(MultiLevel, PerCoreL3Tile)
{
    MultiLevelConfig cfg = config(prob());
    cfg.par = {1, 4, 1, 1, 1, 2, 1};
    const TileVec pt = perCoreL3Tile(cfg);
    EXPECT_DOUBLE_EQ(pt[DimK], 16.0);
    EXPECT_DOUBLE_EQ(pt[DimH], 7.0);
    EXPECT_DOUBLE_EQ(pt[DimW], 28.0);
}

TEST(MultiLevel, CapacityViolationDetectsOversizedTiles)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    MultiLevelConfig cfg = config(p);
    EXPECT_DOUBLE_EQ(capacityViolation(cfg, p, m), 0.0);
    cfg.level[LvlL1].tiles = {1, 64, 32, 3, 3, 28, 28}; // way over 8K words
    EXPECT_GT(capacityViolation(cfg, p, m), 0.0);
}

TEST(MultiLevel, ClampNestingRepairsOrder)
{
    const ConvProblem p = prob();
    MultiLevelConfig cfg = config(p);
    cfg.level[LvlL1].tiles[DimK] = 128.0; // exceeds L2 tile and extent
    cfg.clampNesting(problemExtents(p));
    EXPECT_LE(cfg.level[LvlL1].tiles[DimK], cfg.level[LvlL2].tiles[DimK]);
    EXPECT_LE(cfg.level[LvlL3].tiles[DimK], 64.0);
}

TEST(ParallelModel, ExactSplitsForEightCores)
{
    const IntTileVec l3{1, 64, 32, 3, 3, 14, 28};
    const auto splits = parallelSplits(8, l3);
    ASSERT_FALSE(splits.empty());
    for (const auto &s : splits) {
        std::int64_t prod = 1;
        for (std::int64_t f : s)
            prod *= f;
        EXPECT_EQ(prod, 8);
        EXPECT_EQ(s[DimC], 1);
        EXPECT_EQ(s[DimR], 1);
        EXPECT_EQ(s[DimS], 1);
        EXPECT_LE(s[DimK], 64);
        EXPECT_LE(s[DimH], 14);
    }
    // (1,8,1,1,1,1,1) must be present: k split by 8.
    bool found_k8 = false;
    for (const auto &s : splits)
        found_k8 |= s[DimK] == 8 && s[DimH] == 1 && s[DimW] == 1 &&
                    s[DimN] == 1;
    EXPECT_TRUE(found_k8);
}

TEST(ParallelModel, FallbackWhenNoExactFactorization)
{
    // Extents too small for 18 cores in any exact factorization.
    const IntTileVec l3{1, 2, 1, 1, 1, 2, 2};
    const auto splits = parallelSplits(18, l3);
    ASSERT_FALSE(splits.empty());
    std::int64_t best = 0;
    for (const auto &s : splits) {
        std::int64_t prod = 1;
        for (std::int64_t f : s)
            prod *= f;
        best = std::max(best, prod);
    }
    EXPECT_GT(best, 1);
    EXPECT_LT(best, 18);
}

TEST(ParallelModel, BestSplitBeatsWorstSplit)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    MultiLevelConfig cfg = config(p);
    const IntTileVec best = bestParallelSplit(cfg, p, m);

    double best_time, worst_time = 0.0;
    cfg.par = best;
    best_time = evalMultiLevel(cfg, p, m, true, DivMode::Ceil).total_seconds;
    for (const auto &s :
         parallelSplits(m.cores, floorTiles(cfg.level[LvlL3].tiles))) {
        cfg.par = s;
        worst_time = std::max(
            worst_time,
            evalMultiLevel(cfg, p, m, true, DivMode::Ceil).total_seconds);
    }
    EXPECT_LE(best_time, worst_time + 1e-12);
}

TEST(ExecConfigRoundTrip, ModelConversionPreservesValues)
{
    const ConvProblem p = prob();
    MultiLevelConfig cfg = config(p);
    cfg.par = {1, 2, 1, 1, 1, 2, 2};
    const ExecConfig e = ExecConfig::fromModel(cfg);
    const MultiLevelConfig back = e.toModel();
    for (int l = 0; l < NumMemLevels; ++l)
        for (int d = 0; d < NumDims; ++d)
            EXPECT_DOUBLE_EQ(
                back.level[static_cast<std::size_t>(l)]
                    .tiles[static_cast<std::size_t>(d)],
                cfg.level[static_cast<std::size_t>(l)]
                    .tiles[static_cast<std::size_t>(d)]);
    EXPECT_EQ(back.par, cfg.par);
    EXPECT_EQ(back.totalParallelism(), 8);
}

} // namespace
} // namespace mopt
