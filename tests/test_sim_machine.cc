/**
 * @file
 * Tests of the simulated testbed (cachesim/sim_machine): capacity
 * scaling, sequential/parallel traffic accounting, chunk sampling,
 * and agreement with the analytic model's bandwidth composition.
 */

#include <gtest/gtest.h>

#include "cachesim/sim_machine.hh"
#include "machine/machine.hh"
#include "model/multi_level.hh"
#include "optimizer/mopt_optimizer.hh"

namespace mopt {
namespace {

ConvProblem
prob()
{
    ConvProblem p;
    p.name = "simt";
    p.n = 1;
    p.k = 16;
    p.c = 8;
    p.r = 3;
    p.s = 3;
    p.h = 12;
    p.w = 12;
    return p;
}

ExecConfig
config(const ConvProblem &p)
{
    ExecConfig cfg;
    cfg.perm[LvlReg] = microkernelPermutation();
    cfg.tiles[LvlReg] = {1, 8, 1, 1, 1, 1, 6};
    for (int l = LvlL1; l <= LvlL3; ++l) {
        cfg.perm[static_cast<std::size_t>(l)] =
            Permutation::parse("kcrsnhw");
        cfg.tiles[static_cast<std::size_t>(l)] = problemExtents(p);
    }
    cfg.tiles[LvlL1] = {1, 8, 2, 3, 3, 2, 6};
    cfg.tiles[LvlL2] = {1, 16, 4, 3, 3, 6, 12};
    return cfg;
}

TEST(ScaledMachine, DividesCapacitiesKeepsBandwidths)
{
    const MachineSpec base = i7_9700k();
    const MachineSpec s = scaledMachine(base, 32);
    EXPECT_EQ(s.capacityWords(LvlL1), base.capacityWords(LvlL1) / 32);
    EXPECT_EQ(s.capacityWords(LvlL3), base.capacityWords(LvlL3) / 32);
    for (int l = 0; l < NumMemLevels; ++l) {
        EXPECT_DOUBLE_EQ(s.bandwidth(l, false), base.bandwidth(l, false));
        EXPECT_DOUBLE_EQ(s.bandwidth(l, true), base.bandwidth(l, true));
    }
    EXPECT_EQ(s.cores, base.cores);
    EXPECT_EQ(s.vec_lanes, base.vec_lanes);
}

TEST(ScaledMachine, FloorsAndKeepsOrderingForHugeDivisors)
{
    const MachineSpec s = scaledMachine(i7_9700k(), 1 << 20);
    EXPECT_NO_THROW(s.validate());
    EXPECT_LT(s.capacityWords(LvlL1), s.capacityWords(LvlL2));
    EXPECT_LT(s.capacityWords(LvlL2), s.capacityWords(LvlL3));
}

TEST(ScaledMachine, DivisorOneIsIdentityOnCapacities)
{
    const MachineSpec base = tinyTestMachine();
    const MachineSpec s = scaledMachine(base, 1);
    for (int l = 0; l < NumMemLevels; ++l)
        EXPECT_EQ(s.capacityWords(l), base.capacityWords(l));
}

TEST(SimulateTime, SequentialBreakdownIsConsistent)
{
    const ConvProblem p = prob();
    const MachineSpec m = tinyTestMachine();
    const SimTimeBreakdown t = simulateTime(p, config(p), m, false);

    EXPECT_EQ(t.active_cores, 1);
    EXPECT_GT(t.volume_words[LvlReg], 0.0);
    for (int l = 0; l < NumMemLevels; ++l)
        EXPECT_GE(t.seconds[static_cast<std::size_t>(l)], 0.0);
    EXPECT_GE(t.total_seconds, t.compute_seconds);
    EXPECT_GE(t.total_seconds,
              t.seconds[static_cast<std::size_t>(t.bottleneck)] - 1e-18);
    EXPECT_NEAR(t.gflops, p.flops() / t.total_seconds / 1e9, 1e-6);
    // Register references: per (c,r,s) step the microkernel loads kb
    // kernel words and wb input words for kb*wb MACs, so the stream
    // has at least macs * (1/kb + 1/wb) references plus the Out
    // spills — far more than macs/8 for the 8x6 register tile here.
    EXPECT_GE(t.volume_words[LvlReg],
              static_cast<double>(p.macs()) / 8.0);
}

TEST(SimulateTime, SequentialMatchesRawTrace)
{
    const ConvProblem p = prob();
    const MachineSpec m = tinyTestMachine();
    const ExecConfig cfg = config(p);
    const SimTimeBreakdown t = simulateTime(p, cfg, m, false);
    const TraceStats ts = simulateConvTrace(p, cfg, m);
    EXPECT_DOUBLE_EQ(t.volume_words[LvlL1],
                     static_cast<double>(ts.level_words[0]));
    EXPECT_DOUBLE_EQ(t.volume_words[LvlL3],
                     static_cast<double>(ts.level_words[2]));
}

TEST(SimulateTime, ParallelUsesChunksAndReducesTime)
{
    const ConvProblem p = prob();
    const MachineSpec m = tinyTestMachine(); // 2 cores
    ExecConfig cfg = config(p);
    cfg.par[DimK] = 2;

    const SimTimeBreakdown seq = simulateTime(p, config(p), m, false);
    const SimTimeBreakdown par = simulateTime(p, cfg, m, true);
    EXPECT_EQ(par.active_cores, 2);
    // Splitting k across 2 cores halves each core's compute.
    EXPECT_LT(par.compute_seconds, seq.compute_seconds);
    EXPECT_GT(par.volume_words[LvlL3], 0.0);
}

TEST(SimulateTime, SharedL3DeduplicatesAcrossCores)
{
    // Under an h-split both cores read the whole kernel; the shared
    // L3 fetches it from memory once, so DRAM traffic stays near the
    // sequential compulsory volume instead of doubling the kernel.
    ConvProblem p = prob();
    p.h = 12;
    const MachineSpec m = tinyTestMachine();
    ExecConfig cfg = config(p);
    cfg.par[DimH] = 2;

    const SimTimeBreakdown seq = simulateTime(p, config(p), m, false);
    const SimTimeBreakdown par = simulateTime(p, cfg, m, true);
    // Shared-tensor dedup: parallel memory traffic within 1.5x of
    // sequential (halo overlap only), far below the 2x a private-L3
    // model would charge for the replicated kernel.
    EXPECT_LT(par.volume_words[LvlL3],
              1.5 * seq.volume_words[LvlL3] + 16.0);
}

TEST(SimulateTime, AgreesWithAnalyticModelOnBottleneckScale)
{
    // The analytic model and the simulated testbed share bandwidth
    // accounting; on a config satisfying the model's assumptions the
    // predicted and simulated memory-boundary volumes agree within a
    // small factor.
    const ConvProblem p = prob();
    const MachineSpec m = tinyTestMachine();
    const ExecConfig cfg = config(p);
    const SimTimeBreakdown sim = simulateTime(p, cfg, m, false);
    const CostBreakdown model = evalMultiLevel(cfg, p, m, false);
    EXPECT_LT(sim.volume_words[LvlL3], 3.0 * model.volume_words[LvlL3]);
    EXPECT_GT(sim.volume_words[LvlL3], model.volume_words[LvlL3] / 3.0);
}

TEST(SimulateTime, LineGranularityIncreasesMemoryTraffic)
{
    const ConvProblem p = prob();
    const MachineSpec m = tinyTestMachine();
    const SimTimeOptions unit;
    SimTimeOptions lines;
    lines.line_words = 8;
    const SimTimeBreakdown a = simulateTime(p, config(p), m, false, unit);
    const SimTimeBreakdown b =
        simulateTime(p, config(p), m, false, lines);
    EXPECT_GE(b.volume_words[LvlL3], a.volume_words[LvlL3]);
}

} // namespace
} // namespace mopt
