/**
 * @file
 * Correctness tests of the tiled executor against the naive reference:
 * the microkernel fast/fallback paths, arbitrary sampled tilings
 * (property test), strides, partial tiles, and parallel execution.
 */

#include <gtest/gtest.h>

#include "baselines/grid_sampler.hh"
#include "common/rng.hh"
#include "common/timer.hh"
#include "conv/reference.hh"
#include "conv/workloads.hh"
#include "exec/conv_exec.hh"
#include "exec/loop_nest.hh"
#include "exec/measure.hh"
#include "machine/machine.hh"
#include "optimizer/mopt_optimizer.hh"

namespace mopt {
namespace {

/** Tolerance for float accumulation-order differences. */
constexpr double kTol = 2e-3;

void
expectMatchesReference(const ConvProblem &p, const ExecConfig &cfg,
                       int threads = 1, std::uint64_t seed = 5)
{
    Rng rng(seed);
    Tensor4 in = makeInput(p), ker = makeKernel(p);
    in.fillRandom(rng);
    ker.fillRandom(rng);

    Tensor4 expected = makeOutput(p);
    referenceConv(p, in, ker, expected);

    Tensor4 got = makeOutput(p);
    const ExecStats st = runConv(p, in, ker, got, cfg, threads);
    EXPECT_GT(st.seconds, 0.0);
    EXPECT_LT(Tensor4::maxAbsDiff(expected, got), kTol)
        << p.summary() << "\n"
        << cfg.str();
}

TEST(LoopNest, WalkerCoversRegionExactlyOnce)
{
    ConvProblem p;
    p.n = 2;
    p.k = 5;
    p.c = 3;
    p.r = 1;
    p.s = 1;
    p.h = 4;
    p.w = 7;
    ExecConfig cfg = defaultConfig(p);
    cfg.tiles[LvlL3] = {1, 2, 2, 1, 1, 3, 4}; // partial tiles everywhere

    std::vector<int> seen(static_cast<std::size_t>(
                              p.n * p.k * p.c * p.h * p.w),
                          0);
    walkTilesAtLevel(cfg, LvlL3, fullRegion(p), [&](const TileBounds &t) {
        for (std::int64_t n = t.lo[DimN]; n < t.hi[DimN]; ++n)
            for (std::int64_t k = t.lo[DimK]; k < t.hi[DimK]; ++k)
                for (std::int64_t c = t.lo[DimC]; c < t.hi[DimC]; ++c)
                    for (std::int64_t h = t.lo[DimH]; h < t.hi[DimH];
                         ++h)
                        for (std::int64_t w = t.lo[DimW];
                             w < t.hi[DimW]; ++w)
                            seen[static_cast<std::size_t>(
                                ((((n * p.k) + k) * p.c + c) * p.h + h) *
                                    p.w +
                                w)]++;
    });
    for (int s : seen)
        EXPECT_EQ(s, 1);
}

TEST(LoopNest, SplitRegionPartitionsExactly)
{
    TileBounds region;
    region.lo = {0, 0, 0, 0, 0, 0, 0};
    region.hi = {1, 64, 8, 3, 3, 14, 28};
    const IntTileVec par{1, 4, 1, 1, 1, 2, 1};
    const auto chunks = splitRegion(region, par);
    ASSERT_EQ(chunks.size(), 8u);
    std::int64_t total = 0;
    for (const auto &c : chunks) {
        std::int64_t vol = 1;
        for (int d = 0; d < NumDims; ++d)
            vol *= c.extent(static_cast<Dim>(d));
        total += vol;
    }
    std::int64_t expect = 1;
    for (int d = 0; d < NumDims; ++d)
        expect *= region.extent(static_cast<Dim>(d));
    EXPECT_EQ(total, expect);
}

TEST(LoopNest, SplitClampsToExtent)
{
    TileBounds region;
    region.lo = {0, 0, 0, 0, 0, 0, 0};
    region.hi = {1, 2, 1, 1, 1, 1, 1};
    const IntTileVec par{1, 8, 1, 1, 1, 1, 1}; // only 2 fit
    EXPECT_EQ(splitRegion(region, par).size(), 2u);
}

TEST(ConvExec, DefaultConfigMatchesReference)
{
    ConvProblem p;
    p.name = "dflt";
    p.n = 2;
    p.k = 20; // forces a scalar edge block (20 = 16 + 4)
    p.c = 5;
    p.r = 3;
    p.s = 3;
    p.h = 9;
    p.w = 11;
    expectMatchesReference(p, defaultConfig(p));
}

TEST(ConvExec, StrideTwoMatchesReference)
{
    ConvProblem p;
    p.name = "s2";
    p.n = 1;
    p.k = 16;
    p.c = 4;
    p.r = 3;
    p.s = 3;
    p.h = 8;
    p.w = 8;
    p.stride = 2;
    expectMatchesReference(p, defaultConfig(p));
}

TEST(ConvExec, OneByOneKernelMatchesReference)
{
    ConvProblem p;
    p.name = "1x1";
    p.n = 1;
    p.k = 32;
    p.c = 16;
    p.r = 1;
    p.s = 1;
    p.h = 10;
    p.w = 10;
    expectMatchesReference(p, defaultConfig(p));
}

TEST(ConvExec, ParallelMatchesSequential)
{
    ConvProblem p;
    p.name = "par";
    p.n = 1;
    p.k = 32;
    p.c = 8;
    p.r = 3;
    p.s = 3;
    p.h = 12;
    p.w = 12;
    ExecConfig cfg = defaultConfig(p);
    cfg.par = {1, 2, 1, 1, 1, 2, 1};

    Rng rng(6);
    Tensor4 in = makeInput(p), ker = makeKernel(p);
    in.fillRandom(rng);
    ker.fillRandom(rng);
    Tensor4 seq = makeOutput(p), par = makeOutput(p);
    runConv(p, in, ker, seq, cfg, 1);
    runConv(p, in, ker, par, cfg, 4);
    // Same per-element accumulation order: results are bit-identical.
    EXPECT_DOUBLE_EQ(Tensor4::maxAbsDiff(seq, par), 0.0);
}

/** Property: arbitrary sampled tilings compute the same result. */
class SampledConfigCorrectness : public ::testing::TestWithParam<int>
{
};

TEST_P(SampledConfigCorrectness, MatchesReference)
{
    Rng rng(500 + static_cast<std::uint64_t>(GetParam()));
    ConvProblem p;
    p.name = "prop";
    p.n = static_cast<std::int64_t>(rng.uniformInt(1, 2));
    p.k = rng.uniformInt(3, 40);
    p.c = rng.uniformInt(1, 12);
    p.r = rng.uniformInt(1, 3);
    p.s = rng.uniformInt(1, 3);
    p.h = rng.uniformInt(2, 14);
    p.w = rng.uniformInt(2, 14);
    p.stride = rng.uniform01() < 0.3 ? 2 : 1;

    const MachineSpec m = tinyTestMachine();
    SamplerOptions sopts;
    sopts.fit_capacity = false; // exercise wild tilings too
    const ExecConfig cfg = sampleConfig(p, m, rng, sopts);
    expectMatchesReference(p, cfg, 1,
                           600 + static_cast<std::uint64_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(RandomTilings, SampledConfigCorrectness,
                         ::testing::Range(0, 16));

/** Downscaled Table-1 operators end to end. */
class WorkloadCorrectness
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadCorrectness, DownscaledMatchesReference)
{
    const ConvProblem p = workloadByName(GetParam()).downscaled(14, 32);
    Rng rng(9);
    const ExecConfig cfg =
        sampleConfig(p, tinyTestMachine(), rng, SamplerOptions());
    expectMatchesReference(p, cfg);
}

INSTANTIATE_TEST_SUITE_P(Table1, WorkloadCorrectness,
                         ::testing::Values("Y0", "Y5", "Y12", "R1", "R3",
                                           "R10", "M1", "M2", "M9"));

/** Grouped convolution through the lifted executor: every group runs
 *  the same tiled loop nest over its own k/c slice. */
class GroupedCorrectness : public ::testing::TestWithParam<int>
{
};

TEST_P(GroupedCorrectness, MatchesReference)
{
    ConvProblem p;
    p.name = "grp";
    p.n = 2;
    p.k = 24; // 24/8 = 3 per group: forces the scalar edge path
    p.c = 16;
    p.r = 3;
    p.s = 3;
    p.h = 9;
    p.w = 9;
    p.groups = GetParam();
    p.validate();
    expectMatchesReference(p, defaultConfig(p));
}

INSTANTIATE_TEST_SUITE_P(Groups, GroupedCorrectness,
                         ::testing::Values(1, 2, 4, 8));

TEST(ConvExec, DepthwiseMatchesReference)
{
    ConvProblem p;
    p.name = "dw";
    p.n = 1;
    p.k = 16;
    p.c = 16;
    p.r = 3;
    p.s = 3;
    p.h = 10;
    p.w = 10;
    p.groups = 16; // one channel per group
    p.validate();
    expectMatchesReference(p, defaultConfig(p));
}

TEST(ConvExec, GroupedSampledTilingsMatchReference)
{
    // Wild tilings whose K/C tiles don't divide the per-group extents:
    // the walker must clamp every tile inside its group slice.
    ConvProblem p;
    p.name = "grpprop";
    p.n = 1;
    p.k = 32;
    p.c = 8;
    p.r = 3;
    p.s = 3;
    p.h = 8;
    p.w = 8;
    p.groups = 4;
    p.validate();
    for (int i = 0; i < 4; ++i) {
        Rng rng(900 + static_cast<std::uint64_t>(i));
        SamplerOptions sopts;
        sopts.fit_capacity = false;
        const ExecConfig cfg =
            sampleConfig(p, tinyTestMachine(), rng, sopts);
        expectMatchesReference(p, cfg, 1,
                               950 + static_cast<std::uint64_t>(i));
    }
}

TEST(ConvExec, GroupedParallelMatchesSequential)
{
    ConvProblem p;
    p.name = "grppar";
    p.n = 1;
    p.k = 32;
    p.c = 8;
    p.r = 3;
    p.s = 3;
    p.h = 12;
    p.w = 12;
    p.groups = 2;
    p.validate();
    ExecConfig cfg = defaultConfig(p);
    cfg.par = {1, 2, 1, 1, 1, 2, 1};

    Rng rng(7);
    Tensor4 in = makeInput(p), ker = makeKernel(p);
    in.fillRandom(rng);
    ker.fillRandom(rng);
    Tensor4 seq = makeOutput(p), par = makeOutput(p);
    runConv(p, in, ker, seq, cfg, 1);
    runConv(p, in, ker, par, cfg, 4);
    EXPECT_DOUBLE_EQ(Tensor4::maxAbsDiff(seq, par), 0.0);
}

TEST(Measure, ReportsStatistics)
{
    ConvProblem p;
    p.name = "meas";
    p.n = 1;
    p.k = 16;
    p.c = 4;
    p.r = 3;
    p.s = 3;
    p.h = 8;
    p.w = 8;
    MeasureOptions opts;
    opts.reps = 3;
    opts.warmups = 1;
    opts.flush_bytes = 1 << 20;
    const Measurement m = measureConfig(p, defaultConfig(p), opts);
    EXPECT_EQ(m.seconds.size(), 3u);
    EXPECT_GT(m.mean_gflops, 0.0);
    EXPECT_GE(m.ci95_gflops, 0.0);
    EXPECT_GT(m.mean_seconds, 0.0);
}

TEST(Measure, SampleCountIsDeterministic)
{
    // The measurement harness must be deterministic in *structure*
    // (sample counts, ordering) even though times vary run to run.
    ConvProblem p;
    p.name = "det";
    p.n = 1;
    p.k = 16;
    p.c = 4;
    p.r = 3;
    p.s = 3;
    p.h = 8;
    p.w = 8;
    MeasureOptions opts;
    opts.reps = 4;
    opts.warmups = 2;
    const Measurement a = measureConfig(p, defaultConfig(p), opts);
    const Measurement b = measureConfig(p, defaultConfig(p), opts);
    ASSERT_EQ(a.seconds.size(), 4u);
    ASSERT_EQ(b.seconds.size(), 4u);
    for (double s : a.seconds)
        EXPECT_GT(s, 0.0);
}

TEST(Measure, TimerIsMonotone)
{
    Timer t;
    double prev = 0.0;
    for (int i = 0; i < 100; ++i) {
        const double now = t.seconds();
        EXPECT_GE(now, prev);
        prev = now;
    }
    EXPECT_GE(prev, 0.0);
}

TEST(Measure, QuickMeasureIsPositive)
{
    ConvProblem p;
    p.name = "quick";
    p.n = 1;
    p.k = 16;
    p.c = 2;
    p.r = 1;
    p.s = 1;
    p.h = 6;
    p.w = 6;
    EXPECT_GT(quickMeasureSeconds(p, defaultConfig(p)), 0.0);
}

/** MOpt's chosen configuration also computes correctly. */
TEST(ConvExec, OptimizerOutputMatchesReference)
{
    ConvProblem p;
    p.name = "optx";
    p.n = 1;
    p.k = 32;
    p.c = 8;
    p.r = 3;
    p.s = 3;
    p.h = 12;
    p.w = 12;
    OptimizerOptions o;
    o.effort = OptimizerOptions::Effort::Fast;
    o.parallel = true;
    o.threads = 4;
    const OptimizeOutput out = optimizeConv(p, i7_9700k(), o);
    ASSERT_FALSE(out.candidates.empty());
    expectMatchesReference(p, out.candidates.front().config, 4);
}

} // namespace
} // namespace mopt
