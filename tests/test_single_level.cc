/**
 * @file
 * Tests of the general single-level data-volume evaluator (Sec. 3)
 * against the paper's hand-derived closed forms (Sec. 4) and against
 * first-principles reasoning on small cases.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "conv/problem.hh"
#include "model/footprint.hh"
#include "model/single_level.hh"
#include "model/tile_config.hh"

namespace mopt {
namespace {

ConvProblem
makeProblem(std::int64_t n, std::int64_t k, std::int64_t c, std::int64_t r,
            std::int64_t s, std::int64_t h, std::int64_t w, int stride = 1)
{
    ConvProblem p;
    p.name = "t";
    p.n = n;
    p.k = k;
    p.c = c;
    p.r = r;
    p.s = s;
    p.h = h;
    p.w = w;
    p.stride = stride;
    return p;
}

/** A divisible test setting: N = (4, 8, 8, 3, 3, 8, 8), T divides N. */
struct Setting
{
    ConvProblem p = makeProblem(4, 8, 8, 3, 3, 8, 8);
    TileVec t{2, 4, 2, 3, 1, 4, 2};

    double nOver(Dim d) const
    {
        const auto extents = toTileVec(problemExtents(p));
        return extents[static_cast<std::size_t>(d)] /
               t[static_cast<std::size_t>(d)];
    }
    double tile(Dim d) const { return t[static_cast<std::size_t>(d)]; }
    double extent(Dim d) const
    {
        return static_cast<double>(
            problemExtents(p)[static_cast<std::size_t>(d)]);
    }
};

TEST(SingleLevel, TileCountContinuousAndCeil)
{
    Setting st;
    const TileVec outer = toTileVec(problemExtents(st.p));
    EXPECT_DOUBLE_EQ(tileCount(st.t, outer, DivMode::Continuous),
                     2.0 * 2 * 4 * 1 * 3 * 2 * 4);
    TileVec odd = st.t;
    odd[DimW] = 3; // 8/3 -> ceil 3
    EXPECT_DOUBLE_EQ(tileCount(odd, outer, DivMode::Ceil),
                     2.0 * 2 * 4 * 1 * 3 * 2 * 3);
}

/** Eq. 5: permutation <kt,ct,rt,st,nt,ht,wt> (innermost wt). */
TEST(SingleLevel, MatchesEq5InnermostWt)
{
    Setting st;
    const Permutation perm = Permutation::parse("kcrsnhw");

    const double tn = st.tile(DimN), tk = st.tile(DimK),
                 tc = st.tile(DimC), tr = st.tile(DimR),
                 ts = st.tile(DimS), th = st.tile(DimH),
                 tw = st.tile(DimW);
    const double expected =
        st.nOver(DimK) * st.nOver(DimC) * st.nOver(DimR) * st.nOver(DimS) *
        (tk * tc * tr * ts +
         st.nOver(DimN) * st.nOver(DimH) *
             (2.0 * st.nOver(DimW) * tn * tk * th * tw +
              tn * tc * (th + tr - 1.0) *
                  (st.extent(DimW) + ts - 1.0)));

    const double got = totalDataVolume(perm, st.t, st.p);
    EXPECT_NEAR(got, expected, 1e-9 * expected);
}

/** Innermost ht closed form (Sec. 4). */
TEST(SingleLevel, MatchesClosedFormInnermostHt)
{
    Setting st;
    const Permutation perm = Permutation::parse("kcrsnwh");

    const double tn = st.tile(DimN), tk = st.tile(DimK),
                 tc = st.tile(DimC), tr = st.tile(DimR),
                 ts = st.tile(DimS), th = st.tile(DimH),
                 tw = st.tile(DimW);
    const double expected =
        st.nOver(DimK) * st.nOver(DimC) * st.nOver(DimR) * st.nOver(DimS) *
        (tk * tc * tr * ts +
         st.nOver(DimN) * st.nOver(DimW) *
             (2.0 * st.nOver(DimH) * tn * tk * th * tw +
              tn * tc * (tw + ts - 1.0) *
                  (st.extent(DimH) + tr - 1.0)));

    const double got = totalDataVolume(perm, st.t, st.p);
    EXPECT_NEAR(got, expected, 1e-9 * expected);
}

/** Innermost st closed form (Sec. 4): three separate tensor terms. */
TEST(SingleLevel, MatchesClosedFormInnermostSt)
{
    Setting st;
    const Permutation perm = Permutation::parse("nkhwcrs");

    const double tn = st.tile(DimN), tk = st.tile(DimK),
                 tc = st.tile(DimC), tr = st.tile(DimR),
                 ts = st.tile(DimS), th = st.tile(DimH),
                 tw = st.tile(DimW);

    const double dv_ker = st.nOver(DimN) * st.nOver(DimK) *
                          st.nOver(DimC) * st.nOver(DimR) *
                          st.nOver(DimS) * st.nOver(DimW) *
                          st.nOver(DimH) * tk * tc * tr * ts;
    const double dv_in = st.nOver(DimN) * st.nOver(DimK) *
                         st.nOver(DimC) * st.nOver(DimR) *
                         st.nOver(DimW) * st.nOver(DimH) * tn * tc *
                         (th + tr - 1.0) *
                         (tw + st.extent(DimS) - 1.0);
    const double dv_out = 2.0 * st.nOver(DimN) * st.nOver(DimK) *
                          st.nOver(DimH) * st.nOver(DimW) * tn * tk * th *
                          tw;

    EXPECT_NEAR(tensorDataVolume(TenKer, perm, st.t,
                                 toTileVec(problemExtents(st.p)), st.p),
                dv_ker, 1e-9 * dv_ker);
    EXPECT_NEAR(tensorDataVolume(TenIn, perm, st.t,
                                 toTileVec(problemExtents(st.p)), st.p),
                dv_in, 1e-9 * dv_in);
    EXPECT_NEAR(tensorDataVolume(TenOut, perm, st.t,
                                 toTileVec(problemExtents(st.p)), st.p),
                dv_out, 1e-9 * dv_out);
}

/** Innermost kt with wt second (Sec. 4 <...,wt,kt> case). */
TEST(SingleLevel, MatchesClosedFormWtKtInnermost)
{
    Setting st;
    const Permutation perm = Permutation::parse("nchrswk");

    const double tn = st.tile(DimN), tk = st.tile(DimK),
                 tc = st.tile(DimC), tr = st.tile(DimR),
                 ts = st.tile(DimS), th = st.tile(DimH),
                 tw = st.tile(DimW);

    const double dv_out = 2.0 * st.nOver(DimN) * st.nOver(DimK) *
                          st.nOver(DimC) * st.nOver(DimR) *
                          st.nOver(DimS) * st.nOver(DimH) *
                          st.nOver(DimW) * tn * tk * th * tw;
    const double dv_ker = st.nOver(DimN) * st.nOver(DimK) *
                          st.nOver(DimC) * st.nOver(DimR) *
                          st.nOver(DimS) * st.nOver(DimW) *
                          st.nOver(DimH) * tk * tc * tr * ts;
    const double dv_in = st.nOver(DimN) * st.nOver(DimC) *
                         st.nOver(DimR) * st.nOver(DimS) *
                         st.nOver(DimH) * tn * tc * (th + tr - 1.0) *
                         (st.extent(DimW) + ts - 1.0);

    const TileVec outer = toTileVec(problemExtents(st.p));
    EXPECT_NEAR(tensorDataVolume(TenOut, perm, st.t, outer, st.p), dv_out,
                1e-9 * dv_out);
    EXPECT_NEAR(tensorDataVolume(TenKer, perm, st.t, outer, st.p), dv_ker,
                1e-9 * dv_ker);
    EXPECT_NEAR(tensorDataVolume(TenIn, perm, st.t, outer, st.p), dv_in,
                1e-9 * dv_in);
}

/** Innermost rt closed form (Sec. 4, set <{nt,kt,ht,wt},{ct,st},rt>). */
TEST(SingleLevel, MatchesClosedFormInnermostRt)
{
    Setting st;
    const Permutation perm = Permutation::parse("nkhwcsr");

    const double tn = st.tile(DimN), tk = st.tile(DimK),
                 tc = st.tile(DimC), tr = st.tile(DimR),
                 ts = st.tile(DimS), th = st.tile(DimH),
                 tw = st.tile(DimW);

    const double dv_out = 2.0 * st.nOver(DimN) * st.nOver(DimK) *
                          st.nOver(DimH) * st.nOver(DimW) * tn * tk * th *
                          tw;
    const double dv_ker = st.nOver(DimN) * st.nOver(DimK) *
                          st.nOver(DimC) * st.nOver(DimR) *
                          st.nOver(DimS) * st.nOver(DimW) *
                          st.nOver(DimH) * tk * tc * tr * ts;
    // In with rt at R_In: h-extent widened to Nr's sweep.
    const double dv_in = st.nOver(DimN) * st.nOver(DimK) *
                         st.nOver(DimC) * st.nOver(DimS) *
                         st.nOver(DimW) * st.nOver(DimH) * tn * tc *
                         (th + st.extent(DimR) - 1.0) * (tw + ts - 1.0);

    const TileVec outer = toTileVec(problemExtents(st.p));
    EXPECT_NEAR(tensorDataVolume(TenOut, perm, st.t, outer, st.p), dv_out,
                1e-9 * dv_out);
    EXPECT_NEAR(tensorDataVolume(TenKer, perm, st.t, outer, st.p), dv_ker,
                1e-9 * dv_ker);
    EXPECT_NEAR(tensorDataVolume(TenIn, perm, st.t, outer, st.p), dv_in,
                1e-9 * dv_in);
}

/** The three remaining kt-innermost cases of Sec. 4. */
TEST(SingleLevel, MatchesClosedFormHtKtInnermost)
{
    Setting st;
    const Permutation perm = Permutation::parse("ncwrshk");
    const double tn = st.tile(DimN), tc = st.tile(DimC),
                 tr = st.tile(DimR), ts = st.tile(DimS),
                 tw = st.tile(DimW);
    // DV_In^{...,ht,kt}: ht at R_In; the ht trip factor is consumed by
    // the sweep and kt (innermost, absent in In) contributes nothing.
    const double dv_in = st.nOver(DimN) * st.nOver(DimC) *
                         st.nOver(DimR) * st.nOver(DimS) *
                         st.nOver(DimW) * tn * tc *
                         (st.extent(DimH) + tr - 1.0) * (tw + ts - 1.0);
    const TileVec outer = toTileVec(problemExtents(st.p));
    EXPECT_NEAR(tensorDataVolume(TenIn, perm, st.t, outer, st.p), dv_in,
                1e-9 * dv_in);
}

TEST(SingleLevel, MatchesClosedFormStKtInnermost)
{
    Setting st;
    const Permutation perm = Permutation::parse("nchwrsk");
    const double tn = st.tile(DimN), tc = st.tile(DimC),
                 tr = st.tile(DimR), th = st.tile(DimH),
                 tw = st.tile(DimW);
    const double dv_in = st.nOver(DimN) * st.nOver(DimC) *
                         st.nOver(DimR) * st.nOver(DimH) *
                         st.nOver(DimW) * tn * tc * (th + tr - 1.0) *
                         (tw + st.extent(DimS) - 1.0);
    const TileVec outer = toTileVec(problemExtents(st.p));
    EXPECT_NEAR(tensorDataVolume(TenIn, perm, st.t, outer, st.p), dv_in,
                1e-9 * dv_in);
}

TEST(SingleLevel, MatchesClosedFormRtKtInnermost)
{
    Setting st;
    const Permutation perm = Permutation::parse("nchwsrk");
    const double tn = st.tile(DimN), tc = st.tile(DimC),
                 ts = st.tile(DimS), th = st.tile(DimH),
                 tw = st.tile(DimW);
    const double dv_in = st.nOver(DimN) * st.nOver(DimC) *
                         st.nOver(DimS) * st.nOver(DimH) *
                         st.nOver(DimW) * tn * tc *
                         (th + st.extent(DimR) - 1.0) * (tw + ts - 1.0);
    const TileVec outer = toTileVec(problemExtents(st.p));
    EXPECT_NEAR(tensorDataVolume(TenIn, perm, st.t, outer, st.p), dv_in,
                1e-9 * dv_in);
}

/**
 * Sec. 2.2's pedagogical example: matrix multiplication
 * C[i,j] += A[i,k] * B[k,j] encodes as a convolution with
 * n = h = r = s = 1 (i -> output channel, j -> output width,
 * k -> input channel), and the general CNN evaluator must reduce to
 * the paper's Eq. 3:
 *
 *   DV_{it,jt,kt} = Ni*Nj*Nk*(1/Ti + 1/Tj + 2/Nk)
 */
TEST(SingleLevel, MatmulReductionMatchesEq3)
{
    const double Ni = 24, Nj = 32, Nk = 16;
    const double Ti = 4, Tj = 8, Tk = 2;
    ConvProblem p = makeProblem(1, static_cast<std::int64_t>(Ni),
                                static_cast<std::int64_t>(Nk), 1, 1, 1,
                                static_cast<std::int64_t>(Nj));

    // Tile loops <it, jt, kt> == conv dims <k, w, c> innermost-last;
    // the unit dims can sit anywhere outside.
    const Permutation perm = Permutation::parse("nrshkwc");
    TileVec t{1, Ti, Tk, 1, 1, 1, Tj};

    const double expected = Ni * Nj * Nk * (1.0 / Ti + 1.0 / Tj) +
                            2.0 * Ni * Nj;
    const double got = totalDataVolume(perm, t, p);
    EXPECT_NEAR(got, expected, 1e-9 * expected);

    // And the Eq. 2 capacity footprint: Ti*Tk + Tj*Tk + Ti*Tj.
    EXPECT_DOUBLE_EQ(totalFootprint(t, p),
                     Ti * Tk + Tj * Tk + Ti * Tj);
}

/** Whole-problem tile: everything is loaded exactly once. */
TEST(SingleLevel, SingleTileLoadsEverythingOnce)
{
    Setting st;
    const TileVec whole = toTileVec(problemExtents(st.p));
    for (const char *ps : {"nkcrshw", "whsrckn", "kcrsnhw"}) {
        const Permutation perm = Permutation::parse(ps);
        const double dv = totalDataVolume(perm, whole, st.p);
        const double expected = tileFootprint(TenIn, whole, st.p) +
                                tileFootprint(TenKer, whole, st.p) +
                                2.0 * tileFootprint(TenOut, whole, st.p);
        EXPECT_NEAR(dv, expected, 1e-9 * expected) << ps;
    }
}

/**
 * The nt/ct-innermost permutations are dominated (Sec. 4): with the
 * same tile sizes, their cost is >= the corresponding w-innermost
 * variant.
 */
TEST(SingleLevel, InnermostNtDominatedByInnermostWt)
{
    Setting st;
    const double dv_n = totalDataVolume(Permutation::parse("kcrshwn"),
                                        st.t, st.p);
    const double dv_w = totalDataVolume(Permutation::parse("kcrsnhw"),
                                        st.t, st.p);
    EXPECT_GE(dv_n, dv_w - 1e-9);
}

/** Stride-2 input extents propagate into the In volume. */
TEST(SingleLevel, StrideAwareInputVolume)
{
    ConvProblem p = makeProblem(1, 8, 8, 3, 3, 8, 8, 2);
    TileVec t{1, 8, 8, 3, 3, 8, 2};
    const Permutation perm = Permutation::parse("kcrsnhw");
    const TileVec outer = toTileVec(problemExtents(p));
    // Innermost wt sweeps the full W: extent (Nw-1)*stride + Ts.
    const double expected_in =
        1.0 * 1.0 * ((8.0 - 1) * 2 + 3) * ((8.0 - 1) * 2 + 3) * 8.0;
    EXPECT_NEAR(tensorDataVolume(TenIn, perm, t, outer, p), expected_in,
                1e-9 * expected_in);
}

/** Ceil mode rounds partial trip counts up. */
TEST(SingleLevel, CeilModeUpperBoundsContinuous)
{
    Setting st;
    TileVec odd = st.t;
    odd[DimH] = 3; // 8/3 not integral
    odd[DimK] = 5;
    for (const char *ps : {"kcrsnhw", "nkhwcrs", "nchrswk"}) {
        const Permutation perm = Permutation::parse(ps);
        const double cont =
            totalDataVolume(perm, odd, st.p, DivMode::Continuous);
        const double ceil =
            totalDataVolume(perm, odd, st.p, DivMode::Ceil);
        EXPECT_GE(ceil, cont - 1e-9) << ps;
    }
}

/** R_A positions: spot-check the paper's Sec. 3.1 example. */
TEST(SingleLevel, InnermostPresentPositions)
{
    // vec p = <..., ct, nt>: nt innermost.
    const Permutation perm = Permutation::parse("krshwcn");
    EXPECT_EQ(perm.innermostPresentPosition(TenOut), 1); // nt
    EXPECT_EQ(perm.innermostPresentPosition(TenIn), 1);  // nt
    EXPECT_EQ(perm.innermostPresentPosition(TenKer), 2); // ct
}

} // namespace
} // namespace mopt
