/**
 * @file
 * Tests of the C code emitter: structural checks on the emitted
 * source and a full differential test that compiles the standalone
 * program with the host C compiler and compares its checksum against
 * the in-process reference.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/grid_sampler.hh"
#include "codegen/c_emitter.hh"
#include "common/rng.hh"
#include "exec/conv_exec.hh"
#include "machine/machine.hh"

namespace mopt {
namespace {

ConvProblem
prob()
{
    ConvProblem p;
    p.name = "cg";
    p.n = 1;
    p.k = 9; // not a multiple of anything convenient
    p.c = 3;
    p.r = 3;
    p.s = 3;
    p.h = 7;
    p.w = 7;
    return p;
}

/** The fixed config the committed golden files were emitted with. */
ExecConfig
goldenConfig(const ConvProblem &p)
{
    ExecConfig cfg = defaultConfig(p);
    cfg.tiles[LvlL1] = {1, 4, 2, 3, 1, 3, 5};
    cfg.tiles[LvlL2] = {1, 8, 3, 3, 2, 5, 7};
    cfg.tiles[LvlL3] = {1, 9, 3, 3, 3, 7, 7};
    return cfg;
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/** Compile @p src with @p cflags and run it, returning all stdout.
 *  Fails the test (and returns "") on compile or run errors. */
std::string
compileAndRun(const std::string &src, const std::string &tag,
              const std::string &cflags)
{
    const std::string dir = ::testing::TempDir();
    const std::string c_path = dir + "/mopt_" + tag + ".c";
    const std::string bin_path = dir + "/mopt_" + tag + "_bin";
    {
        std::ofstream f(c_path);
        EXPECT_TRUE(f.good());
        f << src;
    }
    const std::string compile = "cc " + cflags + " -o " + bin_path +
                                " " + c_path + " 2>/dev/null";
    if (std::system(compile.c_str()) != 0) {
        ADD_FAILURE() << "host C compiler rejected generated code ("
                      << cflags << ")";
        return "";
    }
    FILE *pipe = ::popen(bin_path.c_str(), "r");
    if (!pipe) {
        ADD_FAILURE() << "cannot run " << bin_path;
        return "";
    }
    std::string out;
    char buf[256];
    while (std::fgets(buf, sizeof(buf), pipe))
        out += buf;
    ::pclose(pipe);
    return out;
}

/** Parse "checksum <v>" from a program's output; NaN when absent. */
double
parseChecksum(const std::string &out)
{
    std::istringstream ss(out);
    for (std::string line; std::getline(ss, line);) {
        double v;
        if (std::sscanf(line.c_str(), "checksum %lf", &v) == 1)
            return v;
    }
    return std::nan("");
}

TEST(CEmitter, EmitsTileLoopsForEveryLevelAndDim)
{
    const ConvProblem p = prob();
    const std::string code = emitConvC(p, defaultConfig(p), "conv_test");
    EXPECT_NE(code.find("void conv_test"), std::string::npos);
    // 21 tile loops + 7 element loops.
    for (const char *v : {"n3", "k3", "w1", "h2", "c1", "r3", "s2"})
        EXPECT_NE(code.find(std::string("for (long ") + v), std::string::npos)
            << v;
    for (const char *v : {"n", "k", "c", "r", "s", "h", "w"})
        EXPECT_NE(code.find(std::string("for (long ") + v + " ="),
                  std::string::npos)
            << v;
    EXPECT_NE(code.find("out["), std::string::npos);
}

TEST(CEmitter, StandaloneProgramHasDriver)
{
    const ConvProblem p = prob();
    const std::string code =
        emitStandaloneProgram(p, defaultConfig(p));
    EXPECT_NE(code.find("int main(void)"), std::string::npos);
    EXPECT_NE(code.find("checksum"), std::string::npos);
    EXPECT_NE(code.find("lcg_next"), std::string::npos);
}

TEST(CEmitter, ChecksumReferenceIsDeterministic)
{
    const ConvProblem p = prob();
    EXPECT_DOUBLE_EQ(lcgChecksumReference(p), lcgChecksumReference(p));
}

TEST(CEmitter, CompiledProgramMatchesReference)
{
    const ConvProblem p = prob();
    ExecConfig cfg = defaultConfig(p);
    cfg.tiles[LvlL1] = {1, 4, 2, 3, 1, 3, 5}; // partial tiles
    cfg.tiles[LvlL2] = {1, 8, 3, 3, 2, 5, 7};
    cfg.tiles[LvlL3] = {1, 9, 3, 3, 3, 7, 7};

    const std::string src = emitStandaloneProgram(p, cfg);
    const std::string dir = ::testing::TempDir();
    const std::string c_path = dir + "/mopt_gen.c";
    const std::string bin_path = dir + "/mopt_gen_bin";
    {
        std::ofstream f(c_path);
        ASSERT_TRUE(f.good());
        f << src;
    }
    const std::string compile =
        "cc -O1 -o " + bin_path + " " + c_path + " 2>/dev/null";
    ASSERT_EQ(std::system(compile.c_str()), 0)
        << "host C compiler failed on generated code";

    FILE *pipe = ::popen(bin_path.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    char buf[256] = {};
    ASSERT_NE(std::fgets(buf, sizeof(buf), pipe), nullptr);
    ::pclose(pipe);

    double checksum = 0.0;
    ASSERT_EQ(std::sscanf(buf, "checksum %lf", &checksum), 1) << buf;
    const double expected = lcgChecksumReference(p);
    EXPECT_NEAR(checksum, expected,
                1e-4 * std::max(1.0, std::abs(expected)));
}

TEST(CEmitter, EmissionIsStableAcrossCalls)
{
    // Emission must be a pure function of (problem, config): repeated
    // calls are byte-identical, so goldens and caches can trust it.
    const ConvProblem p = prob();
    const ExecConfig cfg = goldenConfig(p);
    EXPECT_EQ(emitConvC(p, cfg, "conv_stable"),
              emitConvC(p, cfg, "conv_stable"));
    EXPECT_EQ(emitStandaloneProgram(p, cfg),
              emitStandaloneProgram(p, cfg));
    EXPECT_EQ(emitTimedProgram(p, cfg, 3, 1, 1 << 20),
              emitTimedProgram(p, cfg, 3, 1, 1 << 20));
}

TEST(CEmitter, MatchesGoldenDense)
{
    // Byte-for-byte against the committed golden: any change to the
    // emitted dense loop nest must be deliberate (regenerate the
    // fixture) rather than drift.
    const std::string golden =
        readFile(std::string(MOPT_TEST_DATA_DIR) +
                 "/golden_conv_dense.c");
    EXPECT_EQ(emitConvC(prob(), goldenConfig(prob()), "conv_golden"),
              golden);
}

TEST(CEmitter, MatchesGoldenGrouped)
{
    ConvProblem g;
    g.name = "cgg";
    g.n = 1;
    g.k = 8;
    g.c = 8;
    g.r = 3;
    g.s = 3;
    g.h = 6;
    g.w = 6;
    g.groups = 4;
    g.validate();
    const std::string golden =
        readFile(std::string(MOPT_TEST_DATA_DIR) +
                 "/golden_conv_grouped.c");
    EXPECT_EQ(emitConvC(g, defaultConfig(g), "conv_golden_grouped"),
              golden);
}

TEST(CEmitter, GroupedProgramMatchesReference)
{
    ConvProblem p;
    p.name = "cgrp";
    p.n = 1;
    p.k = 12;
    p.c = 8;
    p.r = 3;
    p.s = 3;
    p.h = 7;
    p.w = 7;
    p.groups = 4; // 3 output channels per group: scalar edge blocks
    p.validate();
    const std::string out = compileAndRun(
        emitStandaloneProgram(p, defaultConfig(p)), "grp", "-O1");
    const double expected = lcgChecksumReference(p);
    EXPECT_NEAR(parseChecksum(out), expected,
                1e-4 * std::max(1.0, std::abs(expected)));
}

/** Fuzzed (problem, tiling) matrix: every emitted program compiles
 *  warning-clean under -Werror and reproduces the reference checksum. */
class FuzzedEmission : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzedEmission, CompilesWerrorCleanAndMatchesReference)
{
    const int i = GetParam();
    Rng rng(3000 + static_cast<std::uint64_t>(i));
    ConvProblem p;
    p.name = "fuzz";
    p.n = static_cast<std::int64_t>(rng.uniformInt(1, 2));
    p.k = rng.uniformInt(2, 20);
    p.c = rng.uniformInt(1, 8);
    p.r = rng.uniformInt(1, 3);
    p.s = rng.uniformInt(1, 3);
    p.h = rng.uniformInt(2, 9);
    p.w = rng.uniformInt(2, 9);
    p.stride = rng.uniform01() < 0.3 ? 2 : 1;
    if (i % 3 == 0) {
        p.groups = 2; // every third case exercises the grouped lift
        p.k += p.k % 2;
        p.c += p.c % 2;
    }
    p.validate();

    SamplerOptions sopts;
    sopts.fit_capacity = false;
    const ExecConfig cfg =
        sampleConfig(p, tinyTestMachine(), rng, sopts);

    const std::string src = emitStandaloneProgram(p, cfg);
    // The same seed emits the same source: stability under fuzzing.
    EXPECT_EQ(src, emitStandaloneProgram(p, cfg));

    const std::string out = compileAndRun(
        src, "fuzz" + std::to_string(i), "-O1 -Wall -Wextra -Werror");
    const double expected = lcgChecksumReference(p);
    EXPECT_NEAR(parseChecksum(out), expected,
                1e-4 * std::max(1.0, std::abs(expected)))
        << p.summary() << "\n"
        << cfg.str();
}

INSTANTIATE_TEST_SUITE_P(Matrix, FuzzedEmission, ::testing::Range(0, 8));

TEST(CEmitter, TimedProgramReportsPerRepTimesAndChecksum)
{
    const ConvProblem p = prob();
    const std::string src =
        emitTimedProgram(p, goldenConfig(p), 3, 1, 1 << 20);
    const std::string out =
        compileAndRun(src, "timed", "-O1 -Wall -Wextra -Werror");

    int reps = 0;
    double mean = -1.0;
    std::istringstream ss(out);
    for (std::string line; std::getline(ss, line);) {
        double v;
        if (std::sscanf(line.c_str(), "rep_seconds %lf", &v) == 1) {
            EXPECT_GT(v, 0.0);
            ++reps;
        } else if (std::sscanf(line.c_str(), "mean_seconds %lf", &v) ==
                   1) {
            mean = v;
        }
    }
    EXPECT_EQ(reps, 3); // warmups are not reported
    EXPECT_GT(mean, 0.0);
    const double expected = lcgChecksumReference(p);
    EXPECT_NEAR(parseChecksum(out), expected,
                1e-4 * std::max(1.0, std::abs(expected)));
}

TEST(CEmitter, DifferentConfigsSameResult)
{
    // Two very different tilings must produce the same checksum.
    const ConvProblem p = prob();
    ExecConfig a = defaultConfig(p);
    ExecConfig b = defaultConfig(p);
    b.tiles[LvlL1] = {1, 2, 1, 1, 1, 2, 2};
    b.perm[LvlL2] = Permutation::parse("whsrckn");

    for (const ExecConfig &cfg : {a, b}) {
        const std::string src = emitStandaloneProgram(p, cfg);
        const std::string dir = ::testing::TempDir();
        const std::string c_path = dir + "/mopt_gen2.c";
        const std::string bin_path = dir + "/mopt_gen2_bin";
        {
            std::ofstream f(c_path);
            f << src;
        }
        ASSERT_EQ(std::system(("cc -O1 -o " + bin_path + " " + c_path +
                               " 2>/dev/null")
                                  .c_str()),
                  0);
        FILE *pipe = ::popen(bin_path.c_str(), "r");
        ASSERT_NE(pipe, nullptr);
        char buf[256] = {};
        ASSERT_NE(std::fgets(buf, sizeof(buf), pipe), nullptr);
        ::pclose(pipe);
        double checksum = 0.0;
        ASSERT_EQ(std::sscanf(buf, "checksum %lf", &checksum), 1);
        EXPECT_NEAR(checksum, lcgChecksumReference(p),
                    1e-4 * std::max(1.0,
                                    std::abs(lcgChecksumReference(p))));
    }
}

} // namespace
} // namespace mopt
