/**
 * @file
 * Tests of the C code emitter: structural checks on the emitted
 * source and a full differential test that compiles the standalone
 * program with the host C compiler and compares its checksum against
 * the in-process reference.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "codegen/c_emitter.hh"
#include "exec/conv_exec.hh"

namespace mopt {
namespace {

ConvProblem
prob()
{
    ConvProblem p;
    p.name = "cg";
    p.n = 1;
    p.k = 9; // not a multiple of anything convenient
    p.c = 3;
    p.r = 3;
    p.s = 3;
    p.h = 7;
    p.w = 7;
    return p;
}

TEST(CEmitter, EmitsTileLoopsForEveryLevelAndDim)
{
    const ConvProblem p = prob();
    const std::string code = emitConvC(p, defaultConfig(p), "conv_test");
    EXPECT_NE(code.find("void conv_test"), std::string::npos);
    // 21 tile loops + 7 element loops.
    for (const char *v : {"n3", "k3", "w1", "h2", "c1", "r3", "s2"})
        EXPECT_NE(code.find(std::string("for (long ") + v), std::string::npos)
            << v;
    for (const char *v : {"n", "k", "c", "r", "s", "h", "w"})
        EXPECT_NE(code.find(std::string("for (long ") + v + " ="),
                  std::string::npos)
            << v;
    EXPECT_NE(code.find("out["), std::string::npos);
}

TEST(CEmitter, StandaloneProgramHasDriver)
{
    const ConvProblem p = prob();
    const std::string code =
        emitStandaloneProgram(p, defaultConfig(p));
    EXPECT_NE(code.find("int main(void)"), std::string::npos);
    EXPECT_NE(code.find("checksum"), std::string::npos);
    EXPECT_NE(code.find("lcg_next"), std::string::npos);
}

TEST(CEmitter, ChecksumReferenceIsDeterministic)
{
    const ConvProblem p = prob();
    EXPECT_DOUBLE_EQ(lcgChecksumReference(p), lcgChecksumReference(p));
}

TEST(CEmitter, CompiledProgramMatchesReference)
{
    const ConvProblem p = prob();
    ExecConfig cfg = defaultConfig(p);
    cfg.tiles[LvlL1] = {1, 4, 2, 3, 1, 3, 5}; // partial tiles
    cfg.tiles[LvlL2] = {1, 8, 3, 3, 2, 5, 7};
    cfg.tiles[LvlL3] = {1, 9, 3, 3, 3, 7, 7};

    const std::string src = emitStandaloneProgram(p, cfg);
    const std::string dir = ::testing::TempDir();
    const std::string c_path = dir + "/mopt_gen.c";
    const std::string bin_path = dir + "/mopt_gen_bin";
    {
        std::ofstream f(c_path);
        ASSERT_TRUE(f.good());
        f << src;
    }
    const std::string compile =
        "cc -O1 -o " + bin_path + " " + c_path + " 2>/dev/null";
    ASSERT_EQ(std::system(compile.c_str()), 0)
        << "host C compiler failed on generated code";

    FILE *pipe = ::popen(bin_path.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    char buf[256] = {};
    ASSERT_NE(std::fgets(buf, sizeof(buf), pipe), nullptr);
    ::pclose(pipe);

    double checksum = 0.0;
    ASSERT_EQ(std::sscanf(buf, "checksum %lf", &checksum), 1) << buf;
    const double expected = lcgChecksumReference(p);
    EXPECT_NEAR(checksum, expected,
                1e-4 * std::max(1.0, std::abs(expected)));
}

TEST(CEmitter, DifferentConfigsSameResult)
{
    // Two very different tilings must produce the same checksum.
    const ConvProblem p = prob();
    ExecConfig a = defaultConfig(p);
    ExecConfig b = defaultConfig(p);
    b.tiles[LvlL1] = {1, 2, 1, 1, 1, 2, 2};
    b.perm[LvlL2] = Permutation::parse("whsrckn");

    for (const ExecConfig &cfg : {a, b}) {
        const std::string src = emitStandaloneProgram(p, cfg);
        const std::string dir = ::testing::TempDir();
        const std::string c_path = dir + "/mopt_gen2.c";
        const std::string bin_path = dir + "/mopt_gen2_bin";
        {
            std::ofstream f(c_path);
            f << src;
        }
        ASSERT_EQ(std::system(("cc -O1 -o " + bin_path + " " + c_path +
                               " 2>/dev/null")
                                  .c_str()),
                  0);
        FILE *pipe = ::popen(bin_path.c_str(), "r");
        ASSERT_NE(pipe, nullptr);
        char buf[256] = {};
        ASSERT_NE(std::fgets(buf, sizeof(buf), pipe), nullptr);
        ::pclose(pipe);
        double checksum = 0.0;
        ASSERT_EQ(std::sscanf(buf, "checksum %lf", &checksum), 1);
        EXPECT_NEAR(checksum, lcgChecksumReference(p),
                    1e-4 * std::max(1.0,
                                    std::abs(lcgChecksumReference(p))));
    }
}

} // namespace
} // namespace mopt
