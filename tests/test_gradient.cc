/**
 * @file
 * Tests of the differentiable evaluation layer: EvalContext parity
 * with the reference model evaluator, analytic ConvNlp gradients vs
 * independent central differences across randomized problems and
 * permutation combos, the finite-difference fallback, and end-to-end
 * determinism of the flattened parallel optimizer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "conv/workloads.hh"
#include "machine/machine.hh"
#include "model/eval_context.hh"
#include "model/multi_level.hh"
#include "model/pruned_classes.hh"
#include "optimizer/conv_nlp.hh"
#include "optimizer/mopt_optimizer.hh"
#include "solver/gradient_check.hh"

namespace mopt {
namespace {

constexpr int kNumVars = EvalContext::kNumVars;

/** Variable index of (cache level l in {L1,L2,L3}, dim d). */
std::size_t
vi(int lvl, int d)
{
    return static_cast<std::size_t>((lvl - LvlL1) * NumDims + d);
}

struct GradSetup
{
    ConvProblem p;
    MachineSpec m;
    std::array<Permutation, NumMemLevels> perms;
    TileVec reg_tiles;
    IntTileVec par;
    bool parallel;
    std::vector<double> lo, hi;
};

/**
 * A solver-shaped setup for one (problem, pruned class, parallel)
 * case: register tiles pinned by the microkernel, box bounds
 * [log reg tile, log extent] per cache level, and a simple K-split
 * for the parallel case (kept away from the per-core-share clamp).
 */
GradSetup
makeSetup(const ConvProblem &p, const PrunedClass &cls, bool parallel)
{
    GradSetup s;
    s.p = p;
    s.m = i7_9700k();
    const Permutation rep = cls.representative();
    s.perms = {microkernelPermutation(), rep, rep, rep};
    s.reg_tiles = toTileVec(microkernelTiles(p, s.m));
    s.par = {1, 1, 1, 1, 1, 1, 1};
    if (parallel)
        s.par[DimK] = std::min<std::int64_t>(s.m.cores, p.k);
    s.parallel = parallel;

    const IntTileVec extents = problemExtents(p);
    s.lo.resize(kNumVars);
    s.hi.resize(kNumVars);
    for (int l = 0; l < 3; ++l)
        for (int d = 0; d < NumDims; ++d) {
            const auto sd = static_cast<std::size_t>(d);
            s.lo[vi(LvlL1 + l, d)] = std::log(s.reg_tiles[sd]);
            s.hi[vi(LvlL1 + l, d)] =
                std::log(static_cast<double>(extents[sd]));
        }
    return s;
}

/**
 * A random interior point, nested across levels (L1 <= L2 <= L3) and
 * kept away from the box faces and from the per-core-share clamp at
 * T3_d = par_d, where the model is non-differentiable by design.
 */
std::vector<double>
interiorPoint(const GradSetup &s, Rng &rng)
{
    std::vector<double> x(kNumVars);
    for (int d = 0; d < NumDims; ++d) {
        const double lo = s.lo[vi(LvlL1, d)];
        const double hi = s.hi[vi(LvlL1, d)];
        if (hi - lo < 1e-12) {
            for (int l = 0; l < 3; ++l)
                x[vi(LvlL1 + l, d)] = lo;
            continue;
        }
        // Three ordered fractions in (0.15, 0.95) of the interval.
        double f[3];
        for (double &v : f)
            v = rng.uniformReal(0.15, 0.95);
        std::sort(f, f + 3);
        for (int l = 0; l < 3; ++l)
            x[vi(LvlL1 + l, d)] = lo + f[l] * (hi - lo);
        // Keep the L3 tile's per-core share away from the clamp.
        const auto sd = static_cast<std::size_t>(d);
        if (s.parallel && s.par[sd] > 1) {
            const double kink =
                std::log(1.5 * static_cast<double>(s.par[sd]));
            x[vi(LvlL3, d)] =
                std::max(x[vi(LvlL3, d)], std::min(kink, hi));
        }
    }
    return x;
}

TEST(EvalContext, MatchesReferenceModel)
{
    Rng rng(2024);
    const auto &classes = prunedClasses();
    for (const char *name : {"Y0", "R3", "M2"}) {
        const ConvProblem p = workloadByName(name).downscaled(28, 64);
        for (bool parallel : {false, true}) {
            const GradSetup s =
                makeSetup(p, classes[rng.index(classes.size())],
                          parallel);
            EvalContext ctx(s.p, s.m, s.perms, s.reg_tiles, s.par,
                            s.parallel);
            EvalContext::Scratch scratch;
            for (int rep = 0; rep < 4; ++rep) {
                const std::vector<double> x = interiorPoint(s, rng);
                const CostBreakdown got =
                    ctx.evalBreakdown(x.data(), scratch);

                // Reference: decode into a MultiLevelConfig and run
                // the original evaluator.
                MultiLevelConfig cfg;
                for (int l = 0; l < NumMemLevels; ++l)
                    cfg.level[static_cast<std::size_t>(l)].perm =
                        s.perms[static_cast<std::size_t>(l)];
                cfg.level[LvlReg].tiles = s.reg_tiles;
                for (int l = 0; l < 3; ++l)
                    for (int d = 0; d < NumDims; ++d)
                        cfg.level[static_cast<std::size_t>(LvlL1 + l)]
                            .tiles[static_cast<std::size_t>(d)] =
                            std::exp(x[vi(LvlL1 + l, d)]);
                cfg.par = s.par;
                const CostBreakdown want = evalMultiLevel(
                    cfg, s.p, s.m, s.parallel, DivMode::Continuous);

                for (int l = 0; l < NumMemLevels; ++l) {
                    const auto sl = static_cast<std::size_t>(l);
                    EXPECT_NEAR(got.seconds[sl] / want.seconds[sl],
                                1.0, 1e-12)
                        << name << " level " << l;
                }
                EXPECT_NEAR(got.total_seconds / want.total_seconds,
                            1.0, 1e-12);
            }
        }
    }
}

TEST(ConvNlpGradient, MatchesFiniteDifferences)
{
    Rng rng(7);
    const auto &classes = prunedClasses();

    std::vector<ConvProblem> problems;
    for (const char *name : {"Y0", "Y5", "R3", "M2"})
        problems.push_back(workloadByName(name).downscaled(28, 64));
    // Randomized shapes, including stride 2 and 1x1 kernels.
    for (int i = 0; i < 4; ++i) {
        ConvProblem p;
        p.name = "rand" + std::to_string(i);
        p.n = 1;
        p.k = 8 * rng.uniformInt(2, 16);
        p.c = 8 * rng.uniformInt(1, 8);
        p.r = p.s = (i % 2 == 0) ? 3 : 1;
        p.h = p.w = rng.uniformInt(14, 56);
        p.stride = (i == 3) ? 2 : 1;
        problems.push_back(p);
    }

    double worst = 0.0;
    for (const ConvProblem &p : problems) {
        for (bool parallel : {false, true}) {
            const PrunedClass &cls = classes[rng.index(classes.size())];
            const GradSetup s = makeSetup(p, cls, parallel);
            EvalContext ctx(s.p, s.m, s.perms, s.reg_tiles, s.par,
                            s.parallel);
            const int obj =
                static_cast<int>(rng.uniformInt(0, NumMemLevels - 1));
            const ConvNlp nlp(ctx, obj, s.lo, s.hi);
            ASSERT_TRUE(nlp.hasGradient());
            EXPECT_EQ(nlp.gradEvalCost(), 1);

            for (int rep = 0; rep < 3; ++rep) {
                const std::vector<double> x = interiorPoint(s, rng);
                const GradCheckResult r = gradientCheck(nlp, x);
                EXPECT_LE(r.max_rel_err, 1e-4)
                    << p.name << " cls=" << cls.name()
                    << " parallel=" << parallel << " obj=" << obj
                    << " worst constraint=" << r.worst_constraint
                    << " coord=" << r.worst_coord;
                worst = std::max(worst, r.max_rel_err);
            }
        }
    }
    // The closed form should be far tighter than the acceptance bound.
    EXPECT_LE(worst, 1e-4);
}

TEST(ConvNlpGradient, FallbackMatchesAnalyticPath)
{
    // A FunctionalNlp wrapping the same math must produce the same
    // values through the finite-difference fallback (gradientCheck of
    // an FD problem against itself is trivially consistent, so check
    // the fallback against the analytic problem's gradients instead).
    const ConvProblem p = workloadByName("Y0").downscaled(28, 64);
    const GradSetup s = makeSetup(p, prunedClasses()[0], false);
    EvalContext ctx(s.p, s.m, s.perms, s.reg_tiles, s.par, s.parallel);
    const ConvNlp nlp(ctx, LvlL3, s.lo, s.hi);

    FunctionalNlp fd(
        kNumVars, ConvNlp::kNumCons, s.lo, s.hi,
        [&nlp](const std::vector<double> &x, std::vector<double> &g) {
            return nlp.evalAll(x, g);
        });
    EXPECT_FALSE(fd.hasGradient());
    EXPECT_EQ(fd.gradEvalCost(), 2 * kNumVars + 1);

    Rng rng(11);
    const std::vector<double> x = interiorPoint(s, rng);
    std::vector<double> ga, gfa, ja, gb, gfb, jb;
    const double fa = nlp.evalWithGrad(x, ga, gfa, ja);
    const double fb = fd.evalWithGrad(x, gb, gfb, jb);
    EXPECT_DOUBLE_EQ(fa, fb);
    for (int i = 0; i < kNumVars; ++i) {
        const auto si = static_cast<std::size_t>(i);
        EXPECT_NEAR(gfa[si], gfb[si],
                    1e-4 * std::max(1.0, std::fabs(gfa[si])));
    }
}

TEST(Optimizer, DeterministicAcrossThreadCounts)
{
    // The flattened (combo x objective x start) fan-out must produce
    // bit-identical results regardless of scheduling: every work item
    // is independent and the reduction is sequential in job order.
    for (const char *name : {"Y0", "Y23"}) {
        const ConvProblem p = workloadByName(name).downscaled(28, 64);
        const MachineSpec m = i7_9700k();
        OptimizerOptions o1;
        o1.effort = OptimizerOptions::Effort::Fast;
        o1.parallel = true;
        o1.threads = 1;
        OptimizerOptions o4 = o1;
        o4.threads = 4;

        const OptimizeOutput a = optimizeConv(p, m, o1);
        const OptimizeOutput b = optimizeConv(p, m, o4);
        ASSERT_FALSE(a.candidates.empty());
        ASSERT_EQ(a.candidates.size(), b.candidates.size());
        EXPECT_EQ(a.solver_evals, b.solver_evals);
        EXPECT_TRUE(a.candidates.front().config ==
                    b.candidates.front().config)
            << name << "\n"
            << a.candidates.front().config.str() << "vs\n"
            << b.candidates.front().config.str();
        EXPECT_DOUBLE_EQ(a.candidates.front().predicted.total_seconds,
                         b.candidates.front().predicted.total_seconds);

        // Repeat runs with identical options are also identical.
        const OptimizeOutput c = optimizeConv(p, m, o4);
        EXPECT_TRUE(b.candidates.front().config ==
                    c.candidates.front().config);
    }
}

} // namespace
} // namespace mopt
