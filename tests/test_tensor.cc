/**
 * @file
 * Unit tests for dense tensors and the microkernel packing layout.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "tensor/packing.hh"
#include "tensor/tensor.hh"

namespace mopt {
namespace {

TEST(Tensor4, ShapeAndIndexing)
{
    Tensor4 t(2, 3, 4, 5);
    EXPECT_EQ(t.dim(0), 2);
    EXPECT_EQ(t.dim(3), 5);
    EXPECT_EQ(t.size(), 2 * 3 * 4 * 5);
    t.at(1, 2, 3, 4) = 7.0f;
    EXPECT_FLOAT_EQ(t.data()[t.size() - 1], 7.0f);
    t.at(0, 0, 0, 0) = 3.0f;
    EXPECT_FLOAT_EQ(t.data()[0], 3.0f);
}

TEST(Tensor4, RowMajorOffsets)
{
    Tensor4 t(2, 3, 4, 5);
    EXPECT_EQ(t.offset(0, 0, 0, 1), 1);
    EXPECT_EQ(t.offset(0, 0, 1, 0), 5);
    EXPECT_EQ(t.offset(0, 1, 0, 0), 20);
    EXPECT_EQ(t.offset(1, 0, 0, 0), 60);
}

TEST(Tensor4, FillAndDiff)
{
    Tensor4 a(2, 2, 2, 2), b(2, 2, 2, 2);
    a.fill(1.0f);
    b.fill(1.0f);
    EXPECT_DOUBLE_EQ(Tensor4::maxAbsDiff(a, b), 0.0);
    b.at(1, 1, 1, 1) = 3.0f;
    EXPECT_DOUBLE_EQ(Tensor4::maxAbsDiff(a, b), 2.0);
    Tensor4 c(1, 2, 2, 2);
    EXPECT_FALSE(Tensor4::sameShape(a, c));
    EXPECT_THROW(Tensor4::maxAbsDiff(a, c), FatalError);
}

TEST(Tensor4, FillRandomInRange)
{
    Rng rng(9);
    Tensor4 t(2, 3, 4, 5);
    t.fillRandom(rng);
    bool nonzero = false;
    for (std::int64_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t.data()[i], -1.0f);
        EXPECT_LT(t.data()[i], 1.0f);
        nonzero |= t.data()[i] != 0.0f;
    }
    EXPECT_TRUE(nonzero);
}

TEST(PackedKernel, RoundTripExactK)
{
    Rng rng(11);
    Tensor4 ker(16, 3, 3, 3);
    ker.fillRandom(rng);
    PackedKernel pk(ker, 8);
    EXPECT_EQ(pk.numKBlocks(), 2);
    Tensor4 back = pk.unpack();
    EXPECT_DOUBLE_EQ(Tensor4::maxAbsDiff(ker, back), 0.0);
}

TEST(PackedKernel, RoundTripPaddedK)
{
    Rng rng(12);
    Tensor4 ker(13, 2, 3, 1);
    ker.fillRandom(rng);
    PackedKernel pk(ker, 8);
    EXPECT_EQ(pk.numKBlocks(), 2);
    Tensor4 back = pk.unpack();
    EXPECT_DOUBLE_EQ(Tensor4::maxAbsDiff(ker, back), 0.0);
    // Padding lanes are zero.
    EXPECT_FLOAT_EQ(pk.lanes(1, 0, 0, 0)[7], 0.0f);
}

TEST(PackedKernel, LanesAreContiguousInK)
{
    Rng rng(13);
    Tensor4 ker(8, 1, 1, 1);
    ker.fillRandom(rng);
    PackedKernel pk(ker, 8);
    const float *lanes = pk.lanes(0, 0, 0, 0);
    for (int k = 0; k < 8; ++k)
        EXPECT_FLOAT_EQ(lanes[k], ker.at(k, 0, 0, 0));
}

TEST(PackedKernel, ElementAccessor)
{
    Rng rng(14);
    Tensor4 ker(20, 2, 2, 2);
    ker.fillRandom(rng);
    PackedKernel pk(ker, 8);
    for (std::int64_t k = 0; k < 20; ++k)
        for (std::int64_t c = 0; c < 2; ++c)
            EXPECT_FLOAT_EQ(pk.at(k, c, 1, 0), ker.at(k, c, 1, 0));
}

} // namespace
} // namespace mopt
