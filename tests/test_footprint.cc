/**
 * @file
 * Tests of the per-tensor tile footprints (Eq. 4 of the paper),
 * including stride generalization and the register budget.
 */

#include <gtest/gtest.h>

#include "model/footprint.hh"

namespace mopt {
namespace {

ConvProblem
prob(int stride = 1)
{
    ConvProblem p;
    p.n = 2;
    p.k = 16;
    p.c = 8;
    p.r = 3;
    p.s = 3;
    p.h = 12;
    p.w = 12;
    p.stride = stride;
    return p;
}

TEST(Footprint, MatchesEq4AtStrideOne)
{
    const ConvProblem p = prob();
    const TileVec t{1, 8, 4, 3, 3, 4, 6};
    EXPECT_DOUBLE_EQ(tileFootprint(TenOut, t, p), 1 * 8 * 4 * 6);
    EXPECT_DOUBLE_EQ(tileFootprint(TenKer, t, p), 8 * 4 * 3 * 3);
    // In: Tn*Tc*(Th+Tr-1)*(Tw+Ts-1).
    EXPECT_DOUBLE_EQ(tileFootprint(TenIn, t, p),
                     1.0 * 4 * (4 + 3 - 1) * (6 + 3 - 1));
    EXPECT_DOUBLE_EQ(totalFootprint(t, p),
                     1 * 8 * 4 * 6 + 8 * 4 * 9 + 4 * 6 * 8.0);
}

TEST(Footprint, StrideTwoWidensInputSlice)
{
    const ConvProblem p = prob(2);
    const TileVec t{1, 8, 4, 3, 3, 4, 6};
    // In: Tn*Tc*((Th-1)*2+Tr)*((Tw-1)*2+Ts).
    EXPECT_DOUBLE_EQ(tileFootprint(TenIn, t, p),
                     1.0 * 4 * ((4 - 1) * 2 + 3) * ((6 - 1) * 2 + 3));
    // Out and Ker are unaffected by stride.
    EXPECT_DOUBLE_EQ(tileFootprint(TenOut, t, p), 1 * 8 * 4 * 6);
    EXPECT_DOUBLE_EQ(tileFootprint(TenKer, t, p), 8 * 4 * 3 * 3);
}

TEST(Footprint, InputExtentHelper)
{
    EXPECT_DOUBLE_EQ(inputExtent(4, 3, 1), 6.0);
    EXPECT_DOUBLE_EQ(inputExtent(4, 3, 2), 9.0);
    EXPECT_DOUBLE_EQ(inputExtent(1, 7, 2), 7.0);
}

TEST(Footprint, IntegerOverloadMatches)
{
    const ConvProblem p = prob();
    const IntTileVec ti{1, 8, 4, 3, 3, 4, 6};
    const TileVec td = toTileVec(ti);
    EXPECT_DOUBLE_EQ(totalFootprint(ti, p), totalFootprint(td, p));
}

TEST(Footprint, RegisterBudgetMatchesMicrokernelScheme)
{
    const ConvProblem p = prob();
    // The paper's 6x16 AVX2 block: 12 accumulators + 2 kernel + 2 live
    // broadcast registers = 16 ymm = 128 words, exactly filling the
    // AVX2 register file.
    const TileVec reg{1, 16, 1, 1, 1, 1, 6};
    EXPECT_DOUBLE_EQ(registerFootprint(reg, p, 8),
                     96.0 + (2 + kLiveBroadcastRegs) * 8.0);

    // A single-point tile needs only its own broadcast register.
    const TileVec tiny{1, 8, 1, 1, 1, 1, 1};
    EXPECT_DOUBLE_EQ(registerFootprint(tiny, p, 8), 8.0 + (1 + 1) * 8.0);
}

TEST(Footprint, MonotoneInTileSizes)
{
    const ConvProblem p = prob();
    TileVec t{1, 8, 4, 3, 3, 4, 6};
    const double base = totalFootprint(t, p);
    for (int d = 0; d < NumDims; ++d) {
        TileVec grown = t;
        grown[static_cast<std::size_t>(d)] += 1.0;
        EXPECT_GT(totalFootprint(grown, p), base) << d;
    }
}

} // namespace
} // namespace mopt
