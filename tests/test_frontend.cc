/**
 * @file
 * Tests of the network frontend: the NetworkDef IR, the darknet .cfg
 * parser, the registry's builtin builders, grouped-conv correctness
 * in the reference implementation and the cost model, and the
 * groups/batch extensions to the cache journal and RPC protocol.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "conv/problem.hh"
#include "conv/reference.hh"
#include "conv/workloads.hh"
#include "frontend/cfg_parser.hh"
#include "frontend/network_def.hh"
#include "frontend/registry.hh"
#include "machine/machine.hh"
#include "model/multi_level.hh"
#include "optimizer/mopt_optimizer.hh"
#include "rpc/protocol.hh"
#include "service/cache_key.hh"
#include "service/solution_cache.hh"

namespace mopt {
namespace {

std::string
dataPath(const std::string &file)
{
    return std::string(MOPT_TEST_DATA_DIR) + "/" + file;
}

/** Field-by-field problem equality (operator== also compares names). */
void
expectSameProblem(const ConvProblem &a, const ConvProblem &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.c, b.c);
    EXPECT_EQ(a.r, b.r);
    EXPECT_EQ(a.s, b.s);
    EXPECT_EQ(a.h, b.h);
    EXPECT_EQ(a.w, b.w);
    EXPECT_EQ(a.stride, b.stride);
    EXPECT_EQ(a.dilation, b.dilation);
    EXPECT_EQ(a.groups, b.groups);
}

// ---------------------------------------------------------------------
// Registry: the builtin builders are the single source of truth for
// the legacy network lists.

TEST(Registry, BuildersMatchLegacyWrappers)
{
    const struct
    {
        NetworkDef (*def)();
        std::vector<ConvProblem> (*legacy)();
        std::size_t layers;
    } cases[] = {
        {resnet18Def, resnet18Network, 20},
        {vgg16Def, vgg16Network, 13},
        {yolov3Def, yolov3Network, 52},
    };
    for (const auto &tc : cases) {
        const std::vector<ConvProblem> lowered = tc.def().lower();
        const std::vector<ConvProblem> legacy = tc.legacy();
        ASSERT_EQ(lowered.size(), tc.layers);
        ASSERT_EQ(lowered.size(), legacy.size());
        for (std::size_t i = 0; i < lowered.size(); ++i)
            expectSameProblem(lowered[i], legacy[i]);
    }
}

TEST(Registry, BatchThreadsToEveryLayer)
{
    NetworkDef def = resnet18Def();
    def.batch = 8;
    for (const ConvProblem &p : def.lower())
        EXPECT_EQ(p.n, 8);
}

TEST(Registry, UnknownNameListsValidNames)
{
    try {
        networkDefByName("resnet50");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        for (const std::string &name : registeredNetworkNames())
            EXPECT_NE(msg.find(name), std::string::npos) << msg;
        EXPECT_NE(msg.find(".cfg"), std::string::npos) << msg;
    }
    // The legacy wrapper goes through the same front door.
    EXPECT_THROW(networkByName("nope"), FatalError);
}

TEST(Registry, AliasesAndCase)
{
    EXPECT_EQ(networkDefByName("ResNet-18").name, "resnet18");
    EXPECT_EQ(networkDefByName("YOLOv3").name, "yolov3");
    EXPECT_EQ(networkDefByName("darknet53").name, "yolov3");
    EXPECT_EQ(networkDefByName("vgg-16").name, "vgg16");
}

TEST(Registry, CfgPathDetection)
{
    EXPECT_TRUE(looksLikeCfgPath("model.cfg"));
    EXPECT_TRUE(looksLikeCfgPath("tests/data/tiny.cfg"));
    EXPECT_TRUE(looksLikeCfgPath("./resnet18"));
    EXPECT_FALSE(looksLikeCfgPath("resnet18"));
}

// ---------------------------------------------------------------------
// The committed tiny.cfg: round-trip through the parser and the IR's
// JSON encoding.

TEST(CfgParser, TinyCfgRoundTrip)
{
    const NetworkDef def = parseCfgFile(dataPath("tiny.cfg"));
    EXPECT_EQ(def.name, "tiny");
    EXPECT_EQ(def.batch, 1);
    ASSERT_EQ(def.layers.size(), 4u);

    // conv0: dense 3x3 "same" on the 32x32x3 input.
    EXPECT_EQ(def.layers[0].kind, LayerKind::Conv);
    EXPECT_EQ(def.layers[0].filters, 16);
    EXPECT_EQ(def.layers[0].in_c, 3);
    EXPECT_EQ(def.layers[0].in_h, 32);
    EXPECT_EQ(def.layers[0].pad, 1);

    // conv1: grouped conv after the 2x2/2 maxpool (32 -> 16 spatial).
    EXPECT_EQ(def.layers[1].kind, LayerKind::Conv);
    EXPECT_EQ(def.layers[1].groups, 8);
    EXPECT_EQ(def.layers[1].in_c, 16);
    EXPECT_EQ(def.layers[1].in_h, 16);

    // conv2: groups == filters == input channels => depthwise.
    EXPECT_EQ(def.layers[2].kind, LayerKind::Depthwise);
    EXPECT_EQ(def.layers[2].groups, 32);
    EXPECT_EQ(def.layers[2].stride, 2);

    // fc3: [connected] output=10 over the flattened 32x8x8 tensor.
    EXPECT_EQ(def.layers[3].kind, LayerKind::Matmul);
    EXPECT_EQ(def.layers[3].filters, 10);
    EXPECT_EQ(def.layers[3].in_c, 32 * 8 * 8);
    EXPECT_EQ(def.layers[3].in_h, 1);

    const std::vector<ConvProblem> net = def.lower();
    ASSERT_EQ(net.size(), 4u);
    EXPECT_EQ(net[1].groups, 8);
    EXPECT_EQ(net[2].groups, 32);
    EXPECT_EQ(net[2].h, 8); // (16 + 2*1 - 3)/2 + 1
    EXPECT_EQ(net[3].c, 2048);
}

TEST(CfgParser, NetworkDefJsonRoundTrip)
{
    const NetworkDef def = parseCfgFile(dataPath("tiny.cfg"));
    const std::string json = networkDefToJson(def);
    JsonValue v;
    ASSERT_TRUE(jsonParse(json, v)) << json;
    NetworkDef back;
    std::string err;
    ASSERT_TRUE(networkDefFromJson(v, back, &err)) << err;
    EXPECT_EQ(back.name, def.name);
    EXPECT_EQ(back.batch, 1); // Batch travels beside the payload.
    ASSERT_EQ(back.layers.size(), def.layers.size());
    back.batch = 3;
    const std::vector<ConvProblem> a = back.lower();
    NetworkDef batched = def;
    batched.batch = 3;
    const std::vector<ConvProblem> b = batched.lower();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectSameProblem(a[i], b[i]);
}

TEST(CfgParser, BatchReachesConvProblemN)
{
    const std::string text = "[net]\n"
                             "width=16\nheight=16\nchannels=4\nbatch=4\n"
                             "[convolutional]\nfilters=8\nsize=3\npad=1\n";
    const NetworkDef def = parseCfgText(text, "batch.cfg");
    EXPECT_EQ(def.batch, 4);
    for (const ConvProblem &p : def.lower())
        EXPECT_EQ(p.n, 4);
}

// ---------------------------------------------------------------------
// Malformed input: every rejection carries "source:line:" context.

void
expectParseError(const std::string &text, const std::string &needle)
{
    try {
        parseCfgText(text, "bad.cfg");
        FAIL() << "expected FatalError for: " << needle;
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message: " << e.what();
    }
}

TEST(CfgParser, RejectsBadKeyLine)
{
    // Line 2 is not key=value and not a section header.
    expectParseError("[net]\nwhat is this\n", "bad.cfg:2");
}

TEST(CfgParser, RejectsNonIntegerValue)
{
    expectParseError("[net]\nwidth=16\nheight=16\nchannels=3\n"
                     "[convolutional]\nfilters=many\n",
                     "bad.cfg:6");
}

TEST(CfgParser, RejectsZeroFilters)
{
    expectParseError("[net]\nwidth=16\nheight=16\nchannels=3\n"
                     "[convolutional]\nfilters=0\nsize=3\n",
                     "filters");
}

TEST(CfgParser, RejectsTruncatedSection)
{
    // [convolutional] with no filters= at all.
    expectParseError("[net]\nwidth=16\nheight=16\nchannels=3\n"
                     "[convolutional]\nsize=3\n",
                     "filters");
}

TEST(CfgParser, RejectsConvBeforeNet)
{
    expectParseError("[convolutional]\nfilters=8\n", "[net]");
}

TEST(CfgParser, RejectsEmptyNetwork)
{
    EXPECT_THROW(parseCfgText("[net]\nwidth=8\nheight=8\nchannels=3\n",
                              "bad.cfg"),
                 FatalError);
}

TEST(CfgParser, SkipsUnknownSectionsAndParsesOn)
{
    const std::string text = "[net]\nwidth=8\nheight=8\nchannels=4\n"
                             "[convolutional]\nfilters=8\nsize=3\npad=1\n"
                             "[yolo]\nclasses=80\nanchors=1,2,3\n"
                             "[convolutional]\nfilters=4\nsize=1\n";
    const NetworkDef def = parseCfgText(text, "skip.cfg");
    ASSERT_EQ(def.layers.size(), 2u);
    EXPECT_EQ(def.layers[1].in_c, 8); // Propagated straight past [yolo].
}

// ---------------------------------------------------------------------
// Grouped conv correctness: the reference implementation vs a dense
// conv with a block-diagonal kernel, and the descriptor's counts.

ConvProblem
groupedProb(std::int64_t groups)
{
    ConvProblem p;
    p.name = "grp";
    p.n = 2;
    p.k = 8;
    p.c = 8;
    p.r = 3;
    p.s = 3;
    p.h = 5;
    p.w = 5;
    p.groups = groups;
    return p;
}

TEST(GroupedReference, MatchesDenseBlockDiagonalKernel)
{
    for (const std::int64_t groups : {1L, 2L, 4L, 8L}) {
        const ConvProblem pg = groupedProb(groups);
        ConvProblem pd = groupedProb(1);

        Rng rng(42);
        Tensor4 in = makeInput(pg);
        in.fillRandom(rng);
        Tensor4 kg = makeKernel(pg); // [k][c/groups][r][s]
        kg.fillRandom(rng);

        // Embed the grouped kernel block-diagonally in a dense one:
        // group g couples output channels [g*kp, ...) with input
        // channels [g*cp, ...), everything else is zero.
        Tensor4 kd = makeKernel(pd); // [k][c][r][s], zero-initialized.
        const std::int64_t kp = pg.kPerGroup(), cp = pg.cPerGroup();
        for (std::int64_t k = 0; k < pg.k; ++k)
            for (std::int64_t c = 0; c < cp; ++c)
                for (std::int64_t r = 0; r < pg.r; ++r)
                    for (std::int64_t s = 0; s < pg.s; ++s)
                        kd.at(k, (k / kp) * cp + c, r, s) =
                            kg.at(k, c, r, s);

        Tensor4 og = makeOutput(pg);
        Tensor4 od = makeOutput(pd);
        referenceConv(pg, in, kg, og);
        referenceConv(pd, in, kd, od);
        ASSERT_EQ(og.size(), od.size());
        for (std::int64_t i = 0; i < og.size(); ++i)
            ASSERT_FLOAT_EQ(og.data()[i], od.data()[i])
                << "groups=" << groups << " i=" << i;
    }
}

TEST(GroupedReference, DepthwiseIsPerChannel)
{
    // groups == c == k: each output channel sees only its own input
    // channel, so scaling one input channel scales one output channel.
    ConvProblem p = groupedProb(8);
    p.k = p.c = p.groups = 8;

    Rng rng(7);
    Tensor4 in = makeInput(p);
    in.fillRandom(rng);
    Tensor4 ker = makeKernel(p);
    ker.fillRandom(rng);
    ASSERT_EQ(ker.size(), p.k * 1 * p.r * p.s);

    Tensor4 base = makeOutput(p);
    referenceConv(p, in, ker, base);

    for (std::int64_t hh = 0; hh < p.inH(); ++hh)
        for (std::int64_t ww = 0; ww < p.inW(); ++ww)
            in.at(0, 3, hh, ww) *= 2.0f;
    Tensor4 scaled = makeOutput(p);
    referenceConv(p, in, ker, scaled);

    for (std::int64_t k = 0; k < p.k; ++k)
        for (std::int64_t h = 0; h < p.h; ++h)
            for (std::int64_t w = 0; w < p.w; ++w) {
                const float expect = k == 3 ? 2.0f * base.at(0, k, h, w)
                                            : base.at(0, k, h, w);
                ASSERT_FLOAT_EQ(scaled.at(0, k, h, w), expect);
            }
}

TEST(GroupedProblem, CountsMatchLoopEnumeration)
{
    for (const std::int64_t groups : {1L, 2L, 8L}) {
        const ConvProblem p = groupedProb(groups);
        // Enumerate the MACs the reference performs.
        std::int64_t macs = 0;
        for (std::int64_t n = 0; n < p.n; ++n)
            for (std::int64_t k = 0; k < p.k; ++k)
                for (std::int64_t c = 0; c < p.cPerGroup(); ++c)
                    for (std::int64_t r = 0; r < p.r; ++r)
                        for (std::int64_t s = 0; s < p.s; ++s)
                            for (std::int64_t h = 0; h < p.h; ++h)
                                macs += p.w;
        EXPECT_EQ(p.macs(), macs) << "groups=" << groups;
        EXPECT_DOUBLE_EQ(p.flops(), 2.0 * static_cast<double>(macs));
        EXPECT_EQ(makeKernel(p).size(), p.kerSize());
    }
}

TEST(GroupedProblem, ValidateRejectsIndivisibleGroups)
{
    ConvProblem p = groupedProb(3); // 8 % 3 != 0
    EXPECT_THROW(p.validate(), FatalError);
    p = groupedProb(8);
    p.k = 4; // c divisible, k not
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(GroupedModel, CostScalesLinearlyInGroups)
{
    // A grouped problem's per-group extents equal a dense problem of
    // k/groups x c/groups channels; the model multiplies every count
    // by groups, so cost and volume must scale exactly linearly.
    const MachineSpec m = i7_9700k();
    const std::int64_t groups = 4;
    ConvProblem pg = groupedProb(groups);
    pg.k = 32;
    pg.c = 32;
    ConvProblem p1 = pg;
    p1.k = pg.kPerGroup();
    p1.c = pg.cPerGroup();
    p1.groups = 1;

    MultiLevelConfig cfg;
    const Permutation perm = Permutation::parse("kcrsnhw");
    for (int l = 0; l < NumMemLevels; ++l)
        cfg.level[static_cast<std::size_t>(l)].perm = perm;
    cfg.level[LvlReg].tiles = {1, 4, 1, 1, 1, 1, 5};
    cfg.level[LvlL1].tiles = {1, 8, 4, 3, 3, 5, 5};
    cfg.level[LvlL2].tiles = {2, 8, 8, 3, 3, 5, 5};
    cfg.level[LvlL3].tiles = {2, 8, 8, 3, 3, 5, 5};

    const CostBreakdown cg =
        evalMultiLevel(cfg, pg, m, false, DivMode::Continuous);
    const CostBreakdown c1 =
        evalMultiLevel(cfg, p1, m, false, DivMode::Continuous);
    const double g = static_cast<double>(groups);
    for (int l = 0; l < NumMemLevels; ++l) {
        const std::size_t lvl = static_cast<std::size_t>(l);
        EXPECT_DOUBLE_EQ(cg.volume_words[lvl], g * c1.volume_words[lvl]);
        EXPECT_DOUBLE_EQ(cg.seconds[lvl], g * c1.seconds[lvl]);
    }
    EXPECT_DOUBLE_EQ(cg.compute_seconds, g * c1.compute_seconds);
}

TEST(GroupedOptimizer, DepthwiseSolveIsDeterministic)
{
    ConvProblem p;
    p.name = "dw";
    p.n = 1;
    p.k = p.c = p.groups = 32;
    p.r = p.s = 3;
    p.h = p.w = 16;
    p.stride = 2;

    OptimizerOptions o;
    o.effort = OptimizerOptions::Effort::Fast;
    o.threads = 4;
    const OptimizeOutput a = optimizeConv(p, i7_9700k(), o);
    const OptimizeOutput b = optimizeConv(p, i7_9700k(), o);
    ASSERT_FALSE(a.candidates.empty());
    // Tiles cannot exceed the per-group extents.
    const IntTileVec &l1 = a.candidates[0].config.tiles[LvlL1];
    EXPECT_LE(l1[DimK], p.kPerGroup());
    EXPECT_LE(l1[DimC], p.cPerGroup());
    EXPECT_EQ(a.candidates[0].config.str(), b.candidates[0].config.str());
    EXPECT_DOUBLE_EQ(a.candidates[0].predicted.total_seconds,
                     b.candidates[0].predicted.total_seconds);
}

// ---------------------------------------------------------------------
// Identity plumbing: cache keys, the journal, and the RPC protocol.

TEST(GroupedIdentity, CacheKeySeparatesGroupsAndBatch)
{
    const MachineSpec m = i7_9700k();
    const OptimizerOptions o;
    ConvProblem a = groupedProb(1);
    ConvProblem b = groupedProb(8);
    const CacheKey ka = CacheKey::make(a, m, o);
    const CacheKey kb = CacheKey::make(b, m, o);
    EXPECT_FALSE(ka == kb);
    EXPECT_NE(ka.hash(), kb.hash());

    ConvProblem c = groupedProb(1);
    c.n = 4;
    EXPECT_FALSE(CacheKey::make(c, m, o) == ka);
}

TEST(GroupedIdentity, JournalRoundTripsGroups)
{
    const MachineSpec m = i7_9700k();
    const OptimizerOptions o;
    const ConvProblem p = groupedProb(8);
    const CacheKey key = CacheKey::make(p, m, o);
    CachedSolution sol;
    for (int l = 0; l < NumMemLevels; ++l) {
        const auto sl = static_cast<std::size_t>(l);
        sol.config.perm[sl] = Permutation::parse("kcrsnhw");
        sol.config.tiles[sl] = {1, 1, 1, 1, 1, 1, 1};
    }
    sol.predicted_seconds = 1.5;
    sol.perm_label = "L1:x";

    const std::string line = solutionToJsonLine(key, sol);
    EXPECT_NE(line.find("\"groups\":8"), std::string::npos) << line;
    CacheKey back;
    CachedSolution bsol;
    ASSERT_TRUE(solutionFromJsonLine(line, back, bsol));
    EXPECT_TRUE(back == key);
    EXPECT_EQ(back.problem.groups, 8);

    // Dense records stay byte-free of the field (old journals load
    // because absent reads as 1; new dense lines look like old ones).
    const ConvProblem d = groupedProb(1);
    const std::string dense =
        solutionToJsonLine(CacheKey::make(d, m, o), sol);
    EXPECT_EQ(dense.find("\"groups\""), std::string::npos) << dense;
    ASSERT_TRUE(solutionFromJsonLine(dense, back, bsol));
    EXPECT_EQ(back.problem.groups, 1);
}

TEST(GroupedIdentity, RpcSolveCarriesGroups)
{
    RpcRequest req;
    req.op = RpcOp::Solve;
    req.problem = groupedProb(8);
    const std::string line = requestToJsonLine(req);
    EXPECT_NE(line.find("\"groups\":8"), std::string::npos) << line;

    RpcRequest back;
    std::string err;
    ASSERT_TRUE(requestFromJsonLine(line, back, &err)) << err;
    EXPECT_EQ(back.problem.groups, 8);

    // Dense solves keep the pre-groups encoding.
    req.problem = groupedProb(1);
    EXPECT_EQ(requestToJsonLine(req).find("\"groups\""),
              std::string::npos);
}

TEST(GroupedIdentity, RpcSolveNetworkCarriesBatchAndInlineIr)
{
    RpcRequest req;
    req.op = RpcOp::SolveNetwork;
    req.ir = parseCfgFile(dataPath("tiny.cfg"));
    req.has_ir = true;
    req.batch = 4;
    const std::string line = requestToJsonLine(req);
    EXPECT_NE(line.find("\"ir\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"batch\":4"), std::string::npos) << line;

    RpcRequest back;
    std::string err;
    ASSERT_TRUE(requestFromJsonLine(line, back, &err)) << err;
    ASSERT_TRUE(back.has_ir);
    EXPECT_EQ(back.batch, 4);
    ASSERT_EQ(back.ir.layers.size(), req.ir.layers.size());
    EXPECT_EQ(back.ir.layers[2].groups, 32);

    // Legacy name-only request: absent batch parses as 1.
    RpcRequest named;
    std::string perr;
    ASSERT_TRUE(requestFromJsonLine(
        "{\"v\":1,\"op\":\"solve_network\",\"net\":\"resnet18\"}",
        named, &perr))
        << perr;
    EXPECT_FALSE(named.has_ir);
    EXPECT_EQ(named.net, "resnet18");
    EXPECT_EQ(named.batch, 1);

    // "net" and "ir" are mutually exclusive.
    RpcRequest both;
    EXPECT_FALSE(requestFromJsonLine(
        "{\"v\":1,\"op\":\"solve_network\",\"net\":\"resnet18\","
        "\"ir\":{\"name\":\"x\",\"layers\":[]}}",
        both, &perr));
}

} // namespace
} // namespace mopt
