/**
 * @file
 * Unit tests for the common utilities: stats, RNG, strings, tables,
 * flags, and the thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/flags.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/string_util.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"

namespace mopt {
namespace {

TEST(Stats, MeanStddevBasics)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Stats, GeomeanAndMedian)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_THROW(geomean({1.0, -1.0}), FatalError);
}

TEST(Stats, Confidence95)
{
    std::vector<double> xs(100, 5.0);
    EXPECT_DOUBLE_EQ(confidence95(xs), 0.0);
    xs[0] = 6.0;
    EXPECT_GT(confidence95(xs), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    const std::vector<double> xs{1, 2, 3, 4, 5};
    const std::vector<double> ys{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
    std::vector<double> neg{10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, SpearmanIsRankBased)
{
    // Monotone but nonlinear: Spearman 1, Pearson < 1.
    const std::vector<double> xs{1, 2, 3, 4, 5};
    const std::vector<double> ys{1, 8, 27, 64, 125};
    EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
    EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(Stats, RanksHandleTies)
{
    const auto r = ranks({10.0, 20.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, ArgminArgmaxSmallestK)
{
    const std::vector<double> xs{3.0, 1.0, 2.0, 5.0};
    EXPECT_EQ(argmin(xs), 1u);
    EXPECT_EQ(argmax(xs), 3u);
    const auto k = smallestK(xs, 2);
    ASSERT_EQ(k.size(), 2u);
    EXPECT_EQ(k[0], 1u);
    EXPECT_EQ(k[1], 2u);
    EXPECT_EQ(smallestK(xs, 10).size(), 4u);
}

TEST(Rng, DeterministicAndInRange)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.uniformInt(3, 9);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 9);
        const double u = r.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, SplitStreamsDiffer)
{
    Rng a(42);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntIsRoughlyUniform)
{
    Rng r(123);
    std::array<int, 4> counts{};
    for (int i = 0; i < 4000; ++i)
        counts[static_cast<std::size_t>(r.uniformInt(0, 3))]++;
    for (int c : counts) {
        EXPECT_GT(c, 800);
        EXPECT_LT(c, 1200);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(5);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto copy = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, copy);
}

TEST(StringUtil, SplitJoinTrim)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join({"x", "y", "z"}, "-"), "x-y-z");
    EXPECT_EQ(trim("  hi \n"), "hi");
    EXPECT_TRUE(startsWith("--flag", "--"));
    EXPECT_FALSE(startsWith("-", "--"));
}

TEST(StringUtil, Formatting)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_EQ(formatEng(1536.0), "1.54K");
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.row().add("a").add(1.5, 1);
    t.row().add("longer").add(22.25, 2);
    const std::string s = t.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("22.25"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, RejectsOverfullRows)
{
    Table t({"only"});
    t.row().add("x");
    EXPECT_THROW(t.add("y"), FatalError);
}

TEST(Flags, ParsesAndDefaults)
{
    const char *argv[] = {"prog", "--count=7", "--name=foo", "--on"};
    Flags f(4, const_cast<char **>(argv));
    EXPECT_EQ(f.getInt("count", 0), 7);
    EXPECT_EQ(f.getString("name", ""), "foo");
    EXPECT_TRUE(f.getBool("on", false));
    EXPECT_EQ(f.getInt("missing", 42), 42);
    EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, RejectsPositional)
{
    const char *argv[] = {"prog", "positional"};
    EXPECT_THROW(Flags(2, const_cast<char **>(argv)), FatalError);
}

TEST(Flags, SpaceSeparatedValues)
{
    const char *argv[] = {"prog", "--net", "resnet18", "--count", "7",
                          "--on", "--last"};
    Flags f(7, const_cast<char **>(argv));
    EXPECT_EQ(f.getString("net", ""), "resnet18");
    EXPECT_EQ(f.getInt("count", 0), 7);
    // "--on" is followed by another flag, "--last" ends the line:
    // both parse as bare booleans.
    EXPECT_TRUE(f.getBool("on", false));
    EXPECT_TRUE(f.getBool("last", false));
}

TEST(Flags, BoolRejectsStrayToken)
{
    // "--verify tiled" swallows the stray token as verify's value;
    // reading it as a boolean must fail loudly, not return false.
    const char *argv[] = {"prog", "--verify", "tiled", "--off", "0"};
    Flags f(5, const_cast<char **>(argv));
    EXPECT_THROW(f.getBool("verify", false), FatalError);
    EXPECT_FALSE(f.getBool("off", true));
}

TEST(Flags, RejectsDuplicates)
{
    // Both spellings of a repeat are editing accidents; neither value
    // may silently win.
    const char *eq[] = {"prog", "--machine=i7", "--machine=i9"};
    EXPECT_THROW(Flags(3, const_cast<char **>(eq)), FatalError);
    const char *mixed[] = {"prog", "--machine", "i7", "--machine=i9"};
    EXPECT_THROW(Flags(4, const_cast<char **>(mixed)), FatalError);
    const char *bare[] = {"prog", "--verify", "--verify"};
    EXPECT_THROW(Flags(3, const_cast<char **>(bare)), FatalError);
}

TEST(Flags, RejectUnknownCatchesTypos)
{
    const char *argv[] = {"prog", "--effort=fast", "--top-k=3"};
    const Flags f(3, const_cast<char **>(argv));
    f.rejectUnknown({"effort", "top-k", "machine"}); // No throw.
    EXPECT_THROW(f.rejectUnknown({"effort", "machine"}), FatalError);
    EXPECT_THROW(f.rejectUnknown({}), FatalError);
}

TEST(Flags, RejectUnknownIgnoresEnvironment)
{
    // MOPT_* environment defaults are shared across tools with
    // different flag vocabularies; only CLI flags are vetted.
    ::setenv("MOPT_SOME_SHARED_DEFAULT", "42", 1);
    const char *argv[] = {"prog", "--effort=fast"};
    const Flags f(2, const_cast<char **>(argv));
    EXPECT_TRUE(f.has("some-shared-default")); // Visible as a value...
    f.rejectUnknown({"effort"});               // ...but not rejected.
    ::unsetenv("MOPT_SOME_SHARED_DEFAULT");
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(257, [&](std::size_t i) { hits[i]++; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkedCoversRange)
{
    ThreadPool pool(3);
    std::atomic<std::int64_t> sum{0};
    pool.parallelForChunked(100, [&](std::size_t b, std::size_t e) {
        std::int64_t local = 0;
        for (std::size_t i = b; i < e; ++i)
            local += static_cast<std::int64_t>(i);
        sum += local;
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(8, [&](std::size_t i) {
        if (i == 3)
            throw std::runtime_error("boom");
    }),
                 std::runtime_error);
}

TEST(ThreadPool, SubWidthCoversAllIndicesWithBoundedWorkerIds)
{
    ThreadPool pool(4);
    ThreadPool::SubWidth half = pool.subWidth(2);
    EXPECT_EQ(half.width(), 2u);
    EXPECT_EQ(half.size(), 1u); // One helper; the caller is the other.

    std::vector<std::atomic<int>> hits(101);
    std::atomic<std::size_t> max_worker{0};
    half.parallelForIndexed(
        101, 1, [&](std::size_t w, std::size_t b, std::size_t e) {
            std::size_t seen = max_worker.load();
            while (w > seen && !max_worker.compare_exchange_weak(seen, w))
                ;
            for (std::size_t i = b; i < e; ++i)
                hits[i]++;
        });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    // Worker ids stay inside the handle's width: scratch sized
    // size() + 1 is enough, exactly as on the full pool.
    EXPECT_LE(max_worker.load(), half.size());

    std::atomic<int> count{0};
    half.parallelFor(57, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 57);
}

TEST(ThreadPool, SubWidthClampsAndWidthOneRunsInline)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.subWidth(0).width(), 1u);
    EXPECT_EQ(pool.subWidth(99).width(), pool.size() + 1);
    EXPECT_EQ(pool.fullWidth().width(), pool.size() + 1);

    // Width 1 recruits no helpers: the body runs on the caller only.
    ThreadPool::SubWidth solo = pool.subWidth(1);
    const auto caller = std::this_thread::get_id();
    std::atomic<int> off_thread{0};
    solo.parallelForIndexed(
        16, 1, [&](std::size_t w, std::size_t b, std::size_t e) {
            if (std::this_thread::get_id() != caller || w != 0)
                off_thread++;
            (void)b;
            (void)e;
        });
    EXPECT_EQ(off_thread.load(), 0);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("nope"), FatalError);
    EXPECT_THROW(checkUser(false, "bad"), FatalError);
    checkUser(true, "fine");
}

} // namespace
} // namespace mopt
