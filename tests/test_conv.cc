/**
 * @file
 * Tests of the convolution problem descriptor, the reference
 * implementation, and the Table-1 workload database.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "conv/problem.hh"
#include "conv/reference.hh"
#include "conv/workloads.hh"

namespace mopt {
namespace {

TEST(ConvProblem, FromImageSamePadding)
{
    // 3x3 stride-1 "same": output equals the image size.
    const ConvProblem p = ConvProblem::fromImage("x", 32, 3, 544, 3);
    EXPECT_EQ(p.h, 544);
    EXPECT_EQ(p.w, 544);
    EXPECT_EQ(p.inH(), 546);

    // 7x7 stride-2 on 224 (ResNet first layer): 112 outputs.
    const ConvProblem r1 = ConvProblem::fromImage("r1", 64, 3, 224, 7, 2);
    EXPECT_EQ(r1.h, 112);
    EXPECT_EQ(r1.inH(), (112 - 1) * 2 + 7);

    // 3x3 stride-2 on 112: 56 outputs.
    const ConvProblem m2 = ConvProblem::fromImage("m2", 64, 64, 112, 3, 2);
    EXPECT_EQ(m2.h, 56);

    // 1x1 stride-1: identity spatial size.
    const ConvProblem y5 = ConvProblem::fromImage("y5", 64, 128, 136, 1);
    EXPECT_EQ(y5.h, 136);
    EXPECT_EQ(y5.inH(), 136);
}

TEST(ConvProblem, SizesAndFlops)
{
    ConvProblem p;
    p.n = 2;
    p.k = 4;
    p.c = 3;
    p.r = 3;
    p.s = 3;
    p.h = 5;
    p.w = 6;
    p.stride = 1;
    EXPECT_EQ(p.macs(), 2 * 4 * 3 * 3 * 3 * 5 * 6);
    EXPECT_DOUBLE_EQ(p.flops(), 2.0 * p.macs());
    EXPECT_EQ(p.inSize(), 2 * 3 * 7 * 8);
    EXPECT_EQ(p.kerSize(), 4 * 3 * 3 * 3);
    EXPECT_EQ(p.outSize(), 2 * 4 * 5 * 6);
}

TEST(ConvProblem, DownscaledCapsExtents)
{
    const ConvProblem y0 = workloadByName("Y0");
    const ConvProblem d = y0.downscaled(28, 16);
    EXPECT_EQ(d.h, 28);
    EXPECT_EQ(d.w, 28);
    EXPECT_LE(d.c, 16);
    EXPECT_LE(d.k, 16);
    EXPECT_EQ(d.r, y0.r);
    EXPECT_EQ(d.stride, y0.stride);
    EXPECT_NE(d.name, y0.name);
}

TEST(ConvProblem, ValidateRejectsNonsense)
{
    ConvProblem p;
    p.k = 0;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(ReferenceConv, HandComputedIdentityKernel)
{
    // 1x1 kernel with weight 2: output = 2 * input.
    ConvProblem p;
    p.n = 1;
    p.k = 1;
    p.c = 1;
    p.r = 1;
    p.s = 1;
    p.h = 3;
    p.w = 3;
    Tensor4 in = makeInput(p), ker = makeKernel(p), out = makeOutput(p);
    for (std::int64_t i = 0; i < 9; ++i)
        in.data()[i] = static_cast<float>(i);
    ker.at(0, 0, 0, 0) = 2.0f;
    referenceConv(p, in, ker, out);
    for (std::int64_t i = 0; i < 9; ++i)
        EXPECT_FLOAT_EQ(out.data()[i], 2.0f * static_cast<float>(i));
}

TEST(ReferenceConv, HandComputedBoxFilter)
{
    // 2x2 all-ones kernel over a 3x3 input (2x2 valid outputs).
    ConvProblem p;
    p.n = 1;
    p.k = 1;
    p.c = 1;
    p.r = 2;
    p.s = 2;
    p.h = 2;
    p.w = 2;
    Tensor4 in = makeInput(p), ker = makeKernel(p), out = makeOutput(p);
    float v = 1.0f;
    for (std::int64_t i = 0; i < in.size(); ++i)
        in.data()[i] = v++;
    ker.fill(1.0f);
    referenceConv(p, in, ker, out);
    // in = [1 2 3; 4 5 6; 7 8 9]
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1 + 2 + 4 + 5);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 2 + 3 + 5 + 6);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1, 0), 4 + 5 + 7 + 8);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 5 + 6 + 8 + 9);
}

TEST(ReferenceConv, StrideTwoSkipsInputs)
{
    ConvProblem p;
    p.n = 1;
    p.k = 1;
    p.c = 1;
    p.r = 1;
    p.s = 1;
    p.h = 2;
    p.w = 2;
    p.stride = 2;
    Tensor4 in = makeInput(p), ker = makeKernel(p), out = makeOutput(p);
    EXPECT_EQ(in.dim(2), 3);
    float v = 0.0f;
    for (std::int64_t i = 0; i < in.size(); ++i)
        in.data()[i] = v++;
    ker.at(0, 0, 0, 0) = 1.0f;
    referenceConv(p, in, ker, out);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), in.at(0, 0, 0, 0));
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), in.at(0, 0, 0, 2));
    EXPECT_FLOAT_EQ(out.at(0, 0, 1, 0), in.at(0, 0, 2, 0));
    EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), in.at(0, 0, 2, 2));
}

TEST(ReferenceConv, ChannelSummation)
{
    ConvProblem p;
    p.n = 1;
    p.k = 2;
    p.c = 3;
    p.r = 1;
    p.s = 1;
    p.h = 1;
    p.w = 1;
    Tensor4 in = makeInput(p), ker = makeKernel(p), out = makeOutput(p);
    for (std::int64_t c = 0; c < 3; ++c)
        in.at(0, c, 0, 0) = static_cast<float>(c + 1);
    for (std::int64_t k = 0; k < 2; ++k)
        for (std::int64_t c = 0; c < 3; ++c)
            ker.at(k, c, 0, 0) = static_cast<float>(k + 1);
    referenceConv(p, in, ker, out);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1.0f * (1 + 2 + 3));
    EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), 2.0f * (1 + 2 + 3));
}

TEST(Workloads, Table1Counts)
{
    EXPECT_EQ(yolo9000Workloads().size(), 11u);
    EXPECT_EQ(resnet18Workloads().size(), 12u);
    EXPECT_EQ(mobilenetWorkloads().size(), 9u);
    EXPECT_EQ(allWorkloads().size(), 32u);
}

TEST(Workloads, Table1SpotChecks)
{
    const ConvProblem y23 = workloadByName("Y23");
    EXPECT_EQ(y23.k, 28269);
    EXPECT_EQ(y23.c, 1024);
    EXPECT_EQ(y23.h, 17);
    EXPECT_EQ(y23.r, 1);
    EXPECT_EQ(y23.stride, 1);

    const ConvProblem r10 = workloadByName("R10");
    EXPECT_EQ(r10.k, 512);
    EXPECT_EQ(r10.c, 256);
    EXPECT_EQ(r10.stride, 2);
    EXPECT_EQ(r10.h, 7); // 14 input, stride 2

    const ConvProblem m9 = workloadByName("M9");
    EXPECT_EQ(m9.k, 1024);
    EXPECT_EQ(m9.h, 7);
    EXPECT_EQ(m9.stride, 1);
}

TEST(Workloads, AllHaveBatchOneAndValidate)
{
    for (const auto &p : allWorkloads()) {
        EXPECT_EQ(p.n, 1) << p.name;
        EXPECT_NO_THROW(p.validate()) << p.name;
        EXPECT_TRUE(p.stride == 1 || p.stride == 2) << p.name;
    }
}

TEST(Workloads, NamesAreUnique)
{
    const auto all = allWorkloads();
    for (std::size_t i = 0; i < all.size(); ++i)
        for (std::size_t j = i + 1; j < all.size(); ++j)
            EXPECT_NE(all[i].name, all[j].name);
}

TEST(Workloads, UnknownNameThrows)
{
    EXPECT_THROW(workloadByName("Z99"), FatalError);
}

} // namespace
} // namespace mopt
