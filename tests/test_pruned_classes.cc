/**
 * @file
 * Tests of the Sec. 4 pruning theorem: the eight equivalence classes
 * cover cost-identical permutations, and their best member is never
 * worse than ANY of the 5040 permutations at the same tile sizes —
 * the property that justifies shrinking the search space from 5040
 * to 8.
 */

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "common/rng.hh"
#include "conv/problem.hh"
#include "model/pruned_classes.hh"
#include "model/single_level.hh"

namespace mopt {
namespace {

ConvProblem
randomProblem(Rng &rng)
{
    ConvProblem p;
    p.name = "rand";
    p.n = rng.uniformInt(1, 4);
    p.k = rng.uniformInt(2, 64);
    p.c = rng.uniformInt(2, 64);
    p.r = rng.uniformInt(1, 5);
    p.s = rng.uniformInt(1, 5);
    p.h = rng.uniformInt(2, 32);
    p.w = rng.uniformInt(2, 32);
    p.stride = rng.uniform01() < 0.25 ? 2 : 1;
    // The pruning argument is purely about present/absent index
    // structure, so it must survive dilation too.
    p.dilation = rng.uniform01() < 0.25 ? 2 : 1;
    return p;
}

TileVec
randomTiles(Rng &rng, const ConvProblem &p)
{
    const IntTileVec extents = problemExtents(p);
    TileVec t;
    for (int d = 0; d < NumDims; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        t[sd] = static_cast<double>(
            rng.uniformInt(1, extents[sd]));
    }
    return t;
}

TEST(PrunedClasses, ThereAreExactlyEight)
{
    EXPECT_EQ(prunedClasses().size(), 8u);
}

TEST(PrunedClasses, MemberCountsMatchBandFactorials)
{
    const auto &classes = prunedClasses();
    // Classes 1-4: 4!*2!*1! = 48; classes 5-8: 5!*1!*1! = 120.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(classes[static_cast<std::size_t>(i)].memberCount(), 48);
    for (int i = 4; i < 8; ++i)
        EXPECT_EQ(classes[static_cast<std::size_t>(i)].memberCount(), 120);
}

TEST(PrunedClasses, MembersEnumerationMatchesContains)
{
    for (const auto &cls : prunedClasses()) {
        const auto members = cls.members();
        EXPECT_EQ(static_cast<std::int64_t>(members.size()),
                  cls.memberCount());
        std::set<std::string> unique;
        for (const auto &perm : members) {
            EXPECT_TRUE(cls.contains(perm)) << cls.name() << " "
                                            << perm.str();
            unique.insert(perm.str());
        }
        EXPECT_EQ(unique.size(), members.size());
    }
}

TEST(PrunedClasses, ClassesAreDisjoint)
{
    const auto &classes = prunedClasses();
    int total = 0;
    for (const auto &perm : Permutation::all()) {
        int hits = 0;
        for (const auto &cls : classes)
            if (cls.contains(perm))
                ++hits;
        EXPECT_LE(hits, 1) << perm.str();
        total += hits;
    }
    EXPECT_EQ(total, 4 * 48 + 4 * 120);
}

TEST(PrunedClasses, RepresentativesMatchPaperSummary)
{
    const auto reps = prunedRepresentatives();
    EXPECT_EQ(reps[0].str(), "kcrsnhw");
    EXPECT_EQ(reps[1].str(), "kcrsnwh");
    EXPECT_EQ(reps[2].str(), "nkhwcrs");
    EXPECT_EQ(reps[3].str(), "nkhwcsr");
    EXPECT_EQ(reps[4].str(), "nchrswk");
    EXPECT_EQ(reps[5].str(), "ncwrshk");
    EXPECT_EQ(reps[6].str(), "nchwrsk");
    EXPECT_EQ(reps[7].str(), "nchwsrk");
}

/** All members of a class have the same cost expression. */
class IntraClassEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(IntraClassEquivalence, MembersCostIdentical)
{
    Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
    const PrunedClass &cls =
        prunedClasses()[static_cast<std::size_t>(GetParam())];
    for (int trial = 0; trial < 5; ++trial) {
        const ConvProblem p = randomProblem(rng);
        const TileVec t = randomTiles(rng, p);
        const double ref =
            totalDataVolume(cls.representative(), t, p);
        for (const auto &perm : cls.members()) {
            const double dv = totalDataVolume(perm, t, p);
            EXPECT_NEAR(dv, ref, 1e-9 * ref)
                << cls.name() << " " << perm.str();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, IntraClassEquivalence,
                         ::testing::Range(0, 8));

/**
 * THE pruning theorem (pointwise form): for any tile sizes, the best
 * of the eight representatives is <= the cost of every one of the
 * 5040 permutations.
 */
class PruningDominance : public ::testing::TestWithParam<int>
{
};

TEST_P(PruningDominance, EightClassesDominateAll5040)
{
    Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
    const ConvProblem p = randomProblem(rng);
    const TileVec t = randomTiles(rng, p);

    double best_pruned = std::numeric_limits<double>::infinity();
    for (const auto &rep : prunedRepresentatives())
        best_pruned = std::min(best_pruned, totalDataVolume(rep, t, p));

    double worst_margin = std::numeric_limits<double>::infinity();
    for (const auto &perm : Permutation::all()) {
        const double dv = totalDataVolume(perm, t, p);
        worst_margin = std::min(worst_margin, dv - best_pruned);
        ASSERT_GE(dv, best_pruned * (1.0 - 1e-12))
            << "permutation " << perm.str() << " beats the pruned set on "
            << p.summary();
    }
    EXPECT_GE(worst_margin, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, PruningDominance,
                         ::testing::Range(0, 12));

} // namespace
} // namespace mopt
