/**
 * @file
 * Tests of the Sec. 7 parallel machinery: split enumeration
 * invariants, best-split selection (register-tile chunk floor, even
 * chunking preference), and load balancing of integer configurations.
 */

#include <gtest/gtest.h>

#include "machine/machine.hh"
#include "model/multi_level.hh"
#include "model/parallel_model.hh"
#include "model/pruned_classes.hh"
#include "optimizer/load_balance.hh"
#include "optimizer/mopt_optimizer.hh"

namespace mopt {
namespace {

ConvProblem
prob()
{
    ConvProblem p;
    p.name = "par";
    p.n = 1;
    p.k = 64;
    p.c = 32;
    p.r = 3;
    p.s = 3;
    p.h = 28;
    p.w = 28;
    return p;
}

MultiLevelConfig
modelConfig(const ConvProblem &p)
{
    (void)p; // tiles below are sized for prob()
    MultiLevelConfig cfg;
    for (int l = 0; l < NumMemLevels; ++l)
        cfg.level[static_cast<std::size_t>(l)].perm =
            Permutation::parse("kcrsnhw");
    cfg.level[LvlReg].perm = Permutation::parse("nhwkcrs");
    cfg.level[LvlReg].tiles = {1, 16, 1, 1, 1, 1, 6};
    cfg.level[LvlL1].tiles = {1, 16, 8, 3, 3, 2, 12};
    cfg.level[LvlL2].tiles = {1, 32, 16, 3, 3, 7, 28};
    cfg.level[LvlL3].tiles = {1, 64, 32, 3, 3, 28, 28};
    return cfg;
}

class SplitCores : public ::testing::TestWithParam<int>
{
};

TEST_P(SplitCores, ExactFactorizationsWhenExtentsAllow)
{
    const int cores = GetParam();
    const IntTileVec l3{1, 64, 32, 3, 3, 28, 28};
    const auto splits = parallelSplits(cores, l3);
    ASSERT_FALSE(splits.empty());
    for (const auto &s : splits) {
        std::int64_t prod = 1;
        for (int d = 0; d < NumDims; ++d) {
            const auto sd = static_cast<std::size_t>(d);
            prod *= s[sd];
            EXPECT_LE(s[sd], l3[sd]);
            if (isReductionDim(static_cast<Dim>(d))) {
                EXPECT_EQ(s[sd], 1);
            }
        }
        EXPECT_EQ(prod, cores);
    }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, SplitCores,
                         ::testing::Values(1, 2, 4, 6, 8, 16, 18));

TEST(ParallelSplits, FallsBackWhenNoExactFactorization)
{
    // Extents (1,1,...,1,2): at most 2-way parallelism available.
    const IntTileVec l3{1, 2, 1, 1, 1, 1, 1};
    const auto splits = parallelSplits(8, l3);
    ASSERT_FALSE(splits.empty());
    for (const auto &s : splits) {
        std::int64_t prod = 1;
        for (std::int64_t f : s)
            prod *= f;
        EXPECT_EQ(prod, 2); // largest achievable
    }
}

TEST(ParallelSplits, SingleCoreIsIdentity)
{
    const auto splits = parallelSplits(1, IntTileVec{1, 8, 4, 3, 3, 7, 7});
    ASSERT_EQ(splits.size(), 1u);
    for (std::int64_t f : splits.front())
        EXPECT_EQ(f, 1);
}

TEST(BestParallelSplit, ProductMatchesCores)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    const IntTileVec best = bestParallelSplit(modelConfig(p), p, m);
    std::int64_t prod = 1;
    for (std::int64_t f : best)
        prod *= f;
    EXPECT_EQ(prod, m.cores);
}

TEST(BestParallelSplit, ChunksNeverSmallerThanRegisterTile)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    const MultiLevelConfig cfg = modelConfig(p);
    const IntTileVec best = bestParallelSplit(cfg, p, m);
    const IntTileVec l3 = floorTiles(cfg.level[LvlL3].tiles);
    const IntTileVec reg = floorTiles(cfg.level[LvlReg].tiles);
    for (int d = 0; d < NumDims; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        if (best[sd] > 1) {
            EXPECT_GE(l3[sd] / best[sd], reg[sd]) << dimName(
                static_cast<Dim>(d));
        }
    }
}

TEST(BestParallelSplit, PrefersEvenChunking)
{
    // h extent 28 with 8 cores: splitting h 8-ways leaves 4 idle rows
    // per round; k (64) splits evenly. The imbalance-scaled score must
    // not choose a split whose ceil-chunk waste exceeds alternatives
    // with identical model cost.
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    const IntTileVec best = bestParallelSplit(modelConfig(p), p, m);
    for (int d = 0; d < NumDims; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        if (best[sd] > 1) {
            const std::int64_t l3 =
                floorTiles(modelConfig(p).level[LvlL3].tiles)[sd];
            const std::int64_t up = (l3 + best[sd] - 1) / best[sd];
            // Waste below 15%.
            EXPECT_LE(static_cast<double>(up * best[sd]),
                      1.15 * static_cast<double>(l3));
        }
    }
}

TEST(LoadBalanceExtra, SnapsParallelDimsToMultiples)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    ExecConfig cfg;
    cfg.perm[LvlReg] = microkernelPermutation();
    cfg.tiles[LvlReg] = microkernelTiles(p, m);
    for (int l = LvlL1; l <= LvlL3; ++l) {
        cfg.perm[static_cast<std::size_t>(l)] =
            Permutation::parse("kcrsnhw");
        cfg.tiles[static_cast<std::size_t>(l)] = problemExtents(p);
    }
    cfg.tiles[LvlL1] = {1, 16, 8, 3, 3, 2, 14};
    cfg.tiles[LvlL2] = {1, 32, 32, 3, 3, 7, 28};

    loadBalance(cfg, p, m);
    for (int d = 0; d < NumDims; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        if (cfg.par[sd] > 1) {
            EXPECT_EQ(cfg.tiles[LvlL3][sd] % cfg.par[sd], 0);
            // Nesting survives: L1 <= L2 <= per-core chunk.
            EXPECT_LE(cfg.tiles[LvlL1][sd], cfg.tiles[LvlL2][sd]);
            EXPECT_LE(cfg.tiles[LvlL2][sd],
                      cfg.tiles[LvlL3][sd] / cfg.par[sd]);
        }
    }
}

TEST(LoadBalanceExtra, PrimeExtentStillBalances)
{
    ConvProblem p = prob();
    p.h = 29; // prime
    p.w = 29;
    const MachineSpec m = i7_9700k();
    ExecConfig cfg;
    cfg.perm[LvlReg] = microkernelPermutation();
    cfg.tiles[LvlReg] = microkernelTiles(p, m);
    for (int l = LvlL1; l <= LvlL3; ++l) {
        cfg.perm[static_cast<std::size_t>(l)] =
            Permutation::parse("kcrsnhw");
        cfg.tiles[static_cast<std::size_t>(l)] = problemExtents(p);
    }
    loadBalance(cfg, p, m);
    std::int64_t par = 1;
    for (std::int64_t f : cfg.par)
        par *= f;
    EXPECT_EQ(par, m.cores);
    EXPECT_LT(idleFraction(cfg, p, m), 0.35);
}

TEST(PerCoreTile, DividesByParallelFactors)
{
    MultiLevelConfig cfg = modelConfig(prob());
    cfg.par = {1, 8, 1, 1, 1, 1, 1};
    const TileVec pt = perCoreL3Tile(cfg);
    EXPECT_DOUBLE_EQ(pt[DimK], 8.0);
    EXPECT_DOUBLE_EQ(pt[DimW], 28.0);
}

} // namespace
} // namespace mopt
