/**
 * @file
 * Tests of the service layer: cache-key canonicalization and stable
 * hashing, the sharded LRU solution cache (eviction order, shard
 * independence under concurrency, journal persistence round-trips,
 * corrupted-journal recovery, compaction), and NetworkOptimizer
 * determinism with cold vs. warm caches.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/logging.hh"
#include "conv/workloads.hh"
#include "machine/machine.hh"
#include "service/cache_key.hh"
#include "service/network_optimizer.hh"
#include "service/solution_cache.hh"

namespace mopt {
namespace {

ConvProblem
smallProblem(std::int64_t k = 32, std::int64_t c = 16, std::int64_t hw = 14)
{
    ConvProblem p;
    p.name = "svc";
    p.n = 1;
    p.k = k;
    p.c = c;
    p.r = 3;
    p.s = 3;
    p.h = hw;
    p.w = hw;
    return p;
}

OptimizerOptions
fastOpts()
{
    OptimizerOptions o;
    o.effort = OptimizerOptions::Effort::Fast;
    o.parallel = true;
    o.threads = 4;
    return o;
}

/** A distinct, valid key: shapes vary in k so hashes differ. */
CacheKey
keyNumber(int i)
{
    return CacheKey::make(smallProblem(8 + i), i7_9700k(), fastOpts());
}

/** A recognizable solution whose payload encodes @p tag. */
CachedSolution
solutionNumber(int tag)
{
    CachedSolution s;
    s.config.perm = {Permutation::parse("nhwkcrs"),
                     Permutation::parse("kcrsnhw"),
                     Permutation::parse("kcrsnhw"),
                     Permutation::parse("kcrsnhw")};
    s.config.tiles = {IntTileVec{1, 16, 1, 1, 1, 1, 6},
                      IntTileVec{1, 16, 4, 1, 1, 2, 6},
                      IntTileVec{1, 32, 8, 3, 3, 4, 12},
                      IntTileVec{1, 32, 16, 3, 3, 14, 14}};
    s.config.par = {1, 2, 1, 1, 1, 2, 2};
    s.config.tiles[LvlL1][DimC] = 1 + tag;
    s.predicted_seconds = 1e-3 * (1 + tag);
    s.perm_label = "cls-" + std::to_string(tag);
    return s;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "mopt_" + name + "_" +
           std::to_string(::getpid()) + ".json";
}

TEST(CacheKey, LayerNameIsStripped)
{
    ConvProblem a = smallProblem();
    ConvProblem b = smallProblem();
    a.name = "R2";
    b.name = "layer1.0.conv1";
    const MachineSpec m = i7_9700k();
    const CacheKey ka = CacheKey::make(a, m, fastOpts());
    const CacheKey kb = CacheKey::make(b, m, fastOpts());
    EXPECT_EQ(ka, kb);
    EXPECT_EQ(ka.hash(), kb.hash());
}

TEST(CacheKey, ShapeChangesHash)
{
    const MachineSpec m = i7_9700k();
    const CacheKey base = CacheKey::make(smallProblem(), m, fastOpts());
    ConvProblem other = smallProblem();
    other.stride = 2;
    const CacheKey changed = CacheKey::make(other, m, fastOpts());
    EXPECT_NE(base, changed);
    EXPECT_NE(base.hash(), changed.hash());
}

TEST(CacheKey, MachineFingerprintCoversModelFields)
{
    EXPECT_NE(CacheKey::machineFingerprint(i7_9700k()),
              CacheKey::machineFingerprint(i9_10980xe()));

    // The preset name is cosmetic and must not affect the fingerprint.
    MachineSpec renamed = i7_9700k();
    renamed.name = "some-fleet-host";
    EXPECT_EQ(CacheKey::machineFingerprint(i7_9700k()),
              CacheKey::machineFingerprint(renamed));

    MachineSpec tweaked = i7_9700k();
    tweaked.levels[LvlL2].capacity_bytes += 4096;
    EXPECT_NE(CacheKey::machineFingerprint(i7_9700k()),
              CacheKey::machineFingerprint(tweaked));
}

TEST(CacheKey, SettingsFingerprintSelectsResultRelevantFields)
{
    OptimizerOptions a = fastOpts();
    OptimizerOptions b = fastOpts();

    // top_k and threads never change the winning configuration.
    b.top_k = 1;
    b.threads = 1;
    EXPECT_EQ(CacheKey::settingsFingerprint(a),
              CacheKey::settingsFingerprint(b));

    b = fastOpts();
    b.effort = OptimizerOptions::Effort::Thorough;
    EXPECT_NE(CacheKey::settingsFingerprint(a),
              CacheKey::settingsFingerprint(b));

    b = fastOpts();
    b.seed = a.seed + 1;
    EXPECT_NE(CacheKey::settingsFingerprint(a),
              CacheKey::settingsFingerprint(b));

    b = fastOpts();
    b.parallel = false;
    EXPECT_NE(CacheKey::settingsFingerprint(a),
              CacheKey::settingsFingerprint(b));
}

TEST(SolutionJson, RoundTrip)
{
    const CacheKey key = keyNumber(3);
    const CachedSolution sol = solutionNumber(7);
    const std::string line = solutionToJsonLine(key, sol);

    CacheKey key2;
    CachedSolution sol2;
    ASSERT_TRUE(solutionFromJsonLine(line, key2, sol2));
    EXPECT_EQ(key, key2);
    EXPECT_EQ(sol, sol2);
}

TEST(SolutionJson, RejectsMalformedLines)
{
    CacheKey key;
    CachedSolution sol;
    EXPECT_FALSE(solutionFromJsonLine("", key, sol));
    EXPECT_FALSE(solutionFromJsonLine("garbage", key, sol));
    EXPECT_FALSE(solutionFromJsonLine("{\"v\":2}", key, sol));
    const std::string good =
        solutionToJsonLine(keyNumber(0), solutionNumber(0));
    // A torn write: every strict prefix must be rejected, not crash.
    for (std::size_t cut = 0; cut + 1 < good.size(); cut += 7)
        EXPECT_FALSE(
            solutionFromJsonLine(good.substr(0, cut), key, sol));
    // Trailing garbage after a valid object is corruption too.
    EXPECT_FALSE(solutionFromJsonLine(good + "}", key, sol));
}

TEST(SolutionJson, HitsFieldRoundTripsAndDefaultsToZero)
{
    const CacheKey key = keyNumber(1);
    const CachedSolution sol = solutionNumber(1);

    // Absent field (pre-telemetry journals) reads back as 0.
    CacheKey k2;
    CachedSolution s2;
    std::int64_t hits = -1;
    ASSERT_TRUE(solutionFromJsonLine(solutionToJsonLine(key, sol), k2,
                                     s2, &hits));
    EXPECT_EQ(hits, 0);

    const std::string line = solutionToJsonLine(key, sol, 42);
    EXPECT_NE(line.find("\"hits\":42"), std::string::npos);
    ASSERT_TRUE(solutionFromJsonLine(line, k2, s2, &hits));
    EXPECT_EQ(hits, 42);
    EXPECT_EQ(k2, key);
    EXPECT_EQ(s2, sol);

    // A negative count is corruption, not data.
    std::string bad = line;
    bad.replace(bad.find("\"hits\":42"), 9, "\"hits\":-7");
    EXPECT_FALSE(solutionFromJsonLine(bad, k2, s2, &hits));
}

TEST(SolutionCache, EntryStatsCountPerEntryHits)
{
    SolutionCache cache;
    cache.insert(keyNumber(0), solutionNumber(0));
    cache.insert(keyNumber(1), solutionNumber(1));
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(cache.lookup(keyNumber(0), nullptr));
    EXPECT_TRUE(cache.lookup(keyNumber(1), nullptr));
    EXPECT_FALSE(cache.lookup(keyNumber(9), nullptr)); // Miss: no entry.

    std::int64_t hits0 = -1, hits1 = -1;
    for (const SolutionCacheEntryStats &e : cache.entryStats()) {
        if (e.key == keyNumber(0))
            hits0 = e.hits;
        else if (e.key == keyNumber(1))
            hits1 = e.hits;
    }
    EXPECT_EQ(hits0, 3);
    EXPECT_EQ(hits1, 1);
    EXPECT_EQ(cache.entryStats().size(), 2u);
}

TEST(SolutionCache, HitCountsSurviveJournalRoundTrip)
{
    const std::string path = tempPath("hits");
    std::remove(path.c_str());
    {
        SolutionCacheOptions co;
        co.journal_path = path;
        SolutionCache cache(co);
        cache.insert(keyNumber(0), solutionNumber(0));
        cache.insert(keyNumber(1), solutionNumber(1));
        for (int i = 0; i < 5; ++i)
            cache.lookup(keyNumber(0), nullptr);
        // No explicit compact(): counts reach the journal through
        // compaction, and the destructor must compact when any entry
        // served a hit — a warm, insert-free run is exactly the case
        // the telemetry exists for.
    }
    {
        SolutionCacheOptions co;
        co.journal_path = path;
        SolutionCache reloaded(co);
        ASSERT_EQ(reloaded.size(), 2u);
        std::int64_t hits0 = -1, hits1 = -1;
        for (const SolutionCacheEntryStats &e : reloaded.entryStats()) {
            if (e.key == keyNumber(0))
                hits0 = e.hits;
            else if (e.key == keyNumber(1))
                hits1 = e.hits;
        }
        EXPECT_EQ(hits0, 5);
        EXPECT_EQ(hits1, 0);
        // Warm pass with zero inserts: more hits accumulate...
        for (int i = 0; i < 2; ++i)
            reloaded.lookup(keyNumber(1), nullptr);
    }
    // ...and survive the next clean shutdown too.
    SolutionCacheOptions co;
    co.journal_path = path;
    SolutionCache again(co);
    std::int64_t hits1 = -1;
    for (const SolutionCacheEntryStats &e : again.entryStats())
        if (e.key == keyNumber(1))
            hits1 = e.hits;
    EXPECT_EQ(hits1, 2);
    std::remove(path.c_str());
}

TEST(SolutionCache, LruEvictionOrder)
{
    SolutionCacheOptions co;
    co.capacity = 3;
    co.shards = 1;
    SolutionCache cache(co);

    cache.insert(keyNumber(1), solutionNumber(1));
    cache.insert(keyNumber(2), solutionNumber(2));
    cache.insert(keyNumber(3), solutionNumber(3));

    // Promote 1: the LRU entry is now 2.
    ASSERT_TRUE(cache.lookup(keyNumber(1), nullptr));

    cache.insert(keyNumber(4), solutionNumber(4));
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_FALSE(cache.lookup(keyNumber(2), nullptr));
    EXPECT_TRUE(cache.lookup(keyNumber(1), nullptr));
    EXPECT_TRUE(cache.lookup(keyNumber(3), nullptr));
    EXPECT_TRUE(cache.lookup(keyNumber(4), nullptr));
    EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(SolutionCache, ShardCountStaysMaskablePowerOfTwo)
{
    // A capacity below the requested shard count must not produce a
    // non-power-of-two shard count (shardOf masks with count - 1).
    SolutionCacheOptions co;
    co.capacity = 6;
    co.shards = 8;
    SolutionCache cache(co);
    const int n = cache.shardCount();
    EXPECT_EQ(n & (n - 1), 0);
    EXPECT_LE(n, 6);

    // Every shard must be reachable: with a maskable count, inserting
    // many keys leaves no shard permanently empty by construction.
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (int i = 0; i < 256; ++i)
        seen[static_cast<std::size_t>(cache.shardOf(keyNumber(i)))] =
            true;
    for (int s = 0; s < n; ++s)
        EXPECT_TRUE(seen[static_cast<std::size_t>(s)]) << s;
}

TEST(SolutionCache, OverwriteDoesNotGrow)
{
    SolutionCacheOptions co;
    co.capacity = 4;
    co.shards = 1;
    SolutionCache cache(co);

    cache.insert(keyNumber(1), solutionNumber(1));
    cache.insert(keyNumber(1), solutionNumber(9));
    EXPECT_EQ(cache.size(), 1u);

    CachedSolution out;
    ASSERT_TRUE(cache.lookup(keyNumber(1), &out));
    EXPECT_EQ(out, solutionNumber(9));
}

TEST(SolutionCache, ShardedConcurrentInsertLookup)
{
    SolutionCacheOptions co;
    co.capacity = 4096;
    co.shards = 8;
    SolutionCache cache(co);
    EXPECT_EQ(cache.shardCount(), 8);

    constexpr int kThreads = 8;
    constexpr int kKeysPerThread = 100;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            for (int i = 0; i < kKeysPerThread; ++i) {
                const int id = t * kKeysPerThread + i;
                cache.insert(keyNumber(id), solutionNumber(id));
                CachedSolution out;
                ASSERT_TRUE(cache.lookup(keyNumber(id), &out));
                EXPECT_EQ(out, solutionNumber(id));
                // Probe other threads' keys too: either a miss (not
                // inserted yet) or the correct value, never garbage.
                const int other = ((id + 37) * 13) %
                                  (kThreads * kKeysPerThread);
                if (cache.lookup(keyNumber(other), &out)) {
                    EXPECT_EQ(out, solutionNumber(other));
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(cache.size(),
              static_cast<std::size_t>(kThreads * kKeysPerThread));
    const SolutionCacheStats st = cache.stats();
    EXPECT_EQ(st.inserts, kThreads * kKeysPerThread);
    EXPECT_EQ(st.evictions, 0);

    // The keys must actually spread across shards for the concurrency
    // above to exercise independence.
    int shard_seen[8] = {};
    for (int id = 0; id < kThreads * kKeysPerThread; ++id)
        shard_seen[cache.shardOf(keyNumber(id))]++;
    int nonempty = 0;
    for (const int n : shard_seen)
        nonempty += n > 0;
    EXPECT_GE(nonempty, 4);
}

TEST(SolutionCache, PersistenceRoundTrip)
{
    const std::string path = tempPath("roundtrip");
    std::remove(path.c_str());

    {
        SolutionCacheOptions co;
        co.journal_path = path;
        SolutionCache cache(co);
        for (int i = 0; i < 5; ++i)
            cache.insert(keyNumber(i), solutionNumber(i));
    }

    SolutionCacheOptions co;
    co.journal_path = path;
    SolutionCache reloaded(co);
    EXPECT_EQ(reloaded.stats().journal_loaded, 5);
    EXPECT_EQ(reloaded.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        CachedSolution out;
        ASSERT_TRUE(reloaded.lookup(keyNumber(i), &out)) << i;
        EXPECT_EQ(out, solutionNumber(i));
    }

    // Replay is bookkeeping: reopening with a smaller capacity evicts
    // during replay, but the traffic counters must stay clean.
    SolutionCacheOptions small;
    small.capacity = 2;
    small.shards = 1;
    small.journal_path = path;
    SolutionCache tight(small);
    EXPECT_EQ(tight.stats().journal_loaded, 5);
    EXPECT_EQ(tight.size(), 2u);
    EXPECT_EQ(tight.stats().inserts, 0);
    EXPECT_EQ(tight.stats().evictions, 0);
    std::remove(path.c_str());
}

TEST(SolutionCache, CorruptedJournalRecovery)
{
    const std::string path = tempPath("corrupt");
    std::remove(path.c_str());

    const std::string good0 =
        solutionToJsonLine(keyNumber(0), solutionNumber(0));
    const std::string good1 =
        solutionToJsonLine(keyNumber(1), solutionNumber(1));
    {
        std::ofstream f(path);
        f << good0 << "\n";
        f << "{\"v\":1,\"n\":not-json\n";
        f << good1 << "\n";
        // A torn final line, as left by a crash mid-append.
        f << good1.substr(0, good1.size() / 2);
    }

    SolutionCacheOptions co;
    co.journal_path = path;
    SolutionCache cache(co);
    EXPECT_EQ(cache.stats().journal_loaded, 2);
    EXPECT_EQ(cache.stats().journal_skipped, 2);
    EXPECT_TRUE(cache.lookup(keyNumber(0), nullptr));
    EXPECT_TRUE(cache.lookup(keyNumber(1), nullptr));

    // Recovery rewrites the journal; a second open sees only the
    // surviving entries and no corruption.
    SolutionCacheOptions co2;
    co2.journal_path = path;
    SolutionCache cache2(co2);
    EXPECT_EQ(cache2.stats().journal_loaded, 2);
    EXPECT_EQ(cache2.stats().journal_skipped, 0);
    std::remove(path.c_str());
}

TEST(SolutionCache, CompactionBoundsJournalAndKeepsLruOrder)
{
    const std::string path = tempPath("compact");
    std::remove(path.c_str());

    {
        SolutionCacheOptions co;
        co.capacity = 3;
        co.shards = 1;
        co.journal_path = path;
        SolutionCache cache(co);
        // 40 inserts into a 3-entry cache: the journal would hold 40
        // lines without compaction (threshold: 2*3 + 16).
        for (int i = 0; i < 40; ++i)
            cache.insert(keyNumber(i), solutionNumber(i));
        // Touch every survivor (38 last, promoting it): a full cache
        // sheds cycle-old zero-hit entries at compaction, and this
        // test is about journal bounding + LRU order, not shedding.
        ASSERT_TRUE(cache.lookup(keyNumber(37), nullptr));
        ASSERT_TRUE(cache.lookup(keyNumber(39), nullptr));
        ASSERT_TRUE(cache.lookup(keyNumber(38), nullptr)); // Promote.
        cache.compact();
    }

    std::int64_t lines = 0;
    {
        std::ifstream f(path);
        for (std::string line; std::getline(f, line);)
            ++lines;
    }
    EXPECT_EQ(lines, 3);

    SolutionCacheOptions co;
    co.capacity = 3;
    co.shards = 1;
    co.journal_path = path;
    SolutionCache reloaded(co);
    EXPECT_EQ(reloaded.size(), 3u);
    EXPECT_TRUE(reloaded.lookup(keyNumber(37), nullptr));
    EXPECT_TRUE(reloaded.lookup(keyNumber(38), nullptr));
    EXPECT_TRUE(reloaded.lookup(keyNumber(39), nullptr));

    // The promote before compaction survived the reload: 37 (not 38)
    // is the LRU victim of the next insert.
    reloaded.insert(keyNumber(40), solutionNumber(40));
    EXPECT_TRUE(reloaded.lookup(keyNumber(38), nullptr));
    EXPECT_FALSE(reloaded.lookup(keyNumber(37), nullptr));
    std::remove(path.c_str());
}

TEST(SolutionCache, CapacityLimitedCompactionShedsZeroHitEntries)
{
    const std::string path = tempPath("shed");
    std::remove(path.c_str());

    SolutionCacheOptions co;
    co.capacity = 4;
    co.shards = 1;
    co.journal_path = path;
    {
        SolutionCache cache(co);
        for (int i = 0; i < 4; ++i)
            cache.insert(keyNumber(i), solutionNumber(i));
        ASSERT_EQ(cache.size(), 4u); // Full: capacity-limited.
        ASSERT_TRUE(cache.lookup(keyNumber(1), nullptr));
        ASSERT_TRUE(cache.lookup(keyNumber(3), nullptr));

        const std::int64_t evictions_before = cache.stats().evictions;
        // Young entries (inserted since the last compaction) are
        // exempt — the first compaction under pressure sheds nothing,
        // it only ends their grace cycle.
        cache.compact();
        EXPECT_EQ(cache.size(), 4u);

        // Still full at the *next* compaction: the entries that went
        // a whole cycle without a hit stopped earning their keep; the
        // hot ones survive, in memory and in the journal.
        cache.compact();
        EXPECT_EQ(cache.size(), 2u);
        EXPECT_EQ(cache.stats().evictions, evictions_before + 2);
        EXPECT_FALSE(cache.lookup(keyNumber(0), nullptr));
        EXPECT_FALSE(cache.lookup(keyNumber(2), nullptr));
        EXPECT_TRUE(cache.lookup(keyNumber(1), nullptr));
        EXPECT_TRUE(cache.lookup(keyNumber(3), nullptr));
    }

    // Same journal format: a reload sees exactly the earners, hit
    // counts intact.
    SolutionCache reloaded(co);
    EXPECT_EQ(reloaded.size(), 2u);
    EXPECT_TRUE(reloaded.lookup(keyNumber(1), nullptr));
    EXPECT_TRUE(reloaded.lookup(keyNumber(3), nullptr));
    std::remove(path.c_str());
}

TEST(SolutionCache, UnpressuredCompactionKeepsZeroHitEntries)
{
    const std::string path = tempPath("noshed");
    std::remove(path.c_str());

    SolutionCacheOptions co;
    co.capacity = 16;
    co.shards = 1;
    co.journal_path = path;
    SolutionCache cache(co);
    for (int i = 0; i < 4; ++i)
        cache.insert(keyNumber(i), solutionNumber(i));
    ASSERT_TRUE(cache.lookup(keyNumber(0), nullptr));

    cache.compact();

    // Plenty of headroom: a zero-hit entry may simply be young, so
    // nothing is shed.
    EXPECT_EQ(cache.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(cache.lookup(keyNumber(i), nullptr));
    std::remove(path.c_str());
}

TEST(NetworkOptimizer, DedupesRepeatedShapes)
{
    ConvProblem a = smallProblem();
    a.name = "block0";
    ConvProblem b = smallProblem(16, 8);
    b.name = "block1";
    ConvProblem a2 = smallProblem();
    a2.name = "block2"; // Same shape as block0, different name.

    const NetworkOptimizer nopt(tinyTestMachine(), fastOpts());
    const NetworkPlan plan = nopt.optimize({a, b, a2});

    ASSERT_EQ(plan.layers.size(), 3u);
    EXPECT_EQ(plan.stats.layers, 3u);
    EXPECT_EQ(plan.stats.unique_shapes, 2u);
    EXPECT_EQ(plan.stats.cache_misses, 2u);
    EXPECT_FALSE(plan.layers[0].dedup_hit);
    EXPECT_TRUE(plan.layers[2].dedup_hit);
    EXPECT_EQ(plan.layers[0].best.config, plan.layers[2].best.config);
    // Names survive dedup: each plan row describes its own layer.
    EXPECT_EQ(plan.layers[2].problem.name, "block2");
}

TEST(NetworkOptimizer, ColdAndWarmPlansAreIdentical)
{
    const std::string path = tempPath("netopt");
    std::remove(path.c_str());

    const std::vector<ConvProblem> net = {smallProblem(), smallProblem(16, 8),
                                          smallProblem()};
    const MachineSpec m = tinyTestMachine();

    std::string cold_plan, warm_plan;
    {
        SolutionCacheOptions co;
        co.journal_path = path;
        SolutionCache cache(co);
        const NetworkOptimizer nopt(m, fastOpts(), &cache);
        const NetworkPlan cold = nopt.optimize(net);
        EXPECT_EQ(cold.stats.cache_hits, 0u);
        cold_plan = cold.str();
    }
    {
        // A fresh process would reload the journal the same way.
        SolutionCacheOptions co;
        co.journal_path = path;
        SolutionCache cache(co);
        const NetworkOptimizer nopt(m, fastOpts(), &cache);
        const NetworkPlan warm = nopt.optimize(net);
        EXPECT_EQ(warm.stats.cache_hits, warm.stats.unique_shapes);
        EXPECT_EQ(warm.stats.cache_misses, 0u);
        EXPECT_DOUBLE_EQ(warm.stats.hitRate(), 1.0);
        warm_plan = warm.str();
    }
    EXPECT_EQ(cold_plan, warm_plan);
    std::remove(path.c_str());
}

TEST(NetworkOptimizer, NetworkBuildersAreWellFormed)
{
    const std::vector<ConvProblem> resnet = resnet18Network();
    const std::vector<ConvProblem> vgg = vgg16Network();
    const std::vector<ConvProblem> yolo = yolov3Network();
    EXPECT_EQ(resnet.size(), 20u);
    EXPECT_EQ(vgg.size(), 13u);
    EXPECT_EQ(yolo.size(), 52u);
    for (const auto *net : {&resnet, &vgg, &yolo})
        for (const ConvProblem &p : *net)
            EXPECT_NO_THROW(p.validate());

    // Spot-check derived extents: resnet conv1 is 7x7/2 on 224 -> 112.
    EXPECT_EQ(resnet.front().h, 112);
    EXPECT_EQ(resnet.front().k, 64);
    // Darknet-53's last stage works on 13x13.
    EXPECT_EQ(yolo.back().h, 13);
    EXPECT_EQ(yolo.back().k, 1024);

    EXPECT_EQ(networkByName("ResNet18").size(), resnet.size());
    EXPECT_THROW(networkByName("alexnet"), FatalError);

    // The dedup ratios documented in conv/workloads.hh.
    const OptimizerOptions opts = fastOpts();
    const MachineSpec m = i7_9700k();
    auto countUnique = [&](const std::vector<ConvProblem> &net) {
        std::vector<CacheKey> keys;
        for (const ConvProblem &p : net) {
            const CacheKey k = CacheKey::make(p, m, opts);
            bool seen = false;
            for (const CacheKey &other : keys)
                seen = seen || other == k;
            if (!seen)
                keys.push_back(k);
        }
        return keys.size();
    };
    EXPECT_EQ(countUnique(resnet), 11u);
    EXPECT_EQ(countUnique(vgg), 9u);
    EXPECT_EQ(countUnique(yolo), 16u);
}

} // namespace
} // namespace mopt
