/**
 * @file
 * Unit tests of the fleet-membership layer (src/fleet/): the ring
 * placement math replica sets and digests key off, the shared backoff
 * policy, and the PeerTable state machine (Up -> Suspect -> Down ->
 * half-open probe) that both the ShardRouter's mark-down path and the
 * server's replication push thread consult.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "common/rng.hh"
#include "fleet/backoff.hh"
#include "fleet/peer_table.hh"
#include "fleet/ring.hh"

namespace mopt {
namespace {

TEST(Ring, ResolveReplicationFactor)
{
    // 0 and out-of-range mean "every node" — the historical fanout.
    EXPECT_EQ(resolveReplicationFactor(0, 3), 3u);
    EXPECT_EQ(resolveReplicationFactor(-1, 3), 3u);
    EXPECT_EQ(resolveReplicationFactor(3, 3), 3u);
    EXPECT_EQ(resolveReplicationFactor(7, 3), 3u);
    EXPECT_EQ(resolveReplicationFactor(1, 3), 1u);
    EXPECT_EQ(resolveReplicationFactor(2, 3), 2u);
    EXPECT_EQ(resolveReplicationFactor(1, 1), 1u);
}

TEST(Ring, ReplicaSlotsOwnerFirstRingOrder)
{
    // owner = hash % n, followers are the ring successors, wrapping.
    const auto slots = replicaSlots(/*key_hash=*/7, /*n=*/3,
                                    /*factor=*/2);
    ASSERT_EQ(slots.size(), 2u);
    EXPECT_EQ(slots[0], 1u); // 7 % 3
    EXPECT_EQ(slots[1], 2u);

    const auto wrap = replicaSlots(/*key_hash=*/2, /*n=*/3,
                                   /*factor=*/2);
    ASSERT_EQ(wrap.size(), 2u);
    EXPECT_EQ(wrap[0], 2u);
    EXPECT_EQ(wrap[1], 0u); // Wraps past the end of the ring.

    EXPECT_TRUE(replicaSlots(1, 0, 2).empty());
    EXPECT_EQ(replicaSlots(5, 4, 0).size(), 4u); // factor 0 = all.
}

TEST(Ring, SlotHoldsKeyAgreesWithReplicaSlots)
{
    // Membership test and enumeration must be the same set, for every
    // (hash, factor) over a small fleet.
    const std::size_t n = 5;
    for (std::uint64_t hash = 0; hash < 11; ++hash) {
        for (int factor = 0; factor <= 5; ++factor) {
            const auto slots = replicaSlots(hash, n, factor);
            const std::set<std::size_t> set(slots.begin(), slots.end());
            for (std::size_t slot = 0; slot < n; ++slot)
                EXPECT_EQ(slotHoldsKey(hash, n, factor, slot),
                          set.count(slot) == 1)
                    << "hash=" << hash << " factor=" << factor
                    << " slot=" << slot;
        }
    }
    // Out-of-range slot is never a holder.
    EXPECT_FALSE(slotHoldsKey(0, n, 0, n));
    EXPECT_FALSE(slotHoldsKey(0, 0, 0, 0));
}

TEST(Ring, SlotToPeerIndexSkipsSelf)
{
    // A peers list is the ring with self removed; slots after self
    // shift down by one.
    EXPECT_EQ(slotToPeerIndex(0, /*self=*/2), 0u);
    EXPECT_EQ(slotToPeerIndex(1, /*self=*/2), 1u);
    EXPECT_EQ(slotToPeerIndex(3, /*self=*/2), 2u);
    EXPECT_EQ(slotToPeerIndex(1, /*self=*/0), 0u);
}

TEST(Ring, Mix64DecorrelatesAndIsStable)
{
    // Deterministic, nonzero on small inputs, and distinct across
    // adjacent values (the property the XOR digest fold relies on).
    EXPECT_EQ(mix64(1), mix64(1));
    std::set<std::uint64_t> seen;
    for (std::uint64_t x = 0; x < 100; ++x)
        seen.insert(mix64(x));
    EXPECT_EQ(seen.size(), 100u);
}

TEST(Backoff, DoublesToCapWithoutJitter)
{
    Rng rng(1);
    EXPECT_EQ(backoffDelayMs(100, 1, rng, 2000, false), 100);
    EXPECT_EQ(backoffDelayMs(100, 2, rng, 2000, false), 200);
    EXPECT_EQ(backoffDelayMs(100, 3, rng, 2000, false), 400);
    EXPECT_EQ(backoffDelayMs(100, 8, rng, 2000, false), 2000); // Capped.
    EXPECT_EQ(backoffDelayMs(100, 100, rng, 2000, false), 2000);
    // Equal base and cap: a fixed window at every attempt (the
    // router's markdown_ms configuration).
    EXPECT_EQ(backoffDelayMs(500, 1, rng, 500, false), 500);
    EXPECT_EQ(backoffDelayMs(500, 9, rng, 500, false), 500);
    // Degenerate inputs clamp instead of looping or returning 0.
    EXPECT_GE(backoffDelayMs(0, 1, rng, 0, false), 1);
}

TEST(Backoff, JitterIsBoundedAndDeterministic)
{
    Rng a(42), b(42);
    for (int attempt = 1; attempt <= 6; ++attempt) {
        const long da = backoffDelayMs(100, attempt, a, 2000, true);
        const long db = backoffDelayMs(100, attempt, b, 2000, true);
        EXPECT_EQ(da, db); // Same seed, same schedule.
        long base = 100;
        for (int i = 1; i < attempt && base < 2000; ++i)
            base *= 2;
        base = std::min(base, 2000l);
        EXPECT_GE(da, base);
        EXPECT_LE(da, base + base / 2);
    }
}

TEST(PeerTable, SuspectThenDownThenHalfOpenProbe)
{
    PeerTableOptions po;
    po.down_after = 3;
    po.probe_backoff_ms = 40;
    po.probe_backoff_cap_ms = 40; // Fixed window: test-friendly.
    po.jitter = false;
    PeerTable table(2, po);
    ASSERT_EQ(table.size(), 2u);

    // Fresh peers are Up and offerable; no probe is scheduled.
    EXPECT_EQ(table.state(0), PeerState::Up);
    EXPECT_TRUE(table.offerable(0));
    EXPECT_EQ(table.msUntilProbe(), -1);

    // Strikes one and two: Suspect, still offered (pushes keep
    // probing it for free).
    table.reportFailure(0);
    EXPECT_EQ(table.state(0), PeerState::Suspect);
    EXPECT_TRUE(table.offerable(0));
    table.reportFailure(0);
    EXPECT_EQ(table.state(0), PeerState::Suspect);
    EXPECT_EQ(table.info(0).failures, 2);

    // Strike three: Down and quarantined.
    table.reportFailure(0);
    EXPECT_TRUE(table.isDown(0));
    EXPECT_FALSE(table.offerable(0));
    EXPECT_GT(table.info(0).retry_in_ms, 0);
    EXPECT_GE(table.msUntilProbe(), 0);
    // The other peer is untouched.
    EXPECT_EQ(table.state(1), PeerState::Up);

    // After the window the peer re-opens half-way: offerable while
    // still Down, so exactly one caller probes it.
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_TRUE(table.isDown(0));
    EXPECT_TRUE(table.offerable(0));
    EXPECT_EQ(table.info(0).retry_in_ms, 0);

    // A success during half-open resets everything.
    table.reportSuccess(0);
    EXPECT_EQ(table.state(0), PeerState::Up);
    EXPECT_EQ(table.info(0).failures, 0);
    EXPECT_EQ(table.msUntilProbe(), -1);
}

TEST(PeerTable, FailedProbeReArmsDoubledQuarantine)
{
    PeerTableOptions po;
    po.down_after = 1; // First failure quarantines.
    po.probe_backoff_ms = 50;
    po.probe_backoff_cap_ms = 400;
    po.jitter = false;
    PeerTable table(1, po);

    table.reportFailure(0);
    EXPECT_TRUE(table.isDown(0));
    const long first = table.info(0).retry_in_ms;
    EXPECT_GT(first, 0);
    EXPECT_LE(first, 50);

    // A failure while Down doubles the next window (capped).
    table.reportFailure(0);
    const long second = table.info(0).retry_in_ms;
    EXPECT_GT(second, first);
    EXPECT_LE(second, 100);
    for (int i = 0; i < 10; ++i)
        table.reportFailure(0);
    EXPECT_LE(table.info(0).retry_in_ms, 400); // Capped, jitter off.
}

TEST(PeerTable, RouterConfigHoldsExactlyMarkdownWindow)
{
    // down_after = 1 with base == cap and no jitter reproduces the
    // router's historical markdown_ms semantics: every failure holds
    // the node for the same fixed window.
    PeerTableOptions po;
    po.down_after = 1;
    po.probe_backoff_ms = 80;
    po.probe_backoff_cap_ms = 80;
    po.jitter = false;
    PeerTable table(3, po);

    table.reportFailure(2);
    EXPECT_TRUE(table.isDown(2));
    EXPECT_FALSE(table.offerable(2));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_TRUE(table.offerable(2));
    // Another failure after the window: the same 80 ms hold again
    // (base == cap defeats the doubling).
    table.reportFailure(2);
    EXPECT_FALSE(table.offerable(2));
    EXPECT_LE(table.info(2).retry_in_ms, 80);
}

} // namespace
} // namespace mopt
