/**
 * @file
 * Tests of the single-flight solve scheduler: concurrent requests for
 * one key coalesce onto exactly one solver invocation, distinct keys
 * overlap in time up to the concurrency budget, plans are
 * byte-identical for any budget, and a throwing solve reaches every
 * waiter while leaving the key retryable (no poisoned entries).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "machine/machine.hh"
#include "service/network_optimizer.hh"
#include "service/solution_cache.hh"
#include "service/solve_scheduler.hh"

namespace mopt {
namespace {

ConvProblem
smallProblem(std::int64_t k = 32, std::int64_t c = 16, std::int64_t hw = 14)
{
    ConvProblem p;
    p.name = "sched";
    p.n = 1;
    p.k = k;
    p.c = c;
    p.r = 3;
    p.s = 3;
    p.h = hw;
    p.w = hw;
    return p;
}

OptimizerOptions
fastOpts()
{
    OptimizerOptions o;
    o.effort = OptimizerOptions::Effort::Fast;
    o.parallel = true;
    o.threads = 4;
    return o;
}

MachineSpec
tiny()
{
    return machineByName("tiny");
}

TEST(SolveScheduler, ColdSolveThenCacheHit)
{
    SolutionCache cache;
    SolveScheduler sched(tiny(), fastOpts(), &cache,
                         SolveSchedulerOptions{2});

    const ScheduledSolve cold = sched.solve(smallProblem());
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_FALSE(cold.coalesced);
    EXPECT_GT(cold.solve_seconds, 0.0);
    EXPECT_GT(cold.solver_evals, 0);

    const ScheduledSolve warm = sched.solve(smallProblem());
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(warm.sol, cold.sol);
    EXPECT_EQ(warm.solve_seconds, 0.0);

    const SolveSchedulerStats st = sched.stats();
    EXPECT_EQ(st.solves, 1);
    EXPECT_EQ(st.in_flight, 0);
}

TEST(SolveScheduler, ConcurrentRequestsForOneKeyRunOneSolve)
{
    SolutionCache cache;
    SolveScheduler sched(tiny(), fastOpts(), &cache,
                         SolveSchedulerOptions{4});

    constexpr int kClients = 8;
    std::latch start(kClients);
    std::vector<ScheduledSolve> results(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            start.arrive_and_wait();
            results[static_cast<std::size_t>(t)] =
                sched.solve(smallProblem());
        });
    }
    for (std::thread &t : threads)
        t.join();

    // Exactly one solver invocation; every requester got its result.
    EXPECT_EQ(sched.stats().solves, 1);
    int leaders = 0;
    for (const ScheduledSolve &r : results) {
        EXPECT_EQ(r.sol, results.front().sol);
        if (!r.cache_hit && !r.coalesced)
            ++leaders;
        else
            EXPECT_EQ(r.solve_seconds, 0.0);
    }
    EXPECT_EQ(leaders, 1);
}

TEST(SolveScheduler, DistinctKeysOverlapUpToBudget)
{
    SolutionCache cache;
    SolveScheduler sched(tiny(), fastOpts(), &cache,
                         SolveSchedulerOptions{2});
    EXPECT_EQ(sched.concurrency(), 2);

    // Submit four distinct cold shapes without blocking, then join:
    // with two runners and multi-millisecond solves, both runners
    // must have been observed in flight at once.
    std::vector<SolveTicket> tickets;
    for (int i = 0; i < 4; ++i)
        tickets.push_back(sched.submit(smallProblem(16 + 16 * i)));
    for (const SolveTicket &t : tickets) {
        const ScheduledSolve r = t.wait();
        EXPECT_FALSE(r.cache_hit);
        EXPECT_FALSE(r.coalesced);
    }

    const SolveSchedulerStats st = sched.stats();
    EXPECT_EQ(st.solves, 4);
    EXPECT_EQ(st.coalesced, 0);
    EXPECT_GE(st.peak_concurrency, 2);
    EXPECT_EQ(st.in_flight, 0);
}

TEST(SolveScheduler, BudgetDoesNotChangeSolutions)
{
    const std::vector<ConvProblem> problems{
        smallProblem(32), smallProblem(48), smallProblem(64)};

    SolutionCache cache1, cache4;
    SolveScheduler serial(tiny(), fastOpts(), &cache1,
                          SolveSchedulerOptions{1});
    SolveScheduler wide(tiny(), fastOpts(), &cache4,
                        SolveSchedulerOptions{4});

    std::vector<SolveTicket> tickets;
    for (const ConvProblem &p : problems)
        tickets.push_back(wide.submit(p));
    for (std::size_t i = 0; i < problems.size(); ++i) {
        const ScheduledSolve a = serial.solve(problems[i]);
        const ScheduledSolve b = tickets[i].wait();
        EXPECT_EQ(a.sol, b.sol) << "problem " << i;
    }
}

TEST(SolveScheduler, ExceptionReachesEveryWaiterAndKeyIsRetryable)
{
    ConvProblem bad = smallProblem();
    bad.k = 0; // optimizeConv's validate() rejects this loudly.

    SolutionCache cache;
    SolveScheduler sched(tiny(), fastOpts(), &cache,
                         SolveSchedulerOptions{2});

    constexpr int kClients = 3;
    std::latch start(kClients);
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&] {
            start.arrive_and_wait();
            try {
                sched.solve(bad);
            } catch (const FatalError &) {
                failures.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), kClients);

    // The failed flight must be gone: the key retries fresh (and
    // fails identically) instead of replaying a poisoned entry...
    const std::int64_t solves_before = sched.stats().solves;
    EXPECT_THROW(sched.solve(bad), FatalError);
    EXPECT_GT(sched.stats().solves, solves_before);
    EXPECT_EQ(sched.stats().in_flight, 0);

    // ...and the scheduler is unharmed for valid work.
    const ScheduledSolve ok = sched.solve(smallProblem());
    EXPECT_FALSE(ok.cache_hit);
    EXPECT_GT(ok.sol.predicted_seconds, 0.0);
}

TEST(NetworkOptimizer, SchedulerPlanIsByteIdenticalToSerial)
{
    // A net with duplicate shapes, so dedupe + scheduler interact.
    std::vector<ConvProblem> net;
    for (int i = 0; i < 3; ++i) {
        net.push_back(smallProblem(32));
        net.push_back(smallProblem(16 + 16 * i));
    }

    SolutionCache serial_cache;
    const NetworkOptimizer serial(tiny(), fastOpts(), &serial_cache);
    const NetworkPlan serial_plan = serial.optimize(net);

    SolutionCache cache;
    SolveScheduler sched(tiny(), fastOpts(), &cache,
                         SolveSchedulerOptions{4});
    const NetworkOptimizer piped(tiny(), fastOpts(), &cache, &sched);
    const NetworkPlan cold = piped.optimize(net);

    EXPECT_EQ(cold.str(), serial_plan.str());
    EXPECT_EQ(cold.stats.unique_shapes, serial_plan.stats.unique_shapes);
    EXPECT_EQ(cold.stats.cache_misses, serial_plan.stats.cache_misses);
    EXPECT_EQ(cold.stats.coalesced, 0u);
    EXPECT_EQ(sched.stats().solves,
              static_cast<std::int64_t>(cold.stats.cache_misses));

    // Warm pass through the scheduler: pure hits, still identical.
    const NetworkPlan warm = piped.optimize(net);
    EXPECT_EQ(warm.str(), serial_plan.str());
    EXPECT_EQ(warm.stats.cache_hits, warm.stats.unique_shapes);
    EXPECT_EQ(sched.stats().solves,
              static_cast<std::int64_t>(cold.stats.cache_misses));
}

TEST(NetworkOptimizer, RejectsMismatchedScheduler)
{
    SolutionCache cache;
    OptimizerOptions other = fastOpts();
    other.seed += 1; // Different settings fingerprint.
    SolveScheduler sched(tiny(), other, &cache);
    EXPECT_THROW(NetworkOptimizer(tiny(), fastOpts(), &cache, &sched),
                 FatalError);
}

} // namespace
} // namespace mopt
