/**
 * @file
 * Tests of dilated convolution support across the whole stack — the
 * paper's footnote 1 generalization: problem geometry, footprint and
 * data-volume model, tiled executor vs reference, trace simulation,
 * and the C emitter, all at dilation > 1.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "cachesim/conv_trace.hh"
#include "codegen/c_emitter.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "conv/reference.hh"
#include "exec/conv_exec.hh"
#include "machine/machine.hh"
#include "model/footprint.hh"
#include "model/multi_level.hh"
#include "model/pruned_classes.hh"
#include "model/single_level.hh"
#include "optimizer/mopt_optimizer.hh"

namespace mopt {
namespace {

ConvProblem
dilatedProb(int dilation, int stride = 1)
{
    ConvProblem p;
    p.name = "dil" + std::to_string(dilation);
    p.n = 1;
    p.k = 20; // exercises the scalar edge path too (20 = 16 + 4)
    p.c = 4;
    p.r = 3;
    p.s = 3;
    p.h = 8;
    p.w = 9;
    p.stride = stride;
    p.dilation = dilation;
    return p;
}

TEST(Dilation, InputExtentFormula)
{
    // (t-1)*stride + (k-1)*dilation + 1.
    EXPECT_DOUBLE_EQ(inputExtent(6.0, 3.0, 1, 1), 8.0); // paper: t+k-1
    EXPECT_DOUBLE_EQ(inputExtent(6.0, 3.0, 2, 1), 13.0);
    EXPECT_DOUBLE_EQ(inputExtent(6.0, 3.0, 1, 2), 10.0);
    EXPECT_DOUBLE_EQ(inputExtent(6.0, 3.0, 2, 3), 17.0);
    EXPECT_DOUBLE_EQ(inputExtent(1.0, 1.0, 4, 4), 1.0);
}

TEST(Dilation, ProblemGeometry)
{
    const ConvProblem p = dilatedProb(2);
    EXPECT_EQ(p.inH(), (8 - 1) * 1 + (3 - 1) * 2 + 1); // 12
    EXPECT_EQ(p.inW(), (9 - 1) * 1 + (3 - 1) * 2 + 1); // 13
    EXPECT_EQ(p.macs(), 20 * 4 * 3 * 3 * 8 * 9);

    ConvProblem bad = p;
    bad.dilation = 0;
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(Dilation, SummaryMentionsDilationOnlyWhenNonUnit)
{
    EXPECT_EQ(dilatedProb(1).summary().find("dilation"),
              std::string::npos);
    EXPECT_NE(dilatedProb(3).summary().find("dilation=3"),
              std::string::npos);
}

TEST(Dilation, FootprintGrowsWithDilation)
{
    const TileVec t{1, 8, 4, 3, 3, 4, 6};
    const double f1 = tileFootprint(TenIn, t, dilatedProb(1));
    const double f2 = tileFootprint(TenIn, t, dilatedProb(2));
    const double f3 = tileFootprint(TenIn, t, dilatedProb(3));
    EXPECT_LT(f1, f2);
    EXPECT_LT(f2, f3);
    // Ker and Out are dilation-independent.
    EXPECT_DOUBLE_EQ(tileFootprint(TenKer, t, dilatedProb(1)),
                     tileFootprint(TenKer, t, dilatedProb(3)));
    EXPECT_DOUBLE_EQ(tileFootprint(TenOut, t, dilatedProb(1)),
                     tileFootprint(TenOut, t, dilatedProb(3)));
}

TEST(Dilation, DataVolumeUsesDilatedExtents)
{
    // With full-problem tiles the In volume is exactly the In size,
    // which includes the dilated halo.
    for (int dil : {1, 2, 3}) {
        const ConvProblem p = dilatedProb(dil);
        const TileVec full = toTileVec(problemExtents(p));
        const Permutation perm = Permutation::parse("nkcrshw");
        EXPECT_DOUBLE_EQ(
            tensorDataVolume(TenIn, perm, full, full, p),
            static_cast<double>(p.inSize()))
            << "dilation " << dil;
    }
}

TEST(Dilation, ExecutorMatchesReferenceAcrossDilations)
{
    for (int dil : {2, 3}) {
        for (int stride : {1, 2}) {
            const ConvProblem p = dilatedProb(dil, stride);
            Rng rng(11);
            Tensor4 in = makeInput(p), ker = makeKernel(p);
            in.fillRandom(rng);
            ker.fillRandom(rng);

            Tensor4 expected = makeOutput(p);
            referenceConv(p, in, ker, expected);

            ExecConfig cfg = defaultConfig(p);
            cfg.tiles[LvlL1] = {1, 16, 2, 3, 2, 3, 4}; // partial tiles
            Tensor4 got = makeOutput(p);
            runConv(p, in, ker, got, cfg, 1);
            EXPECT_LT(Tensor4::maxAbsDiff(expected, got), 2e-3)
                << "dilation " << dil << " stride " << stride;
        }
    }
}

TEST(Dilation, ParallelExecutorMatchesSequential)
{
    const ConvProblem p = dilatedProb(2);
    Rng rng(12);
    Tensor4 in = makeInput(p), ker = makeKernel(p);
    in.fillRandom(rng);
    ker.fillRandom(rng);

    ExecConfig cfg = defaultConfig(p);
    cfg.par[DimK] = 2;
    cfg.par[DimH] = 2;
    Tensor4 seq = makeOutput(p), par = makeOutput(p);
    ExecConfig seq_cfg = defaultConfig(p);
    runConv(p, in, ker, seq, seq_cfg, 1);
    runConv(p, in, ker, par, cfg, 4);
    EXPECT_LT(Tensor4::maxAbsDiff(seq, par), 2e-3);
}

TEST(Dilation, TraceCompulsoryInputTraffic)
{
    // A problem that fits the tiny machine's L3 entirely: memory-level
    // misses equal the three compulsory footprints, with In's dilated.
    ConvProblem p = dilatedProb(2);
    p.k = 8;
    p.c = 2;
    const MachineSpec m = tinyTestMachine();

    ExecConfig cfg;
    cfg.perm[LvlReg] = microkernelPermutation();
    cfg.tiles[LvlReg] = {1, 8, 1, 1, 1, 1, 6};
    for (int l = LvlL1; l <= LvlL3; ++l) {
        cfg.perm[static_cast<std::size_t>(l)] =
            Permutation::parse("kcrsnhw");
        cfg.tiles[static_cast<std::size_t>(l)] = problemExtents(p);
    }
    cfg.tiles[LvlL1] = {1, 8, 2, 3, 3, 2, 6};

    const TraceStats ts = simulateConvTrace(p, cfg, m);
    // Dilated accesses skip every other input row/column, so the
    // touched-word count is the number of *distinct* dilated taps, a
    // subset of the rectangular inSize() hull.
    EXPECT_LE(ts.traffic[2].misses, p.inSize() + p.kerSize() + p.outSize());
    EXPECT_GE(ts.traffic[2].misses, p.kerSize() + p.outSize());
    EXPECT_EQ(ts.traffic[2].writebacks, p.outSize());
}

TEST(Dilation, OptimizerProducesFeasibleConfig)
{
    ConvProblem p = dilatedProb(2);
    p.k = 32;
    p.c = 16;
    p.h = 14;
    p.w = 14;
    OptimizerOptions o;
    o.effort = OptimizerOptions::Effort::Fast;
    o.parallel = false;
    const OptimizeOutput out = optimizeConv(p, i7_9700k(), o);
    ASSERT_FALSE(out.candidates.empty());
    EXPECT_DOUBLE_EQ(
        capacityViolation(out.candidates.front().config, p, i7_9700k()),
        0.0);
}

TEST(Dilation, GeneratedCodeMatchesReference)
{
    ConvProblem p = dilatedProb(2);
    p.k = 9;
    p.c = 3;
    p.h = 6;
    p.w = 7;
    ExecConfig cfg = defaultConfig(p);
    cfg.tiles[LvlL1] = {1, 4, 2, 3, 1, 3, 5};

    const std::string src = emitStandaloneProgram(p, cfg);
    EXPECT_NE(src.find("* 2L)"), std::string::npos)
        << "dilation factor missing from emitted indexing";

    const std::string dir = ::testing::TempDir();
    const std::string c_path = dir + "/mopt_dil.c";
    const std::string bin_path = dir + "/mopt_dil_bin";
    {
        std::ofstream f(c_path);
        ASSERT_TRUE(f.good());
        f << src;
    }
    ASSERT_EQ(std::system(("cc -O1 -o " + bin_path + " " + c_path +
                           " 2>/dev/null")
                              .c_str()),
              0)
        << "host C compiler failed on generated dilated code";
    FILE *pipe = ::popen(bin_path.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    char buf[256] = {};
    ASSERT_NE(std::fgets(buf, sizeof(buf), pipe), nullptr);
    ::pclose(pipe);
    double checksum = 0.0;
    ASSERT_EQ(std::sscanf(buf, "checksum %lf", &checksum), 1) << buf;
    const double expected = lcgChecksumReference(p);
    EXPECT_NEAR(checksum, expected,
                1e-4 * std::max(1.0, std::abs(expected)));
}

} // namespace
} // namespace mopt
