/**
 * @file
 * Tests of the RPC layer: wire-protocol round trips and rejection of
 * malformed input, newline framing over fragmented streams, the
 * moptd server end to end over loopback (cold/warm provenance,
 * fingerprint guards, corrupt and oversized requests, concurrent
 * clients, shutdown), and the shard router (stable hash routing,
 * local fallback when a node is down).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "conv/workloads.hh"
#include "machine/machine.hh"
#include "rpc/client.hh"
#include "rpc/protocol.hh"
#include "rpc/server.hh"
#include "rpc/tcp.hh"
#include "service/cache_key.hh"
#include "service/network_optimizer.hh"

namespace mopt {
namespace {

ConvProblem
smallProblem(std::int64_t k = 32, std::int64_t c = 16, std::int64_t hw = 14)
{
    ConvProblem p;
    p.name = "rpc";
    p.n = 1;
    p.k = k;
    p.c = c;
    p.r = 3;
    p.s = 3;
    p.h = hw;
    p.w = hw;
    return p;
}

OptimizerOptions
fastOpts()
{
    OptimizerOptions o;
    o.effort = OptimizerOptions::Effort::Fast;
    o.parallel = true;
    o.threads = 4;
    return o;
}

MachineSpec
tiny()
{
    return machineByName("tiny");
}

/** A running moptd on an ephemeral loopback port. */
class TestServer
{
  public:
    explicit TestServer(ServerOptions so = {},
                        SolutionCacheOptions co = {},
                        OptimizerOptions opts = fastOpts())
        : cache_(co), server_(tiny(), opts, &cache_, so)
    {
        std::string err;
        if (!server_.start(&err))
            fatal("TestServer: " + err);
        thread_ = std::thread([this] { server_.serve(); });
    }

    ~TestServer()
    {
        server_.stop();
        if (thread_.joinable())
            thread_.join();
    }

    RpcEndpoint ep() const
    {
        return RpcEndpoint{"127.0.0.1", server_.port()};
    }

    SolutionCache &cache() { return cache_; }
    Server &server() { return server_; }

    /** Join the serve loop (after a shutdown op or stop()). */
    void join()
    {
        if (thread_.joinable())
            thread_.join();
    }

  private:
    SolutionCache cache_;
    Server server_;
    std::thread thread_;
};

RpcRequest
solveRequest(const ConvProblem &p)
{
    RpcRequest req;
    req.op = RpcOp::Solve;
    req.problem = p;
    req.machine_fp = CacheKey::machineFingerprint(tiny());
    req.settings_fp = CacheKey::settingsFingerprint(fastOpts());
    return req;
}

TEST(RpcProtocol, RequestRoundTrip)
{
    RpcRequest req = solveRequest(smallProblem());
    RpcRequest back;
    std::string err;
    ASSERT_TRUE(requestFromJsonLine(requestToJsonLine(req), back, &err))
        << err;
    EXPECT_EQ(back.op, RpcOp::Solve);
    // The wire strips the layer name: requests travel canonical.
    EXPECT_EQ(back.problem.k, req.problem.k);
    EXPECT_EQ(back.problem.h, req.problem.h);
    EXPECT_EQ(back.machine_fp, req.machine_fp);
    EXPECT_EQ(back.settings_fp, req.settings_fp);

    RpcRequest net;
    net.op = RpcOp::SolveNetwork;
    net.net = "resnet18";
    ASSERT_TRUE(requestFromJsonLine(requestToJsonLine(net), back, &err));
    EXPECT_EQ(back.op, RpcOp::SolveNetwork);
    EXPECT_EQ(back.net, "resnet18");
    EXPECT_EQ(back.machine_fp, 0u); // Omitted fingerprint = no check.

    for (const RpcOp op : {RpcOp::Stats, RpcOp::Shutdown}) {
        RpcRequest r;
        r.op = op;
        ASSERT_TRUE(requestFromJsonLine(requestToJsonLine(r), back, &err));
        EXPECT_EQ(back.op, op);
    }
}

TEST(RpcProtocol, VersionGate)
{
    RpcRequest out;
    std::string err;

    // An explicit v:1 and an absent v (pre-versioning client) both
    // parse; the wire form always carries v.
    ASSERT_TRUE(requestFromJsonLine("{\"v\":1,\"op\":\"stats\"}", out,
                                    &err))
        << err;
    EXPECT_EQ(out.v, 1);
    ASSERT_TRUE(requestFromJsonLine("{\"op\":\"stats\"}", out, &err))
        << err;
    EXPECT_EQ(out.v, 1);
    EXPECT_NE(requestToJsonLine(out).find("\"v\":1"),
              std::string::npos);

    // Any other major version is refused before the fields are
    // interpreted, with a message that names both versions.
    EXPECT_FALSE(
        requestFromJsonLine("{\"v\":2,\"op\":\"stats\"}", out, &err));
    EXPECT_NE(err.find("unsupported protocol version v=2"),
              std::string::npos);
    EXPECT_NE(err.find("v=1"), std::string::npos);
    EXPECT_FALSE(
        requestFromJsonLine("{\"v\":\"one\",\"op\":\"stats\"}", out,
                            &err));
}

TEST(RpcServer, RefusesUnknownProtocolVersion)
{
    TestServer ts;
    TcpSocket sock = TcpSocket::connectTo(ts.ep().host, ts.ep().port);
    ASSERT_TRUE(sock.valid());
    LineReader reader(sock, 1 << 20);
    std::string line;

    ASSERT_TRUE(sock.sendAll("{\"v\":7,\"op\":\"stats\"}\n"));
    ASSERT_EQ(reader.readLine(line), LineReader::Status::Ok);
    RpcResponse resp;
    std::string err;
    ASSERT_TRUE(responseFromJsonLine(line, resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_NE(resp.error.find("unsupported protocol version"),
              std::string::npos);

    // Back-compat: the same connection, a version-less v1 request.
    ASSERT_TRUE(sock.sendAll("{\"op\":\"stats\"}\n"));
    ASSERT_EQ(reader.readLine(line), LineReader::Status::Ok);
    ASSERT_TRUE(responseFromJsonLine(line, resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
}

TEST(RpcProtocol, RequestRejectsMalformed)
{
    RpcRequest out;
    std::string err;
    EXPECT_FALSE(requestFromJsonLine("not json", out, &err));
    EXPECT_FALSE(requestFromJsonLine("{\"op\":\"fry\"}", out, &err));
    EXPECT_NE(err.find("unknown op"), std::string::npos);
    EXPECT_FALSE(requestFromJsonLine("{\"op\":\"solve\"}", out, &err));
    EXPECT_FALSE(requestFromJsonLine(
        "{\"op\":\"solve_network\"}", out, &err));
    // Shape fields must be sane, not just present.
    EXPECT_FALSE(requestFromJsonLine(
        "{\"op\":\"solve\",\"n\":1,\"k\":0,\"c\":1,\"r\":1,\"s\":1,"
        "\"h\":1,\"w\":1,\"stride\":1,\"dilation\":1}",
        out, &err));
    // Fingerprints must be 16 hex digits when present.
    EXPECT_FALSE(requestFromJsonLine(
        "{\"op\":\"stats\",\"machine\":\"xyz\"}", out, &err));
    // A nesting bomb (valid JSON, 100k levels deep) must draw a parse
    // error, not recurse the handler thread's stack into the ground.
    const std::string bomb =
        std::string(100000, '[') + std::string(100000, ']');
    EXPECT_FALSE(requestFromJsonLine(bomb, out, &err));
}

TEST(RpcProtocol, ResponseRoundTrips)
{
    // Error response.
    RpcResponse back;
    std::string err;
    ASSERT_TRUE(responseFromJsonLine(
        responseToJsonLine(rpcErrorResponse("busted \"quote\"")), back,
        &err));
    EXPECT_FALSE(back.ok);
    EXPECT_EQ(back.error, "busted \"quote\"");

    // Solve response, via a real solve so the record is meaningful.
    const ConvProblem p = smallProblem();
    SolutionCache cache;
    Server server(tiny(), fastOpts(), &cache);
    const RpcResponse solved = server.handle(solveRequest(p));
    ASSERT_TRUE(solved.ok);
    ASSERT_TRUE(responseFromJsonLine(responseToJsonLine(solved), back,
                                     &err))
        << err;
    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.op, RpcOp::Solve);
    EXPECT_FALSE(back.solve.cache_hit);
    EXPECT_EQ(back.solve.sol, solved.solve.sol);
    EXPECT_EQ(back.solve.key, solved.solve.key);

    // Stats response (entry telemetry included).
    cache.lookup(back.solve.key, nullptr);
    RpcRequest stats_req;
    stats_req.op = RpcOp::Stats;
    const RpcResponse stats = server.handle(stats_req);
    ASSERT_TRUE(stats.ok);
    ASSERT_TRUE(responseFromJsonLine(responseToJsonLine(stats), back,
                                     &err))
        << err;
    EXPECT_EQ(back.op, RpcOp::Stats);
    EXPECT_EQ(back.entries, 1);
    ASSERT_EQ(back.entry_hits.size(), 1u);
    EXPECT_EQ(back.entry_hits[0].hits, 1);
    EXPECT_EQ(back.machine_name, "tiny");
    // Scheduler counters survive the round trip: the one cold solve
    // above ran through the single-flight scheduler.
    EXPECT_EQ(back.sched_solves, 1);
    EXPECT_EQ(back.sched_coalesced, 0);
    EXPECT_EQ(back.sched_inflight, 0);
    EXPECT_EQ(back.sched_budget, 1);
    // A pre-scheduler stats line (no sched_* members) still parses,
    // reading 0 — rolling-fleet back-compat.
    std::string legacy = responseToJsonLine(stats);
    const auto pos = legacy.find(",\"sched_solves\"");
    const auto end_pos = legacy.find(",\"entry_hits\"");
    ASSERT_NE(pos, std::string::npos);
    ASSERT_NE(end_pos, std::string::npos);
    legacy.erase(pos, end_pos - pos);
    ASSERT_TRUE(responseFromJsonLine(legacy, back, &err)) << err;
    EXPECT_EQ(back.sched_solves, 0);
    EXPECT_EQ(back.sched_budget, 0);
}

TEST(RpcProtocol, EndpointListParsing)
{
    const auto eps = parseEndpointList("h1:7071, h2:7072,127.0.0.1:80");
    ASSERT_EQ(eps.size(), 3u);
    EXPECT_EQ(eps[0].host, "h1");
    EXPECT_EQ(eps[0].port, 7071);
    EXPECT_EQ(eps[1].host, "h2");
    EXPECT_EQ(eps[2].str(), "127.0.0.1:80");

    EXPECT_THROW(parseEndpointList(""), FatalError);
    EXPECT_THROW(parseEndpointList("hostonly"), FatalError);
    EXPECT_THROW(parseEndpointList("host:"), FatalError);
    EXPECT_THROW(parseEndpointList(":7071"), FatalError);
    EXPECT_THROW(parseEndpointList("h:0"), FatalError);
    EXPECT_THROW(parseEndpointList("h:70000"), FatalError);
    EXPECT_THROW(parseEndpointList("h:12x"), FatalError);
    EXPECT_THROW(parseEndpointList("h1:1,,h2:2"), FatalError);
}

TEST(RpcTcp, LineReaderReassemblesFragments)
{
    TcpListener listener;
    ASSERT_TRUE(listener.listenOn("127.0.0.1", 0));
    TcpSocket client = TcpSocket::connectTo("127.0.0.1", listener.port());
    ASSERT_TRUE(client.valid());
    TcpSocket served = listener.accept();
    ASSERT_TRUE(served.valid());

    // Two lines and a CRLF line, delivered in awkward fragments.
    ASSERT_TRUE(client.sendAll("hel"));
    ASSERT_TRUE(client.sendAll("lo\nwor"));
    ASSERT_TRUE(client.sendAll("ld\r\ntail"));
    client.shutdownBoth(); // Flush EOF after the unterminated tail.

    LineReader reader(served, 1024);
    std::string line;
    ASSERT_EQ(reader.readLine(line), LineReader::Status::Ok);
    EXPECT_EQ(line, "hello");
    ASSERT_EQ(reader.readLine(line), LineReader::Status::Ok);
    EXPECT_EQ(line, "world");
    // The unterminated tail is not a line; EOF wins.
    EXPECT_EQ(reader.readLine(line), LineReader::Status::Eof);
}

TEST(RpcTcp, LineReaderRejectsOversizedLine)
{
    TcpListener listener;
    ASSERT_TRUE(listener.listenOn("127.0.0.1", 0));
    TcpSocket client = TcpSocket::connectTo("127.0.0.1", listener.port());
    ASSERT_TRUE(client.valid());
    TcpSocket served = listener.accept();
    ASSERT_TRUE(served.valid());

    LineReader reader(served, 64);
    ASSERT_TRUE(client.sendAll(std::string(256, 'a')));
    std::string line;
    EXPECT_EQ(reader.readLine(line), LineReader::Status::TooLong);
}

TEST(RpcServer, SolveColdThenWarmAcrossConnections)
{
    TestServer ts;
    const ConvProblem p = smallProblem();

    Client a(ts.ep());
    RpcResponse cold;
    std::string err;
    ASSERT_TRUE(a.call(solveRequest(p), cold, &err)) << err;
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_FALSE(cold.solve.cache_hit);
    EXPECT_GT(cold.solve.sol.predicted_seconds, 0.0);

    // A different connection must see the shared cache.
    Client b(ts.ep());
    RpcResponse warm;
    ASSERT_TRUE(b.call(solveRequest(p), warm, &err)) << err;
    ASSERT_TRUE(warm.ok);
    EXPECT_TRUE(warm.solve.cache_hit);
    EXPECT_EQ(warm.solve.sol, cold.solve.sol);
    EXPECT_EQ(warm.solve_seconds, 0.0);
}

TEST(RpcServer, RejectsFingerprintMismatch)
{
    TestServer ts;
    Client c(ts.ep());
    RpcRequest req = solveRequest(smallProblem());
    req.machine_fp ^= 1; // Client configured for a different machine.
    RpcResponse resp;
    std::string err;
    ASSERT_TRUE(c.call(req, resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_NE(resp.error.find("machine fingerprint mismatch"),
              std::string::npos);

    req = solveRequest(smallProblem());
    req.settings_fp ^= 1;
    ASSERT_TRUE(c.call(req, resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_NE(resp.error.find("settings fingerprint mismatch"),
              std::string::npos);
}

TEST(RpcServer, RejectsUnknownNetwork)
{
    TestServer ts;
    Client c(ts.ep());
    RpcRequest req;
    req.op = RpcOp::SolveNetwork;
    req.net = "skynet";
    RpcResponse resp;
    std::string err;
    ASSERT_TRUE(c.call(req, resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
}

TEST(RpcServer, CorruptRequestKeepsConnectionUsable)
{
    TestServer ts;
    TcpSocket sock =
        TcpSocket::connectTo(ts.ep().host, ts.ep().port);
    ASSERT_TRUE(sock.valid());
    LineReader reader(sock, 1 << 20);
    std::string line;

    ASSERT_TRUE(sock.sendAll("this is not json\n"));
    ASSERT_EQ(reader.readLine(line), LineReader::Status::Ok);
    RpcResponse resp;
    std::string err;
    ASSERT_TRUE(responseFromJsonLine(line, resp, &err)) << err;
    EXPECT_FALSE(resp.ok);

    // Same connection, next line: a valid request still works.
    ASSERT_TRUE(sock.sendAll("{\"op\":\"stats\"}\n"));
    ASSERT_EQ(reader.readLine(line), LineReader::Status::Ok);
    ASSERT_TRUE(responseFromJsonLine(line, resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
    EXPECT_EQ(resp.op, RpcOp::Stats);
}

TEST(RpcServer, OversizedRequestAnsweredAndDropped)
{
    ServerOptions so;
    so.max_request_bytes = 128;
    TestServer ts(so);
    TcpSocket sock = TcpSocket::connectTo(ts.ep().host, ts.ep().port);
    ASSERT_TRUE(sock.valid());

    ASSERT_TRUE(sock.sendAll(std::string(4096, 'x')));
    LineReader reader(sock, 1 << 20);
    std::string line;
    ASSERT_EQ(reader.readLine(line), LineReader::Status::Ok);
    RpcResponse resp;
    std::string err;
    ASSERT_TRUE(responseFromJsonLine(line, resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_NE(resp.error.find("exceeds"), std::string::npos);
    // Framing is unrecoverable: the server hangs up.
    EXPECT_EQ(reader.readLine(line), LineReader::Status::Eof);

    // The server itself is unharmed.
    Client c(ts.ep());
    RpcRequest req;
    req.op = RpcOp::Stats;
    ASSERT_TRUE(c.call(req, resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
}

TEST(RpcServer, ConcurrentClientsAgree)
{
    TestServer ts;
    const std::vector<ConvProblem> problems{
        smallProblem(32), smallProblem(48), smallProblem(64)};

    // Reference answers, solved through the same server.
    std::vector<CachedSolution> expected(problems.size());
    {
        Client c(ts.ep());
        for (std::size_t i = 0; i < problems.size(); ++i) {
            RpcResponse resp;
            std::string err;
            ASSERT_TRUE(c.call(solveRequest(problems[i]), resp, &err))
                << err;
            ASSERT_TRUE(resp.ok) << resp.error;
            expected[i] = resp.solve.sol;
        }
    }

    constexpr int kThreads = 8;
    constexpr int kCallsPerThread = 6;
    std::atomic<int> mismatches{0}, failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Client c(ts.ep());
            for (int i = 0; i < kCallsPerThread; ++i) {
                const std::size_t pi =
                    static_cast<std::size_t>(t + i) % problems.size();
                RpcResponse resp;
                if (!c.call(solveRequest(problems[pi]), resp) ||
                    !resp.ok) {
                    failures.fetch_add(1);
                    continue;
                }
                if (!(resp.solve.sol == expected[pi]))
                    mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_GE(ts.server().counters().requests.load(),
              kThreads * kCallsPerThread);
}

TEST(RpcServer, ConcurrentColdRequestsForOneShapeSolveOnce)
{
    ServerOptions so;
    so.workers = 8;
    so.solve_concurrency = 2;
    TestServer ts(so);
    const ConvProblem p = smallProblem();

    constexpr int kClients = 8;
    std::atomic<int> failures{0}, mismatches{0};
    std::vector<CachedSolution> sols(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            Client c(ts.ep());
            RpcResponse resp;
            if (!c.call(solveRequest(p), resp) || !resp.ok)
                failures.fetch_add(1);
            else
                sols[static_cast<std::size_t>(t)] = resp.solve.sol;
        });
    }
    for (std::thread &t : threads)
        t.join();
    ASSERT_EQ(failures.load(), 0);
    for (const CachedSolution &s : sols)
        if (!(s == sols.front()))
            mismatches.fetch_add(1);
    EXPECT_EQ(mismatches.load(), 0);

    // Single flight: eight cold clients, one solver invocation, one
    // cache entry.
    EXPECT_EQ(ts.server().schedulerStats().solves, 1);
    EXPECT_EQ(ts.cache().size(), 1u);

    // The stats RPC reports the same truth over the wire.
    Client c(ts.ep());
    RpcRequest req;
    req.op = RpcOp::Stats;
    RpcResponse resp;
    std::string err;
    ASSERT_TRUE(c.call(req, resp, &err)) << err;
    EXPECT_EQ(resp.sched_solves, 1);
    EXPECT_EQ(resp.sched_budget, 2);
}

TEST(RpcServer, ShutdownOpStopsServing)
{
    TestServer ts;
    Client c(ts.ep());
    RpcRequest req;
    req.op = RpcOp::Shutdown;
    RpcResponse resp;
    std::string err;
    ASSERT_TRUE(c.call(req, resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
    ts.join(); // serve() must return promptly.
    EXPECT_TRUE(ts.server().stopping());
}

TEST(RpcRouter, RoutesByStableHashAcrossFleet)
{
    TestServer node0, node1;
    ShardRouter router({node0.ep(), node1.ep()}, tiny(), fastOpts());

    std::vector<ConvProblem> net;
    for (int i = 0; i < 6; ++i)
        net.push_back(smallProblem(16 + 8 * i));

    RouteStats rs;
    const NetworkPlan plan = router.optimize(net, &rs);
    EXPECT_EQ(plan.layers.size(), net.size());
    EXPECT_EQ(rs.unique_shapes, net.size());
    EXPECT_EQ(rs.fallbacks, 0u);
    EXPECT_EQ(rs.remote_misses, net.size());

    // Every key must have landed on (only) the node its hash owns.
    std::size_t expect_node0 = 0;
    for (const ConvProblem &p : net) {
        const CacheKey key = CacheKey::make(p, tiny(), fastOpts());
        if (router.nodeOf(key) == 0)
            ++expect_node0;
    }
    EXPECT_EQ(node0.cache().size(), expect_node0);
    EXPECT_EQ(node1.cache().size(), net.size() - expect_node0);

    // Warm pass: all remote hits, byte-identical plan.
    RouteStats warm;
    const NetworkPlan again = router.optimize(net, &warm);
    EXPECT_EQ(warm.remote_hits, net.size());
    EXPECT_EQ(warm.hitRate(), 1.0);
    EXPECT_EQ(again.str(), plan.str());
}

TEST(RpcRouter, FallsBackToLocalSolveWhenNodeDown)
{
    TestServer alive;
    // A listener that was closed: connecting to its (now free) port
    // fails fast with ECONNREFUSED.
    int dead_port = 0;
    {
        TcpListener tmp;
        ASSERT_TRUE(tmp.listenOn("127.0.0.1", 0));
        dead_port = tmp.port();
    }
    // Pick shapes whose (stable) hashes cover both nodes, so the test
    // cannot pass vacuously when every key lands on the live node.
    std::vector<ConvProblem> net;
    std::size_t on_dead = 0, on_alive = 0;
    for (int i = 0; (on_dead < 2 || on_alive < 2) && i < 64; ++i) {
        const ConvProblem p = smallProblem(16 + 8 * i);
        const CacheKey key = CacheKey::make(p, tiny(), fastOpts());
        ((key.hash() % 2 == 0) ? on_dead : on_alive)++;
        net.push_back(p);
    }
    ASSERT_GE(on_dead, 2u);
    ASSERT_GE(on_alive, 2u);

    ShardRouter router(
        {RpcEndpoint{"127.0.0.1", dead_port}, alive.ep()}, tiny(),
        fastOpts());

    RouteStats rs;
    const NetworkPlan plan = router.optimize(net, &rs);
    EXPECT_EQ(rs.fallbacks + rs.remote_misses, net.size());
    EXPECT_GT(rs.fallbacks, 0u); // Some keys hash to the dead node.

    // Degraded answers must equal what one healthy node computes.
    SolutionCache local_cache;
    const NetworkOptimizer local(tiny(), fastOpts(), &local_cache);
    EXPECT_EQ(plan.str(), local.optimize(net).str());
}

TEST(RpcRouter, RefusalIsFatalNotFallback)
{
    TestServer ts;
    OptimizerOptions wrong = fastOpts();
    wrong.seed += 1; // Different settings fingerprint than the server.
    ShardRouter router({ts.ep()}, tiny(), wrong);
    EXPECT_THROW(router.optimize({smallProblem()}), FatalError);
}

TEST(RpcRouter, NoFallbackTurnsDeadNodeIntoError)
{
    int dead_port = 0;
    {
        TcpListener tmp;
        ASSERT_TRUE(tmp.listenOn("127.0.0.1", 0));
        dead_port = tmp.port();
    }
    FleetOptions fleet;
    fleet.local_fallback = false;
    ShardRouter router({RpcEndpoint{"127.0.0.1", dead_port}}, tiny(),
                       fastOpts(), fleet);
    EXPECT_THROW(router.optimize({smallProblem()}), FatalError);
}

/** This process's thread count (/proc/self/status Threads:). */
int
threadCount()
{
    std::ifstream f("/proc/self/status");
    std::string word;
    while (f >> word)
        if (word == "Threads:") {
            int n = 0;
            f >> n;
            return n;
        }
    return -1;
}

// The readiness core's defining property: connections are registered
// fds, not threads. A hundred open-but-idle connections must be
// served by the same fixed thread count, and frames arriving one byte
// at a time, interleaved across connections, must reassemble into
// complete requests (the per-connection LineReader buffers resume
// across reads).
TEST(RpcServer, IdleConnectionsCostNoThreadsAndFragmentsInterleave)
{
    ServerOptions so;
    so.workers = 2;
    TestServer ts(so);
    const int threads_before = threadCount();
    ASSERT_GT(threads_before, 0);

    constexpr int kConns = 100;
    constexpr int kActive = 8;
    std::vector<TcpSocket> conns;
    conns.reserve(kConns);
    for (int i = 0; i < kConns; ++i) {
        std::string err;
        TcpSocket s = TcpSocket::connectTo(ts.ep().host, ts.ep().port,
                                           &err, Deadline::in(5000));
        ASSERT_TRUE(s.valid()) << err;
        conns.push_back(std::move(s));
    }

    // Dribble the same request over the first kActive connections,
    // one byte per connection per round, while the rest stay idle.
    const std::string line =
        requestToJsonLine(solveRequest(smallProblem())) + "\n";
    for (std::size_t pos = 0; pos < line.size(); ++pos)
        for (int i = 0; i < kActive; ++i)
            ASSERT_TRUE(conns[static_cast<std::size_t>(i)].sendAll(
                line.substr(pos, 1)));

    for (int i = 0; i < kActive; ++i) {
        LineReader reader(conns[static_cast<std::size_t>(i)], 1u << 20);
        std::string resp_line;
        ASSERT_EQ(reader.readLine(resp_line, Deadline::in(30000)),
                  LineReader::Status::Ok);
        RpcResponse resp;
        std::string err;
        ASSERT_TRUE(responseFromJsonLine(resp_line, resp, &err)) << err;
        EXPECT_TRUE(resp.ok) << resp.error;
    }

    // Identical concurrent shapes coalesced onto one solve, and the
    // hundred connections recruited not a single extra thread.
    EXPECT_EQ(ts.server().schedulerStats().solves, 1);
    EXPECT_EQ(threadCount(), threads_before);
    EXPECT_EQ(
        ts.server().counters().connections.load(std::memory_order_relaxed),
        kConns);
}

TEST(RpcProtocol, PingRoundTripAndServerAnswersWithoutIdentity)
{
    RpcRequest req;
    req.op = RpcOp::Ping;
    RpcRequest back;
    std::string err;
    ASSERT_TRUE(requestFromJsonLine(requestToJsonLine(req), back, &err))
        << err;
    EXPECT_EQ(back.op, RpcOp::Ping);
    // The exact probe a foreign fleet tool would send: no
    // fingerprints, nothing but the op.
    ASSERT_TRUE(
        requestFromJsonLine("{\"v\":1,\"op\":\"ping\"}", back, &err))
        << err;
    EXPECT_EQ(back.op, RpcOp::Ping);

    // A live server answers it even with mismatched fingerprints —
    // probing asks "are you there", not "are you me".
    TestServer ts;
    Client c(ts.ep());
    req.machine_fp = CacheKey::machineFingerprint(tiny()) ^ 1;
    RpcResponse resp;
    ASSERT_TRUE(c.call(req, resp, &err)) << err;
    EXPECT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.op, RpcOp::Ping);

    RpcResponse resp_back;
    ASSERT_TRUE(responseFromJsonLine(responseToJsonLine(resp),
                                     resp_back, &err))
        << err;
    EXPECT_TRUE(resp_back.ok);
    EXPECT_EQ(resp_back.op, RpcOp::Ping);
}

TEST(RpcProtocol, ReplicatePullCursorAndFilterRoundTrip)
{
    // Delta pull: since + for travel; absent means -1 (full pull, no
    // filter — the PR 9 wire form).
    RpcRequest req;
    req.op = RpcOp::Replicate;
    req.repl_pull = true;
    req.repl_since = 412;
    req.repl_for = 2;
    RpcRequest back;
    std::string err;
    const std::string line = requestToJsonLine(req);
    EXPECT_NE(line.find("\"since\":412"), std::string::npos);
    EXPECT_NE(line.find("\"for\":2"), std::string::npos);
    ASSERT_TRUE(requestFromJsonLine(line, back, &err)) << err;
    EXPECT_TRUE(back.repl_pull);
    EXPECT_EQ(back.repl_since, 412);
    EXPECT_EQ(back.repl_for, 2);

    ASSERT_TRUE(requestFromJsonLine(
        "{\"v\":1,\"op\":\"replicate\",\"pull\":1}", back, &err))
        << err;
    EXPECT_TRUE(back.repl_pull);
    EXPECT_EQ(back.repl_since, -1);
    EXPECT_EQ(back.repl_for, -1);

    // Negative cursors are malformed, not silently clamped.
    EXPECT_FALSE(requestFromJsonLine(
        "{\"v\":1,\"op\":\"replicate\",\"pull\":1,\"since\":-3}", back,
        &err));
}

TEST(RpcProtocol, ReplicateDigestRoundTrip)
{
    RpcRequest req;
    req.op = RpcOp::Replicate;
    req.repl_digest = true;
    req.repl_for = 1;
    RpcRequest back;
    std::string err;
    ASSERT_TRUE(requestFromJsonLine(requestToJsonLine(req), back, &err))
        << err;
    EXPECT_TRUE(back.repl_digest);
    EXPECT_FALSE(back.repl_pull);
    EXPECT_EQ(back.repl_for, 1);

    // Digest response: count + 16-hex fingerprint, high bit intact.
    RpcResponse resp;
    resp.ok = true;
    resp.op = RpcOp::Replicate;
    resp.repl_has_digest = true;
    resp.repl_digest_count = 7;
    resp.repl_digest_fp = 0xdeadbeefcafef00dull;
    RpcResponse resp_back;
    ASSERT_TRUE(responseFromJsonLine(responseToJsonLine(resp),
                                     resp_back, &err))
        << err;
    EXPECT_TRUE(resp_back.repl_has_digest);
    EXPECT_EQ(resp_back.repl_digest_count, 7);
    EXPECT_EQ(resp_back.repl_digest_fp, 0xdeadbeefcafef00dull);
}

TEST(RpcProtocol, ReplicateRecordSequenceRoundTrips)
{
    // A real solve gives the record substance; the sequence rides it.
    SolutionCache cache;
    Server server(tiny(), fastOpts(), &cache);
    const RpcResponse solved = server.handle(solveRequest(smallProblem()));
    ASSERT_TRUE(solved.ok) << solved.error;

    RpcRequest push;
    push.op = RpcOp::Replicate;
    push.has_record = true;
    push.repl_key = solved.solve.key;
    push.repl_sol = solved.solve.sol;
    push.repl_seq = 99;
    RpcRequest back;
    std::string err;
    ASSERT_TRUE(requestFromJsonLine(requestToJsonLine(push), back, &err))
        << err;
    ASSERT_TRUE(back.has_record);
    EXPECT_EQ(back.repl_key, push.repl_key);
    EXPECT_EQ(back.repl_sol, push.repl_sol);
    EXPECT_EQ(back.repl_seq, 99);

    // Pull responses carry per-record sequences the same way; a PR 9
    // record without one reads as seq 0 (never newer than anything).
    RpcResponse pull;
    pull.ok = true;
    pull.op = RpcOp::Replicate;
    pull.repl_is_pull = true;
    pull.repl_records.push_back(
        RpcReplRecord{solved.solve.key, solved.solve.sol, 7});
    RpcResponse pull_back;
    ASSERT_TRUE(responseFromJsonLine(responseToJsonLine(pull),
                                     pull_back, &err))
        << err;
    ASSERT_EQ(pull_back.repl_records.size(), 1u);
    EXPECT_EQ(pull_back.repl_records[0].seq, 7);

    std::string legacy = responseToJsonLine(pull);
    const auto pos = legacy.find(",\"seq\":7");
    ASSERT_NE(pos, std::string::npos);
    legacy.erase(pos, std::string(",\"seq\":7").size());
    ASSERT_TRUE(responseFromJsonLine(legacy, pull_back, &err)) << err;
    ASSERT_EQ(pull_back.repl_records.size(), 1u);
    EXPECT_EQ(pull_back.repl_records[0].seq, 0);
}

TEST(RpcProtocol, StatsCarryFabricGauges)
{
    SolutionCache cache;
    Server server(tiny(), fastOpts(), &cache);
    ASSERT_TRUE(server.handle(solveRequest(smallProblem())).ok);

    RpcRequest req;
    req.op = RpcOp::Stats;
    const RpcResponse stats = server.handle(req);
    ASSERT_TRUE(stats.ok);
    EXPECT_EQ(stats.repl_queue_depth, 0); // No peers: nothing queued.
    EXPECT_EQ(stats.journal_seq, 1);      // One insert, sequence 1.

    RpcResponse back;
    std::string err;
    ASSERT_TRUE(responseFromJsonLine(responseToJsonLine(stats), back,
                                     &err))
        << err;
    EXPECT_EQ(back.repl_queue_depth, 0);
    EXPECT_EQ(back.journal_seq, 1);

    // A pre-fabric stats line (no gauges) parses as 0 — rolling-fleet
    // back-compat, same contract as every other optional stats field.
    std::string legacy = responseToJsonLine(stats);
    for (const std::string field : {"repl_queue_depth", "journal_seq"}) {
        const auto pos = legacy.find(",\"" + field + "\":");
        ASSERT_NE(pos, std::string::npos) << field;
        const auto next = legacy.find(",\"", pos + 1);
        ASSERT_NE(next, std::string::npos) << field;
        legacy.erase(pos, next - pos);
    }
    ASSERT_TRUE(responseFromJsonLine(legacy, back, &err)) << err;
    EXPECT_EQ(back.repl_queue_depth, 0);
    EXPECT_EQ(back.journal_seq, 0);
}

} // namespace
} // namespace mopt
