/**
 * @file
 * End-to-end tests of the MOpt optimizer (Algorithm 1): feasibility
 * and nesting of its output, ranking, superiority over random
 * configurations under the model, integerization, and load balancing.
 */

#include <gtest/gtest.h>

#include "baselines/grid_sampler.hh"
#include "common/rng.hh"
#include "conv/workloads.hh"
#include "machine/machine.hh"
#include "model/multi_level.hh"
#include "optimizer/integerize.hh"
#include "optimizer/load_balance.hh"
#include "optimizer/mopt_optimizer.hh"

namespace mopt {
namespace {

ConvProblem
prob()
{
    ConvProblem p;
    p.name = "opt";
    p.n = 1;
    p.k = 64;
    p.c = 32;
    p.r = 3;
    p.s = 3;
    p.h = 28;
    p.w = 28;
    return p;
}

OptimizerOptions
fastOpts(bool parallel)
{
    OptimizerOptions o;
    o.effort = OptimizerOptions::Effort::Fast;
    o.parallel = parallel;
    o.threads = 4;
    return o;
}

TEST(MicrokernelTiles, ShapeFollowsMachine)
{
    const MachineSpec m = i7_9700k();
    const IntTileVec t = microkernelTiles(prob(), m);
    EXPECT_EQ(t[DimK], 16); // 2 AVX2 registers
    EXPECT_EQ(t[DimW], 6);
    EXPECT_EQ(t[DimN], 1);
    EXPECT_EQ(t[DimC], 1);

    ConvProblem small = prob();
    small.k = 4;
    small.w = 3;
    const IntTileVec ts = microkernelTiles(small, m);
    EXPECT_EQ(ts[DimK], 4);
    EXPECT_EQ(ts[DimW], 3);
}

TEST(MicrokernelPermutation, ReductionInnermost)
{
    const Permutation p = microkernelPermutation();
    EXPECT_EQ(p.dimAtPosition(1), DimS);
    EXPECT_EQ(p.dimAtPosition(2), DimR);
    EXPECT_EQ(p.dimAtPosition(3), DimC);
    // Out is reused across the whole reduction.
    EXPECT_EQ(p.innermostPresentPosition(TenOut), 4);
}

TEST(Optimizer, ProducesFeasibleNestedCandidates)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    const OptimizeOutput out = optimizeConv(p, m, fastOpts(true));
    ASSERT_FALSE(out.candidates.empty());
    const IntTileVec extents = problemExtents(p);

    for (const auto &cand : out.candidates) {
        EXPECT_DOUBLE_EQ(capacityViolation(cand.config, p, m), 0.0)
            << cand.config.str();
        for (int d = 0; d < NumDims; ++d) {
            const auto sd = static_cast<std::size_t>(d);
            std::int64_t prev = cand.config.tiles[LvlReg][sd];
            for (int l = LvlL1; l <= LvlL3; ++l) {
                const std::int64_t t =
                    cand.config.tiles[static_cast<std::size_t>(l)][sd];
                EXPECT_GE(t, prev);
                EXPECT_LE(t, extents[sd]);
                prev = t;
            }
        }
        // Parallel split only on non-reduction dims, within cores.
        EXPECT_EQ(cand.config.par[DimC], 1);
        EXPECT_EQ(cand.config.par[DimR], 1);
        EXPECT_EQ(cand.config.par[DimS], 1);
        std::int64_t par = 1;
        for (std::int64_t f : cand.config.par)
            par *= f;
        EXPECT_LE(par, m.cores);
    }
}

TEST(Optimizer, CandidatesSortedByPredictedTime)
{
    const OptimizeOutput out =
        optimizeConv(prob(), i7_9700k(), fastOpts(true));
    for (std::size_t i = 1; i < out.candidates.size(); ++i)
        EXPECT_LE(out.candidates[i - 1].predicted.total_seconds,
                  out.candidates[i].predicted.total_seconds);
    EXPECT_GT(out.seconds, 0.0);
    EXPECT_GT(out.solver_evals, 0);
}

TEST(Optimizer, BeatsRandomConfigurationsUnderModel)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    const OptimizeOutput out = optimizeConv(p, m, fastOpts(false));
    ASSERT_FALSE(out.candidates.empty());
    const double best =
        out.candidates.front().predicted.total_seconds;

    Rng rng(31);
    SamplerOptions sopts;
    sopts.count = 40;
    double best_random = std::numeric_limits<double>::infinity();
    for (const auto &cfg : sampleConfigs(p, m, rng, sopts))
        best_random = std::min(
            best_random,
            evalMultiLevel(cfg, p, m, false).total_seconds);

    // The model-driven optimum should be at least as good as the best
    // of 40 random feasible samples (slack for solver tolerance).
    EXPECT_LE(best, best_random * 1.15);
}

TEST(Optimizer, SequentialModeDisablesParallelSplit)
{
    const OptimizeOutput out =
        optimizeConv(prob(), i7_9700k(), fastOpts(false));
    for (const auto &cand : out.candidates)
        for (std::int64_t f : cand.config.par)
            EXPECT_EQ(f, 1);
}

TEST(Optimizer, TopKLimitsCandidates)
{
    OptimizerOptions o = fastOpts(false);
    o.top_k = 2;
    const OptimizeOutput out = optimizeConv(prob(), i7_9700k(), o);
    EXPECT_LE(out.candidates.size(), 2u);
}

TEST(Integerize, OutputRespectsCapacityAndBlocks)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    MultiLevelConfig cfg;
    for (int l = 0; l < NumMemLevels; ++l)
        cfg.level[static_cast<std::size_t>(l)].perm =
            Permutation::parse("kcrsnhw");
    cfg.level[LvlReg].perm = microkernelPermutation();
    cfg.level[LvlReg].tiles = toTileVec(microkernelTiles(p, m));
    cfg.level[LvlL1].tiles = {1.0, 17.3, 9.8, 3.0, 3.0, 2.4, 13.9};
    cfg.level[LvlL2].tiles = {1.0, 33.9, 17.2, 3.0, 3.0, 7.7, 28.0};
    cfg.level[LvlL3].tiles = {1.0, 64.0, 32.0, 3.0, 3.0, 14.2, 28.0};

    const ExecConfig e = integerize(cfg, p, m, false);
    EXPECT_DOUBLE_EQ(capacityViolation(e, p, m), 0.0);
    for (int l = LvlL1; l <= LvlL3; ++l)
        EXPECT_EQ(e.tiles[static_cast<std::size_t>(l)][DimK] % 16, 0)
            << memLevelName(l);
}

TEST(LoadBalance, EvenSplitHasNoIdling)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    ExecConfig cfg;
    cfg.perm[LvlReg] = microkernelPermutation();
    cfg.tiles[LvlReg] = microkernelTiles(p, m);
    for (int l = LvlL1; l <= LvlL3; ++l) {
        cfg.perm[static_cast<std::size_t>(l)] =
            Permutation::parse("kcrsnhw");
        cfg.tiles[static_cast<std::size_t>(l)] = problemExtents(p);
    }
    cfg.tiles[LvlL1] = {1, 16, 8, 3, 3, 2, 14};
    cfg.tiles[LvlL2] = {1, 32, 32, 3, 3, 7, 28};

    loadBalance(cfg, p, m);
    std::int64_t par = 1;
    for (std::int64_t f : cfg.par)
        par *= f;
    EXPECT_EQ(par, m.cores);
    // Parallelized extents are multiples of their split factors.
    for (int d = 0; d < NumDims; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        if (cfg.par[sd] > 1) {
            EXPECT_EQ(cfg.tiles[LvlL3][sd] % cfg.par[sd], 0);
        }
    }
    EXPECT_NEAR(idleFraction(cfg, p, m), 0.0, 0.3);
}

TEST(Optimizer, HandlesOnebyOneKernels)
{
    ConvProblem p = workloadByName("Y5").downscaled(34, 64);
    const OptimizeOutput out =
        optimizeConv(p, i7_9700k(), fastOpts(true));
    ASSERT_FALSE(out.candidates.empty());
    EXPECT_DOUBLE_EQ(
        capacityViolation(out.candidates.front().config, p, i7_9700k()),
        0.0);
}

TEST(Optimizer, HandlesStrideTwo)
{
    ConvProblem p = workloadByName("M2").downscaled(28, 32);
    const OptimizeOutput out =
        optimizeConv(p, i7_9700k(), fastOpts(true));
    ASSERT_FALSE(out.candidates.empty());
    EXPECT_GT(out.candidates.front().predicted.gflops, 0.0);
}

} // namespace
} // namespace mopt
