/**
 * @file
 * Tests of the comparison baselines: the grid sampler (Sec. 9), the
 * oneDNN-style heuristic library, and the TVM-style auto-tuner.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/autotuner.hh"
#include "baselines/grid_sampler.hh"
#include "baselines/heuristic_lib.hh"
#include "common/rng.hh"
#include "conv/workloads.hh"
#include "machine/machine.hh"
#include "model/footprint.hh"
#include "model/multi_level.hh"

namespace mopt {
namespace {

ConvProblem
prob()
{
    ConvProblem p;
    p.name = "base";
    p.n = 1;
    p.k = 64;
    p.c = 32;
    p.r = 3;
    p.s = 3;
    p.h = 28;
    p.w = 28;
    return p;
}

void
expectValidConfig(const ExecConfig &cfg, const ConvProblem &p)
{
    const IntTileVec extents = problemExtents(p);
    for (int d = 0; d < NumDims; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        std::int64_t prev = cfg.tiles[LvlReg][sd];
        EXPECT_GE(prev, 1);
        for (int l = LvlL1; l <= LvlL3; ++l) {
            const std::int64_t t =
                cfg.tiles[static_cast<std::size_t>(l)][sd];
            EXPECT_GE(t, prev) << memLevelName(l);
            EXPECT_LE(t, extents[sd]) << memLevelName(l);
            prev = t;
        }
    }
}

TEST(GridSampler, ProducesRequestedCountOfValidConfigs)
{
    Rng rng(3);
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    SamplerOptions opts;
    opts.count = 50;
    const auto configs = sampleConfigs(p, m, rng, opts);
    ASSERT_EQ(configs.size(), 50u);
    for (const auto &cfg : configs) {
        expectValidConfig(cfg, p);
        EXPECT_DOUBLE_EQ(capacityViolation(cfg, p, m), 0.0);
        EXPECT_EQ(cfg.tiles[LvlL1][DimK] % 16, 0);
    }
}

TEST(GridSampler, CoversMultiplePermutationClasses)
{
    Rng rng(4);
    const auto configs =
        sampleConfigs(prob(), i7_9700k(), rng, SamplerOptions());
    std::set<std::string> perms;
    for (const auto &cfg : configs)
        perms.insert(cfg.perm[LvlL1].str());
    EXPECT_GE(perms.size(), 3u);
}

TEST(GridSampler, ParallelSamplesHaveValidSplits)
{
    Rng rng(5);
    const MachineSpec m = i7_9700k();
    SamplerOptions opts;
    opts.parallel = true;
    opts.count = 20;
    for (const auto &cfg : sampleConfigs(prob(), m, rng, opts)) {
        std::int64_t par = 1;
        for (std::int64_t f : cfg.par)
            par *= f;
        EXPECT_LE(par, m.cores);
        EXPECT_EQ(cfg.par[DimC], 1);
    }
}

TEST(HeuristicLib, ProducesValidFeasibleConfigs)
{
    const MachineSpec m = i7_9700k();
    for (const char *name : {"Y0", "Y5", "R1", "R9", "M2", "M9"}) {
        const ConvProblem p = workloadByName(name);
        const ExecConfig cfg = heuristicConfig(p, m);
        expectValidConfig(cfg, p);
        // The library's blocks target cache fractions; allow headroom
        // but catch gross overflow.
        EXPECT_LT(capacityViolation(cfg, p, m), 0.5) << name;
    }
}

TEST(HeuristicLib, RuleSelectionByShape)
{
    EXPECT_STREQ(heuristicRuleName(workloadByName("Y5")), "pointwise");
    EXPECT_STREQ(heuristicRuleName(workloadByName("Y0")), "spatial");
    EXPECT_STREQ(heuristicRuleName(workloadByName("M9")), "deep");
}

TEST(HeuristicLib, IsDeterministic)
{
    const MachineSpec m = i7_9700k();
    const ConvProblem p = prob();
    EXPECT_TRUE(heuristicConfig(p, m) == heuristicConfig(p, m));
}

TEST(Autotuner, ImprovesUnderModelCost)
{
    // Use the analytic model as a fast deterministic "measurement" so
    // the test exercises the search loop without wall-clock noise.
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    const MeasureFn measure = [&](const ExecConfig &cfg) {
        return evalMultiLevel(cfg, p, m, true).total_seconds;
    };

    TunerOptions opts;
    opts.trials = 40;
    opts.seed = 17;
    const TunerResult r = autotune(p, m, measure, opts);
    EXPECT_EQ(r.trials, 40);
    ASSERT_EQ(r.history.size(), 40u);
    // best-so-far is monotone non-increasing.
    for (std::size_t i = 1; i < r.history.size(); ++i)
        EXPECT_LE(r.history[i], r.history[i - 1]);
    // The tuner should improve over its first measured config.
    EXPECT_LT(r.best_seconds, r.history.front() * 1.0 + 1e-12);
    EXPECT_GT(r.tuning_seconds, 0.0);
    expectValidConfig(r.best, p);
}

TEST(Autotuner, MoreTrialsNeverWorse)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    const MeasureFn measure = [&](const ExecConfig &cfg) {
        return evalMultiLevel(cfg, p, m, true).total_seconds;
    };
    TunerOptions a;
    a.trials = 10;
    a.seed = 21;
    TunerOptions b = a;
    b.trials = 60;
    const double few = autotune(p, m, measure, a).best_seconds;
    const double many = autotune(p, m, measure, b).best_seconds;
    EXPECT_LE(many, few + 1e-12);
}

TEST(GridSampler, MinFillKeepsFootprintsInValidityRegime)
{
    // min_fill = 0.5 is the Sec. 2.2 condition (two adjacent tiles
    // exceed capacity); sampled footprints must reach it wherever the
    // problem itself is large enough.
    Rng rng(6);
    const ConvProblem p = prob();
    const MachineSpec m = tinyTestMachine();
    SamplerOptions opts;
    opts.count = 30;
    opts.min_fill = 0.5;
    for (const auto &cfg : sampleConfigs(p, m, rng, opts)) {
        EXPECT_DOUBLE_EQ(capacityViolation(cfg, p, m), 0.0);
        for (int l = LvlL1; l <= LvlL3; ++l) {
            const double fp = totalFootprint(
                cfg.tiles[static_cast<std::size_t>(l)], p);
            EXPECT_GE(fp,
                      0.5 * static_cast<double>(m.capacityWords(l)) *
                          0.99)
                << memLevelName(l);
        }
    }
}

TEST(Autotuner, TemplateSpaceStaysInTemplate)
{
    // Table 2's "limited DSE": template proposals keep the fixed
    // nkhwcrs order, block only k/c/w with divisor splits at L1, keep
    // h row-by-row, and never introduce L2/L3 cache tiling.
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    const IntTileVec extents = problemExtents(p);
    const MeasureFn measure = [&](const ExecConfig &cfg) {
        return evalMultiLevel(cfg, p, m, true).total_seconds;
    };
    TunerOptions opts;
    opts.trials = 25;
    opts.seed = 33;
    opts.template_space = true;
    const TunerResult r = autotune(p, m, measure, opts);

    const ExecConfig &b = r.best;
    for (int l = LvlL1; l <= LvlL3; ++l)
        EXPECT_EQ(b.perm[static_cast<std::size_t>(l)].str(), "nkhwcrs");
    EXPECT_EQ(b.tiles[LvlL1][DimH], 1);
    EXPECT_EQ(extents[DimK] % b.tiles[LvlL1][DimK], 0);
    EXPECT_EQ(extents[DimC] % b.tiles[LvlL1][DimC], 0);
    EXPECT_EQ(extents[DimW] % b.tiles[LvlL1][DimW], 0);
    for (int d = 0; d < NumDims; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        EXPECT_EQ(b.tiles[LvlL2][sd], extents[sd]);
        EXPECT_EQ(b.tiles[LvlL3][sd], extents[sd]);
    }
}

TEST(Autotuner, FullSpaceExploresPermutations)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    const MeasureFn measure = [&](const ExecConfig &cfg) {
        return evalMultiLevel(cfg, p, m, true).total_seconds;
    };
    TunerOptions opts;
    opts.trials = 30;
    opts.seed = 34;
    opts.template_space = false;
    const TunerResult r = autotune(p, m, measure, opts);
    expectValidConfig(r.best, p);
    // Full space can (and with enough trials does) reach tilings the
    // template cannot express — at minimum it must remain feasible.
    EXPECT_DOUBLE_EQ(capacityViolation(r.best, p, m), 0.0);
}

} // namespace
} // namespace mopt
