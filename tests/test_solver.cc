/**
 * @file
 * Tests of the nonlinear solver stack (the AMPL/Ipopt substitute):
 * Adam on unconstrained problems with known minima, the augmented-
 * Lagrangian method on constrained problems with closed-form optima
 * (including the paper's matmul tile problem, Eq. 2/3), the min-max
 * decomposition of Sec. 5, and the discrete refiner.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "solver/discrete_refine.hh"
#include "solver/minmax.hh"
#include "solver/multistart.hh"

namespace mopt {
namespace {

TEST(Adam, QuadraticBowl)
{
    long evals = 0;
    const auto f = [](const std::vector<double> &x) {
        return (x[0] - 3.0) * (x[0] - 3.0) +
               2.0 * (x[1] + 1.0) * (x[1] + 1.0);
    };
    AdamOptions opts;
    opts.max_steps = 600;
    opts.lr = 0.2;
    const auto x = adamMinimize(f, {0.0, 0.0}, {-10.0, -10.0},
                                {10.0, 10.0}, opts, evals);
    EXPECT_NEAR(x[0], 3.0, 1e-2);
    EXPECT_NEAR(x[1], -1.0, 1e-2);
    EXPECT_GT(evals, 0);
}

TEST(Adam, RespectsBoxBounds)
{
    long evals = 0;
    const auto f = [](const std::vector<double> &x) { return -x[0]; };
    AdamOptions opts;
    opts.max_steps = 200;
    const auto x = adamMinimize(f, {0.0}, {-1.0}, {2.0}, opts, evals);
    EXPECT_NEAR(x[0], 2.0, 1e-6);
}

TEST(AugLag, EqualityLikeConstraint)
{
    // min x^2 + y^2 s.t. x + y >= 2  ->  x = y = 1.
    FunctionalNlp nlp(
        2, 1, {-5.0, -5.0}, {5.0, 5.0},
        [](const std::vector<double> &x, std::vector<double> &g) {
            g[0] = 2.0 - x[0] - x[1]; // <= 0
            return x[0] * x[0] + x[1] * x[1];
        });
    MultiStartOptions opts;
    opts.auglag.inner.max_steps = 300;
    const NlpResult r = solveMultiStart(nlp, {{0.0, 0.0}}, opts);
    ASSERT_TRUE(r.feasible);
    EXPECT_NEAR(r.x[0], 1.0, 5e-2);
    EXPECT_NEAR(r.x[1], 1.0, 5e-2);
    EXPECT_NEAR(r.objective, 2.0, 1e-1);
}

TEST(AugLag, MatmulTileProblem)
{
    // The paper's Sec. 2 example: minimize
    //   Ni*Nj*Nk*(1/Ti + 1/Tj) (dropping the constant 2/Nk term)
    // s.t. Ti*Tk + Tj*Tk + Ti*Tj <= C. With Tk -> 1 optimal and
    // symmetric Ti = Tj ~ sqrt(C). C = 1024: Ti = Tj ~ 31.0.
    const double C = 1024.0;
    FunctionalNlp nlp(
        3, 1, {0.0, 0.0, 0.0},
        {std::log(512.0), std::log(512.0), std::log(512.0)},
        [C](const std::vector<double> &z, std::vector<double> &g) {
            const double ti = std::exp(z[0]);
            const double tj = std::exp(z[1]);
            const double tk = std::exp(z[2]);
            g[0] = std::log((ti * tk + tj * tk + ti * tj) / C);
            return std::log(1.0 / ti + 1.0 / tj);
        });
    MultiStartOptions opts;
    opts.random_starts = 4;
    opts.auglag.inner.max_steps = 300;
    const NlpResult r = solveMultiStart(
        nlp, {{std::log(8.0), std::log(8.0), std::log(8.0)}}, opts);
    ASSERT_TRUE(r.feasible);
    const double ti = std::exp(r.x[0]);
    const double tj = std::exp(r.x[1]);
    const double tk = std::exp(r.x[2]);
    // Optimum: Tk = 1, Ti = Tj = (sqrt(4C+1)-1)/2 ~ 31.5.
    EXPECT_NEAR(tk, 1.0, 0.35);
    EXPECT_NEAR(ti, 31.5, 4.0);
    EXPECT_NEAR(tj, 31.5, 4.0);
}

TEST(AugLag, ReportsInfeasibleProblems)
{
    // x >= 3 and x <= -3 cannot both hold.
    FunctionalNlp nlp(
        1, 2, {-10.0}, {10.0},
        [](const std::vector<double> &x, std::vector<double> &g) {
            g[0] = 3.0 - x[0];
            g[1] = x[0] + 3.0;
            return x[0] * x[0];
        });
    const NlpResult r = solveAugLag(nlp, {0.0});
    EXPECT_FALSE(r.feasible);
    EXPECT_GT(r.max_violation, 1.0);
}

TEST(MinMax, ThreePiecewiseFunctions)
{
    // f1 = (x-1)^2 + 1, f2 = (x-3)^2 + 1, f3 = 0.5*(x-2)^2 + 0.5.
    // max(f1, f2) is minimized at x = 2 where f1 = f2 = 2 > f3(2).
    MinMaxProblem prob;
    prob.dim = 1;
    prob.lo = {-10.0};
    prob.hi = {10.0};
    prob.num_components = 3;
    prob.num_shared = 0;
    prob.eval = [](const std::vector<double> &x, std::vector<double> &c,
                   std::vector<double> &s) {
        c = {(x[0] - 1.0) * (x[0] - 1.0) + 1.0,
             (x[0] - 3.0) * (x[0] - 3.0) + 1.0,
             0.5 * (x[0] - 2.0) * (x[0] - 2.0) + 0.5};
        s.clear();
    };
    MultiStartOptions opts;
    opts.random_starts = 3;
    opts.auglag.inner.max_steps = 300;
    const MinMaxResult r = solveMinMax(prob, {{0.0}}, opts);
    ASSERT_GE(r.best_component, 0);
    EXPECT_NEAR(r.best.x[0], 2.0, 0.1);
    EXPECT_NEAR(r.best_max, 2.0, 0.2);
}

TEST(DiscreteRefine, BalancedTile)
{
    EXPECT_EQ(balancedTile(100, 30), 25); // ceil(100/4)
    EXPECT_EQ(balancedTile(100, 100), 100);
    // 2 tiles of <= 51: ceil(100/ceil(100/51)) = ceil(100/2) = 50.
    EXPECT_EQ(balancedTile(100, 51), 50);
    EXPECT_EQ(balancedTile(7, 3), 3); // 3 tiles -> ceil(7/3) = 3
    EXPECT_EQ(balancedTile(7, 10), 7);
}

TEST(DiscreteRefine, HillClimbFindsIntegerOptimum)
{
    // Convex separable objective with integer optimum (5, -3).
    DiscreteProblem dp;
    dp.lo = {-10, -10};
    dp.hi = {10, 10};
    dp.cost = [](const std::vector<std::int64_t> &x) {
        const double a = static_cast<double>(x[0]) - 5.0;
        const double b = static_cast<double>(x[1]) + 3.0;
        return a * a + b * b;
    };
    const auto x = hillClimb(dp, {0, 0});
    EXPECT_EQ(x[0], 5);
    EXPECT_EQ(x[1], -3);
}

TEST(DiscreteRefine, HillClimbHonorsInfeasibility)
{
    // Feasible set: x >= 4 (else +inf). Minimize x.
    DiscreteProblem dp;
    dp.lo = {0};
    dp.hi = {100};
    dp.cost = [](const std::vector<std::int64_t> &x) {
        if (x[0] < 4)
            return std::numeric_limits<double>::infinity();
        return static_cast<double>(x[0]);
    };
    const auto x = hillClimb(dp, {50});
    EXPECT_EQ(x[0], 4);
}

TEST(MultiStart, PicksBestOfSeeds)
{
    // Two local minima: x = -2 (f = 1) and x = 2 (f = 0). A start near
    // each; multi-start must return the global one.
    FunctionalNlp nlp(
        1, 0, {-4.0}, {4.0},
        [](const std::vector<double> &x, std::vector<double> &) {
            const double a = x[0] - 2.0;
            const double b = x[0] + 2.0;
            // Double-well: min value 0 at +2, 1 at -2.
            return 0.25 * a * a * b * b + 0.125 * (2.0 - x[0]);
        });
    MultiStartOptions opts;
    opts.random_starts = 0;
    opts.auglag.inner.max_steps = 300;
    const NlpResult r = solveMultiStart(nlp, {{-2.2}, {2.2}}, opts);
    EXPECT_NEAR(r.x[0], 2.0, 0.2);
}

} // namespace
} // namespace mopt
