/**
 * @file
 * Tests of the cache-line (spatial locality) model extension of
 * Sec. 12: reduction to the unit-line model at L = 1, exact line
 * arithmetic, monotonicity, and rank agreement with line-granularity
 * cache simulation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cachesim/conv_trace.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "machine/machine.hh"
#include "model/footprint.hh"
#include "model/line_model.hh"
#include "model/pruned_classes.hh"
#include "optimizer/mopt_optimizer.hh"

namespace mopt {
namespace {

ConvProblem
prob()
{
    ConvProblem p;
    p.name = "line";
    p.n = 1;
    p.k = 32;
    p.c = 16;
    p.r = 3;
    p.s = 3;
    p.h = 14;
    p.w = 14;
    return p;
}

TEST(LineCount, ExactCeilInCeilMode)
{
    EXPECT_DOUBLE_EQ(lineCount(16.0, 16, DivMode::Ceil), 1.0);
    EXPECT_DOUBLE_EQ(lineCount(17.0, 16, DivMode::Ceil), 2.0);
    EXPECT_DOUBLE_EQ(lineCount(1.0, 16, DivMode::Ceil), 1.0);
    EXPECT_DOUBLE_EQ(lineCount(32.0, 16, DivMode::Ceil), 2.0);
}

TEST(LineCount, SmoothUpperBoundInContinuousMode)
{
    // (T + L - 1)/L >= ceil-free T/L and >= 1 for T >= 1.
    for (double t : {1.0, 2.5, 15.9, 16.0, 16.1, 100.0}) {
        const double smooth = lineCount(t, 16, DivMode::Continuous);
        EXPECT_GE(smooth, t / 16.0);
        EXPECT_GE(smooth, 1.0 - 1e-12);
        // Never exceeds the exact ceil by more than one line.
        EXPECT_LE(smooth, lineCount(t, 16, DivMode::Ceil) + 1.0);
    }
}

TEST(LineCount, UnitLineIsIdentity)
{
    EXPECT_DOUBLE_EQ(lineCount(7.3, 1, DivMode::Continuous), 7.3);
    EXPECT_DOUBLE_EQ(lineCount(7.3, 1, DivMode::Ceil), 7.3);
}

TEST(LineFootprint, ReducesToWordFootprintAtUnitLine)
{
    const ConvProblem p = prob();
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        TileVec t;
        const IntTileVec ext = problemExtents(p);
        for (int d = 0; d < NumDims; ++d) {
            const auto sd = static_cast<std::size_t>(d);
            t[sd] = static_cast<double>(rng.uniformInt(1, ext[sd]));
        }
        for (TensorId ten : {TenIn, TenKer, TenOut})
            EXPECT_DOUBLE_EQ(
                tileFootprintLines(ten, t, p, 1, DivMode::Ceil),
                tileFootprint(ten, t, p));
    }
}

TEST(LineFootprint, WholeLinesRoundUp)
{
    const ConvProblem p = prob();
    // Out tile with w = 5 on 16-word lines: 1 line of 16 words per
    // (n, k, h) row.
    TileVec t{1, 4, 1, 1, 1, 3, 5};
    EXPECT_DOUBLE_EQ(tileFootprintLines(TenOut, t, p, 16, DivMode::Ceil),
                     4 * 3 * 1 * 16.0);
    // Ker tile with s = 3 on 8-word lines: 1 line per (k, c, r).
    EXPECT_DOUBLE_EQ(tileFootprintLines(TenKer, t, p, 8, DivMode::Ceil),
                     4 * 1 * 1 * 8.0);
}

TEST(LineModel, VolumeAtLeastWordVolume)
{
    // Rounding extents up to whole lines can only increase the moved
    // volume (in words).
    const ConvProblem p = prob();
    const TileVec outer = toTileVec(problemExtents(p));
    Rng rng(9);
    for (const auto &cls : prunedClasses()) {
        for (int i = 0; i < 5; ++i) {
            TileVec t;
            for (int d = 0; d < NumDims; ++d) {
                const auto sd = static_cast<std::size_t>(d);
                t[sd] = static_cast<double>(
                    rng.uniformInt(1, problemExtents(p)[sd]));
            }
            const double words = totalDataVolume(cls.representative(), t,
                                                 outer, p, DivMode::Ceil);
            const double lines16 = totalDataVolumeLines(
                cls.representative(), t, outer, p, 16, DivMode::Ceil);
            EXPECT_GE(lines16, words - 1e-9) << cls.name();
        }
    }
}

TEST(LineModel, UnitLineMatchesBaseModelEndToEnd)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    MultiLevelConfig cfg;
    for (int l = 0; l < NumMemLevels; ++l)
        cfg.level[static_cast<std::size_t>(l)].perm =
            Permutation::parse("kcrsnhw");
    cfg.level[LvlReg].perm = microkernelPermutation();
    cfg.level[LvlReg].tiles = {1, 16, 1, 1, 1, 1, 6};
    cfg.level[LvlL1].tiles = {1, 16, 8, 3, 3, 2, 12};
    cfg.level[LvlL2].tiles = {1, 32, 16, 3, 3, 7, 14};
    cfg.level[LvlL3].tiles = {1, 32, 16, 3, 3, 14, 14};

    const CostBreakdown base =
        evalMultiLevel(cfg, p, m, false, DivMode::Ceil);
    const CostBreakdown unit =
        evalMultiLevelLines(cfg, p, m, false, 1, DivMode::Ceil);
    for (int l = 0; l < NumMemLevels; ++l)
        EXPECT_DOUBLE_EQ(unit.volume_words[static_cast<std::size_t>(l)],
                         base.volume_words[static_cast<std::size_t>(l)]);
    EXPECT_EQ(unit.bottleneck, base.bottleneck);
}

TEST(LineModel, WiderLinesNeverReduceCacheTraffic)
{
    const ConvProblem p = prob();
    const MachineSpec m = i7_9700k();
    MultiLevelConfig cfg;
    for (int l = 0; l < NumMemLevels; ++l)
        cfg.level[static_cast<std::size_t>(l)].perm =
            Permutation::parse("nkhwcrs");
    cfg.level[LvlReg].perm = microkernelPermutation();
    cfg.level[LvlReg].tiles = {1, 16, 1, 1, 1, 1, 6};
    cfg.level[LvlL1].tiles = {1, 16, 4, 3, 3, 2, 7};
    cfg.level[LvlL2].tiles = {1, 32, 8, 3, 3, 7, 14};
    cfg.level[LvlL3].tiles = {1, 32, 16, 3, 3, 14, 14};

    double prev[NumMemLevels] = {};
    bool first = true;
    for (int lw : {1, 4, 16}) {
        const CostBreakdown cb =
            evalMultiLevelLines(cfg, p, m, false, lw, DivMode::Ceil);
        if (!first) {
            for (int l = LvlL1; l <= LvlL3; ++l)
                EXPECT_GE(cb.volume_words[static_cast<std::size_t>(l)],
                          prev[l] - 1e-9)
                    << "line size " << lw << " level " << l;
        }
        for (int l = 0; l < NumMemLevels; ++l)
            prev[l] = cb.volume_words[static_cast<std::size_t>(l)];
        first = false;
    }
}

/**
 * Sec. 12 validation in miniature: with real (multi-word) lines in
 * the simulator, the line-aware model ranks configurations at least
 * as well as the unit-line model at the memory boundary.
 */
TEST(LineModel, TracksLineGranularSimulation)
{
    ConvProblem p;
    p.name = "linecorr";
    p.n = 1;
    p.k = 16;
    p.c = 16;
    p.r = 3;
    p.s = 3;
    p.h = 24;
    p.w = 24;
    const MachineSpec m = tinyTestMachine();
    constexpr int kLine = 8;

    Rng rng(21);
    std::vector<double> line_model, word_model, sim;
    for (int i = 0; i < 10; ++i) {
        ExecConfig cfg;
        cfg.perm[LvlReg] = microkernelPermutation();
        cfg.tiles[LvlReg] = {1, 8, 1, 1, 1, 1, 6};
        const IntTileVec extents = problemExtents(p);
        for (int l = LvlL1; l <= LvlL3; ++l)
            cfg.perm[static_cast<std::size_t>(l)] =
                Permutation::parse("kcrsnhw");
        for (int d = 0; d < NumDims; ++d) {
            const auto sd = static_cast<std::size_t>(d);
            std::array<std::int64_t, 3> t;
            for (auto &x : t)
                x = rng.uniformInt(cfg.tiles[LvlReg][sd], extents[sd]);
            std::sort(t.begin(), t.end());
            cfg.tiles[LvlL1][sd] = t[0];
            cfg.tiles[LvlL2][sd] = t[1];
            cfg.tiles[LvlL3][sd] = t[2];
        }
        const CostBreakdown lm = evalMultiLevelLines(
            cfg.toModel(), p, m, false, kLine, DivMode::Ceil);
        const CostBreakdown wm =
            evalMultiLevel(cfg, p, m, false);
        const TraceStats ts = simulateConvTrace(p, cfg, m, kLine);
        line_model.push_back(lm.volume_words[LvlL3]);
        word_model.push_back(wm.volume_words[LvlL3]);
        sim.push_back(static_cast<double>(ts.level_words[2]));
    }
    const double rho_line = spearman(line_model, sim);
    const double rho_word = spearman(word_model, sim);
    EXPECT_GT(rho_line, 0.5);
    // The line model should not rank worse than the word model when
    // the machine actually moves multi-word lines.
    EXPECT_GE(rho_line, rho_word - 0.15);
}

} // namespace
} // namespace mopt
