/**
 * @file
 * Tests of the machine presets, derived quantities, and the host
 * bandwidth probe.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "machine/bandwidth_probe.hh"
#include "machine/machine.hh"

namespace mopt {
namespace {

TEST(Machine, I7PresetMatchesPaperPlatform)
{
    const MachineSpec m = i7_9700k();
    EXPECT_EQ(m.cores, 8);
    EXPECT_EQ(m.vec_lanes, 8);
    EXPECT_EQ(m.levels[LvlL1].capacity_bytes, 32 * 1024);
    EXPECT_EQ(m.levels[LvlL2].capacity_bytes, 256 * 1024);
    EXPECT_EQ(m.levels[LvlL3].capacity_bytes, 12 * 1024 * 1024);
    EXPECT_NO_THROW(m.validate());
}

TEST(Machine, I9PresetMatchesPaperPlatform)
{
    const MachineSpec m = i9_10980xe();
    EXPECT_EQ(m.cores, 18);
    EXPECT_EQ(m.vec_lanes, 16);
    EXPECT_EQ(m.levels[LvlL2].capacity_bytes, 1024 * 1024);
    EXPECT_EQ(m.levels[LvlL3].capacity_bytes,
              static_cast<std::int64_t>(24.75 * 1024 * 1024));
}

TEST(Machine, DerivedQuantities)
{
    const MachineSpec m = i7_9700k();
    // 2 flops * 8 lanes * 2 units * 3.6 GHz = 115.2 GFLOPS/core.
    EXPECT_NEAR(m.peakGflopsPerCore(), 115.2, 1e-9);
    EXPECT_NEAR(m.peakGflops(), 8 * 115.2, 1e-9);
    // Little's law: 5 * 2 * 8 = 80 independent FMAs.
    EXPECT_EQ(m.littlesLawParallelism(), 80);
    EXPECT_EQ(m.capacityWords(LvlL1), 32 * 1024 / 4);
}

TEST(Machine, LevelNamesAndLookup)
{
    EXPECT_STREQ(memLevelName(LvlReg), "Reg");
    EXPECT_STREQ(memLevelName(LvlL3), "L3");
    EXPECT_EQ(machineByName("i7").name, "i7-9700K");
    EXPECT_EQ(machineByName("i9").name, "i9-10980XE");
    EXPECT_EQ(machineByName("tiny").name, "tiny");
    EXPECT_THROW(machineByName("pdp11"), FatalError);
}

TEST(Machine, ValidateCatchesNonMonotoneCapacities)
{
    MachineSpec m = i7_9700k();
    m.levels[LvlL2].capacity_bytes = m.levels[LvlL1].capacity_bytes;
    EXPECT_THROW(m.validate(), FatalError);
}

TEST(Machine, TinyMachineIsSmall)
{
    const MachineSpec m = tinyTestMachine();
    EXPECT_LE(m.capacityWords(LvlL1), 512);
    EXPECT_NO_THROW(m.validate());
}

TEST(BandwidthProbe, MeasuresPlausibleRates)
{
    const ProbeResult r = probeBandwidth(1 << 20, 1, 0.01);
    EXPECT_GT(r.gbps, 0.1);   // any machine beats 100 MB/s from L2/L3
    EXPECT_LT(r.gbps, 10000); // and stays under 10 TB/s
    EXPECT_EQ(r.bytes, 1 << 20);
}

TEST(BandwidthProbe, RejectsTinyWorkingSets)
{
    EXPECT_THROW(probeBandwidth(128, 1), FatalError);
}

TEST(BandwidthProbe, CalibrateToHostKeepsSpecValid)
{
    MachineSpec m = tinyTestMachine();
    // Use a quick probe; we only check structural sanity.
    calibrateToHost(m, 0.005);
    EXPECT_NO_THROW(m.validate());
    for (int l = 0; l < NumMemLevels; ++l)
        EXPECT_GT(m.bandwidth(l, false), 0.0);
}

} // namespace
} // namespace mopt
