/**
 * @file
 * Tests of the autotuning feedback loop: sample-journal round-trips
 * (including corrupt-line rejection), the bottleneck-assignment
 * calibration fit, the applyTo/fingerprint contract (identity changes
 * nothing), journal durability across reload, a crash test that
 * SIGKILLs a writer mid-append, and the end-to-end loop from solve
 * through measurement to a corrected re-solve.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "autotune/autotune.hh"
#include "autotune/calibration.hh"
#include "common/logging.hh"
#include "exec/conv_exec.hh"
#include "machine/machine.hh"
#include "model/multi_level.hh"
#include "optimizer/mopt_optimizer.hh"
#include "service/cache_key.hh"

namespace mopt {
namespace {

ConvProblem
tinyProblem()
{
    ConvProblem p;
    p.name = "at";
    p.n = 1;
    p.k = 8;
    p.c = 4;
    p.r = 3;
    p.s = 3;
    p.h = 6;
    p.w = 6;
    return p;
}

TuneSample
sampleFor(const ConvProblem &p, double measured)
{
    TuneSample s;
    s.problem = CacheKey::canonicalProblem(p);
    s.machine_fp = 0x1234abcd5678ef01ull;
    s.settings_fp = 0xfeedbeefcafe0042ull;
    s.config = defaultConfig(p);
    s.measured_seconds = measured;
    s.predicted_seconds = 2e-4;
    s.pred_level_seconds = {1e-4, 2e-4, 5e-5, 2.5e-5};
    s.pred_compute_seconds = 8e-5;
    s.runner = "exec";
    return s;
}

TEST(TuneSampleJson, RoundTripsEveryField)
{
    ConvProblem p = tinyProblem();
    p.groups = 2;
    p.c = 4;
    p.k = 8;
    p.stride = 2;
    p.validate();
    const TuneSample s = sampleFor(p, 3.25e-4);

    const std::string line = tuneSampleToJsonLine(s);
    TuneSample r;
    ASSERT_TRUE(tuneSampleFromJsonLine(line, r)) << line;

    EXPECT_EQ(r.problem, s.problem);
    EXPECT_EQ(r.machine_fp, s.machine_fp);
    EXPECT_EQ(r.settings_fp, s.settings_fp);
    EXPECT_EQ(r.config.str(), s.config.str());
    EXPECT_DOUBLE_EQ(r.measured_seconds, s.measured_seconds);
    EXPECT_DOUBLE_EQ(r.predicted_seconds, s.predicted_seconds);
    for (int l = 0; l < NumMemLevels; ++l)
        EXPECT_DOUBLE_EQ(
            r.pred_level_seconds[static_cast<std::size_t>(l)],
            s.pred_level_seconds[static_cast<std::size_t>(l)]);
    EXPECT_DOUBLE_EQ(r.pred_compute_seconds, s.pred_compute_seconds);
    EXPECT_EQ(r.runner, s.runner);
}

TEST(TuneSampleJson, RejectsCorruptLines)
{
    const std::string good = tuneSampleToJsonLine(
        sampleFor(tinyProblem(), 1e-4));
    TuneSample s;
    EXPECT_TRUE(tuneSampleFromJsonLine(good, s));

    // Torn write: every strict prefix must be rejected, never
    // misparsed into a sample.
    for (std::size_t cut : {good.size() - 1, good.size() / 2,
                            std::size_t{1}})
        EXPECT_FALSE(tuneSampleFromJsonLine(good.substr(0, cut), s))
            << "accepted a torn prefix of length " << cut;

    EXPECT_FALSE(tuneSampleFromJsonLine("", s));
    EXPECT_FALSE(tuneSampleFromJsonLine("not json at all", s));
    EXPECT_FALSE(tuneSampleFromJsonLine("{\"v\":2}", s));
    // Negative time: structurally valid JSON, semantically corrupt.
    std::string bad = good;
    const std::size_t at = bad.find("\"measured_s\":");
    bad.insert(at + std::string("\"measured_s\":").size(), "-");
    EXPECT_FALSE(tuneSampleFromJsonLine(bad, s));
}

TEST(CalibrationFit, RecoversKnownFactorsFromCleanSamples)
{
    // Per component j, plant samples whose predicted breakdown is
    // dominated by j and whose measured time is factor_j times the
    // dominant prediction; the fit must recover every factor exactly.
    const std::uint64_t fp = 42;
    const std::array<double, NumMemLevels> level_target{2.0, 0.5, 3.0,
                                                        1.5};
    const double compute_target = 4.0;

    std::vector<TuneSample> samples;
    for (int j = 0; j < NumMemLevels + 1; ++j) {
        for (int rep = 0; rep < 2; ++rep) {
            TuneSample s = sampleFor(tinyProblem(), 0.0);
            s.machine_fp = fp;
            s.pred_level_seconds = {0.01, 0.01, 0.01, 0.01};
            s.pred_compute_seconds = 0.01;
            if (j < NumMemLevels) {
                s.pred_level_seconds[static_cast<std::size_t>(j)] = 1.0;
                s.measured_seconds =
                    level_target[static_cast<std::size_t>(j)];
            } else {
                s.pred_compute_seconds = 1.0;
                s.measured_seconds = compute_target;
            }
            samples.push_back(s);
        }
    }

    const Calibration cal = fitCalibration(samples, fp);
    EXPECT_EQ(cal.samples_used,
              static_cast<std::int64_t>(samples.size()));
    for (int l = 0; l < NumMemLevels; ++l)
        EXPECT_NEAR(cal.level_scale[static_cast<std::size_t>(l)],
                    level_target[static_cast<std::size_t>(l)], 1e-9)
            << memLevelName(l);
    EXPECT_NEAR(cal.compute_scale, compute_target, 1e-9);
    EXPECT_FALSE(cal.isIdentity());
}

TEST(CalibrationFit, IgnoresOtherMachinesAndClamps)
{
    std::vector<TuneSample> samples;
    TuneSample other = sampleFor(tinyProblem(), 1.0);
    other.machine_fp = 7; // not ours
    samples.push_back(other);
    EXPECT_TRUE(fitCalibration(samples, 42).isIdentity());
    EXPECT_EQ(fitCalibration(samples, 42).samples_used, 0);

    // A wildly wrong measurement clamps instead of exploding.
    TuneSample wild = sampleFor(tinyProblem(), 0.0);
    wild.machine_fp = 42;
    wild.pred_level_seconds = {1.0, 0.01, 0.01, 0.01};
    wild.pred_compute_seconds = 0.01;
    wild.measured_seconds = 1e6;
    const Calibration cal = fitCalibration({wild}, 42);
    EXPECT_DOUBLE_EQ(cal.level_scale[0], 20.0);
}

TEST(Calibration, IdentityLeavesMachineAndFingerprintUntouched)
{
    const MachineSpec m = i7_9700k();
    const Calibration identity;
    ASSERT_TRUE(identity.isIdentity());
    const MachineSpec applied = identity.applyTo(m);
    EXPECT_EQ(CacheKey::machineFingerprint(applied),
              CacheKey::machineFingerprint(m));
    EXPECT_DOUBLE_EQ(applied.freq_ghz, m.freq_ghz);
    for (int l = 0; l < NumMemLevels; ++l)
        EXPECT_DOUBLE_EQ(
            applied.levels[static_cast<std::size_t>(l)].bw_seq_gbps,
            m.levels[static_cast<std::size_t>(l)].bw_seq_gbps);

    // Identity -> byte-identical plans: same fingerprint means the
    // same cache namespace and the same solve inputs.
    OptimizerOptions o;
    o.effort = OptimizerOptions::Effort::Fast;
    o.parallel = false;
    const OptimizeOutput a = optimizeConv(tinyProblem(), m, o);
    const OptimizeOutput b = optimizeConv(tinyProblem(), applied, o);
    ASSERT_FALSE(a.candidates.empty());
    EXPECT_EQ(a.candidates.front().config.str(),
              b.candidates.front().config.str());
}

TEST(Calibration, NonIdentityRescalesSpecAndChangesFingerprint)
{
    const MachineSpec m = i7_9700k();
    Calibration cal;
    cal.level_scale = {1.0, 2.0, 1.0, 1.0};
    cal.compute_scale = 3.0;
    const MachineSpec applied = cal.applyTo(m);
    EXPECT_NE(CacheKey::machineFingerprint(applied),
              CacheKey::machineFingerprint(m));
    EXPECT_DOUBLE_EQ(applied.levels[LvlL1].bw_seq_gbps,
                     m.levels[LvlL1].bw_seq_gbps / 2.0);
    EXPECT_DOUBLE_EQ(applied.levels[LvlL1].bw_par_gbps,
                     m.levels[LvlL1].bw_par_gbps / 2.0);
    EXPECT_DOUBLE_EQ(applied.freq_ghz, m.freq_ghz / 3.0);
    EXPECT_DOUBLE_EQ(applied.levels[LvlL3].bw_seq_gbps,
                     m.levels[LvlL3].bw_seq_gbps);
}

TEST(CalibrationStore, PersistsSamplesAcrossReload)
{
    const std::string path =
        ::testing::TempDir() + "/calib_reload.json";
    std::remove(path.c_str());
    {
        CalibrationStore store(path);
        store.addSample(sampleFor(tinyProblem(), 1e-4));
        store.addSample(sampleFor(tinyProblem(), 2e-4));
        EXPECT_EQ(store.size(), 2u);
        EXPECT_EQ(store.stats().appended, 2);
    }
    CalibrationStore reloaded(path);
    EXPECT_EQ(reloaded.size(), 2u);
    EXPECT_EQ(reloaded.stats().loaded, 2);
    EXPECT_EQ(reloaded.stats().skipped, 0);
    const Calibration cal =
        reloaded.fit(sampleFor(tinyProblem(), 0).machine_fp);
    EXPECT_EQ(cal.samples_used, 2);
    std::remove(path.c_str());
}

TEST(CalibrationStore, SkipsCorruptTrailingLineLoudlyAndCompacts)
{
    const std::string path =
        ::testing::TempDir() + "/calib_corrupt.json";
    std::remove(path.c_str());
    const std::string good =
        tuneSampleToJsonLine(sampleFor(tinyProblem(), 1e-4));
    {
        std::ofstream f(path);
        f << good << "\n" << good << "\n"
          << good.substr(0, good.size() / 2); // torn final append
    }
    {
        CalibrationStore store(path);
        EXPECT_EQ(store.stats().loaded, 2);
        EXPECT_EQ(store.stats().skipped, 1);
        EXPECT_EQ(store.size(), 2u);
    }
    // Loading compacted the journal: the torn line is gone for good.
    CalibrationStore again(path);
    EXPECT_EQ(again.stats().loaded, 2);
    EXPECT_EQ(again.stats().skipped, 0);
    std::remove(path.c_str());
}

TEST(CalibrationStore, InMemoryStoreNeedsNoJournal)
{
    CalibrationStore store;
    store.addSample(sampleFor(tinyProblem(), 1e-4));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.stats().appended, 1);
}

TEST(CalibrationStore, SigkillMidAppendLosesNoAcknowledgedSample)
{
    const std::string path =
        ::testing::TempDir() + "/calib_crash.json";
    std::remove(path.c_str());

    // The child appends samples forever, acknowledging each completed
    // addSample with one byte on the pipe; the parent SIGKILLs it mid
    // stream. Every acknowledged sample must survive the reload, and
    // at most the one in-flight line may be torn.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::close(fds[0]);
        CalibrationStore store(path);
        for (int i = 0; i < 100000; ++i) {
            store.addSample(
                sampleFor(tinyProblem(), 1e-6 * (i + 1)));
            const char ack = 'a';
            if (::write(fds[1], &ack, 1) != 1)
                ::_exit(1);
        }
        ::_exit(0);
    }
    ::close(fds[1]);
    std::size_t acked = 0;
    char buf[256];
    while (acked < 64) {
        const ssize_t n = ::read(fds[0], buf, sizeof(buf));
        if (n <= 0)
            break;
        acked += static_cast<std::size_t>(n);
    }
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    // Drain acks that were in the pipe when the kill landed; each one
    // is a completed addSample and so must be recoverable too.
    for (ssize_t n; (n = ::read(fds[0], buf, sizeof(buf))) > 0;)
        acked += static_cast<std::size_t>(n);
    ::close(fds[0]);
    ASSERT_GE(acked, 64u);

    CalibrationStore reloaded(path);
    EXPECT_GE(reloaded.stats().loaded,
              static_cast<std::int64_t>(acked));
    EXPECT_LE(reloaded.stats().skipped, 1);
    for (const TuneSample &s : reloaded.samples())
        EXPECT_GT(s.measured_seconds, 0.0);
    std::remove(path.c_str());
}

TEST(Autotune, EndToEndMeasuresPersistsAndCorrectsResolve)
{
    const std::string path = ::testing::TempDir() + "/calib_e2e.json";
    std::remove(path.c_str());

    const ConvProblem p = tinyProblem();
    const MachineSpec m = tinyTestMachine();
    OptimizerOptions opts;
    opts.effort = OptimizerOptions::Effort::Fast;
    opts.parallel = false;

    AutotuneOptions aopts;
    aopts.top_k = 2;
    aopts.reps = 1;
    aopts.warmups = 0;
    aopts.runner = TuneRunner::Exec; // no host-compiler dependency
    aopts.flush_bytes = 0;

    AutotuneReport rep;
    {
        CalibrationStore store(path);
        // The same shape twice: the loop dedupes to one solve.
        rep = autotuneProblems({p, p}, m, opts, store, aopts);
    }
    EXPECT_EQ(rep.unique_shapes, 1u);
    ASSERT_GE(rep.samples.size(), 2u);
    EXPECT_EQ(rep.machine_fp, CacheKey::machineFingerprint(m));
    for (const TuneSample &s : rep.samples) {
        EXPECT_GT(s.measured_seconds, 0.0);
        EXPECT_GT(s.predicted_seconds, 0.0);
        EXPECT_EQ(s.runner, "exec");
    }
    EXPECT_EQ(rep.calibration.samples_used,
              static_cast<std::int64_t>(rep.samples.size()));

    // Acknowledged samples persisted: a fresh store sees them all and
    // fits the same calibration.
    CalibrationStore reloaded(path);
    EXPECT_EQ(reloaded.stats().loaded,
              static_cast<std::int64_t>(rep.samples.size()));
    const Calibration cal = reloaded.fit(rep.machine_fp);
    EXPECT_EQ(cal.samples_used, rep.calibration.samples_used);

    // A subsequent solve on the calibrated machine reports corrected
    // predicted times: each component of the analytic breakdown is
    // the raw component scaled by its fitted factor.
    const MachineSpec cm = cal.applyTo(m);
    const ExecConfig cfg = rep.samples.front().config;
    const CostBreakdown raw = evalMultiLevel(cfg, p, m, false);
    const CostBreakdown cor = evalMultiLevel(cfg, p, cm, false);
    for (int l = 0; l < NumMemLevels; ++l) {
        const auto sl = static_cast<std::size_t>(l);
        EXPECT_NEAR(cor.seconds[sl],
                    raw.seconds[sl] * cal.level_scale[sl],
                    1e-12 + 1e-9 * raw.seconds[sl])
            << memLevelName(l);
    }
    EXPECT_NEAR(cor.compute_seconds,
                raw.compute_seconds * cal.compute_scale,
                1e-12 + 1e-9 * raw.compute_seconds);
    if (!cal.isIdentity()) {
        EXPECT_NE(CacheKey::machineFingerprint(cm),
                  CacheKey::machineFingerprint(m));
    }
    std::remove(path.c_str());
}

TEST(Autotune, RunnerParsing)
{
    EXPECT_EQ(tuneRunnerFromString("emitted"), TuneRunner::Emitted);
    EXPECT_EQ(tuneRunnerFromString("exec"), TuneRunner::Exec);
    EXPECT_THROW(tuneRunnerFromString("gpu"), FatalError);
}

} // namespace
} // namespace mopt
