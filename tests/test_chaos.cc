/**
 * @file
 * Fault-injection tests of the serving stack, driven through the
 * Faultline proxy (src/rpc/faultline.hh): every nasty thing a network
 * does — swallowed responses, torn frames, corrupted bytes, stalls,
 * blackholes — on a deterministic schedule, with the assertions the
 * failure model promises: no call outlives its deadline (bounded by
 * 2x), retries and hedges converge on plans byte-identical to a
 * fault-free run, counters tell the truth, and the cache journal
 * comes back uncorrupted. Plus direct edge-path coverage of the TCP
 * layer: EINTR during a blocked read, fragmented frames, oversized
 * lines through the proxy.
 */

#include <gtest/gtest.h>

#include <pthread.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "fleet/ring.hh"
#include "machine/machine.hh"
#include "rpc/client.hh"
#include "rpc/faultline.hh"
#include "rpc/protocol.hh"
#include "rpc/server.hh"
#include "rpc/tcp.hh"
#include "service/cache_key.hh"
#include "service/network_optimizer.hh"
#include "service/solution_cache.hh"

namespace mopt {
namespace {

ConvProblem
smallProblem(std::int64_t k = 32, std::int64_t c = 16,
             std::int64_t hw = 14)
{
    ConvProblem p;
    p.name = "chaos";
    p.n = 1;
    p.k = k;
    p.c = c;
    p.r = 3;
    p.s = 3;
    p.h = hw;
    p.w = hw;
    return p;
}

OptimizerOptions
fastOpts()
{
    OptimizerOptions o;
    o.effort = OptimizerOptions::Effort::Fast;
    o.parallel = true;
    o.threads = 4;
    return o;
}

MachineSpec
tiny()
{
    return machineByName("tiny");
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "mopt_chaos_" + name + "_" +
           std::to_string(::getpid()) + ".json";
}

/** A running moptd on an ephemeral loopback port. */
class TestServer
{
  public:
    explicit TestServer(ServerOptions so = {},
                        SolutionCacheOptions co = {},
                        OptimizerOptions opts = fastOpts())
        : cache_(co), server_(tiny(), opts, &cache_, so)
    {
        std::string err;
        if (!server_.start(&err))
            fatal("TestServer: " + err);
        thread_ = std::thread([this] { server_.serve(); });
    }

    ~TestServer()
    {
        server_.stop();
        if (thread_.joinable())
            thread_.join();
    }

    RpcEndpoint ep() const
    {
        return RpcEndpoint{"127.0.0.1", server_.port()};
    }

    SolutionCache &cache() { return cache_; }
    Server &server() { return server_; }

  private:
    SolutionCache cache_;
    Server server_;
    std::thread thread_;
};

RpcRequest
solveRequest(const ConvProblem &p)
{
    RpcRequest req;
    req.op = RpcOp::Solve;
    req.problem = p;
    req.machine_fp = CacheKey::machineFingerprint(tiny());
    req.settings_fp = CacheKey::settingsFingerprint(fastOpts());
    return req;
}

/** A proxy in front of @p upstream with the given fault schedule. */
FaultlineOptions
proxyTo(const RpcEndpoint &upstream, std::vector<FaultKind> schedule)
{
    FaultlineOptions fo;
    fo.upstream_host = upstream.host;
    fo.upstream_port = upstream.port;
    fo.schedule = std::move(schedule);
    return fo;
}

long
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - since)
        .count();
}

TEST(Chaos, BlackholeIsBoundedByDeadline)
{
    // No server at all behind this fault: the connection accepts and
    // then answers nothing, forever. Only the deadline gets out.
    FaultlineOptions fo;
    fo.upstream_port = 1; // Never contacted by a blackhole.
    fo.schedule = {FaultKind::Blackhole};
    FaultlineProxy proxy(fo);
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    constexpr long kDeadlineMs = 500;
    Client c(RpcEndpoint{"127.0.0.1", proxy.port()});
    RpcResponse resp;
    const auto start = std::chrono::steady_clock::now();
    const bool ok = c.call(solveRequest(smallProblem()), resp, &err,
                           Deadline::in(kDeadlineMs));
    const long took = elapsedMs(start);
    EXPECT_FALSE(ok);
    // The acceptance bound: within 2x the configured deadline.
    EXPECT_LE(took, 2 * kDeadlineMs);
    EXPECT_EQ(proxy.stats().blackholes, 1);
}

TEST(Chaos, DroppedResponseIsRetriedAndConvergesViaCache)
{
    TestServer ts;
    FaultlineProxy proxy(
        proxyTo(ts.ep(), {FaultKind::Drop, FaultKind::None}));
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    // Connection 0 delivers the request and loses the answer: the
    // server has *processed* it. The retry (connection 1, clean) must
    // converge on the very answer the first attempt computed.
    FleetOptions policy;
    policy.deadline_ms = 30000;
    policy.max_retries = 2;
    policy.backoff_ms = 10;
    Client c(RpcEndpoint{"127.0.0.1", proxy.port()});
    RpcResponse resp;
    std::size_t retries = 0;
    ASSERT_TRUE(c.callRetrying(solveRequest(smallProblem()), policy,
                               resp, &err, &retries))
        << err;
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(retries, 1u);
    // The first attempt's solve landed in the cache before its
    // response was written, so the retry is a hit — work is never
    // repeated, only the answer's delivery.
    EXPECT_TRUE(resp.solve.cache_hit);
    EXPECT_EQ(proxy.stats().drops, 1);
    EXPECT_EQ(ts.server().schedulerStats().solves, 1);
}

TEST(Chaos, GarbageAndTornResponsesAreRejectedThenRetried)
{
    TestServer ts;
    FaultlineProxy proxy(proxyTo(
        ts.ep(),
        {FaultKind::Garbage, FaultKind::PartialWrite, FaultKind::None}));
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    FleetOptions policy;
    policy.deadline_ms = 30000;
    policy.max_retries = 3;
    policy.backoff_ms = 10;
    Client c(RpcEndpoint{"127.0.0.1", proxy.port()});
    RpcResponse resp;
    std::size_t retries = 0;
    ASSERT_TRUE(c.callRetrying(solveRequest(smallProblem()), policy,
                               resp, &err, &retries))
        << err;
    ASSERT_TRUE(resp.ok) << resp.error;
    // Garbage (unparseable frame) and a torn frame each cost one
    // retry; neither is ever trusted as an answer.
    EXPECT_EQ(retries, 2u);
    EXPECT_EQ(proxy.stats().garbage, 1);
    EXPECT_EQ(proxy.stats().partial_writes, 1);

    // The answer equals a fault-free solve of the same shape.
    Client direct(ts.ep());
    RpcResponse clean;
    ASSERT_TRUE(direct.call(solveRequest(smallProblem()), clean, &err))
        << err;
    EXPECT_EQ(resp.solve.sol, clean.solve.sol);
}

TEST(Chaos, PlanByteIdenticalUnderFaultsAndJournalSurvives)
{
    const std::string journal = tempPath("journal");
    std::remove(journal.c_str());
    std::vector<ConvProblem> net{smallProblem(16), smallProblem(32),
                                 smallProblem(48)};
    std::string plan_under_faults;
    {
        SolutionCacheOptions co;
        co.journal_path = journal;
        TestServer ts({}, co);
        // Three faults up front, then a long clean tail (the schedule
        // cycles by connection index; the tail keeps reconnects from
        // re-entering the fault prefix).
        std::vector<FaultKind> schedule{FaultKind::Drop,
                                        FaultKind::Garbage,
                                        FaultKind::PartialWrite};
        schedule.resize(32, FaultKind::None);
        FaultlineProxy proxy(proxyTo(ts.ep(), std::move(schedule)));
        std::string err;
        ASSERT_TRUE(proxy.start(&err)) << err;

        FleetOptions fleet;
        fleet.deadline_ms = 60000;
        fleet.max_retries = 5;
        fleet.backoff_ms = 10;
        ShardRouter router({RpcEndpoint{"127.0.0.1", proxy.port()}},
                           tiny(), fastOpts(), fleet);
        RouteStats rs;
        plan_under_faults = router.optimize(net, &rs).str();

        // Every fault was survived remotely: no local fallbacks, and
        // the retry counter owns up to the recovery work.
        EXPECT_EQ(rs.fallbacks, 0u);
        EXPECT_GE(rs.retries, 3u);
        EXPECT_EQ(rs.unique_shapes, net.size());
        const FaultlineStats fs = proxy.stats();
        EXPECT_EQ(fs.drops, 1);
        EXPECT_EQ(fs.garbage, 1);
        EXPECT_EQ(fs.partial_writes, 1);
    }

    // Byte-identical to a fault-free local run: faults may cost time,
    // never answers.
    SolutionCache local_cache;
    const NetworkOptimizer local(tiny(), fastOpts(), &local_cache);
    EXPECT_EQ(plan_under_faults, local.optimize(net).str());

    // The journal took the whole chaos run without corruption: a
    // fresh process loads every entry and skips none.
    SolutionCacheOptions co;
    co.journal_path = journal;
    SolutionCache reloaded(co);
    EXPECT_EQ(reloaded.stats().journal_loaded,
              static_cast<std::int64_t>(net.size()));
    EXPECT_EQ(reloaded.stats().journal_skipped, 0);
    std::remove(journal.c_str());
}

TEST(Chaos, HedgeEscapesSlowNode)
{
    TestServer node0, node1;
    // Node 0 sits behind a link that stalls every chunk for 700 ms;
    // node 1 is healthy. A hedged call must not pay node 0's stall.
    FaultlineOptions fo = proxyTo(node0.ep(), {FaultKind::Delay});
    fo.delay_ms = 700;
    FaultlineProxy proxy(fo);
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    // A shape whose key routes to node 0, so the hedge (not the
    // primary route) is what reaches the healthy node.
    FleetOptions fleet;
    fleet.deadline_ms = 60000;
    fleet.hedge_ms = 50;
    ShardRouter router(
        {RpcEndpoint{"127.0.0.1", proxy.port()}, node1.ep()}, tiny(),
        fastOpts(), fleet);
    ConvProblem p = smallProblem(16);
    for (int i = 0; i < 64; ++i) {
        p = smallProblem(16 + 8 * i);
        if (router.nodeOf(CacheKey::make(p, tiny(), fastOpts())) == 0)
            break;
    }
    ASSERT_EQ(router.nodeOf(CacheKey::make(p, tiny(), fastOpts())), 0u);

    RouteStats rs;
    const NetworkPlan plan = router.optimize({p}, &rs);
    EXPECT_GE(rs.hedges, 1u);
    EXPECT_EQ(rs.fallbacks, 0u);

    // Same answer as a fault-free local run, hedged or not.
    SolutionCache local_cache;
    const NetworkOptimizer local(tiny(), fastOpts(), &local_cache);
    EXPECT_EQ(plan.str(), local.optimize({p}).str());
}

TEST(Chaos, PerClientCapShedsWithExplicitOverload)
{
    ServerOptions so;
    so.max_per_client = 1;
    TestServer ts(so);

    // First connection occupies this IP's whole budget...
    Client first(ts.ep());
    RpcRequest stats_req;
    stats_req.op = RpcOp::Stats;
    RpcResponse resp;
    std::string err;
    ASSERT_TRUE(first.call(stats_req, resp, &err)) << err;
    ASSERT_TRUE(resp.ok);

    // ...so a second is refused at the door, with the retryable
    // "overloaded" code, not a silent hangup.
    TcpSocket second =
        TcpSocket::connectTo(ts.ep().host, ts.ep().port, &err);
    ASSERT_TRUE(second.valid()) << err;
    LineReader reader(second, 1 << 20);
    std::string line;
    ASSERT_EQ(reader.readLine(line, Deadline::in(5000)),
              LineReader::Status::Ok);
    RpcResponse refused;
    ASSERT_TRUE(responseFromJsonLine(line, refused, &err)) << err;
    EXPECT_FALSE(refused.ok);
    EXPECT_EQ(refused.code, RpcErrorCode::Overloaded);
    EXPECT_EQ(ts.server().counters().shed_client.load(), 1);

    // Once the first connection is gone the budget frees up; a
    // retrying client (overloaded is retryable) gets through even if
    // it races the server's bookkeeping.
    first.disconnect();
    FleetOptions policy;
    policy.deadline_ms = 5000;
    policy.max_retries = 5;
    policy.backoff_ms = 20;
    Client third(ts.ep());
    ASSERT_TRUE(third.callRetrying(stats_req, policy, resp, &err))
        << err;
    EXPECT_TRUE(resp.ok);
}

TEST(Chaos, ExpiredDeadlineIsSheddedNotServed)
{
    TestServer ts;
    Client c(ts.ep());
    RpcRequest req = solveRequest(smallProblem());
    req.deadline_ms = 1; // Gone before any solve can finish.
    RpcResponse resp;
    std::string err;
    ASSERT_TRUE(c.call(req, resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.code, RpcErrorCode::DeadlineExceeded);
    EXPECT_GE(ts.server().counters().shed_deadline.load(), 1);

    // The abandoned flight keeps solving and lands in the cache: a
    // patient follow-up gets the answer, never a wasted solve.
    req.deadline_ms = 0;
    ASSERT_TRUE(c.call(req, resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
    EXPECT_EQ(ts.server().schedulerStats().solves, 1);
}

TEST(TcpEdge, ReadLineSurvivesEintr)
{
    TcpListener listener;
    ASSERT_TRUE(listener.listenOn("127.0.0.1", 0));
    TcpSocket client =
        TcpSocket::connectTo("127.0.0.1", listener.port());
    ASSERT_TRUE(client.valid());
    TcpSocket served = listener.accept();
    ASSERT_TRUE(served.valid());

    // A no-op handler installed *without* SA_RESTART: every signal
    // makes the blocked poll return EINTR instead of restarting.
    struct sigaction sa = {};
    sa.sa_handler = [](int) {};
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    struct sigaction old = {};
    ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

    LineReader reader(served, 1024);
    std::string line;
    auto status = LineReader::Status::Error;
    std::atomic<bool> done{false};
    std::thread reader_thread([&] {
        status = reader.readLine(line, Deadline::in(10000));
        done.store(true);
    });
    // Pepper the blocked read with interrupts, then deliver the line:
    // the read must absorb every EINTR and still come back Ok.
    for (int i = 0; i < 20 && !done.load(); ++i) {
        pthread_kill(reader_thread.native_handle(), SIGUSR1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(client.sendAll("alive\n"));
    reader_thread.join();
    sigaction(SIGUSR1, &old, nullptr);
    EXPECT_EQ(status, LineReader::Status::Ok);
    EXPECT_EQ(line, "alive");
}

TEST(TcpEdge, FragmentedRequestStillParses)
{
    TestServer ts;
    TcpSocket sock =
        TcpSocket::connectTo(ts.ep().host, ts.ep().port);
    ASSERT_TRUE(sock.valid());

    // One byte per segment, with pauses: the server's reader must
    // reassemble the frame no matter how the network slices it.
    const std::string req = "{\"op\":\"stats\"}\n";
    for (const char ch : req) {
        ASSERT_TRUE(sock.sendAll(std::string(1, ch)));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    LineReader reader(sock, 1 << 20);
    std::string line;
    ASSERT_EQ(reader.readLine(line, Deadline::in(10000)),
              LineReader::Status::Ok);
    RpcResponse resp;
    std::string err;
    ASSERT_TRUE(responseFromJsonLine(line, resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
    EXPECT_EQ(resp.op, RpcOp::Stats);
}

TEST(TcpEdge, OversizedLineRejectedThroughProxy)
{
    ServerOptions so;
    so.max_request_bytes = 128;
    TestServer ts(so);
    FaultlineProxy proxy(proxyTo(ts.ep(), {FaultKind::None}));
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    TcpSocket sock =
        TcpSocket::connectTo("127.0.0.1", proxy.port(), &err);
    ASSERT_TRUE(sock.valid()) << err;
    ASSERT_TRUE(sock.sendAll(std::string(4096, 'x')));
    LineReader reader(sock, 1 << 20);
    std::string line;
    ASSERT_EQ(reader.readLine(line, Deadline::in(10000)),
              LineReader::Status::Ok);
    RpcResponse resp;
    ASSERT_TRUE(responseFromJsonLine(line, resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_NE(resp.error.find("exceeds"), std::string::npos);
    // Framing is unrecoverable: the hangup travels through the proxy.
    EXPECT_EQ(reader.readLine(line, Deadline::in(10000)),
              LineReader::Status::Eof);
}

// Warm-entry replication is best-effort: when the push to a peer is
// blackholed by the network, the origin counts the failure and moves
// on, the peer's cache stays cold, and the peer converges by paying
// for its own solve on its next miss — exactly one solve per node,
// with byte-identical plans (the solver is deterministic).
TEST(Chaos, ReplicationPushDroppedByBlackholeConvergesWithoutDuplicates)
{
    TestServer peer; // The replication target, reachable only via...
    FaultlineProxy proxy(proxyTo(
        peer.ep(), std::vector<FaultKind>(8, FaultKind::Blackhole)));
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    ServerOptions so;
    so.replicate = "127.0.0.1:" + std::to_string(proxy.port());
    TestServer origin(so); // start() pull is blackholed too (bounded).

    const ConvProblem p = smallProblem();
    Client oc(origin.ep());
    RpcResponse resp;
    ASSERT_TRUE(oc.call(solveRequest(p), resp, &err)) << err;
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_FALSE(resp.solve.cache_hit);

    // The push rides a 1 s deadline into the blackhole; wait for the
    // failure counter rather than sleeping blind.
    const auto t0 = std::chrono::steady_clock::now();
    while (origin.server().counters().repl_push_failed.load(
               std::memory_order_relaxed) == 0 &&
           elapsedMs(t0) < 10000)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_GE(origin.server().counters().repl_push_failed.load(
                  std::memory_order_relaxed),
              1);
    EXPECT_EQ(origin.server().counters().repl_pushed.load(
                  std::memory_order_relaxed),
              0);

    // The record never reached the peer...
    EXPECT_EQ(peer.cache().size(), 0u);
    EXPECT_EQ(peer.server().counters().repl_applied.load(
                  std::memory_order_relaxed),
              0);

    // ...so the peer pays for its own solve on its next miss, and the
    // fleet still agrees byte for byte. No duplicate solves anywhere:
    // one on the origin, one on the peer.
    Client pc(peer.ep());
    RpcResponse presp;
    ASSERT_TRUE(pc.call(solveRequest(p), presp, &err)) << err;
    ASSERT_TRUE(presp.ok) << presp.error;
    EXPECT_FALSE(presp.solve.cache_hit);
    EXPECT_EQ(presp.solve.sol, resp.solve.sol);
    EXPECT_EQ(origin.server().schedulerStats().solves, 1);
    EXPECT_EQ(peer.server().schedulerStats().solves, 1);
}

// Shutdown must drain in-flight writes: a response the server already
// produced — even one far larger than the socket buffers, with the
// client not reading — flushes completely (bounded by shed_write_ms)
// before the connection closes.
TEST(Chaos, ShutdownDrainsInFlightWrites)
{
    ServerOptions so;
    so.shed_write_ms = 10000;
    SolutionCacheOptions co;
    co.capacity = 20000;
    TestServer ts(so, co);
    // Preload the cache so the stats response runs to megabytes.
    const CachedSolution sol{};
    for (int i = 0; i < 20000; ++i)
        ts.cache().insert(
            CacheKey::make(smallProblem(32 + i), tiny(), fastOpts()),
            sol);

    std::string err;
    TcpSocket sock = TcpSocket::connectTo(ts.ep().host, ts.ep().port,
                                          &err, Deadline::in(5000));
    ASSERT_TRUE(sock.valid()) << err;
    RpcRequest req;
    req.op = RpcOp::Stats;
    ASSERT_TRUE(sock.sendAll(requestToJsonLine(req) + "\n"));

    // Give the worker time to serialize and the loop time to wedge the
    // flush against our unread receive window, then pull the rug.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ts.server().stop();

    // Only now start reading: the full response must still arrive,
    // followed by a clean EOF.
    LineReader reader(sock, 64u << 20);
    std::string line;
    ASSERT_EQ(reader.readLine(line, Deadline::in(20000)),
              LineReader::Status::Ok);
    RpcResponse resp;
    ASSERT_TRUE(responseFromJsonLine(line, resp, &err)) << err;
    EXPECT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.entry_hits.size(), 20000u);
    EXPECT_EQ(reader.readLine(line, Deadline::in(10000)),
              LineReader::Status::Eof);
}

/** Reserve a loopback port: bind ephemeral, read it back, release.
 *  The listener's SO_REUSEADDR makes the immediate re-bind safe. */
int
reservePort()
{
    TcpListener tmp;
    if (!tmp.listenOn("127.0.0.1", 0))
        fatal("reservePort: cannot bind");
    return tmp.port();
}

/** This process's thread count (/proc/self/status Threads:). */
int
threadCount()
{
    std::ifstream f("/proc/self/status");
    std::string word;
    while (f >> word)
        if (word == "Threads:") {
            int n = 0;
            f >> n;
            return n;
        }
    return -1;
}

// The tentpole acceptance: a three-node fleet at replication factor 2
// loses any single node mid-traffic and keeps serving every key warm,
// byte-identical, under --no-fallback — the killed node's keys come
// from their ring follower, and no survivor re-solves anything.
TEST(Chaos, FleetServesWarmByteIdenticalAfterNodeKilled)
{
    // Fixed ports, reserved up front, so every node can name its
    // peers before any of them is up.
    const std::vector<int> ports{reservePort(), reservePort(),
                                 reservePort()};
    std::vector<RpcEndpoint> eps;
    for (const int p : ports)
        eps.push_back(RpcEndpoint{"127.0.0.1", p});

    std::vector<std::unique_ptr<TestServer>> fleet;
    for (int i = 0; i < 3; ++i) {
        ServerOptions so;
        so.port = ports[static_cast<std::size_t>(i)];
        so.replication_factor = 2;
        so.fleet_index = i;
        so.anti_entropy_ms = 200;
        // Peers in ring order with self removed (the fleet contract).
        for (int j = 0; j < 3; ++j) {
            if (j == i)
                continue;
            if (!so.replicate.empty())
                so.replicate += ",";
            so.replicate += eps[static_cast<std::size_t>(j)].str();
        }
        fleet.push_back(std::make_unique<TestServer>(so));
    }

    std::vector<ConvProblem> net;
    for (int i = 0; i < 6; ++i)
        net.push_back(smallProblem(16 + 8 * i));

    ShardRouter router(eps, tiny(), fastOpts());
    RouteStats rs;
    const std::string plan = router.optimize(net, &rs).str();
    EXPECT_EQ(rs.fallbacks, 0u);
    EXPECT_EQ(rs.remote_misses, net.size());

    // Replication factor 2: each key must reach exactly its ring
    // owner and the owner's successor — no more, no fewer.
    std::size_t want[3] = {0, 0, 0};
    for (const ConvProblem &p : net)
        for (const std::size_t s :
             replicaSlots(CacheKey::make(p, tiny(), fastOpts()).hash(),
                          3, 2))
            ++want[s];
    const auto t0 = std::chrono::steady_clock::now();
    for (;;) {
        bool done = true;
        for (std::size_t i = 0; i < 3; ++i)
            done = done && fleet[i]->cache().size() >= want[i];
        if (done || elapsedMs(t0) > 20000)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    std::int64_t solves_before[3];
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(fleet[i]->cache().size(), want[i]) << "node " << i;
        solves_before[i] = fleet[i]->server().schedulerStats().solves;
    }

    // Kill the owner of the first key — any single node must do.
    const std::size_t victim =
        router.nodeOf(CacheKey::make(net[0], tiny(), fastOpts()));
    fleet[victim].reset();

    // A fresh router with local fallback OFF: only the fleet's warm
    // copies may answer. Every key, including the victim's, must come
    // back a remote hit, and the plan byte-identical.
    FleetOptions nf;
    nf.local_fallback = false;
    nf.max_retries = 3;
    nf.backoff_ms = 10;
    nf.deadline_ms = 30000;
    ShardRouter after(eps, tiny(), fastOpts(), nf);
    RouteStats wrs;
    EXPECT_EQ(after.optimize(net, &wrs).str(), plan);
    EXPECT_EQ(wrs.remote_hits, net.size());
    EXPECT_EQ(wrs.fallbacks, 0u);

    // The survivors served from their caches: not one new solve.
    for (std::size_t i = 0; i < 3; ++i) {
        if (i != victim)
            EXPECT_EQ(fleet[i]->server().schedulerStats().solves,
                      solves_before[i]);
    }
}

// Delta prefetch: a node that restarts with its journal intact asks
// its peers only for what it missed ("since" its own high-water
// sequence), not the full cache — and converges without solving.
TEST(Chaos, RestartedNodeConvergesViaDeltaPrefetch)
{
    const std::string journal_a = tempPath("delta_a");
    const std::string journal_b = tempPath("delta_b");
    std::remove(journal_a.c_str());
    std::remove(journal_b.c_str());
    const int port_a = reservePort();
    const int port_b = reservePort();

    ServerOptions sa;
    sa.port = port_a;
    sa.replicate = "127.0.0.1:" + std::to_string(port_b);
    sa.fleet_index = 0;
    SolutionCacheOptions ca;
    ca.journal_path = journal_a;
    TestServer a(sa, ca);

    ServerOptions sb;
    sb.port = port_b;
    sb.replicate = "127.0.0.1:" + std::to_string(port_a);
    sb.fleet_index = 1;
    SolutionCacheOptions cb;
    cb.journal_path = journal_b;
    auto b = std::make_unique<TestServer>(sb, cb);

    // Five solves reach both nodes (factor defaults to all): journal
    // sequences 1..5 on each side.
    Client ac(a.ep());
    std::vector<CachedSolution> sols;
    for (int i = 0; i < 5; ++i) {
        RpcResponse resp;
        std::string err;
        ASSERT_TRUE(
            ac.call(solveRequest(smallProblem(16 + 8 * i)), resp, &err))
            << err;
        ASSERT_TRUE(resp.ok) << resp.error;
        sols.push_back(resp.solve.sol);
    }
    const auto t0 = std::chrono::steady_clock::now();
    while (b->cache().size() < 5 && elapsedMs(t0) < 15000)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_EQ(b->cache().size(), 5u);

    // B dies holding sequence 5; A keeps serving: sequences 6..8.
    b.reset();
    for (int i = 5; i < 8; ++i) {
        RpcResponse resp;
        std::string err;
        ASSERT_TRUE(
            ac.call(solveRequest(smallProblem(16 + 8 * i)), resp, &err))
            << err;
        ASSERT_TRUE(resp.ok) << resp.error;
        sols.push_back(resp.solve.sol);
    }
    EXPECT_EQ(a.cache().size(), 8u);

    // Restart B on the same port with the same journal: the join
    // prefetch must send since=5 and pull exactly the three missed
    // records — a delta, not a full transfer.
    b = std::make_unique<TestServer>(sb, cb);
    EXPECT_EQ(b->server().counters().repl_prefetch_since.load(
                  std::memory_order_relaxed),
              5);
    EXPECT_EQ(b->server().counters().repl_prefetched.load(
                  std::memory_order_relaxed),
              3);
    EXPECT_EQ(b->cache().size(), 8u);
    EXPECT_EQ(b->server().schedulerStats().solves, 0);

    // A delta-pulled key serves warm from B, byte-identical.
    Client bc(b->ep());
    RpcResponse warm;
    std::string err;
    ASSERT_TRUE(
        bc.call(solveRequest(smallProblem(16 + 8 * 7)), warm, &err))
        << err;
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_TRUE(warm.solve.cache_hit);
    EXPECT_EQ(warm.solve.sol, sols[7]);

    b.reset();
    std::remove(journal_a.c_str());
    std::remove(journal_b.c_str());
}

// A flapping peer — up 200 ms, down 200 ms, forever — must converge
// to the full record set with no duplicate solves and no lost
// acknowledged entries, through the Suspect/Down/half-open machinery
// and the per-peer spool; and the churn must not leak threads.
TEST(Chaos, FlappingPeerConvergesWithoutDuplicatesOrThreadGrowth)
{
    TestServer peer;
    FaultlineOptions fo = proxyTo(peer.ep(), {FaultKind::Flapping});
    fo.flap_up_ms = 200;
    fo.flap_down_ms = 200;
    FaultlineProxy proxy(fo);
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    ServerOptions so;
    so.replicate = "127.0.0.1:" + std::to_string(proxy.port());
    so.anti_entropy_ms = 200;
    TestServer origin(so);

    constexpr int kKeys = 6;
    Client oc(origin.ep());
    std::vector<CachedSolution> sols;
    for (int i = 0; i < kKeys; ++i) {
        RpcResponse resp;
        ASSERT_TRUE(
            oc.call(solveRequest(smallProblem(16 + 8 * i)), resp, &err))
            << err;
        ASSERT_TRUE(resp.ok) << resp.error;
        sols.push_back(resp.solve.sol);
    }

    // Convergence: pushes that land in an up window deliver, ones
    // that hit a down window spool and ride a later probe's drain.
    const auto t0 = std::chrono::steady_clock::now();
    while (peer.cache().size() < kKeys && elapsedMs(t0) < 30000)
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    ASSERT_EQ(peer.cache().size(), static_cast<std::size_t>(kKeys));

    // No duplicate solves (the peer never solved at all) and no
    // double-applied records despite retries across flaps.
    EXPECT_EQ(peer.server().schedulerStats().solves, 0);
    EXPECT_EQ(origin.server().schedulerStats().solves, kKeys);
    EXPECT_EQ(peer.server().counters().repl_applied.load(
                  std::memory_order_relaxed),
              kKeys);

    // No lost acknowledged entries: every record serves warm from the
    // peer, byte-identical to the origin's answer.
    Client pc(peer.ep());
    for (int i = 0; i < kKeys; ++i) {
        RpcResponse resp;
        ASSERT_TRUE(
            pc.call(solveRequest(smallProblem(16 + 8 * i)), resp, &err))
            << err;
        ASSERT_TRUE(resp.ok) << resp.error;
        EXPECT_TRUE(resp.solve.cache_hit);
        EXPECT_EQ(resp.solve.sol, sols[static_cast<std::size_t>(i)]);
    }

    // Thread hygiene: several more probe + anti-entropy rounds against
    // the still-flapping peer must recruit no new threads (a tolerance
    // of 2 absorbs the proxy's transient per-connection pumps).
    const int settled = threadCount();
    ASSERT_GT(settled, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    EXPECT_LE(threadCount(), settled + 2);
}

// Anti-entropy is the backstop beneath the push path: when every push
// from the origin is blackholed, the peer's periodic digest exchange
// notices the gap and pulls the records — the fleet heals without a
// single duplicate solve.
TEST(Chaos, AntiEntropyRepairsBlackholedPush)
{
    // A's view of B is a blackhole; B's view of A is direct.
    FaultlineOptions fo;
    fo.upstream_port = 1; // Never contacted by a blackhole.
    fo.schedule = std::vector<FaultKind>(64, FaultKind::Blackhole);
    FaultlineProxy proxy(fo);
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    const int port_a = reservePort();
    ServerOptions sa;
    sa.port = port_a;
    sa.replicate = "127.0.0.1:" + std::to_string(proxy.port());
    sa.fleet_index = 0;
    sa.anti_entropy_ms = 0; // A must not repair; B's rounds do.
    TestServer a(sa);

    ServerOptions sb;
    sb.replicate = "127.0.0.1:" + std::to_string(port_a);
    sb.fleet_index = 1;
    sb.anti_entropy_ms = 150;
    TestServer b(sb);

    constexpr int kKeys = 4;
    Client ac(a.ep());
    std::vector<CachedSolution> sols;
    for (int i = 0; i < kKeys; ++i) {
        RpcResponse resp;
        ASSERT_TRUE(
            ac.call(solveRequest(smallProblem(16 + 8 * i)), resp, &err))
            << err;
        ASSERT_TRUE(resp.ok) << resp.error;
        sols.push_back(resp.solve.sol);
    }

    // The pushes die in the blackhole; B's digest exchange against A
    // sees count/fingerprint drift and pulls what it is missing.
    const auto t0 = std::chrono::steady_clock::now();
    while (b.cache().size() < kKeys && elapsedMs(t0) < 30000)
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    ASSERT_EQ(b.cache().size(), static_cast<std::size_t>(kKeys));
    EXPECT_GE(b.server().counters().repl_ae_applied.load(
                  std::memory_order_relaxed),
              kKeys);
    EXPECT_EQ(b.server().schedulerStats().solves, 0);

    // Repaired entries serve warm and byte-identical.
    Client bc(b.ep());
    for (int i = 0; i < kKeys; ++i) {
        RpcResponse resp;
        ASSERT_TRUE(
            bc.call(solveRequest(smallProblem(16 + 8 * i)), resp, &err))
            << err;
        ASSERT_TRUE(resp.ok) << resp.error;
        EXPECT_TRUE(resp.solve.cache_hit);
        EXPECT_EQ(resp.solve.sol, sols[static_cast<std::size_t>(i)]);
    }
}

} // namespace
} // namespace mopt
