/**
 * @file
 * Fault-injection tests of the serving stack, driven through the
 * Faultline proxy (src/rpc/faultline.hh): every nasty thing a network
 * does — swallowed responses, torn frames, corrupted bytes, stalls,
 * blackholes — on a deterministic schedule, with the assertions the
 * failure model promises: no call outlives its deadline (bounded by
 * 2x), retries and hedges converge on plans byte-identical to a
 * fault-free run, counters tell the truth, and the cache journal
 * comes back uncorrupted. Plus direct edge-path coverage of the TCP
 * layer: EINTR during a blocked read, fragmented frames, oversized
 * lines through the proxy.
 */

#include <gtest/gtest.h>

#include <pthread.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "machine/machine.hh"
#include "rpc/client.hh"
#include "rpc/faultline.hh"
#include "rpc/protocol.hh"
#include "rpc/server.hh"
#include "rpc/tcp.hh"
#include "service/cache_key.hh"
#include "service/network_optimizer.hh"
#include "service/solution_cache.hh"

namespace mopt {
namespace {

ConvProblem
smallProblem(std::int64_t k = 32, std::int64_t c = 16,
             std::int64_t hw = 14)
{
    ConvProblem p;
    p.name = "chaos";
    p.n = 1;
    p.k = k;
    p.c = c;
    p.r = 3;
    p.s = 3;
    p.h = hw;
    p.w = hw;
    return p;
}

OptimizerOptions
fastOpts()
{
    OptimizerOptions o;
    o.effort = OptimizerOptions::Effort::Fast;
    o.parallel = true;
    o.threads = 4;
    return o;
}

MachineSpec
tiny()
{
    return machineByName("tiny");
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "mopt_chaos_" + name + "_" +
           std::to_string(::getpid()) + ".json";
}

/** A running moptd on an ephemeral loopback port. */
class TestServer
{
  public:
    explicit TestServer(ServerOptions so = {},
                        SolutionCacheOptions co = {},
                        OptimizerOptions opts = fastOpts())
        : cache_(co), server_(tiny(), opts, &cache_, so)
    {
        std::string err;
        if (!server_.start(&err))
            fatal("TestServer: " + err);
        thread_ = std::thread([this] { server_.serve(); });
    }

    ~TestServer()
    {
        server_.stop();
        if (thread_.joinable())
            thread_.join();
    }

    RpcEndpoint ep() const
    {
        return RpcEndpoint{"127.0.0.1", server_.port()};
    }

    SolutionCache &cache() { return cache_; }
    Server &server() { return server_; }

  private:
    SolutionCache cache_;
    Server server_;
    std::thread thread_;
};

RpcRequest
solveRequest(const ConvProblem &p)
{
    RpcRequest req;
    req.op = RpcOp::Solve;
    req.problem = p;
    req.machine_fp = CacheKey::machineFingerprint(tiny());
    req.settings_fp = CacheKey::settingsFingerprint(fastOpts());
    return req;
}

/** A proxy in front of @p upstream with the given fault schedule. */
FaultlineOptions
proxyTo(const RpcEndpoint &upstream, std::vector<FaultKind> schedule)
{
    FaultlineOptions fo;
    fo.upstream_host = upstream.host;
    fo.upstream_port = upstream.port;
    fo.schedule = std::move(schedule);
    return fo;
}

long
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - since)
        .count();
}

TEST(Chaos, BlackholeIsBoundedByDeadline)
{
    // No server at all behind this fault: the connection accepts and
    // then answers nothing, forever. Only the deadline gets out.
    FaultlineOptions fo;
    fo.upstream_port = 1; // Never contacted by a blackhole.
    fo.schedule = {FaultKind::Blackhole};
    FaultlineProxy proxy(fo);
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    constexpr long kDeadlineMs = 500;
    Client c(RpcEndpoint{"127.0.0.1", proxy.port()});
    RpcResponse resp;
    const auto start = std::chrono::steady_clock::now();
    const bool ok = c.call(solveRequest(smallProblem()), resp, &err,
                           Deadline::in(kDeadlineMs));
    const long took = elapsedMs(start);
    EXPECT_FALSE(ok);
    // The acceptance bound: within 2x the configured deadline.
    EXPECT_LE(took, 2 * kDeadlineMs);
    EXPECT_EQ(proxy.stats().blackholes, 1);
}

TEST(Chaos, DroppedResponseIsRetriedAndConvergesViaCache)
{
    TestServer ts;
    FaultlineProxy proxy(
        proxyTo(ts.ep(), {FaultKind::Drop, FaultKind::None}));
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    // Connection 0 delivers the request and loses the answer: the
    // server has *processed* it. The retry (connection 1, clean) must
    // converge on the very answer the first attempt computed.
    FleetOptions policy;
    policy.deadline_ms = 30000;
    policy.max_retries = 2;
    policy.backoff_ms = 10;
    Client c(RpcEndpoint{"127.0.0.1", proxy.port()});
    RpcResponse resp;
    std::size_t retries = 0;
    ASSERT_TRUE(c.callRetrying(solveRequest(smallProblem()), policy,
                               resp, &err, &retries))
        << err;
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(retries, 1u);
    // The first attempt's solve landed in the cache before its
    // response was written, so the retry is a hit — work is never
    // repeated, only the answer's delivery.
    EXPECT_TRUE(resp.solve.cache_hit);
    EXPECT_EQ(proxy.stats().drops, 1);
    EXPECT_EQ(ts.server().schedulerStats().solves, 1);
}

TEST(Chaos, GarbageAndTornResponsesAreRejectedThenRetried)
{
    TestServer ts;
    FaultlineProxy proxy(proxyTo(
        ts.ep(),
        {FaultKind::Garbage, FaultKind::PartialWrite, FaultKind::None}));
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    FleetOptions policy;
    policy.deadline_ms = 30000;
    policy.max_retries = 3;
    policy.backoff_ms = 10;
    Client c(RpcEndpoint{"127.0.0.1", proxy.port()});
    RpcResponse resp;
    std::size_t retries = 0;
    ASSERT_TRUE(c.callRetrying(solveRequest(smallProblem()), policy,
                               resp, &err, &retries))
        << err;
    ASSERT_TRUE(resp.ok) << resp.error;
    // Garbage (unparseable frame) and a torn frame each cost one
    // retry; neither is ever trusted as an answer.
    EXPECT_EQ(retries, 2u);
    EXPECT_EQ(proxy.stats().garbage, 1);
    EXPECT_EQ(proxy.stats().partial_writes, 1);

    // The answer equals a fault-free solve of the same shape.
    Client direct(ts.ep());
    RpcResponse clean;
    ASSERT_TRUE(direct.call(solveRequest(smallProblem()), clean, &err))
        << err;
    EXPECT_EQ(resp.solve.sol, clean.solve.sol);
}

TEST(Chaos, PlanByteIdenticalUnderFaultsAndJournalSurvives)
{
    const std::string journal = tempPath("journal");
    std::remove(journal.c_str());
    std::vector<ConvProblem> net{smallProblem(16), smallProblem(32),
                                 smallProblem(48)};
    std::string plan_under_faults;
    {
        SolutionCacheOptions co;
        co.journal_path = journal;
        TestServer ts({}, co);
        // Three faults up front, then a long clean tail (the schedule
        // cycles by connection index; the tail keeps reconnects from
        // re-entering the fault prefix).
        std::vector<FaultKind> schedule{FaultKind::Drop,
                                        FaultKind::Garbage,
                                        FaultKind::PartialWrite};
        schedule.resize(32, FaultKind::None);
        FaultlineProxy proxy(proxyTo(ts.ep(), std::move(schedule)));
        std::string err;
        ASSERT_TRUE(proxy.start(&err)) << err;

        FleetOptions fleet;
        fleet.deadline_ms = 60000;
        fleet.max_retries = 5;
        fleet.backoff_ms = 10;
        ShardRouter router({RpcEndpoint{"127.0.0.1", proxy.port()}},
                           tiny(), fastOpts(), fleet);
        RouteStats rs;
        plan_under_faults = router.optimize(net, &rs).str();

        // Every fault was survived remotely: no local fallbacks, and
        // the retry counter owns up to the recovery work.
        EXPECT_EQ(rs.fallbacks, 0u);
        EXPECT_GE(rs.retries, 3u);
        EXPECT_EQ(rs.unique_shapes, net.size());
        const FaultlineStats fs = proxy.stats();
        EXPECT_EQ(fs.drops, 1);
        EXPECT_EQ(fs.garbage, 1);
        EXPECT_EQ(fs.partial_writes, 1);
    }

    // Byte-identical to a fault-free local run: faults may cost time,
    // never answers.
    SolutionCache local_cache;
    const NetworkOptimizer local(tiny(), fastOpts(), &local_cache);
    EXPECT_EQ(plan_under_faults, local.optimize(net).str());

    // The journal took the whole chaos run without corruption: a
    // fresh process loads every entry and skips none.
    SolutionCacheOptions co;
    co.journal_path = journal;
    SolutionCache reloaded(co);
    EXPECT_EQ(reloaded.stats().journal_loaded,
              static_cast<std::int64_t>(net.size()));
    EXPECT_EQ(reloaded.stats().journal_skipped, 0);
    std::remove(journal.c_str());
}

TEST(Chaos, HedgeEscapesSlowNode)
{
    TestServer node0, node1;
    // Node 0 sits behind a link that stalls every chunk for 700 ms;
    // node 1 is healthy. A hedged call must not pay node 0's stall.
    FaultlineOptions fo = proxyTo(node0.ep(), {FaultKind::Delay});
    fo.delay_ms = 700;
    FaultlineProxy proxy(fo);
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    // A shape whose key routes to node 0, so the hedge (not the
    // primary route) is what reaches the healthy node.
    FleetOptions fleet;
    fleet.deadline_ms = 60000;
    fleet.hedge_ms = 50;
    ShardRouter router(
        {RpcEndpoint{"127.0.0.1", proxy.port()}, node1.ep()}, tiny(),
        fastOpts(), fleet);
    ConvProblem p = smallProblem(16);
    for (int i = 0; i < 64; ++i) {
        p = smallProblem(16 + 8 * i);
        if (router.nodeOf(CacheKey::make(p, tiny(), fastOpts())) == 0)
            break;
    }
    ASSERT_EQ(router.nodeOf(CacheKey::make(p, tiny(), fastOpts())), 0u);

    RouteStats rs;
    const NetworkPlan plan = router.optimize({p}, &rs);
    EXPECT_GE(rs.hedges, 1u);
    EXPECT_EQ(rs.fallbacks, 0u);

    // Same answer as a fault-free local run, hedged or not.
    SolutionCache local_cache;
    const NetworkOptimizer local(tiny(), fastOpts(), &local_cache);
    EXPECT_EQ(plan.str(), local.optimize({p}).str());
}

TEST(Chaos, PerClientCapShedsWithExplicitOverload)
{
    ServerOptions so;
    so.max_per_client = 1;
    TestServer ts(so);

    // First connection occupies this IP's whole budget...
    Client first(ts.ep());
    RpcRequest stats_req;
    stats_req.op = RpcOp::Stats;
    RpcResponse resp;
    std::string err;
    ASSERT_TRUE(first.call(stats_req, resp, &err)) << err;
    ASSERT_TRUE(resp.ok);

    // ...so a second is refused at the door, with the retryable
    // "overloaded" code, not a silent hangup.
    TcpSocket second =
        TcpSocket::connectTo(ts.ep().host, ts.ep().port, &err);
    ASSERT_TRUE(second.valid()) << err;
    LineReader reader(second, 1 << 20);
    std::string line;
    ASSERT_EQ(reader.readLine(line, Deadline::in(5000)),
              LineReader::Status::Ok);
    RpcResponse refused;
    ASSERT_TRUE(responseFromJsonLine(line, refused, &err)) << err;
    EXPECT_FALSE(refused.ok);
    EXPECT_EQ(refused.code, RpcErrorCode::Overloaded);
    EXPECT_EQ(ts.server().counters().shed_client.load(), 1);

    // Once the first connection is gone the budget frees up; a
    // retrying client (overloaded is retryable) gets through even if
    // it races the server's bookkeeping.
    first.disconnect();
    FleetOptions policy;
    policy.deadline_ms = 5000;
    policy.max_retries = 5;
    policy.backoff_ms = 20;
    Client third(ts.ep());
    ASSERT_TRUE(third.callRetrying(stats_req, policy, resp, &err))
        << err;
    EXPECT_TRUE(resp.ok);
}

TEST(Chaos, ExpiredDeadlineIsSheddedNotServed)
{
    TestServer ts;
    Client c(ts.ep());
    RpcRequest req = solveRequest(smallProblem());
    req.deadline_ms = 1; // Gone before any solve can finish.
    RpcResponse resp;
    std::string err;
    ASSERT_TRUE(c.call(req, resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.code, RpcErrorCode::DeadlineExceeded);
    EXPECT_GE(ts.server().counters().shed_deadline.load(), 1);

    // The abandoned flight keeps solving and lands in the cache: a
    // patient follow-up gets the answer, never a wasted solve.
    req.deadline_ms = 0;
    ASSERT_TRUE(c.call(req, resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
    EXPECT_EQ(ts.server().schedulerStats().solves, 1);
}

TEST(TcpEdge, ReadLineSurvivesEintr)
{
    TcpListener listener;
    ASSERT_TRUE(listener.listenOn("127.0.0.1", 0));
    TcpSocket client =
        TcpSocket::connectTo("127.0.0.1", listener.port());
    ASSERT_TRUE(client.valid());
    TcpSocket served = listener.accept();
    ASSERT_TRUE(served.valid());

    // A no-op handler installed *without* SA_RESTART: every signal
    // makes the blocked poll return EINTR instead of restarting.
    struct sigaction sa = {};
    sa.sa_handler = [](int) {};
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    struct sigaction old = {};
    ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

    LineReader reader(served, 1024);
    std::string line;
    auto status = LineReader::Status::Error;
    std::atomic<bool> done{false};
    std::thread reader_thread([&] {
        status = reader.readLine(line, Deadline::in(10000));
        done.store(true);
    });
    // Pepper the blocked read with interrupts, then deliver the line:
    // the read must absorb every EINTR and still come back Ok.
    for (int i = 0; i < 20 && !done.load(); ++i) {
        pthread_kill(reader_thread.native_handle(), SIGUSR1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(client.sendAll("alive\n"));
    reader_thread.join();
    sigaction(SIGUSR1, &old, nullptr);
    EXPECT_EQ(status, LineReader::Status::Ok);
    EXPECT_EQ(line, "alive");
}

TEST(TcpEdge, FragmentedRequestStillParses)
{
    TestServer ts;
    TcpSocket sock =
        TcpSocket::connectTo(ts.ep().host, ts.ep().port);
    ASSERT_TRUE(sock.valid());

    // One byte per segment, with pauses: the server's reader must
    // reassemble the frame no matter how the network slices it.
    const std::string req = "{\"op\":\"stats\"}\n";
    for (const char ch : req) {
        ASSERT_TRUE(sock.sendAll(std::string(1, ch)));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    LineReader reader(sock, 1 << 20);
    std::string line;
    ASSERT_EQ(reader.readLine(line, Deadline::in(10000)),
              LineReader::Status::Ok);
    RpcResponse resp;
    std::string err;
    ASSERT_TRUE(responseFromJsonLine(line, resp, &err)) << err;
    EXPECT_TRUE(resp.ok);
    EXPECT_EQ(resp.op, RpcOp::Stats);
}

TEST(TcpEdge, OversizedLineRejectedThroughProxy)
{
    ServerOptions so;
    so.max_request_bytes = 128;
    TestServer ts(so);
    FaultlineProxy proxy(proxyTo(ts.ep(), {FaultKind::None}));
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    TcpSocket sock =
        TcpSocket::connectTo("127.0.0.1", proxy.port(), &err);
    ASSERT_TRUE(sock.valid()) << err;
    ASSERT_TRUE(sock.sendAll(std::string(4096, 'x')));
    LineReader reader(sock, 1 << 20);
    std::string line;
    ASSERT_EQ(reader.readLine(line, Deadline::in(10000)),
              LineReader::Status::Ok);
    RpcResponse resp;
    ASSERT_TRUE(responseFromJsonLine(line, resp, &err)) << err;
    EXPECT_FALSE(resp.ok);
    EXPECT_NE(resp.error.find("exceeds"), std::string::npos);
    // Framing is unrecoverable: the hangup travels through the proxy.
    EXPECT_EQ(reader.readLine(line, Deadline::in(10000)),
              LineReader::Status::Eof);
}

// Warm-entry replication is best-effort: when the push to a peer is
// blackholed by the network, the origin counts the failure and moves
// on, the peer's cache stays cold, and the peer converges by paying
// for its own solve on its next miss — exactly one solve per node,
// with byte-identical plans (the solver is deterministic).
TEST(Chaos, ReplicationPushDroppedByBlackholeConvergesWithoutDuplicates)
{
    TestServer peer; // The replication target, reachable only via...
    FaultlineProxy proxy(proxyTo(
        peer.ep(), std::vector<FaultKind>(8, FaultKind::Blackhole)));
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << err;

    ServerOptions so;
    so.replicate = "127.0.0.1:" + std::to_string(proxy.port());
    TestServer origin(so); // start() pull is blackholed too (bounded).

    const ConvProblem p = smallProblem();
    Client oc(origin.ep());
    RpcResponse resp;
    ASSERT_TRUE(oc.call(solveRequest(p), resp, &err)) << err;
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_FALSE(resp.solve.cache_hit);

    // The push rides a 1 s deadline into the blackhole; wait for the
    // failure counter rather than sleeping blind.
    const auto t0 = std::chrono::steady_clock::now();
    while (origin.server().counters().repl_push_failed.load(
               std::memory_order_relaxed) == 0 &&
           elapsedMs(t0) < 10000)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_GE(origin.server().counters().repl_push_failed.load(
                  std::memory_order_relaxed),
              1);
    EXPECT_EQ(origin.server().counters().repl_pushed.load(
                  std::memory_order_relaxed),
              0);

    // The record never reached the peer...
    EXPECT_EQ(peer.cache().size(), 0u);
    EXPECT_EQ(peer.server().counters().repl_applied.load(
                  std::memory_order_relaxed),
              0);

    // ...so the peer pays for its own solve on its next miss, and the
    // fleet still agrees byte for byte. No duplicate solves anywhere:
    // one on the origin, one on the peer.
    Client pc(peer.ep());
    RpcResponse presp;
    ASSERT_TRUE(pc.call(solveRequest(p), presp, &err)) << err;
    ASSERT_TRUE(presp.ok) << presp.error;
    EXPECT_FALSE(presp.solve.cache_hit);
    EXPECT_EQ(presp.solve.sol, resp.solve.sol);
    EXPECT_EQ(origin.server().schedulerStats().solves, 1);
    EXPECT_EQ(peer.server().schedulerStats().solves, 1);
}

// Shutdown must drain in-flight writes: a response the server already
// produced — even one far larger than the socket buffers, with the
// client not reading — flushes completely (bounded by shed_write_ms)
// before the connection closes.
TEST(Chaos, ShutdownDrainsInFlightWrites)
{
    ServerOptions so;
    so.shed_write_ms = 10000;
    SolutionCacheOptions co;
    co.capacity = 20000;
    TestServer ts(so, co);
    // Preload the cache so the stats response runs to megabytes.
    const CachedSolution sol{};
    for (int i = 0; i < 20000; ++i)
        ts.cache().insert(
            CacheKey::make(smallProblem(32 + i), tiny(), fastOpts()),
            sol);

    std::string err;
    TcpSocket sock = TcpSocket::connectTo(ts.ep().host, ts.ep().port,
                                          &err, Deadline::in(5000));
    ASSERT_TRUE(sock.valid()) << err;
    RpcRequest req;
    req.op = RpcOp::Stats;
    ASSERT_TRUE(sock.sendAll(requestToJsonLine(req) + "\n"));

    // Give the worker time to serialize and the loop time to wedge the
    // flush against our unread receive window, then pull the rug.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ts.server().stop();

    // Only now start reading: the full response must still arrive,
    // followed by a clean EOF.
    LineReader reader(sock, 64u << 20);
    std::string line;
    ASSERT_EQ(reader.readLine(line, Deadline::in(20000)),
              LineReader::Status::Ok);
    RpcResponse resp;
    ASSERT_TRUE(responseFromJsonLine(line, resp, &err)) << err;
    EXPECT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.entry_hits.size(), 20000u);
    EXPECT_EQ(reader.readLine(line, Deadline::in(10000)),
              LineReader::Status::Eof);
}

} // namespace
} // namespace mopt
