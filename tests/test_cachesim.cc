/**
 * @file
 * Tests of the LRU cache simulator, the multi-level hierarchy, and
 * the agreement between simulated traffic and the analytical model
 * (the Sec. 9 validation, in miniature).
 */

#include <gtest/gtest.h>

#include "cachesim/conv_trace.hh"
#include "cachesim/hierarchy.hh"
#include "cachesim/lru_cache.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "machine/machine.hh"
#include "model/multi_level.hh"
#include "optimizer/mopt_optimizer.hh"

namespace mopt {
namespace {

TEST(LruCache, ColdMissesThenHits)
{
    LruCache c(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(c.access(i, false), AccessResult::Miss);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(c.access(i, false), AccessResult::Hit);
    EXPECT_EQ(c.misses(), 4);
    EXPECT_EQ(c.hits(), 4);
}

TEST(LruCache, EvictsLeastRecentlyUsed)
{
    LruCache c(2);
    c.access(1, false);
    c.access(2, false);
    c.access(1, false);            // 1 is now MRU
    c.access(3, false);            // evicts 2
    EXPECT_EQ(c.access(1, false), AccessResult::Hit);
    EXPECT_EQ(c.access(2, false), AccessResult::Miss);
}

TEST(LruCache, DirtyEvictionCountsWriteback)
{
    LruCache c(1);
    c.access(1, true);
    EXPECT_EQ(c.writebacks(), 0);
    c.access(2, false); // evicts dirty 1
    EXPECT_EQ(c.writebacks(), 1);
    c.access(3, false); // evicts clean 2
    EXPECT_EQ(c.writebacks(), 1);
}

TEST(LruCache, FlushWritesBackDirtyLines)
{
    LruCache c(8);
    c.access(1, true);
    c.access(2, false);
    c.access(3, true);
    c.flush();
    EXPECT_EQ(c.writebacks(), 2);
    EXPECT_EQ(c.residentLines(), 0);
}

TEST(LruCache, LineGranularity)
{
    LruCache c(16, 4); // 4 lines of 4 words
    EXPECT_EQ(c.capacityLines(), 4);
    EXPECT_EQ(c.access(0, false), AccessResult::Miss);
    EXPECT_EQ(c.access(3, false), AccessResult::Hit);  // same line
    EXPECT_EQ(c.access(4, false), AccessResult::Miss); // next line
}

TEST(LruCache, WorkingSetLargerThanCapacityThrashes)
{
    LruCache c(4);
    // Cyclic sweep over 5 addresses with LRU: every access misses.
    for (int rep = 0; rep < 3; ++rep)
        for (int i = 0; i < 5; ++i)
            c.access(i, false);
    EXPECT_EQ(c.hits(), 0);
    EXPECT_EQ(c.misses(), 15);
}

TEST(Hierarchy, CascadesMisses)
{
    Hierarchy h({2, 4, 8});
    h.access(0, false);
    // Cold: all three levels miss.
    EXPECT_EQ(h.traffic(0).misses, 1);
    EXPECT_EQ(h.traffic(1).misses, 1);
    EXPECT_EQ(h.traffic(2).misses, 1);
    h.access(0, false);
    // L1 hit: outer levels untouched.
    EXPECT_EQ(h.traffic(0).misses, 1);
    EXPECT_EQ(h.traffic(1).accesses, 1);
}

TEST(Hierarchy, L2CatchesL1CapacityMisses)
{
    Hierarchy h({2, 8, 32});
    for (int i = 0; i < 4; ++i)
        h.access(i, false);
    // Re-sweep: L1 (2 lines) thrashes, L2 (8 lines) holds all 4.
    for (int i = 0; i < 4; ++i)
        h.access(i, false);
    EXPECT_EQ(h.traffic(0).misses, 8);
    EXPECT_EQ(h.traffic(1).misses, 4);
    EXPECT_EQ(h.traffic(2).misses, 4);
}

TEST(Hierarchy, FromMachineUsesCacheCapacities)
{
    const MachineSpec m = tinyTestMachine();
    Hierarchy h = Hierarchy::fromMachine(m);
    EXPECT_EQ(h.numLevels(), 3);
}

/** Trace accounting identities on a small convolution. */
TEST(ConvTrace, AccessCountMatchesAnalyticCount)
{
    ConvProblem p;
    p.name = "trace";
    p.n = 1;
    p.k = 16;
    p.c = 4;
    p.r = 3;
    p.s = 3;
    p.h = 6;
    p.w = 6;
    const MachineSpec m = tinyTestMachine();

    ExecConfig cfg;
    cfg.perm[LvlReg] = microkernelPermutation();
    cfg.tiles[LvlReg] = microkernelTiles(p, m);
    cfg.tiles[LvlReg][DimK] = 16; // machine-independent in this test
    for (int l = LvlL1; l <= LvlL3; ++l) {
        cfg.perm[static_cast<std::size_t>(l)] =
            Permutation::parse("kcrsnhw");
        cfg.tiles[static_cast<std::size_t>(l)] = problemExtents(p);
    }
    cfg.tiles[LvlL1] = {1, 16, 4, 3, 3, 2, 6};

    const TraceStats stats = simulateConvTrace(p, cfg, m);
    // Per register tile (kb=16, wb=6): crs * (16 + 6) accesses + 2*96
    // for the Out block. Register tiles: h=6 x (w/6=1) x (k/16=1).
    const std::int64_t crs = 4 * 3 * 3;
    const std::int64_t tiles = 6;
    EXPECT_EQ(stats.reg_words, tiles * (crs * (16 + 6) + 2 * 96));
    // Memory traffic at least: all tensors once, Out twice... Out is
    // written once (write-allocated) so: In + Ker + 2*Out lower bound.
    EXPECT_GE(stats.level_words[2],
              p.kerSize() + p.outSize()); // loose lower bound
}

/**
 * Sec. 9 in miniature: analytical DV tracks simulated traffic across
 * configurations (rank correlation at the memory boundary).
 */
TEST(ConvTrace, ModelCorrelatesWithSimulatedTraffic)
{
    // Sized to overflow the tiny machine's 16K-word L3 (footprint
    // ~22K words): a problem that fits L3 entirely has constant
    // (compulsory) memory traffic for every tiling, which makes rank
    // correlation at that boundary meaningless.
    ConvProblem p;
    p.name = "corr";
    p.n = 1;
    p.k = 16;
    p.c = 16;
    p.r = 3;
    p.s = 3;
    p.h = 24;
    p.w = 24;
    const MachineSpec m = tinyTestMachine();

    Rng rng(77);
    std::vector<double> model_l3, sim_l3, model_l1, sim_l1;
    for (int i = 0; i < 12; ++i) {
        ExecConfig cfg;
        cfg.perm[LvlReg] = microkernelPermutation();
        cfg.tiles[LvlReg] = {1, 8, 1, 1, 1, 1, 6};
        for (int l = LvlL1; l <= LvlL3; ++l)
            cfg.perm[static_cast<std::size_t>(l)] =
                Permutation::parse("kcrsnhw");
        // Random nested tiles.
        const IntTileVec extents = problemExtents(p);
        for (int d = 0; d < NumDims; ++d) {
            const auto sd = static_cast<std::size_t>(d);
            std::array<std::int64_t, 3> t;
            for (auto &x : t)
                x = rng.uniformInt(cfg.tiles[LvlReg][sd], extents[sd]);
            std::sort(t.begin(), t.end());
            cfg.tiles[LvlL1][sd] = t[0];
            cfg.tiles[LvlL2][sd] = t[1];
            cfg.tiles[LvlL3][sd] = t[2];
        }
        const CostBreakdown cb = evalMultiLevel(cfg, p, m, false);
        const TraceStats ts = simulateConvTrace(p, cfg, m);
        model_l3.push_back(cb.volume_words[LvlL3]);
        sim_l3.push_back(static_cast<double>(ts.level_words[2]));
        model_l1.push_back(cb.volume_words[LvlL1]);
        sim_l1.push_back(static_cast<double>(ts.level_words[0]));
    }
    EXPECT_GT(spearman(model_l3, sim_l3), 0.5);
    EXPECT_GT(spearman(model_l1, sim_l1), 0.4);
}

/**
 * When the whole problem fits in a cache level, simulated traffic at
 * that boundary collapses to the compulsory footprint.
 */
TEST(ConvTrace, CompulsoryTrafficWhenProblemFits)
{
    ConvProblem p;
    p.name = "fits";
    p.n = 1;
    p.k = 8;
    p.c = 2;
    p.r = 3;
    p.s = 3;
    p.h = 6;
    p.w = 6;
    const MachineSpec m = tinyTestMachine(); // L3 = 16K words

    ExecConfig cfg;
    cfg.perm[LvlReg] = microkernelPermutation();
    cfg.tiles[LvlReg] = {1, 8, 1, 1, 1, 1, 6};
    for (int l = LvlL1; l <= LvlL3; ++l) {
        cfg.perm[static_cast<std::size_t>(l)] =
            Permutation::parse("kcrsnhw");
        cfg.tiles[static_cast<std::size_t>(l)] = problemExtents(p);
    }
    cfg.tiles[LvlL1] = {1, 8, 2, 3, 3, 2, 6};

    const TraceStats ts = simulateConvTrace(p, cfg, m);
    // Total distinct words: In + Ker + Out; plus Out writebacks.
    const std::int64_t compulsory =
        p.inSize() + p.kerSize() + p.outSize();
    EXPECT_EQ(ts.traffic[2].misses, compulsory);
    EXPECT_EQ(ts.traffic[2].writebacks, p.outSize());
}

} // namespace
} // namespace mopt
