#!/usr/bin/env bash
# Guard against architecture-doc rot: fail when docs/ARCHITECTURE.md
# references a src/ subdirectory that no longer exists in the tree, or
# when a src/ subdirectory is missing from the doc entirely.
#
# Usage: tools/check_docs.sh   (run from anywhere; CI runs it per PR)
set -euo pipefail

# Run from the repo root regardless of the caller's cwd, so CI steps
# and local invocations cannot diverge.
repo=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo"
doc=docs/ARCHITECTURE.md

if [[ ! -f $doc ]]; then
    echo "error: $repo/$doc is missing" >&2
    exit 1
fi

status=0

# Every src/<dir> mentioned in the doc must exist.
while IFS= read -r ref; do
    if [[ ! -d $ref ]]; then
        echo "error: docs/ARCHITECTURE.md references $ref," \
             "which does not exist" >&2
        status=1
    fi
done < <(grep -oE 'src/[a-z_]+' "$doc" | sort -u)

# Every src/<dir> in the tree must be mentioned in the doc.
for dir in src/*/; do
    name=$(basename "$dir")
    if ! grep -q "src/$name" "$doc"; then
        echo "error: src/$name is not documented in" \
             "docs/ARCHITECTURE.md" >&2
        status=1
    fi
done

if [[ $status -eq 0 ]]; then
    echo "docs/ARCHITECTURE.md is in sync with src/"
fi
exit "$status"
