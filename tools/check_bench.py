#!/usr/bin/env python3
"""Gate search-time regressions against a recorded baseline.

Usage:
    tools/check_bench.py CURRENT.json BASELINE.json \
        [--metric "MOpt search (s)"] [--max-regress 0.25] \
        [--min-seconds 0.1]

Both files are BENCH_*.json documents as produced by bench_to_json:
tables of rows keyed by "Layer". Rows present in both files are
compared on --metric.

Two-level policy, because CI runners are noisy and absolute wall
times vary with the host:

  * per-layer: a layer slower than baseline * (1 + max-regress) AND
    slower by more than min-seconds is flagged;
  * gate: fail (exit 1) when the geometric mean of the per-layer
    ratios exceeds (1 + max-regress) and at least one layer is
    flagged. A uniform slowdown across every layer is a real
    regression; a single noisy layer on a busy runner is not, and
    neither is a sub-min-seconds wobble on a suite whose absolute
    times are tiny.

Exit status: 0 = within budget, 1 = regression, 2 = bad input.
"""

import argparse
import json
import math
import sys


def load_rows(path):
    """Map Layer -> row for every table row in a BENCH_*.json file."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    rows = {}
    for table in doc.get("tables", []):
        for row in table.get("rows", []):
            layer = row.get("Layer")
            if layer is not None:
                rows[str(layer)] = row
    if not rows:
        sys.exit(f"error: no Layer-keyed table rows in {path}")
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="freshly measured BENCH_*.json")
    ap.add_argument("baseline", help="recorded baseline BENCH_*.json")
    ap.add_argument("--metric", default="MOpt search (s)",
                    help="row field to compare (default: %(default)s)")
    ap.add_argument("--max-regress", type=float, default=0.25,
                    help="allowed fractional slowdown (default: 0.25)")
    ap.add_argument("--min-seconds", type=float, default=0.1,
                    help="absolute per-layer slack before a layer is "
                         "flagged (default: 0.1)")
    args = ap.parse_args()

    current = load_rows(args.current)
    baseline = load_rows(args.baseline)

    shared = sorted(set(current) & set(baseline))
    if not shared:
        sys.exit("error: current and baseline share no layers")

    ratios = []
    flagged = []
    print(f"{'Layer':<8} {'baseline':>10} {'current':>10} {'ratio':>7}")
    for layer in shared:
        try:
            base = float(baseline[layer][args.metric])
            cur = float(current[layer][args.metric])
        except (KeyError, TypeError, ValueError):
            sys.exit(f"error: layer {layer} lacks metric "
                     f"{args.metric!r} in one of the files")
        if base <= 0 or cur <= 0:
            sys.exit(f"error: non-positive {args.metric!r} for {layer}")
        ratio = cur / base
        ratios.append(ratio)
        mark = ""
        if (ratio > 1 + args.max_regress
                and cur - base > args.min_seconds):
            flagged.append(layer)
            mark = "  <-- slower"
        print(f"{layer:<8} {base:>10.3f} {cur:>10.3f} {ratio:>7.2f}"
              f"{mark}")

    geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    budget = 1 + args.max_regress
    print(f"\ngeomean ratio {geo:.3f} (budget {budget:.2f}) over "
          f"{len(shared)} layer(s)")
    for layer in flagged:
        print(f"warning: {layer} regressed beyond the per-layer budget")

    if geo > budget and flagged:
        print(f"FAIL: {args.metric!r} regressed by "
              f"{100 * (geo - 1):.0f}% on geomean "
              f"(budget {100 * args.max_regress:.0f}%)")
        return 1
    print("OK: within regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
