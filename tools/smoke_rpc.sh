#!/usr/bin/env bash
# End-to-end smoke test of the moptd serving stack: start `mopt serve`,
# query it cold and warm, and assert
#   1. the served plan is byte-identical to a local `mopt network` run,
#   2. warm queries report a 100% cache hit rate,
#   3. the shard router falls back to a local solve (and still returns
#      the identical plan) when one fleet node is down,
#   4. stats + shutdown RPCs work,
#   5. concurrent cold clients querying the same net coalesce through
#      the single-flight scheduler: exactly `unique_shapes` solver
#      invocations fleet-wide, every plan still byte-identical,
#   6. a darknet .cfg network (inline-IR payload, batch 4, grouped +
#      depthwise layers) solves cold, replays warm at 100% hits, and
#      both plans are byte-identical to a local `mopt network` solve,
#   7. chaos: a journal-backed server is killed with SIGKILL while a
#      retrying client is mid-traffic, then restarted on the same
#      port; the client rides its retries through the outage, the
#      reloaded journal serves 100% hits, the plan is byte-identical,
#      and --stats against a dead node fails fast instead of wedging,
#   8. replication: in a two-node fleet where A replicates to B, a
#      cold solve on A is pushed to B asynchronously — a --no-fallback
#      query against B must serve 100% hits with a byte-identical
#      plan; after B is SIGKILLed and restarted with a FRESH journal,
#      the join-time prefetch from A must restore it to 100% warm.
#
# Usage: tools/smoke_rpc.sh [BUILD_DIR]   (default: build)
#
# Artifacts (plans, logs) land in BUILD_DIR/rpc_smoke/; the server log
# is dumped on any failure so CI runs are debuggable post mortem.
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo"

build_dir=${1:-build}
mopt=$build_dir/tools/mopt
if [[ ! -x $mopt ]]; then
    echo "error: $mopt not found; build first:" >&2
    echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j --target mopt_cli" >&2
    exit 1
fi

work=$build_dir/rpc_smoke
rm -rf "$work"
mkdir -p "$work"

common_args=(--machine i7 --effort fast)
server_pid=""
server2_pid=""
server3_pid=""
serverA_pid=""
serverB_pid=""
fleet0_pid=""
fleet1_pid=""
fleet2_pid=""
failed=1

cleanup() {
    if [[ $failed -ne 0 ]]; then
        for log in "$work/server.log" "$work/server2.log" \
                   "$work/server3.log" "$work/server3b.log" \
                   "$work/serverA.log" "$work/serverB.log" \
                   "$work/serverB2.log" "$work/fleet0.log" \
                   "$work/fleet1.log" "$work/fleet2.log" \
                   "$work/fleet_restart.log"; do
            [[ -f $log ]] || continue
            echo "==== smoke_rpc FAILED; $log follows ====" >&2
            cat "$log" >&2 || true
            echo "==== end of $log ====" >&2
        done
    fi
    for pid in "$server_pid" "$server2_pid" "$server3_pid" \
               "$serverA_pid" "$serverB_pid" "$fleet0_pid" \
               "$fleet1_pid" "$fleet2_pid"; do
        if [[ -n $pid ]] && kill -0 "$pid" 2>/dev/null; then
            kill "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
}
trap cleanup EXIT

# Wait for "moptd: listening on host:PORT" in $1 (the server's log,
# owned by pid $2) and print the port.
wait_for_port() {
    local log=$1 pid=$2 port=""
    for _ in $(seq 1 100); do
        port=$(sed -n 's/^moptd: listening on .*:\([0-9]*\)$/\1/p' \
            "$log" 2>/dev/null | head -1)
        [[ -n $port ]] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "error: server exited before listening" >&2
            return 1
        fi
        sleep 0.1
    done
    if [[ -z $port ]]; then
        echo "error: server never reported its port" >&2
        return 1
    fi
    echo "$port"
}

echo "== local reference plan =="
"$mopt" network --net resnet18 "${common_args[@]}" \
    --plan-out "$work/local.txt" > "$work/local.out"

echo "== starting moptd (ephemeral port) =="
"$mopt" serve --port 0 "${common_args[@]}" \
    --cache "$work/cache.json" > "$work/server.log" 2>&1 &
server_pid=$!

port=$(wait_for_port "$work/server.log" "$server_pid")
echo "   moptd is listening on port $port"

echo "== cold query (expect 0% hit rate, all shapes solved) =="
"$mopt" query --connect "127.0.0.1:$port" --net resnet18 \
    "${common_args[@]}" --plan-out "$work/cold.txt" \
    | tee "$work/cold.out"
grep -q "hit rate 0.0%" "$work/cold.out" || {
    echo "error: cold query did not report a 0.0% hit rate" >&2
    exit 1
}

echo "== warm query (expect 100% hit rate) =="
"$mopt" query --connect "127.0.0.1:$port" --net resnet18 \
    "${common_args[@]}" --plan-out "$work/warm.txt" \
    | tee "$work/warm.out"
grep -q "hit rate 100.0%" "$work/warm.out" || {
    echo "error: warm query did not report a 100.0% hit rate" >&2
    exit 1
}

echo "== byte-identical plans: local vs cold vs warm =="
cmp "$work/local.txt" "$work/cold.txt"
cmp "$work/local.txt" "$work/warm.txt"
echo "   identical"

echo "== .cfg ingest: tiny.cfg at batch 4, cold then warm =="
# The .cfg travels to the server as an inline-IR payload (the server
# has no filesystem view of the client's config). Its grouped and
# depthwise layers are new cache keys, so the first query is cold even
# on the warmed-up server.
cfg=tests/data/tiny.cfg
"$mopt" network --net "$cfg" --batch 4 "${common_args[@]}" \
    --plan-out "$work/cfg_local.txt" > "$work/cfg_local.out" 2>&1
"$mopt" query --connect "127.0.0.1:$port" --net "$cfg" --batch 4 \
    "${common_args[@]}" --plan-out "$work/cfg_cold.txt" \
    2>/dev/null | tee "$work/cfg_cold.out"
grep -q "hit rate 0.0%" "$work/cfg_cold.out" || {
    echo "error: cold .cfg query did not report a 0.0% hit rate" >&2
    exit 1
}
"$mopt" query --connect "127.0.0.1:$port" --net "$cfg" --batch 4 \
    "${common_args[@]}" --plan-out "$work/cfg_warm.txt" \
    2>/dev/null | tee "$work/cfg_warm.out"
grep -q "hit rate 100.0%" "$work/cfg_warm.out" || {
    echo "error: warm .cfg query did not report a 100.0% hit rate" >&2
    exit 1
}
cmp "$work/cfg_local.txt" "$work/cfg_cold.txt"
cmp "$work/cfg_local.txt" "$work/cfg_warm.txt"
echo "   .cfg plans identical (local vs served, cold vs warm)"

echo "== degraded fleet: one dead node, expect local fallback =="
# 127.0.0.1:1 is refused immediately on any sane host; shapes whose
# keys hash to that node must be solved locally, and the assembled
# plan must still match the reference byte for byte.
"$mopt" query --connect "127.0.0.1:1,127.0.0.1:$port" --net resnet18 \
    "${common_args[@]}" --plan-out "$work/degraded.txt" \
    > "$work/degraded.out" 2>&1
grep -q "solved locally (node down)" "$work/degraded.out" || {
    echo "error: degraded query did not report a local fallback" >&2
    cat "$work/degraded.out" >&2
    exit 1
}
cmp "$work/local.txt" "$work/degraded.txt"
echo "   fallback taken, plan still identical"

echo "== stats RPC =="
"$mopt" query --connect "127.0.0.1:$port" --stats | tee "$work/stats.out"
grep -q "entries in" "$work/stats.out"
grep -q "scheduler" "$work/stats.out" || {
    echo "error: stats did not report scheduler counters" >&2
    exit 1
}

echo "== shutdown RPC =="
"$mopt" query --connect "127.0.0.1:$port" --shutdown
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "error: server still running after shutdown RPC" >&2
    exit 1
fi
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "== concurrent cold clients: single-flight dedupe =="
# A fresh (cold) server with a concurrent solve budget; four parallel
# clients all ask for the same net at once. The single-flight
# scheduler must run each unique shape's solve exactly once
# fleet-wide, and every client must still get the byte-identical plan.
unique=$(sed -n 's/^Layers: .*(\([0-9]*\) unique shapes)$/\1/p' \
    "$work/cold.out" | head -1)
if [[ -z $unique ]]; then
    echo "error: could not parse unique-shape count from cold query" >&2
    exit 1
fi
"$mopt" serve --port 0 --solve-concurrency 2 "${common_args[@]}" \
    --cache "$work/cache2.json" > "$work/server2.log" 2>&1 &
server2_pid=$!
port2=$(wait_for_port "$work/server2.log" "$server2_pid")
echo "   cold moptd (budget 2) is listening on port $port2"

conc_pids=()
for i in 1 2 3 4; do
    "$mopt" query --connect "127.0.0.1:$port2" --net resnet18 \
        "${common_args[@]}" --plan-out "$work/conc$i.txt" \
        > "$work/conc$i.out" 2>&1 &
    conc_pids+=($!)
done
for pid in "${conc_pids[@]}"; do
    wait "$pid" || {
        echo "error: a concurrent cold query failed" >&2
        cat "$work"/conc*.out >&2
        exit 1
    }
done
for i in 1 2 3 4; do
    cmp "$work/local.txt" "$work/conc$i.txt"
done
echo "   4 concurrent cold plans identical to the local reference"

"$mopt" query --connect "127.0.0.1:$port2" --stats \
    | tee "$work/stats2.out"
grep -q "scheduler $unique solves" "$work/stats2.out" || {
    echo "error: expected exactly $unique solver invocations" \
         "fleet-wide across the concurrent cold clients" >&2
    exit 1
}
grep -q "; $unique inserts," "$work/stats2.out" || {
    echo "error: expected exactly $unique cache inserts fleet-wide" >&2
    exit 1
}
"$mopt" query --connect "127.0.0.1:$port2" --shutdown
wait "$server2_pid" 2>/dev/null || true
server2_pid=""

echo "== chaos: SIGKILL mid-traffic + journal-backed restart =="
# A journal-backed server is warmed, then killed -9 — the hardest
# crash there is, mid-compaction fsyncs and all. A client with
# retries enabled starts while the server is DEAD; the server is
# restarted on the same port moments later. The client's backoff
# must carry it through the outage, the restarted server must reload
# every journal entry (100% hits — zero lost to the crash), and the
# plan must still match the reference byte for byte.
"$mopt" serve --port 0 "${common_args[@]}" \
    --cache "$work/cache3.json" > "$work/server3.log" 2>&1 &
server3_pid=$!
port3=$(wait_for_port "$work/server3.log" "$server3_pid")
echo "   chaos moptd is listening on port $port3"

"$mopt" query --connect "127.0.0.1:$port3" --net resnet18 \
    "${common_args[@]}" > "$work/chaos_cold.out" 2>&1

kill -9 "$server3_pid" 2>/dev/null
wait "$server3_pid" 2>/dev/null || true
server3_pid=""
echo "   killed -9; launching client against the dead port"

"$mopt" query --connect "127.0.0.1:$port3" --net resnet18 \
    "${common_args[@]}" --retries 8 --deadline-ms 5000 \
    --plan-out "$work/chaos_warm.txt" > "$work/chaos_warm.out" 2>&1 &
client_pid=$!

sleep 0.5
"$mopt" serve --port "$port3" "${common_args[@]}" \
    --cache "$work/cache3.json" > "$work/server3b.log" 2>&1 &
server3_pid=$!
wait_for_port "$work/server3b.log" "$server3_pid" > /dev/null
echo "   restarted on port $port3 with the same journal"

wait "$client_pid" || {
    echo "error: retrying client did not survive the restart" >&2
    cat "$work/chaos_warm.out" >&2
    exit 1
}
grep -q "hit rate 100.0%" "$work/chaos_warm.out" || {
    echo "error: restarted server lost journal entries" \
         "(expected a 100.0% hit rate)" >&2
    cat "$work/chaos_warm.out" >&2
    exit 1
}
grep -q "Recovery: " "$work/chaos_warm.out" || {
    echo "error: client did not report any retries; the outage" \
         "was never exercised" >&2
    cat "$work/chaos_warm.out" >&2
    exit 1
}
cmp "$work/local.txt" "$work/chaos_warm.txt"
echo "   client rode out the crash; journal intact, plan identical"

"$mopt" query --connect "127.0.0.1:$port3" --shutdown
wait "$server3_pid" 2>/dev/null || true
server3_pid=""

echo "== stats against a dead node fails fast (no wedge) =="
if "$mopt" query --connect "127.0.0.1:$port3" --stats \
    > "$work/deadstats.out" 2>&1; then
    echo "error: --stats against a dead node exited 0" >&2
    exit 1
fi
grep -q "unreachable" "$work/deadstats.out" || {
    echo "error: --stats did not report the node unreachable" >&2
    cat "$work/deadstats.out" >&2
    exit 1
}

echo "== replication: two-node fleet, warm-entry push =="
# Node B first (it must be listening before A can push to it), then
# node A replicating to B. A cold solve on A is pushed to B
# asynchronously; --no-fallback on the B query proves every answer
# came out of B's own cache rather than a client-side local solve.
"$mopt" serve --port 0 "${common_args[@]}" \
    --cache "$work/cacheB.json" > "$work/serverB.log" 2>&1 &
serverB_pid=$!
portB=$(wait_for_port "$work/serverB.log" "$serverB_pid")

"$mopt" serve --port 0 --replicate "127.0.0.1:$portB" \
    "${common_args[@]}" --cache "$work/cacheA.json" \
    > "$work/serverA.log" 2>&1 &
serverA_pid=$!
portA=$(wait_for_port "$work/serverA.log" "$serverA_pid")
echo "   node B on port $portB, node A on port $portA (A -> B)"

"$mopt" query --connect "127.0.0.1:$portA" --net resnet18 \
    "${common_args[@]}" > "$work/repl_cold.out" 2>&1
grep -q "hit rate 0.0%" "$work/repl_cold.out" || {
    echo "error: replication cold query was not actually cold" >&2
    exit 1
}

# The push runs on a background thread; poll B's stats until every
# record has been applied (bounded wait, then hard failure).
for _ in $(seq 1 100); do
    "$mopt" query --connect "127.0.0.1:$portB" --stats \
        > "$work/repl_statsB.out" 2>&1 || true
    grep -q "; $unique inserts," "$work/repl_statsB.out" && break
    sleep 0.1
done
grep -q "; $unique inserts," "$work/repl_statsB.out" || {
    echo "error: node B never absorbed the $unique replicated" \
         "records" >&2
    cat "$work/repl_statsB.out" >&2
    exit 1
}
grep -q "replication 0 pushed / 0 push failures / $unique applied" \
    "$work/repl_statsB.out" || {
    echo "error: node B's stats did not report $unique applied" \
         "replication records" >&2
    cat "$work/repl_statsB.out" >&2
    exit 1
}

"$mopt" query --connect "127.0.0.1:$portB" --no-fallback \
    --net resnet18 "${common_args[@]}" \
    --plan-out "$work/replB.txt" > "$work/replB.out" 2>&1
grep -q "hit rate 100.0%" "$work/replB.out" || {
    echo "error: replicated node B did not serve 100% hits" >&2
    cat "$work/replB.out" >&2
    exit 1
}
cmp "$work/local.txt" "$work/replB.txt"
echo "   B warm via replication push, plan identical"

echo "== replication: SIGKILL B, fresh journal, join-time prefetch =="
# B is killed -9 and restarted on the same port with a *fresh*
# journal, so any warmth it regains can only come from the join-time
# prefetch against A — not from a journal reload.
kill -9 "$serverB_pid" 2>/dev/null
wait "$serverB_pid" 2>/dev/null || true
serverB_pid=""

"$mopt" serve --port "$portB" --replicate "127.0.0.1:$portA" \
    "${common_args[@]}" --cache "$work/cacheB2.json" \
    > "$work/serverB2.log" 2>&1 &
serverB_pid=$!
wait_for_port "$work/serverB2.log" "$serverB_pid" > /dev/null
grep -q "replicating to 127.0.0.1:$portA ($unique entries prefetched)" \
    "$work/serverB2.log" || {
    echo "error: restarted node B did not prefetch $unique entries" \
         "from A at join" >&2
    cat "$work/serverB2.log" >&2
    exit 1
}

"$mopt" query --connect "127.0.0.1:$portB" --no-fallback \
    --net resnet18 "${common_args[@]}" \
    --plan-out "$work/replB2.txt" > "$work/replB2.out" 2>&1
grep -q "hit rate 100.0%" "$work/replB2.out" || {
    echo "error: restarted node B (fresh journal) did not converge" \
         "to 100% hits via prefetch" >&2
    cat "$work/replB2.out" >&2
    exit 1
}
cmp "$work/local.txt" "$work/replB2.txt"
echo "   B reborn warm from prefetch alone, plan identical"

"$mopt" query --connect "127.0.0.1:$portB" --shutdown
wait "$serverB_pid" 2>/dev/null || true
serverB_pid=""
"$mopt" query --connect "127.0.0.1:$portA" --shutdown
wait "$serverA_pid" 2>/dev/null || true
serverA_pid=""

echo "== fleet: 3 nodes at factor 2, SIGKILL the hot owner =="
# Three journal-backed nodes on fixed ports (reserved by a throwaway
# ephemeral bind each — SO_REUSEADDR makes the re-bind safe), each
# naming the other two as replication peers in ring order, at
# --replication-factor 2: every key lives on its owner and one
# follower only.
reserve_port() {
    local tag=$1 pid port
    "$mopt" serve --port 0 "${common_args[@]}" \
        > "$work/reserve_$tag.log" 2>&1 &
    pid=$!
    port=$(wait_for_port "$work/reserve_$tag.log" "$pid")
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    echo "$port"
}
fport=()
fport[0]=$(reserve_port f0)
fport[1]=$(reserve_port f1)
fport[2]=$(reserve_port f2)
fleet_all="127.0.0.1:${fport[0]},127.0.0.1:${fport[1]},127.0.0.1:${fport[2]}"

fleet_peers() { # peers of node $1, ring order with self removed
    local i=$1 out="" j
    for j in 0 1 2; do
        [[ $j -eq $i ]] && continue
        out+="${out:+,}127.0.0.1:${fport[j]}"
    done
    echo "$out"
}
start_fleet_node() { # $1 = index, $2 = log file
    "$mopt" serve --port "${fport[$1]}" --replicate "$(fleet_peers "$1")" \
        --replication-factor 2 --fleet-index "$1" "${common_args[@]}" \
        --cache "$work/fleet$1.json" > "$2" 2>&1 &
}
start_fleet_node 0 "$work/fleet0.log"; fleet0_pid=$!
start_fleet_node 1 "$work/fleet1.log"; fleet1_pid=$!
start_fleet_node 2 "$work/fleet2.log"; fleet2_pid=$!
wait_for_port "$work/fleet0.log" "$fleet0_pid" > /dev/null
wait_for_port "$work/fleet1.log" "$fleet1_pid" > /dev/null
wait_for_port "$work/fleet2.log" "$fleet2_pid" > /dev/null
echo "   fleet up on ports ${fport[0]}/${fport[1]}/${fport[2]}"

"$mopt" query --connect "$fleet_all" --net resnet18 \
    "${common_args[@]}" --plan-out "$work/fleet_cold.txt" \
    > "$work/fleet_cold.out" 2>&1
grep -q "hit rate 0.0%" "$work/fleet_cold.out" || {
    echo "error: fleet cold query was not actually cold" >&2
    cat "$work/fleet_cold.out" >&2
    exit 1
}
cmp "$work/local.txt" "$work/fleet_cold.txt"

# Shard-aware push: each key is inserted on its owner and replicated
# to exactly one follower — fleet-wide inserts converge to 2x unique.
node_inserts() {
    "$mopt" query --connect "127.0.0.1:${fport[$1]}" --stats \
        2>/dev/null | sed -n 's/^.*; \([0-9]*\) inserts,.*$/\1/p' \
        | head -1
}
want=$((2 * unique))
total=0
for _ in $(seq 1 150); do
    total=0
    for i in 0 1 2; do
        n=$(node_inserts "$i")
        total=$((total + ${n:-0}))
    done
    [[ $total -eq $want ]] && break
    sleep 0.1
done
[[ $total -eq $want ]] || {
    echo "error: expected $want fleet-wide inserts (factor 2)," \
         "saw $total" >&2
    exit 1
}
echo "   every key on exactly 2 of 3 nodes ($total inserts)"

# The hot owner: the node holding the most entries. Kill it -9.
victim=0
victim_entries=-1
for i in 0 1 2; do
    n=$("$mopt" query --connect "127.0.0.1:${fport[$i]}" --stats \
        2>/dev/null | grep -o "[0-9]* entries in" | head -1 \
        | cut -d' ' -f1)
    if [[ ${n:-0} -gt $victim_entries ]]; then
        victim=$i
        victim_entries=${n:-0}
    fi
done
victim_pid_var="fleet${victim}_pid"
kill -9 "${!victim_pid_var}" 2>/dev/null
wait "${!victim_pid_var}" 2>/dev/null || true
printf -v "$victim_pid_var" ""
echo "   killed -9 node $victim ($victim_entries entries)"

# Followers must serve the victim's keys warm under --no-fallback:
# the replicas are on the ring successors, and the router's failover
# walks exactly that ring.
"$mopt" query --connect "$fleet_all" --no-fallback --retries 4 \
    --net resnet18 "${common_args[@]}" \
    --plan-out "$work/fleet_warm.txt" > "$work/fleet_warm.out" 2>&1
grep -q "hit rate 100.0%" "$work/fleet_warm.out" || {
    echo "error: fleet did not serve 100% warm with node $victim" \
         "dead under --no-fallback" >&2
    cat "$work/fleet_warm.out" >&2
    exit 1
}
cmp "$work/local.txt" "$work/fleet_warm.txt"
echo "   followers served the dead owner's keys warm, plan identical"

echo "== fleet: restart the victim, expect a delta prefetch =="
# The victim comes back with its OLD journal: its high-water sequence
# survived, so the join prefetch must be a since-cursor delta, not a
# full transfer.
"$mopt" serve --port "${fport[$victim]}" \
    --replicate "$(fleet_peers "$victim")" --replication-factor 2 \
    --fleet-index "$victim" "${common_args[@]}" \
    --cache "$work/fleet$victim.json" > "$work/fleet_restart.log" 2>&1 &
printf -v "$victim_pid_var" "%s" "$!"
wait_for_port "$work/fleet_restart.log" "${!victim_pid_var}" > /dev/null
grep -q "entries prefetched, since=[1-9]" "$work/fleet_restart.log" || {
    echo "error: restarted node $victim did not report a since-cursor" \
         "delta prefetch" >&2
    cat "$work/fleet_restart.log" >&2
    exit 1
}
echo "   node $victim rejoined via delta prefetch:" \
    "$(grep -o 'replicating to .*' "$work/fleet_restart.log" | head -1)"

"$mopt" query --connect "$fleet_all" --no-fallback --retries 4 \
    --net resnet18 "${common_args[@]}" \
    --plan-out "$work/fleet_rejoin.txt" > "$work/fleet_rejoin.out" 2>&1
grep -q "hit rate 100.0%" "$work/fleet_rejoin.out" || {
    echo "error: rejoined fleet did not serve 100% warm" >&2
    cat "$work/fleet_rejoin.out" >&2
    exit 1
}
cmp "$work/local.txt" "$work/fleet_rejoin.txt"
echo "   rejoined fleet fully warm, plan identical"

for i in 0 1 2; do
    "$mopt" query --connect "127.0.0.1:${fport[$i]}" --shutdown \
        > /dev/null 2>&1 || true
done
for v in fleet0_pid fleet1_pid fleet2_pid; do
    [[ -n ${!v} ]] && wait "${!v}" 2>/dev/null || true
    printf -v "$v" ""
done

failed=0
echo "smoke_rpc: PASS"
