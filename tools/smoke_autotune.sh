#!/usr/bin/env bash
# End-to-end smoke test of the measured-optimal loop: run
# `mopt autotune` on a tiny problem and assert
#   1. two plans are measured (emit -> compile -> run, with the loud
#      in-process fallback when no C compiler is available) and two
#      samples land in both the calibration journal and the
#      --samples-out dump, every line carrying a measured time,
#   2. a re-solve with --calibration loads those samples and reports
#      the fitted correction (the consultation path, not just the
#      file's existence),
#   3. an identity correction (empty journal) leaves the solved plan
#      byte-identical to an uncalibrated run,
#   4. a second autotune run appends to the same journal, and the next
#      re-solve sees all four samples (journal reload, not rewrite).
#
# Usage: tools/smoke_autotune.sh [BUILD_DIR]   (default: build)
#
# Artifacts land in BUILD_DIR/autotune_smoke/ for post-mortem upload.
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo"

build_dir=${1:-build}
mopt=$build_dir/tools/mopt
if [[ ! -x $mopt ]]; then
    echo "error: $mopt not found; build first:" >&2
    echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j --target mopt_cli" >&2
    exit 1
fi

work=$build_dir/autotune_smoke
rm -rf "$work"
mkdir -p "$work"

# A one-conv network matching the autotuned shape, so the calibrated
# re-solve predicts exactly the layer that was measured.
cat > "$work/one.cfg" <<'EOF'
[net]
width=10
height=10
channels=16

[convolutional]
filters=16
size=3
stride=1
pad=1
EOF

common=(--machine tiny --effort fast)

echo "== autotune: tiny problem, 2 plans =="
"$mopt" autotune --k=16 --c=16 --image=10 --rs=3 "${common[@]}" \
    --top-k 2 --reps 1 --warmups 0 \
    --calibration "$work/calib.json" \
    --samples-out "$work/samples.json" \
    --work-dir "$work/artifacts" \
    | tee "$work/autotune.out"
grep -q "Wrote 2 sample(s) to" "$work/autotune.out" || {
    echo "error: autotune did not report 2 journal appends" >&2
    exit 1
}
grep -q "^Calibration: " "$work/autotune.out" || {
    echo "error: autotune did not report a fitted calibration" >&2
    exit 1
}

echo "== calibration journal + samples dump hold 2 samples each =="
for f in "$work/calib.json" "$work/samples.json"; do
    [[ -s $f ]] || { echo "error: $f missing or empty" >&2; exit 1; }
    lines=$(wc -l < "$f")
    if [[ $lines -ne 2 ]]; then
        echo "error: expected 2 sample lines in $f, got $lines" >&2
        exit 1
    fi
    if [[ $(grep -c '"measured_s":' "$f") -ne 2 ]]; then
        echo "error: $f has lines without a measured time" >&2
        exit 1
    fi
done
echo "   2 samples journaled and dumped"

echo "== re-solve consults the calibration =="
"$mopt" network --net "$work/one.cfg" "${common[@]}" \
    --calibration "$work/calib.json" \
    --plan-out "$work/plan_cal.txt" | tee "$work/network_cal.out"
grep -q "(2 samples loaded):" "$work/network_cal.out" || {
    echo "error: re-solve did not load the 2 journaled samples" >&2
    exit 1
}

echo "== identity correction leaves the plan byte-identical =="
"$mopt" network --net "$work/one.cfg" "${common[@]}" \
    --plan-out "$work/plan_base.txt" > "$work/network_base.out"
: > "$work/empty.json"
"$mopt" network --net "$work/one.cfg" "${common[@]}" \
    --calibration "$work/empty.json" \
    --plan-out "$work/plan_ident.txt" | tee "$work/network_ident.out"
grep -q "(0 samples loaded):" "$work/network_ident.out" || {
    echo "error: empty journal did not report 0 samples loaded" >&2
    exit 1
}
cmp "$work/plan_base.txt" "$work/plan_ident.txt"
echo "   identical"

echo "== second run appends; re-solve sees all 4 samples =="
"$mopt" autotune --k=16 --c=16 --image=10 --rs=3 "${common[@]}" \
    --top-k 2 --reps 1 --warmups 0 \
    --calibration "$work/calib.json" > "$work/autotune2.out"
grep -q "Wrote 2 sample(s) to" "$work/autotune2.out" || {
    echo "error: second autotune run did not append 2 samples" >&2
    exit 1
}
"$mopt" network --net "$work/one.cfg" "${common[@]}" \
    --calibration "$work/calib.json" \
    --plan-out /dev/null | tee "$work/network_cal2.out"
grep -q "(4 samples loaded):" "$work/network_cal2.out" || {
    echo "error: journal reload did not surface all 4 samples" >&2
    exit 1
}

echo "smoke_autotune: PASS"
