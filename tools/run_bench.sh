#!/usr/bin/env bash
# Run bench harnesses and convert each one's output into BENCH_<name>.json
# for the perf trajectory.
#
# Usage:
#   tools/run_bench.sh [-b BUILD_DIR] [-o OUT_DIR] [bench_name...]
#
#   -b BUILD_DIR   CMake build tree containing bench/ (default: build)
#   -o OUT_DIR     where BENCH_*.json land (default: BUILD_DIR/bench_results)
#   bench_name...  specific harnesses (e.g. bench_pruning); default: all
#
# Environment: MOPT_BENCH_FULL=1 restores paper-scale parameters.
#
# Runs from any cwd: relative -b/-o paths resolve against the repo
# root, so CI steps and local invocations cannot diverge.
set -euo pipefail

repo=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo"

build_dir=build
out_dir=""
while getopts "b:o:h" opt; do
    case "$opt" in
    b) build_dir=$OPTARG ;;
    o) out_dir=$OPTARG ;;
    h)
        sed -n '2,12p' "$0" | sed 's/^# \{0,1\}//'
        exit 0
        ;;
    *)
        sed -n '2,12p' "$0" | sed 's/^# \{0,1\}//' >&2
        exit 2
        ;;
    esac
done
shift $((OPTIND - 1))

bench_dir=$build_dir/bench
to_json=$bench_dir/bench_to_json
if [[ ! -x $to_json ]]; then
    echo "error: $to_json not found; build first:" >&2
    echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
    exit 1
fi
out_dir=${out_dir:-$build_dir/bench_results}
mkdir -p "$out_dir"

if [[ $# -gt 0 ]]; then
    benches=("$@")
else
    benches=()
    for exe in "$bench_dir"/bench_*; do
        base=$(basename "$exe")
        [[ -x $exe && $base != bench_to_json ]] && benches+=("$base")
    done
fi

failed=0
for bench in "${benches[@]}"; do
    exe=$bench_dir/$bench
    name=${bench#bench_}
    if [[ ! -x $exe ]]; then
        echo "error: $exe not found" >&2
        failed=1
        continue
    fi
    echo "== $bench =="
    log=$out_dir/$bench.log
    if ! "$exe" | tee "$log"; then
        echo "error: $bench failed" >&2
        failed=1
        continue
    fi
    "$to_json" --name="$name" --in="$log" --out="$out_dir/BENCH_$name.json"
    echo "-> $out_dir/BENCH_$name.json"
done
exit "$failed"
