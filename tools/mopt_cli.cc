/**
 * @file
 * The `mopt` command-line tool: the front door a downstream user would
 * actually drive. Takes a conv2d shape (by Table-1 layer name or
 * explicit dimensions), a machine preset, and produces the optimized
 * tiling — permutation class, tile sizes per level, parallel split,
 * predicted cost breakdown — and optionally standalone C source for
 * the tiled loop nest, a verification run against the reference, and
 * the baseline configurations for comparison.
 *
 * The `network` subcommand optimizes a whole network in one shot
 * through the service layer's NetworkOptimizer, deduplicating repeated
 * shapes and (with --cache) persisting solutions across runs.
 *
 * The `serve` subcommand runs the same service as a long-lived daemon
 * (moptd) speaking the line-delimited JSON protocol of src/rpc/; the
 * `query` subcommand is its client, routing across a fleet by stable
 * cache-key hash and falling back to a local solve when a node is
 * unreachable.
 *
 * Examples:
 *   mopt --layer=Y12 --machine=i7
 *   mopt --k=256 --c=128 --image=34 --rs=3 --stride=1 --machine=i9
 *   mopt --layer=R2 --emit-c=conv_r2.c
 *   mopt --layer=M5 --verify --compare
 *   mopt network --net=resnet18 --cache=mopt.cache.json
 *   mopt serve --port=7071 --cache=mopt.cache.json
 *   mopt query --connect=host1:7071,host2:7071 --net=resnet18
 *
 * The `autotune` subcommand closes the loop: it emits the top-k plans
 * of a solve, compiles and runs each on this host, records measured-
 * vs-predicted samples in a calibration journal, and fits the
 * per-machine correction that `--calibration` applies on later
 * `network`/`serve` runs.
 *
 *   mopt autotune --net=resnet18 --calibration=mopt.calib.json
 *   mopt network --net=resnet18 --calibration=mopt.calib.json
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "autotune/autotune.hh"
#include "baselines/autotuner.hh"
#include "baselines/heuristic_lib.hh"
#include "codegen/c_emitter.hh"
#include "rpc/client.hh"
#include "rpc/server.hh"
#include "common/flags.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/string_util.hh"
#include "common/table.hh"
#include "conv/reference.hh"
#include "conv/workloads.hh"
#include "exec/conv_exec.hh"
#include "frontend/registry.hh"
#include "machine/machine.hh"
#include "model/multi_level.hh"
#include "optimizer/mopt_optimizer.hh"
#include "service/network_optimizer.hh"
#include "service/solution_cache.hh"
#include "service/solve_scheduler.hh"
#include "tensor/tensor.hh"

namespace {

void
printUsage()
{
    std::cout <<
        R"(mopt: analytical tile-size optimizer for conv2d (ASPLOS'21 MOpt)

Problem selection (one of):
  --layer=<name>     Table-1 operator (Y0..Y23, R1..R12, M1..M9)
  --k= --c= --image= --rs= [--stride=1] [--dilation=1] [--batch=1]
  [--groups=1]       explicit shape (image = input H == W; groups must
                     divide k and c — groups=c is depthwise)

Options:
  --machine=i7|i9|tiny   machine preset (default i7)
  --sequential           optimize for one core (default: all cores)
  --effort=fast|standard|thorough   solver effort (default standard)
  --top-k=N              candidates to report (default 5)
  --emit-c=<path>        write standalone C source for the best config
  --verify               run the tiled executor vs the naive reference
  --compare              also print oneDNN-style baseline blocking
  --help                 this text

Network mode (optimize every conv layer of a whole network):
  mopt network --net=<name|file.cfg> [--batch=N] [options]
  --net=<name>           registered network (resnet18|vgg16|yolov3) or
                         a darknet-style .cfg file ([net]/[convolutional]
                         with filters/size/stride/pad/groups; unknown
                         sections are skipped loudly)
  --batch=N              batch size for every layer (default: the
                         .cfg's [net] batch, else 1)
  --cache=<path>         persistent solution cache (JSON journal);
                         repeated shapes and repeated runs hit it
  --cache-capacity=N     max cached solutions (default 4096)
  --plan-out=<path>      write the per-layer plan to a file
                         (deterministic; byte-identical cold vs warm)
  --solve-concurrency=N  solve up to N cold shapes at once, each on
                         1/N of the thread-pool width (default 1 =
                         serial; the plan is byte-identical either way)
  --calibration=<path>   apply the measured per-machine correction
                         fitted from this journal (see autotune mode);
                         an empty or identity journal changes nothing
  plus --machine, --sequential, --effort as above

Autotune mode (measure emitted plans, learn the machine correction):
  mopt autotune --net=<name|file.cfg> [--calibration=<path>] [options]
     (or --layer=<name> / explicit dims for a single shape)
  --top-k=N              candidates measured per unique shape (default 3)
  --reps=N --warmups=N   timed repetitions / discarded runs (3 / 1)
  --runner=emitted|exec  emitted: emit C, compile with --cc, run the
                         standalone binary (falls back to exec loudly);
                         exec: in-process tiled executor (default emitted)
  --cc=<compiler>        host C compiler for emitted plans (default cc)
  --calibration=<path>   durable sample journal (JSON lines); the fit
                         uses every stored sample for this machine
  --samples-out=<path>   write this run's samples as JSON lines
  plus --machine, --sequential, --effort as above — calibration is
  keyed by machine fingerprint, so solve settings must match

Serving mode (moptd: long-lived optimizer daemon + fleet client):
  mopt serve [--port=0] [--host=127.0.0.1] [--workers=4] [options]
                         answer solve/solve_network/stats/shutdown
                         requests (line-delimited JSON over TCP);
                         --cache/--cache-capacity, --calibration and
                         --solve-concurrency as in network mode
                         (concurrent duplicate requests always share
                         one solve via the single-flight scheduler)
    --max-pending=N      admission bound: refuse ("overloaded") past N
                         dispatched-and-unanswered requests (default
                         128; idle connections are free — the epoll
                         core watches them without a thread)
    --max-per-client=N   per-client-IP connection cap (default 0 = off)
    --replicate=host:port[,host:port...]
                         warm-entry replication peers: every fresh
                         cold-solve insert is pushed to the key's
                         replica set asynchronously, and startup pulls
                         what they hold past this node's own journal
                         sequence (a restarted node rejoins warm via a
                         delta, not a full transfer). Best-effort: a
                         dead peer spools and is probed half-open
    --replication-factor=F
                         copies per key: the key's ring owner
                         (hash % fleet size) plus F-1 successors
                         (default 0 = every node)
    --fleet-index=N      this node's slot on the fleet ring (must
                         agree with the order peers and clients list
                         the fleet in; default 0)
    --anti-entropy-ms=N  background digest-exchange period repairing
                         lost pushes (default 1000; 0 = off)
  mopt query --connect=host:port[,host:port...] <what> [options]
    <what> is one of:
      --net=<name|file.cfg> [--batch=N]
                         whole-network plan (routed across the fleet
                         by stable cache-key hash; a down node falls
                         back to a local solve; a .cfg network is sent
                         to a single node as an inline IR payload)
      --layer=<name> or explicit dims as above: one shape
      --stats            print each node's cache/telemetry counters
      --shutdown         stop each listed node
    --plan-out=<path>    write the per-layer plan (byte-identical to
                         a local `mopt network` run)
    --deadline-ms=N      per-RPC budget; a node that cannot answer in
                         time is treated as down (default 0 = none;
                         --stats/--shutdown default to 5000)
    --retries=N          extra attempts after a transport failure or
                         an "overloaded" refusal, with doubling
                         jittered backoff (default 0)
    --hedge-ms=N         duplicate a request to the next healthy node
                         when no answer after N ms; first answer wins
                         (default 0 = off)
    --no-fallback        fail instead of solving locally when a node
                         cannot answer — proves an answer came from
                         the fleet (replication checks, cache audits)
  Both sides must agree on --machine/--sequential/--effort: the
  server rejects fingerprint mismatches loudly.
)";
}

mopt::OptimizerOptions
optionsFromFlags(const mopt::Flags &flags)
{
    mopt::OptimizerOptions opts;
    opts.parallel = !flags.getBool("sequential", false);
    opts.top_k = static_cast<int>(flags.getInt("top-k", 5));
    opts.effort =
        mopt::effortFromString(flags.getString("effort", "standard"));
    return opts;
}

/**
 * A path-valued flag. A bare "--cache" (no value, or followed by
 * another flag) parses as "1", which would silently become a file
 * literally named "1" — reject it.
 */
std::string
pathFlag(const mopt::Flags &flags, const std::string &name)
{
    const std::string v = flags.getString(name, "");
    mopt::checkUser(v != "1",
                    "--" + name + " needs a file path (--" + name +
                        "=<path>)");
    return v;
}

/** The shared --cache/--cache-capacity handling of network/serve. */
mopt::SolutionCacheOptions
cacheOptionsFromFlags(const mopt::Flags &flags)
{
    mopt::SolutionCacheOptions co;
    co.capacity = static_cast<std::size_t>(
        flags.getInt("cache-capacity", 4096));
    co.journal_path = pathFlag(flags, "cache");
    return co;
}

/** What --calibration resolved to: the (possibly rescaled) machine
 *  plus the provenance a caller prints / serves in its stats. */
struct CalibratedMachine
{
    mopt::MachineSpec machine;
    mopt::Calibration calibration;
    std::int64_t journal_loaded = 0;
};

/**
 * The shared --calibration handling of network/serve: load the sample
 * journal, fit for the *base* machine's fingerprint, and rescale the
 * spec. An absent flag, an empty journal, or an identity fit all
 * return @p m unchanged — same fingerprint, same cache namespace.
 */
CalibratedMachine
calibratedMachine(const mopt::Flags &flags, const mopt::MachineSpec &m)
{
    using namespace mopt;
    CalibratedMachine cm;
    cm.machine = m;
    const std::string path = pathFlag(flags, "calibration");
    if (path.empty())
        return cm;
    const CalibrationStore store(path);
    cm.journal_loaded = store.stats().loaded;
    cm.calibration = store.fit(CacheKey::machineFingerprint(m));
    cm.machine = cm.calibration.applyTo(m);
    std::cout << "Calibration: " << path << " ("
              << cm.journal_loaded << " samples loaded): "
              << cm.calibration.str() << "\n";
    return cm;
}

/** The shared --solve-concurrency handling of network/serve. */
int
solveConcurrencyFromFlags(const mopt::Flags &flags)
{
    // Range-check before narrowing, so a 2^32+1 doesn't wrap into
    // a silently-accepted 1.
    const std::int64_t sc = flags.getInt("solve-concurrency", 1);
    mopt::checkUser(sc >= 1 && sc <= 64,
                    "--solve-concurrency must be 1 .. 64");
    return static_cast<int>(sc);
}

/** The --deadline-ms/--retries/--hedge-ms handling of query mode. */
mopt::FleetOptions
fleetOptionsFromFlags(const mopt::Flags &flags)
{
    mopt::FleetOptions fo;
    const std::int64_t dl = flags.getInt("deadline-ms", 0);
    mopt::checkUser(dl >= 0 && dl <= 86400000,
                    "--deadline-ms must be 0 (none) .. 86400000");
    fo.deadline_ms = static_cast<long>(dl);
    const std::int64_t r = flags.getInt("retries", 0);
    mopt::checkUser(r >= 0 && r <= 16, "--retries must be 0 .. 16");
    fo.max_retries = static_cast<int>(r);
    const std::int64_t h = flags.getInt("hedge-ms", 0);
    mopt::checkUser(h >= 0 && h <= 86400000,
                    "--hedge-ms must be 0 (off) .. 86400000");
    fo.hedge_ms = static_cast<long>(h);
    fo.local_fallback = !flags.getBool("no-fallback", false);
    return fo;
}

/** Resolve --net (name or .cfg path) + --batch into a NetworkDef. */
mopt::NetworkDef
networkFromFlags(const mopt::Flags &flags)
{
    using namespace mopt;
    NetworkDef def = loadNetworkDef(flags.getString("net", ""));
    if (flags.has("batch")) {
        def.batch = flags.getInt("batch", 1);
        checkUser(def.batch >= 1, "--batch must be >= 1");
    }
    return def;
}

/** The `mopt network` subcommand (argv already shifted past it). */
int
runNetwork(int argc, char **argv)
{
    using namespace mopt;
    const Flags flags(argc, argv);
    flags.rejectUnknown({"net", "batch", "machine", "sequential",
                         "effort", "top-k", "cache", "cache-capacity",
                         "plan-out", "solve-concurrency", "calibration",
                         "help"});
    if (flags.getBool("help", false)) {
        printUsage();
        return 0;
    }
    checkUser(flags.has("net"),
              "network mode needs --net=<name|file.cfg>");
    const NetworkDef def = networkFromFlags(flags);
    const std::vector<ConvProblem> net = def.lower();
    // The correction rescales the spec itself, so the optimizer, the
    // cache key, and the printed predictions all see it uniformly.
    const MachineSpec m =
        calibratedMachine(flags,
                          machineByName(flags.getString("machine", "i7")))
            .machine;
    const OptimizerOptions opts = optionsFromFlags(flags);

    const SolutionCacheOptions co = cacheOptionsFromFlags(flags);
    SolutionCache cache(co);
    const int solve_concurrency = solveConcurrencyFromFlags(flags);

    std::cout << "Network:  " << def.name << " (" << net.size()
              << " conv layers";
    if (def.batch > 1)
        std::cout << ", batch " << def.batch;
    std::cout << ")\n";
    std::cout << "Machine:  " << m.name << " (" << m.cores << " cores, "
              << m.vec_lanes << "-lane SIMD)\n";
    if (!co.journal_path.empty())
        std::cout << "Cache:    " << co.journal_path << " ("
                  << cache.stats().journal_loaded
                  << " entries loaded)\n";
    if (solve_concurrency > 1)
        std::cout << "Solver:   up to " << solve_concurrency
                  << " concurrent solves (plan unchanged)\n";
    std::cout << "\n";

    // --solve-concurrency 1 keeps the serial in-place miss loop (the
    // historical behavior); anything higher pipelines misses through
    // a single-flight scheduler. The plan is byte-identical.
    std::unique_ptr<SolveScheduler> sched;
    if (solve_concurrency > 1)
        sched = std::make_unique<SolveScheduler>(
            m, opts, &cache,
            SolveSchedulerOptions{solve_concurrency});
    const NetworkOptimizer nopt(m, opts, &cache, sched.get());
    const NetworkPlan plan = nopt.optimize(net);
    const std::string plan_text = plan.str();
    std::cout << plan_text << "\n";

    const NetworkPlanStats &st = plan.stats;
    std::cout << "Layers: " << st.layers << " (" << st.unique_shapes
              << " unique shapes)\n"
              << "Cache: " << st.cache_hits << " hits, "
              << st.cache_misses << " misses (hit rate "
              << formatDouble(100.0 * st.hitRate(), 1) << "%)\n"
              << "Search: " << formatDouble(st.solve_seconds, 2)
              << " s in " << st.solver_evals << " model evaluations, "
              << formatDouble(st.total_seconds, 2) << " s total\n";
    if (sched)
        std::cout << "Scheduler: " << st.cache_misses - st.coalesced
                  << " solves, " << st.coalesced
                  << " coalesced, peak " << st.peak_concurrency
                  << " concurrent\n";
    std::cout << "Predicted network time: "
              << formatDouble(plan.predictedSeconds() * 1e3, 3)
              << " ms\n";

    if (flags.has("plan-out")) {
        const std::string path = pathFlag(flags, "plan-out");
        std::ofstream f(path);
        checkUser(f.good(), "cannot open " + path);
        f << plan_text;
        std::cout << "Wrote per-layer plan to " << path << "\n";
    }
    return 0;
}

/** The `mopt autotune` subcommand: solve, emit, compile, run, and fit
 *  the per-machine correction later runs apply via --calibration. */
int
runAutotune(int argc, char **argv)
{
    using namespace mopt;
    const Flags flags(argc, argv);
    flags.rejectUnknown({"net", "batch", "layer", "k", "c", "image",
                         "rs", "stride", "dilation", "groups", "machine",
                         "sequential", "effort", "top-k", "reps",
                         "warmups", "runner", "cc", "calibration",
                         "samples-out", "work-dir", "help"});
    if (flags.getBool("help", false)) {
        printUsage();
        return 0;
    }

    // A whole network or one shape; either way the loop dedupes.
    std::vector<ConvProblem> net;
    std::string source;
    if (flags.has("net")) {
        const NetworkDef def = networkFromFlags(flags);
        net = def.lower();
        source = def.name;
    } else if (flags.has("layer")) {
        net.push_back(workloadByName(flags.getString("layer", "")));
        source = net.front().summary();
    } else if (flags.has("k") && flags.has("c") && flags.has("image") &&
               flags.has("rs")) {
        ConvProblem p = ConvProblem::fromImage(
            "cli", flags.getInt("k", 1), flags.getInt("c", 1),
            flags.getInt("image", 1), flags.getInt("rs", 1),
            static_cast<int>(flags.getInt("stride", 1)),
            flags.getInt("batch", 1), flags.getInt("groups", 1));
        p.dilation = static_cast<int>(flags.getInt("dilation", 1));
        p.validate();
        net.push_back(p);
        source = p.summary();
    } else {
        fatal("autotune mode needs --net, --layer, or explicit dims");
    }

    const MachineSpec m = machineByName(flags.getString("machine", "i7"));
    const OptimizerOptions opts = optionsFromFlags(flags);

    AutotuneOptions aopts;
    aopts.top_k = static_cast<int>(flags.getInt("top-k", 3));
    aopts.reps = static_cast<int>(flags.getInt("reps", 3));
    aopts.warmups = static_cast<int>(flags.getInt("warmups", 1));
    aopts.runner =
        tuneRunnerFromString(flags.getString("runner", "emitted"));
    aopts.cc = flags.getString("cc", "cc");
    aopts.work_dir = pathFlag(flags, "work-dir");

    const std::string journal = pathFlag(flags, "calibration");
    CalibrationStore store(journal);

    std::cout << "Autotune: " << source << " (" << net.size()
              << " layer" << (net.size() == 1 ? "" : "s") << ")\n"
              << "Machine:  " << m.name << " (measurements serial)\n"
              << "Runner:   "
              << (aopts.runner == TuneRunner::Emitted
                      ? "emitted (" + aopts.cc + " -O2)"
                      : "in-process executor")
              << ", top-k " << aopts.top_k << ", reps " << aopts.reps
              << ", warmups " << aopts.warmups << "\n";
    if (!journal.empty())
        std::cout << "Journal:  " << journal << " ("
                  << store.stats().loaded << " prior samples)\n";
    std::cout << "\n";

    const AutotuneReport rep = autotuneProblems(net, m, opts, store,
                                                aopts);

    Table t({"#", "shape", "runner", "pred ms", "meas ms", "meas/pred"});
    for (std::size_t i = 0; i < rep.samples.size(); ++i) {
        const TuneSample &s = rep.samples[i];
        t.row()
            .add(static_cast<long long>(i + 1))
            .add(s.problem.summary())
            .add(s.runner)
            .add(s.predicted_seconds * 1e3, 3)
            .add(s.measured_seconds * 1e3, 3)
            .add(s.predicted_seconds > 0
                     ? s.measured_seconds / s.predicted_seconds
                     : 0.0,
                 2);
    }
    t.print(std::cout);

    std::cout << "\nMeasured " << rep.samples.size() << " plan(s) over "
              << rep.unique_shapes << " unique shape(s), solve "
              << formatDouble(rep.solve_seconds, 2) << " s\n";
    if (rep.emit_failures > 0)
        std::cout << "Emitted path failed for " << rep.emit_failures
                  << " plan(s); measured in-process instead\n";
    if (!rep.work_dir.empty())
        std::cout << "Artifacts: " << rep.work_dir << "\n";
    if (rep.samples.size() >= 2)
        std::cout << "Spearman(predicted, measured) = "
                  << formatDouble(rep.rank_correlation, 3) << "\n";
    std::cout << "Calibration: " << rep.calibration.str() << "\n";
    if (!journal.empty())
        std::cout << "Wrote " << store.stats().appended
                  << " sample(s) to " << journal
                  << "; apply with --calibration=" << journal << "\n";

    if (flags.has("samples-out")) {
        const std::string path = pathFlag(flags, "samples-out");
        std::ofstream f(path);
        checkUser(f.good(), "cannot open " + path);
        for (const TuneSample &s : rep.samples)
            f << tuneSampleToJsonLine(s) << "\n";
        std::cout << "Wrote " << rep.samples.size() << " sample(s) to "
                  << path << "\n";
    }
    return 0;
}

/** The `mopt serve` subcommand: run moptd until a shutdown RPC. */
int
runServe(int argc, char **argv)
{
    using namespace mopt;
    const Flags flags(argc, argv);
    flags.rejectUnknown({"port", "host", "workers", "machine",
                         "sequential", "effort", "top-k", "cache",
                         "cache-capacity", "solve-concurrency",
                         "max-pending", "max-per-client", "replicate",
                         "replication-factor", "fleet-index",
                         "anti-entropy-ms", "calibration", "help"});
    if (flags.getBool("help", false)) {
        printUsage();
        return 0;
    }
    const CalibratedMachine cm = calibratedMachine(
        flags, machineByName(flags.getString("machine", "i7")));
    const MachineSpec &m = cm.machine;
    const OptimizerOptions opts = optionsFromFlags(flags);
    const SolutionCacheOptions co = cacheOptionsFromFlags(flags);
    SolutionCache cache(co);

    ServerOptions so;
    so.host = flags.getString("host", "127.0.0.1");
    so.port = static_cast<int>(flags.getInt("port", 0));
    checkUser(so.port >= 0 && so.port <= 65535,
              "--port must be 0 (ephemeral) .. 65535");
    so.workers = static_cast<int>(flags.getInt("workers", 4));
    checkUser(so.workers >= 1 && so.workers <= 256,
              "--workers must be 1 .. 256");
    so.solve_concurrency = solveConcurrencyFromFlags(flags);
    const std::int64_t max_pending = flags.getInt("max-pending", 128);
    checkUser(max_pending >= 1 && max_pending <= 65536,
              "--max-pending must be 1 .. 65536");
    so.max_pending_conns = static_cast<int>(max_pending);
    const std::int64_t per_client = flags.getInt("max-per-client", 0);
    checkUser(per_client >= 0 && per_client <= 65536,
              "--max-per-client must be 0 (unlimited) .. 65536");
    so.max_per_client = static_cast<int>(per_client);
    so.replicate = flags.getString("replicate", "");
    const std::int64_t factor = flags.getInt("replication-factor", 0);
    checkUser(factor >= 0 && factor <= 65536,
              "--replication-factor must be 0 (all nodes) .. 65536");
    so.replication_factor = static_cast<int>(factor);
    const std::int64_t fleet_index = flags.getInt("fleet-index", 0);
    checkUser(fleet_index >= 0 && fleet_index <= 65536,
              "--fleet-index must be 0 .. 65536");
    so.fleet_index = static_cast<int>(fleet_index);
    const std::int64_t ae_ms = flags.getInt("anti-entropy-ms", 1000);
    checkUser(ae_ms >= 0 && ae_ms <= 86400000,
              "--anti-entropy-ms must be 0 (off) .. 86400000");
    so.anti_entropy_ms = static_cast<long>(ae_ms);
    so.calib_samples = cm.calibration.samples_used;
    so.calib_active = !cm.calibration.isIdentity();

    Server server(m, opts, &cache, so);
    std::string err;
    checkUser(server.start(&err), "moptd: cannot listen: " + err);

    std::cout << "moptd: optimizing for " << m.name << " ("
              << (opts.parallel ? "parallel" : "sequential") << ", "
              << flags.getString("effort", "standard") << " effort, "
              << so.solve_concurrency << " concurrent solve"
              << (so.solve_concurrency > 1 ? "s" : "") << ")\n";
    if (!co.journal_path.empty())
        std::cout << "moptd: cache journal " << co.journal_path << " ("
                  << cache.stats().journal_loaded << " entries loaded)\n";
    if (!so.replicate.empty()) {
        // Keep the base form stable (the smoke harness greps it); the
        // since cursor only appears on a delta (journal-resumed) pull.
        std::cout << "moptd: replicating to " << so.replicate << " ("
                  << server.counters().repl_prefetched
                  << " entries prefetched";
        const std::int64_t since =
            server.counters().repl_prefetch_since.load(
                std::memory_order_relaxed);
        if (since > 0)
            std::cout << ", since=" << since;
        std::cout << ")\n";
    }
    // The smoke harness (and any supervisor) greps this exact line to
    // learn the bound port, so it must be flushed before serving.
    std::cout << "moptd: listening on " << so.host << ":"
              << server.port() << std::endl;

    const std::int64_t served = server.serve();

    const SolutionCacheStats cs = cache.stats();
    const SolveSchedulerStats ss = server.schedulerStats();
    std::cout << "moptd: shut down after " << served << " connections, "
              << server.counters().requests << " requests ("
              << server.counters().errors << " errors)\n"
              << "moptd: cache " << cs.hits << " hits / " << cs.misses
              << " misses, " << cache.size() << " entries live\n"
              << "moptd: scheduler " << ss.solves << " solves / "
              << ss.coalesced << " coalesced (peak "
              << ss.peak_concurrency << " concurrent)\n";
    const ServerCounters &sc = server.counters();
    if (sc.shed_overload || sc.shed_client || sc.shed_deadline)
        std::cout << "moptd: shed " << sc.shed_overload
                  << " overload / " << sc.shed_client
                  << " per-client / " << sc.shed_deadline
                  << " deadline\n";
    if (sc.repl_pushed || sc.repl_push_failed || sc.repl_applied ||
        sc.repl_prefetched)
        std::cout << "moptd: replication " << sc.repl_pushed
                  << " pushed / " << sc.repl_push_failed
                  << " push failures / " << sc.repl_applied
                  << " applied / " << sc.repl_prefetched
                  << " prefetched\n";
    if (sc.repl_push_retries || sc.repl_spooled || sc.repl_probes ||
        sc.repl_ae_applied)
        std::cout << "moptd: fabric " << sc.repl_push_retries
                  << " push retries / " << sc.repl_spooled
                  << " spooled / " << sc.repl_probes
                  << " probes / " << sc.repl_ae_applied
                  << " anti-entropy repairs\n";
    return 0;
}

/** Shared by every query path: fleet + solve identity from flags. */
struct QuerySetup
{
    std::vector<mopt::RpcEndpoint> endpoints;
    mopt::MachineSpec machine;
    mopt::OptimizerOptions opts;
    mopt::FleetOptions fleet;
};

QuerySetup
querySetup(const mopt::Flags &flags)
{
    using namespace mopt;
    checkUser(flags.has("connect"),
              "query mode needs --connect=host:port[,host:port...]");
    QuerySetup q;
    q.endpoints = parseEndpointList(flags.getString("connect", ""));
    q.machine = machineByName(flags.getString("machine", "i7"));
    q.opts = optionsFromFlags(flags);
    q.fleet = fleetOptionsFromFlags(flags);
    return q;
}

/** The fleet policy for control-plane calls (--stats/--shutdown):
 *  as given, but never unbounded — a downed node must not wedge the
 *  CLI, so default to a 5 s deadline when none was set. */
mopt::FleetOptions
controlPolicy(const QuerySetup &q)
{
    mopt::FleetOptions policy = q.fleet;
    if (policy.deadline_ms <= 0)
        policy.deadline_ms = 5000;
    return policy;
}

/** Print retry/hedge activity and per-node health after a routed
 *  query, so a degraded fleet is visible, not silent. */
void
reportFleetHealth(const mopt::RouteStats &rs)
{
    using namespace mopt;
    if (rs.retries || rs.hedges)
        std::cout << "Recovery: " << rs.retries << " retrie(s), "
                  << rs.hedges << " hedge(s), " << rs.hedge_wins
                  << " hedge win(s)\n";
    for (std::size_t i = 0; i < rs.nodes.size(); ++i) {
        const RouteNodeState &n = rs.nodes[i];
        if (!n.down)
            continue;
        std::cout << "Node " << i << " (" << n.endpoint.str()
                  << "): down, re-probe in " << n.retry_in_ms
                  << " ms\n";
    }
}

/** Print one network plan + provenance summary; honor --plan-out. */
void
reportNetworkPlan(const mopt::Flags &flags, const std::string &plan_text,
                  std::size_t layers, std::size_t unique,
                  std::size_t hits, std::size_t misses,
                  std::size_t fallbacks, double solve_seconds)
{
    using namespace mopt;
    std::cout << plan_text << "\n";
    std::cout << "Layers: " << layers << " (" << unique
              << " unique shapes)\n"
              << "Cache: " << hits << " hits, " << misses
              << " misses (hit rate "
              << formatDouble(unique ? 100.0 * static_cast<double>(hits) /
                                           static_cast<double>(unique)
                                     : 100.0,
                              1)
              << "%)\n";
    if (fallbacks > 0)
        std::cout << "Fallback: " << fallbacks
                  << " shape(s) solved locally (node down)\n";
    std::cout << "Search: " << formatDouble(solve_seconds, 2)
              << " s of solve time\n";
    if (flags.has("plan-out")) {
        const std::string path = pathFlag(flags, "plan-out");
        std::ofstream f(path);
        checkUser(f.good(), "cannot open " + path);
        f << plan_text;
        std::cout << "Wrote per-layer plan to " << path << "\n";
    }
}

/** `mopt query --stats`: each node's counters + hottest entries.
 *  Exits nonzero when any listed node is unreachable or errors, so a
 *  monitoring script can trust the status code. */
int
queryStats(const QuerySetup &q)
{
    using namespace mopt;
    const FleetOptions policy = controlPolicy(q);
    int rc = 0;
    for (const RpcEndpoint &ep : q.endpoints) {
        Client client(ep);
        RpcRequest req;
        req.op = RpcOp::Stats;
        req.deadline_ms = policy.deadline_ms;
        RpcResponse resp;
        std::string err;
        if (!client.callRetrying(req, policy, resp, &err)) {
            std::cout << ep.str() << ": unreachable (" << err << ")\n";
            rc = 1;
            continue;
        }
        if (!resp.ok) {
            std::cout << ep.str() << ": error: " << resp.error << "\n";
            rc = 1;
            continue;
        }
        std::cout << ep.str() << ": " << resp.machine_name << ", "
                  << resp.entries << " entries in " << resp.shards
                  << " shards; lookups " << resp.cache.hits << " hits / "
                  << resp.cache.misses << " misses; "
                  << resp.cache.inserts << " inserts, "
                  << resp.cache.evictions << " evictions; journal "
                  << resp.cache.journal_loaded << " loaded / "
                  << resp.cache.journal_skipped << " skipped; "
                  << "scheduler " << resp.sched_solves << " solves / "
                  << resp.sched_coalesced << " coalesced (peak "
                  << resp.sched_peak << ", in flight "
                  << resp.sched_inflight << ", budget "
                  << resp.sched_budget << "); calibration "
                  << resp.calib_samples << " sample(s), "
                  << (resp.calib_active ? "active" : "identity") << "\n";
        if (resp.srv_repl_pushed || resp.srv_repl_push_failed ||
            resp.srv_repl_applied || resp.srv_repl_prefetched)
            std::cout << "  replication " << resp.srv_repl_pushed
                      << " pushed / " << resp.srv_repl_push_failed
                      << " push failures / " << resp.srv_repl_applied
                      << " applied / " << resp.srv_repl_prefetched
                      << " prefetched\n";
        if (resp.repl_queue_depth || resp.journal_seq)
            std::cout << "  fabric queue depth "
                      << resp.repl_queue_depth << ", journal seq "
                      << resp.journal_seq << "\n";
        // Hottest entries first: the per-entry telemetry a fleet
        // operator would use to decide what has stopped earning its
        // cache slot.
        std::vector<RpcEntryHits> rows = resp.entry_hits;
        std::stable_sort(rows.begin(), rows.end(),
                         [](const RpcEntryHits &a, const RpcEntryHits &b) {
                             return a.hits > b.hits;
                         });
        const std::size_t top = std::min<std::size_t>(rows.size(), 10);
        for (std::size_t i = 0; i < top; ++i)
            std::cout << "  " << rows[i].hits << " hits  "
                      << rows[i].key << "\n";
    }
    return rc;
}

/** `mopt query --shutdown`: stop every listed node. */
int
queryShutdown(const QuerySetup &q)
{
    using namespace mopt;
    const FleetOptions policy = controlPolicy(q);
    int rc = 0;
    for (const RpcEndpoint &ep : q.endpoints) {
        Client client(ep);
        RpcRequest req;
        req.op = RpcOp::Shutdown;
        req.deadline_ms = policy.deadline_ms;
        RpcResponse resp;
        std::string err;
        if (!client.callRetrying(req, policy, resp, &err) || !resp.ok) {
            std::cout << ep.str() << ": shutdown failed ("
                      << (err.empty() ? resp.error : err) << ")\n";
            rc = 1;
            continue;
        }
        std::cout << ep.str() << ": shutting down\n";
    }
    return rc;
}

/** `mopt query --net=...`: whole-network plan through the fleet. */
int
queryNetwork(const mopt::Flags &flags, QuerySetup &q)
{
    using namespace mopt;
    const std::string net_spec = flags.getString("net", "");
    const NetworkDef def = networkFromFlags(flags);
    const std::vector<ConvProblem> net = def.lower();

    std::cout << "Network:  " << def.name << " (" << net.size()
              << " conv layers";
    if (def.batch > 1)
        std::cout << ", batch " << def.batch;
    std::cout << ")\n"
              << "Fleet:    " << q.endpoints.size() << " node(s)\n\n";

    // One node: a single solve_network round-trip serves the whole
    // plan from the server's cache. A fleet (or a dead single node):
    // per-shape routing with local fallback.
    if (q.endpoints.size() == 1) {
        Client client(q.endpoints.front());
        RpcRequest req;
        req.op = RpcOp::SolveNetwork;
        // A registered name resolves identically server-side; a .cfg
        // exists only on this client, so ship the lowered IR inline.
        if (looksLikeCfgPath(net_spec)) {
            req.ir = def;
            req.has_ir = true;
        } else {
            req.net = net_spec;
        }
        req.batch = def.batch;
        req.machine_fp = CacheKey::machineFingerprint(q.machine);
        req.settings_fp = CacheKey::settingsFingerprint(q.opts);
        req.deadline_ms = q.fleet.deadline_ms;
        RpcResponse resp;
        std::string err;
        std::size_t retries = 0;
        if (client.callRetrying(req, q.fleet, resp, &err, &retries)) {
            checkUser(resp.ok, q.endpoints.front().str() +
                                   " refused: " + resp.error);
            reportNetworkPlan(
                flags, resp.plan_text, resp.layers.size(),
                static_cast<std::size_t>(resp.unique_shapes),
                static_cast<std::size_t>(resp.cache_hits),
                static_cast<std::size_t>(resp.cache_misses), 0,
                resp.solve_seconds);
            if (retries > 0)
                std::cout << "Recovery: " << retries
                          << " retrie(s)\n";
            return 0;
        }
        checkUser(q.fleet.local_fallback,
                  "moptd node " + q.endpoints.front().str() +
                      " unreachable (" + err +
                      ") and --no-fallback is set");
        logWarn("moptd node ", q.endpoints.front().str(),
                " unreachable (", err, "); falling back to local solve");
    }

    ShardRouter router(q.endpoints, q.machine, q.opts, q.fleet);
    RouteStats rs;
    const NetworkPlan plan = router.optimize(net, &rs);
    reportNetworkPlan(flags, plan.str(), plan.layers.size(),
                      rs.unique_shapes, rs.remote_hits,
                      rs.remote_misses + rs.fallbacks, rs.fallbacks,
                      rs.solve_seconds);
    reportFleetHealth(rs);
    return 0;
}

/** `mopt query --layer=...` (or explicit dims): one shape. */
int
queryProblem(QuerySetup &q, const mopt::ConvProblem &p)
{
    using namespace mopt;
    std::cout << "Problem:  " << p.summary() << "\n"
              << "Fleet:    " << q.endpoints.size() << " node(s)\n\n";

    ShardRouter router(q.endpoints, q.machine, q.opts, q.fleet);
    RouteStats rs;
    const NetworkPlan plan = router.optimize({p}, &rs);
    const LayerPlan &lp = plan.layers.front();
    reportFleetHealth(rs);

    std::cout << "Served:   "
              << (rs.fallbacks ? "local fallback (node down)"
                  : lp.cache_hit ? "cache hit"
                                 : "solved on demand")
              << " [node " << router.nodeOf(CacheKey::make(
                                  p, q.machine, q.opts))
              << "]\n\n";
    std::cout << "Best configuration: " << lp.best.perm_label << "\n"
              << "  L1 " << tilesToString(lp.best.config.tiles[LvlL1])
              << " L2 " << tilesToString(lp.best.config.tiles[LvlL2])
              << " L3 " << tilesToString(lp.best.config.tiles[LvlL3])
              << " par " << tilesToString(lp.best.config.par) << "\n\n"
              << lp.best.predicted.str() << "\n";
    return 0;
}

/** The `mopt query` subcommand: thin client over a moptd fleet. */
int
runQuery(int argc, char **argv)
{
    using namespace mopt;
    const Flags flags(argc, argv);
    flags.rejectUnknown({"connect", "net", "layer", "k", "c", "image",
                         "rs", "stride", "dilation", "batch", "groups",
                         "machine", "sequential", "effort", "top-k",
                         "plan-out", "stats", "shutdown", "deadline-ms",
                         "retries", "hedge-ms", "no-fallback", "help"});
    if (flags.getBool("help", false)) {
        printUsage();
        return 0;
    }
    QuerySetup q = querySetup(flags);

    if (flags.getBool("stats", false))
        return queryStats(q);
    if (flags.getBool("shutdown", false))
        return queryShutdown(q);
    if (flags.has("net"))
        return queryNetwork(flags, q);

    ConvProblem p;
    if (flags.has("layer")) {
        p = workloadByName(flags.getString("layer", ""));
    } else if (flags.has("k") && flags.has("c") && flags.has("image") &&
               flags.has("rs")) {
        p = ConvProblem::fromImage(
            "cli", flags.getInt("k", 1), flags.getInt("c", 1),
            flags.getInt("image", 1), flags.getInt("rs", 1),
            static_cast<int>(flags.getInt("stride", 1)),
            flags.getInt("batch", 1), flags.getInt("groups", 1));
        p.dilation = static_cast<int>(flags.getInt("dilation", 1));
        p.validate();
    } else {
        fatal("query mode needs --net, --layer, explicit dims, "
              "--stats, or --shutdown");
    }
    return queryProblem(q, p);
}

/** Single-layer mode (the default, no subcommand). */
int
runSingle(int argc, char **argv);

} // namespace

int
main(int argc, char **argv)
{
    using namespace mopt;
    // User errors (bad flags, unreachable fleet, refused solves)
    // surface as FatalError; report them like a tool, not a crash.
    try {
        if (argc > 1 && std::strcmp(argv[1], "network") == 0)
            return runNetwork(argc - 1, argv + 1);
        if (argc > 1 && std::strcmp(argv[1], "autotune") == 0)
            return runAutotune(argc - 1, argv + 1);
        if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
            return runServe(argc - 1, argv + 1);
        if (argc > 1 && std::strcmp(argv[1], "query") == 0)
            return runQuery(argc - 1, argv + 1);
        return runSingle(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << "mopt: error: " << e.what() << "\n";
        return 1;
    }
}

namespace {

int
runSingle(int argc, char **argv)
{
    using namespace mopt;
    const Flags flags(argc, argv);
    flags.rejectUnknown({"layer", "k", "c", "image", "rs", "stride",
                         "dilation", "batch", "groups", "machine",
                         "sequential", "effort", "top-k", "emit-c",
                         "verify", "compare", "help"});
    if (flags.getBool("help", false)) {
        printUsage();
        return 0;
    }

    // Resolve the problem.
    ConvProblem p;
    if (flags.has("layer")) {
        p = workloadByName(flags.getString("layer", ""));
    } else if (flags.has("k") && flags.has("c") && flags.has("image") &&
               flags.has("rs")) {
        p = ConvProblem::fromImage(
            "cli", flags.getInt("k", 1), flags.getInt("c", 1),
            flags.getInt("image", 1), flags.getInt("rs", 1),
            static_cast<int>(flags.getInt("stride", 1)),
            flags.getInt("batch", 1), flags.getInt("groups", 1));
        p.dilation = static_cast<int>(flags.getInt("dilation", 1));
        p.validate();
    } else {
        printUsage();
        return 2;
    }

    const MachineSpec m = machineByName(flags.getString("machine", "i7"));
    const OptimizerOptions opts = optionsFromFlags(flags);

    std::cout << "Problem:  " << p.summary() << "\n";
    std::cout << "Machine:  " << m.name << " (" << m.cores << " cores, "
              << m.vec_lanes << "-lane SIMD)\n";
    std::cout << "Mode:     "
              << (opts.parallel ? "parallel" : "sequential") << ", "
              << flags.getString("effort", "standard") << " effort\n\n";

    const OptimizeOutput out = optimizeConv(p, m, opts);
    checkInvariant(!out.candidates.empty(), "optimizer returned nothing");

    std::cout << "Search: " << out.seconds << " s, " << out.solver_evals
              << " model evaluations\n\n";

    Table t({"#", "class", "L1 tile", "L2 tile", "L3 tile", "par",
             "pred ms", "pred GFLOPS"});
    for (std::size_t i = 0; i < out.candidates.size(); ++i) {
        const Candidate &c = out.candidates[i];
        t.row()
            .add(static_cast<long long>(i + 1))
            .add(c.perm_label)
            .add(tilesToString(c.config.tiles[LvlL1]))
            .add(tilesToString(c.config.tiles[LvlL2]))
            .add(tilesToString(c.config.tiles[LvlL3]))
            .add(tilesToString(c.config.par))
            .add(c.predicted.total_seconds * 1e3, 3)
            .add(c.predicted.gflops, 1);
    }
    t.print(std::cout);

    const Candidate &best = out.candidates.front();
    std::cout << "\nBest configuration breakdown:\n"
              << best.predicted.str() << "\n";

    if (flags.has("emit-c")) {
        const std::string path = pathFlag(flags, "emit-c");
        std::ofstream f(path);
        checkUser(f.good(), "cannot open " + path);
        f << emitStandaloneProgram(p, best.config);
        std::cout << "Wrote standalone C program to " << path << "\n";
    }

    if (flags.getBool("verify", false)) {
        Rng rng(1);
        Tensor4 in = makeInput(p), ker = makeKernel(p);
        in.fillRandom(rng);
        ker.fillRandom(rng);
        Tensor4 expected = makeOutput(p), got = makeOutput(p);
        referenceConv(p, in, ker, expected);
        const ExecStats st = runConv(p, in, ker, got, best.config);
        const double err = Tensor4::maxAbsDiff(expected, got);
        std::cout << "Verification: max |diff| = " << err << " ("
                  << (err < 2e-3 ? "OK" : "MISMATCH") << "), executed in "
                  << st.seconds * 1e3 << " ms (" << st.gflops
                  << " GFLOPS on this host)\n";
        if (err >= 2e-3)
            return 1;
    }

    if (flags.getBool("compare", false)) {
        const ExecConfig lib = heuristicConfig(p, m, opts.parallel);
        const CostBreakdown cb = evalMultiLevel(lib, p, m, opts.parallel);
        std::cout << "\noneDNN-style baseline (rule "
                  << heuristicRuleName(p) << "):\n"
                  << "  L1 " << tilesToString(lib.tiles[LvlL1]) << " L2 "
                  << tilesToString(lib.tiles[LvlL2]) << " L3 "
                  << tilesToString(lib.tiles[LvlL3]) << "\n"
                  << "  predicted " << cb.total_seconds * 1e3 << " ms ("
                  << cb.gflops << " GFLOPS), "
                  << best.predicted.total_seconds * 1e3
                  << " ms for MOpt-1\n";
    }
    return 0;
}

} // namespace
