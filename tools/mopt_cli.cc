/**
 * @file
 * The `mopt` command-line tool: the front door a downstream user would
 * actually drive. Takes a conv2d shape (by Table-1 layer name or
 * explicit dimensions), a machine preset, and produces the optimized
 * tiling — permutation class, tile sizes per level, parallel split,
 * predicted cost breakdown — and optionally standalone C source for
 * the tiled loop nest, a verification run against the reference, and
 * the baseline configurations for comparison.
 *
 * The `network` subcommand optimizes a whole network in one shot
 * through the service layer's NetworkOptimizer, deduplicating repeated
 * shapes and (with --cache) persisting solutions across runs.
 *
 * Examples:
 *   mopt --layer=Y12 --machine=i7
 *   mopt --k=256 --c=128 --image=34 --rs=3 --stride=1 --machine=i9
 *   mopt --layer=R2 --emit-c=conv_r2.c
 *   mopt --layer=M5 --verify --compare
 *   mopt network --net=resnet18 --cache=mopt.cache.json
 */

#include <cstring>
#include <fstream>
#include <iostream>

#include "baselines/autotuner.hh"
#include "baselines/heuristic_lib.hh"
#include "codegen/c_emitter.hh"
#include "common/flags.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/string_util.hh"
#include "common/table.hh"
#include "conv/reference.hh"
#include "conv/workloads.hh"
#include "exec/conv_exec.hh"
#include "machine/machine.hh"
#include "model/multi_level.hh"
#include "optimizer/mopt_optimizer.hh"
#include "service/network_optimizer.hh"
#include "service/solution_cache.hh"
#include "tensor/tensor.hh"

namespace {

void
printUsage()
{
    std::cout <<
        R"(mopt: analytical tile-size optimizer for conv2d (ASPLOS'21 MOpt)

Problem selection (one of):
  --layer=<name>     Table-1 operator (Y0..Y23, R1..R12, M1..M9)
  --k= --c= --image= --rs= [--stride=1] [--dilation=1] [--batch=1]
                     explicit shape (image = input H == W)

Options:
  --machine=i7|i9|tiny   machine preset (default i7)
  --sequential           optimize for one core (default: all cores)
  --effort=fast|standard|thorough   solver effort (default standard)
  --top-k=N              candidates to report (default 5)
  --emit-c=<path>        write standalone C source for the best config
  --verify               run the tiled executor vs the naive reference
  --compare              also print oneDNN-style baseline blocking
  --help                 this text

Network mode (optimize every conv layer of a whole network):
  mopt network --net=resnet18|vgg16|yolov3 [options]
  --cache=<path>         persistent solution cache (JSON journal);
                         repeated shapes and repeated runs hit it
  --cache-capacity=N     max cached solutions (default 4096)
  --plan-out=<path>      write the per-layer plan to a file
                         (deterministic; byte-identical cold vs warm)
  plus --machine, --sequential, --effort as above
)";
}

mopt::OptimizerOptions
optionsFromFlags(const mopt::Flags &flags)
{
    mopt::OptimizerOptions opts;
    opts.parallel = !flags.getBool("sequential", false);
    opts.top_k = static_cast<int>(flags.getInt("top-k", 5));
    opts.effort =
        mopt::effortFromString(flags.getString("effort", "standard"));
    return opts;
}

/**
 * A path-valued flag. A bare "--cache" (no value, or followed by
 * another flag) parses as "1", which would silently become a file
 * literally named "1" — reject it.
 */
std::string
pathFlag(const mopt::Flags &flags, const std::string &name)
{
    const std::string v = flags.getString(name, "");
    mopt::checkUser(v != "1",
                    "--" + name + " needs a file path (--" + name +
                        "=<path>)");
    return v;
}

/** The `mopt network` subcommand (argv already shifted past it). */
int
runNetwork(int argc, char **argv)
{
    using namespace mopt;
    const Flags flags(argc, argv);
    if (flags.getBool("help", false)) {
        printUsage();
        return 0;
    }
    checkUser(flags.has("net"),
              "network mode needs --net=resnet18|vgg16|yolov3");
    const std::string net_name = flags.getString("net", "");
    const std::vector<ConvProblem> net = networkByName(net_name);
    const MachineSpec m = machineByName(flags.getString("machine", "i7"));
    const OptimizerOptions opts = optionsFromFlags(flags);

    SolutionCacheOptions co;
    co.capacity = static_cast<std::size_t>(
        flags.getInt("cache-capacity", 4096));
    co.journal_path = pathFlag(flags, "cache");
    SolutionCache cache(co);

    std::cout << "Network:  " << net_name << " (" << net.size()
              << " conv layers)\n";
    std::cout << "Machine:  " << m.name << " (" << m.cores << " cores, "
              << m.vec_lanes << "-lane SIMD)\n";
    if (!co.journal_path.empty())
        std::cout << "Cache:    " << co.journal_path << " ("
                  << cache.stats().journal_loaded
                  << " entries loaded)\n";
    std::cout << "\n";

    const NetworkOptimizer nopt(m, opts, &cache);
    const NetworkPlan plan = nopt.optimize(net);
    const std::string plan_text = plan.str();
    std::cout << plan_text << "\n";

    const NetworkPlanStats &st = plan.stats;
    std::cout << "Layers: " << st.layers << " (" << st.unique_shapes
              << " unique shapes)\n"
              << "Cache: " << st.cache_hits << " hits, "
              << st.cache_misses << " misses (hit rate "
              << formatDouble(100.0 * st.hitRate(), 1) << "%)\n"
              << "Search: " << formatDouble(st.solve_seconds, 2)
              << " s in " << st.solver_evals << " model evaluations, "
              << formatDouble(st.total_seconds, 2) << " s total\n"
              << "Predicted network time: "
              << formatDouble(plan.predictedSeconds() * 1e3, 3)
              << " ms\n";

    if (flags.has("plan-out")) {
        const std::string path = pathFlag(flags, "plan-out");
        std::ofstream f(path);
        checkUser(f.good(), "cannot open " + path);
        f << plan_text;
        std::cout << "Wrote per-layer plan to " << path << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mopt;
    if (argc > 1 && std::strcmp(argv[1], "network") == 0)
        return runNetwork(argc - 1, argv + 1);

    const Flags flags(argc, argv);
    if (flags.getBool("help", false)) {
        printUsage();
        return 0;
    }

    // Resolve the problem.
    ConvProblem p;
    if (flags.has("layer")) {
        p = workloadByName(flags.getString("layer", ""));
    } else if (flags.has("k") && flags.has("c") && flags.has("image") &&
               flags.has("rs")) {
        p = ConvProblem::fromImage(
            "cli", flags.getInt("k", 1), flags.getInt("c", 1),
            flags.getInt("image", 1), flags.getInt("rs", 1),
            static_cast<int>(flags.getInt("stride", 1)),
            flags.getInt("batch", 1));
        p.dilation = static_cast<int>(flags.getInt("dilation", 1));
        p.validate();
    } else {
        printUsage();
        return 2;
    }

    const MachineSpec m = machineByName(flags.getString("machine", "i7"));
    const OptimizerOptions opts = optionsFromFlags(flags);

    std::cout << "Problem:  " << p.summary() << "\n";
    std::cout << "Machine:  " << m.name << " (" << m.cores << " cores, "
              << m.vec_lanes << "-lane SIMD)\n";
    std::cout << "Mode:     "
              << (opts.parallel ? "parallel" : "sequential") << ", "
              << flags.getString("effort", "standard") << " effort\n\n";

    const OptimizeOutput out = optimizeConv(p, m, opts);
    checkInvariant(!out.candidates.empty(), "optimizer returned nothing");

    std::cout << "Search: " << out.seconds << " s, " << out.solver_evals
              << " model evaluations\n\n";

    Table t({"#", "class", "L1 tile", "L2 tile", "L3 tile", "par",
             "pred ms", "pred GFLOPS"});
    for (std::size_t i = 0; i < out.candidates.size(); ++i) {
        const Candidate &c = out.candidates[i];
        t.row()
            .add(static_cast<long long>(i + 1))
            .add(c.perm_label)
            .add(tilesToString(c.config.tiles[LvlL1]))
            .add(tilesToString(c.config.tiles[LvlL2]))
            .add(tilesToString(c.config.tiles[LvlL3]))
            .add(tilesToString(c.config.par))
            .add(c.predicted.total_seconds * 1e3, 3)
            .add(c.predicted.gflops, 1);
    }
    t.print(std::cout);

    const Candidate &best = out.candidates.front();
    std::cout << "\nBest configuration breakdown:\n"
              << best.predicted.str() << "\n";

    if (flags.has("emit-c")) {
        const std::string path = pathFlag(flags, "emit-c");
        std::ofstream f(path);
        checkUser(f.good(), "cannot open " + path);
        f << emitStandaloneProgram(p, best.config);
        std::cout << "Wrote standalone C program to " << path << "\n";
    }

    if (flags.getBool("verify", false)) {
        Rng rng(1);
        Tensor4 in = makeInput(p), ker = makeKernel(p);
        in.fillRandom(rng);
        ker.fillRandom(rng);
        Tensor4 expected = makeOutput(p), got = makeOutput(p);
        referenceConv(p, in, ker, expected);
        const ExecStats st = runConv(p, in, ker, got, best.config);
        const double err = Tensor4::maxAbsDiff(expected, got);
        std::cout << "Verification: max |diff| = " << err << " ("
                  << (err < 2e-3 ? "OK" : "MISMATCH") << "), executed in "
                  << st.seconds * 1e3 << " ms (" << st.gflops
                  << " GFLOPS on this host)\n";
        if (err >= 2e-3)
            return 1;
    }

    if (flags.getBool("compare", false)) {
        const ExecConfig lib = heuristicConfig(p, m, opts.parallel);
        const CostBreakdown cb = evalMultiLevel(lib, p, m, opts.parallel);
        std::cout << "\noneDNN-style baseline (rule "
                  << heuristicRuleName(p) << "):\n"
                  << "  L1 " << tilesToString(lib.tiles[LvlL1]) << " L2 "
                  << tilesToString(lib.tiles[LvlL2]) << " L3 "
                  << tilesToString(lib.tiles[LvlL3]) << "\n"
                  << "  predicted " << cb.total_seconds * 1e3 << " ms ("
                  << cb.gflops << " GFLOPS), "
                  << best.predicted.total_seconds * 1e3
                  << " ms for MOpt-1\n";
    }
    return 0;
}
