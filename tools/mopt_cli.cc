/**
 * @file
 * The `mopt` command-line tool: the front door a downstream user would
 * actually drive. Takes a conv2d shape (by Table-1 layer name or
 * explicit dimensions), a machine preset, and produces the optimized
 * tiling — permutation class, tile sizes per level, parallel split,
 * predicted cost breakdown — and optionally standalone C source for
 * the tiled loop nest, a verification run against the reference, and
 * the baseline configurations for comparison.
 *
 * Examples:
 *   mopt --layer=Y12 --machine=i7
 *   mopt --k=256 --c=128 --image=34 --rs=3 --stride=1 --machine=i9
 *   mopt --layer=R2 --emit-c=conv_r2.c
 *   mopt --layer=M5 --verify --compare
 */

#include <fstream>
#include <iostream>

#include "baselines/autotuner.hh"
#include "baselines/heuristic_lib.hh"
#include "codegen/c_emitter.hh"
#include "common/flags.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "conv/reference.hh"
#include "conv/workloads.hh"
#include "exec/conv_exec.hh"
#include "machine/machine.hh"
#include "model/multi_level.hh"
#include "optimizer/mopt_optimizer.hh"
#include "tensor/tensor.hh"

namespace {

void
printUsage()
{
    std::cout <<
        R"(mopt: analytical tile-size optimizer for conv2d (ASPLOS'21 MOpt)

Problem selection (one of):
  --layer=<name>     Table-1 operator (Y0..Y23, R1..R12, M1..M9)
  --k= --c= --image= --rs= [--stride=1] [--dilation=1] [--batch=1]
                     explicit shape (image = input H == W)

Options:
  --machine=i7|i9|tiny   machine preset (default i7)
  --sequential           optimize for one core (default: all cores)
  --effort=fast|standard|thorough   solver effort (default standard)
  --top-k=N              candidates to report (default 5)
  --emit-c=<path>        write standalone C source for the best config
  --verify               run the tiled executor vs the naive reference
  --compare              also print oneDNN-style baseline blocking
  --help                 this text
)";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mopt;
    const Flags flags(argc, argv);
    if (flags.getBool("help", false)) {
        printUsage();
        return 0;
    }

    // Resolve the problem.
    ConvProblem p;
    if (flags.has("layer")) {
        p = workloadByName(flags.getString("layer", ""));
    } else if (flags.has("k") && flags.has("c") && flags.has("image") &&
               flags.has("rs")) {
        p = ConvProblem::fromImage(
            "cli", flags.getInt("k", 1), flags.getInt("c", 1),
            flags.getInt("image", 1), flags.getInt("rs", 1),
            static_cast<int>(flags.getInt("stride", 1)),
            flags.getInt("batch", 1));
        p.dilation = static_cast<int>(flags.getInt("dilation", 1));
        p.validate();
    } else {
        printUsage();
        return 2;
    }

    const MachineSpec m = machineByName(flags.getString("machine", "i7"));
    OptimizerOptions opts;
    opts.parallel = !flags.getBool("sequential", false);
    opts.top_k = static_cast<int>(flags.getInt("top-k", 5));
    const std::string effort = flags.getString("effort", "standard");
    if (effort == "fast")
        opts.effort = OptimizerOptions::Effort::Fast;
    else if (effort == "thorough")
        opts.effort = OptimizerOptions::Effort::Thorough;
    else
        opts.effort = OptimizerOptions::Effort::Standard;

    std::cout << "Problem:  " << p.summary() << "\n";
    std::cout << "Machine:  " << m.name << " (" << m.cores << " cores, "
              << m.vec_lanes << "-lane SIMD)\n";
    std::cout << "Mode:     "
              << (opts.parallel ? "parallel" : "sequential") << ", "
              << effort << " effort\n\n";

    const OptimizeOutput out = optimizeConv(p, m, opts);
    checkInvariant(!out.candidates.empty(), "optimizer returned nothing");

    std::cout << "Search: " << out.seconds << " s, " << out.solver_evals
              << " model evaluations\n\n";

    Table t({"#", "class", "L1 tile", "L2 tile", "L3 tile", "par",
             "pred ms", "pred GFLOPS"});
    for (std::size_t i = 0; i < out.candidates.size(); ++i) {
        const Candidate &c = out.candidates[i];
        t.row()
            .add(static_cast<long long>(i + 1))
            .add(c.perm_label)
            .add(tilesToString(c.config.tiles[LvlL1]))
            .add(tilesToString(c.config.tiles[LvlL2]))
            .add(tilesToString(c.config.tiles[LvlL3]))
            .add(tilesToString(c.config.par))
            .add(c.predicted.total_seconds * 1e3, 3)
            .add(c.predicted.gflops, 1);
    }
    t.print(std::cout);

    const Candidate &best = out.candidates.front();
    std::cout << "\nBest configuration breakdown:\n"
              << best.predicted.str() << "\n";

    if (flags.has("emit-c")) {
        const std::string path = flags.getString("emit-c", "conv.c");
        std::ofstream f(path);
        checkUser(f.good(), "cannot open " + path);
        f << emitStandaloneProgram(p, best.config);
        std::cout << "Wrote standalone C program to " << path << "\n";
    }

    if (flags.getBool("verify", false)) {
        Rng rng(1);
        Tensor4 in = makeInput(p), ker = makeKernel(p);
        in.fillRandom(rng);
        ker.fillRandom(rng);
        Tensor4 expected = makeOutput(p), got = makeOutput(p);
        referenceConv(p, in, ker, expected);
        const ExecStats st = runConv(p, in, ker, got, best.config);
        const double err = Tensor4::maxAbsDiff(expected, got);
        std::cout << "Verification: max |diff| = " << err << " ("
                  << (err < 2e-3 ? "OK" : "MISMATCH") << "), executed in "
                  << st.seconds * 1e3 << " ms (" << st.gflops
                  << " GFLOPS on this host)\n";
        if (err >= 2e-3)
            return 1;
    }

    if (flags.getBool("compare", false)) {
        const ExecConfig lib = heuristicConfig(p, m, opts.parallel);
        const CostBreakdown cb = evalMultiLevel(lib, p, m, opts.parallel);
        std::cout << "\noneDNN-style baseline (rule "
                  << heuristicRuleName(p) << "):\n"
                  << "  L1 " << tilesToString(lib.tiles[LvlL1]) << " L2 "
                  << tilesToString(lib.tiles[LvlL2]) << " L3 "
                  << tilesToString(lib.tiles[LvlL3]) << "\n"
                  << "  predicted " << cb.total_seconds * 1e3 << " ms ("
                  << cb.gflops << " GFLOPS), "
                  << best.predicted.total_seconds * 1e3
                  << " ms for MOpt-1\n";
    }
    return 0;
}
