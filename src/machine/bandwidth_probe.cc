#include "machine/bandwidth_probe.hh"

#include <atomic>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/timer.hh"

namespace mopt {

namespace {

/**
 * Sum a float array; the result is accumulated into a volatile sink so
 * the loop cannot be optimized away. Returns the number of bytes read.
 */
std::int64_t
streamOnce(const float *data, std::int64_t n)
{
    float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        acc0 += data[i];
        acc1 += data[i + 1];
        acc2 += data[i + 2];
        acc3 += data[i + 3];
    }
    for (; i < n; ++i)
        acc0 += data[i];
    volatile float sink = acc0 + acc1 + acc2 + acc3;
    (void)sink;
    return n * static_cast<std::int64_t>(sizeof(float));
}

} // namespace

ProbeResult
probeBandwidth(std::int64_t bytes, int threads, double min_seconds)
{
    checkUser(bytes >= 4096, "probeBandwidth: working set too small");
    checkUser(threads >= 1, "probeBandwidth: threads must be >= 1");

    const std::int64_t n = bytes / static_cast<std::int64_t>(sizeof(float));
    std::vector<std::vector<float>> sets(static_cast<std::size_t>(threads));
    for (auto &s : sets)
        s.assign(static_cast<std::size_t>(n), 1.0f);

    std::atomic<bool> go{false};
    std::vector<double> per_thread_gbps(static_cast<std::size_t>(threads),
                                        0.0);
    std::vector<std::thread> workers;
    double elapsed_main = 0.0;

    auto body = [&](int tid) {
        // Warm the working set into the target level.
        streamOnce(sets[static_cast<std::size_t>(tid)].data(), n);
        while (!go.load(std::memory_order_acquire)) {}
        Timer t;
        std::int64_t moved = 0;
        do {
            moved += streamOnce(sets[static_cast<std::size_t>(tid)].data(), n);
        } while (t.seconds() < min_seconds);
        const double secs = t.seconds();
        per_thread_gbps[static_cast<std::size_t>(tid)] =
            static_cast<double>(moved) / secs / 1e9;
        if (tid == 0)
            elapsed_main = secs;
    };

    for (int t = 1; t < threads; ++t)
        workers.emplace_back(body, t);
    go.store(true, std::memory_order_release);
    body(0);
    for (auto &w : workers)
        w.join();

    double total = 0.0;
    for (double g : per_thread_gbps)
        total += g;

    ProbeResult res;
    res.gbps = total / threads;
    res.bytes = bytes;
    res.seconds = elapsed_main;
    return res;
}

void
calibrateToHost(MachineSpec &spec, double min_seconds)
{
    // levels[l].bw describes transfers from level l+1 into level l, so
    // the probe streams a working set resident in the *outer* level:
    // half its capacity for caches, 4x L3 for DRAM.
    const int par_threads = std::max(
        1, std::min<int>(spec.cores,
                         static_cast<int>(
                             std::thread::hardware_concurrency())));
    for (int lvl = LvlReg; lvl <= LvlL3; ++lvl) {
        const std::int64_t ws =
            lvl < LvlL3
                ? std::max<std::int64_t>(
                      4096,
                      spec.levels[static_cast<std::size_t>(lvl + 1)]
                              .capacity_bytes /
                          2)
                : 4 * spec.levels[LvlL3].capacity_bytes;
        MemLevel &l = spec.levels[static_cast<std::size_t>(lvl)];
        l.bw_seq_gbps = probeBandwidth(ws, 1, min_seconds).gbps;
        const double par_per_core =
            probeBandwidth(ws, par_threads, min_seconds).gbps;
        // Private caches keep the per-core figure; the shared DRAM<->L3
        // link reports the aggregate (Sec. 7).
        l.bw_par_gbps =
            lvl == LvlL3 ? par_per_core * par_threads : par_per_core;
    }
    spec.validate();
}

} // namespace mopt
