/**
 * @file
 * Synthetic bandwidth probe (Sec. 7): the paper measures the parallel
 * memory-to-L3 bandwidth and the per-core L3-to-L2 bandwidth with
 * synthetic benchmarks and feeds them into the cost model. This probe
 * runs a read-dominant streaming kernel over a working set sized for a
 * target level and reports GB/s, sequentially or with all cores active.
 */

#ifndef MOPT_MACHINE_BANDWIDTH_PROBE_HH
#define MOPT_MACHINE_BANDWIDTH_PROBE_HH

#include <cstdint>

#include "machine/machine.hh"

namespace mopt {

/** Result of one probe run. */
struct ProbeResult
{
    double gbps = 0.0;          //!< Measured bandwidth, GB/s (per core).
    std::int64_t bytes = 0;     //!< Working-set size used.
    double seconds = 0.0;       //!< Wall time of the timed phase.
};

/**
 * Stream a working set of @p bytes repeatedly and measure read
 * bandwidth. @p threads > 1 runs the probe on that many threads over
 * private working sets and reports the *per-thread* average.
 */
ProbeResult probeBandwidth(std::int64_t bytes, int threads,
                           double min_seconds = 0.05);

/**
 * Calibrate the cache-to-cache bandwidths of @p spec in place using
 * the host machine: for each level, stream a working set that fits
 * that level (half capacity) to estimate the level-to-inner bandwidth.
 * Intended for examples that want host-realistic cost models.
 */
void calibrateToHost(MachineSpec &spec, double min_seconds = 0.05);

} // namespace mopt

#endif // MOPT_MACHINE_BANDWIDTH_PROBE_HH
