#include "machine/machine.hh"

#include "common/logging.hh"

namespace mopt {

const char *
memLevelName(int level)
{
    switch (level) {
      case LvlReg:
        return "Reg";
      case LvlL1:
        return "L1";
      case LvlL2:
        return "L2";
      case LvlL3:
        return "L3";
      default:
        return "?";
    }
}

double
MachineSpec::peakGflopsPerCore() const
{
    return 2.0 * vec_lanes * fma_units * freq_ghz;
}

double
MachineSpec::peakGflops() const
{
    return peakGflopsPerCore() * cores;
}

int
MachineSpec::littlesLawParallelism() const
{
    return fma_latency * fma_units * vec_lanes;
}

std::int64_t
MachineSpec::capacityWords(int level) const
{
    checkUser(level >= 0 && level < NumMemLevels, "bad memory level");
    return levels[static_cast<std::size_t>(level)].capacityWords();
}

double
MachineSpec::bandwidth(int level, bool parallel) const
{
    checkUser(level >= 0 && level < NumMemLevels, "bad memory level");
    const MemLevel &l = levels[static_cast<std::size_t>(level)];
    return parallel ? l.bw_par_gbps : l.bw_seq_gbps;
}

void
MachineSpec::validate() const
{
    checkUser(cores >= 1, "MachineSpec: cores must be >= 1");
    checkUser(vec_lanes >= 1 && fma_units >= 1 && fma_latency >= 1,
              "MachineSpec: SIMD parameters must be >= 1");
    for (int l = 0; l < NumMemLevels; ++l) {
        const MemLevel &lvl = levels[static_cast<std::size_t>(l)];
        checkUser(lvl.capacity_bytes > 0,
                  "MachineSpec: level capacity must be positive");
        checkUser(lvl.bw_seq_gbps > 0 && lvl.bw_par_gbps > 0,
                  "MachineSpec: level bandwidth must be positive");
        if (l > 0) {
            checkUser(lvl.capacity_bytes >
                          levels[static_cast<std::size_t>(l - 1)]
                              .capacity_bytes,
                      "MachineSpec: capacities must grow outward");
        }
    }
}

MachineSpec
i7_9700k()
{
    MachineSpec m;
    m.name = "i7-9700K";
    m.cores = 8;
    m.vec_lanes = 8;  // AVX2
    m.fma_units = 2;
    m.fma_latency = 5;
    m.vec_registers = 16;
    m.freq_ghz = 3.6;
    // Register file: 16 ymm regs * 8 fp32 lanes * 4 B.
    m.levels[LvlReg] = {16 * 8 * 4, 430.0, 430.0};
    // 32 KB L1D per core; L2-to-L1 stream bandwidth.
    m.levels[LvlL1] = {32 * 1024, 210.0, 210.0};
    // 256 KB L2 per core; L3-to-L2 bandwidth (per-core parallel share).
    m.levels[LvlL2] = {256 * 1024, 80.0, 42.0};
    // 12 MB shared L3; DRAM bandwidth (dual-channel DDR4-2666).
    m.levels[LvlL3] = {12 * 1024 * 1024, 21.0, 38.0};
    m.validate();
    return m;
}

MachineSpec
i9_10980xe()
{
    MachineSpec m;
    m.name = "i9-10980XE";
    m.cores = 18;
    m.vec_lanes = 16; // AVX-512
    m.fma_units = 2;
    m.fma_latency = 5;
    m.vec_registers = 32;
    m.freq_ghz = 3.0;
    m.levels[LvlReg] = {32 * 16 * 4, 760.0, 760.0};
    m.levels[LvlL1] = {32 * 1024, 390.0, 390.0};
    // 1 MB L2 per core.
    m.levels[LvlL2] = {1024 * 1024, 110.0, 48.0};
    // 24.75 MB shared L3; quad-channel DDR4-2933.
    m.levels[LvlL3] = {
        static_cast<std::int64_t>(24.75 * 1024 * 1024), 28.0, 84.0};
    m.validate();
    return m;
}

MachineSpec
tinyTestMachine()
{
    MachineSpec m;
    m.name = "tiny";
    m.cores = 2;
    m.vec_lanes = 4;
    m.fma_units = 1;
    m.fma_latency = 4;
    m.vec_registers = 16;
    m.freq_ghz = 1.0;
    m.levels[LvlReg] = {16 * 4 * 4, 64.0, 64.0};
    m.levels[LvlL1] = {1024, 32.0, 32.0};      // 256 words
    m.levels[LvlL2] = {8 * 1024, 16.0, 10.0};  // 2K words
    m.levels[LvlL3] = {64 * 1024, 4.0, 6.0};   // 16K words
    m.validate();
    return m;
}

MachineSpec
machineByName(const std::string &name)
{
    if (name == "i7" || name == "i7-9700K")
        return i7_9700k();
    if (name == "i9" || name == "i9-10980XE")
        return i9_10980xe();
    if (name == "tiny")
        return tinyTestMachine();
    fatal("unknown machine preset: " + name);
}

} // namespace mopt
