/**
 * @file
 * Machine abstraction: a multi-level memory hierarchy (registers, L1,
 * L2, shared L3, DRAM) with per-level capacities and bandwidths, core
 * count and SIMD parameters. Presets model the paper's two evaluation
 * platforms (Intel i7-9700K and i9-10980XE); a synthetic bandwidth
 * probe (bandwidth_probe.hh) can calibrate a spec to the host.
 */

#ifndef MOPT_MACHINE_MACHINE_HH
#define MOPT_MACHINE_MACHINE_HH

#include <array>
#include <cstdint>
#include <string>

namespace mopt {

/** Indices of the tiling levels, innermost first. */
enum MemLevelId {
    LvlReg = 0, //!< Register tile (microkernel).
    LvlL1 = 1,
    LvlL2 = 2,
    LvlL3 = 3,
    NumMemLevels = 4,
};

/** Name of a memory level ("Reg", "L1", "L2", "L3"). */
const char *memLevelName(int level);

/**
 * One level of the hierarchy. The bandwidth fields describe transfers
 * between this level and the *next outer* one (e.g. for LvlL2 they are
 * the L3-to-L2 bandwidths). Following Sec. 7 of the paper, private
 * levels use the sequential (per-core) bandwidth in both modes, while
 * the shared levels use separately probed parallel bandwidths.
 */
struct MemLevel
{
    std::int64_t capacity_bytes = 0; //!< Per-core for Reg/L1/L2, total for L3.
    double bw_seq_gbps = 0.0;  //!< Single-core bandwidth to the outer level.
    double bw_par_gbps = 0.0;  //!< Effective per-core bandwidth, all cores on.

    /** Capacity in fp32 words. */
    std::int64_t capacityWords() const { return capacity_bytes / 4; }
};

/** A complete machine description. */
struct MachineSpec
{
    std::string name;
    int cores = 1;
    int vec_lanes = 8;     //!< fp32 lanes per SIMD register (8 = AVX2).
    int fma_units = 2;     //!< FMA pipes per core.
    int fma_latency = 5;   //!< FMA latency in cycles (Sec. 6 uses 4-6).
    int vec_registers = 16; //!< Architectural SIMD registers per core.
    double freq_ghz = 3.0;
    std::array<MemLevel, NumMemLevels> levels;

    /** Peak fp32 GFLOPS of one core: 2 flops * lanes * units * freq. */
    double peakGflopsPerCore() const;

    /** Peak fp32 GFLOPS of the whole chip. */
    double peakGflops() const;

    /**
     * Independent FMAs needed to saturate the SIMD pipeline by
     * Little's law: latency * units * lanes (Sec. 6: 6*16 = 96 on
     * AVX2 with 2 pipes).
     */
    int littlesLawParallelism() const;

    /** Capacity of @p level in fp32 words. */
    std::int64_t capacityWords(int level) const;

    /**
     * Bandwidth (GB/s) between @p level and the next outer level.
     * @param parallel  use the all-cores-active calibration.
     */
    double bandwidth(int level, bool parallel) const;

    /** Validate invariants (monotone capacities, positive bandwidths). */
    void validate() const;
};

/** The paper's 8-core Intel Core i7-9700K (CoffeeLake) platform. */
MachineSpec i7_9700k();

/** The paper's 18-core Intel Core i9-10980XE (CascadeLake) platform. */
MachineSpec i9_10980xe();

/**
 * A small machine with tiny caches, used by tests so that model
 * assumptions (tiles exceed capacity) hold on small problems.
 */
MachineSpec tinyTestMachine();

/** Look up a preset by name ("i7", "i9", "tiny"). */
MachineSpec machineByName(const std::string &name);

} // namespace mopt

#endif // MOPT_MACHINE_MACHINE_HH
