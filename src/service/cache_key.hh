/**
 * @file
 * Canonical cache keys for the network-level solution cache: a conv2d
 * shape stripped of its layer name, a fingerprint of every
 * MachineSpec field the cost model reads, and a fingerprint of the
 * OptimizerOptions fields that change the search result. Two solves
 * share a key exactly when the optimizer is guaranteed to return the
 * same winning configuration for both, so a cached solution can be
 * replayed for any identically-shaped layer on any identically-specced
 * machine.
 *
 * Hashing is 64-bit FNV-1a over a canonical byte encoding (integers as
 * little-endian two's complement, doubles as their IEEE-754 bit
 * pattern), so key hashes are stable across runs and across processes
 * — a requirement for the persistent journal, which stores fingerprints
 * verbatim.
 */

#ifndef MOPT_SERVICE_CACHE_KEY_HH
#define MOPT_SERVICE_CACHE_KEY_HH

#include <cstdint>
#include <string>

#include "conv/problem.hh"
#include "machine/machine.hh"
#include "optimizer/mopt_optimizer.hh"

namespace mopt {

/** 64-bit FNV-1a offset basis (the seed of an empty hash). */
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

/** Fold @p len bytes at @p data into the running FNV-1a state @p h. */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t h = kFnvOffset);

/** Fold one 64-bit integer (canonical little-endian encoding). */
std::uint64_t fnv1aU64(std::uint64_t v, std::uint64_t h);

/** Fold one double via its IEEE-754 bit pattern (-0.0 folds as +0.0). */
std::uint64_t fnv1aDouble(double v, std::uint64_t h);

/**
 * Identity of one (problem, machine, search settings) solve.
 * Construct with make(); the fields are public so tests and the
 * journal loader can rebuild keys from their stored parts.
 */
struct CacheKey
{
    /** The shape with its layer name cleared (names never affect the
     *  solution, so "R2" and an identically-shaped "layer1.0.conv1"
     *  share one entry). */
    ConvProblem problem;

    /** Fingerprint of the machine description (all model-visible
     *  fields; the preset name is excluded). */
    std::uint64_t machine_fp = 0;

    /** Fingerprint of the search settings (parallel mode, permutation
     *  mode, effort, seed). top_k and threads are excluded: the former
     *  only truncates the ranked list below the cached winner, and the
     *  search result is thread-count invariant by design (see
     *  docs/ARCHITECTURE.md). */
    std::uint64_t settings_fp = 0;

    static CacheKey make(const ConvProblem &p, const MachineSpec &m,
                         const OptimizerOptions &opts);

    /** @p p with its name cleared (the canonical shape). */
    static ConvProblem canonicalProblem(const ConvProblem &p);

    static std::uint64_t machineFingerprint(const MachineSpec &m);
    static std::uint64_t settingsFingerprint(const OptimizerOptions &o);

    /** Stable 64-bit hash of the whole key (shard + bucket index). */
    std::uint64_t hash() const;

    bool operator==(const CacheKey &o) const = default;

    /** Compact human-readable form for logs and error messages. */
    std::string str() const;
};

} // namespace mopt

#endif // MOPT_SERVICE_CACHE_KEY_HH
