#include "service/cache_key.hh"

#include <cmath>
#include <cstring>
#include <sstream>

namespace mopt {

std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t h)
{
    constexpr std::uint64_t kPrime = 1099511628211ull;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kPrime;
    }
    return h;
}

std::uint64_t
fnv1aU64(std::uint64_t v, std::uint64_t h)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<unsigned char>(v >> (8 * i));
    return fnv1a(bytes, sizeof(bytes), h);
}

std::uint64_t
fnv1aDouble(double v, std::uint64_t h)
{
    if (v == 0.0)
        v = 0.0; // Collapse -0.0 onto +0.0.
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return fnv1aU64(bits, h);
}

ConvProblem
CacheKey::canonicalProblem(const ConvProblem &p)
{
    ConvProblem c = p;
    c.name.clear();
    return c;
}

std::uint64_t
CacheKey::machineFingerprint(const MachineSpec &m)
{
    std::uint64_t h = kFnvOffset;
    h = fnv1aU64(static_cast<std::uint64_t>(m.cores), h);
    h = fnv1aU64(static_cast<std::uint64_t>(m.vec_lanes), h);
    h = fnv1aU64(static_cast<std::uint64_t>(m.fma_units), h);
    h = fnv1aU64(static_cast<std::uint64_t>(m.fma_latency), h);
    h = fnv1aU64(static_cast<std::uint64_t>(m.vec_registers), h);
    h = fnv1aDouble(m.freq_ghz, h);
    for (const MemLevel &lvl : m.levels) {
        h = fnv1aU64(static_cast<std::uint64_t>(lvl.capacity_bytes), h);
        h = fnv1aDouble(lvl.bw_seq_gbps, h);
        h = fnv1aDouble(lvl.bw_par_gbps, h);
    }
    return h;
}

std::uint64_t
CacheKey::settingsFingerprint(const OptimizerOptions &o)
{
    std::uint64_t h = kFnvOffset;
    h = fnv1aU64(o.parallel ? 1 : 0, h);
    h = fnv1aU64(static_cast<std::uint64_t>(o.perm_mode), h);
    h = fnv1aU64(static_cast<std::uint64_t>(o.effort), h);
    h = fnv1aU64(o.seed, h);
    return h;
}

CacheKey
CacheKey::make(const ConvProblem &p, const MachineSpec &m,
               const OptimizerOptions &opts)
{
    CacheKey k;
    k.problem = canonicalProblem(p);
    k.machine_fp = machineFingerprint(m);
    k.settings_fp = settingsFingerprint(opts);
    return k;
}

std::uint64_t
CacheKey::hash() const
{
    std::uint64_t h = kFnvOffset;
    h = fnv1aU64(static_cast<std::uint64_t>(problem.n), h);
    h = fnv1aU64(static_cast<std::uint64_t>(problem.k), h);
    h = fnv1aU64(static_cast<std::uint64_t>(problem.c), h);
    h = fnv1aU64(static_cast<std::uint64_t>(problem.r), h);
    h = fnv1aU64(static_cast<std::uint64_t>(problem.s), h);
    h = fnv1aU64(static_cast<std::uint64_t>(problem.h), h);
    h = fnv1aU64(static_cast<std::uint64_t>(problem.w), h);
    h = fnv1aU64(static_cast<std::uint64_t>(problem.stride), h);
    h = fnv1aU64(static_cast<std::uint64_t>(problem.dilation), h);
    // groups participates unconditionally: hashes are recomputed at
    // runtime (never persisted), so folding it in cannot invalidate
    // old journals, and grouped shapes must never collide with their
    // dense twins.
    h = fnv1aU64(static_cast<std::uint64_t>(problem.groups), h);
    h = fnv1aU64(machine_fp, h);
    h = fnv1aU64(settings_fp, h);
    return h;
}

std::string
CacheKey::str() const
{
    std::ostringstream oss;
    oss << "CacheKey{" << problem.summary() << ", machine=" << std::hex
        << machine_fp << ", settings=" << settings_fp << std::dec << "}";
    return oss.str();
}

} // namespace mopt
