/**
 * @file
 * Single-flight solve scheduler: the one place cold-miss optimizeConv
 * work is admitted, deduplicated, and bounded.
 *
 * Problem it solves: under cold fleet traffic the serving stack used
 * to treat the solver as a critical section — one global mutex around
 * every miss — so a moptd node degenerated to one solve at a time and
 * N clients asking for the *same* shape queued N redundant solves.
 *
 * Design: a per-CacheKey in-flight table of shared futures over a
 * bounded budget of runner threads.
 *
 *  - **Single flight.** The first requester of a key becomes its
 *    flight; every concurrent duplicate joins the flight's
 *    std::shared_future instead of queuing a solve of its own, so K
 *    concurrent cold requests for one shape run exactly one
 *    optimizeConv. The flight is registered before the solve waits
 *    for a runner, so coalescing works even while the budget is
 *    exhausted.
 *  - **Bounded concurrency.** `concurrency` runner threads execute
 *    flights; distinct shapes solve concurrently, up to the budget.
 *  - **Width partitioning.** Runners share one ThreadPool and each
 *    solve runs on a ThreadPool::SubWidth handle of
 *    max(1, total width / concurrency) participants, so N concurrent
 *    solves split the machine instead of oversubscribing it
 *    (total width = OptimizerOptions::threads, 0 = hardware).
 *  - **Determinism.** optimizeConv is bit-identical for any worker
 *    width (results reduce in job order — see docs/ARCHITECTURE.md),
 *    so plans are byte-identical for any `concurrency`, and
 *    concurrency 1 reproduces the historical serialized behavior.
 *  - **Failure containment.** A throwing solve propagates to every
 *    waiter via the shared future and the in-flight entry is erased
 *    first, so the key is retried fresh on the next request — no
 *    poisoned entries.
 *
 * Thread-safety: all public members may be called concurrently.
 */

#ifndef MOPT_SERVICE_SOLVE_SCHEDULER_HH
#define MOPT_SERVICE_SOLVE_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/deadline.hh"
#include "common/thread_pool.hh"
#include "machine/machine.hh"
#include "optimizer/mopt_optimizer.hh"
#include "service/cache_key.hh"
#include "service/solution_cache.hh"

namespace mopt {

/** Construction-time options of a SolveScheduler. */
struct SolveSchedulerOptions
{
    SolveSchedulerOptions() = default;
    SolveSchedulerOptions(int c) : concurrency(c) {}

    /** Maximum concurrent optimizeConv solves (runner threads). 1
     *  reproduces the historical one-solve-at-a-time behavior. */
    int concurrency = 1;

    /**
     * Called on a runner thread right after a fresh solve's result is
     * inserted into the cache — the hook behind warm-entry
     * replication (the server enqueues the record for its peers).
     * Only *paid* solves fire it: cache hits and coalesced waiters
     * never do, and neither do inserts that bypass the scheduler
     * (journal replay, replication applies), so a replicated entry
     * cannot ping-pong back to its origin. The third argument is the
     * journal sequence the cache assigned to the insert (0 without a
     * cache), which replication forwards so replicas preserve the
     * origin's sequence. Must not throw; keep it cheap (it runs
     * inside the solve path).
     */
    std::function<void(const CacheKey &, const CachedSolution &,
                       std::int64_t)>
        on_insert;
};

/** Monotonic scheduler counters (snapshot via stats()). */
struct SolveSchedulerStats
{
    std::int64_t solves = 0;    //!< optimizeConv invocations run.
    std::int64_t coalesced = 0; //!< Requests that joined a flight.
    int in_flight = 0;          //!< Solves executing right now.
    int peak_concurrency = 0;   //!< Max simultaneous solves observed.
};

/**
 * What one request got back. cache_hit and coalesced describe *this
 * caller's* provenance: a coalesced waiter reports zero solve cost
 * (the flight's leader pays it), mirroring how a cache hit reports
 * zero.
 */
struct ScheduledSolve
{
    CacheKey key; //!< The canonical identity that was solved.
    CachedSolution sol;
    bool cache_hit = false;   //!< Served straight from the cache.
    bool coalesced = false;   //!< Waited on another request's solve.
    double solve_seconds = 0; //!< Solve wall time (0 unless we paid).
    long solver_evals = 0;    //!< Model evaluations (0 unless we paid).
};

/**
 * Handle on a submitted solve: the shared result plus how this
 * particular submission was served. wait() blocks and composes the
 * caller-side ScheduledSolve (rethrowing the solve's exception, if
 * any).
 */
struct SolveTicket
{
    std::shared_future<ScheduledSolve> future;
    bool cache_hit = false; //!< Ready future, served from the cache.
    bool coalesced = false; //!< Joined an already-in-flight solve.

    /** Block for the result; zero the cost fields unless this ticket
     *  is the flight that paid for them. */
    ScheduledSolve wait() const;

    /**
     * wait(), but give up at @p dl: false on expiry (the result lands
     * in @p out only on true). The flight itself keeps running — its
     * result still reaches the cache — only *this* waiter abandons
     * it, which is exactly what a deadline-bounded server worker
     * wants: answer the client "too late" now, serve the shape from
     * cache next time.
     */
    bool waitFor(const Deadline &dl, ScheduledSolve &out) const;
};

/**
 * The scheduler. Owns `concurrency` runner threads and one shared
 * ThreadPool whose width the runners partition. Construct one per
 * (machine, settings, cache) service instance and share it between
 * every front end (RPC solve handlers, NetworkOptimizer) so their
 * duplicate requests coalesce against the same in-flight table.
 */
class SolveScheduler
{
  public:
    /**
     * @param machine  machine description every solve targets
     * @param opts     search settings applied to every solve
     *                 (opts.threads is the *total* pool width that
     *                 gets partitioned; 0 = hardware)
     * @param cache    shared solution cache (not owned; may be null —
     *                 then only in-flight coalescing deduplicates)
     * @param options  concurrency budget
     */
    SolveScheduler(const MachineSpec &machine,
                   const OptimizerOptions &opts, SolutionCache *cache,
                   SolveSchedulerOptions options = {});

    /** Fails (FatalError) any still-queued flights, then joins the
     *  runners (the in-flight solves complete first). */
    ~SolveScheduler();

    SolveScheduler(const SolveScheduler &) = delete;
    SolveScheduler &operator=(const SolveScheduler &) = delete;

    /**
     * Request the solution for @p p (canonicalized internally):
     * cache hit, join of an in-flight solve, or a fresh flight —
     * without blocking. Call ticket.wait() for the result.
     */
    SolveTicket submit(const ConvProblem &p);

    /** submit(p).wait(): the blocking convenience used by the RPC
     *  solve handler (workers block on the shared future). */
    ScheduledSolve solve(const ConvProblem &p);

    SolveSchedulerStats stats() const;

    /** The configured budget (>= 1). */
    int concurrency() const { return options_.concurrency; }

    /** Participating threads per solve (the width partition). */
    std::size_t solveWidth() const { return solve_width_; }

    /** Identity guards, so a front end built from separate (machine,
     *  opts) copies can assert it agrees with this scheduler. */
    std::uint64_t machineFingerprint() const { return machine_fp_; }
    std::uint64_t settingsFingerprint() const { return settings_fp_; }

  private:
    /** One queued-or-running solve. */
    struct Flight
    {
        CacheKey key;
        ConvProblem problem; //!< Canonical (name stripped).
        std::promise<ScheduledSolve> promise;
    };

    void runnerLoop();

    /** The in-flight future for @p key, or nullptr. Caller holds mu_. */
    const std::shared_future<ScheduledSolve> *
    findFlight(const CacheKey &key) const;

    void eraseFlight(const CacheKey &key);

    MachineSpec machine_;
    OptimizerOptions opts_;
    SolutionCache *cache_;
    SolveSchedulerOptions options_;
    std::uint64_t machine_fp_;
    std::uint64_t settings_fp_;

    std::size_t solve_width_; //!< Participants per solve.
    ThreadPool pool_;         //!< Helpers shared by all runners.

    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
    std::deque<Flight> queue_; //!< Flights awaiting a runner.

    struct FlightRef
    {
        CacheKey key;
        std::shared_future<ScheduledSolve> future;
    };
    /** key hash -> flights (collision chain), queued or running. */
    std::unordered_map<std::uint64_t, std::vector<FlightRef>> flights_;

    std::int64_t solves_ = 0;
    std::int64_t coalesced_ = 0;
    int in_flight_ = 0;
    int peak_concurrency_ = 0;

    std::vector<std::thread> runners_;
};

} // namespace mopt

#endif // MOPT_SERVICE_SOLVE_SCHEDULER_HH
