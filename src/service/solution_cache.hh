/**
 * @file
 * Thread-safe, sharded LRU cache of optimizer solutions, keyed by
 * CacheKey, with optional JSON-lines persistence.
 *
 * Concurrency: the key hash selects one of N shards (a power of two);
 * each shard owns its own mutex, hash map, and LRU list (the same
 * list+map idiom as the cache *simulator* in src/cachesim/lru_cache.hh,
 * which models a hardware cache and is unrelated to this service-level
 * store). Lookups and inserts on different shards never contend;
 * capacity is enforced per shard (total capacity / shards), so an
 * insert takes one shard lock (plus the journal mutex, outside any
 * shard lock, when persistence is on); statistics are relaxed
 * atomics.
 *
 * Persistence: when a journal path is configured, the cache loads the
 * journal on open (replaying inserts in order, so the newest entries
 * are the most-recently-used) and appends one JSON line per insert.
 * Lines that fail to parse — a torn final line after a crash, or
 * hand-edited garbage — are skipped with a warning, never fatal. The
 * journal is compacted (rewritten with only the live entries, in LRU
 * order) when it has grown past compact_factor times the live entry
 * count, and can be compacted explicitly.
 *
 * One writing process per journal: thread-safety covers threads
 * inside one process. Concurrent *processes* appending the same
 * journal file are not coordinated — a compaction in one process
 * renames the file out from under the others' append streams, losing
 * their inserts. Share a journal across machines by copying the file,
 * not by concurrent mutation.
 */

#ifndef MOPT_SERVICE_SOLUTION_CACHE_HH
#define MOPT_SERVICE_SOLUTION_CACHE_HH

#include <atomic>
#include <cstdint>
#include <fstream>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "model/tile_config.hh"
#include "service/cache_key.hh"

namespace mopt {

/** The winning configuration of one solve, as stored in the cache. */
struct CachedSolution
{
    ExecConfig config;             //!< Integerized, load-balanced tiling.
    double predicted_seconds = 0;  //!< Model-predicted execution time.
    std::string perm_label;        //!< Pruned-class names per level.

    bool operator==(const CachedSolution &o) const = default;
};

/** Construction-time options of a SolutionCache. */
struct SolutionCacheOptions
{
    /** Total entry capacity across all shards. */
    std::size_t capacity = 4096;

    /** Shard count; rounded up to a power of two, then halved while
     *  it exceeds capacity (so every shard holds >= 1 entry and the
     *  count stays maskable). */
    int shards = 8;

    /** Journal file path; empty = in-memory only. */
    std::string journal_path;

    /** Compact the journal when its line count exceeds
     *  compact_factor * live entries + 16. */
    double compact_factor = 2.0;
};

/** One exported live entry: key, solution, and the journal sequence
 *  it was inserted under (0 for entries from pre-sequence journals). */
struct SolutionCacheRecord
{
    CacheKey key;
    CachedSolution sol;
    std::int64_t seq = 0;
};

/** Monotonic operation counters (snapshot via stats()). */
struct SolutionCacheStats
{
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t inserts = 0;
    std::int64_t evictions = 0;
    std::int64_t journal_loaded = 0;  //!< Entries replayed on open.
    std::int64_t journal_skipped = 0; //!< Corrupt lines ignored on open.
};

/**
 * Per-entry telemetry (snapshot via entryStats()): how often each
 * live entry has been served since it was inserted (hit counts
 * survive journal round-trips, so a warm fleet can shed entries that
 * no longer earn their keep).
 */
struct SolutionCacheEntryStats
{
    CacheKey key;
    std::int64_t hits = 0; //!< lookup() hits on this entry.
};

/**
 * Sharded LRU solution cache. All public member functions are safe to
 * call concurrently from any number of threads.
 */
class SolutionCache
{
  public:
    explicit SolutionCache(SolutionCacheOptions opts = {});

    /** Inserts are journaled eagerly, so no data flush is needed;
     *  compacts the journal when it exceeds the compaction threshold
     *  or when any entry's hit counter changed (hit counts reach the
     *  file only through compaction). */
    ~SolutionCache();

    SolutionCache(const SolutionCache &) = delete;
    SolutionCache &operator=(const SolutionCache &) = delete;

    /**
     * Look up @p key; on hit, promote the entry to most-recently-used,
     * copy the solution into @p out (when non-null) and return true.
     */
    bool lookup(const CacheKey &key, CachedSolution *out);

    /**
     * Insert (or overwrite) the solution for @p key, evicting the
     * shard's least-recently-used entry when the shard is full. When a
     * journal is configured the entry is appended before the call
     * returns. Returns the journal sequence number assigned to the
     * insert (the node's high-water mark after it).
     */
    std::int64_t insert(const CacheKey &key, const CachedSolution &sol);

    /**
     * Insert an entry received from a *peer* (replication push,
     * prefetch, or anti-entropy pull), preserving the sequence number
     * it carries instead of assigning a fresh one. The node's
     * high-water mark absorbs @p seq Lamport-style (max), so sequence
     * numbers a node assigns after hearing from a peer always exceed
     * everything it has already seen — which is what makes the
     * `since` delta cursor effective across nodes.
     */
    void applyReplica(const CacheKey &key, const CachedSolution &sol,
                      std::int64_t seq);

    /** The node's journal high-water sequence: the largest sequence
     *  assigned locally or absorbed from a peer (0 = nothing yet). */
    std::int64_t journalSeq() const
    {
        return journal_seq_.load(std::memory_order_relaxed);
    }

    /** Live entries across all shards. */
    std::size_t size() const;

    /** Actual shard count (power of two). */
    int shardCount() const
    {
        return static_cast<int>(shards_.size());
    }

    /** Shard index of @p key (exposed for shard-independence tests). */
    int shardOf(const CacheKey &key) const;

    /** Snapshot of the operation counters. */
    SolutionCacheStats stats() const;

    /**
     * Snapshot of every live entry's key and hit count, most recently
     * used first within each shard, shards in index order. O(entries);
     * takes each shard lock once.
     */
    std::vector<SolutionCacheEntryStats> entryStats() const;

    /**
     * Snapshot of every live entry (key, solution, sequence) whose
     * sequence exceeds @p since, same traversal order as entryStats.
     * The default (-1) exports everything, including pre-sequence
     * entries carrying seq 0. Feeds warm-entry replication: a joining
     * peer pulls this — with its own high-water mark as the cursor —
     * and inserts what it is missing.
     */
    std::vector<SolutionCacheRecord>
    exportEntries(std::int64_t since = -1) const;

    /** lookup() without the hit accounting or LRU touch: true when
     *  @p key is present. Lets the replication path answer "do I
     *  already hold this?" without skewing telemetry. */
    bool contains(const CacheKey &key) const;

    /**
     * Rewrite the journal with exactly the live entries, least recent
     * first (so a reload reproduces the LRU order). No-op without a
     * journal.
     *
     * Telemetry-driven shedding: when the cache is capacity-limited
     * (live entries at the configured capacity), compaction drops
     * entries whose hit counter is still zero *and* that have already
     * survived a previous compaction — they had a full compaction
     * cycle to be served and never were, so under pressure the slots
     * and the journal go to entries that earn their keep. Entries
     * inserted since the last compaction are exempt (a cold burst's
     * fresh solutions must not be thrashed away by the compaction its
     * own inserts trigger). Shed entries count as evictions. An
     * unpressured cache never sheds, and the journal format is
     * unchanged either way.
     */
    void compact();

  private:
    struct Entry
    {
        CacheKey key;
        CachedSolution sol;
        std::int64_t hits = 0; //!< lookup() hits on this entry.
        std::int64_t seq = 0;  //!< Journal sequence (0 = pre-sequence).

        /** Value of compact_epoch_ when the entry was inserted; an
         *  entry is "young" (exempt from zero-hit shedding) until a
         *  compaction has passed since. */
        std::int64_t epoch = 0;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::list<Entry> lru; //!< Front = most recently used.
        std::unordered_map<std::uint64_t,
                           std::vector<std::list<Entry>::iterator>>
            map; //!< hash -> entries (collision chain).
    };

    /** Insert into the in-memory structure only; returns false when
     *  @p key was already present (value overwritten, no journal
     *  append needed by the loader). @p hits seeds the entry's hit
     *  counter (journal replay restores the persisted count) and
     *  @p seq its journal sequence (an overwrite keeps the larger). */
    bool insertInMemory(const CacheKey &key, const CachedSolution &sol,
                        std::int64_t hits = 0, std::int64_t seq = 0);

    void loadJournal();
    void appendJournalLine(const Entry &e);
    bool journalNeedsCompaction() const;

    SolutionCacheOptions opts_;
    std::size_t per_shard_capacity_;
    std::vector<std::unique_ptr<Shard>> shards_;

    /** Operation counters and the live-entry count are atomics so the
     *  hot lookup/insert path touches only its shard's mutex. */
    std::atomic<std::int64_t> hits_{0};
    std::atomic<std::int64_t> misses_{0};
    std::atomic<std::int64_t> inserts_{0};
    std::atomic<std::int64_t> evictions_{0};
    std::atomic<std::int64_t> live_{0};
    std::int64_t journal_loaded_ = 0;  //!< Written only during open.
    std::int64_t journal_skipped_ = 0; //!< Written only during open.

    mutable std::mutex journal_mu_;
    std::ofstream journal_;
    std::atomic<std::int64_t> journal_lines_{0}; //!< Lines in the file.

    /** Bumped at each compact(); see Entry::epoch. */
    std::atomic<std::int64_t> compact_epoch_{0};

    /** Journal high-water sequence; see journalSeq(). */
    std::atomic<std::int64_t> journal_seq_{0};
};

/**
 * Serialize one (key, solution) pair as a single JSON line. @p hits
 * > 0 adds a "hits" telemetry field and @p seq > 0 a "seq" journal-
 * sequence field (absent fields read back as 0, so journals written
 * before either field existed stay loadable). This is also the RPC
 * wire encoding of a solution record (src/rpc/).
 */
std::string solutionToJsonLine(const CacheKey &key,
                               const CachedSolution &sol,
                               std::int64_t hits = 0,
                               std::int64_t seq = 0);

/**
 * Parse a journal line produced by solutionToJsonLine. Returns false
 * (leaving outputs untouched) on malformed input of any kind.
 * @p hits / @p seq, when non-null, receive the entry's persisted hit
 * count and journal sequence (0 when the field is absent).
 */
bool solutionFromJsonLine(const std::string &line, CacheKey &key,
                          CachedSolution &sol,
                          std::int64_t *hits = nullptr,
                          std::int64_t *seq = nullptr);

/**
 * Parse an already-decoded JSON object in the journal's record format
 * (the RPC protocol embeds records as nested objects). Same contract
 * as solutionFromJsonLine.
 */
bool solutionFromJson(const JsonValue &root, CacheKey &key,
                      CachedSolution &sol, std::int64_t *hits = nullptr,
                      std::int64_t *seq = nullptr);

} // namespace mopt

#endif // MOPT_SERVICE_SOLUTION_CACHE_HH
