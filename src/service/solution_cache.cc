#include "service/solution_cache.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/logging.hh"

namespace mopt {

namespace {

/**
 * Minimal JSON value + recursive-descent parser, just enough for the
 * journal's own output format. Kept private to this translation unit:
 * the journal is the only JSON the library reads.
 */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &kv : obj)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        return pos_ == s_.size(); // Trailing garbage is corruption.
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
        case '{': return parseObject(out);
        case '[': return parseArray(out);
        case '"':
            out.type = JsonValue::Type::String;
            return parseString(out.str);
        case 't':
            out.type = JsonValue::Type::Bool;
            out.b = true;
            return literal("true");
        case 'f':
            out.type = JsonValue::Type::Bool;
            out.b = false;
            return literal("false");
        case 'n':
            out.type = JsonValue::Type::Null;
            return literal("null");
        default: return parseNumber(out);
        }
    }

    bool
    parseString(std::string &out)
    {
        if (s_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_++];
                switch (e) {
                case '"': c = '"'; break;
                case '\\': c = '\\'; break;
                case '/': c = '/'; break;
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'r': c = '\r'; break;
                case 'b': c = '\b'; break;
                case 'f': c = '\f'; break;
                case 'u': {
                    // The journal never emits \u escapes for its own
                    // keys; decode the code unit as Latin-1 best-effort.
                    if (pos_ + 4 > s_.size())
                        return false;
                    unsigned v = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char hc = s_[pos_++];
                        v <<= 4;
                        if (hc >= '0' && hc <= '9')
                            v |= static_cast<unsigned>(hc - '0');
                        else if (hc >= 'a' && hc <= 'f')
                            v |= static_cast<unsigned>(hc - 'a' + 10);
                        else if (hc >= 'A' && hc <= 'F')
                            v |= static_cast<unsigned>(hc - 'A' + 10);
                        else
                            return false;
                    }
                    c = static_cast<char>(v & 0xff);
                    break;
                }
                default: return false;
                }
            }
            out += c;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // Closing quote.
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return false;
        try {
            std::size_t used = 0;
            out.num = std::stod(s_.substr(start, pos_ - start), &used);
            if (used != pos_ - start || !std::isfinite(out.num))
                return false;
        } catch (...) {
            return false;
        }
        out.type = JsonValue::Type::Number;
        return true;
    }

    bool
    parseArray(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue v;
            skipWs();
            if (!parseValue(v))
                return false;
            out.arr.push_back(std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (pos_ >= s_.size() || !parseString(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return false;
            ++pos_;
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.obj.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
parseHex16(const std::string &s, std::uint64_t &out)
{
    if (s.size() != 16)
        return false;
    std::uint64_t v = 0;
    for (const char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    out = v;
    return true;
}

/** Integer field of @p obj that is an exact whole number. */
bool
getInt(const JsonValue &obj, const char *key, std::int64_t &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->type != JsonValue::Type::Number)
        return false;
    if (v->num != std::floor(v->num) || std::abs(v->num) > 1e15)
        return false;
    out = static_cast<std::int64_t>(v->num);
    return true;
}

bool
getTiles(const JsonValue &arr, IntTileVec &out)
{
    if (arr.type != JsonValue::Type::Array ||
        arr.arr.size() != static_cast<std::size_t>(NumDims))
        return false;
    for (int d = 0; d < NumDims; ++d) {
        const JsonValue &v = arr.arr[static_cast<std::size_t>(d)];
        if (v.type != JsonValue::Type::Number ||
            v.num != std::floor(v.num) || v.num < 1 || v.num > 1e15)
            return false;
        out[static_cast<std::size_t>(d)] =
            static_cast<std::int64_t>(v.num);
    }
    return true;
}

void
appendTiles(std::ostringstream &oss, const IntTileVec &t)
{
    oss << "[";
    for (int d = 0; d < NumDims; ++d)
        oss << (d ? "," : "") << t[static_cast<std::size_t>(d)];
    oss << "]";
}

std::size_t
roundUpPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

std::string
solutionToJsonLine(const CacheKey &key, const CachedSolution &sol)
{
    const ConvProblem &p = key.problem;
    std::ostringstream oss;
    oss << "{\"v\":1"
        << ",\"n\":" << p.n << ",\"k\":" << p.k << ",\"c\":" << p.c
        << ",\"r\":" << p.r << ",\"s\":" << p.s << ",\"h\":" << p.h
        << ",\"w\":" << p.w << ",\"stride\":" << p.stride
        << ",\"dilation\":" << p.dilation
        << ",\"machine\":\"" << hex16(key.machine_fp) << "\""
        << ",\"settings\":\"" << hex16(key.settings_fp) << "\""
        << ",\"perm\":[";
    for (int l = 0; l < NumMemLevels; ++l)
        oss << (l ? "," : "") << "\""
            << sol.config.perm[static_cast<std::size_t>(l)].str() << "\"";
    oss << "],\"tiles\":[";
    for (int l = 0; l < NumMemLevels; ++l) {
        if (l)
            oss << ",";
        appendTiles(oss, sol.config.tiles[static_cast<std::size_t>(l)]);
    }
    oss << "],\"par\":";
    appendTiles(oss, sol.config.par);
    char pred[32];
    std::snprintf(pred, sizeof(pred), "%.17g", sol.predicted_seconds);
    oss << ",\"pred_s\":" << pred << ",\"label\":\""
        << jsonEscape(sol.perm_label) << "\"}";
    return oss.str();
}

bool
solutionFromJsonLine(const std::string &line, CacheKey &key,
                     CachedSolution &sol)
{
    JsonValue root;
    if (!JsonParser(line).parse(root) ||
        root.type != JsonValue::Type::Object)
        return false;

    std::int64_t version = 0;
    if (!getInt(root, "v", version) || version != 1)
        return false;

    CacheKey k;
    std::int64_t stride = 0, dilation = 0;
    if (!getInt(root, "n", k.problem.n) ||
        !getInt(root, "k", k.problem.k) ||
        !getInt(root, "c", k.problem.c) ||
        !getInt(root, "r", k.problem.r) ||
        !getInt(root, "s", k.problem.s) ||
        !getInt(root, "h", k.problem.h) ||
        !getInt(root, "w", k.problem.w) ||
        !getInt(root, "stride", stride) ||
        !getInt(root, "dilation", dilation))
        return false;
    k.problem.stride = static_cast<int>(stride);
    k.problem.dilation = static_cast<int>(dilation);

    const JsonValue *machine = root.find("machine");
    const JsonValue *settings = root.find("settings");
    if (!machine || machine->type != JsonValue::Type::String ||
        !parseHex16(machine->str, k.machine_fp) || !settings ||
        settings->type != JsonValue::Type::String ||
        !parseHex16(settings->str, k.settings_fp))
        return false;

    CachedSolution s;
    const JsonValue *perm = root.find("perm");
    const JsonValue *tiles = root.find("tiles");
    if (!perm || perm->type != JsonValue::Type::Array ||
        perm->arr.size() != static_cast<std::size_t>(NumMemLevels) ||
        !tiles || tiles->type != JsonValue::Type::Array ||
        tiles->arr.size() != static_cast<std::size_t>(NumMemLevels))
        return false;
    for (int l = 0; l < NumMemLevels; ++l) {
        const auto sl = static_cast<std::size_t>(l);
        if (perm->arr[sl].type != JsonValue::Type::String)
            return false;
        try {
            s.config.perm[sl] = Permutation::parse(perm->arr[sl].str);
        } catch (const FatalError &) {
            return false;
        }
        if (!getTiles(tiles->arr[sl], s.config.tiles[sl]))
            return false;
    }
    const JsonValue *par = root.find("par");
    if (!par || !getTiles(*par, s.config.par))
        return false;

    const JsonValue *pred = root.find("pred_s");
    if (!pred || pred->type != JsonValue::Type::Number || pred->num < 0)
        return false;
    s.predicted_seconds = pred->num;

    const JsonValue *label = root.find("label");
    if (!label || label->type != JsonValue::Type::String)
        return false;
    s.perm_label = label->str;

    try {
        k.problem.validate();
    } catch (const FatalError &) {
        return false;
    }

    key = std::move(k);
    sol = std::move(s);
    return true;
}

SolutionCache::SolutionCache(SolutionCacheOptions opts)
    : opts_(std::move(opts))
{
    opts_.capacity = std::max<std::size_t>(1, opts_.capacity);
    // Power of two so shardOf can mask; halved (staying a power of
    // two) until every shard holds at least one entry.
    std::size_t shards = roundUpPow2(
        static_cast<std::size_t>(std::max(1, opts_.shards)));
    while (shards > opts_.capacity)
        shards >>= 1;
    per_shard_capacity_ = std::max<std::size_t>(1, opts_.capacity / shards);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
    if (!opts_.journal_path.empty())
        loadJournal();
}

SolutionCache::~SolutionCache()
{
    if (journal_.is_open() && journalNeedsCompaction())
        compact();
}

int
SolutionCache::shardOf(const CacheKey &key) const
{
    // shards_.size() is a power of two; the low hash bits pick a shard
    // and the full hash indexes the shard's bucket map.
    return static_cast<int>(key.hash() &
                            (shards_.size() - 1));
}

bool
SolutionCache::lookup(const CacheKey &key, CachedSolution *out)
{
    Shard &sh = *shards_[static_cast<std::size_t>(shardOf(key))];
    const std::uint64_t h = key.hash();
    bool hit = false;
    {
        std::lock_guard<std::mutex> lock(sh.mu);
        auto it = sh.map.find(h);
        if (it != sh.map.end()) {
            for (auto &entry_it : it->second) {
                if (entry_it->key == key) {
                    sh.lru.splice(sh.lru.begin(), sh.lru, entry_it);
                    if (out)
                        *out = entry_it->sol;
                    hit = true;
                    break;
                }
            }
        }
    }
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    return hit;
}

bool
SolutionCache::insertInMemory(const CacheKey &key, const CachedSolution &sol)
{
    Shard &sh = *shards_[static_cast<std::size_t>(shardOf(key))];
    const std::uint64_t h = key.hash();
    bool evicted = false;
    bool fresh = true;
    {
        std::lock_guard<std::mutex> lock(sh.mu);
        auto it = sh.map.find(h);
        if (it != sh.map.end()) {
            for (auto &entry_it : it->second) {
                if (entry_it->key == key) {
                    entry_it->sol = sol;
                    sh.lru.splice(sh.lru.begin(), sh.lru, entry_it);
                    fresh = false;
                    break;
                }
            }
        }
        if (fresh) {
            sh.lru.push_front(Entry{key, sol});
            sh.map[h].push_back(sh.lru.begin());
            if (sh.lru.size() > per_shard_capacity_) {
                const Entry &victim = sh.lru.back();
                const std::uint64_t vh = victim.key.hash();
                auto vit = sh.map.find(vh);
                checkInvariant(vit != sh.map.end(),
                               "SolutionCache: victim missing from map");
                auto &chain = vit->second;
                chain.erase(std::find(chain.begin(), chain.end(),
                                      std::prev(sh.lru.end())));
                if (chain.empty())
                    sh.map.erase(vit);
                sh.lru.pop_back();
                evicted = true;
            }
        }
    }
    inserts_.fetch_add(1, std::memory_order_relaxed);
    if (evicted)
        evictions_.fetch_add(1, std::memory_order_relaxed);
    if (fresh && !evicted)
        live_.fetch_add(1, std::memory_order_relaxed);
    return fresh;
}

void
SolutionCache::insert(const CacheKey &key, const CachedSolution &sol)
{
    insertInMemory(key, sol);
    if (!opts_.journal_path.empty()) {
        appendJournalLine(Entry{key, sol});
        if (journalNeedsCompaction())
            compact();
    }
}

std::size_t
SolutionCache::size() const
{
    std::size_t n = 0;
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mu);
        n += sh->lru.size();
    }
    return n;
}

SolutionCacheStats
SolutionCache::stats() const
{
    SolutionCacheStats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    st.inserts = inserts_.load(std::memory_order_relaxed);
    st.evictions = evictions_.load(std::memory_order_relaxed);
    st.journal_loaded = journal_loaded_;
    st.journal_skipped = journal_skipped_;
    return st;
}

void
SolutionCache::loadJournal()
{
    std::int64_t loaded = 0, skipped = 0, lines = 0;
    const std::int64_t evictions_before =
        evictions_.load(std::memory_order_relaxed);
    {
        std::ifstream in(opts_.journal_path);
        std::string line;
        while (in && std::getline(in, line)) {
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            ++lines;
            CacheKey key;
            CachedSolution sol;
            if (solutionFromJsonLine(line, key, sol)) {
                insertInMemory(key, sol);
                ++loaded;
            } else {
                ++skipped;
            }
        }
    }
    journal_loaded_ += loaded;
    journal_skipped_ += skipped;
    // Replay is bookkeeping, not traffic: only live lookup/insert
    // calls should show up in the insert/eviction counters.
    inserts_.fetch_sub(loaded, std::memory_order_relaxed);
    evictions_.store(evictions_before, std::memory_order_relaxed);
    if (skipped > 0)
        logWarn("SolutionCache: skipped ", skipped,
                " corrupt journal line(s) in ", opts_.journal_path);

    {
        std::lock_guard<std::mutex> lock(journal_mu_);
        journal_lines_ = lines;
        journal_.open(opts_.journal_path,
                      std::ios::out | std::ios::app);
        if (!journal_.is_open())
            fatal("SolutionCache: cannot open journal " +
                  opts_.journal_path);
    }
    if (skipped > 0 || journalNeedsCompaction())
        compact();
}

void
SolutionCache::appendJournalLine(const Entry &e)
{
    std::lock_guard<std::mutex> lock(journal_mu_);
    if (!journal_.is_open())
        return;
    journal_ << solutionToJsonLine(e.key, e.sol) << "\n";
    journal_.flush();
    ++journal_lines_;
}

bool
SolutionCache::journalNeedsCompaction() const
{
    if (opts_.journal_path.empty())
        return false;
    const auto lines = static_cast<double>(
        journal_lines_.load(std::memory_order_relaxed));
    const auto live = static_cast<double>(
        live_.load(std::memory_order_relaxed));
    return lines > opts_.compact_factor * live + 16.0;
}

void
SolutionCache::compact()
{
    if (opts_.journal_path.empty())
        return;
    std::lock_guard<std::mutex> journal_lock(journal_mu_);
    const std::string tmp = opts_.journal_path + ".tmp";
    std::int64_t written = 0;
    {
        std::ofstream out(tmp, std::ios::out | std::ios::trunc);
        if (!out.is_open()) {
            logWarn("SolutionCache: cannot write ", tmp,
                    "; journal left uncompacted");
            return;
        }
        for (const auto &sh : shards_) {
            std::lock_guard<std::mutex> lock(sh->mu);
            // Least recent first, so replay restores the LRU order.
            for (auto it = sh->lru.rbegin(); it != sh->lru.rend(); ++it) {
                out << solutionToJsonLine(it->key, it->sol) << "\n";
                ++written;
            }
        }
    }
    if (journal_.is_open())
        journal_.close();
    if (std::rename(tmp.c_str(), opts_.journal_path.c_str()) != 0) {
        logWarn("SolutionCache: rename to ", opts_.journal_path,
                " failed; journal left uncompacted");
        std::remove(tmp.c_str());
    } else {
        journal_lines_ = written;
    }
    journal_.open(opts_.journal_path, std::ios::out | std::ios::app);
}

} // namespace mopt
