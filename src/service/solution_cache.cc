#include "service/solution_cache.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace mopt {

namespace {

/**
 * fsync @p path (a file or, with O_DIRECTORY, its parent). A rename
 * is only durable once the *directory* entry is on disk; the file's
 * bytes only once the file is. False (with a warning) on failure —
 * compaction proceeds, the window just stays open.
 */
bool
syncPath(const std::string &path, int open_flags)
{
    const int fd = ::open(path.c_str(), open_flags);
    if (fd < 0) {
        logWarn("SolutionCache: cannot open ", path, " for fsync");
        return false;
    }
    const bool ok = ::fsync(fd) == 0;
    if (!ok)
        logWarn("SolutionCache: fsync ", path, " failed");
    ::close(fd);
    return ok;
}

/** Parent directory of @p path ("." when it has none). */
std::string
parentDir(const std::string &path)
{
    const std::size_t slash = path.rfind('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

bool
getTiles(const JsonValue &arr, IntTileVec &out)
{
    if (arr.type != JsonValue::Type::Array ||
        arr.arr.size() != static_cast<std::size_t>(NumDims))
        return false;
    for (int d = 0; d < NumDims; ++d) {
        const JsonValue &v = arr.arr[static_cast<std::size_t>(d)];
        if (v.type != JsonValue::Type::Number ||
            v.num != std::floor(v.num) || v.num < 1 || v.num > 1e15)
            return false;
        out[static_cast<std::size_t>(d)] =
            static_cast<std::int64_t>(v.num);
    }
    return true;
}

void
appendTiles(std::ostringstream &oss, const IntTileVec &t)
{
    oss << "[";
    for (int d = 0; d < NumDims; ++d)
        oss << (d ? "," : "") << t[static_cast<std::size_t>(d)];
    oss << "]";
}

std::size_t
roundUpPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

std::string
solutionToJsonLine(const CacheKey &key, const CachedSolution &sol,
                   std::int64_t hits, std::int64_t seq)
{
    const ConvProblem &p = key.problem;
    std::ostringstream oss;
    oss << "{\"v\":1"
        << ",\"n\":" << p.n << ",\"k\":" << p.k << ",\"c\":" << p.c
        << ",\"r\":" << p.r << ",\"s\":" << p.s << ",\"h\":" << p.h
        << ",\"w\":" << p.w << ",\"stride\":" << p.stride
        << ",\"dilation\":" << p.dilation;
    // Written only when != 1 so dense-conv journal lines stay
    // byte-identical to the v1 format; absent parses as 1 below.
    if (p.groups != 1)
        oss << ",\"groups\":" << p.groups;
    oss << ",\"machine\":\"" << jsonHex16(key.machine_fp) << "\""
        << ",\"settings\":\"" << jsonHex16(key.settings_fp) << "\""
        << ",\"perm\":[";
    for (int l = 0; l < NumMemLevels; ++l)
        oss << (l ? "," : "") << "\""
            << sol.config.perm[static_cast<std::size_t>(l)].str() << "\"";
    oss << "],\"tiles\":[";
    for (int l = 0; l < NumMemLevels; ++l) {
        if (l)
            oss << ",";
        appendTiles(oss, sol.config.tiles[static_cast<std::size_t>(l)]);
    }
    oss << "],\"par\":";
    appendTiles(oss, sol.config.par);
    char pred[32];
    std::snprintf(pred, sizeof(pred), "%.17g", sol.predicted_seconds);
    oss << ",\"pred_s\":" << pred << ",\"label\":\""
        << jsonEscape(sol.perm_label) << "\"";
    if (hits > 0)
        oss << ",\"hits\":" << hits;
    if (seq > 0)
        oss << ",\"seq\":" << seq;
    oss << "}";
    return oss.str();
}

bool
solutionFromJsonLine(const std::string &line, CacheKey &key,
                     CachedSolution &sol, std::int64_t *hits,
                     std::int64_t *seq)
{
    JsonValue root;
    if (!jsonParse(line, root))
        return false;
    return solutionFromJson(root, key, sol, hits, seq);
}

bool
solutionFromJson(const JsonValue &root, CacheKey &key,
                 CachedSolution &sol, std::int64_t *hits,
                 std::int64_t *seq)
{
    if (root.type != JsonValue::Type::Object)
        return false;

    std::int64_t version = 0;
    if (!jsonGetInt(root, "v", version) || version != 1)
        return false;

    CacheKey k;
    std::int64_t stride = 0, dilation = 0;
    if (!jsonGetInt(root, "n", k.problem.n) ||
        !jsonGetInt(root, "k", k.problem.k) ||
        !jsonGetInt(root, "c", k.problem.c) ||
        !jsonGetInt(root, "r", k.problem.r) ||
        !jsonGetInt(root, "s", k.problem.s) ||
        !jsonGetInt(root, "h", k.problem.h) ||
        !jsonGetInt(root, "w", k.problem.w) ||
        !jsonGetInt(root, "stride", stride) ||
        !jsonGetInt(root, "dilation", dilation))
        return false;
    k.problem.stride = static_cast<int>(stride);
    k.problem.dilation = static_cast<int>(dilation);
    k.problem.groups = 1; // pre-groups journals carry no field
    if (root.find("groups") &&
        !jsonGetInt(root, "groups", k.problem.groups))
        return false;

    const JsonValue *machine = root.find("machine");
    const JsonValue *settings = root.find("settings");
    if (!machine || machine->type != JsonValue::Type::String ||
        !jsonParseHex16(machine->str, k.machine_fp) || !settings ||
        settings->type != JsonValue::Type::String ||
        !jsonParseHex16(settings->str, k.settings_fp))
        return false;

    CachedSolution s;
    const JsonValue *perm = root.find("perm");
    const JsonValue *tiles = root.find("tiles");
    if (!perm || perm->type != JsonValue::Type::Array ||
        perm->arr.size() != static_cast<std::size_t>(NumMemLevels) ||
        !tiles || tiles->type != JsonValue::Type::Array ||
        tiles->arr.size() != static_cast<std::size_t>(NumMemLevels))
        return false;
    for (int l = 0; l < NumMemLevels; ++l) {
        const auto sl = static_cast<std::size_t>(l);
        if (perm->arr[sl].type != JsonValue::Type::String)
            return false;
        try {
            s.config.perm[sl] = Permutation::parse(perm->arr[sl].str);
        } catch (const FatalError &) {
            return false;
        }
        if (!getTiles(tiles->arr[sl], s.config.tiles[sl]))
            return false;
    }
    const JsonValue *par = root.find("par");
    if (!par || !getTiles(*par, s.config.par))
        return false;

    const JsonValue *pred = root.find("pred_s");
    if (!pred || pred->type != JsonValue::Type::Number || pred->num < 0)
        return false;
    s.predicted_seconds = pred->num;

    const JsonValue *label = root.find("label");
    if (!label || label->type != JsonValue::Type::String)
        return false;
    s.perm_label = label->str;

    // "hits" is optional telemetry: absent in journals written before
    // the field existed, present after any compaction since.
    std::int64_t entry_hits = 0;
    const JsonValue *hv = root.find("hits");
    if (hv && (!jsonGetInt(root, "hits", entry_hits) || entry_hits < 0))
        return false;

    // "seq" is likewise optional: absent in journals written before
    // the replication sequence existed, and in records that were
    // never journaled.
    std::int64_t entry_seq = 0;
    const JsonValue *qv = root.find("seq");
    if (qv && (!jsonGetInt(root, "seq", entry_seq) || entry_seq < 0))
        return false;

    try {
        k.problem.validate();
    } catch (const FatalError &) {
        return false;
    }

    key = std::move(k);
    sol = std::move(s);
    if (hits)
        *hits = entry_hits;
    if (seq)
        *seq = entry_seq;
    return true;
}

SolutionCache::SolutionCache(SolutionCacheOptions opts)
    : opts_(std::move(opts))
{
    opts_.capacity = std::max<std::size_t>(1, opts_.capacity);
    // Power of two so shardOf can mask; halved (staying a power of
    // two) until every shard holds at least one entry.
    std::size_t shards = roundUpPow2(
        static_cast<std::size_t>(std::max(1, opts_.shards)));
    while (shards > opts_.capacity)
        shards >>= 1;
    per_shard_capacity_ = std::max<std::size_t>(1, opts_.capacity / shards);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
    if (!opts_.journal_path.empty())
        loadJournal();
}

SolutionCache::~SolutionCache()
{
    // Compact on the way out when the journal is oversized — or when
    // any lookup hit an entry, because per-entry hit counters reach
    // the file only through compaction and a warm, insert-free run
    // (the steady state of a serving fleet) would otherwise lose its
    // telemetry on every clean shutdown.
    if (journal_.is_open() &&
        (journalNeedsCompaction() ||
         hits_.load(std::memory_order_relaxed) > 0))
        compact();
}

int
SolutionCache::shardOf(const CacheKey &key) const
{
    // shards_.size() is a power of two; the low hash bits pick a shard
    // and the full hash indexes the shard's bucket map.
    return static_cast<int>(key.hash() &
                            (shards_.size() - 1));
}

bool
SolutionCache::lookup(const CacheKey &key, CachedSolution *out)
{
    Shard &sh = *shards_[static_cast<std::size_t>(shardOf(key))];
    const std::uint64_t h = key.hash();
    bool hit = false;
    {
        std::lock_guard<std::mutex> lock(sh.mu);
        auto it = sh.map.find(h);
        if (it != sh.map.end()) {
            for (auto &entry_it : it->second) {
                if (entry_it->key == key) {
                    sh.lru.splice(sh.lru.begin(), sh.lru, entry_it);
                    ++entry_it->hits;
                    if (out)
                        *out = entry_it->sol;
                    hit = true;
                    break;
                }
            }
        }
    }
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    return hit;
}

bool
SolutionCache::insertInMemory(const CacheKey &key, const CachedSolution &sol,
                              std::int64_t hits, std::int64_t seq)
{
    Shard &sh = *shards_[static_cast<std::size_t>(shardOf(key))];
    const std::uint64_t h = key.hash();
    bool evicted = false;
    bool fresh = true;
    {
        std::lock_guard<std::mutex> lock(sh.mu);
        auto it = sh.map.find(h);
        if (it != sh.map.end()) {
            for (auto &entry_it : it->second) {
                if (entry_it->key == key) {
                    entry_it->sol = sol;
                    // Hit counts only grow, so max() both preserves a
                    // live entry's count across a re-insert and takes
                    // the newest count when journal replay sees the
                    // same key twice.
                    entry_it->hits = std::max(entry_it->hits, hits);
                    entry_it->seq = std::max(entry_it->seq, seq);
                    sh.lru.splice(sh.lru.begin(), sh.lru, entry_it);
                    fresh = false;
                    break;
                }
            }
        }
        if (fresh) {
            sh.lru.push_front(
                Entry{key, sol, hits, seq,
                      compact_epoch_.load(std::memory_order_relaxed)});
            sh.map[h].push_back(sh.lru.begin());
            if (sh.lru.size() > per_shard_capacity_) {
                const Entry &victim = sh.lru.back();
                const std::uint64_t vh = victim.key.hash();
                auto vit = sh.map.find(vh);
                checkInvariant(vit != sh.map.end(),
                               "SolutionCache: victim missing from map");
                auto &chain = vit->second;
                chain.erase(std::find(chain.begin(), chain.end(),
                                      std::prev(sh.lru.end())));
                if (chain.empty())
                    sh.map.erase(vit);
                sh.lru.pop_back();
                evicted = true;
            }
        }
    }
    inserts_.fetch_add(1, std::memory_order_relaxed);
    if (evicted)
        evictions_.fetch_add(1, std::memory_order_relaxed);
    if (fresh && !evicted)
        live_.fetch_add(1, std::memory_order_relaxed);
    return fresh;
}

std::int64_t
SolutionCache::insert(const CacheKey &key, const CachedSolution &sol)
{
    const std::int64_t seq =
        journal_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    insertInMemory(key, sol, 0, seq);
    if (!opts_.journal_path.empty()) {
        appendJournalLine(Entry{key, sol, 0, seq});
        if (journalNeedsCompaction())
            compact();
    }
    return seq;
}

void
SolutionCache::applyReplica(const CacheKey &key, const CachedSolution &sol,
                            std::int64_t seq)
{
    // Lamport absorb: after seeing a peer's sequence, everything this
    // node assigns is larger, keeping the fleet's `since` cursors
    // loosely comparable across origins.
    std::int64_t hw = journal_seq_.load(std::memory_order_relaxed);
    while (seq > hw &&
           !journal_seq_.compare_exchange_weak(hw, seq,
                                               std::memory_order_relaxed))
        ;
    insertInMemory(key, sol, 0, seq);
    if (!opts_.journal_path.empty()) {
        appendJournalLine(Entry{key, sol, 0, seq});
        if (journalNeedsCompaction())
            compact();
    }
}

std::size_t
SolutionCache::size() const
{
    std::size_t n = 0;
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mu);
        n += sh->lru.size();
    }
    return n;
}

SolutionCacheStats
SolutionCache::stats() const
{
    SolutionCacheStats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    st.inserts = inserts_.load(std::memory_order_relaxed);
    st.evictions = evictions_.load(std::memory_order_relaxed);
    st.journal_loaded = journal_loaded_;
    st.journal_skipped = journal_skipped_;
    return st;
}

std::vector<SolutionCacheEntryStats>
SolutionCache::entryStats() const
{
    std::vector<SolutionCacheEntryStats> out;
    out.reserve(static_cast<std::size_t>(
        std::max<std::int64_t>(0, live_.load(std::memory_order_relaxed))));
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mu);
        for (const Entry &e : sh->lru)
            out.push_back(SolutionCacheEntryStats{e.key, e.hits});
    }
    return out;
}

std::vector<SolutionCacheRecord>
SolutionCache::exportEntries(std::int64_t since) const
{
    std::vector<SolutionCacheRecord> out;
    out.reserve(static_cast<std::size_t>(
        std::max<std::int64_t>(0, live_.load(std::memory_order_relaxed))));
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> lock(sh->mu);
        for (const Entry &e : sh->lru)
            if (e.seq > since)
                out.push_back(SolutionCacheRecord{e.key, e.sol, e.seq});
    }
    return out;
}

bool
SolutionCache::contains(const CacheKey &key) const
{
    const Shard &sh = *shards_[static_cast<std::size_t>(shardOf(key))];
    const std::uint64_t h = key.hash();
    std::lock_guard<std::mutex> lock(sh.mu);
    const auto it = sh.map.find(h);
    if (it == sh.map.end())
        return false;
    for (const auto &entry_it : it->second)
        if (entry_it->key == key)
            return true;
    return false;
}

void
SolutionCache::loadJournal()
{
    std::int64_t loaded = 0, skipped = 0, lines = 0;
    const std::int64_t evictions_before =
        evictions_.load(std::memory_order_relaxed);
    {
        std::ifstream in(opts_.journal_path);
        std::string line;
        while (in && std::getline(in, line)) {
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            ++lines;
            CacheKey key;
            CachedSolution sol;
            std::int64_t entry_hits = 0;
            std::int64_t entry_seq = 0;
            if (solutionFromJsonLine(line, key, sol, &entry_hits,
                                     &entry_seq)) {
                insertInMemory(key, sol, entry_hits, entry_seq);
                ++loaded;
                std::int64_t hw =
                    journal_seq_.load(std::memory_order_relaxed);
                if (entry_seq > hw)
                    journal_seq_.store(entry_seq,
                                       std::memory_order_relaxed);
            } else {
                ++skipped;
            }
        }
    }
    journal_loaded_ += loaded;
    journal_skipped_ += skipped;
    // Replay is bookkeeping, not traffic: only live lookup/insert
    // calls should show up in the insert/eviction counters.
    inserts_.fetch_sub(loaded, std::memory_order_relaxed);
    evictions_.store(evictions_before, std::memory_order_relaxed);
    if (skipped > 0)
        logWarn("SolutionCache: skipped ", skipped,
                " corrupt journal line(s) in ", opts_.journal_path);

    {
        std::lock_guard<std::mutex> lock(journal_mu_);
        journal_lines_ = lines;
        journal_.open(opts_.journal_path,
                      std::ios::out | std::ios::app);
        if (!journal_.is_open())
            fatal("SolutionCache: cannot open journal " +
                  opts_.journal_path);
    }
    if (skipped > 0 || journalNeedsCompaction())
        compact();
}

void
SolutionCache::appendJournalLine(const Entry &e)
{
    std::lock_guard<std::mutex> lock(journal_mu_);
    if (!journal_.is_open())
        return;
    journal_ << solutionToJsonLine(e.key, e.sol, 0, e.seq) << "\n";
    journal_.flush();
    ++journal_lines_;
}

bool
SolutionCache::journalNeedsCompaction() const
{
    if (opts_.journal_path.empty())
        return false;
    const auto lines = static_cast<double>(
        journal_lines_.load(std::memory_order_relaxed));
    const auto live = static_cast<double>(
        live_.load(std::memory_order_relaxed));
    return lines > opts_.compact_factor * live + 16.0;
}

void
SolutionCache::compact()
{
    if (opts_.journal_path.empty())
        return;
    std::lock_guard<std::mutex> journal_lock(journal_mu_);
    const std::string tmp = opts_.journal_path + ".tmp";
    std::int64_t written = 0;
    std::int64_t shed_count = 0;
    // Telemetry-driven shedding: a *capacity-limited* cache (at its
    // entry budget, so every insert is about to evict something)
    // drops never-hit entries at compaction, keeping the slots — and
    // the journal — for entries that earn their keep. An unpressured
    // cache keeps everything, and entries inserted since the previous
    // compaction (epoch == the current one) are exempt either way: a
    // cold burst's fresh solutions must not be thrashed away by the
    // very compaction their inserts trigger. The epoch bump below
    // starts the next cycle, so this run's survivors become
    // sheddable the next time pressure persists.
    const bool shed = static_cast<std::size_t>(std::max<std::int64_t>(
                          0, live_.load(std::memory_order_relaxed))) >=
                      opts_.capacity;
    const std::int64_t epoch =
        compact_epoch_.fetch_add(1, std::memory_order_relaxed);
    {
        std::ofstream out(tmp, std::ios::out | std::ios::trunc);
        if (!out.is_open()) {
            logWarn("SolutionCache: cannot write ", tmp,
                    "; journal left uncompacted");
            return;
        }
        for (const auto &sh : shards_) {
            std::lock_guard<std::mutex> lock(sh->mu);
            // Least recent first, so replay restores the LRU order.
            for (auto it = sh->lru.end(); it != sh->lru.begin();) {
                --it;
                if (shed && it->hits == 0 && it->epoch < epoch) {
                    auto mit = sh->map.find(it->key.hash());
                    checkInvariant(mit != sh->map.end(),
                                   "SolutionCache: shed victim missing "
                                   "from map");
                    auto &chain = mit->second;
                    const auto cit =
                        std::find(chain.begin(), chain.end(), it);
                    checkInvariant(cit != chain.end(),
                                   "SolutionCache: shed victim missing "
                                   "from chain");
                    chain.erase(cit);
                    if (chain.empty())
                        sh->map.erase(mit);
                    it = sh->lru.erase(it);
                    ++shed_count;
                    continue;
                }
                out << solutionToJsonLine(it->key, it->sol, it->hits,
                                          it->seq)
                    << "\n";
                ++written;
            }
        }
    }
    if (shed_count > 0) {
        live_.fetch_sub(shed_count, std::memory_order_relaxed);
        evictions_.fetch_add(shed_count, std::memory_order_relaxed);
    }
    if (journal_.is_open())
        journal_.close();
    // Crash-safety order: the tmp file's bytes must be on disk
    // *before* the rename makes it the journal, and the rename itself
    // is only durable once the directory entry is synced. A kill -9
    // (or power cut) at any point leaves either the complete old
    // journal or the complete new one — never a short or empty file
    // under the journal's name.
    syncPath(tmp, O_RDONLY);
    if (std::rename(tmp.c_str(), opts_.journal_path.c_str()) != 0) {
        logWarn("SolutionCache: rename to ", opts_.journal_path,
                " failed; journal left uncompacted");
        std::remove(tmp.c_str());
    } else {
        syncPath(parentDir(opts_.journal_path),
                 O_RDONLY | O_DIRECTORY);
        journal_lines_ = written;
    }
    journal_.open(opts_.journal_path, std::ios::out | std::ios::app);
}

} // namespace mopt
