#include "service/network_optimizer.hh"

#include <map>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "common/table.hh"
#include "common/timer.hh"
#include "model/multi_level.hh"

namespace mopt {

double
NetworkPlanStats::hitRate() const
{
    if (unique_shapes == 0)
        return 1.0;
    return static_cast<double>(cache_hits) /
           static_cast<double>(unique_shapes);
}

double
NetworkPlan::predictedSeconds() const
{
    double s = 0.0;
    for (const LayerPlan &lp : layers)
        s += lp.best.predicted.total_seconds;
    return s;
}

std::string
NetworkPlan::str() const
{
    Table t({"Layer", "shape", "class", "L1 tile", "L2 tile", "L3 tile",
             "par", "pred ms", "pred GFLOPS"});
    for (const LayerPlan &lp : layers) {
        const ConvProblem &p = lp.problem;
        std::ostringstream shape;
        if (p.n > 1)
            shape << "N" << p.n << " ";
        shape << "K" << p.k << " C" << p.c << " H" << p.h << " R"
              << p.r;
        if (p.stride > 1)
            shape << "/" << p.stride;
        if (p.groups > 1)
            shape << " g" << p.groups;
        t.row()
            .add(p.name)
            .add(shape.str())
            .add(lp.best.perm_label)
            .add(tilesToString(lp.best.config.tiles[LvlL1]))
            .add(tilesToString(lp.best.config.tiles[LvlL2]))
            .add(tilesToString(lp.best.config.tiles[LvlL3]))
            .add(tilesToString(lp.best.config.par))
            .add(lp.best.predicted.total_seconds * 1e3, 3)
            .add(lp.best.predicted.gflops, 1);
    }
    return t.str();
}

NetworkOptimizer::NetworkOptimizer(const MachineSpec &machine,
                                   const OptimizerOptions &opts,
                                   SolutionCache *cache,
                                   SolveScheduler *scheduler)
    : machine_(machine), opts_(opts), cache_(cache),
      scheduler_(scheduler)
{
    machine_.validate();
    if (scheduler_) {
        // A scheduler built from different settings would cache and
        // coalesce under keys this optimizer never looks up.
        checkUser(scheduler_->machineFingerprint() ==
                          CacheKey::machineFingerprint(machine_) &&
                      scheduler_->settingsFingerprint() ==
                          CacheKey::settingsFingerprint(opts_),
                  "NetworkOptimizer: scheduler was built for a "
                  "different machine or settings");
    }
}

NetworkPlan
NetworkOptimizer::optimize(const NetworkDef &net, Deadline dl) const
{
    return optimize(net.lower(), dl);
}

NetworkPlan
NetworkOptimizer::optimize(const std::vector<ConvProblem> &net,
                           Deadline dl) const
{
    Timer total;
    NetworkPlan plan;
    plan.layers.resize(net.size());
    plan.stats.layers = net.size();

    // Dedupe: canonical key -> layer indices, preserving first-seen
    // order so the solve order (and thus any logging) is the network
    // order regardless of map iteration.
    struct Group
    {
        CacheKey key;
        std::vector<std::size_t> layers;
    };
    std::vector<Group> groups;
    std::map<std::uint64_t, std::vector<std::size_t>> by_hash;
    for (std::size_t i = 0; i < net.size(); ++i) {
        net[i].validate();
        const CacheKey key = CacheKey::make(net[i], machine_, opts_);
        auto &indices = by_hash[key.hash()];
        bool found = false;
        for (const std::size_t gi : indices) {
            if (groups[gi].key == key) {
                groups[gi].layers.push_back(i);
                found = true;
                break;
            }
        }
        if (!found) {
            indices.push_back(groups.size());
            groups.push_back(Group{key, {i}});
        }
    }
    plan.stats.unique_shapes = groups.size();

    const auto fillGroup = [&](const Group &g, const Candidate &best,
                               bool hit, double solve_seconds) {
        for (std::size_t li = 0; li < g.layers.size(); ++li) {
            const std::size_t layer = g.layers[li];
            LayerPlan &lp = plan.layers[layer];
            lp.problem = net[layer];
            lp.best = best;
            lp.cache_hit = hit;
            lp.dedup_hit = li > 0;
            lp.solve_seconds = li == 0 ? solve_seconds : 0.0;
        }
    };

    if (scheduler_) {
        // Pipelined: submit every group up front so distinct cold
        // shapes overlap across the scheduler's concurrency budget
        // (and duplicates coalesce with any concurrent request for
        // the same shape), then join in network order. Determinism:
        // each solve's result is width-independent, so this plan is
        // byte-identical to the serial path below.
        std::vector<SolveTicket> tickets;
        tickets.reserve(groups.size());
        for (const Group &g : groups)
            tickets.push_back(scheduler_->submit(net[g.layers.front()]));
        for (std::size_t gi = 0; gi < groups.size(); ++gi) {
            const Group &g = groups[gi];
            const ConvProblem &rep = net[g.layers.front()];
            ScheduledSolve r;
            if (!tickets[gi].waitFor(dl, r)) {
                // The remaining flights keep running and will land in
                // the cache; only this caller's answer is abandoned.
                throw DeadlineExceeded(
                    "network solve ran past its deadline (" +
                    std::to_string(groups.size() - gi) + " of " +
                    std::to_string(groups.size()) +
                    " shapes still outstanding)");
            }
            Candidate best;
            best.config = r.sol.config;
            best.perm_label = r.sol.perm_label;
            // Pure function of (config, problem, machine): identical
            // numbers whether the group hit, coalesced, or solved.
            best.predicted = evalMultiLevel(best.config, rep, machine_,
                                            opts_.parallel);
            if (r.cache_hit) {
                plan.stats.cache_hits++;
            } else {
                plan.stats.cache_misses++;
                if (r.coalesced)
                    plan.stats.coalesced++;
                plan.stats.solver_evals += r.solver_evals;
                plan.stats.solve_seconds += r.solve_seconds;
            }
            fillGroup(g, best, r.cache_hit, r.solve_seconds);
        }
        plan.stats.peak_concurrency =
            scheduler_->stats().peak_concurrency;
    } else {
        // Serial: solve one representative per group in network
        // order — cache hit -> replay, miss -> the full optimizeConv
        // pipeline (internally parallel, full pool width), then
        // publish into the cache.
        for (const Group &g : groups) {
            const ConvProblem &rep = net[g.layers.front()];
            Candidate best;
            bool hit = false;
            double solve_seconds = 0.0;

            // A running optimizeConv cannot be interrupted, so the
            // serial path enforces the deadline between solves: the
            // overshoot is bounded by one solve.
            if (dl.expired())
                throw DeadlineExceeded(
                    "network solve ran past its deadline");

            CachedSolution cached;
            if (cache_ && cache_->lookup(g.key, &cached)) {
                best.config = cached.config;
                best.perm_label = cached.perm_label;
                // The breakdown is a pure function of (config,
                // problem, machine), so a hit reproduces the miss
                // path's numbers exactly.
                best.predicted = evalMultiLevel(best.config, rep,
                                                machine_, opts_.parallel);
                hit = true;
                plan.stats.cache_hits++;
            } else {
                const OptimizeOutput out =
                    optimizeConv(rep, machine_, opts_);
                checkInvariant(!out.candidates.empty(),
                               "NetworkOptimizer: optimizeConv returned "
                               "no candidates");
                best = out.candidates.front();
                solve_seconds = out.seconds;
                plan.stats.cache_misses++;
                plan.stats.solver_evals += out.solver_evals;
                plan.stats.solve_seconds += out.seconds;
                if (cache_) {
                    cache_->insert(
                        g.key,
                        CachedSolution{best.config,
                                       best.predicted.total_seconds,
                                       best.perm_label});
                }
            }
            fillGroup(g, best, hit, solve_seconds);
        }
    }

    plan.stats.total_seconds = total.seconds();
    return plan;
}

} // namespace mopt
