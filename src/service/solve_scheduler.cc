#include "service/solve_scheduler.hh"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.hh"
#include "common/timer.hh"

namespace mopt {

namespace {

SolveTicket
readyTicket(const CacheKey &key, CachedSolution sol)
{
    std::promise<ScheduledSolve> p;
    p.set_value(ScheduledSolve{key, std::move(sol), /*cache_hit=*/true,
                               /*coalesced=*/false, 0.0, 0});
    return SolveTicket{p.get_future().share(), /*cache_hit=*/true,
                       /*coalesced=*/false};
}

} // namespace

ScheduledSolve
SolveTicket::wait() const
{
    ScheduledSolve r = future.get(); // Rethrows the solve's exception.
    if (coalesced) {
        // The flight's leader paid for the solve; this caller only
        // waited, so its provenance and cost are its own.
        r.cache_hit = false;
        r.coalesced = true;
        r.solve_seconds = 0.0;
        r.solver_evals = 0;
    }
    return r;
}

bool
SolveTicket::waitFor(const Deadline &dl, ScheduledSolve &out) const
{
    if (!dl.infinite()) {
        const auto st = future.wait_for(
            std::chrono::milliseconds(dl.remainingMs()));
        if (st != std::future_status::ready)
            return false;
    }
    out = wait();
    return true;
}

SolveScheduler::SolveScheduler(const MachineSpec &machine,
                               const OptimizerOptions &opts,
                               SolutionCache *cache,
                               SolveSchedulerOptions options)
    : machine_(machine), opts_(opts), cache_(cache),
      options_(options),
      machine_fp_(CacheKey::machineFingerprint(machine_)),
      settings_fp_(CacheKey::settingsFingerprint(opts_)),
      solve_width_(1),
      // Each of the `concurrency` runners recruits solve_width_ - 1
      // helpers, so the pool holds exactly that many threads (min 1:
      // ThreadPool rejects empty pools, and a width-1 partition never
      // enqueues into it anyway).
      pool_([&] {
          options_.concurrency = std::max(1, options_.concurrency);
          const std::size_t width = std::max<std::size_t>(
              1, opts_.threads > 0
                     ? static_cast<std::size_t>(opts_.threads)
                     : std::max(1u,
                                std::thread::hardware_concurrency()));
          solve_width_ = std::max<std::size_t>(
              1, width / static_cast<std::size_t>(options_.concurrency));
          return std::max<std::size_t>(
              1, static_cast<std::size_t>(options_.concurrency) *
                     (solve_width_ - 1));
      }())
{
    machine_.validate();
    runners_.reserve(static_cast<std::size_t>(options_.concurrency));
    for (int i = 0; i < options_.concurrency; ++i)
        runners_.emplace_back([this] { runnerLoop(); });
}

SolveScheduler::~SolveScheduler()
{
    std::deque<Flight> orphaned;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        orphaned.swap(queue_);
        for (const Flight &f : orphaned)
            eraseFlight(f.key);
    }
    cv_.notify_all();
    for (Flight &f : orphaned)
        f.promise.set_exception(std::make_exception_ptr(FatalError(
            "SolveScheduler: stopped before the solve ran")));
    for (std::thread &t : runners_)
        t.join();
}

const std::shared_future<ScheduledSolve> *
SolveScheduler::findFlight(const CacheKey &key) const
{
    const auto it = flights_.find(key.hash());
    if (it == flights_.end())
        return nullptr;
    for (const FlightRef &f : it->second)
        if (f.key == key)
            return &f.future;
    return nullptr;
}

void
SolveScheduler::eraseFlight(const CacheKey &key)
{
    const auto it = flights_.find(key.hash());
    checkInvariant(it != flights_.end(),
                   "SolveScheduler: flight chain missing");
    auto &chain = it->second;
    const auto fit =
        std::find_if(chain.begin(), chain.end(),
                     [&](const FlightRef &f) { return f.key == key; });
    checkInvariant(fit != chain.end(),
                   "SolveScheduler: flight missing from chain");
    chain.erase(fit);
    if (chain.empty())
        flights_.erase(it);
}

SolveTicket
SolveScheduler::submit(const ConvProblem &p)
{
    const CacheKey key = CacheKey::make(p, machine_, opts_);

    // Warm fast path: no scheduler lock, just the cache's shard.
    CachedSolution sol;
    if (cache_ && cache_->lookup(key, &sol))
        return readyTicket(key, std::move(sol));

    std::unique_lock<std::mutex> lock(mu_);
    checkInvariant(!stopping_,
                   "SolveScheduler: submit after shutdown");
    if (const std::shared_future<ScheduledSolve> *f = findFlight(key)) {
        ++coalesced_;
        return SolveTicket{*f, /*cache_hit=*/false, /*coalesced=*/true};
    }
    // The flight we just missed may have completed between the
    // lock-free lookup and taking mu_ — its leader inserts into the
    // cache *before* erasing the flight, so re-checking here closes
    // the window where a finished solve would be run again.
    if (cache_ && cache_->lookup(key, &sol))
        return readyTicket(key, std::move(sol));

    Flight flight;
    flight.key = key;
    flight.problem = key.problem; // Canonical: names never matter.
    const auto future = flight.promise.get_future().share();
    flights_[key.hash()].push_back(FlightRef{key, future});
    queue_.push_back(std::move(flight));
    lock.unlock();
    cv_.notify_one();
    return SolveTicket{future, /*cache_hit=*/false, /*coalesced=*/false};
}

ScheduledSolve
SolveScheduler::solve(const ConvProblem &p)
{
    return submit(p).wait();
}

void
SolveScheduler::runnerLoop()
{
    for (;;) {
        Flight flight;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // Stopping, and the dtor drained the queue.
            flight = std::move(queue_.front());
            queue_.pop_front();
            ++solves_;
            ++in_flight_;
            peak_concurrency_ = std::max(peak_concurrency_, in_flight_);
        }
        try {
            Timer timer;
            const OptimizeOutput out = optimizeConv(
                flight.problem, machine_, opts_,
                pool_.subWidth(solve_width_));
            checkInvariant(!out.candidates.empty(),
                           "SolveScheduler: optimizeConv returned no "
                           "candidates");
            const Candidate &best = out.candidates.front();
            ScheduledSolve r;
            r.key = flight.key;
            r.sol = CachedSolution{best.config,
                                   best.predicted.total_seconds,
                                   best.perm_label};
            r.solve_seconds = timer.seconds();
            r.solver_evals = out.solver_evals;
            // Publish to the cache before retiring the flight: a
            // request arriving between the two must find one or the
            // other (see submit()'s double-check).
            std::int64_t seq = 0;
            if (cache_)
                seq = cache_->insert(flight.key, r.sol);
            if (options_.on_insert)
                options_.on_insert(flight.key, r.sol, seq);
            {
                std::lock_guard<std::mutex> lock(mu_);
                eraseFlight(flight.key);
                --in_flight_;
            }
            flight.promise.set_value(std::move(r));
        } catch (...) {
            // Retire the flight *before* waking the waiters so the
            // key is immediately retryable — no poisoned entries.
            {
                std::lock_guard<std::mutex> lock(mu_);
                eraseFlight(flight.key);
                --in_flight_;
            }
            flight.promise.set_exception(std::current_exception());
        }
    }
}

SolveSchedulerStats
SolveScheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    SolveSchedulerStats st;
    st.solves = solves_;
    st.coalesced = coalesced_;
    st.in_flight = in_flight_;
    st.peak_concurrency = peak_concurrency_;
    return st;
}

} // namespace mopt
