/**
 * @file
 * Network-level batch optimization: optimize every conv2d layer of a
 * whole network in one call, deduplicating repeated shapes and
 * consulting a (optionally persistent) SolutionCache so identical
 * (problem, machine, settings) solves are done exactly once — across
 * layers, across networks, and across process lifetimes.
 *
 * Each cache miss is solved by the existing optimizeConv pipeline,
 * which internally fans its (permutation combo x objective x start)
 * work items across ThreadPool::parallelForIndexed; misses are issued
 * one at a time so every solve gets the full pool width and the
 * per-layer results stay deterministic. The returned plan is therefore
 * byte-identical between a cold and a warm run: a hit replays the
 * stored winning ExecConfig and re-derives the cost breakdown from the
 * (deterministic) analytical model.
 */

#ifndef MOPT_SERVICE_NETWORK_OPTIMIZER_HH
#define MOPT_SERVICE_NETWORK_OPTIMIZER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "conv/problem.hh"
#include "machine/machine.hh"
#include "optimizer/mopt_optimizer.hh"
#include "service/solution_cache.hh"

namespace mopt {

/** The optimized tiling of one network layer. */
struct LayerPlan
{
    ConvProblem problem;      //!< The layer as given (name retained).
    Candidate best;           //!< Winning config + predicted cost.
    bool cache_hit = false;   //!< Solution came from the cache.
    bool dedup_hit = false;   //!< Repeated shape solved earlier this run.
    double solve_seconds = 0; //!< Search time (0 for hits).
};

/** Aggregate statistics of one NetworkOptimizer::optimize call. */
struct NetworkPlanStats
{
    std::size_t layers = 0;        //!< Input layers.
    std::size_t unique_shapes = 0; //!< Distinct cache keys among them.
    std::size_t cache_hits = 0;    //!< Unique shapes served by the cache.
    std::size_t cache_misses = 0;  //!< Unique shapes actually solved.
    long solver_evals = 0;         //!< Model evaluations across solves.
    double solve_seconds = 0;      //!< Wall time inside optimizeConv.
    double total_seconds = 0;      //!< Wall time of the whole call.

    /** cache_hits / unique_shapes (1 when there was nothing to do). */
    double hitRate() const;
};

/** Per-layer plans plus the run's statistics. */
struct NetworkPlan
{
    std::vector<LayerPlan> layers;
    NetworkPlanStats stats;

    /** Sum of predicted per-layer times (seconds). */
    double predictedSeconds() const;

    /**
     * Deterministic per-layer plan rendering (one table; no wall-clock
     * times or hit/miss markers), suitable for byte-for-byte comparison
     * between cold- and warm-cache runs.
     */
    std::string str() const;
};

/**
 * Batch front-end over optimizeConv. Holds the machine, the search
 * settings, and an optional solution cache shared across calls (and,
 * via its journal, across runs). Thread-safe to the extent that
 * concurrent optimize() calls only share the SolutionCache, which is
 * itself thread-safe.
 */
class NetworkOptimizer
{
  public:
    /**
     * @param machine  target machine description
     * @param opts     search settings applied to every layer
     * @param cache    optional solution cache (not owned; may be null)
     */
    NetworkOptimizer(const MachineSpec &machine,
                     const OptimizerOptions &opts,
                     SolutionCache *cache = nullptr);

    /** Optimize every layer of @p net (in order, repeats allowed). */
    NetworkPlan optimize(const std::vector<ConvProblem> &net) const;

    const MachineSpec &machine() const { return machine_; }
    const OptimizerOptions &options() const { return opts_; }

  private:
    MachineSpec machine_;
    OptimizerOptions opts_;
    SolutionCache *cache_;
};

} // namespace mopt

#endif // MOPT_SERVICE_NETWORK_OPTIMIZER_HH
