/**
 * @file
 * Network-level batch optimization: optimize every conv2d layer of a
 * whole network in one call, deduplicating repeated shapes and
 * consulting a (optionally persistent) SolutionCache so identical
 * (problem, machine, settings) solves are done exactly once — across
 * layers, across networks, and across process lifetimes.
 *
 * Each cache miss is solved by the existing optimizeConv pipeline,
 * which internally fans its (permutation combo x objective x start)
 * work items across ThreadPool::parallelForIndexed. Without a
 * SolveScheduler, misses are issued one at a time so every solve gets
 * the full pool width; with one, all miss groups are submitted up
 * front and joined in network order, so an N-miss cold network
 * pipelines across the scheduler's concurrency budget (and coalesces
 * with any other request solving the same shape). Either way the
 * per-layer results are deterministic — optimizeConv is bit-identical
 * for any worker width — so the returned plan is byte-identical
 * between serial and pipelined runs, and between a cold and a warm
 * run: a hit replays the stored winning ExecConfig and re-derives the
 * cost breakdown from the (deterministic) analytical model.
 */

#ifndef MOPT_SERVICE_NETWORK_OPTIMIZER_HH
#define MOPT_SERVICE_NETWORK_OPTIMIZER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/deadline.hh"
#include "conv/problem.hh"
#include "frontend/network_def.hh"
#include "machine/machine.hh"
#include "optimizer/mopt_optimizer.hh"
#include "service/solution_cache.hh"
#include "service/solve_scheduler.hh"

namespace mopt {

/** The optimized tiling of one network layer. */
struct LayerPlan
{
    ConvProblem problem;      //!< The layer as given (name retained).
    Candidate best;           //!< Winning config + predicted cost.
    bool cache_hit = false;   //!< Solution came from the cache.
    bool dedup_hit = false;   //!< Repeated shape solved earlier this run.
    double solve_seconds = 0; //!< Search time (0 for hits).
};

/** Aggregate statistics of one NetworkOptimizer::optimize call. */
struct NetworkPlanStats
{
    std::size_t layers = 0;        //!< Input layers.
    std::size_t unique_shapes = 0; //!< Distinct cache keys among them.
    std::size_t cache_hits = 0;    //!< Unique shapes served by the cache.
    std::size_t cache_misses = 0;  //!< Unique shapes actually solved.
    long solver_evals = 0;         //!< Model evaluations across solves.
    double solve_seconds = 0;      //!< Wall time inside optimizeConv.
    double total_seconds = 0;      //!< Wall time of the whole call.

    /** Misses that joined another request's in-flight solve instead
     *  of running one (scheduler-backed runs only). */
    std::size_t coalesced = 0;

    /** Scheduler-lifetime peak of simultaneous solves (0 when this
     *  run solved serially without a scheduler). */
    int peak_concurrency = 0;

    /** cache_hits / unique_shapes (1 when there was nothing to do). */
    double hitRate() const;
};

/** Per-layer plans plus the run's statistics. */
struct NetworkPlan
{
    std::vector<LayerPlan> layers;
    NetworkPlanStats stats;

    /** Sum of predicted per-layer times (seconds). */
    double predictedSeconds() const;

    /**
     * Deterministic per-layer plan rendering (one table; no wall-clock
     * times or hit/miss markers), suitable for byte-for-byte comparison
     * between cold- and warm-cache runs.
     */
    std::string str() const;
};

/**
 * Batch front-end over optimizeConv. Holds the machine, the search
 * settings, and an optional solution cache shared across calls (and,
 * via its journal, across runs). Thread-safe: concurrent optimize()
 * calls only share the SolutionCache and SolveScheduler, which are
 * themselves thread-safe.
 */
class NetworkOptimizer
{
  public:
    /**
     * @param machine    target machine description
     * @param opts       search settings applied to every layer
     * @param cache      optional solution cache (not owned; may be null)
     * @param scheduler  optional single-flight solve scheduler (not
     *                   owned). When given, it must be built from the
     *                   same machine and settings (checked), misses
     *                   pipeline across its concurrency budget, and
     *                   @p cache should be the scheduler's cache.
     *                   When null, misses solve serially in-place.
     */
    NetworkOptimizer(const MachineSpec &machine,
                     const OptimizerOptions &opts,
                     SolutionCache *cache = nullptr,
                     SolveScheduler *scheduler = nullptr);

    /**
     * Optimize every layer of @p net (in order, repeats allowed),
     * giving up at @p dl: when the deadline expires with solves still
     * outstanding, throws DeadlineExceeded. The abandoned flights keep
     * running on the scheduler and land in the cache, so a retry of
     * the same network converges instead of starting over.
     */
    NetworkPlan optimize(const std::vector<ConvProblem> &net,
                         Deadline dl = Deadline::never()) const;

    /** Optimize a frontend NetworkDef (any model the IR can express —
     *  registered builders, parsed .cfg files, inline RPC payloads) at
     *  its batch size. */
    NetworkPlan optimize(const NetworkDef &net,
                         Deadline dl = Deadline::never()) const;

    const MachineSpec &machine() const { return machine_; }
    const OptimizerOptions &options() const { return opts_; }

  private:
    MachineSpec machine_;
    OptimizerOptions opts_;
    SolutionCache *cache_;
    SolveScheduler *scheduler_;
};

} // namespace mopt

#endif // MOPT_SERVICE_NETWORK_OPTIMIZER_HH
