/**
 * @file
 * Benchmark workloads at two granularities.
 *
 * Operator tables: the 32 conv2d shapes of the paper's Table 1 (11
 * from Yolo-9000, 12 from ResNet-18, 9 from MobileNet). Batch size 1;
 * stride 2 for layers marked '*' in the paper, stride 1 otherwise.
 * H/W in Table 1 are *input* image sizes; output extents follow the
 * same-padding convention (see conv/problem.hh).
 *
 * Full networks: complete per-layer conv sequences (repeats included,
 * network order) for ResNet-18, VGG-16, and the YOLOv3/Darknet-53
 * backbone — the inputs the network-level batch optimizer
 * (src/service/network_optimizer.hh) consumes. Real networks repeat
 * identical shapes many times (VGG-16's 13 convs collapse to 9 unique
 * shapes, ResNet-18's 20 to 11), which is exactly what the solution
 * cache exploits.
 *
 * The network builders below are compatibility wrappers: each network
 * is *defined* as a frontend NetworkDef IR constructor in
 * src/frontend/registry.cc (resnet18Def() etc.) and lowered here at
 * batch 1. Arbitrary models arrive through the same IR via the
 * darknet .cfg parser (src/frontend/cfg_parser.hh).
 */

#ifndef MOPT_CONV_WORKLOADS_HH
#define MOPT_CONV_WORKLOADS_HH

#include <string>
#include <vector>

#include "conv/problem.hh"

namespace mopt {

/** The eleven conv2d operators of Yolo-9000 (Table 1, left). */
std::vector<ConvProblem> yolo9000Workloads();

/** The twelve conv2d operators of ResNet-18 (Table 1, middle). */
std::vector<ConvProblem> resnet18Workloads();

/** The nine conv2d operators of MobileNet (Table 1, right). */
std::vector<ConvProblem> mobilenetWorkloads();

/** All 32 operators, Yolo then ResNet then MobileNet. */
std::vector<ConvProblem> allWorkloads();

/** Look up a single operator by name (e.g. "Y5", "R9", "M2"). */
ConvProblem workloadByName(const std::string &name);

/**
 * Full ResNet-18: conv1 plus every block conv and 1x1 downsample, 20
 * conv2d layers in network order (224x224 input, batch 1).
 */
std::vector<ConvProblem> resnet18Network();

/** Full VGG-16: the 13 3x3 conv layers (224x224 input, batch 1). */
std::vector<ConvProblem> vgg16Network();

/**
 * YOLOv3's Darknet-53 backbone: the 52 conv2d layers (416x416 input,
 * batch 1) — the detection-head convs are omitted.
 */
std::vector<ConvProblem> yolov3Network();

/**
 * Look up a full network by name ("resnet18", "vgg16", "yolov3",
 * case-insensitive). Unknown names fail with the list of valid names.
 */
std::vector<ConvProblem> networkByName(const std::string &name);

} // namespace mopt

#endif // MOPT_CONV_WORKLOADS_HH
