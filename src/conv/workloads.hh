/**
 * @file
 * The 32 conv2d operator shapes of the paper's Table 1: 11 from
 * Yolo-9000, 12 from ResNet-18, 9 from MobileNet. Batch size 1;
 * stride 2 for layers marked '*' in the paper, stride 1 otherwise.
 * H/W in Table 1 are *input* image sizes; output extents follow the
 * same-padding convention (see conv/problem.hh).
 */

#ifndef MOPT_CONV_WORKLOADS_HH
#define MOPT_CONV_WORKLOADS_HH

#include <string>
#include <vector>

#include "conv/problem.hh"

namespace mopt {

/** The eleven conv2d operators of Yolo-9000 (Table 1, left). */
std::vector<ConvProblem> yolo9000Workloads();

/** The twelve conv2d operators of ResNet-18 (Table 1, middle). */
std::vector<ConvProblem> resnet18Workloads();

/** The nine conv2d operators of MobileNet (Table 1, right). */
std::vector<ConvProblem> mobilenetWorkloads();

/** All 32 operators, Yolo then ResNet then MobileNet. */
std::vector<ConvProblem> allWorkloads();

/** Look up a single operator by name (e.g. "Y5", "R9", "M2"). */
ConvProblem workloadByName(const std::string &name);

} // namespace mopt

#endif // MOPT_CONV_WORKLOADS_HH
