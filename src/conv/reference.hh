/**
 * @file
 * Reference (naive 7-loop) conv2d used as the correctness oracle for
 * the tiled executor and the generated C code.
 */

#ifndef MOPT_CONV_REFERENCE_HH
#define MOPT_CONV_REFERENCE_HH

#include "conv/problem.hh"
#include "tensor/tensor.hh"

namespace mopt {

/**
 * Allocate the input tensor for @p p: [n][c][inH][inW] (pre-padded
 * layout; see problem.hh).
 */
Tensor4 makeInput(const ConvProblem &p);

/** Allocate the kernel tensor for @p p: [k][c][r][s]. */
Tensor4 makeKernel(const ConvProblem &p);

/** Allocate the output tensor for @p p: [n][k][h][w]. */
Tensor4 makeOutput(const ConvProblem &p);

/**
 * Naive direct convolution:
 *   out[n,k,h,w] += sum_{c,r,s} in[n,c,h*stride+r,w*stride+s]*ker[k,c,r,s]
 * The output is overwritten (initialized to zero first).
 */
void referenceConv(const ConvProblem &p, const Tensor4 &in,
                   const Tensor4 &ker, Tensor4 &out);

} // namespace mopt

#endif // MOPT_CONV_REFERENCE_HH
