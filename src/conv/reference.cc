#include "conv/reference.hh"

#include "common/logging.hh"

namespace mopt {

Tensor4
makeInput(const ConvProblem &p)
{
    return Tensor4(p.n, p.c, p.inH(), p.inW());
}

Tensor4
makeKernel(const ConvProblem &p)
{
    return Tensor4(p.k, p.cPerGroup(), p.r, p.s);
}

Tensor4
makeOutput(const ConvProblem &p)
{
    return Tensor4(p.n, p.k, p.h, p.w);
}

void
referenceConv(const ConvProblem &p, const Tensor4 &in, const Tensor4 &ker,
              Tensor4 &out)
{
    const std::int64_t cg = p.cPerGroup();
    const std::int64_t kg = p.kPerGroup();
    checkUser(in.dim(0) == p.n && in.dim(1) == p.c && in.dim(2) == p.inH() &&
                  in.dim(3) == p.inW(),
              "referenceConv: input shape mismatch");
    checkUser(ker.dim(0) == p.k && ker.dim(1) == cg && ker.dim(2) == p.r &&
                  ker.dim(3) == p.s,
              "referenceConv: kernel shape mismatch");
    checkUser(out.dim(0) == p.n && out.dim(1) == p.k && out.dim(2) == p.h &&
                  out.dim(3) == p.w,
              "referenceConv: output shape mismatch");

    // Output channel k belongs to group k / kg and reduces only over
    // that group's input channels [g*cg, (g+1)*cg); with groups == 1
    // this is the dense 7-loop nest of Eq. 1.
    out.fill(0.0f);
    for (std::int64_t n = 0; n < p.n; ++n)
        for (std::int64_t k = 0; k < p.k; ++k) {
            const std::int64_t c0 = (k / kg) * cg;
            for (std::int64_t c = 0; c < cg; ++c)
                for (std::int64_t r = 0; r < p.r; ++r)
                    for (std::int64_t s = 0; s < p.s; ++s)
                        for (std::int64_t h = 0; h < p.h; ++h)
                            for (std::int64_t w = 0; w < p.w; ++w)
                                out.at(n, k, h, w) +=
                                    in.at(n, c0 + c,
                                          h * p.stride + r * p.dilation,
                                          w * p.stride + s * p.dilation) *
                                    ker.at(k, c, r, s);
        }
}

} // namespace mopt
