#include "conv/workloads.hh"

#include "common/logging.hh"
#include "common/string_util.hh"

namespace mopt {

std::vector<ConvProblem>
yolo9000Workloads()
{
    // Layer, K, C, H/W (input), R/S, stride (Table 1 left; stride 1 all).
    return {
        ConvProblem::fromImage("Y0", 32, 3, 544, 3),
        ConvProblem::fromImage("Y2", 64, 32, 272, 3),
        ConvProblem::fromImage("Y4", 128, 64, 136, 3),
        ConvProblem::fromImage("Y5", 64, 128, 136, 1),
        ConvProblem::fromImage("Y8", 256, 128, 68, 3),
        ConvProblem::fromImage("Y9", 128, 256, 68, 1),
        ConvProblem::fromImage("Y12", 512, 256, 34, 3),
        ConvProblem::fromImage("Y13", 256, 512, 34, 1),
        ConvProblem::fromImage("Y18", 1024, 512, 17, 3),
        ConvProblem::fromImage("Y19", 512, 1024, 17, 1),
        ConvProblem::fromImage("Y23", 28269, 1024, 17, 1),
    };
}

std::vector<ConvProblem>
resnet18Workloads()
{
    // Table 1 middle; '*' layers use stride 2.
    return {
        ConvProblem::fromImage("R1", 64, 3, 224, 7, 2),
        ConvProblem::fromImage("R2", 64, 64, 56, 3),
        ConvProblem::fromImage("R3", 64, 64, 56, 1),
        ConvProblem::fromImage("R4", 128, 64, 56, 3, 2),
        ConvProblem::fromImage("R5", 128, 64, 56, 1, 2),
        ConvProblem::fromImage("R6", 128, 128, 28, 3),
        ConvProblem::fromImage("R7", 256, 128, 28, 3, 2),
        ConvProblem::fromImage("R8", 256, 128, 28, 3),
        ConvProblem::fromImage("R9", 256, 256, 14, 3),
        ConvProblem::fromImage("R10", 512, 256, 14, 3, 2),
        ConvProblem::fromImage("R11", 512, 256, 14, 1, 2),
        ConvProblem::fromImage("R12", 512, 512, 7, 3),
    };
}

std::vector<ConvProblem>
mobilenetWorkloads()
{
    // Table 1 right; '*' layers use stride 2.
    return {
        ConvProblem::fromImage("M1", 32, 32, 112, 3),
        ConvProblem::fromImage("M2", 64, 64, 112, 3, 2),
        ConvProblem::fromImage("M3", 128, 128, 56, 3),
        ConvProblem::fromImage("M4", 128, 128, 56, 3, 2),
        ConvProblem::fromImage("M5", 256, 256, 28, 3),
        ConvProblem::fromImage("M6", 256, 256, 28, 3, 2),
        ConvProblem::fromImage("M7", 512, 512, 14, 3),
        ConvProblem::fromImage("M8", 512, 512, 14, 3, 2),
        ConvProblem::fromImage("M9", 1024, 1024, 7, 3),
    };
}

std::vector<ConvProblem>
allWorkloads()
{
    std::vector<ConvProblem> all = yolo9000Workloads();
    const auto resnet = resnet18Workloads();
    const auto mobilenet = mobilenetWorkloads();
    all.insert(all.end(), resnet.begin(), resnet.end());
    all.insert(all.end(), mobilenet.begin(), mobilenet.end());
    return all;
}

ConvProblem
workloadByName(const std::string &name)
{
    for (const auto &p : allWorkloads())
        if (p.name == name)
            return p;
    fatal("unknown workload: " + name);
}

std::vector<ConvProblem>
resnet18Network()
{
    // Torch-style layer names; each basic-block stage halves the image
    // and doubles the channels, with a 1x1/2 downsample on the first
    // block of stages 2-4.
    std::vector<ConvProblem> net;
    net.push_back(ConvProblem::fromImage("conv1", 64, 3, 224, 7, 2));
    for (int b = 0; b < 2; ++b)
        for (int c = 1; c <= 2; ++c)
            net.push_back(ConvProblem::fromImage(
                "layer1." + std::to_string(b) + ".conv" +
                    std::to_string(c),
                64, 64, 56, 3));
    struct Stage
    {
        const char *name;
        std::int64_t ch;
        std::int64_t image; //!< Input image of the stage's first conv.
    };
    const Stage stages[] = {
        {"layer2", 128, 56}, {"layer3", 256, 28}, {"layer4", 512, 14}};
    for (const Stage &st : stages) {
        const std::string prefix(st.name);
        net.push_back(ConvProblem::fromImage(prefix + ".0.conv1", st.ch,
                                             st.ch / 2, st.image, 3, 2));
        net.push_back(ConvProblem::fromImage(prefix + ".0.conv2", st.ch,
                                             st.ch, st.image / 2, 3));
        net.push_back(ConvProblem::fromImage(prefix + ".0.downsample",
                                             st.ch, st.ch / 2, st.image,
                                             1, 2));
        net.push_back(ConvProblem::fromImage(prefix + ".1.conv1", st.ch,
                                             st.ch, st.image / 2, 3));
        net.push_back(ConvProblem::fromImage(prefix + ".1.conv2", st.ch,
                                             st.ch, st.image / 2, 3));
    }
    return net;
}

std::vector<ConvProblem>
vgg16Network()
{
    // The 13 3x3 convs of configuration D: 2-2-3-3-3 per stage, image
    // halved by pooling between stages.
    std::vector<ConvProblem> net;
    const struct
    {
        int stage;
        int convs;
        std::int64_t ch_in;
        std::int64_t ch;
        std::int64_t image;
    } stages[] = {{1, 2, 3, 64, 224},
                  {2, 2, 64, 128, 112},
                  {3, 3, 128, 256, 56},
                  {4, 3, 256, 512, 28},
                  {5, 3, 512, 512, 14}};
    for (const auto &st : stages)
        for (int c = 1; c <= st.convs; ++c)
            net.push_back(ConvProblem::fromImage(
                "conv" + std::to_string(st.stage) + "_" +
                    std::to_string(c),
                st.ch, c == 1 ? st.ch_in : st.ch, st.image, 3));
    return net;
}

std::vector<ConvProblem>
yolov3Network()
{
    // Darknet-53 backbone: a 3x3/2 downsample into each stage, then
    // residual blocks of (1x1 squeeze, 3x3 expand).
    std::vector<ConvProblem> net;
    net.push_back(ConvProblem::fromImage("dark0.conv", 32, 3, 416, 3));
    const struct
    {
        int stage;
        int blocks;
        std::int64_t ch;    //!< Stage output channels.
        std::int64_t image; //!< Input image of the downsample conv.
    } stages[] = {{1, 1, 64, 416},
                  {2, 2, 128, 208},
                  {3, 8, 256, 104},
                  {4, 8, 512, 52},
                  {5, 4, 1024, 26}};
    for (const auto &st : stages) {
        const std::string prefix = "dark" + std::to_string(st.stage);
        net.push_back(ConvProblem::fromImage(prefix + ".conv", st.ch,
                                             st.ch / 2, st.image, 3, 2));
        for (int b = 0; b < st.blocks; ++b) {
            const std::string block = prefix + "." + std::to_string(b);
            net.push_back(ConvProblem::fromImage(
                block + ".conv1", st.ch / 2, st.ch, st.image / 2, 1));
            net.push_back(ConvProblem::fromImage(
                block + ".conv2", st.ch, st.ch / 2, st.image / 2, 3));
        }
    }
    return net;
}

std::vector<ConvProblem>
networkByName(const std::string &name)
{
    const std::string n = toLower(name);
    if (n == "resnet18" || n == "resnet-18")
        return resnet18Network();
    if (n == "vgg16" || n == "vgg-16")
        return vgg16Network();
    if (n == "yolov3" || n == "yolo-v3" || n == "darknet53")
        return yolov3Network();
    fatal("unknown network: " + name +
          " (expected resnet18, vgg16, or yolov3)");
}

} // namespace mopt
