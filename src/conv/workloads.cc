#include "conv/workloads.hh"

#include "common/logging.hh"

namespace mopt {

std::vector<ConvProblem>
yolo9000Workloads()
{
    // Layer, K, C, H/W (input), R/S, stride (Table 1 left; stride 1 all).
    return {
        ConvProblem::fromImage("Y0", 32, 3, 544, 3),
        ConvProblem::fromImage("Y2", 64, 32, 272, 3),
        ConvProblem::fromImage("Y4", 128, 64, 136, 3),
        ConvProblem::fromImage("Y5", 64, 128, 136, 1),
        ConvProblem::fromImage("Y8", 256, 128, 68, 3),
        ConvProblem::fromImage("Y9", 128, 256, 68, 1),
        ConvProblem::fromImage("Y12", 512, 256, 34, 3),
        ConvProblem::fromImage("Y13", 256, 512, 34, 1),
        ConvProblem::fromImage("Y18", 1024, 512, 17, 3),
        ConvProblem::fromImage("Y19", 512, 1024, 17, 1),
        ConvProblem::fromImage("Y23", 28269, 1024, 17, 1),
    };
}

std::vector<ConvProblem>
resnet18Workloads()
{
    // Table 1 middle; '*' layers use stride 2.
    return {
        ConvProblem::fromImage("R1", 64, 3, 224, 7, 2),
        ConvProblem::fromImage("R2", 64, 64, 56, 3),
        ConvProblem::fromImage("R3", 64, 64, 56, 1),
        ConvProblem::fromImage("R4", 128, 64, 56, 3, 2),
        ConvProblem::fromImage("R5", 128, 64, 56, 1, 2),
        ConvProblem::fromImage("R6", 128, 128, 28, 3),
        ConvProblem::fromImage("R7", 256, 128, 28, 3, 2),
        ConvProblem::fromImage("R8", 256, 128, 28, 3),
        ConvProblem::fromImage("R9", 256, 256, 14, 3),
        ConvProblem::fromImage("R10", 512, 256, 14, 3, 2),
        ConvProblem::fromImage("R11", 512, 256, 14, 1, 2),
        ConvProblem::fromImage("R12", 512, 512, 7, 3),
    };
}

std::vector<ConvProblem>
mobilenetWorkloads()
{
    // Table 1 right; '*' layers use stride 2.
    return {
        ConvProblem::fromImage("M1", 32, 32, 112, 3),
        ConvProblem::fromImage("M2", 64, 64, 112, 3, 2),
        ConvProblem::fromImage("M3", 128, 128, 56, 3),
        ConvProblem::fromImage("M4", 128, 128, 56, 3, 2),
        ConvProblem::fromImage("M5", 256, 256, 28, 3),
        ConvProblem::fromImage("M6", 256, 256, 28, 3, 2),
        ConvProblem::fromImage("M7", 512, 512, 14, 3),
        ConvProblem::fromImage("M8", 512, 512, 14, 3, 2),
        ConvProblem::fromImage("M9", 1024, 1024, 7, 3),
    };
}

std::vector<ConvProblem>
allWorkloads()
{
    std::vector<ConvProblem> all = yolo9000Workloads();
    const auto resnet = resnet18Workloads();
    const auto mobilenet = mobilenetWorkloads();
    all.insert(all.end(), resnet.begin(), resnet.end());
    all.insert(all.end(), mobilenet.begin(), mobilenet.end());
    return all;
}

ConvProblem
workloadByName(const std::string &name)
{
    for (const auto &p : allWorkloads())
        if (p.name == name)
            return p;
    fatal("unknown workload: " + name);
}

// The full-network builders declared in workloads.hh are IR
// constructors now: see src/frontend/registry.cc, which defines each
// network as a NetworkDef and lowers it.

} // namespace mopt
