#include "conv/problem.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace mopt {

ConvProblem
ConvProblem::fromImage(const std::string &name, std::int64_t k,
                       std::int64_t c, std::int64_t image, std::int64_t rs,
                       int stride, std::int64_t batch, std::int64_t groups)
{
    ConvProblem p;
    p.name = name;
    p.n = batch;
    p.k = k;
    p.c = c;
    p.r = rs;
    p.s = rs;
    p.stride = stride;
    p.groups = groups;
    const std::int64_t pad = (rs - 1) / 2;
    p.h = (image + 2 * pad - rs) / stride + 1;
    p.w = p.h;
    p.validate();
    return p;
}

ConvProblem
ConvProblem::downscaled(std::int64_t max_hw, std::int64_t max_ch) const
{
    ConvProblem p = *this;
    p.h = std::min(h, max_hw);
    p.w = std::min(w, max_hw);
    p.c = std::min(c, max_ch);
    p.k = std::min(k, max_ch);
    // Keep the groups divisibility invariant: round channels down to a
    // multiple of groups (never below one channel per group).
    p.c = std::max(groups, p.c - p.c % groups);
    p.k = std::max(groups, p.k - p.k % groups);
    if (p != *this)
        p.name = name + "-ds";
    return p;
}

std::string
ConvProblem::summary() const
{
    std::ostringstream oss;
    oss << name << ": N=" << n << " K=" << k << " C=" << c << " H=" << h
        << " W=" << w << " R=" << r << " S=" << s << " stride=" << stride;
    if (dilation != 1)
        oss << " dilation=" << dilation;
    if (groups != 1)
        oss << " groups=" << groups;
    return oss.str();
}

void
ConvProblem::validate() const
{
    checkUser(n >= 1 && k >= 1 && c >= 1 && r >= 1 && s >= 1 && h >= 1 &&
                  w >= 1,
              "ConvProblem: extents must be >= 1 (" + summary() + ")");
    checkUser(stride >= 1, "ConvProblem: stride must be >= 1");
    checkUser(dilation >= 1, "ConvProblem: dilation must be >= 1");
    checkUser(groups >= 1, "ConvProblem: groups must be >= 1");
    checkUser(k % groups == 0 && c % groups == 0,
              "ConvProblem: groups must divide both K and C (" + summary() +
                  ")");
}

} // namespace mopt
