/**
 * @file
 * ConvProblem: the shape of one conv2d operator (Eq. 1 of the paper):
 *
 *   Out[n,k,h,w] = sum_{c,r,s} In[n,c,h*stride+r,w*stride+s] * Ker[k,c,r,s]
 *
 * The problem is stored in terms of *output* spatial extents (Nh, Nw);
 * the accessed input has extent (Nh-1)*stride + (R-1)*dilation + 1
 * along h (the paper's Nh + R - 1 at stride = dilation = 1). Same-style
 * padding is absorbed into the materialized input tensor, matching the
 * paper's benchmarking setup where H/W in Table 1 are input image
 * sizes. Dilation follows the paper's footnote 1: the methodology is
 * applicable to the general strided/dilated case.
 */

#ifndef MOPT_CONV_PROBLEM_HH
#define MOPT_CONV_PROBLEM_HH

#include <cstdint>
#include <string>

namespace mopt {

/** Shape of a single conv2d operator. All extents are >= 1. */
struct ConvProblem
{
    std::string name;    //!< Layer label (e.g. "Y0", "R3", "M5").
    std::int64_t n = 1;  //!< Batch size.
    std::int64_t k = 1;  //!< Output channels.
    std::int64_t c = 1;  //!< Input channels.
    std::int64_t r = 1;  //!< Kernel height.
    std::int64_t s = 1;  //!< Kernel width.
    std::int64_t h = 1;  //!< Output height.
    std::int64_t w = 1;  //!< Output width.
    int stride = 1;      //!< Kernel stride (same in both spatial dims).
    int dilation = 1;    //!< Kernel dilation (same in both spatial dims).

    /**
     * Channel groups (1 = dense conv, c = depthwise). The group index
     * is an implicit outermost loop: group g reads input channels
     * [g*c/groups, (g+1)*c/groups) and writes output channels
     * [g*k/groups, (g+1)*k/groups), so the kernel tensor is
     * [k][c/groups][r][s]. Must divide both k and c.
     */
    std::int64_t groups = 1;

    /**
     * Build a problem from an input image size with "same" padding
     * (pad = (r-1)/2), the convention of the paper's Table 1.
     *
     * @param name     layer label
     * @param k        output channels
     * @param c        input channels
     * @param image    input image height == width
     * @param rs       kernel height == width
     * @param stride   kernel stride
     * @param batch    batch size
     * @param groups   channel groups (must divide k and c)
     */
    static ConvProblem fromImage(const std::string &name, std::int64_t k,
                                 std::int64_t c, std::int64_t image,
                                 std::int64_t rs, int stride = 1,
                                 std::int64_t batch = 1,
                                 std::int64_t groups = 1);

    /** Accessed (padded) input extent along h:
     *  (h-1)*stride + (r-1)*dilation + 1. */
    std::int64_t inH() const
    {
        return (h - 1) * stride + (r - 1) * dilation + 1;
    }

    /** Accessed (padded) input extent along w:
     *  (w-1)*stride + (s-1)*dilation + 1. */
    std::int64_t inW() const
    {
        return (w - 1) * stride + (s - 1) * dilation + 1;
    }

    /** Output channels per group. */
    std::int64_t kPerGroup() const { return k / groups; }

    /** Input channels per group (the kernel tensor's C extent). */
    std::int64_t cPerGroup() const { return c / groups; }

    /** Total multiply-add count: n*k*(c/groups)*r*s*h*w — each output
     *  channel only reduces over its own group's input channels. */
    std::int64_t macs() const { return n * k * cPerGroup() * r * s * h * w; }

    /** Floating point operations (2 per MAC). */
    double flops() const { return 2.0 * static_cast<double>(macs()); }

    /** Elements of In / Ker / Out. */
    std::int64_t inSize() const { return n * c * inH() * inW(); }
    std::int64_t kerSize() const { return k * cPerGroup() * r * s; }
    std::int64_t outSize() const { return n * k * h * w; }

    /**
     * A proportionally downscaled copy for trace-driven cache
     * simulation: spatial extents capped at @p max_hw and channels at
     * @p max_ch (keeping kernel extents and stride). Returns *this
     * when already small enough.
     */
    ConvProblem downscaled(std::int64_t max_hw, std::int64_t max_ch) const;

    /** Human-readable "K=64 C=32 H/W=56 R/S=3 s=1" summary. */
    std::string summary() const;

    /** Validate all extents; throws FatalError on nonsense. */
    void validate() const;

    bool operator==(const ConvProblem &o) const = default;
};

} // namespace mopt

#endif // MOPT_CONV_PROBLEM_HH
