/**
 * @file
 * Dense 4-D float tensors in row-major order. The CNN computation uses
 * In[N][C][H][W] (NCHW), Ker[K][C][R][S] (KCRS), Out[N][K][H][W].
 * A packed kernel layout [K/vl][C][R][S][vl] is provided by packing.hh.
 */

#ifndef MOPT_TENSOR_TENSOR_HH
#define MOPT_TENSOR_TENSOR_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mopt {

class Rng;

/**
 * A dense row-major 4-D float tensor. Dimensions are named generically
 * d0..d3; semantic layouts (NCHW, KCRS) are a convention of the caller.
 */
class Tensor4
{
  public:
    /** An empty (0-element) tensor. */
    Tensor4() : dims_{0, 0, 0, 0} {}

    /** Allocate a d0 x d1 x d2 x d3 tensor, zero-initialized. */
    Tensor4(std::int64_t d0, std::int64_t d1, std::int64_t d2,
            std::int64_t d3);

    /** Dimension extent. */
    std::int64_t dim(int i) const { return dims_[static_cast<std::size_t>(i)]; }

    /** Total number of elements. */
    std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }

    /** Flat offset of (i0, i1, i2, i3); bounds-checked in debug builds. */
    std::int64_t
    offset(std::int64_t i0, std::int64_t i1, std::int64_t i2,
           std::int64_t i3) const
    {
        return ((i0 * dims_[1] + i1) * dims_[2] + i2) * dims_[3] + i3;
    }

    /** Element access. */
    float &
    at(std::int64_t i0, std::int64_t i1, std::int64_t i2, std::int64_t i3)
    {
        return data_[static_cast<std::size_t>(offset(i0, i1, i2, i3))];
    }

    float
    at(std::int64_t i0, std::int64_t i1, std::int64_t i2,
       std::int64_t i3) const
    {
        return data_[static_cast<std::size_t>(offset(i0, i1, i2, i3))];
    }

    /** Raw storage. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Set every element to @p v. */
    void fill(float v);

    /** Fill with uniform random values in [-1, 1). */
    void fillRandom(Rng &rng);

    /** Max absolute element-wise difference; tensors must match shape. */
    static double maxAbsDiff(const Tensor4 &a, const Tensor4 &b);

    /** True if shapes are equal. */
    static bool sameShape(const Tensor4 &a, const Tensor4 &b);

  private:
    std::array<std::int64_t, 4> dims_;
    std::vector<float> data_;
};

} // namespace mopt

#endif // MOPT_TENSOR_TENSOR_HH
