/**
 * @file
 * Kernel packing (Sec. 6 of the paper): the output-channel dimension K
 * is split into vector-length chunks laid out innermost,
 * [K, C, R, S] -> [K/vl, C, R, S, vl], so the microkernel gets stride-1
 * access along the vectorized K dimension. The packing cost is part of
 * every measured execution, as in the paper.
 */

#ifndef MOPT_TENSOR_PACKING_HH
#define MOPT_TENSOR_PACKING_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace mopt {

/**
 * Kernel tensor packed as [ceil(K/vl)][C][R][S][vl]. The K tail (when K
 * is not a multiple of vl) is zero-padded, which is safe because the
 * extra lanes multiply into output channels that are never stored.
 */
class PackedKernel
{
  public:
    /** Pack @p ker (KCRS layout) with vector length @p vec_len. */
    PackedKernel(const Tensor4 &ker, int vec_len);

    int vecLen() const { return vec_len_; }
    std::int64_t numChannels() const { return c_; }
    std::int64_t numOutChannels() const { return k_; }
    std::int64_t kernelH() const { return r_; }
    std::int64_t kernelW() const { return s_; }
    std::int64_t numKBlocks() const { return kb_; }

    /** Pointer to the vl-length lane block for (kb, c, r, s). */
    const float *
    lanes(std::int64_t kb, std::int64_t c, std::int64_t r,
          std::int64_t s) const
    {
        return data_.data() +
               static_cast<std::size_t>(
                   (((kb * c_ + c) * r_ + r) * s_ + s) * vec_len_);
    }

    /** Element accessor (k is an original output-channel index). */
    float at(std::int64_t k, std::int64_t c, std::int64_t r,
             std::int64_t s) const;

    /** Unpack to KCRS (for round-trip testing). */
    Tensor4 unpack() const;

    /** Flat size in floats (including padding). */
    std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }

  private:
    int vec_len_;
    std::int64_t k_, c_, r_, s_, kb_;
    std::vector<float> data_;
};

} // namespace mopt

#endif // MOPT_TENSOR_PACKING_HH
