#include "tensor/packing.hh"

#include "common/logging.hh"

namespace mopt {

PackedKernel::PackedKernel(const Tensor4 &ker, int vec_len)
    : vec_len_(vec_len), k_(ker.dim(0)), c_(ker.dim(1)), r_(ker.dim(2)),
      s_(ker.dim(3))
{
    checkUser(vec_len >= 1, "PackedKernel: vec_len must be >= 1");
    kb_ = (k_ + vec_len_ - 1) / vec_len_;
    data_.assign(static_cast<std::size_t>(kb_ * c_ * r_ * s_ * vec_len_),
                 0.0f);
    for (std::int64_t k = 0; k < k_; ++k) {
        const std::int64_t kb = k / vec_len_;
        const std::int64_t lane = k % vec_len_;
        for (std::int64_t c = 0; c < c_; ++c)
            for (std::int64_t r = 0; r < r_; ++r)
                for (std::int64_t s = 0; s < s_; ++s) {
                    const std::size_t idx = static_cast<std::size_t>(
                        (((kb * c_ + c) * r_ + r) * s_ + s) * vec_len_ +
                        lane);
                    data_[idx] = ker.at(k, c, r, s);
                }
    }
}

float
PackedKernel::at(std::int64_t k, std::int64_t c, std::int64_t r,
                 std::int64_t s) const
{
    const std::int64_t kb = k / vec_len_;
    const std::int64_t lane = k % vec_len_;
    return lanes(kb, c, r, s)[lane];
}

Tensor4
PackedKernel::unpack() const
{
    Tensor4 out(k_, c_, r_, s_);
    for (std::int64_t k = 0; k < k_; ++k)
        for (std::int64_t c = 0; c < c_; ++c)
            for (std::int64_t r = 0; r < r_; ++r)
                for (std::int64_t s = 0; s < s_; ++s)
                    out.at(k, c, r, s) = at(k, c, r, s);
    return out;
}

} // namespace mopt
