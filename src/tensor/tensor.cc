#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace mopt {

Tensor4::Tensor4(std::int64_t d0, std::int64_t d1, std::int64_t d2,
                 std::int64_t d3)
    : dims_{d0, d1, d2, d3}
{
    checkUser(d0 >= 0 && d1 >= 0 && d2 >= 0 && d3 >= 0,
              "Tensor4: negative dimension");
    data_.assign(static_cast<std::size_t>(d0 * d1 * d2 * d3), 0.0f);
}

void
Tensor4::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
Tensor4::fillRandom(Rng &rng)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.uniformReal(-1.0, 1.0));
}

double
Tensor4::maxAbsDiff(const Tensor4 &a, const Tensor4 &b)
{
    checkUser(sameShape(a, b), "maxAbsDiff: shape mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < a.data_.size(); ++i)
        m = std::max(m, std::fabs(static_cast<double>(a.data_[i]) -
                                  static_cast<double>(b.data_[i])));
    return m;
}

bool
Tensor4::sameShape(const Tensor4 &a, const Tensor4 &b)
{
    return a.dims_ == b.dims_;
}

} // namespace mopt
