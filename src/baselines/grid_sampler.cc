#include "baselines/grid_sampler.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "model/footprint.hh"
#include "model/parallel_model.hh"
#include "model/pruned_classes.hh"
#include "optimizer/mopt_optimizer.hh"

namespace mopt {

namespace {

/** Log-uniform integer in [lo, hi]. */
std::int64_t
logUniform(Rng &rng, std::int64_t lo, std::int64_t hi)
{
    if (lo >= hi)
        return lo;
    const double x = rng.uniformReal(std::log(static_cast<double>(lo)),
                                     std::log(static_cast<double>(hi) +
                                              0.999));
    return std::clamp<std::int64_t>(
        static_cast<std::int64_t>(std::exp(x)), lo, hi);
}

/** Shrink the largest contributor until the footprint fits @p cap. */
void
shrinkToFit(IntTileVec &tiles, const IntTileVec &floor_tiles,
            const ConvProblem &p, double cap)
{
    int guard = 0;
    while (totalFootprint(tiles, p) > cap && guard++ < 256) {
        // Pick the dim with the largest ratio over its floor.
        int best = -1;
        double best_ratio = 1.0;
        for (int d = 0; d < NumDims; ++d) {
            const auto sd = static_cast<std::size_t>(d);
            const double ratio =
                static_cast<double>(tiles[sd]) /
                static_cast<double>(floor_tiles[sd]);
            if (ratio > best_ratio) {
                best_ratio = ratio;
                best = d;
            }
        }
        if (best < 0)
            break;
        const auto sb = static_cast<std::size_t>(best);
        tiles[sb] = std::max(floor_tiles[sb], tiles[sb] / 2);
    }
}

/**
 * Grow tiles (doubling the dim closest to its floor) until the
 * footprint reaches @p target or no dim can grow without exceeding
 * @p cap or the extents.
 */
void
growToFill(IntTileVec &tiles, const IntTileVec &extents,
           const ConvProblem &p, double target, double cap)
{
    int guard = 0;
    while (totalFootprint(tiles, p) < target && guard++ < 256) {
        int best = -1;
        double best_ratio = std::numeric_limits<double>::infinity();
        for (int d = 0; d < NumDims; ++d) {
            const auto sd = static_cast<std::size_t>(d);
            if (tiles[sd] >= extents[sd])
                continue;
            IntTileVec trial = tiles;
            trial[sd] = std::min(extents[sd], tiles[sd] * 2);
            if (totalFootprint(trial, p) > cap)
                continue;
            const double ratio = static_cast<double>(tiles[sd]) /
                                 static_cast<double>(extents[sd]);
            if (ratio < best_ratio) {
                best_ratio = ratio;
                best = d;
            }
        }
        if (best < 0)
            break;
        const auto sb = static_cast<std::size_t>(best);
        tiles[sb] = std::min(extents[sb], tiles[sb] * 2);
    }
}

} // namespace

ExecConfig
sampleConfig(const ConvProblem &p, const MachineSpec &m, Rng &rng,
             const SamplerOptions &opts)
{
    const IntTileVec extents = problemExtents(p);
    const IntTileVec reg = microkernelTiles(p, m);
    const auto reps = prunedRepresentatives();

    ExecConfig cfg;
    cfg.perm[LvlReg] = microkernelPermutation();
    cfg.tiles[LvlReg] = reg;

    for (int d = 0; d < NumDims; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        // Three nested sizes: draw and sort.
        std::array<std::int64_t, 3> t;
        for (auto &x : t)
            x = logUniform(rng, reg[sd], extents[sd]);
        std::sort(t.begin(), t.end());
        for (int l = 0; l < 3; ++l)
            cfg.tiles[static_cast<std::size_t>(LvlL1 + l)][sd] =
                t[static_cast<std::size_t>(l)];
    }
    // Snap k tiles to microkernel blocks so the executor's fast path
    // stays representative.
    const std::int64_t kblock = reg[DimK];
    for (int l = LvlL1; l <= LvlL3; ++l) {
        auto &tk = cfg.tiles[static_cast<std::size_t>(l)][DimK];
        tk = std::max<std::int64_t>(
            kblock,
            std::min(extents[DimK], (tk / kblock) * kblock));
    }

    for (int l = LvlL1; l <= LvlL3; ++l)
        cfg.perm[static_cast<std::size_t>(l)] = rng.choice(reps);

    if (opts.fit_capacity) {
        // Inner to outer, with the inner level's tiles as the floor:
        // the worst shrink collapses onto the inner tile, whose
        // footprint fits the (strictly smaller) inner capacity, so
        // every level is guaranteed feasible and nesting holds by
        // construction.
        IntTileVec floor_tiles = reg;
        for (int l = LvlL1; l <= LvlL3; ++l) {
            const double cap =
                static_cast<double>(m.capacityWords(l));
            auto &tiles = cfg.tiles[static_cast<std::size_t>(l)];
            for (int d = 0; d < NumDims; ++d) {
                const auto sd = static_cast<std::size_t>(d);
                tiles[sd] = std::max(tiles[sd], floor_tiles[sd]);
            }
            shrinkToFit(tiles, floor_tiles, p, cap);
            if (opts.min_fill > 0.0)
                growToFill(tiles, extents, p, opts.min_fill * cap, cap);
            floor_tiles = tiles;
        }
    }

    if (opts.parallel) {
        const auto splits = parallelSplits(m.cores, cfg.tiles[LvlL3]);
        cfg.par = splits[rng.index(splits.size())];
    }
    return cfg;
}

std::vector<ExecConfig>
sampleConfigs(const ConvProblem &p, const MachineSpec &m, Rng &rng,
              const SamplerOptions &opts)
{
    std::vector<ExecConfig> configs;
    configs.reserve(static_cast<std::size_t>(opts.count));
    for (int i = 0; i < opts.count; ++i)
        configs.push_back(sampleConfig(p, m, rng, opts));
    return configs;
}

} // namespace mopt
