#include "baselines/heuristic_lib.hh"

#include <algorithm>

#include "common/logging.hh"
#include "model/footprint.hh"
#include "model/parallel_model.hh"
#include "optimizer/mopt_optimizer.hh"

namespace mopt {

namespace {

/** The three pre-determined code structures the library picks from. */
enum class Rule { PointwiseConv, SpatialConv, DeepConv };

Rule
classify(const ConvProblem &p)
{
    if (p.r == 1 && p.s == 1)
        return Rule::PointwiseConv;
    if (p.h >= 56)
        return Rule::SpatialConv;
    return Rule::DeepConv;
}

std::int64_t
fitC(const ConvProblem &p, IntTileVec tiles, double cap)
{
    // Largest c tile that keeps the footprint within cap.
    std::int64_t lo = 1, hi = p.c;
    while (lo < hi) {
        const std::int64_t mid = (lo + hi + 1) / 2;
        tiles[DimC] = mid;
        if (totalFootprint(tiles, p) <= cap)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

} // namespace

const char *
heuristicRuleName(const ConvProblem &p)
{
    switch (classify(p)) {
      case Rule::PointwiseConv:
        return "pointwise";
      case Rule::SpatialConv:
        return "spatial";
      case Rule::DeepConv:
        return "deep";
    }
    return "?";
}

ExecConfig
heuristicConfig(const ConvProblem &p, const MachineSpec &m, bool parallel)
{
    const IntTileVec extents = problemExtents(p);
    const IntTileVec reg = microkernelTiles(p, m);

    ExecConfig cfg;
    cfg.perm[LvlReg] = microkernelPermutation();
    cfg.tiles[LvlReg] = reg;
    // The library always uses the same loop order: output channels and
    // reduction outermost, spatial dims inner (a common direct-conv
    // schedule).
    const Permutation lib_perm = Permutation::parse("kcrsnhw");
    for (int l = LvlL1; l <= LvlL3; ++l) {
        cfg.perm[static_cast<std::size_t>(l)] = lib_perm;
        cfg.tiles[static_cast<std::size_t>(l)] = extents;
    }

    const Rule rule = classify(p);

    // L1 block: one k register block wide, a row of register tiles
    // along w, c chosen to fill L1.
    IntTileVec t1 = reg;
    t1[DimK] = std::min<std::int64_t>(extents[DimK], reg[DimK]);
    t1[DimW] = std::min<std::int64_t>(
        extents[DimW],
        rule == Rule::SpatialConv ? reg[DimW] * 4 : reg[DimW] * 2);
    t1[DimH] = 1;
    t1[DimR] = extents[DimR];
    t1[DimS] = extents[DimS];
    t1[DimC] = fitC(p, t1, 0.8 * static_cast<double>(m.capacityWords(LvlL1)));
    cfg.tiles[LvlL1] = t1;

    // L2 block: full w rows, more h, full reduction.
    IntTileVec t2 = t1;
    t2[DimW] = extents[DimW];
    t2[DimC] = extents[DimC];
    t2[DimH] = 1;
    while (t2[DimH] < extents[DimH] &&
           totalFootprint(t2, p) <
               0.5 * static_cast<double>(m.capacityWords(LvlL2)))
        ++t2[DimH];
    t2[DimC] = fitC(p, t2, 0.8 * static_cast<double>(m.capacityWords(LvlL2)));
    if (rule == Rule::PointwiseConv)
        t2[DimK] = std::min<std::int64_t>(extents[DimK], 4 * reg[DimK]);
    cfg.tiles[LvlL2] = t2;

    // L3 block: grow k and h to fill the shared cache.
    IntTileVec t3 = t2;
    t3[DimC] = extents[DimC];
    t3[DimK] = std::min<std::int64_t>(
        extents[DimK],
        std::max<std::int64_t>(t2[DimK], 8 * reg[DimK]));
    t3[DimH] = extents[DimH];
    while (totalFootprint(t3, p) >
               0.8 * static_cast<double>(m.capacityWords(LvlL3)) &&
           t3[DimK] > t2[DimK])
        t3[DimK] = std::max(t2[DimK], t3[DimK] / 2);
    while (totalFootprint(t3, p) >
               0.8 * static_cast<double>(m.capacityWords(LvlL3)) &&
           t3[DimH] > t2[DimH])
        t3[DimH] = std::max(t2[DimH], t3[DimH] / 2);
    cfg.tiles[LvlL3] = t3;

    // Nesting repair.
    for (int d = 0; d < NumDims; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        cfg.tiles[LvlL2][sd] =
            std::clamp(cfg.tiles[LvlL2][sd], cfg.tiles[LvlL1][sd],
                       extents[sd]);
        cfg.tiles[LvlL3][sd] =
            std::clamp(cfg.tiles[LvlL3][sd], cfg.tiles[LvlL2][sd],
                       extents[sd]);
    }

    if (parallel) {
        // Static partitioning: prefer h, then k.
        const auto splits = parallelSplits(m.cores, cfg.tiles[LvlL3]);
        IntTileVec best = splits.front();
        double best_score = -1.0;
        for (const auto &s : splits) {
            // Library rule of thumb: favor spatial parallelism.
            const double score =
                2.0 * static_cast<double>(s[DimH]) +
                static_cast<double>(s[DimK]) +
                0.5 * static_cast<double>(s[DimW]) +
                0.25 * static_cast<double>(s[DimN]);
            if (score > best_score) {
                best_score = score;
                best = s;
            }
        }
        cfg.par = best;
    }
    return cfg;
}

} // namespace mopt
