/**
 * @file
 * oneDNN-style baseline (Table 2: "minimal design-space exploration"):
 * a fixed, hand-tuned blocking strategy selected from a small rule
 * table by layer shape — no search, no model. This reproduces the
 * *policy* of a tuned vendor library: excellent microkernel (shared
 * with MOpt here), pre-determined tiled code structures.
 */

#ifndef MOPT_BASELINES_HEURISTIC_LIB_HH
#define MOPT_BASELINES_HEURISTIC_LIB_HH

#include "conv/problem.hh"
#include "machine/machine.hh"
#include "model/tile_config.hh"

namespace mopt {

/**
 * Produce the library's blocking for @p p on @p m.
 * @param parallel attach the library's static core partitioning.
 */
ExecConfig heuristicConfig(const ConvProblem &p, const MachineSpec &m,
                           bool parallel = true);

/** Name of the rule the library picked (for logs/tables). */
const char *heuristicRuleName(const ConvProblem &p);

} // namespace mopt

#endif // MOPT_BASELINES_HEURISTIC_LIB_HH
