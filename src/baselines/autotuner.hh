/**
 * @file
 * AutoTVM-style baseline (Table 2: "limited design-space exploration
 * with empirical auto-tuning"): a trial-budgeted search that measures
 * candidate configurations by actually running them, guided by an
 * online-learned surrogate cost model (ridge regression over
 * log-features — our stand-in for TVM's XGBTuner) with epsilon-greedy
 * exploration and perturbation of the incumbent.
 */

#ifndef MOPT_BASELINES_AUTOTUNER_HH
#define MOPT_BASELINES_AUTOTUNER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "conv/problem.hh"
#include "machine/machine.hh"
#include "model/tile_config.hh"

namespace mopt {

/** Options for autotune. */
struct TunerOptions
{
    int trials = 64;         //!< Measured configurations (paper: 1000).
    int pool_size = 64;      //!< Candidates scored per trial batch.
    double epsilon = 0.15;   //!< Fraction of random (exploration) picks.
    bool parallel = true;    //!< Search parallel configurations.
    std::uint64_t seed = 99;
    int threads = 0;         //!< Threads per measurement (0 = cfg.par).

    /**
     * Constrain proposals to a TVM-template-like subspace, mirroring
     * "generic.schedule_conv2d_nchw" (the script the paper tunes
     * with): a fixed loop order, divisor splits of the k / c / w
     * extents at a single blocking level, no multi-level cache
     * tiling, no permutation search, and no capacity model. This is
     * Table 2's "limited design-space exploration"; set false for a
     * full-space tuner searching MOpt's own space.
     */
    bool template_space = true;
};

/** A measurement function: seconds taken by a configuration. */
using MeasureFn = std::function<double(const ExecConfig &)>;

/** Result of a tuning session. */
struct TunerResult
{
    ExecConfig best;
    double best_seconds = 0.0;
    std::vector<double> history; //!< best-so-far after each trial
    double tuning_seconds = 0.0; //!< wall-clock of the whole search
    int trials = 0;
};

/**
 * Run the tuner: each trial proposes candidates (random samples and
 * perturbations of the incumbent), ranks them with the surrogate,
 * measures the top pick with @p measure, and updates the surrogate.
 */
TunerResult autotune(const ConvProblem &p, const MachineSpec &m,
                     const MeasureFn &measure,
                     const TunerOptions &opts = TunerOptions());

/**
 * Default measurement function: one warm + one timed execution on the
 * host (exec/measure.hh).
 */
MeasureFn makeExecutionMeasure(const ConvProblem &p, int threads = 0);

} // namespace mopt

#endif // MOPT_BASELINES_AUTOTUNER_HH
