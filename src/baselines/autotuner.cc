#include "baselines/autotuner.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/grid_sampler.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/timer.hh"
#include "exec/measure.hh"
#include "model/parallel_model.hh"
#include "model/pruned_classes.hh"
#include "optimizer/mopt_optimizer.hh"

namespace mopt {

namespace {

constexpr int kNumFeatures = 3 * NumDims + 3 + 1; // tiles, class ids, bias

/** Log-scale feature vector of a configuration. */
std::vector<double>
features(const ExecConfig &cfg)
{
    std::vector<double> f;
    f.reserve(kNumFeatures);
    for (int l = LvlL1; l <= LvlL3; ++l)
        for (int d = 0; d < NumDims; ++d)
            f.push_back(std::log2(static_cast<double>(
                cfg.tiles[static_cast<std::size_t>(l)]
                         [static_cast<std::size_t>(d)])));
    const auto &classes = prunedClasses();
    for (int l = LvlL1; l <= LvlL3; ++l) {
        double id = 0.0;
        for (std::size_t c = 0; c < classes.size(); ++c)
            if (classes[c].contains(
                    cfg.perm[static_cast<std::size_t>(l)])) {
                id = static_cast<double>(c) + 1.0;
                break;
            }
        f.push_back(id);
    }
    f.push_back(1.0); // bias
    return f;
}

/**
 * Incremental ridge regression: maintains X^T X and X^T y, solves the
 * normal equations by Gaussian elimination with partial pivoting.
 */
class RidgeModel
{
  public:
    explicit RidgeModel(int dim, double lambda = 1e-2)
        : dim_(dim), lambda_(lambda),
          xtx_(static_cast<std::size_t>(dim * dim), 0.0),
          xty_(static_cast<std::size_t>(dim), 0.0),
          weights_(static_cast<std::size_t>(dim), 0.0)
    {
    }

    void
    observe(const std::vector<double> &x, double y)
    {
        for (int i = 0; i < dim_; ++i) {
            for (int j = 0; j < dim_; ++j)
                xtx_[static_cast<std::size_t>(i * dim_ + j)] +=
                    x[static_cast<std::size_t>(i)] *
                    x[static_cast<std::size_t>(j)];
            xty_[static_cast<std::size_t>(i)] +=
                x[static_cast<std::size_t>(i)] * y;
        }
        ++samples_;
        refit();
    }

    double
    predict(const std::vector<double> &x) const
    {
        double y = 0.0;
        for (int i = 0; i < dim_; ++i)
            y += weights_[static_cast<std::size_t>(i)] *
                 x[static_cast<std::size_t>(i)];
        return y;
    }

    int samples() const { return samples_; }

  private:
    void
    refit()
    {
        // Solve (X^T X + lambda I) w = X^T y.
        const int n = dim_;
        std::vector<double> a(xtx_);
        std::vector<double> b(xty_);
        for (int i = 0; i < n; ++i)
            a[static_cast<std::size_t>(i * n + i)] += lambda_;
        for (int col = 0; col < n; ++col) {
            int pivot = col;
            for (int row = col + 1; row < n; ++row)
                if (std::fabs(a[static_cast<std::size_t>(row * n + col)]) >
                    std::fabs(
                        a[static_cast<std::size_t>(pivot * n + col)]))
                    pivot = row;
            if (std::fabs(a[static_cast<std::size_t>(pivot * n + col)]) <
                1e-12)
                continue;
            if (pivot != col) {
                for (int j = 0; j < n; ++j)
                    std::swap(a[static_cast<std::size_t>(col * n + j)],
                              a[static_cast<std::size_t>(pivot * n + j)]);
                std::swap(b[static_cast<std::size_t>(col)],
                          b[static_cast<std::size_t>(pivot)]);
            }
            for (int row = col + 1; row < n; ++row) {
                const double f =
                    a[static_cast<std::size_t>(row * n + col)] /
                    a[static_cast<std::size_t>(col * n + col)];
                for (int j = col; j < n; ++j)
                    a[static_cast<std::size_t>(row * n + j)] -=
                        f * a[static_cast<std::size_t>(col * n + j)];
                b[static_cast<std::size_t>(row)] -=
                    f * b[static_cast<std::size_t>(col)];
            }
        }
        for (int row = n - 1; row >= 0; --row) {
            double acc = b[static_cast<std::size_t>(row)];
            for (int j = row + 1; j < n; ++j)
                acc -= a[static_cast<std::size_t>(row * n + j)] *
                       weights_[static_cast<std::size_t>(j)];
            const double diag = a[static_cast<std::size_t>(row * n + row)];
            weights_[static_cast<std::size_t>(row)] =
                std::fabs(diag) < 1e-12 ? 0.0 : acc / diag;
        }
    }

    int dim_;
    double lambda_;
    std::vector<double> xtx_, xty_, weights_;
    int samples_ = 0;
};

/** Randomly perturb one level/dim of @p cfg (stay nested). */
ExecConfig
perturb(const ExecConfig &cfg, const ConvProblem &p, Rng &rng)
{
    const IntTileVec extents = problemExtents(p);
    ExecConfig out = cfg;
    const int l = static_cast<int>(rng.uniformInt(LvlL1, LvlL3));
    const int d = static_cast<int>(rng.uniformInt(0, NumDims - 1));
    const auto sd = static_cast<std::size_t>(d);
    auto &t = out.tiles[static_cast<std::size_t>(l)][sd];
    t = rng.uniform01() < 0.5 ? std::max<std::int64_t>(1, t / 2)
                              : std::min(extents[sd], t * 2);
    // Repair nesting.
    for (int dd = 0; dd < NumDims; ++dd) {
        const auto sdd = static_cast<std::size_t>(dd);
        std::int64_t lo = out.tiles[LvlReg][sdd];
        for (int ll = LvlL1; ll <= LvlL3; ++ll) {
            auto &tt = out.tiles[static_cast<std::size_t>(ll)][sdd];
            tt = std::clamp(tt, lo, extents[sdd]);
            lo = tt;
        }
    }
    return out;
}

/** All positive divisors of @p n, ascending. */
std::vector<std::int64_t>
divisorsOf(std::int64_t n)
{
    std::vector<std::int64_t> out;
    for (std::int64_t d = 1; d * d <= n; ++d)
        if (n % d == 0) {
            out.push_back(d);
            if (d != n / d)
                out.push_back(n / d);
        }
    std::sort(out.begin(), out.end());
    return out;
}

/** Random divisor of @p n that is >= @p lo (falls back to n). */
std::int64_t
randomDivisor(Rng &rng, std::int64_t n, std::int64_t lo)
{
    std::vector<std::int64_t> ds;
    for (std::int64_t d : divisorsOf(n))
        if (d >= lo)
            ds.push_back(d);
    if (ds.empty())
        return n;
    return ds[rng.index(ds.size())];
}

/**
 * TVM-template proposal ("generic.schedule_conv2d_nchw"): one level
 * of blocking with divisor splits of the k / c / w extents (TVM's
 * tile_oc / tile_ic / tile_ow knobs), a fixed nkhwcrs loop order, h
 * processed row by row, and no L2/L3 cache tiling — the template
 * trusts the memory hierarchy beyond its single blocking level.
 */
ExecConfig
sampleTemplateConfig(const ConvProblem &p, const MachineSpec &m, Rng &rng,
                     bool parallel)
{
    const IntTileVec extents = problemExtents(p);
    const IntTileVec reg = microkernelTiles(p, m);

    ExecConfig cfg;
    cfg.perm[LvlReg] = microkernelPermutation();
    cfg.tiles[LvlReg] = reg;
    const Permutation order = Permutation::parse("nkhwcrs");
    for (int l = LvlL1; l <= LvlL3; ++l) {
        cfg.perm[static_cast<std::size_t>(l)] = order;
        cfg.tiles[static_cast<std::size_t>(l)] = extents;
    }

    auto &l1 = cfg.tiles[LvlL1];
    l1[DimN] = 1;
    l1[DimK] = randomDivisor(rng, extents[DimK], reg[DimK]);
    l1[DimC] = randomDivisor(rng, extents[DimC], 1);
    l1[DimW] = randomDivisor(rng, extents[DimW], reg[DimW]);
    l1[DimH] = 1; // the template computes output rows one at a time

    if (parallel) {
        const auto splits = parallelSplits(m.cores, cfg.tiles[LvlL3]);
        cfg.par = splits[rng.index(splits.size())];
    }
    return cfg;
}

/** Re-roll one template knob (stays inside the template space). */
ExecConfig
perturbTemplate(const ExecConfig &cfg, const ConvProblem &p,
                const MachineSpec &m, Rng &rng)
{
    const IntTileVec extents = problemExtents(p);
    const IntTileVec reg = microkernelTiles(p, m);
    ExecConfig out = cfg;
    auto &l1 = out.tiles[LvlL1];
    switch (rng.uniformInt(0, 2)) {
      case 0:
        l1[DimK] = randomDivisor(rng, extents[DimK], reg[DimK]);
        break;
      case 1:
        l1[DimC] = randomDivisor(rng, extents[DimC], 1);
        break;
      default:
        l1[DimW] = randomDivisor(rng, extents[DimW], reg[DimW]);
        break;
    }
    return out;
}

} // namespace

MeasureFn
makeExecutionMeasure(const ConvProblem &p, int threads)
{
    return [p, threads](const ExecConfig &cfg) {
        return quickMeasureSeconds(p, cfg, threads);
    };
}

TunerResult
autotune(const ConvProblem &p, const MachineSpec &m,
         const MeasureFn &measure, const TunerOptions &opts)
{
    Timer timer;
    Rng rng(opts.seed);
    SamplerOptions sopts;
    sopts.fit_capacity = true;
    sopts.parallel = opts.parallel;

    RidgeModel model(kNumFeatures);
    TunerResult result;
    result.best_seconds = std::numeric_limits<double>::infinity();

    const auto propose = [&]() {
        return opts.template_space
                   ? sampleTemplateConfig(p, m, rng, opts.parallel)
                   : sampleConfig(p, m, rng, sopts);
    };
    const auto mutate = [&](const ExecConfig &cfg) {
        return opts.template_space ? perturbTemplate(cfg, p, m, rng)
                                   : perturb(cfg, p, rng);
    };

    for (int trial = 0; trial < opts.trials; ++trial) {
        ExecConfig pick;
        const bool explore =
            model.samples() < 4 || rng.uniform01() < opts.epsilon;
        if (explore) {
            pick = propose();
        } else {
            // Candidate pool: fresh samples + incumbent perturbations,
            // ranked by the surrogate.
            double best_pred = std::numeric_limits<double>::infinity();
            for (int i = 0; i < opts.pool_size; ++i) {
                ExecConfig cand = (i % 2 == 0 || result.history.empty())
                                      ? propose()
                                      : mutate(result.best);
                const double pred = model.predict(features(cand));
                if (pred < best_pred) {
                    best_pred = pred;
                    pick = cand;
                }
            }
        }

        const double seconds = measure(pick);
        model.observe(features(pick), std::log(std::max(seconds, 1e-9)));
        if (seconds < result.best_seconds) {
            result.best_seconds = seconds;
            result.best = pick;
        }
        result.history.push_back(result.best_seconds);
        ++result.trials;
    }
    result.tuning_seconds = timer.seconds();
    return result;
}

} // namespace mopt
