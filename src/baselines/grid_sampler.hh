/**
 * @file
 * Uniform sampler over the tiling design space, used by the Sec. 9
 * model-validation experiments: ~100 configurations per operator
 * uniformly distributed over permutation classes and (log-scale) tile
 * sizes, optionally constrained to fit the cache capacities.
 */

#ifndef MOPT_BASELINES_GRID_SAMPLER_HH
#define MOPT_BASELINES_GRID_SAMPLER_HH

#include <vector>

#include "common/rng.hh"
#include "conv/problem.hh"
#include "machine/machine.hh"
#include "model/tile_config.hh"

namespace mopt {

/** Options for sampleConfigs. */
struct SamplerOptions
{
    int count = 100;
    bool fit_capacity = true; //!< Shrink tiles until footprints fit.
    bool parallel = false;    //!< Attach a parallel split per sample.

    /**
     * Grow each level's tiles until the footprint reaches this
     * fraction of the level capacity (0 disables). The analytical
     * model's validity condition (Sec. 2.2: two adjacent tiles exceed
     * capacity) corresponds to 0.5 — validation experiments sample
     * within that regime, since smaller tiles waste capacity and
     * would never be chosen.
     */
    double min_fill = 0.0;
};

/**
 * Draw tiling configurations: per level a random pruned-class
 * representative permutation and log-uniform nested tile sizes
 * (k snapped to microkernel blocks). Register tiling is pinned to the
 * microkernel.
 */
std::vector<ExecConfig> sampleConfigs(const ConvProblem &p,
                                      const MachineSpec &m, Rng &rng,
                                      const SamplerOptions &opts =
                                          SamplerOptions());

/** Draw a single configuration (same distribution). */
ExecConfig sampleConfig(const ConvProblem &p, const MachineSpec &m,
                        Rng &rng, const SamplerOptions &opts =
                                      SamplerOptions());

} // namespace mopt

#endif // MOPT_BASELINES_GRID_SAMPLER_HH
