#include "solver/multistart.hh"

#include <limits>

#include "common/logging.hh"

namespace mopt {

NlpResult
solveMultiStart(const NlpProblem &prob,
                const std::vector<std::vector<double>> &seeds,
                const MultiStartOptions &opts, SolverScratch *scratch)
{
    Rng rng(opts.seed);
    const std::vector<double> &lo = prob.lowerBounds();
    const std::vector<double> &hi = prob.upperBounds();
    const int n = prob.dim();

    std::vector<std::vector<double>> starts = seeds;
    for (int s = 0; s < opts.random_starts; ++s) {
        std::vector<double> x(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            x[static_cast<std::size_t>(i)] =
                rng.uniformReal(lo[static_cast<std::size_t>(i)],
                                hi[static_cast<std::size_t>(i)]);
        starts.push_back(std::move(x));
    }
    checkUser(!starts.empty(), "solveMultiStart: no starting points");

    NlpResult best;
    best.objective = std::numeric_limits<double>::infinity();
    best.max_violation = std::numeric_limits<double>::infinity();
    best.feasible = false;
    long total_evals = 0;

    for (const auto &x0 : starts) {
        NlpResult r = solveAugLag(prob, x0, opts.auglag, scratch);
        total_evals += r.evals;
        if (betterNlpResult(r, best))
            best = std::move(r);
    }
    best.evals = total_evals;
    return best;
}

} // namespace mopt
