/**
 * @file
 * Gradient verification: compares a problem's evalWithGrad derivatives
 * (analytic or fallback) against independent central finite
 * differences of evalAll. Used by the test suite to validate the
 * closed-form model gradients and available as a debugging aid when
 * adding new differentiable objectives.
 */

#ifndef MOPT_SOLVER_GRADIENT_CHECK_HH
#define MOPT_SOLVER_GRADIENT_CHECK_HH

#include <vector>

#include "solver/nlp.hh"

namespace mopt {

/** Worst observed discrepancy of one gradientCheck call. */
struct GradCheckResult
{
    /** max over all (objective + constraint, coordinate) pairs of
     *  |analytic - fd| / max(1, |analytic|, |fd|). */
    double max_rel_err = 0.0;
    int worst_constraint = -1; //!< -1 = objective row.
    int worst_coord = -1;
};

/**
 * Check evalWithGrad against central differences of evalAll at @p x.
 * Finite-difference steps are projected onto the box; coordinates with
 * a collapsed interval are skipped.
 *
 * @param prob  the problem
 * @param x     evaluation point (size dim())
 * @param h     relative finite-difference step
 */
GradCheckResult gradientCheck(const NlpProblem &prob,
                              const std::vector<double> &x,
                              double h = 1e-6);

} // namespace mopt

#endif // MOPT_SOLVER_GRADIENT_CHECK_HH
