#include "solver/discrete_refine.hh"

#include <algorithm>
#include <limits>
#include <set>

#include "common/logging.hh"

namespace mopt {

std::int64_t
balancedTile(std::int64_t n, std::int64_t t)
{
    checkUser(n >= 1 && t >= 1, "balancedTile: bad arguments");
    t = std::min(t, n);
    const std::int64_t tiles = (n + t - 1) / t;
    return (n + tiles - 1) / tiles;
}

std::vector<std::int64_t>
hillClimb(const DiscreteProblem &prob, std::vector<std::int64_t> start,
          const HillClimbOptions &opts)
{
    const std::size_t n = start.size();
    checkUser(prob.lo.size() == n && prob.hi.size() == n,
              "hillClimb: bound size mismatch");
    for (std::size_t i = 0; i < n; ++i)
        start[i] = std::clamp(start[i], prob.lo[i], prob.hi[i]);

    std::vector<std::int64_t> x = start;
    double best = prob.cost(x);

    for (int round = 0; round < opts.max_rounds; ++round) {
        bool improved = false;
        for (std::size_t i = 0; i < n; ++i) {
            std::set<std::int64_t> cands = {
                x[i] - 1, x[i] + 1, x[i] * 2, x[i] / 2, prob.lo[i],
                prob.hi[i]};
            if (!prob.extents.empty()) {
                cands.insert(balancedTile(prob.extents[i], x[i]));
                if (x[i] > 1)
                    cands.insert(balancedTile(prob.extents[i], x[i] - 1));
                cands.insert(balancedTile(prob.extents[i], x[i] + 1));
            }
            std::int64_t best_v = x[i];
            for (std::int64_t cand : cands) {
                if (cand == x[i] || cand < prob.lo[i] || cand > prob.hi[i])
                    continue;
                const std::int64_t saved = x[i];
                x[i] = cand;
                const double c = prob.cost(x);
                if (c < best) {
                    best = c;
                    best_v = cand;
                }
                x[i] = saved;
            }
            if (best_v != x[i]) {
                x[i] = best_v;
                improved = true;
            }
        }
        if (!improved)
            break;
    }

    // If the start itself was infeasible and nothing feasible was
    // found, x still carries the least-cost point visited per sweep;
    // callers treat +inf cost as "no feasible refinement".
    if (best == std::numeric_limits<double>::infinity())
        return start;
    return x;
}

} // namespace mopt
