/**
 * @file
 * Divisor-aware discrete refinement: the continuous solver returns
 * real tile sizes; after flooring (Algorithm 1 line 23), a local hill
 * climb over integer neighbours recovers the loss from rounding and
 * snaps sizes onto balanced partitions of the problem extents.
 */

#ifndef MOPT_SOLVER_DISCRETE_REFINE_HH
#define MOPT_SOLVER_DISCRETE_REFINE_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace mopt {

/** An unconstrained-but-penalized integer minimization problem. */
struct DiscreteProblem
{
    /**
     * Cost of a point; return +infinity for infeasible points.
     * Lower is better.
     */
    std::function<double(const std::vector<std::int64_t> &)> cost;

    /** Per-coordinate inclusive bounds. */
    std::vector<std::int64_t> lo, hi;

    /**
     * Optional per-coordinate "extent" used to generate balanced-
     * partition candidate moves (ceil(extent / ceil(extent / x))).
     * Empty to disable.
     */
    std::vector<std::int64_t> extents;
};

/** Options for hillClimb. */
struct HillClimbOptions
{
    int max_rounds = 12;  //!< Full coordinate sweeps.
};

/**
 * Greedy coordinate hill climb from @p start: each round tries, for
 * every coordinate, the moves {x-1, x+1, 2x, x/2, balanced-partition
 * snap, lo, hi} and keeps the best improvement. Stops when a full
 * round yields no improvement.
 */
std::vector<std::int64_t> hillClimb(const DiscreteProblem &prob,
                                    std::vector<std::int64_t> start,
                                    const HillClimbOptions &opts =
                                        HillClimbOptions());

/**
 * The balanced partition size for extent @p n and target tile @p t:
 * the smallest tile size that still needs the same number of tiles,
 * ceil(n / ceil(n / t)). Minimizes partial-tile waste.
 */
std::int64_t balancedTile(std::int64_t n, std::int64_t t);

} // namespace mopt

#endif // MOPT_SOLVER_DISCRETE_REFINE_HH
