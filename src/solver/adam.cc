#include "solver/adam.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace mopt {

std::vector<double>
adamMinimize(const std::function<double(const std::vector<double> &)> &f,
             std::vector<double> x0, const std::vector<double> &lo,
             const std::vector<double> &hi, const AdamOptions &opts,
             long &evals)
{
    const std::size_t n = x0.size();
    checkUser(lo.size() == n && hi.size() == n, "adamMinimize: size mismatch");

    // Derivative-free facade over the single Adam loop: a combined
    // value+gradient evaluator built from box-projected central
    // differences with reused probe buffers.
    std::vector<double> xp = x0, xm = x0;
    auto fg = [&](const std::vector<double> &x,
                  std::vector<double> &grad) {
        xp = x;
        xm = x;
        for (std::size_t i = 0; i < n; ++i) {
            const double h =
                opts.grad_h * std::max(1.0, std::fabs(x[i]));
            xp[i] = std::min(hi[i], x[i] + h);
            xm[i] = std::max(lo[i], x[i] - h);
            const double denom = xp[i] - xm[i];
            if (denom > 0.0) {
                grad[i] = (f(xp) - f(xm)) / denom;
                evals += 2;
            } else {
                grad[i] = 0.0;
            }
            xp[i] = x[i];
            xm[i] = x[i];
        }
        ++evals;
        return f(x);
    };

    AdamScratch scratch;
    adamMinimizeGrad(fg, x0, lo, hi, opts, scratch);
    return x0;
}

double
adamMinimizeGrad(const std::function<double(const std::vector<double> &,
                                            std::vector<double> &)> &fg,
                 std::vector<double> &x, const std::vector<double> &lo,
                 const std::vector<double> &hi, const AdamOptions &opts,
                 AdamScratch &scratch)
{
    const std::size_t n = x.size();
    checkUser(lo.size() == n && hi.size() == n,
              "adamMinimizeGrad: size mismatch");

    auto clamp = [&](std::vector<double> &xx) {
        for (std::size_t i = 0; i < n; ++i)
            xx[i] = std::clamp(xx[i], lo[i], hi[i]);
    };
    clamp(x);

    scratch.m.assign(n, 0.0);
    scratch.v.assign(n, 0.0);
    scratch.grad.assign(n, 0.0);
    scratch.best = x;
    double best_f = std::numeric_limits<double>::infinity();

    double lr = opts.lr;
    double beta1_pow = 1.0, beta2_pow = 1.0;

    for (int step = 1; step <= opts.max_steps; ++step) {
        const double fx = fg(x, scratch.grad);
        if (fx < best_f) {
            best_f = fx;
            scratch.best = x;
        }

        beta1_pow *= opts.beta1;
        beta2_pow *= opts.beta2;
        const double m_corr = 1.0 / (1.0 - beta1_pow);
        const double v_corr = 1.0 / (1.0 - beta2_pow);
        double step_norm = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double gi = scratch.grad[i];
            scratch.m[i] = opts.beta1 * scratch.m[i] + (1.0 - opts.beta1) * gi;
            scratch.v[i] =
                opts.beta2 * scratch.v[i] + (1.0 - opts.beta2) * gi * gi;
            const double delta = lr * (scratch.m[i] * m_corr) /
                                 (std::sqrt(scratch.v[i] * v_corr) + opts.eps);
            x[i] -= delta;
            step_norm += delta * delta;
        }
        clamp(x);
        lr *= opts.lr_decay;
        if (std::sqrt(step_norm) < opts.tol)
            break;
    }

    // The gradient is evaluated before each update, so the final point
    // has not been scored yet.
    const double fx = fg(x, scratch.grad);
    if (fx < best_f) {
        best_f = fx;
        scratch.best = x;
    }
    x = scratch.best;
    return best_f;
}

} // namespace mopt
