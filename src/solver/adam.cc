#include "solver/adam.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mopt {

std::vector<double>
adamMinimize(const std::function<double(const std::vector<double> &)> &f,
             std::vector<double> x0, const std::vector<double> &lo,
             const std::vector<double> &hi, const AdamOptions &opts,
             long &evals)
{
    const std::size_t n = x0.size();
    checkUser(lo.size() == n && hi.size() == n, "adamMinimize: size mismatch");

    auto clamp = [&](std::vector<double> &x) {
        for (std::size_t i = 0; i < n; ++i)
            x[i] = std::clamp(x[i], lo[i], hi[i]);
    };
    clamp(x0);

    std::vector<double> x = x0;
    std::vector<double> best = x;
    double best_f = f(x);
    ++evals;

    std::vector<double> m(n, 0.0), v(n, 0.0), grad(n, 0.0);
    double lr = opts.lr;

    for (int step = 1; step <= opts.max_steps; ++step) {
        // Central-difference gradient, projected onto the box.
        for (std::size_t i = 0; i < n; ++i) {
            const double h =
                opts.grad_h * std::max(1.0, std::fabs(x[i]));
            std::vector<double> xp = x, xm = x;
            xp[i] = std::min(hi[i], x[i] + h);
            xm[i] = std::max(lo[i], x[i] - h);
            const double denom = xp[i] - xm[i];
            if (denom <= 0.0) {
                grad[i] = 0.0;
                continue;
            }
            grad[i] = (f(xp) - f(xm)) / denom;
            evals += 2;
        }

        double step_norm = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            m[i] = opts.beta1 * m[i] + (1.0 - opts.beta1) * grad[i];
            v[i] = opts.beta2 * v[i] + (1.0 - opts.beta2) * grad[i] * grad[i];
            const double mh = m[i] / (1.0 - std::pow(opts.beta1, step));
            const double vh = v[i] / (1.0 - std::pow(opts.beta2, step));
            const double delta = lr * mh / (std::sqrt(vh) + opts.eps);
            x[i] -= delta;
            step_norm += delta * delta;
        }
        clamp(x);
        lr *= opts.lr_decay;

        const double fx = f(x);
        ++evals;
        if (fx < best_f) {
            best_f = fx;
            best = x;
        }
        if (std::sqrt(step_norm) < opts.tol)
            break;
    }
    return best;
}

} // namespace mopt
