/**
 * @file
 * Multi-start wrapper around the augmented-Lagrangian solver: runs
 * from caller-provided seeds plus uniform random points in the box
 * and keeps the best feasible result. The tile-size programs are
 * mildly non-convex (products of ratios), so a handful of starts
 * reliably finds the global basin.
 */

#ifndef MOPT_SOLVER_MULTISTART_HH
#define MOPT_SOLVER_MULTISTART_HH

#include <vector>

#include "common/rng.hh"
#include "solver/augmented_lagrangian.hh"

namespace mopt {

/** Options for solveMultiStart. */
struct MultiStartOptions
{
    int random_starts = 4;     //!< Random points in addition to seeds.
    AugLagOptions auglag;
    std::uint64_t seed = 12345;
};

/**
 * Solve @p prob from every point in @p seeds plus random starts.
 * Returns the best result (feasible preferred, then objective,
 * then violation; ties keep the earliest start, so results are
 * deterministic).
 *
 * @param scratch  optional reusable solver buffers shared by the
 *                 sequential starts
 */
NlpResult solveMultiStart(const NlpProblem &prob,
                          const std::vector<std::vector<double>> &seeds,
                          const MultiStartOptions &opts = MultiStartOptions(),
                          SolverScratch *scratch = nullptr);

} // namespace mopt

#endif // MOPT_SOLVER_MULTISTART_HH
