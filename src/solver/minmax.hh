/**
 * @file
 * Min-max driver (Sec. 5 of the paper): nonlinear solvers cannot
 * minimize max(f_1..f_L) directly, so we solve L constrained problems
 * — for each l, minimize f_l subject to f_l >= f_k for all k — and
 * take the best. Component functions must be strictly positive
 * (bandwidth-scaled data-movement times); the implementation works
 * with log(f) for well-scaled constraints.
 */

#ifndef MOPT_SOLVER_MINMAX_HH
#define MOPT_SOLVER_MINMAX_HH

#include <functional>
#include <vector>

#include "solver/multistart.hh"

namespace mopt {

/** A min(max(f_1..f_L)) problem with shared constraints g_i <= 0. */
struct MinMaxProblem
{
    int dim = 0;
    std::vector<double> lo, hi;
    int num_components = 0; //!< L
    int num_shared = 0;     //!< Shared inequality constraints.

    /**
     * Evaluate everything at @p x: fill @p comps (size L, strictly
     * positive) and @p shared (size num_shared, feasible iff <= 0).
     */
    std::function<void(const std::vector<double> &, std::vector<double> &,
                       std::vector<double> &)>
        eval;
};

/** Result of solveMinMax. */
struct MinMaxResult
{
    /** Which component was binding at the best solution. */
    int best_component = -1;

    /** Best solution across the L sub-problems. */
    NlpResult best;

    /** max_k f_k at the best solution. */
    double best_max = 0.0;

    /** Per-sub-problem results (index = objective component). */
    std::vector<NlpResult> per_component;
};

/**
 * Solve the min-max problem via L constrained minimizations.
 * @p seeds are starting points shared by all sub-problems.
 */
MinMaxResult solveMinMax(const MinMaxProblem &prob,
                         const std::vector<std::vector<double>> &seeds,
                         const MultiStartOptions &opts = MultiStartOptions());

} // namespace mopt

#endif // MOPT_SOLVER_MINMAX_HH
