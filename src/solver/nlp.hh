/**
 * @file
 * Constrained nonlinear program interface. This is the repo's
 * substitute for the paper's AMPL + Ipopt stack: the tile-size
 * problems of Secs. 5/7 are smooth, posynomial-like programs in at
 * most 21 variables, solved here by an augmented-Lagrangian method
 * (augmented_lagrangian.hh) with multi-start (multistart.hh).
 */

#ifndef MOPT_SOLVER_NLP_HH
#define MOPT_SOLVER_NLP_HH

#include <functional>
#include <vector>

namespace mopt {

/**
 * minimize    f(x)
 * subject to  g_i(x) <= 0   (i = 0..numConstraints-1)
 *             lo <= x <= hi (box, enforced by clamping)
 *
 * evalAll() computes the objective and every constraint in one call;
 * problems whose constraints share work (like the bandwidth-scaled
 * level times, which all come from one model evaluation) should
 * override it.
 */
class NlpProblem
{
  public:
    virtual ~NlpProblem() = default;

    virtual int dim() const = 0;
    virtual int numConstraints() const = 0;
    virtual const std::vector<double> &lowerBounds() const = 0;
    virtual const std::vector<double> &upperBounds() const = 0;

    /**
     * Evaluate objective and constraints at @p x.
     * @param x  point of size dim()
     * @param g  output, resized to numConstraints()
     * @return objective value
     */
    virtual double evalAll(const std::vector<double> &x,
                           std::vector<double> &g) const = 0;

    /** Whether evalWithGrad computes analytic (closed-form) gradients. */
    virtual bool hasGradient() const { return false; }

    /**
     * Cost of one evalWithGrad call in evalAll-equivalent model
     * evaluations: 1 for analytic gradients, 2*dim() + 1 for the
     * central-difference fallback. Solvers use this to keep eval
     * counters comparable across both paths.
     */
    virtual long gradEvalCost() const
    {
        return hasGradient() ? 1 : 2 * dim() + 1;
    }

    /**
     * Evaluate objective, constraints, and their first derivatives.
     *
     * @param x       point of size dim()
     * @param g       constraints, resized to numConstraints()
     * @param grad_f  objective gradient, resized to dim()
     * @param jac     constraint Jacobian, row-major numConstraints() x
     *                dim(), resized accordingly
     * @param fd_h    relative finite-difference step for the fallback
     *                implementation (solvers pass their configured
     *                step, e.g. AdamOptions::grad_h); ignored by
     *                analytic implementations
     * @return objective value
     *
     * The default implementation uses central finite differences of
     * evalAll with steps projected onto the box; problems with
     * closed-form derivatives override it and return true from
     * hasGradient().
     */
    virtual double evalWithGrad(const std::vector<double> &x,
                                std::vector<double> &g,
                                std::vector<double> &grad_f,
                                std::vector<double> &jac,
                                double fd_h = 1e-6) const;

    /** Objective only (default: evalAll and discard constraints). */
    virtual double objective(const std::vector<double> &x) const;

    /** Largest constraint value at @p x (<= 0 means feasible). */
    double maxViolation(const std::vector<double> &x) const;
};

/** NlpProblem assembled from std::functions. */
class FunctionalNlp : public NlpProblem
{
  public:
    using BatchFn =
        std::function<double(const std::vector<double> &,
                             std::vector<double> &)>;

    /**
     * @param dim             number of variables
     * @param num_constraints number of inequality constraints
     * @param fn              batch evaluator (returns objective, fills
     *                        the constraint vector)
     */
    FunctionalNlp(int dim, int num_constraints, std::vector<double> lo,
                  std::vector<double> hi, BatchFn fn);

    int dim() const override { return dim_; }
    int numConstraints() const override { return num_constraints_; }
    const std::vector<double> &lowerBounds() const override { return lo_; }
    const std::vector<double> &upperBounds() const override { return hi_; }
    double evalAll(const std::vector<double> &x,
                   std::vector<double> &g) const override;

  private:
    int dim_;
    int num_constraints_;
    std::vector<double> lo_, hi_;
    BatchFn fn_;
};

/** Result of a solve. */
struct NlpResult
{
    std::vector<double> x;       //!< Best point found.
    double objective = 0.0;      //!< Objective at x.
    double max_violation = 0.0;  //!< max_i g_i(x) (clamped at 0 from below).
    bool feasible = false;       //!< max_violation <= tolerance.
    long evals = 0;              //!< Model evaluations (evalAll units).
};

/**
 * The canonical result preference shared by every solver layer
 * (augmented Lagrangian, multi-start, and the optimizer's parallel
 * reduction): feasible beats infeasible; among feasible, lower
 * objective; among infeasible, lower violation. Strict, so reducing a
 * sequence in order keeps the earliest of tied results — the property
 * the deterministic parallel fan-out relies on.
 */
inline bool
betterNlpResult(const NlpResult &r, const NlpResult &best)
{
    return (r.feasible && !best.feasible) ||
           (r.feasible && best.feasible && r.objective < best.objective) ||
           (!r.feasible && !best.feasible &&
            r.max_violation < best.max_violation);
}

} // namespace mopt

#endif // MOPT_SOLVER_NLP_HH
