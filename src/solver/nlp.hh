/**
 * @file
 * Constrained nonlinear program interface. This is the repo's
 * substitute for the paper's AMPL + Ipopt stack: the tile-size
 * problems of Secs. 5/7 are smooth, posynomial-like programs in at
 * most 21 variables, solved here by an augmented-Lagrangian method
 * (augmented_lagrangian.hh) with multi-start (multistart.hh).
 */

#ifndef MOPT_SOLVER_NLP_HH
#define MOPT_SOLVER_NLP_HH

#include <functional>
#include <vector>

namespace mopt {

/**
 * minimize    f(x)
 * subject to  g_i(x) <= 0   (i = 0..numConstraints-1)
 *             lo <= x <= hi (box, enforced by clamping)
 *
 * evalAll() computes the objective and every constraint in one call;
 * problems whose constraints share work (like the bandwidth-scaled
 * level times, which all come from one model evaluation) should
 * override it.
 */
class NlpProblem
{
  public:
    virtual ~NlpProblem() = default;

    virtual int dim() const = 0;
    virtual int numConstraints() const = 0;
    virtual const std::vector<double> &lowerBounds() const = 0;
    virtual const std::vector<double> &upperBounds() const = 0;

    /**
     * Evaluate objective and constraints at @p x.
     * @param x  point of size dim()
     * @param g  output, resized to numConstraints()
     * @return objective value
     */
    virtual double evalAll(const std::vector<double> &x,
                           std::vector<double> &g) const = 0;

    /** Objective only (default: evalAll and discard constraints). */
    virtual double objective(const std::vector<double> &x) const;

    /** Largest constraint value at @p x (<= 0 means feasible). */
    double maxViolation(const std::vector<double> &x) const;
};

/** NlpProblem assembled from std::functions. */
class FunctionalNlp : public NlpProblem
{
  public:
    using BatchFn =
        std::function<double(const std::vector<double> &,
                             std::vector<double> &)>;

    /**
     * @param dim             number of variables
     * @param num_constraints number of inequality constraints
     * @param fn              batch evaluator (returns objective, fills
     *                        the constraint vector)
     */
    FunctionalNlp(int dim, int num_constraints, std::vector<double> lo,
                  std::vector<double> hi, BatchFn fn);

    int dim() const override { return dim_; }
    int numConstraints() const override { return num_constraints_; }
    const std::vector<double> &lowerBounds() const override { return lo_; }
    const std::vector<double> &upperBounds() const override { return hi_; }
    double evalAll(const std::vector<double> &x,
                   std::vector<double> &g) const override;

  private:
    int dim_;
    int num_constraints_;
    std::vector<double> lo_, hi_;
    BatchFn fn_;
};

/** Result of a solve. */
struct NlpResult
{
    std::vector<double> x;       //!< Best point found.
    double objective = 0.0;      //!< Objective at x.
    double max_violation = 0.0;  //!< max_i g_i(x) (clamped at 0 from below).
    bool feasible = false;       //!< max_violation <= tolerance.
    long evals = 0;              //!< Total evalAll() calls.
};

} // namespace mopt

#endif // MOPT_SOLVER_NLP_HH
