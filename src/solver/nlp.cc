#include "solver/nlp.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mopt {

namespace {

/** Reused constraint buffer for the objective/maxViolation wrappers:
 *  they are called in solver hot paths, so a fresh heap vector per
 *  call would dominate small-problem solves. */
std::vector<double> &
tlsConstraintScratch()
{
    thread_local std::vector<double> g;
    return g;
}

} // namespace

double
NlpProblem::objective(const std::vector<double> &x) const
{
    return evalAll(x, tlsConstraintScratch());
}

double
NlpProblem::maxViolation(const std::vector<double> &x) const
{
    std::vector<double> &g = tlsConstraintScratch();
    evalAll(x, g);
    double worst = 0.0;
    for (double gi : g)
        worst = std::max(worst, gi);
    return worst;
}

double
NlpProblem::evalWithGrad(const std::vector<double> &x,
                         std::vector<double> &g,
                         std::vector<double> &grad_f,
                         std::vector<double> &jac, double fd_h) const
{
    const int n = dim();
    const int m = numConstraints();
    grad_f.assign(static_cast<std::size_t>(n), 0.0);
    jac.assign(static_cast<std::size_t>(m) * static_cast<std::size_t>(n),
               0.0);
    const double f0 = evalAll(x, g);

    thread_local std::vector<double> xt, gp, gm;
    xt = x;
    const std::vector<double> &lo = lowerBounds();
    const std::vector<double> &hi = upperBounds();
    for (int i = 0; i < n; ++i) {
        const auto si = static_cast<std::size_t>(i);
        const double h = fd_h * std::max(1.0, std::fabs(x[si]));
        const double xp = std::min(hi[si], x[si] + h);
        const double xm = std::max(lo[si], x[si] - h);
        const double denom = xp - xm;
        if (denom <= 0.0)
            continue;
        xt[si] = xp;
        const double fp = evalAll(xt, gp);
        xt[si] = xm;
        const double fm = evalAll(xt, gm);
        xt[si] = x[si];
        grad_f[si] = (fp - fm) / denom;
        for (int j = 0; j < m; ++j)
            jac[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
                si] = (gp[static_cast<std::size_t>(j)] -
                       gm[static_cast<std::size_t>(j)]) /
                      denom;
    }
    return f0;
}

FunctionalNlp::FunctionalNlp(int dim, int num_constraints,
                             std::vector<double> lo, std::vector<double> hi,
                             BatchFn fn)
    : dim_(dim), num_constraints_(num_constraints), lo_(std::move(lo)),
      hi_(std::move(hi)), fn_(std::move(fn))
{
    checkUser(dim_ >= 1, "FunctionalNlp: dim must be >= 1");
    checkUser(static_cast<int>(lo_.size()) == dim_ &&
                  static_cast<int>(hi_.size()) == dim_,
              "FunctionalNlp: bound size mismatch");
    for (int i = 0; i < dim_; ++i)
        checkUser(lo_[static_cast<std::size_t>(i)] <=
                      hi_[static_cast<std::size_t>(i)],
                  "FunctionalNlp: lo > hi");
}

double
FunctionalNlp::evalAll(const std::vector<double> &x,
                       std::vector<double> &g) const
{
    g.resize(static_cast<std::size_t>(num_constraints_));
    return fn_(x, g);
}

} // namespace mopt
