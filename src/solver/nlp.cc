#include "solver/nlp.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mopt {

double
NlpProblem::objective(const std::vector<double> &x) const
{
    std::vector<double> g;
    return evalAll(x, g);
}

double
NlpProblem::maxViolation(const std::vector<double> &x) const
{
    std::vector<double> g;
    evalAll(x, g);
    double worst = 0.0;
    for (double gi : g)
        worst = std::max(worst, gi);
    return worst;
}

FunctionalNlp::FunctionalNlp(int dim, int num_constraints,
                             std::vector<double> lo, std::vector<double> hi,
                             BatchFn fn)
    : dim_(dim), num_constraints_(num_constraints), lo_(std::move(lo)),
      hi_(std::move(hi)), fn_(std::move(fn))
{
    checkUser(dim_ >= 1, "FunctionalNlp: dim must be >= 1");
    checkUser(static_cast<int>(lo_.size()) == dim_ &&
                  static_cast<int>(hi_.size()) == dim_,
              "FunctionalNlp: bound size mismatch");
    for (int i = 0; i < dim_; ++i)
        checkUser(lo_[static_cast<std::size_t>(i)] <=
                      hi_[static_cast<std::size_t>(i)],
                  "FunctionalNlp: lo > hi");
}

double
FunctionalNlp::evalAll(const std::vector<double> &x,
                       std::vector<double> &g) const
{
    g.resize(static_cast<std::size_t>(num_constraints_));
    return fn_(x, g);
}

} // namespace mopt
