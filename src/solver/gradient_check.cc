#include "solver/gradient_check.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mopt {

GradCheckResult
gradientCheck(const NlpProblem &prob, const std::vector<double> &x,
              double h)
{
    const int n = prob.dim();
    const int m = prob.numConstraints();
    checkUser(static_cast<int>(x.size()) == n,
              "gradientCheck: point size mismatch");

    std::vector<double> g, grad_f, jac;
    prob.evalWithGrad(x, g, grad_f, jac);

    const std::vector<double> &lo = prob.lowerBounds();
    const std::vector<double> &hi = prob.upperBounds();
    std::vector<double> xt = x, gp, gm;

    GradCheckResult res;
    auto record = [&res](double analytic, double fd, int row, int col) {
        const double denom =
            std::max({1.0, std::fabs(analytic), std::fabs(fd)});
        const double rel = std::fabs(analytic - fd) / denom;
        if (rel > res.max_rel_err) {
            res.max_rel_err = rel;
            res.worst_constraint = row;
            res.worst_coord = col;
        }
    };

    for (int i = 0; i < n; ++i) {
        const auto si = static_cast<std::size_t>(i);
        const double step = h * std::max(1.0, std::fabs(x[si]));
        const double xp = std::min(hi[si], x[si] + step);
        const double xm = std::max(lo[si], x[si] - step);
        const double denom = xp - xm;
        if (denom <= 0.0)
            continue; // collapsed (fixed) coordinate
        xt[si] = xp;
        const double fp = prob.evalAll(xt, gp);
        xt[si] = xm;
        const double fm = prob.evalAll(xt, gm);
        xt[si] = x[si];

        record(grad_f[si], (fp - fm) / denom, -1, i);
        for (int j = 0; j < m; ++j) {
            const auto sj = static_cast<std::size_t>(j);
            record(jac[sj * static_cast<std::size_t>(n) + si],
                   (gp[sj] - gm[sj]) / denom, j, i);
        }
    }
    return res;
}

} // namespace mopt
