#include "solver/minmax.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace mopt {

MinMaxResult
solveMinMax(const MinMaxProblem &prob,
            const std::vector<std::vector<double>> &seeds,
            const MultiStartOptions &opts)
{
    checkUser(prob.dim >= 1 && prob.num_components >= 1,
              "solveMinMax: bad problem");

    MinMaxResult result;
    result.per_component.resize(
        static_cast<std::size_t>(prob.num_components));
    result.best_max = std::numeric_limits<double>::infinity();

    for (int l = 0; l < prob.num_components; ++l) {
        // Sub-problem: minimize log f_l subject to shared constraints
        // and log f_k - log f_l <= 0 for all k != l.
        const int m = prob.num_shared + prob.num_components - 1;
        FunctionalNlp nlp(
            prob.dim, m, prob.lo, prob.hi,
            [&prob, l](const std::vector<double> &x,
                       std::vector<double> &g) {
                std::vector<double> comps, shared;
                prob.eval(x, comps, shared);
                const double fl =
                    std::log(std::max(comps[static_cast<std::size_t>(l)],
                                      1e-300));
                std::size_t gi = 0;
                for (double s : shared)
                    g[gi++] = s;
                for (int k = 0; k < prob.num_components; ++k) {
                    if (k == l)
                        continue;
                    g[gi++] =
                        std::log(std::max(
                            comps[static_cast<std::size_t>(k)], 1e-300)) -
                        fl;
                }
                return fl;
            });

        NlpResult r = solveMultiStart(nlp, seeds, opts);
        result.per_component[static_cast<std::size_t>(l)] = r;
        if (r.x.empty())
            continue;

        // Score by the true max component (robust even when the
        // dominance constraints are slightly violated).
        std::vector<double> comps, shared;
        prob.eval(r.x, comps, shared);
        double shared_viol = 0.0;
        for (double s : shared)
            shared_viol = std::max(shared_viol, s);
        if (shared_viol > opts.auglag.feas_tol)
            continue;
        const double fmax = *std::max_element(comps.begin(), comps.end());
        if (fmax < result.best_max) {
            result.best_max = fmax;
            result.best = r;
            result.best_component = l;
        }
    }
    return result;
}

} // namespace mopt
