/**
 * @file
 * Box-constrained first-order minimizer (Adam with numeric central
 * differences) used as the inner solver of the augmented-Lagrangian
 * method. Dimensions are tiny (<= 21), so numeric gradients are cheap
 * and robust.
 */

#ifndef MOPT_SOLVER_ADAM_HH
#define MOPT_SOLVER_ADAM_HH

#include <functional>
#include <vector>

namespace mopt {

/** Options for adamMinimize. */
struct AdamOptions
{
    int max_steps = 200;
    double lr = 0.1;          //!< Initial learning rate.
    double lr_decay = 0.995;  //!< Multiplicative decay per step.
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double grad_h = 1e-5;     //!< Relative finite-difference step.
    double tol = 1e-10;       //!< Stop when step size drops below this.
};

/**
 * Minimize @p f over the box [lo, hi] starting from @p x0 (clamped).
 *
 * @param f       scalar function of a dim-sized vector
 * @param x0      starting point
 * @param lo,hi   box bounds
 * @param opts    algorithm options
 * @param evals   incremented by the number of f evaluations
 * @return        the best point visited
 */
std::vector<double> adamMinimize(
    const std::function<double(const std::vector<double> &)> &f,
    std::vector<double> x0, const std::vector<double> &lo,
    const std::vector<double> &hi, const AdamOptions &opts, long &evals);

} // namespace mopt

#endif // MOPT_SOLVER_ADAM_HH
