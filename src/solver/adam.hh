/**
 * @file
 * Box-constrained first-order minimizer (Adam) used as the inner
 * solver of the augmented-Lagrangian method. The primary entry point
 * is the gradient-based adamMinimizeGrad (one caller-supplied
 * value+gradient evaluation per step, allocation-free via
 * AdamScratch); adamMinimize is a derivative-free facade over it that
 * builds the gradient from central differences.
 */

#ifndef MOPT_SOLVER_ADAM_HH
#define MOPT_SOLVER_ADAM_HH

#include <functional>
#include <vector>

namespace mopt {

/** Options for adamMinimize. */
struct AdamOptions
{
    int max_steps = 200;
    double lr = 0.1;          //!< Initial learning rate.
    double lr_decay = 0.995;  //!< Multiplicative decay per step.
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double grad_h = 1e-5;     //!< Relative finite-difference step.
    double tol = 1e-10;       //!< Stop when step size drops below this.
};

/**
 * Minimize @p f over the box [lo, hi] starting from @p x0 (clamped).
 * A derivative-free facade over adamMinimizeGrad: gradients come from
 * box-projected central differences with step opts.grad_h, so there is
 * a single Adam update loop to maintain.
 *
 * @param f       scalar function of a dim-sized vector
 * @param x0      starting point
 * @param lo,hi   box bounds
 * @param opts    algorithm options
 * @param evals   incremented by the number of f evaluations
 * @return        the best point visited
 */
std::vector<double> adamMinimize(
    const std::function<double(const std::vector<double> &)> &f,
    std::vector<double> x0, const std::vector<double> &lo,
    const std::vector<double> &hi, const AdamOptions &opts, long &evals);

/**
 * Reusable state of adamMinimizeGrad. Buffers grow to the problem
 * dimension on first use and are reused verbatim afterwards, so a
 * long-lived scratch makes every solve after the first allocation-free.
 */
struct AdamScratch
{
    std::vector<double> m, v, grad, best;
};

/**
 * Gradient-based Adam: one combined value+gradient evaluation per
 * step instead of 2*dim central-difference probes. This is the inner
 * solver of the analytic-gradient augmented-Lagrangian path.
 *
 * @param fg       evaluates the function at x and fills its gradient
 *                 (sized dim on entry); returns the value
 * @param x        in: starting point (clamped into the box);
 *                 out: best point visited
 * @param lo,hi    box bounds
 * @param opts     algorithm options (grad_h unused on this path)
 * @param scratch  reusable buffers
 * @return         best value visited
 */
double adamMinimizeGrad(
    const std::function<double(const std::vector<double> &,
                               std::vector<double> &)> &fg,
    std::vector<double> &x, const std::vector<double> &lo,
    const std::vector<double> &hi, const AdamOptions &opts,
    AdamScratch &scratch);

} // namespace mopt

#endif // MOPT_SOLVER_ADAM_HH
