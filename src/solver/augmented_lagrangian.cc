#include "solver/augmented_lagrangian.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace mopt {

NlpResult
solveAugLag(const NlpProblem &prob, std::vector<double> x0,
            const AugLagOptions &opts)
{
    const int n = prob.dim();
    const int m = prob.numConstraints();
    checkUser(static_cast<int>(x0.size()) == n,
              "solveAugLag: start point size mismatch");

    const std::vector<double> &lo = prob.lowerBounds();
    const std::vector<double> &hi = prob.upperBounds();
    for (int i = 0; i < n; ++i)
        x0[static_cast<std::size_t>(i)] =
            std::clamp(x0[static_cast<std::size_t>(i)],
                       lo[static_cast<std::size_t>(i)],
                       hi[static_cast<std::size_t>(i)]);

    std::vector<double> lambda(static_cast<std::size_t>(m), 0.0);
    double mu = opts.mu0;
    long evals = 0;

    NlpResult best;
    best.objective = std::numeric_limits<double>::infinity();
    best.max_violation = std::numeric_limits<double>::infinity();

    auto consider = [&](const std::vector<double> &x) {
        std::vector<double> g;
        const double f = prob.evalAll(x, g);
        ++evals;
        double viol = 0.0;
        for (double gi : g)
            viol = std::max(viol, gi);
        const bool feas = viol <= opts.feas_tol;
        // Prefer feasible; among feasible, lower objective; among
        // infeasible, lower violation.
        const bool better =
            (feas && !best.feasible) ||
            (feas && best.feasible && f < best.objective) ||
            (!feas && !best.feasible && viol < best.max_violation);
        if (better) {
            best.x = x;
            best.objective = f;
            best.max_violation = viol;
            best.feasible = feas;
        }
        return g;
    };

    std::vector<double> x = x0;
    consider(x);

    for (int outer = 0; outer < opts.outer_iters; ++outer) {
        auto penalized = [&](const std::vector<double> &xx) {
            std::vector<double> g;
            const double f = prob.evalAll(xx, g);
            double pen = 0.0;
            for (int i = 0; i < m; ++i) {
                const double li = lambda[static_cast<std::size_t>(i)];
                const double t =
                    std::max(0.0, li + mu * g[static_cast<std::size_t>(i)]);
                pen += (t * t - li * li) / (2.0 * mu);
            }
            return f + pen;
        };

        x = adamMinimize(penalized, x, lo, hi, opts.inner, evals);
        const std::vector<double> g = consider(x);

        // Multiplier and penalty updates.
        double viol = 0.0;
        for (int i = 0; i < m; ++i) {
            const double gi = g[static_cast<std::size_t>(i)];
            lambda[static_cast<std::size_t>(i)] = std::max(
                0.0, lambda[static_cast<std::size_t>(i)] + mu * gi);
            viol = std::max(viol, gi);
        }
        if (viol <= opts.feas_tol && outer >= 1)
            break; // converged to a feasible stationary point
        mu = std::min(opts.mu_max, mu * opts.mu_growth);
    }

    best.evals = evals;
    return best;
}

} // namespace mopt
