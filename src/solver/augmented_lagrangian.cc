#include "solver/augmented_lagrangian.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace mopt {

NlpResult
solveAugLag(const NlpProblem &prob, std::vector<double> x0,
            const AugLagOptions &opts, SolverScratch *scratch)
{
    const int n = prob.dim();
    const int m = prob.numConstraints();
    checkUser(static_cast<int>(x0.size()) == n,
              "solveAugLag: start point size mismatch");

    SolverScratch local;
    SolverScratch &s = scratch ? *scratch : local;

    const std::vector<double> &lo = prob.lowerBounds();
    const std::vector<double> &hi = prob.upperBounds();
    for (int i = 0; i < n; ++i)
        x0[static_cast<std::size_t>(i)] =
            std::clamp(x0[static_cast<std::size_t>(i)],
                       lo[static_cast<std::size_t>(i)],
                       hi[static_cast<std::size_t>(i)]);

    s.lambda.assign(static_cast<std::size_t>(m), 0.0);
    double mu = opts.mu0;
    long evals = 0;
    const long grad_cost = prob.gradEvalCost();

    NlpResult best;
    best.objective = std::numeric_limits<double>::infinity();
    best.max_violation = std::numeric_limits<double>::infinity();

    // Score x and keep it if it beats the incumbent; leaves the
    // constraint values in s.g for the multiplier update.
    auto consider = [&](const std::vector<double> &x) {
        const double f = prob.evalAll(x, s.g);
        ++evals;
        double viol = 0.0;
        for (double gi : s.g)
            viol = std::max(viol, gi);
        NlpResult cand;
        cand.objective = f;
        cand.max_violation = viol;
        cand.feasible = viol <= opts.feas_tol;
        if (betterNlpResult(cand, best)) {
            best.x = x;
            best.objective = cand.objective;
            best.max_violation = cand.max_violation;
            best.feasible = cand.feasible;
        }
    };

    s.x = x0;
    consider(s.x);

    for (int outer = 0; outer < opts.outer_iters; ++outer) {
        // Value and exact gradient of the augmented Lagrangian:
        //   L = f + sum_i (max(0, l_i + mu g_i)^2 - l_i^2) / (2 mu)
        //   dL = df + sum_i max(0, l_i + mu g_i) dg_i
        auto al = [&](const std::vector<double> &xx,
                      std::vector<double> &grad) {
            const double f = prob.evalWithGrad(xx, s.g, s.grad_f, s.jac,
                                               opts.inner.grad_h);
            evals += grad_cost;
            grad = s.grad_f;
            double value = f;
            for (int i = 0; i < m; ++i) {
                const auto si = static_cast<std::size_t>(i);
                const double li = s.lambda[si];
                const double t = std::max(0.0, li + mu * s.g[si]);
                value += (t * t - li * li) / (2.0 * mu);
                if (t > 0.0) {
                    const double *row =
                        s.jac.data() + si * static_cast<std::size_t>(n);
                    for (int j = 0; j < n; ++j)
                        grad[static_cast<std::size_t>(j)] +=
                            t * row[j];
                }
            }
            return value;
        };

        adamMinimizeGrad(al, s.x, lo, hi, opts.inner, s.adam);
        consider(s.x);

        // Multiplier and penalty updates (s.g holds g(s.x)).
        double viol = 0.0;
        for (int i = 0; i < m; ++i) {
            const auto si = static_cast<std::size_t>(i);
            const double gi = s.g[si];
            s.lambda[si] = std::max(0.0, s.lambda[si] + mu * gi);
            viol = std::max(viol, gi);
        }
        if (viol <= opts.feas_tol && outer >= 1)
            break; // converged to a feasible stationary point
        mu = std::min(opts.mu_max, mu * opts.mu_growth);
    }

    best.evals = evals;
    return best;
}

} // namespace mopt
