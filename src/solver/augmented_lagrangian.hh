/**
 * @file
 * Augmented-Lagrangian solver for inequality-constrained NLPs:
 * outer iterations update multipliers lambda_i and the penalty weight
 * mu; inner iterations minimize the smooth AL function with Adam.
 * The AL for g_i(x) <= 0 is
 *
 *   L(x) = f(x) + sum_i ( max(0, lambda_i + mu*g_i)^2 - lambda_i^2 )
 *                  / (2*mu)
 */

#ifndef MOPT_SOLVER_AUGMENTED_LAGRANGIAN_HH
#define MOPT_SOLVER_AUGMENTED_LAGRANGIAN_HH

#include "solver/adam.hh"
#include "solver/nlp.hh"

namespace mopt {

/** Options for solveAugLag. */
struct AugLagOptions
{
    int outer_iters = 8;
    double mu0 = 1.0;          //!< Initial penalty weight.
    double mu_growth = 5.0;    //!< Penalty growth per outer iteration.
    double mu_max = 1e8;
    double feas_tol = 1e-6;    //!< Feasibility tolerance on max g_i.
    AdamOptions inner;         //!< Inner unconstrained solver options.
};

/**
 * Reusable buffers for one solver worker. Every vector grows to the
 * problem's dimensions on first use; passing the same scratch to
 * repeated solves makes the whole inner loop allocation-free, which
 * matters when the optimizer fans thousands of small solves across a
 * thread pool.
 */
struct SolverScratch
{
    AdamScratch adam;
    std::vector<double> g;       //!< Constraint values.
    std::vector<double> grad_f;  //!< Objective gradient.
    std::vector<double> jac;     //!< Constraint Jacobian (row-major).
    std::vector<double> lambda;  //!< Augmented-Lagrangian multipliers.
    std::vector<double> x;       //!< Current iterate.
};

/**
 * Solve @p prob starting from @p x0 (clamped into the box).
 * The returned point is the best *feasible* point seen, or the
 * least-violating one if none was feasible.
 *
 * The inner minimization runs gradient-based Adam on the augmented
 * Lagrangian, whose exact gradient is assembled from
 * NlpProblem::evalWithGrad: one model evaluation per step for
 * problems with analytic derivatives, central differences otherwise.
 *
 * @param scratch  optional reusable buffers (a local scratch is used
 *                 when null)
 */
NlpResult solveAugLag(const NlpProblem &prob, std::vector<double> x0,
                      const AugLagOptions &opts = AugLagOptions(),
                      SolverScratch *scratch = nullptr);

} // namespace mopt

#endif // MOPT_SOLVER_AUGMENTED_LAGRANGIAN_HH
