/**
 * @file
 * Augmented-Lagrangian solver for inequality-constrained NLPs:
 * outer iterations update multipliers lambda_i and the penalty weight
 * mu; inner iterations minimize the smooth AL function with Adam.
 * The AL for g_i(x) <= 0 is
 *
 *   L(x) = f(x) + sum_i ( max(0, lambda_i + mu*g_i)^2 - lambda_i^2 )
 *                  / (2*mu)
 */

#ifndef MOPT_SOLVER_AUGMENTED_LAGRANGIAN_HH
#define MOPT_SOLVER_AUGMENTED_LAGRANGIAN_HH

#include "solver/adam.hh"
#include "solver/nlp.hh"

namespace mopt {

/** Options for solveAugLag. */
struct AugLagOptions
{
    int outer_iters = 8;
    double mu0 = 1.0;          //!< Initial penalty weight.
    double mu_growth = 5.0;    //!< Penalty growth per outer iteration.
    double mu_max = 1e8;
    double feas_tol = 1e-6;    //!< Feasibility tolerance on max g_i.
    AdamOptions inner;         //!< Inner unconstrained solver options.
};

/**
 * Solve @p prob starting from @p x0 (clamped into the box).
 * The returned point is the best *feasible* point seen, or the
 * least-violating one if none was feasible.
 */
NlpResult solveAugLag(const NlpProblem &prob, std::vector<double> x0,
                      const AugLagOptions &opts = AugLagOptions());

} // namespace mopt

#endif // MOPT_SOLVER_AUGMENTED_LAGRANGIAN_HH
