/**
 * @file
 * Integerization of a continuous solver solution (Algorithm 1, lines
 * 23-24): floor tile sizes, restore the nesting invariant, snap the
 * output-channel tiles onto microkernel vector blocks, and locally
 * hill-climb the true integer cost (ceil trip counts + capacity
 * feasibility).
 */

#ifndef MOPT_OPTIMIZER_INTEGERIZE_HH
#define MOPT_OPTIMIZER_INTEGERIZE_HH

#include "conv/problem.hh"
#include "machine/machine.hh"
#include "model/multi_level.hh"
#include "model/tile_config.hh"

namespace mopt {

/**
 * Convert the continuous configuration @p cfg into an integer
 * ExecConfig:
 *  1. floor every tile size and clamp to the nesting chain;
 *  2. snap k tiles to multiples of the microkernel's k block;
 *  3. hill-climb all L1..L3 tile sizes against the Ceil-mode model
 *     cost with capacity feasibility as a hard constraint.
 *
 * @p parallel selects the cost model used for refinement.
 */
ExecConfig integerize(const MultiLevelConfig &cfg, const ConvProblem &p,
                      const MachineSpec &m, bool parallel);

} // namespace mopt

#endif // MOPT_OPTIMIZER_INTEGERIZE_HH
