/**
 * @file
 * The tile-size NLP of Algorithm 1 (Sec. 8) as a first-class
 * NlpProblem with closed-form derivatives. For a fixed permutation
 * combo and objective level, the program over the 21 log-tile
 * variables x = log T (L1..L3; the register tile is pinned) is
 *
 *   minimize    log seconds[obj]
 *   subject to  log(footprint_l / capacity_l) <= 0   (3 capacity)
 *               x_{l,d} - x_{l+1,d}           <= 0   (14 nesting)
 *               log seconds[k] - log seconds[obj] <= 0 (3 dominance)
 *
 * Objective and constraints (and their exact gradients) come from an
 * EvalContext, so one evalWithGrad costs a single model evaluation —
 * the replacement for 2x21 central-difference probes per Adam step.
 */

#ifndef MOPT_OPTIMIZER_CONV_NLP_HH
#define MOPT_OPTIMIZER_CONV_NLP_HH

#include <vector>

#include "model/eval_context.hh"
#include "solver/nlp.hh"

namespace mopt {

/**
 * NlpProblem view of one (permutation combo, objective level) solve.
 * Thread-safe: concurrent evaluations share the immutable EvalContext
 * and use thread-local model scratch, so one ConvNlp can be solved
 * from many start points in parallel.
 */
class ConvNlp : public NlpProblem
{
  public:
    static constexpr int kNumVars = EvalContext::kNumVars;
    static constexpr int kNumCons =
        3 + 2 * NumDims + (NumMemLevels - 1);

    /**
     * @param ctx      evaluation context (must outlive the problem)
     * @param obj_lvl  memory level whose time is minimized
     * @param lo,hi    box bounds (fixed levels have collapsed
     *                 intervals)
     */
    ConvNlp(const EvalContext &ctx, int obj_lvl, std::vector<double> lo,
            std::vector<double> hi);

    int dim() const override { return kNumVars; }
    int numConstraints() const override { return kNumCons; }
    const std::vector<double> &lowerBounds() const override { return lo_; }
    const std::vector<double> &upperBounds() const override { return hi_; }

    double evalAll(const std::vector<double> &x,
                   std::vector<double> &g) const override;

    bool hasGradient() const override { return true; }
    double evalWithGrad(const std::vector<double> &x,
                        std::vector<double> &g,
                        std::vector<double> &grad_f,
                        std::vector<double> &jac,
                        double fd_h = 1e-6) const override;

    int objectiveLevel() const { return obj_lvl_; }

  private:
    double evalImpl(const std::vector<double> &x, std::vector<double> &g,
                    std::vector<double> *grad_f,
                    std::vector<double> *jac) const;

    const EvalContext *ctx_;
    int obj_lvl_;
    std::vector<double> lo_, hi_;
};

} // namespace mopt

#endif // MOPT_OPTIMIZER_CONV_NLP_HH
