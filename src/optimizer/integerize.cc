#include "optimizer/integerize.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "solver/discrete_refine.hh"

namespace mopt {

namespace {

/** Snap @p v up/down to a multiple of @p block within [lo, hi]. */
std::int64_t
snapToBlock(std::int64_t v, std::int64_t block, std::int64_t lo,
            std::int64_t hi)
{
    if (block <= 1 || hi < block)
        return std::clamp(v, lo, hi);
    std::int64_t down = (v / block) * block;
    std::int64_t up = down + block;
    if (down < std::max(lo, block))
        return std::clamp(up, lo, hi);
    if (up > hi)
        return std::clamp(down, lo, hi);
    // Prefer the closer multiple.
    return (v - down <= up - v) ? down : up;
}

} // namespace

ExecConfig
integerize(const MultiLevelConfig &cfg, const ConvProblem &p,
           const MachineSpec &m, bool parallel)
{
    const IntTileVec extents = problemExtents(p);

    MultiLevelConfig work = cfg;
    work.clampNesting(extents);
    ExecConfig e = ExecConfig::fromModel(work);

    // Snap k tiles to multiples of the microkernel's vector block so
    // the executor's fast path stays aligned.
    const std::int64_t kblock =
        std::min<std::int64_t>(2 * m.vec_lanes, extents[DimK]);
    for (int l = LvlL1; l <= LvlL3; ++l) {
        auto &tk = e.tiles[static_cast<std::size_t>(l)][DimK];
        tk = snapToBlock(tk, kblock, e.tiles[LvlReg][DimK],
                         extents[DimK]);
    }
    // Restore nesting after snapping.
    for (int d = 0; d < NumDims; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        std::int64_t lo = e.tiles[LvlReg][sd];
        for (int l = LvlL1; l <= LvlL3; ++l) {
            auto &t = e.tiles[static_cast<std::size_t>(l)][sd];
            t = std::clamp(t, lo, extents[sd]);
            lo = t;
        }
    }

    // Hill-climb the 21 L1..L3 tile sizes against the integer model.
    const int nvars = 3 * NumDims;
    std::vector<std::int64_t> start(static_cast<std::size_t>(nvars));
    std::vector<std::int64_t> lo(static_cast<std::size_t>(nvars));
    std::vector<std::int64_t> hi(static_cast<std::size_t>(nvars));
    std::vector<std::int64_t> ext(static_cast<std::size_t>(nvars));
    for (int l = 0; l < 3; ++l)
        for (int d = 0; d < NumDims; ++d) {
            const auto i = static_cast<std::size_t>(l * NumDims + d);
            start[i] = e.tiles[static_cast<std::size_t>(LvlL1 + l)]
                              [static_cast<std::size_t>(d)];
            lo[i] = e.tiles[LvlReg][static_cast<std::size_t>(d)];
            hi[i] = extents[static_cast<std::size_t>(d)];
            ext[i] = extents[static_cast<std::size_t>(d)];
        }

    auto decode = [&](const std::vector<std::int64_t> &x) {
        ExecConfig trial = e;
        for (int l = 0; l < 3; ++l)
            for (int d = 0; d < NumDims; ++d)
                trial.tiles[static_cast<std::size_t>(LvlL1 + l)]
                           [static_cast<std::size_t>(d)] =
                    x[static_cast<std::size_t>(l * NumDims + d)];
        return trial;
    };

    DiscreteProblem dp;
    dp.lo = lo;
    dp.hi = hi;
    dp.extents = ext;
    dp.cost = [&](const std::vector<std::int64_t> &x) {
        // Nesting must hold between levels.
        for (int d = 0; d < NumDims; ++d)
            for (int l = 0; l < 2; ++l)
                if (x[static_cast<std::size_t>(l * NumDims + d)] >
                    x[static_cast<std::size_t>((l + 1) * NumDims + d)])
                    return std::numeric_limits<double>::infinity();
        const ExecConfig trial = decode(x);
        if (capacityViolation(trial, p, m) > 0.0)
            return std::numeric_limits<double>::infinity();
        return evalMultiLevel(trial, p, m, parallel).total_seconds;
    };

    // If the floored start is infeasible (flooring can only shrink
    // footprints, so this is rare), shrink toward the register tile
    // until feasible.
    std::vector<std::int64_t> x = start;
    int guard = 0;
    while (dp.cost(x) == std::numeric_limits<double>::infinity() &&
           guard++ < 64) {
        bool shrunk = false;
        for (std::size_t i = 0; i < x.size(); ++i) {
            if (x[i] > lo[i]) {
                x[i] = std::max(lo[i], x[i] / 2);
                shrunk = true;
            }
        }
        if (!shrunk)
            break;
    }

    x = hillClimb(dp, x);
    if (dp.cost(x) == std::numeric_limits<double>::infinity()) {
        logWarn("integerize: no feasible integer configuration found for ",
                p.name, "; falling back to register tiles");
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = lo[i];
    }
    return decode(x);
}

} // namespace mopt
