/**
 * @file
 * Load balancing (Algorithm 1, line 24): pick the parallel split of
 * the L3 tile across cores and adjust the parallelized tile extents
 * so per-core chunks are even, minimizing core idling.
 */

#ifndef MOPT_OPTIMIZER_LOAD_BALANCE_HH
#define MOPT_OPTIMIZER_LOAD_BALANCE_HH

#include "conv/problem.hh"
#include "machine/machine.hh"
#include "model/tile_config.hh"

namespace mopt {

/**
 * Choose cfg.par by enumerating exact factorizations of the core
 * count over the non-reduction dims (parallel_model.hh), then snap
 * the parallelized L3 tile extents to multiples of their split
 * factors so every core receives an equal chunk.
 */
void loadBalance(ExecConfig &cfg, const ConvProblem &p,
                 const MachineSpec &m);

/**
 * Fraction of core-steps idle under @p cfg: 1 - (useful work) /
 * (cores x makespan), using per-chunk MAC counts as the work
 * estimate. 0 means perfectly balanced.
 */
double idleFraction(const ExecConfig &cfg, const ConvProblem &p,
                    const MachineSpec &m);

} // namespace mopt

#endif // MOPT_OPTIMIZER_LOAD_BALANCE_HH
