#include "optimizer/conv_nlp.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace mopt {

namespace {

/** Per-thread model scratch: fixed-size, so evaluations never touch
 *  the heap even when one ConvNlp is solved from many threads. */
EvalContext::Scratch &
tlsScratch()
{
    thread_local EvalContext::Scratch s;
    return s;
}

} // namespace

ConvNlp::ConvNlp(const EvalContext &ctx, int obj_lvl,
                 std::vector<double> lo, std::vector<double> hi)
    : ctx_(&ctx), obj_lvl_(obj_lvl), lo_(std::move(lo)),
      hi_(std::move(hi))
{
    checkUser(obj_lvl_ >= 0 && obj_lvl_ < NumMemLevels,
              "ConvNlp: bad objective level");
    checkUser(static_cast<int>(lo_.size()) == kNumVars &&
                  static_cast<int>(hi_.size()) == kNumVars,
              "ConvNlp: bound size mismatch");
}

double
ConvNlp::evalAll(const std::vector<double> &x,
                 std::vector<double> &g) const
{
    return evalImpl(x, g, nullptr, nullptr);
}

double
ConvNlp::evalWithGrad(const std::vector<double> &x,
                      std::vector<double> &g,
                      std::vector<double> &grad_f,
                      std::vector<double> &jac, double /*fd_h*/) const
{
    return evalImpl(x, g, &grad_f, &jac);
}

double
ConvNlp::evalImpl(const std::vector<double> &x, std::vector<double> &g,
                  std::vector<double> *grad_f,
                  std::vector<double> *jac) const
{
    checkInvariant(static_cast<int>(x.size()) == kNumVars,
                   "ConvNlp: point size mismatch");
    const bool want_grad = grad_f != nullptr;
    EvalContext::Scratch &s = tlsScratch();

    std::array<double, NumMemLevels> secs;
    ctx_->evalSeconds(x.data(), s, secs, want_grad);

    g.resize(static_cast<std::size_t>(kNumCons));
    if (want_grad) {
        grad_f->assign(static_cast<std::size_t>(kNumVars), 0.0);
        jac->assign(
            static_cast<std::size_t>(kNumCons) * kNumVars, 0.0);
    }
    auto jacRow = [&](std::size_t row) {
        return jac->data() + row * static_cast<std::size_t>(kNumVars);
    };

    std::size_t gi = 0;
    // Capacity: depends only on the level's own 7 variables.
    for (int l = LvlL1; l <= LvlL3; ++l) {
        const int own = (l - LvlL1) * NumDims;
        g[gi] = ctx_->logCapacityRatio(
            l, s, want_grad ? jacRow(gi) + own : nullptr);
        ++gi;
    }
    // Nesting: T_{l,d} <= T_{l+1,d} in log space (linear).
    for (int l = 0; l < 2; ++l)
        for (int d = 0; d < NumDims; ++d) {
            const int i0 = l * NumDims + d;
            const int i1 = (l + 1) * NumDims + d;
            g[gi] = x[static_cast<std::size_t>(i0)] -
                    x[static_cast<std::size_t>(i1)];
            if (want_grad) {
                jacRow(gi)[i0] = 1.0;
                jacRow(gi)[i1] = -1.0;
            }
            ++gi;
        }
    // Dominance: every other level's time is bounded by the
    // objective level's time.
    const auto so = static_cast<std::size_t>(obj_lvl_);
    const double obj = std::log(std::max(secs[so], 1e-300));
    for (int k = 0; k < NumMemLevels; ++k) {
        if (k == obj_lvl_)
            continue;
        const auto sk = static_cast<std::size_t>(k);
        g[gi] = std::log(std::max(secs[sk], 1e-300)) - obj;
        if (want_grad) {
            double *row = jacRow(gi);
            for (int j = 0; j < kNumVars; ++j)
                row[j] = s.dlogsec[sk][static_cast<std::size_t>(j)] -
                         s.dlogsec[so][static_cast<std::size_t>(j)];
        }
        ++gi;
    }
    checkInvariant(gi == static_cast<std::size_t>(kNumCons),
                   "ConvNlp: constraint count mismatch");

    if (want_grad)
        std::copy(s.dlogsec[so].begin(), s.dlogsec[so].end(),
                  grad_f->begin());
    return obj;
}

} // namespace mopt
