#include "optimizer/mopt_optimizer.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "common/timer.hh"
#include "model/eval_context.hh"
#include "model/footprint.hh"
#include "model/parallel_model.hh"
#include "model/pruned_classes.hh"
#include "optimizer/conv_nlp.hh"
#include "optimizer/integerize.hh"
#include "optimizer/load_balance.hh"
#include "solver/multistart.hh"

namespace mopt {

namespace {

/** One permutation assignment for all four levels. */
struct PermCombo
{
    std::array<Permutation, NumMemLevels> perm;
    std::string label;
};

std::vector<PermCombo>
buildCombos(OptimizerOptions::PermMode mode)
{
    const auto &classes = prunedClasses();
    const Permutation reg = microkernelPermutation();
    std::vector<PermCombo> combos;
    if (mode == OptimizerOptions::PermMode::Uniform) {
        for (const auto &cls : classes) {
            PermCombo c;
            c.perm = {reg, cls.representative(), cls.representative(),
                      cls.representative()};
            c.label = cls.name();
            combos.push_back(std::move(c));
        }
    } else {
        for (const auto &c1 : classes)
            for (const auto &c2 : classes)
                for (const auto &c3 : classes) {
                    PermCombo c;
                    c.perm = {reg, c1.representative(),
                              c2.representative(), c3.representative()};
                    c.label = "L1:" + c1.name() + " L2:" + c2.name() +
                              " L3:" + c3.name();
                    combos.push_back(std::move(c));
                }
    }
    return combos;
}

/** Variable index of (cache level l in {L1,L2,L3}, dim d). */
inline std::size_t
varIdx(int lvl, int d)
{
    return static_cast<std::size_t>((lvl - LvlL1) * NumDims + d);
}

constexpr int kNumVars = 3 * NumDims;

/**
 * Greedy capacity-filling seed: starting from the inner level's tile,
 * double the dimension with the largest remaining trip count while
 * the footprint stays within the level capacity. Candidate dimensions
 * are tried in decreasing-ratio order so the footprint is evaluated
 * only for the winning dimension (plus any larger-ratio dims whose
 * doubled tile would overflow the level).
 */
TileVec
greedySeed(const TileVec &base, const IntTileVec &extents,
           const ConvProblem &p, double capacity_words)
{
    TileVec t = base;
    for (;;) {
        // Dims with room to grow, largest remaining ratio first
        // (ties keep the lower dim index for determinism).
        std::array<std::pair<double, int>, NumDims> cand;
        int num_cand = 0;
        for (int d = 0; d < NumDims; ++d) {
            const auto sd = static_cast<std::size_t>(d);
            const double ratio =
                static_cast<double>(extents[sd]) / t[sd];
            if (ratio > 1.0 + 1e-9)
                cand[static_cast<std::size_t>(num_cand++)] = {ratio, d};
        }
        std::stable_sort(cand.begin(), cand.begin() + num_cand,
                         [](const auto &a, const auto &b) {
                             return a.first > b.first;
                         });

        bool grew = false;
        for (int i = 0; i < num_cand; ++i) {
            const auto sd = static_cast<std::size_t>(
                cand[static_cast<std::size_t>(i)].second);
            TileVec trial = t;
            trial[sd] = std::min(t[sd] * 2.0,
                                 static_cast<double>(extents[sd]));
            if (totalFootprint(trial, p) <= capacity_words) {
                t = trial;
                grew = true;
                break;
            }
        }
        if (!grew)
            return t;
    }
}

/** Greedy prime-factor parallel split used during continuous solves. */
IntTileVec
greedySplit(int cores, const IntTileVec &extents)
{
    IntTileVec par{1, 1, 1, 1, 1, 1, 1};
    // Prime factors of the core count, largest first.
    std::vector<int> factors;
    int c = cores;
    for (int f = 2; f * f <= c; ++f)
        while (c % f == 0) {
            factors.push_back(f);
            c /= f;
        }
    if (c > 1)
        factors.push_back(c);
    std::sort(factors.rbegin(), factors.rend());

    const Dim cand[] = {DimK, DimH, DimW, DimN};
    for (int f : factors) {
        // Assign to the dim with the largest per-chunk extent that can
        // still absorb the factor.
        int best = -1;
        double best_extent = 0.0;
        for (Dim d : cand) {
            const auto sd = static_cast<std::size_t>(d);
            const double per =
                static_cast<double>(extents[sd]) /
                static_cast<double>(par[sd]);
            if (per >= f && per > best_extent) {
                best_extent = per;
                best = d;
            }
        }
        if (best >= 0)
            par[static_cast<std::size_t>(best)] *= f;
    }
    return par;
}

MultiStartOptions
effortOptions(OptimizerOptions::Effort effort, std::uint64_t seed)
{
    MultiStartOptions ms;
    ms.seed = seed;
    switch (effort) {
      case OptimizerOptions::Effort::Fast:
        ms.random_starts = 1;
        ms.auglag.outer_iters = 4;
        ms.auglag.inner.max_steps = 60;
        ms.auglag.inner.lr = 0.15;
        break;
      case OptimizerOptions::Effort::Standard:
        ms.random_starts = 2;
        ms.auglag.outer_iters = 6;
        ms.auglag.inner.max_steps = 120;
        break;
      case OptimizerOptions::Effort::Thorough:
        ms.random_starts = 4;
        ms.auglag.outer_iters = 8;
        ms.auglag.inner.max_steps = 250;
        break;
    }
    return ms;
}

/**
 * State of one Algorithm-1 run for a fixed permutation combo. The
 * per-level solves themselves are flattened into (combo x objective x
 * start) work items by optimizeConv; this holds the sequential state
 * between rounds (box bounds with fixed levels collapsed, the set of
 * unfixed levels) plus the precomputed EvalContext.
 */
struct ComboState
{
    const PermCombo *combo = nullptr;
    IntTileVec extents{};
    TileVec reg_tiles{};
    IntTileVec par{};
    std::unique_ptr<EvalContext> ctx;

    /** Box bounds; fixing a level collapses its interval. */
    std::vector<double> lo = std::vector<double>(kNumVars, 0.0);
    std::vector<double> hi = std::vector<double>(kNumVars, 0.0);

    /** Unfixed levels, in Algorithm 1's visit order. */
    std::vector<int> not_visited = {LvlReg, LvlL1, LvlL2, LvlL3};

    /** Deterministic seeds (greedy fill + geometric), pre-clamping. */
    std::vector<std::vector<double>> base_seeds;

    long evals = 0;

    ComboState(const PermCombo &c, const ConvProblem &p,
               const MachineSpec &m, const OptimizerOptions &opts)
        : combo(&c), extents(problemExtents(p)),
          reg_tiles(toTileVec(microkernelTiles(p, m)))
    {
        par = opts.parallel ? greedySplit(m.cores, extents)
                            : IntTileVec{1, 1, 1, 1, 1, 1, 1};
        for (int l = 0; l < 3; ++l)
            for (int d = 0; d < NumDims; ++d) {
                const auto sd = static_cast<std::size_t>(d);
                lo[varIdx(LvlL1 + l, d)] = std::log(reg_tiles[sd]);
                hi[varIdx(LvlL1 + l, d)] =
                    std::log(static_cast<double>(extents[sd]));
            }
        ctx = std::make_unique<EvalContext>(p, m, c.perm, reg_tiles,
                                            par, opts.parallel);
        buildSeeds(p, m);
    }

    void
    buildSeeds(const ConvProblem &p, const MachineSpec &m)
    {
        // Seed 1: greedily fill each level's capacity inside out.
        std::vector<double> s1(kNumVars);
        TileVec inner = reg_tiles;
        for (int l = 0; l < 3; ++l) {
            const double cap =
                static_cast<double>(m.capacityWords(LvlL1 + l));
            TileVec t = greedySeed(inner, extents, p, cap);
            for (int d = 0; d < NumDims; ++d)
                s1[varIdx(LvlL1 + l, d)] =
                    std::log(t[static_cast<std::size_t>(d)]);
            inner = t;
        }
        // Seed 2: geometric interpolation between the register tile
        // and the problem extents.
        std::vector<double> s2(kNumVars);
        for (int l = 0; l < 3; ++l) {
            const double frac = (l + 1) / 3.0;
            for (int d = 0; d < NumDims; ++d) {
                const auto sd = static_cast<std::size_t>(d);
                const double lo_d = std::log(reg_tiles[sd]);
                const double hi_d =
                    std::log(static_cast<double>(extents[sd]));
                s2[varIdx(LvlL1 + l, d)] = lo_d + frac * (hi_d - lo_d);
            }
        }
        base_seeds = {std::move(s1), std::move(s2)};
    }

    /** All start points for one objective solve: the deterministic
     *  seeds clamped into the current box plus random starts drawn
     *  exactly as solveMultiStart would draw them, so the flattened
     *  parallel sweep visits the same points a per-combo multi-start
     *  loop would. */
    std::vector<std::vector<double>>
    startPoints(int obj, const OptimizerOptions &opts,
                int random_starts) const
    {
        std::vector<std::vector<double>> pts = base_seeds;
        for (auto &pt : pts)
            for (int i = 0; i < kNumVars; ++i) {
                const auto si = static_cast<std::size_t>(i);
                pt[si] = std::clamp(pt[si], lo[si], hi[si]);
            }
        Rng rng(opts.seed + static_cast<std::uint64_t>(obj));
        for (int s = 0; s < random_starts; ++s) {
            std::vector<double> x(static_cast<std::size_t>(kNumVars));
            for (int i = 0; i < kNumVars; ++i) {
                const auto si = static_cast<std::size_t>(i);
                x[si] = rng.uniformReal(lo[si], hi[si]);
            }
            pts.push_back(std::move(x));
        }
        return pts;
    }

    /** Collapse the box of @p lvl onto the solved point @p x. */
    void
    fixLevel(int lvl, const std::vector<double> &x)
    {
        for (int d = 0; d < NumDims; ++d) {
            const std::size_t i = varIdx(lvl, d);
            lo[i] = hi[i] = x[i];
        }
    }

    /** Decode the final continuous configuration (all levels fixed:
     *  lo == hi == the solved point). */
    MultiLevelConfig
    finalConfig() const
    {
        return ctx->decodeConfig(lo.data());
    }
};

/** One (combo, objective, start) solve in a round's flattened batch. */
struct SolveJob
{
    std::size_t state;  //!< Index into the ComboState vector.
    int obj;            //!< Objective level of this solve.
    std::size_t nlp;    //!< Index into the round's ConvNlp pool.
    std::size_t start;  //!< Index into the round's start-point pool.
};

} // namespace

OptimizerOptions::Effort
effortFromString(const std::string &s)
{
    if (s == "fast")
        return OptimizerOptions::Effort::Fast;
    if (s == "standard")
        return OptimizerOptions::Effort::Standard;
    if (s == "thorough")
        return OptimizerOptions::Effort::Thorough;
    fatal("unknown effort \"" + s +
          "\" (expected fast, standard, or thorough)");
}

IntTileVec
microkernelTiles(const ConvProblem &p, const MachineSpec &m)
{
    IntTileVec t{1, 1, 1, 1, 1, 1, 1};
    // Clamp to the per-group K extent: a depthwise layer (k/groups ==
    // 1) cannot vectorize over output channels at all.
    t[DimK] = std::min<std::int64_t>(2 * m.vec_lanes, p.kPerGroup());
    t[DimW] = std::min<std::int64_t>(6, p.w);
    return t;
}

Permutation
microkernelPermutation()
{
    return Permutation::parse("nhwkcrs");
}

OptimizeOutput
optimizeConv(const ConvProblem &p, const MachineSpec &m,
             const OptimizerOptions &opts)
{
    const std::size_t workers = std::max<std::size_t>(
        1, opts.threads > 0
               ? static_cast<std::size_t>(opts.threads)
               : std::max(1u, std::thread::hardware_concurrency()));
    ThreadPool pool(workers);
    return optimizeConv(p, m, opts, pool.fullWidth());
}

OptimizeOutput
optimizeConv(const ConvProblem &p, const MachineSpec &m,
             const OptimizerOptions &opts, ThreadPool::SubWidth pool)
{
    p.validate();
    m.validate();
    Timer timer;

    const std::vector<PermCombo> combos = buildCombos(opts.perm_mode);
    std::vector<ComboState> states;
    states.reserve(combos.size());
    for (const PermCombo &c : combos)
        states.emplace_back(c, p, m, opts);

    const MultiStartOptions ms = effortOptions(opts.effort, opts.seed);

    std::vector<SolverScratch> scratch(pool.size() + 1);

    // Algorithm 1, flattened: each round solves every (unfixed combo,
    // candidate objective level, start point) as one independent work
    // item across the pool, then fixes each combo's most-constrained
    // level. Results are reduced in job order, so the outcome is
    // deterministic regardless of scheduling.
    for (int round = 0; round < NumMemLevels; ++round) {
        std::vector<std::unique_ptr<ConvNlp>> nlps;
        std::vector<std::vector<double>> starts;
        std::vector<SolveJob> jobs;
        for (std::size_t ci = 0; ci < states.size(); ++ci) {
            ComboState &st = states[ci];
            for (int obj : st.not_visited) {
                const std::size_t nlp_idx = nlps.size();
                nlps.push_back(std::make_unique<ConvNlp>(
                    *st.ctx, obj, st.lo, st.hi));
                for (auto &pt :
                     st.startPoints(obj, opts, ms.random_starts)) {
                    jobs.push_back(
                        {ci, obj, nlp_idx, starts.size()});
                    starts.push_back(std::move(pt));
                }
            }
        }

        std::vector<NlpResult> results(jobs.size());
        pool.parallelForIndexed(
            jobs.size(), 1,
            [&](std::size_t worker, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i)
                    results[i] = solveAugLag(
                        *nlps[jobs[i].nlp], starts[jobs[i].start],
                        ms.auglag,
                        &scratch[worker]);
            });

        // Reduce: per (combo, objective) over starts, then per combo
        // over objectives (Algorithm 1's most-constrained level).
        std::size_t idx = 0;
        for (std::size_t ci = 0; ci < states.size(); ++ci) {
            ComboState &st = states[ci];
            double min_score = std::numeric_limits<double>::infinity();
            int min_lvl = st.not_visited.front();
            NlpResult min_result;
            for (int obj : st.not_visited) {
                NlpResult best;
                best.objective =
                    std::numeric_limits<double>::infinity();
                best.max_violation =
                    std::numeric_limits<double>::infinity();
                for (; idx < jobs.size() && jobs[idx].state == ci &&
                       jobs[idx].obj == obj;
                     ++idx) {
                    NlpResult &r = results[idx];
                    st.evals += r.evals;
                    if (betterNlpResult(r, best))
                        best = std::move(r);
                }
                const double score = best.feasible
                                         ? best.objective
                                         : 1e6 + best.max_violation;
                if (score < min_score) {
                    min_score = score;
                    min_lvl = obj;
                    min_result = std::move(best);
                }
            }
            // Fix the most-constrained level's tile sizes (the
            // register level's tiles are already pinned by the
            // microkernel).
            if (min_lvl != LvlReg && !min_result.x.empty())
                st.fixLevel(min_lvl, min_result.x);
            st.not_visited.erase(std::find(st.not_visited.begin(),
                                           st.not_visited.end(),
                                           min_lvl));
        }
        checkInvariant(idx == jobs.size(),
                       "optimizeConv: round reduction mismatch");
    }

    // All levels fixed: integerize, balance, and rank.
    OptimizeOutput out;
    out.candidates.resize(states.size());
    pool.parallelFor(states.size(), [&](std::size_t i) {
        ComboState &st = states[i];
        MultiLevelConfig final_cfg = st.finalConfig();
        final_cfg.clampNesting(st.extents);

        Candidate cand;
        cand.config = integerize(final_cfg, p, m, opts.parallel);
        if (opts.parallel)
            loadBalance(cand.config, p, m);
        else
            cand.config.par = {1, 1, 1, 1, 1, 1, 1};
        cand.predicted = evalMultiLevel(cand.config, p, m, opts.parallel);
        cand.perm_label = st.combo->label;
        out.candidates[i] = std::move(cand);
    });

    for (const auto &st : states)
        out.solver_evals += st.evals;

    std::stable_sort(out.candidates.begin(), out.candidates.end(),
                     [](const Candidate &a, const Candidate &b) {
                         return a.predicted.total_seconds <
                                b.predicted.total_seconds;
                     });
    if (static_cast<int>(out.candidates.size()) > opts.top_k)
        out.candidates.resize(static_cast<std::size_t>(opts.top_k));
    out.seconds = timer.seconds();
    return out;
}

} // namespace mopt
