#include "optimizer/mopt_optimizer.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "common/timer.hh"
#include "model/footprint.hh"
#include "model/parallel_model.hh"
#include "model/pruned_classes.hh"
#include "optimizer/integerize.hh"
#include "optimizer/load_balance.hh"
#include "solver/multistart.hh"

namespace mopt {

namespace {

/** One permutation assignment for all four levels. */
struct PermCombo
{
    std::array<Permutation, NumMemLevels> perm;
    std::string label;
};

std::vector<PermCombo>
buildCombos(OptimizerOptions::PermMode mode)
{
    const auto &classes = prunedClasses();
    const Permutation reg = microkernelPermutation();
    std::vector<PermCombo> combos;
    if (mode == OptimizerOptions::PermMode::Uniform) {
        for (const auto &cls : classes) {
            PermCombo c;
            c.perm = {reg, cls.representative(), cls.representative(),
                      cls.representative()};
            c.label = cls.name();
            combos.push_back(std::move(c));
        }
    } else {
        for (const auto &c1 : classes)
            for (const auto &c2 : classes)
                for (const auto &c3 : classes) {
                    PermCombo c;
                    c.perm = {reg, c1.representative(),
                              c2.representative(), c3.representative()};
                    c.label = "L1:" + c1.name() + " L2:" + c2.name() +
                              " L3:" + c3.name();
                    combos.push_back(std::move(c));
                }
    }
    return combos;
}

/** Variable index of (cache level l in {L1,L2,L3}, dim d). */
inline std::size_t
varIdx(int lvl, int d)
{
    return static_cast<std::size_t>((lvl - LvlL1) * NumDims + d);
}

constexpr int kNumVars = 3 * NumDims;

/**
 * Greedy capacity-filling seed: starting from the inner level's tile,
 * double the dimension with the largest remaining trip count while
 * the footprint stays within the level capacity.
 */
TileVec
greedySeed(const TileVec &base, const IntTileVec &extents,
           const ConvProblem &p, double capacity_words)
{
    TileVec t = base;
    bool progress = true;
    while (progress) {
        progress = false;
        int best_d = -1;
        double best_ratio = 1.0;
        for (int d = 0; d < NumDims; ++d) {
            const auto sd = static_cast<std::size_t>(d);
            const double ratio =
                static_cast<double>(extents[sd]) / t[sd];
            if (ratio > best_ratio + 1e-9) {
                // Try doubling this dim; accept only if it still fits.
                TileVec trial = t;
                trial[sd] = std::min(t[sd] * 2.0,
                                     static_cast<double>(extents[sd]));
                if (totalFootprint(trial, p) <= capacity_words &&
                    ratio > best_ratio) {
                    best_ratio = ratio;
                    best_d = d;
                }
            }
        }
        if (best_d >= 0) {
            const auto sd = static_cast<std::size_t>(best_d);
            t[sd] = std::min(t[sd] * 2.0,
                             static_cast<double>(extents[sd]));
            progress = true;
        }
    }
    return t;
}

/** Greedy prime-factor parallel split used during continuous solves. */
IntTileVec
greedySplit(int cores, const IntTileVec &extents)
{
    IntTileVec par{1, 1, 1, 1, 1, 1, 1};
    // Prime factors of the core count, largest first.
    std::vector<int> factors;
    int c = cores;
    for (int f = 2; f * f <= c; ++f)
        while (c % f == 0) {
            factors.push_back(f);
            c /= f;
        }
    if (c > 1)
        factors.push_back(c);
    std::sort(factors.rbegin(), factors.rend());

    const Dim cand[] = {DimK, DimH, DimW, DimN};
    for (int f : factors) {
        // Assign to the dim with the largest per-chunk extent that can
        // still absorb the factor.
        int best = -1;
        double best_extent = 0.0;
        for (Dim d : cand) {
            const auto sd = static_cast<std::size_t>(d);
            const double per =
                static_cast<double>(extents[sd]) /
                static_cast<double>(par[sd]);
            if (per >= f && per > best_extent) {
                best_extent = per;
                best = d;
            }
        }
        if (best >= 0)
            par[static_cast<std::size_t>(best)] *= f;
    }
    return par;
}

MultiStartOptions
effortOptions(OptimizerOptions::Effort effort, std::uint64_t seed)
{
    MultiStartOptions ms;
    ms.seed = seed;
    switch (effort) {
      case OptimizerOptions::Effort::Fast:
        ms.random_starts = 1;
        ms.auglag.outer_iters = 4;
        ms.auglag.inner.max_steps = 60;
        ms.auglag.inner.lr = 0.15;
        break;
      case OptimizerOptions::Effort::Standard:
        ms.random_starts = 2;
        ms.auglag.outer_iters = 6;
        ms.auglag.inner.max_steps = 120;
        break;
      case OptimizerOptions::Effort::Thorough:
        ms.random_starts = 4;
        ms.auglag.outer_iters = 8;
        ms.auglag.inner.max_steps = 250;
        break;
    }
    return ms;
}

/** State of one Algorithm-1 run for a fixed permutation combo. */
class ComboSolver
{
  public:
    ComboSolver(const PermCombo &combo, const ConvProblem &p,
                const MachineSpec &m, const OptimizerOptions &opts)
        : combo_(combo), p_(p), m_(m), opts_(opts),
          extents_(problemExtents(p)),
          reg_tiles_(toTileVec(microkernelTiles(p, m)))
    {
        par_ = opts_.parallel ? greedySplit(m.cores, extents_)
                              : IntTileVec{1, 1, 1, 1, 1, 1, 1};
        for (int l = 0; l < 3; ++l)
            for (int d = 0; d < NumDims; ++d) {
                const auto sd = static_cast<std::size_t>(d);
                lo_[varIdx(LvlL1 + l, d)] = std::log(reg_tiles_[sd]);
                hi_[varIdx(LvlL1 + l, d)] =
                    std::log(static_cast<double>(extents_[sd]));
            }
    }

    /** Run Algorithm 1 for this combo. */
    Candidate run(long &evals);

  private:
    MultiLevelConfig decode(const std::vector<double> &x) const;
    NlpResult argMinSolve(int obj_lvl, long &evals) const;
    std::vector<std::vector<double>> seeds() const;

    const PermCombo &combo_;
    const ConvProblem &p_;
    const MachineSpec &m_;
    const OptimizerOptions &opts_;
    IntTileVec extents_;
    TileVec reg_tiles_;
    IntTileVec par_;

    /** Box bounds; fixing a level collapses its interval. */
    std::vector<double> lo_ = std::vector<double>(kNumVars, 0.0);
    std::vector<double> hi_ = std::vector<double>(kNumVars, 0.0);
};

MultiLevelConfig
ComboSolver::decode(const std::vector<double> &x) const
{
    MultiLevelConfig cfg;
    for (int l = 0; l < NumMemLevels; ++l)
        cfg.level[static_cast<std::size_t>(l)].perm =
            combo_.perm[static_cast<std::size_t>(l)];
    cfg.level[LvlReg].tiles = reg_tiles_;
    for (int l = 0; l < 3; ++l)
        for (int d = 0; d < NumDims; ++d)
            cfg.level[static_cast<std::size_t>(LvlL1 + l)].tiles
                [static_cast<std::size_t>(d)] =
                std::exp(x[varIdx(LvlL1 + l, d)]);
    cfg.par = par_;
    return cfg;
}

std::vector<std::vector<double>>
ComboSolver::seeds() const
{
    // Seed 1: greedily fill each level's capacity from the inside out.
    std::vector<double> s1(kNumVars);
    TileVec inner = reg_tiles_;
    for (int l = 0; l < 3; ++l) {
        const double cap =
            static_cast<double>(m_.capacityWords(LvlL1 + l));
        TileVec t = greedySeed(inner, extents_, p_, cap);
        for (int d = 0; d < NumDims; ++d)
            s1[varIdx(LvlL1 + l, d)] =
                std::log(t[static_cast<std::size_t>(d)]);
        inner = t;
    }
    // Seed 2: geometric interpolation between the register tile and
    // the problem extents.
    std::vector<double> s2(kNumVars);
    for (int l = 0; l < 3; ++l) {
        const double frac = (l + 1) / 3.0;
        for (int d = 0; d < NumDims; ++d) {
            const auto sd = static_cast<std::size_t>(d);
            const double lo = std::log(reg_tiles_[sd]);
            const double hi =
                std::log(static_cast<double>(extents_[sd]));
            s2[varIdx(LvlL1 + l, d)] = lo + frac * (hi - lo);
        }
    }
    // Respect any collapsed (fixed) intervals.
    for (auto *s : {&s1, &s2})
        for (int i = 0; i < kNumVars; ++i)
            (*s)[static_cast<std::size_t>(i)] = std::clamp(
                (*s)[static_cast<std::size_t>(i)],
                lo_[static_cast<std::size_t>(i)],
                hi_[static_cast<std::size_t>(i)]);
    return {s1, s2};
}

NlpResult
ComboSolver::argMinSolve(int obj_lvl, long &evals) const
{
    // Constraints: 3 capacity, 14 nesting (L1<=L2<=L3), 3 dominance.
    const int num_g = 3 + 2 * NumDims + (NumMemLevels - 1);
    FunctionalNlp nlp(
        kNumVars, num_g, lo_, hi_,
        [this, obj_lvl](const std::vector<double> &x,
                        std::vector<double> &g) {
            const MultiLevelConfig cfg = decode(x);
            const CostBreakdown cb = evalMultiLevel(
                cfg, p_, m_, opts_.parallel, DivMode::Continuous);
            std::size_t gi = 0;
            for (int l = LvlL1; l <= LvlL3; ++l) {
                const double fp = totalFootprint(
                    cfg.level[static_cast<std::size_t>(l)].tiles, p_);
                g[gi++] = std::log(
                    fp / static_cast<double>(m_.capacityWords(l)));
            }
            for (int l = 0; l < 2; ++l)
                for (int d = 0; d < NumDims; ++d)
                    g[gi++] = x[varIdx(LvlL1 + l, d)] -
                              x[varIdx(LvlL1 + l + 1, d)];
            const double obj = std::log(std::max(
                cb.seconds[static_cast<std::size_t>(obj_lvl)], 1e-300));
            for (int k = 0; k < NumMemLevels; ++k) {
                if (k == obj_lvl)
                    continue;
                g[gi++] = std::log(std::max(
                              cb.seconds[static_cast<std::size_t>(k)],
                              1e-300)) -
                          obj;
            }
            return obj;
        });

    const MultiStartOptions ms = effortOptions(
        opts_.effort, opts_.seed + static_cast<std::uint64_t>(obj_lvl));
    NlpResult r = solveMultiStart(nlp, seeds(), ms);
    evals += r.evals;
    return r;
}

Candidate
ComboSolver::run(long &evals)
{
    std::vector<int> not_visited = {LvlReg, LvlL1, LvlL2, LvlL3};

    while (!not_visited.empty()) {
        double min_score = std::numeric_limits<double>::infinity();
        int min_lvl = not_visited.front();
        NlpResult min_result;
        for (int obj : not_visited) {
            const NlpResult r = argMinSolve(obj, evals);
            const double score =
                r.feasible ? r.objective : 1e6 + r.max_violation;
            if (score < min_score) {
                min_score = score;
                min_lvl = obj;
                min_result = r;
            }
        }
        // Fix the most-constrained level's tile sizes (the register
        // level's tiles are already pinned by the microkernel).
        if (min_lvl != LvlReg && !min_result.x.empty()) {
            for (int d = 0; d < NumDims; ++d) {
                const std::size_t i = varIdx(min_lvl, d);
                lo_[i] = hi_[i] = min_result.x[i];
            }
        }
        not_visited.erase(
            std::find(not_visited.begin(), not_visited.end(), min_lvl));
    }

    // All levels fixed: decode the final continuous configuration.
    std::vector<double> x(kNumVars);
    for (int i = 0; i < kNumVars; ++i)
        x[static_cast<std::size_t>(i)] = lo_[static_cast<std::size_t>(i)];
    MultiLevelConfig final_cfg = decode(x);
    final_cfg.clampNesting(extents_);

    Candidate cand;
    cand.config = integerize(final_cfg, p_, m_, opts_.parallel);
    if (opts_.parallel)
        loadBalance(cand.config, p_, m_);
    else
        cand.config.par = {1, 1, 1, 1, 1, 1, 1};
    cand.predicted = evalMultiLevel(cand.config, p_, m_, opts_.parallel);
    cand.perm_label = combo_.label;
    return cand;
}

} // namespace

IntTileVec
microkernelTiles(const ConvProblem &p, const MachineSpec &m)
{
    IntTileVec t{1, 1, 1, 1, 1, 1, 1};
    t[DimK] = std::min<std::int64_t>(2 * m.vec_lanes, p.k);
    t[DimW] = std::min<std::int64_t>(6, p.w);
    return t;
}

Permutation
microkernelPermutation()
{
    return Permutation::parse("nhwkcrs");
}

OptimizeOutput
optimizeConv(const ConvProblem &p, const MachineSpec &m,
             const OptimizerOptions &opts)
{
    p.validate();
    m.validate();
    Timer timer;

    const std::vector<PermCombo> combos = buildCombos(opts.perm_mode);
    OptimizeOutput out;
    out.candidates.resize(combos.size());
    std::vector<long> eval_counts(combos.size(), 0);

    const std::size_t workers = std::min<std::size_t>(
        combos.size(),
        opts.threads > 0
            ? static_cast<std::size_t>(opts.threads)
            : std::max(1u, std::thread::hardware_concurrency()));
    ThreadPool pool(workers);
    pool.parallelFor(combos.size(), [&](std::size_t i) {
        ComboSolver solver(combos[i], p, m, opts);
        out.candidates[i] = solver.run(eval_counts[i]);
    });

    for (long e : eval_counts)
        out.solver_evals += e;

    std::sort(out.candidates.begin(), out.candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.predicted.total_seconds <
                         b.predicted.total_seconds;
              });
    if (static_cast<int>(out.candidates.size()) > opts.top_k)
        out.candidates.resize(static_cast<std::size_t>(opts.top_k));
    out.seconds = timer.seconds();
    return out;
}

} // namespace mopt
