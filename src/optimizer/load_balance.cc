#include "optimizer/load_balance.hh"

#include <algorithm>

#include "common/logging.hh"
#include "model/multi_level.hh"
#include "model/parallel_model.hh"

namespace mopt {

void
loadBalance(ExecConfig &cfg, const ConvProblem &p, const MachineSpec &m)
{
    MultiLevelConfig model = cfg.toModel();
    cfg.par = bestParallelSplit(model, p, m);

    // Snap parallelized L3 tile extents to multiples of their split
    // factor so each core's chunk is equal. Snapping goes *down* when
    // the up-multiple would exceed the problem extent (the leftover
    // runs as a partial L3 tile), and the per-core chunk never shrinks
    // below the register tile so nesting Reg <= L1 <= L2 <= chunk
    // stays intact.
    const IntTileVec extents = problemExtents(p);
    for (int d = 0; d < NumDims; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        const std::int64_t f = cfg.par[sd];
        if (f <= 1)
            continue;
        auto &t3 = cfg.tiles[LvlL3][sd];
        const std::int64_t reg = cfg.tiles[LvlReg][sd];
        std::int64_t per = std::max(reg, t3 / f);
        if (per * f > extents[sd])
            per = std::max(reg, extents[sd] / f);
        if (per * f > extents[sd]) {
            // Even a register-tile chunk per core does not fit: this
            // split was a relaxed fallback; keep the largest even
            // chunking that fits and accept core idling.
            per = std::max<std::int64_t>(1, extents[sd] / f);
        }
        t3 = per * f;
        // Keep nesting: L2 tile must not exceed the per-core chunk.
        auto &t2 = cfg.tiles[LvlL2][sd];
        t2 = std::clamp(t2, std::min(reg, per), per);
        auto &t1 = cfg.tiles[LvlL1][sd];
        t1 = std::clamp(t1, std::min(reg, t2), t2);
    }
}

double
idleFraction(const ExecConfig &cfg, const ConvProblem &p,
             const MachineSpec &m)
{
    // Work is proportional to the per-core share of every L3 tile.
    // With an uneven split the makespan is set by the largest chunk;
    // the trailing partial L3 tile only costs its own (smaller) chunk.
    const IntTileVec extents = problemExtents(p);
    double total_work = 1.0;
    double makespan_work = 1.0;
    for (int d = 0; d < NumDims; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        const std::int64_t n = extents[sd];
        const std::int64_t t3 = std::min<std::int64_t>(
            n, cfg.tiles[LvlL3][sd]);
        const std::int64_t f = cfg.par[sd];
        const std::int64_t full = n / t3;
        const std::int64_t rem = n - full * t3;
        // Per full L3 tile every core processes ceil(t3/f); the
        // remainder tile costs ceil(rem/f).
        const std::int64_t span =
            full * ((t3 + f - 1) / f) + (rem + f - 1) / f;
        total_work *= static_cast<double>(n);
        makespan_work *=
            static_cast<double>(span) * static_cast<double>(f);
    }
    const double cores = static_cast<double>(
        std::min<std::int64_t>(m.cores, cfg.toModel().totalParallelism()));
    (void)cores;
    if (makespan_work <= 0.0)
        return 0.0;
    return std::max(0.0, 1.0 - total_work / makespan_work);
}

} // namespace mopt
