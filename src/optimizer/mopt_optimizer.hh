/**
 * @file
 * The MOpt optimizer (Sec. 8, Algorithm 1 of the paper): sweep the
 * pruned permutation classes; for each, repeatedly solve constrained
 * NLPs to find the most-constrained memory level, fix its tile sizes,
 * and recurse on the remaining levels; finally integerize (floor),
 * load-balance, and rank candidates by predicted bandwidth-scaled
 * bottleneck time.
 *
 * Execution model: each round of Algorithm 1 is flattened into
 * independent (permutation combo x objective level x start point)
 * work items fanned across ThreadPool::parallelForIndexed, with one
 * reusable SolverScratch per worker and analytic gradients from
 * ConvNlp (one model evaluation per Adam step). Results are reduced
 * in job order after each round, so optimizeConv is deterministic:
 * the same (problem, machine, options-minus-threads) produce
 * bit-identical output for any thread count — the property the
 * service layer's CacheKey relies on (see docs/ARCHITECTURE.md).
 */

#ifndef MOPT_OPTIMIZER_MOPT_OPTIMIZER_HH
#define MOPT_OPTIMIZER_MOPT_OPTIMIZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "conv/problem.hh"
#include "machine/machine.hh"
#include "model/multi_level.hh"
#include "model/tile_config.hh"

namespace mopt {

/** Options controlling the optimizer. */
struct OptimizerOptions
{
    /** How many ranked candidates to return (paper's MOpt-5 uses 5). */
    int top_k = 5;

    /** Optimize for parallel execution on all cores (Sec. 7). */
    bool parallel = true;

    /** Permutation sweep mode. */
    enum class PermMode {
        Uniform,     //!< Same pruned class at L1/L2/L3 (8 cases).
        Independent, //!< Free class choice per level (8^3 cases).
    };
    PermMode perm_mode = PermMode::Uniform;

    /** Solver effort preset (inner iterations / starts). */
    enum class Effort { Fast, Standard, Thorough };
    Effort effort = Effort::Standard;

    /** Seed of the solver's random starts. Part of the solve's cache
     *  identity (service/cache_key.hh): changing it may change the
     *  returned configuration. */
    std::uint64_t seed = 7;

    /** Worker threads for the permutation sweep (0 = hardware).
     *  Never affects the result, only the wall time. */
    int threads = 0;
};

/**
 * Parse an effort preset name: "fast", "standard", or "thorough"
 * (case-sensitive, the CLI spelling). Anything else is a fatal user
 * error — shared by every front end so they cannot drift.
 */
OptimizerOptions::Effort effortFromString(const std::string &s);

/** One ranked configuration. */
struct Candidate
{
    ExecConfig config;
    CostBreakdown predicted; //!< Ceil-mode model evaluation.
    std::string perm_label;  //!< Pruned-class names per level.
};

/** Output of optimizeConv. */
struct OptimizeOutput
{
    std::vector<Candidate> candidates; //!< Sorted, best first.
    double seconds = 0.0;              //!< Wall-clock search time.
    long solver_evals = 0;             //!< Total model evaluations.
};

/**
 * Register-tile sizes pinned by the microkernel (Sec. 8: machine-
 * dependent, problem-independent up to clamping): k = 2 vector
 * registers wide, 6 spatial points along w, 1 elsewhere.
 */
IntTileVec microkernelTiles(const ConvProblem &p, const MachineSpec &m);

/** The fixed register-level tile-loop order (n,h,w,k outer; c,r,s
 *  innermost so the Out accumulators are reused across the whole
 *  reduction, Sec. 6). */
Permutation microkernelPermutation();

/** Run the full optimizer for one conv2d operator. Spawns a private
 *  ThreadPool sized by opts.threads (0 = hardware) for the duration
 *  of the call. */
OptimizeOutput optimizeConv(const ConvProblem &p, const MachineSpec &m,
                            const OptimizerOptions &opts =
                                OptimizerOptions());

/**
 * Same optimizer on a caller-provided (possibly width-capped) pool
 * handle: the sweep fans out across at most pool.width() threads,
 * caller included, and opts.threads is ignored. This is how the solve
 * scheduler (src/service/solve_scheduler.hh) runs several solves
 * concurrently, each on a partition of one shared pool's width. The
 * result is bit-identical to the private-pool overload for any width
 * (see docs/ARCHITECTURE.md, "Threading and determinism invariants").
 */
OptimizeOutput optimizeConv(const ConvProblem &p, const MachineSpec &m,
                            const OptimizerOptions &opts,
                            ThreadPool::SubWidth pool);

} // namespace mopt

#endif // MOPT_OPTIMIZER_MOPT_OPTIMIZER_HH
