/**
 * @file
 * Network registry: one front door for every way a network can be
 * named. The three built-in builders (resnet18/vgg16/yolov3) are
 * expressed as NetworkDef constructors here — `workloads.cc`'s
 * hand-maintained ConvProblem lists are gone — and `loadNetworkDef`
 * unifies registered names with darknet `.cfg` paths for the CLI and
 * the RPC server.
 */

#ifndef MOPT_FRONTEND_REGISTRY_HH
#define MOPT_FRONTEND_REGISTRY_HH

#include <string>
#include <vector>

#include "frontend/network_def.hh"

namespace mopt {

/** Full ResNet-18 (20 convs incl. downsamples, 224x224 input). */
NetworkDef resnet18Def();

/** VGG-16 configuration D (13 3x3 convs, 224x224 input). */
NetworkDef vgg16Def();

/** YOLOv3's Darknet-53 backbone (52 convs, 416x416 input). */
NetworkDef yolov3Def();

/** Canonical registered names, sorted (for error messages/UIs). */
std::vector<std::string> registeredNetworkNames();

/**
 * Look up a built-in NetworkDef by (case-insensitive, alias-friendly)
 * name; FatalError listing the valid names on a miss.
 */
NetworkDef networkDefByName(const std::string &name);

/**
 * Resolve @p spec — a registered name, or a path to a darknet .cfg
 * (recognized by a ".cfg" suffix or a '/' in the spec) — to a
 * NetworkDef. The single entry point for `--net <name|file.cfg>`.
 */
NetworkDef loadNetworkDef(const std::string &spec);

/** True when @p spec names a .cfg file rather than a registry entry. */
bool looksLikeCfgPath(const std::string &spec);

} // namespace mopt

#endif // MOPT_FRONTEND_REGISTRY_HH
