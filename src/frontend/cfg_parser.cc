#include "frontend/cfg_parser.hh"

#include <fstream>
#include <initializer_list>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/string_util.hh"

namespace mopt {

namespace {

/** One "key=value" with the line it came from. */
struct KeyValue
{
    std::string key;
    std::string value;
    int line = 0;
};

/** One "[section]" and its body. */
struct Section
{
    std::string name;
    int line = 0;
    std::vector<KeyValue> kv;

    const KeyValue *find(const std::string &key) const
    {
        for (const KeyValue &e : kv)
            if (e.key == key)
                return &e;
        return nullptr;
    }
};

class CfgParser
{
  public:
    CfgParser(const std::string &text, std::string source)
        : text_(text), source_(std::move(source))
    {
    }

    NetworkDef run()
    {
        for (const Section &sec : splitSections())
            handleSection(sec);
        checkUser(net_.has_value() && !net_->layers.empty(),
                  source_ + ": no [convolutional] or [connected] layers "
                            "found (is this a darknet .cfg?)");
        NetworkDef out = std::move(*net_);
        net_.reset();
        return out;
    }

  private:
    [[noreturn]] void fail(int line, const std::string &msg) const
    {
        fatal(source_ + ":" + std::to_string(line) + ": " + msg);
    }

    /** Lex the whole file into sections, validating line syntax. */
    std::vector<Section> splitSections() const
    {
        std::vector<Section> sections;
        std::istringstream in(text_);
        std::string raw;
        int line_no = 0;
        while (std::getline(in, raw)) {
            ++line_no;
            // Strip comments ('#' or ';', darknet style) and padding.
            const std::size_t cut = raw.find_first_of("#;");
            if (cut != std::string::npos)
                raw.erase(cut);
            const std::string line = trim(raw);
            if (line.empty())
                continue;
            if (line.front() == '[') {
                if (line.back() != ']' || line.size() < 3)
                    fail(line_no, "malformed section header \"" + line +
                                      "\"");
                sections.push_back(
                    {toLower(line.substr(1, line.size() - 2)), line_no,
                     {}});
                continue;
            }
            const std::size_t eq = line.find('=');
            if (eq == std::string::npos)
                fail(line_no, "expected key=value or [section], got \"" +
                                  line + "\"");
            KeyValue e;
            e.key = toLower(trim(line.substr(0, eq)));
            e.value = trim(line.substr(eq + 1));
            e.line = line_no;
            if (e.key.empty() || e.value.empty())
                fail(line_no, "empty key or value in \"" + line + "\"");
            if (sections.empty())
                fail(line_no, "key \"" + e.key +
                                  "\" appears before any [section]");
            sections.back().kv.push_back(e);
        }
        return sections;
    }

    std::int64_t parseInt(const KeyValue &e) const
    {
        std::size_t pos = 0;
        std::int64_t v = 0;
        try {
            v = std::stoll(e.value, &pos);
        } catch (const std::exception &) {
            pos = 0;
        }
        if (pos != e.value.size())
            fail(e.line, "key \"" + e.key + "\": expected an integer, got \"" +
                             e.value + "\"");
        return v;
    }

    std::int64_t getInt(const Section &sec, const std::string &key,
                        std::int64_t fallback) const
    {
        const KeyValue *e = sec.find(key);
        return e ? parseInt(*e) : fallback;
    }

    std::int64_t requireInt(const Section &sec, const std::string &key) const
    {
        const KeyValue *e = sec.find(key);
        if (!e)
            fail(sec.line, "[" + sec.name + "] is missing required key \"" +
                               key + "\"");
        return parseInt(*e);
    }

    void requirePositive(const Section &sec, const std::string &key,
                         std::int64_t v) const
    {
        if (v < 1) {
            const KeyValue *e = sec.find(key);
            fail(e ? e->line : sec.line, "[" + sec.name + "] key \"" + key +
                                             "\" must be >= 1, got " +
                                             std::to_string(v));
        }
    }

    void requireNet(const Section &sec) const
    {
        if (!net_)
            fail(sec.line, "[" + sec.name +
                               "] appears before [net] declared the input "
                               "width/height/channels");
    }

    void handleSection(const Section &sec)
    {
        if (sec.name == "net" || sec.name == "network")
            handleNet(sec);
        else if (sec.name == "convolutional" || sec.name == "conv")
            handleConvolutional(sec);
        else if (sec.name == "connected")
            handleConnected(sec);
        else if (sec.name == "maxpool")
            handleMaxpool(sec);
        else if (sec.name == "avgpool") {
            requireNet(sec);
            net_->globalPool();
        } else {
            logWarn(source_, ":", sec.line, ": skipping unknown section [",
                    sec.name, "] (shape propagation continues past it)");
        }
    }

    void handleNet(const Section &sec)
    {
        if (net_)
            fail(sec.line, "duplicate [net] section");
        const std::int64_t width = requireInt(sec, "width");
        const std::int64_t height = requireInt(sec, "height");
        const std::int64_t channels = requireInt(sec, "channels");
        requirePositive(sec, "width", width);
        requirePositive(sec, "height", height);
        requirePositive(sec, "channels", channels);
        const std::int64_t batch = getInt(sec, "batch", 1);
        requirePositive(sec, "batch", batch);
        net_.emplace(baseName(source_), channels, height, width);
        net_->batch = batch;
        // Every other [net] key (momentum, learning_rate, ...) is
        // training configuration with no bearing on layer shapes.
    }

    void handleConvolutional(const Section &sec)
    {
        requireNet(sec);
        const std::int64_t filters = requireInt(sec, "filters");
        requirePositive(sec, "filters", filters);
        const std::int64_t size = getInt(sec, "size", 1);
        const std::int64_t stride = getInt(sec, "stride", 1);
        const std::int64_t groups = getInt(sec, "groups", 1);
        const std::int64_t dilation = getInt(sec, "dilation", 1);
        requirePositive(sec, "size", size);
        requirePositive(sec, "stride", stride);
        requirePositive(sec, "groups", groups);
        requirePositive(sec, "dilation", dilation);
        // Darknet padding: pad=1 selects "same" padding (size/2);
        // otherwise an explicit padding= count (default 0).
        std::int64_t padding = getInt(sec, "padding", 0);
        if (getInt(sec, "pad", 0) != 0)
            padding = size / 2;
        warnUnknownKeys(sec, {"filters", "size", "stride", "pad",
                              "padding", "groups", "dilation",
                              "batch_normalize", "activation"});

        const NetworkDef::Cursor cur = net_->cursor();
        LayerDef l;
        l.name = layerName("conv");
        l.kind = groups == cur.c && groups == filters && groups > 1
                     ? LayerKind::Depthwise
                     : LayerKind::Conv;
        l.filters = filters;
        l.in_c = cur.c;
        l.in_h = cur.h;
        l.in_w = cur.w;
        l.size = size;
        l.stride = static_cast<int>(stride);
        l.dilation = static_cast<int>(dilation);
        l.groups = groups;
        l.pad = static_cast<int>(padding);
        wrapLayer(sec, l);
    }

    void handleConnected(const Section &sec)
    {
        requireNet(sec);
        const std::int64_t output = requireInt(sec, "output");
        requirePositive(sec, "output", output);
        warnUnknownKeys(sec, {"output", "activation", "batch_normalize"});

        // A fully-connected layer over the flattened [c, h, w] input
        // is a 1x1 conv over a [c*h*w, 1, 1] tensor.
        const NetworkDef::Cursor cur = net_->cursor();
        LayerDef l;
        l.name = layerName("fc");
        l.kind = LayerKind::Matmul;
        l.filters = output;
        l.in_c = cur.c * cur.h * cur.w;
        l.in_h = 1;
        l.in_w = 1;
        l.size = 1;
        wrapLayer(sec, l);
    }

    void handleMaxpool(const Section &sec)
    {
        requireNet(sec);
        const std::int64_t stride = getInt(sec, "stride", 1);
        const std::int64_t size = getInt(sec, "size", stride);
        requirePositive(sec, "stride", stride);
        requirePositive(sec, "size", size);
        const std::int64_t padding = getInt(sec, "padding", size - 1);
        warnUnknownKeys(sec, {"stride", "size", "padding"});
        try {
            net_->pool(size, static_cast<int>(stride), padding);
        } catch (const FatalError &e) {
            fail(sec.line, e.what());
        }
    }

    /** Append @p l, rewrapping validation errors with cfg context. */
    void wrapLayer(const Section &sec, LayerDef &l)
    {
        try {
            l.toProblem(net_->batch);
        } catch (const FatalError &e) {
            fail(sec.line, e.what());
        }
        net_->layer(l);
    }

    void warnUnknownKeys(const Section &sec,
                         std::initializer_list<const char *> known) const
    {
        for (const KeyValue &e : sec.kv) {
            bool ok = false;
            for (const char *k : known)
                ok = ok || e.key == k;
            if (!ok)
                logWarn(source_, ":", e.line, ": ignoring unknown key \"",
                        e.key, "\" in [", sec.name, "]");
        }
    }

    std::string layerName(const char *kind)
    {
        return std::string(kind) + std::to_string(layer_index_++);
    }

    static std::string baseName(const std::string &path)
    {
        const std::size_t slash = path.find_last_of('/');
        std::string base =
            slash == std::string::npos ? path : path.substr(slash + 1);
        if (base.size() > 4 && base.substr(base.size() - 4) == ".cfg")
            base.erase(base.size() - 4);
        return base.empty() ? "net" : base;
    }

    const std::string &text_;
    const std::string source_;
    std::optional<NetworkDef> net_;
    int layer_index_ = 0;
};

} // namespace

NetworkDef
parseCfgText(const std::string &text, const std::string &source)
{
    return CfgParser(text, source).run();
}

NetworkDef
parseCfgFile(const std::string &path)
{
    std::ifstream in(path);
    checkUser(in.good(), "cannot open network config: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseCfgText(buf.str(), path);
}

} // namespace mopt
