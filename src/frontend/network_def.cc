#include "frontend/network_def.hh"

#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace mopt {

const char *
layerKindName(LayerKind k)
{
    switch (k) {
      case LayerKind::Conv:
        return "conv";
      case LayerKind::Depthwise:
        return "depthwise";
      case LayerKind::Matmul:
        return "matmul";
      default:
        panic("layerKindName: bad kind");
    }
}

bool
layerKindFromName(const std::string &name, LayerKind &out)
{
    if (name == "conv")
        out = LayerKind::Conv;
    else if (name == "depthwise")
        out = LayerKind::Depthwise;
    else if (name == "matmul")
        out = LayerKind::Matmul;
    else
        return false;
    return true;
}

std::int64_t
LayerDef::outH() const
{
    return (in_h + 2 * pad - effSize()) / stride + 1;
}

std::int64_t
LayerDef::outW() const
{
    return (in_w + 2 * pad - effSize()) / stride + 1;
}

ConvProblem
LayerDef::toProblem(std::int64_t batch) const
{
    checkUser(in_h + 2 * pad >= effSize() && in_w + 2 * pad >= effSize(),
              "layer " + name + ": kernel (size " + std::to_string(size) +
                  ", dilation " + std::to_string(dilation) +
                  ") does not fit the padded " + std::to_string(in_h) +
                  "x" + std::to_string(in_w) + " input");
    ConvProblem p;
    p.name = name;
    p.n = batch;
    p.k = filters;
    p.c = in_c;
    p.r = size;
    p.s = size;
    p.h = outH();
    p.w = outW();
    p.stride = stride;
    p.dilation = dilation;
    p.groups = groups;
    p.validate();
    return p;
}

NetworkDef::NetworkDef(std::string net_name, std::int64_t c,
                       std::int64_t h, std::int64_t w)
    : name(std::move(net_name))
{
    checkUser(c >= 1 && h >= 1 && w >= 1,
              "network " + name + ": input extents must be >= 1");
    cur_ = {c, h, w};
}

NetworkDef &
NetworkDef::conv(const std::string &layer_name, std::int64_t filters,
                 std::int64_t size, int stride, std::int64_t groups)
{
    LayerDef l;
    l.name = layer_name;
    l.kind = LayerKind::Conv;
    l.filters = filters;
    l.in_c = cur_.c;
    l.in_h = cur_.h;
    l.in_w = cur_.w;
    l.size = size;
    l.stride = stride;
    l.groups = groups;
    l.pad = l.samePad();
    return layer(l);
}

NetworkDef &
NetworkDef::depthwise(const std::string &layer_name, std::int64_t size,
                      int stride)
{
    const std::int64_t ch = cur_.c;
    conv(layer_name, ch, size, stride, ch);
    layers.back().kind = LayerKind::Depthwise;
    return *this;
}

NetworkDef &
NetworkDef::matmul(const std::string &layer_name, std::int64_t filters)
{
    conv(layer_name, filters, 1);
    layers.back().kind = LayerKind::Matmul;
    return *this;
}

NetworkDef &
NetworkDef::branchConv(const std::string &layer_name, std::int64_t filters,
                       std::int64_t in_c, std::int64_t in_hw,
                       std::int64_t size, int stride)
{
    const Cursor saved = cur_;
    cur_ = {in_c, in_hw, in_hw};
    conv(layer_name, filters, size, stride);
    cur_ = saved;
    return *this;
}

NetworkDef &
NetworkDef::layer(const LayerDef &l)
{
    layers.push_back(l);
    cur_ = {l.filters, l.outH(), l.outW()};
    return *this;
}

NetworkDef &
NetworkDef::pool(std::int64_t size, int stride, std::int64_t pad)
{
    if (pad < 0)
        pad = size - 1;
    checkUser(size >= 1 && stride >= 1,
              "network " + name + ": pool size/stride must be >= 1");
    checkUser(cur_.h + pad >= size && cur_.w + pad >= size,
              "network " + name + ": pool window larger than the " +
                  std::to_string(cur_.h) + "x" + std::to_string(cur_.w) +
                  " tensor");
    cur_.h = (cur_.h + pad - size) / stride + 1;
    cur_.w = (cur_.w + pad - size) / stride + 1;
    return *this;
}

NetworkDef &
NetworkDef::globalPool()
{
    cur_.h = 1;
    cur_.w = 1;
    return *this;
}

std::vector<ConvProblem>
NetworkDef::lower() const
{
    validate();
    std::vector<ConvProblem> out;
    out.reserve(layers.size());
    for (const LayerDef &l : layers)
        out.push_back(l.toProblem(batch));
    return out;
}

void
NetworkDef::validate() const
{
    checkUser(batch >= 1, "network " + name + ": batch must be >= 1");
    checkUser(!layers.empty(),
              "network " + name + ": contains no conv-like layers");
    for (const LayerDef &l : layers)
        l.toProblem(batch); // validates as a side effect
}

std::string
networkDefToJson(const NetworkDef &def)
{
    std::ostringstream oss;
    oss << "{\"name\":\"" << jsonEscape(def.name) << "\",\"layers\":[";
    bool first = true;
    for (const LayerDef &l : def.layers) {
        if (!first)
            oss << ",";
        first = false;
        oss << "{\"name\":\"" << jsonEscape(l.name) << "\",\"kind\":\""
            << layerKindName(l.kind) << "\",\"k\":" << l.filters
            << ",\"c\":" << l.in_c << ",\"h\":" << l.in_h
            << ",\"w\":" << l.in_w << ",\"size\":" << l.size
            << ",\"stride\":" << l.stride << ",\"dilation\":" << l.dilation
            << ",\"groups\":" << l.groups << ",\"pad\":" << l.pad << "}";
    }
    oss << "]}";
    return oss.str();
}

namespace {

bool
fail(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
    return false;
}

} // namespace

bool
networkDefFromJson(const JsonValue &v, NetworkDef &def, std::string *err)
{
    if (v.type != JsonValue::Type::Object)
        return fail(err, "network IR: expected a JSON object");
    NetworkDef out;
    const JsonValue *name = v.find("name");
    if (name && name->type == JsonValue::Type::String)
        out.name = name->str;
    const JsonValue *layers = v.find("layers");
    if (!layers || layers->type != JsonValue::Type::Array)
        return fail(err, "network IR: missing \"layers\" array");
    for (std::size_t i = 0; i < layers->arr.size(); ++i) {
        const JsonValue &jl = layers->arr[i];
        const std::string where =
            "network IR layer " + std::to_string(i);
        if (jl.type != JsonValue::Type::Object)
            return fail(err, where + ": expected an object");
        LayerDef l;
        const JsonValue *lname = jl.find("name");
        if (lname && lname->type == JsonValue::Type::String)
            l.name = lname->str;
        const JsonValue *kind = jl.find("kind");
        if (kind) {
            if (kind->type != JsonValue::Type::String ||
                !layerKindFromName(kind->str, l.kind))
                return fail(err, where + ": bad \"kind\"");
        }
        std::int64_t stride = 1, dilation = 1, pad = -1;
        if (!jsonGetInt(jl, "k", l.filters) ||
            !jsonGetInt(jl, "c", l.in_c) ||
            !jsonGetInt(jl, "h", l.in_h) ||
            !jsonGetInt(jl, "w", l.in_w) || !jsonGetInt(jl, "size", l.size))
            return fail(err, where + ": missing k/c/h/w/size");
        if (jl.find("stride") && !jsonGetInt(jl, "stride", stride))
            return fail(err, where + ": bad \"stride\"");
        if (jl.find("dilation") && !jsonGetInt(jl, "dilation", dilation))
            return fail(err, where + ": bad \"dilation\"");
        if (jl.find("groups") && !jsonGetInt(jl, "groups", l.groups))
            return fail(err, where + ": bad \"groups\"");
        if (jl.find("pad") && !jsonGetInt(jl, "pad", pad))
            return fail(err, where + ": bad \"pad\"");
        l.stride = static_cast<int>(stride);
        l.dilation = static_cast<int>(dilation);
        l.pad = pad < 0 ? l.samePad() : static_cast<int>(pad);
        out.layers.push_back(l);
    }
    try {
        out.validate();
    } catch (const FatalError &e) {
        return fail(err, e.what());
    }
    def = std::move(out);
    return true;
}

} // namespace mopt
