#include "frontend/registry.hh"

#include "common/logging.hh"
#include "common/string_util.hh"
#include "conv/workloads.hh"
#include "frontend/cfg_parser.hh"

namespace mopt {

NetworkDef
resnet18Def()
{
    // Torch-style layer names; each basic-block stage halves the image
    // and doubles the channels, with a 1x1/2 downsample branch on the
    // first block of stages 2-4 (reading the *stage* input, which is
    // why branchConv exists).
    NetworkDef d("resnet18", 3, 224, 224);
    d.conv("conv1", 64, 7, 2);
    d.pool(3, 2); // maxpool 3x3/2: 112 -> 56
    for (int b = 0; b < 2; ++b)
        for (int c = 1; c <= 2; ++c)
            d.conv("layer1." + std::to_string(b) + ".conv" +
                       std::to_string(c),
                   64, 3);
    struct Stage
    {
        const char *name;
        std::int64_t ch;
    };
    for (const Stage &st : {Stage{"layer2", 128}, Stage{"layer3", 256},
                            Stage{"layer4", 512}}) {
        const std::string prefix(st.name);
        const NetworkDef::Cursor in = d.cursor(); // stage input
        d.conv(prefix + ".0.conv1", st.ch, 3, 2);
        d.conv(prefix + ".0.conv2", st.ch, 3);
        d.branchConv(prefix + ".0.downsample", st.ch, in.c, in.h, 1, 2);
        d.conv(prefix + ".1.conv1", st.ch, 3);
        d.conv(prefix + ".1.conv2", st.ch, 3);
    }
    return d;
}

NetworkDef
vgg16Def()
{
    // Configuration D: 2-2-3-3-3 convs per stage, 2x2/2 pooling
    // between stages.
    NetworkDef d("vgg16", 3, 224, 224);
    const struct
    {
        int stage;
        int convs;
        std::int64_t ch;
    } stages[] = {{1, 2, 64}, {2, 2, 128}, {3, 3, 256}, {4, 3, 512},
                  {5, 3, 512}};
    for (const auto &st : stages) {
        if (st.stage > 1)
            d.pool(2, 2);
        for (int c = 1; c <= st.convs; ++c)
            d.conv("conv" + std::to_string(st.stage) + "_" +
                       std::to_string(c),
                   st.ch, 3);
    }
    return d;
}

NetworkDef
yolov3Def()
{
    // Darknet-53 backbone: a 3x3/2 downsample into each stage, then
    // residual blocks of (1x1 squeeze, 3x3 expand). Residual adds do
    // not change shapes, so propagation is linear.
    NetworkDef d("yolov3", 3, 416, 416);
    d.conv("dark0.conv", 32, 3);
    const struct
    {
        int stage;
        int blocks;
        std::int64_t ch;
    } stages[] = {{1, 1, 64}, {2, 2, 128}, {3, 8, 256}, {4, 8, 512},
                  {5, 4, 1024}};
    for (const auto &st : stages) {
        const std::string prefix = "dark" + std::to_string(st.stage);
        d.conv(prefix + ".conv", st.ch, 3, 2);
        for (int b = 0; b < st.blocks; ++b) {
            const std::string block = prefix + "." + std::to_string(b);
            d.conv(block + ".conv1", st.ch / 2, 1);
            d.conv(block + ".conv2", st.ch, 3);
        }
    }
    return d;
}

std::vector<std::string>
registeredNetworkNames()
{
    return {"resnet18", "vgg16", "yolov3"};
}

NetworkDef
networkDefByName(const std::string &name)
{
    const std::string n = toLower(name);
    if (n == "resnet18" || n == "resnet-18")
        return resnet18Def();
    if (n == "vgg16" || n == "vgg-16")
        return vgg16Def();
    if (n == "yolov3" || n == "yolo-v3" || n == "darknet53")
        return yolov3Def();
    fatal("unknown network \"" + name + "\": valid names are " +
          join(registeredNetworkNames(), ", ") +
          "; a darknet .cfg path also works (e.g. --net model.cfg)");
}

bool
looksLikeCfgPath(const std::string &spec)
{
    if (spec.find('/') != std::string::npos)
        return true;
    return spec.size() > 4 && spec.substr(spec.size() - 4) == ".cfg";
}

NetworkDef
loadNetworkDef(const std::string &spec)
{
    if (looksLikeCfgPath(spec))
        return parseCfgFile(spec);
    return networkDefByName(spec);
}

// Batch-1 compatibility wrappers declared in conv/workloads.hh.

std::vector<ConvProblem>
resnet18Network()
{
    return resnet18Def().lower();
}

std::vector<ConvProblem>
vgg16Network()
{
    return vgg16Def().lower();
}

std::vector<ConvProblem>
yolov3Network()
{
    return yolov3Def().lower();
}

std::vector<ConvProblem>
networkByName(const std::string &name)
{
    return networkDefByName(name).lower();
}

} // namespace mopt
