/**
 * @file
 * Darknet-style .cfg frontend: parse a model config into a NetworkDef.
 *
 * Supported grammar subset (line oriented; '#' and ';' start
 * comments; keys are "key=value"):
 *
 *   [net]            width=, height=, channels= (required before the
 *                    first layer), batch= (optional, default 1);
 *                    training keys (momentum, learning_rate, ...) are
 *                    ignored.
 *   [convolutional]  filters= (required), size=1, stride=1, pad=0
 *                    (pad=1 means "same" padding size/2, darknet
 *                    convention), padding=0 (explicit border), groups=1,
 *                    dilation=1; batch_normalize/activation ignored.
 *   [connected]      output= (required); lowered to matmul-as-1x1 over
 *                    the flattened input.
 *   [maxpool]        stride=1, size=stride, padding=size-1; updates
 *                    the spatial cursor (ceil-div by stride), emits no
 *                    layer.
 *   [avgpool]        global pool: collapses the cursor to 1x1.
 *
 * Any other section ([shortcut], [route], [yolo], ...) is skipped
 * *loudly* — one warning with its line number — and shape propagation
 * continues linearly past it. Malformed input (non-key=value line,
 * non-integer value, zero filters, a truncated section missing a
 * required key, a conv before [net] dimensions) raises FatalError
 * with "source:line:" context.
 */

#ifndef MOPT_FRONTEND_CFG_PARSER_HH
#define MOPT_FRONTEND_CFG_PARSER_HH

#include <string>

#include "frontend/network_def.hh"

namespace mopt {

/**
 * Parse .cfg text into a NetworkDef. @p source names the origin (file
 * path) for error messages; the network is named after its basename.
 */
NetworkDef parseCfgText(const std::string &text, const std::string &source);

/** Read @p path and parse it; FatalError when unreadable. */
NetworkDef parseCfgFile(const std::string &path);

} // namespace mopt

#endif // MOPT_FRONTEND_CFG_PARSER_HH
