/**
 * @file
 * NetworkDef: the frontend IR for whole networks.
 *
 * A NetworkDef is an ordered list of conv-like layers — dense conv,
 * depthwise/grouped conv, and matmul-as-1x1-conv — with an explicit
 * batch size. Every layer records its *resolved* input tensor shape
 * (channels + spatial), so the IR is self-contained: lowering a layer
 * to a ConvProblem needs no propagation context, residual branches
 * (whose input is not the previous layer's output) are expressible,
 * and the IR round-trips losslessly through JSON for the RPC
 * protocol's inline-network payload.
 *
 * Shape propagation happens at construction time instead: the builder
 * methods (conv/depthwise/matmul/pool) carry a cursor — the current
 * tensor shape — forward through the network, which is also how the
 * darknet .cfg parser (cfg_parser.hh) drives this type.
 */

#ifndef MOPT_FRONTEND_NETWORK_DEF_HH
#define MOPT_FRONTEND_NETWORK_DEF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "conv/problem.hh"

namespace mopt {

/** What a layer *is*; all three lower to a ConvProblem. */
enum class LayerKind { Conv, Depthwise, Matmul };

/** Stable wire name ("conv", "depthwise", "matmul"). */
const char *layerKindName(LayerKind k);

/** Inverse of layerKindName; returns false on an unknown name. */
bool layerKindFromName(const std::string &name, LayerKind &out);

/** One conv-like layer with its resolved input shape. */
struct LayerDef
{
    std::string name;                 //!< Layer label (e.g. "conv1").
    LayerKind kind = LayerKind::Conv; //!< Provenance; see enum.
    std::int64_t filters = 1;         //!< Output channels (K).
    std::int64_t in_c = 1;            //!< Input channels (C).
    std::int64_t in_h = 1;            //!< Input height (pre-padding).
    std::int64_t in_w = 1;            //!< Input width (pre-padding).
    std::int64_t size = 1;            //!< Kernel height == width.
    int stride = 1;                   //!< Spatial stride.
    int dilation = 1;                 //!< Kernel dilation.
    std::int64_t groups = 1;          //!< Channel groups.
    int pad = 0;                      //!< Zero padding per border.

    /** Effective kernel extent: (size-1)*dilation + 1. */
    std::int64_t effSize() const { return (size - 1) * dilation + 1; }

    /** "Same"-style padding for this kernel: (effSize()-1)/2. */
    int samePad() const { return static_cast<int>((effSize() - 1) / 2); }

    /** Output spatial extents: (in + 2*pad - effSize())/stride + 1. */
    std::int64_t outH() const;
    std::int64_t outW() const;

    /** Lower to a ConvProblem at the given batch size (validated). */
    ConvProblem toProblem(std::int64_t batch) const;
};

/** An ordered network plus batch size; see file comment. */
struct NetworkDef
{
    std::string name;      //!< Network label (e.g. "resnet18").
    std::int64_t batch = 1;
    std::vector<LayerDef> layers;

    NetworkDef() = default;

    /** Start a network from an input tensor of shape [c, h, w]. */
    NetworkDef(std::string net_name, std::int64_t c, std::int64_t h,
               std::int64_t w);

    /** Current cursor shape (input of the next appended layer). */
    struct Cursor
    {
        std::int64_t c = 1, h = 1, w = 1;
    };
    Cursor cursor() const { return cur_; }

    /**
     * Append a dense/grouped conv reading the cursor, "same" padding;
     * advances the cursor to the layer's output.
     */
    NetworkDef &conv(const std::string &layer_name, std::int64_t filters,
                     std::int64_t size, int stride = 1,
                     std::int64_t groups = 1);

    /** Append a depthwise conv (groups == filters == cursor channels). */
    NetworkDef &depthwise(const std::string &layer_name, std::int64_t size,
                          int stride = 1);

    /** Append a matmul as a 1x1 conv over the cursor. */
    NetworkDef &matmul(const std::string &layer_name, std::int64_t filters);

    /**
     * Append a conv reading an *explicit* input shape (a residual /
     * downsample branch); the cursor is left untouched.
     */
    NetworkDef &branchConv(const std::string &layer_name,
                           std::int64_t filters, std::int64_t in_c,
                           std::int64_t in_hw, std::int64_t size,
                           int stride = 1);

    /** Append a raw LayerDef verbatim; advances the cursor. */
    NetworkDef &layer(const LayerDef &l);

    /**
     * Apply a pooling step to the cursor only (no layer appended; the
     * optimizer models conv-like ops). Darknet semantics:
     * out = (in + pad - size)/stride + 1 with pad defaulting to
     * size - 1, i.e. ceil-division by stride.
     */
    NetworkDef &pool(std::int64_t size, int stride, std::int64_t pad = -1);

    /** Collapse the cursor's spatial extents to 1x1 (global pool). */
    NetworkDef &globalPool();

    /** Lower every layer to a ConvProblem at this->batch. */
    std::vector<ConvProblem> lower() const;

    /** Validate batch plus every layer; throws FatalError. */
    void validate() const;

  private:
    Cursor cur_;
};

/**
 * Serialize to a single-line JSON object:
 *   {"name":..,"layers":[{"name":..,"kind":..,"k":..,"c":..,"h":..,
 *    "w":..,"size":..,"stride":..,"dilation":..,"groups":..,"pad":..},..]}
 * where h/w are the layer's *input* spatial extents. The batch is
 * deliberately not part of the payload — it travels beside the IR
 * (e.g. the RPC request's "batch" field), mirroring how a registered
 * name is paired with a batch.
 */
std::string networkDefToJson(const NetworkDef &def);

/** Inverse of networkDefToJson; returns false (and sets err) on a
 *  malformed payload. The parsed def has batch == 1. */
struct JsonValue;
bool networkDefFromJson(const JsonValue &v, NetworkDef &def,
                        std::string *err);

} // namespace mopt

#endif // MOPT_FRONTEND_NETWORK_DEF_HH
