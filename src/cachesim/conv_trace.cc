#include "cachesim/conv_trace.hh"

#include <sstream>

#include "common/logging.hh"
#include "exec/loop_nest.hh"

namespace mopt {

namespace {

/** Word-address layout: In at 0, Ker after In, Out after Ker. */
struct AddressMap
{
    std::int64_t in_base = 0;
    std::int64_t ker_base;
    std::int64_t out_base;
    std::int64_t in_h, in_w; //!< Input spatial extents.
    std::int64_t c, r, s;    //!< Channel and kernel extents.

    explicit AddressMap(const ConvProblem &p)
        : ker_base(p.inSize()), out_base(p.inSize() + p.kerSize()),
          in_h(p.inH()), in_w(p.inW()), c(p.c), r(p.r), s(p.s)
    {
    }

    std::int64_t
    inAddr(std::int64_t n, std::int64_t cc, std::int64_t y,
           std::int64_t x) const
    {
        return in_base + ((n * c + cc) * in_h + y) * in_w + x;
    }

    std::int64_t
    kerAddr(std::int64_t k, std::int64_t cc, std::int64_t rr,
            std::int64_t ss) const
    {
        return ker_base + ((k * c + cc) * r + rr) * s + ss;
    }

};

} // namespace

std::string
TraceStats::str() const
{
    std::ostringstream oss;
    oss << "reg=" << reg_words;
    for (int i = 0; i < 3; ++i)
        oss << " " << memLevelName(i + 1) << "="
            << level_words[static_cast<std::size_t>(i)];
    return oss.str();
}

TraceStats
simulateConvTrace(const ConvProblem &p, const ExecConfig &cfg,
                  const MachineSpec &m, std::int64_t line_words)
{
    return simulateConvTraceRegion(
        p, cfg,
        {m.capacityWords(LvlL1), m.capacityWords(LvlL2),
         m.capacityWords(LvlL3)},
        fullRegion(p), line_words);
}

void
forEachConvAccess(const ConvProblem &p, const ExecConfig &cfg,
                  const TileBounds &region,
                  const std::function<void(std::int64_t, bool)> &fn)
{
    const AddressMap amap(p);
    const std::int64_t out_base = amap.out_base;
    const auto out_addr = [&](std::int64_t n, std::int64_t k,
                              std::int64_t y, std::int64_t x) {
        return out_base + ((n * p.k + k) * p.h + y) * p.w + x;
    };

    walkTilesAtLevel(cfg, LvlL3, region, [&](const TileBounds &l3) {
        walkTilesAtLevel(cfg, LvlL2, l3, [&](const TileBounds &l2) {
            walkTilesAtLevel(cfg, LvlL1, l2, [&](const TileBounds &l1) {
                walkRegisterTiles(
                    cfg, l1,
                    [&](std::int64_t n, std::int64_t h, std::int64_t w0,
                        std::int64_t wb, std::int64_t k0,
                        std::int64_t kb) {
                        // The microkernel's (c, r, s) reduction over
                        // the L1 tile: per step, kb kernel words and
                        // wb input words.
                        for (std::int64_t c = l1.lo[DimC];
                             c < l1.hi[DimC]; ++c) {
                            for (std::int64_t r = l1.lo[DimR];
                                 r < l1.hi[DimR]; ++r) {
                                for (std::int64_t s = l1.lo[DimS];
                                     s < l1.hi[DimS]; ++s) {
                                    for (std::int64_t k = k0;
                                         k < k0 + kb; ++k)
                                        fn(amap.kerAddr(k, c, r, s),
                                           false);
                                    for (std::int64_t wi = 0; wi < wb;
                                         ++wi)
                                        fn(amap.inAddr(
                                               n, c,
                                               h * p.stride +
                                                   r * p.dilation,
                                               (w0 + wi) * p.stride +
                                                   s * p.dilation),
                                           false);
                                }
                            }
                        }
                        // Accumulator spill: read-modify-write of the
                        // Out block.
                        for (std::int64_t k = k0; k < k0 + kb; ++k) {
                            for (std::int64_t wi = 0; wi < wb; ++wi) {
                                const std::int64_t a =
                                    out_addr(n, k, h, w0 + wi);
                                fn(a, false);
                                fn(a, true);
                            }
                        }
                    });
            });
        });
    });
}

TraceStats
simulateConvTraceRegion(const ConvProblem &p, const ExecConfig &cfg,
                        const std::array<std::int64_t, 3> &capacities_words,
                        const TileBounds &region, std::int64_t line_words)
{
    checkUser(p.groups == 1,
              "simulateConvTrace: grouped conv is model-only for now "
              "(groups=1 required, got " + p.summary() + ")");
    Hierarchy hier({capacities_words[0], capacities_words[1],
                    capacities_words[2]},
                   line_words);
    forEachConvAccess(p, cfg, region,
                      [&](std::int64_t addr, bool is_write) {
                          hier.access(addr, is_write);
                      });

    hier.flushAll(); // final writebacks reach memory

    TraceStats stats;
    stats.reg_words = hier.totalAccesses();
    for (int i = 0; i < 3; ++i) {
        stats.traffic[static_cast<std::size_t>(i)] = hier.traffic(i);
        stats.level_words[static_cast<std::size_t>(i)] =
            stats.traffic[static_cast<std::size_t>(i)]
                .trafficWords(line_words);
    }
    return stats;
}

} // namespace mopt
