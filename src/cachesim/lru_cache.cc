#include "cachesim/lru_cache.hh"

#include "common/logging.hh"

namespace mopt {

LruCache::LruCache(std::int64_t capacity_words, std::int64_t line_words)
    : capacity_lines_(capacity_words / line_words), line_words_(line_words)
{
    checkUser(line_words >= 1, "LruCache: line size must be >= 1 word");
    checkUser(capacity_lines_ >= 1,
              "LruCache: capacity must hold at least one line");
    map_.reserve(static_cast<std::size_t>(capacity_lines_ * 2));
}

AccessResult
LruCache::access(std::int64_t word_addr, bool is_write,
                 std::int64_t *dirty_victim_word)
{
    if (dirty_victim_word)
        *dirty_victim_word = -1;
    const std::int64_t tag = word_addr / line_words_;
    const auto it = map_.find(tag);
    if (it != map_.end()) {
        ++hits_;
        it->second->dirty |= is_write;
        lru_.splice(lru_.begin(), lru_, it->second);
        return AccessResult::Hit;
    }

    ++misses_;
    if (static_cast<std::int64_t>(lru_.size()) >= capacity_lines_) {
        const Line &victim = lru_.back();
        if (victim.dirty) {
            ++writebacks_;
            if (dirty_victim_word)
                *dirty_victim_word = victim.tag * line_words_;
        }
        map_.erase(victim.tag);
        lru_.pop_back();
    }
    lru_.push_front(Line{tag, is_write});
    map_[tag] = lru_.begin();
    return AccessResult::Miss;
}

std::int64_t
LruCache::installWriteback(std::int64_t word_addr)
{
    const std::int64_t tag = word_addr / line_words_;
    const auto it = map_.find(tag);
    if (it != map_.end()) {
        it->second->dirty = true;
        lru_.splice(lru_.begin(), lru_, it->second);
        return -1;
    }

    std::int64_t dirty_victim = -1;
    if (static_cast<std::int64_t>(lru_.size()) >= capacity_lines_) {
        const Line &victim = lru_.back();
        if (victim.dirty) {
            ++writebacks_;
            dirty_victim = victim.tag * line_words_;
        }
        map_.erase(victim.tag);
        lru_.pop_back();
    }
    lru_.push_front(Line{tag, true});
    map_[tag] = lru_.begin();
    return dirty_victim;
}

void
LruCache::flush()
{
    for (const Line &line : lru_)
        if (line.dirty)
            ++writebacks_;
    lru_.clear();
    map_.clear();
}

void
LruCache::flush(std::vector<std::int64_t> &dirty_words)
{
    for (const Line &line : lru_)
        if (line.dirty)
            dirty_words.push_back(line.tag * line_words_);
    flush();
}

void
LruCache::resetStats()
{
    hits_ = 0;
    misses_ = 0;
    writebacks_ = 0;
}

} // namespace mopt
