/**
 * @file
 * Fully-associative LRU cache simulator with configurable line size —
 * exactly the idealized cache the paper's analytical model assumes
 * (Sec. 2.2). Used to validate the model against "hardware counter"
 * style per-level miss counts (Sec. 9 reproduction).
 */

#ifndef MOPT_CACHESIM_LRU_CACHE_HH
#define MOPT_CACHESIM_LRU_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace mopt {

/** Outcome of a single cache access. */
enum class AccessResult { Hit, Miss };

/**
 * Fully associative LRU cache. Addresses are word indices; lines hold
 * line_words consecutive words. Write-back, write-allocate: a dirty
 * line evicted (or flushed) counts one writeback.
 */
class LruCache
{
  public:
    /**
     * @param capacity_words  total capacity in words (>= line_words)
     * @param line_words      line size in words (1 = the paper's
     *                        unit-line model)
     */
    LruCache(std::int64_t capacity_words, std::int64_t line_words = 1);

    /**
     * Access one word; promotes/fills its line. If a dirty line is
     * evicted to make room and @p dirty_victim_word is non-null, the
     * victim's first-word address is stored there (-1 otherwise) so
     * the caller can cascade the writeback into the next outer level.
     */
    AccessResult access(std::int64_t word_addr, bool is_write,
                        std::int64_t *dirty_victim_word = nullptr);

    /**
     * Land a writeback arriving from the inner level: mark the line
     * dirty if resident, else allocate it dirty. Does not count as a
     * demand access or miss (the data comes from below, not from the
     * outer level). Returns the evicted dirty victim's first-word
     * address, or -1 when nothing dirty was displaced.
     */
    std::int64_t installWriteback(std::int64_t word_addr);

    /** Evict everything, counting dirty writebacks. */
    void flush();

    /**
     * Flush, appending the first-word address of every dirty line to
     * @p dirty_words (in LRU order) so the hierarchy can cascade them
     * into the next outer level. Writebacks are counted as in flush().
     */
    void flush(std::vector<std::int64_t> &dirty_words);

    std::int64_t hits() const { return hits_; }
    std::int64_t misses() const { return misses_; }
    std::int64_t writebacks() const { return writebacks_; }
    std::int64_t accesses() const { return hits_ + misses_; }

    /** Current number of resident lines. */
    std::int64_t residentLines() const
    {
        return static_cast<std::int64_t>(map_.size());
    }

    std::int64_t capacityLines() const { return capacity_lines_; }
    std::int64_t lineWords() const { return line_words_; }

    /** Zero the statistics (contents retained). */
    void resetStats();

  private:
    struct Line
    {
        std::int64_t tag;
        bool dirty;
    };

    std::int64_t capacity_lines_;
    std::int64_t line_words_;
    std::list<Line> lru_; //!< Front = most recent.
    std::unordered_map<std::int64_t, std::list<Line>::iterator> map_;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
    std::int64_t writebacks_ = 0;
};

} // namespace mopt

#endif // MOPT_CACHESIM_LRU_CACHE_HH
