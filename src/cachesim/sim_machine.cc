#include "cachesim/sim_machine.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "exec/loop_nest.hh"

namespace mopt {

namespace {

/**
 * One core's private L1/L2 stack in front of the shared L3: cascades
 * demand accesses and dirty-victim writebacks exactly like Hierarchy,
 * but with the outermost level owned by the caller (shared across
 * cores, as on the paper's machines — Sec. 7: "the memory-to-L3 data
 * movement remains the same" under parallelization).
 */
class PrivateStack
{
  public:
    PrivateStack(std::int64_t l1_words, std::int64_t l2_words,
                 std::int64_t line_words)
        : l1_(l1_words, line_words), l2_(l2_words, line_words)
    {
    }

    void
    access(LruCache &shared_l3, std::int64_t addr, bool is_write)
    {
        ++refs_;
        std::int64_t v1 = -1;
        const AccessResult r1 = l1_.access(addr, is_write, &v1);
        if (v1 >= 0) {
            const std::int64_t v2 = l2_.installWriteback(v1);
            if (v2 >= 0)
                shared_l3.installWriteback(v2);
        }
        if (r1 == AccessResult::Hit)
            return;
        std::int64_t v2 = -1;
        const AccessResult r2 = l2_.access(addr, false, &v2);
        if (v2 >= 0)
            shared_l3.installWriteback(v2);
        if (r2 == AccessResult::Hit)
            return;
        shared_l3.access(addr, false);
    }

    /** Drain both private levels into the shared L3. */
    void
    drain(LruCache &shared_l3)
    {
        std::vector<std::int64_t> dirty;
        l1_.flush(dirty);
        for (const std::int64_t w : dirty) {
            const std::int64_t v = l2_.installWriteback(w);
            if (v >= 0)
                shared_l3.installWriteback(v);
        }
        dirty.clear();
        l2_.flush(dirty);
        for (const std::int64_t w : dirty)
            shared_l3.installWriteback(w);
    }

    std::int64_t refs() const { return refs_; }
    std::int64_t l1Traffic() const
    {
        return l1_.misses() + l1_.writebacks();
    }
    std::int64_t l2Traffic() const
    {
        return l2_.misses() + l2_.writebacks();
    }

  private:
    LruCache l1_;
    LruCache l2_;
    std::int64_t refs_ = 0;
};

} // namespace

std::string
SimTimeBreakdown::str() const
{
    std::ostringstream oss;
    for (int l = 0; l < NumMemLevels; ++l) {
        oss << memLevelName(l) << ": "
            << volume_words[static_cast<std::size_t>(l)] << " words, "
            << seconds[static_cast<std::size_t>(l)] * 1e3 << " ms"
            << (l == bottleneck ? "  <-- bottleneck" : "") << "\n";
    }
    oss << "compute: " << compute_seconds * 1e3
        << " ms, total: " << total_seconds * 1e3 << " ms, " << gflops
        << " GFLOPS (" << active_cores << " cores)\n";
    return oss.str();
}

MachineSpec
scaledMachine(const MachineSpec &base, std::int64_t divisor)
{
    return scaledMachine(base, divisor, divisor, divisor);
}

MachineSpec
scaledMachine(const MachineSpec &base, std::int64_t div_l1,
              std::int64_t div_l2, std::int64_t div_l3)
{
    checkUser(div_l1 >= 1 && div_l2 >= 1 && div_l3 >= 1,
              "scaledMachine: divisors must be >= 1");
    MachineSpec m = base;
    m.name = base.name + "/" + std::to_string(div_l1) + ":" +
             std::to_string(div_l2) + ":" + std::to_string(div_l3);
    const std::int64_t divisors[3] = {div_l1, div_l2, div_l3};
    for (int l = LvlL1; l <= LvlL3; ++l) {
        auto &lvl = m.levels[static_cast<std::size_t>(l)];
        lvl.capacity_bytes = std::max<std::int64_t>(
            64, lvl.capacity_bytes / divisors[l - LvlL1]);
    }
    // Keep capacities strictly growing after the floor (including
    // relative to the untouched register file).
    for (int l = LvlL1; l <= LvlL3; ++l) {
        auto &lvl = m.levels[static_cast<std::size_t>(l)];
        const auto &inner = m.levels[static_cast<std::size_t>(l - 1)];
        lvl.capacity_bytes =
            std::max(lvl.capacity_bytes, inner.capacity_bytes * 2);
    }
    m.validate();
    return m;
}

SimTimeBreakdown
simulateTime(const ConvProblem &p, const ExecConfig &cfg,
             const MachineSpec &m, bool parallel,
             const SimTimeOptions &opts)
{
    SimTimeBreakdown out;

    // Traffic accumulation: per-level totals plus the slowest core's
    // share for the private boundaries.
    std::array<double, NumMemLevels> total{};
    std::array<double, NumMemLevels> max_core{};

    const auto accumulate = [&](const TraceStats &ts, double weight) {
        std::array<double, NumMemLevels> words{};
        words[LvlReg] = static_cast<double>(ts.reg_words) * weight;
        for (int i = 0; i < 3; ++i)
            words[static_cast<std::size_t>(LvlL1 + i)] =
                static_cast<double>(
                    ts.level_words[static_cast<std::size_t>(i)]) *
                weight;
        for (int l = 0; l < NumMemLevels; ++l) {
            total[static_cast<std::size_t>(l)] +=
                words[static_cast<std::size_t>(l)];
            max_core[static_cast<std::size_t>(l)] = std::max(
                max_core[static_cast<std::size_t>(l)],
                words[static_cast<std::size_t>(l)] / weight);
        }
    };

    int active = 1;
    if (!parallel) {
        accumulate(simulateConvTrace(p, cfg, m, opts.line_words), 1.0);
    } else {
        // The paper's parallel structure (Sec. 7, Listing 5): the L3
        // tile loops run *sequentially* — every core works inside the
        // same L3 tile, whose working set lives in the one shared L3
        // — and the L2-tile band within it is split across cores.
        // Each core keeps persistent private L1/L2 caches; per L3
        // tile, core i's chunk is replayed against them and the
        // shared L3 (a serialization of the true interleaving that
        // preserves private traffic and cross-core sharing). This is
        // exactly the executor's loop structure (exec/conv_exec.cc).
        LruCache shared_l3(m.capacityWords(LvlL3), opts.line_words);
        std::vector<PrivateStack> cores;
        std::size_t num_chunks = 0;

        walkTilesAtLevel(
            cfg, LvlL3, fullRegion(p), [&](const TileBounds &l3) {
                const auto chunks = splitRegion(l3, cfg.par);
                num_chunks = std::max(num_chunks, chunks.size());
                while (cores.size() < chunks.size())
                    cores.emplace_back(m.capacityWords(LvlL1),
                                       m.capacityWords(LvlL2),
                                       opts.line_words);
                for (std::size_t i = 0; i < chunks.size(); ++i) {
                    forEachConvAccess(
                        p, cfg, chunks[i],
                        [&](std::int64_t addr, bool is_write) {
                            cores[i].access(shared_l3, addr, is_write);
                        });
                }
            });

        active = static_cast<int>(std::max<std::size_t>(1, num_chunks));
        for (auto &core : cores) {
            core.drain(shared_l3);
            TraceStats ts;
            ts.reg_words = core.refs();
            ts.level_words[0] = core.l1Traffic() * opts.line_words;
            ts.level_words[1] = core.l2Traffic() * opts.line_words;
            ts.level_words[2] = 0; // shared; accounted below
            accumulate(ts, 1.0);
        }
        shared_l3.flush();
        const double l3_words =
            static_cast<double>(shared_l3.misses() +
                                shared_l3.writebacks()) *
            static_cast<double>(opts.line_words);
        total[LvlL3] = l3_words;
        max_core[LvlL3] = l3_words;
    }

    for (int l = 0; l < NumMemLevels; ++l) {
        const auto sl = static_cast<std::size_t>(l);
        out.volume_words[sl] = total[sl];
        const double bw = m.bandwidth(l, parallel) * 1e9;
        double bytes;
        if (parallel && l != LvlL3) {
            // Private boundary: the slowest core's traffic against the
            // per-core parallel bandwidth.
            bytes = max_core[sl] * 4.0;
        } else if (parallel) {
            // Shared memory boundary: aggregate traffic.
            bytes = total[sl] * 4.0;
        } else {
            bytes = total[sl] * 4.0;
        }
        out.seconds[sl] = bytes / bw;
    }

    out.bottleneck = LvlReg;
    for (int l = 1; l < NumMemLevels; ++l)
        if (out.seconds[static_cast<std::size_t>(l)] >
            out.seconds[static_cast<std::size_t>(out.bottleneck)])
            out.bottleneck = l;

    out.active_cores = active;
    out.compute_seconds =
        p.flops() /
        (m.peakGflopsPerCore() * static_cast<double>(active) * 1e9);
    out.total_seconds =
        std::max(out.compute_seconds,
                 out.seconds[static_cast<std::size_t>(out.bottleneck)]);
    out.gflops = p.flops() / out.total_seconds / 1e9;
    return out;
}

} // namespace mopt
