#include "cachesim/hierarchy.hh"

#include <sstream>

#include "common/logging.hh"

namespace mopt {

Hierarchy::Hierarchy(const std::vector<std::int64_t> &capacities_words,
                     std::int64_t line_words)
    : line_words_(line_words)
{
    checkUser(!capacities_words.empty(), "Hierarchy: need >= 1 level");
    std::int64_t prev = 0;
    for (std::int64_t cap : capacities_words) {
        checkUser(cap > prev, "Hierarchy: capacities must grow outward");
        caches_.emplace_back(cap, line_words);
        prev = cap;
    }
}

Hierarchy
Hierarchy::fromMachine(const MachineSpec &spec, std::int64_t line_words)
{
    return Hierarchy({spec.capacityWords(LvlL1), spec.capacityWords(LvlL2),
                      spec.capacityWords(LvlL3)},
                     line_words);
}

void
Hierarchy::access(std::int64_t word_addr, bool is_write)
{
    ++total_accesses_;
    for (std::size_t i = 0; i < caches_.size(); ++i) {
        std::int64_t dirty_victim = -1;
        const AccessResult res =
            caches_[i].access(word_addr, is_write, &dirty_victim);
        if (dirty_victim >= 0)
            writebackInto(i + 1, dirty_victim);
        if (res == AccessResult::Hit)
            return;
        // Miss: the line is filled into this level; the fill request
        // propagates outward as a read access.
        is_write = false;
    }
}

void
Hierarchy::writebackInto(std::size_t level, std::int64_t word_addr)
{
    // A dirty victim leaving level-1 lands in `level` (marked dirty,
    // allocated if absent); if that in turn displaces a dirty line,
    // the cascade continues outward. Falling off the last level means
    // the data reached memory.
    for (std::size_t j = level; j < caches_.size(); ++j) {
        word_addr = caches_[j].installWriteback(word_addr);
        if (word_addr < 0)
            return;
    }
}

LevelTraffic
Hierarchy::traffic(int i) const
{
    checkUser(i >= 0 && i < numLevels(), "Hierarchy::traffic: bad level");
    const LruCache &c = caches_[static_cast<std::size_t>(i)];
    LevelTraffic t;
    t.accesses = c.accesses();
    t.misses = c.misses();
    t.writebacks = c.writebacks();
    return t;
}

void
Hierarchy::flushAll()
{
    // Flush inner to outer so every dirty line drains through each
    // boundary it must cross on the way to memory.
    for (std::size_t i = 0; i < caches_.size(); ++i) {
        std::vector<std::int64_t> dirty;
        caches_[i].flush(dirty);
        for (const std::int64_t w : dirty)
            writebackInto(i + 1, w);
    }
}

std::string
Hierarchy::summary() const
{
    std::ostringstream oss;
    oss << "accesses=" << total_accesses_;
    for (int i = 0; i < numLevels(); ++i) {
        const LevelTraffic t = traffic(i);
        oss << " L" << (i + 1) << "{miss=" << t.misses
            << " wb=" << t.writebacks << "}";
    }
    return oss.str();
}

} // namespace mopt
