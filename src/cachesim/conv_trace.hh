/**
 * @file
 * Trace-driven simulation of a tiled convolution: replays the exact
 * access stream the executor's microkernel issues (register-tile
 * granularity: per (c,r,s) one kernel word per output channel and one
 * input word per output point, plus the final accumulator read/write
 * of Out) through a fully-associative LRU hierarchy. The per-level
 * traffic is the simulated ground truth the analytical model is
 * validated against (Sec. 9 reproduction).
 */

#ifndef MOPT_CACHESIM_CONV_TRACE_HH
#define MOPT_CACHESIM_CONV_TRACE_HH

#include <array>
#include <functional>
#include <string>

#include "cachesim/hierarchy.hh"
#include "conv/problem.hh"
#include "exec/loop_nest.hh"
#include "machine/machine.hh"
#include "model/tile_config.hh"

namespace mopt {

/** Simulated per-level data movement of one tiled execution. */
struct TraceStats
{
    /** Register<->L1 traffic proxy: total references issued. */
    std::int64_t reg_words = 0;

    /**
     * Words crossing each boundary: [0] = L1<->L2, [1] = L2<->L3,
     * [2] = L3<->memory (misses + writebacks, scaled by line size).
     */
    std::array<std::int64_t, 3> level_words{};

    /** Raw per-level counters. */
    std::array<LevelTraffic, 3> traffic{};

    std::string str() const;
};

/**
 * Simulate the sequential execution of @p cfg on the cache stack of
 * @p m (capacities only; bandwidths are irrelevant here).
 *
 * @param line_words  cache line size in words (1 = unit-line model)
 */
TraceStats simulateConvTrace(const ConvProblem &p, const ExecConfig &cfg,
                             const MachineSpec &m,
                             std::int64_t line_words = 1);

/**
 * Region-limited variant with explicit L1/L2/L3 capacities (in words):
 * replays only the tiles inside @p region. This is the building block
 * for per-core parallel simulation (each core's chunk runs against its
 * private L1/L2 and its share of L3).
 */
TraceStats simulateConvTraceRegion(
    const ConvProblem &p, const ExecConfig &cfg,
    const std::array<std::int64_t, 3> &capacities_words,
    const TileBounds &region, std::int64_t line_words = 1);

/**
 * Replay the word-level access stream the tiled execution of @p cfg
 * issues over @p region, invoking fn(word_address, is_write) for each
 * reference — the raw generator behind the trace simulators, exposed
 * so callers can drive custom cache topologies (e.g. the shared-L3
 * parallel simulation in sim_machine).
 */
void forEachConvAccess(
    const ConvProblem &p, const ExecConfig &cfg, const TileBounds &region,
    const std::function<void(std::int64_t, bool)> &fn);

} // namespace mopt

#endif // MOPT_CACHESIM_CONV_TRACE_HH
