/**
 * @file
 * The simulated testbed: converts exact LRU-simulated traffic into
 * bandwidth-scaled execution time on a machine preset, sequentially or
 * with the Sec. 7 parallel structure (per-core chunks with private
 * L1/L2 and a per-core share of L3).
 *
 * This is the repo's stand-in for the paper's hardware measurements
 * (DESIGN.md substitution table): the analytical model assumes exactly
 * the fully-associative LRU machine this simulator implements, so
 * model-vs-"measured" comparisons (Figs. 5-8) exercise the same
 * methodology as the paper's model-vs-hardware comparisons, minus the
 * effects the paper also excludes (conflict misses, prefetchers).
 *
 * Because trace simulation of paper-sized operators is intractable,
 * benchmark harnesses run proportionally downscaled operators against
 * capacity-scaled machine presets (scaledMachine), preserving the
 * problem-to-cache size ratios that determine which level bottlenecks.
 */

#ifndef MOPT_CACHESIM_SIM_MACHINE_HH
#define MOPT_CACHESIM_SIM_MACHINE_HH

#include <array>
#include <cstdint>
#include <string>

#include "cachesim/conv_trace.hh"
#include "conv/problem.hh"
#include "machine/machine.hh"
#include "model/tile_config.hh"

namespace mopt {

/** Simulated execution cost of one configuration. */
struct SimTimeBreakdown
{
    /** Per-boundary traffic in words; [LvlReg] = total references. */
    std::array<double, NumMemLevels> volume_words{};

    /** Bandwidth-scaled time of each boundary's traffic (seconds). */
    std::array<double, NumMemLevels> seconds{};

    /** Boundary with the maximum bandwidth-scaled time. */
    int bottleneck = LvlReg;

    /** FMA-throughput lower bound. */
    double compute_seconds = 0.0;

    /** max(compute, max_l seconds[l]). */
    double total_seconds = 0.0;

    /** flops / total_seconds / 1e9. */
    double gflops = 0.0;

    /** Cores actively used (1 when sequential). */
    int active_cores = 1;

    std::string str() const;
};

/**
 * Capacity-scaled copy of @p base: L1/L2/L3 capacities divided by
 * @p divisor (floored at one line of 64 B), everything else —
 * bandwidths, core count, SIMD shape, frequency — preserved. The
 * bandwidth *ratios* between levels, which determine the bottleneck
 * structure, are untouched.
 */
MachineSpec scaledMachine(const MachineSpec &base, std::int64_t divisor);

/**
 * Per-level variant: L1, L2, L3 divided by their own divisors. Real
 * hierarchies have L3/L1 ratios in the hundreds; compressing L3 more
 * than L1 keeps downscaled problems larger than the scaled L3 (so the
 * memory boundary still carries capacity misses) without shrinking L1
 * below one register tile.
 */
MachineSpec scaledMachine(const MachineSpec &base, std::int64_t div_l1,
                          std::int64_t div_l2, std::int64_t div_l3);

/** Options for simulateTime. */
struct SimTimeOptions
{
    std::int64_t line_words = 1; //!< Cache line size (words).
};

/**
 * Simulated execution time of @p cfg on @p m.
 *
 * Sequential mode replays the whole problem against the L1/L2/L3
 * stack. Parallel mode splits the iteration space by cfg.par (Sec. 7)
 * and runs each chunk against a private L1/L2 stack in front of one
 * *shared* L3 (data used by several cores is fetched from memory
 * once, the paper's Sec. 7 assumption); private-boundary times use
 * the slowest core's traffic against the per-core parallel bandwidth,
 * the L3-to-memory boundary uses aggregate shared-cache traffic
 * against the parallel memory bandwidth — mirroring the analytic
 * parallel composition so model and simulation disagree only through
 * cache behaviour, never through bandwidth accounting.
 */
SimTimeBreakdown simulateTime(const ConvProblem &p, const ExecConfig &cfg,
                              const MachineSpec &m, bool parallel,
                              const SimTimeOptions &opts = SimTimeOptions());

} // namespace mopt

#endif // MOPT_CACHESIM_SIM_MACHINE_HH
