/**
 * @file
 * A multi-level cache hierarchy of fully-associative LRU caches.
 * Accesses hit the innermost cache first and cascade outward on
 * misses. Per-level traffic (misses + writebacks) is the simulated
 * counterpart of the model's DV_l data volumes.
 */

#ifndef MOPT_CACHESIM_HIERARCHY_HH
#define MOPT_CACHESIM_HIERARCHY_HH

#include <string>
#include <vector>

#include "cachesim/lru_cache.hh"
#include "machine/machine.hh"

namespace mopt {

/** Per-level traffic summary. */
struct LevelTraffic
{
    std::int64_t accesses = 0;   //!< References arriving at this level.
    std::int64_t misses = 0;     //!< Fills from the next outer level.
    std::int64_t writebacks = 0; //!< Dirty evictions to the outer level.

    /** Total words crossing the boundary to the outer level. */
    std::int64_t trafficWords(std::int64_t line_words) const
    {
        return (misses + writebacks) * line_words;
    }
};

/** An inclusive-on-access multi-level hierarchy (L1, L2, L3). */
class Hierarchy
{
  public:
    /**
     * Build from capacities in words, innermost first.
     * @param line_words shared line size (1 = unit-line model).
     */
    explicit Hierarchy(const std::vector<std::int64_t> &capacities_words,
                       std::int64_t line_words = 1);

    /** Build the L1/L2/L3 stack of @p spec with unit lines. */
    static Hierarchy fromMachine(const MachineSpec &spec,
                                 std::int64_t line_words = 1);

    /** Access a word; cascades through the levels on misses. */
    void access(std::int64_t word_addr, bool is_write);

    /** Number of cache levels. */
    int numLevels() const { return static_cast<int>(caches_.size()); }

    /** Traffic summary of level @p i (0 = innermost). */
    LevelTraffic traffic(int i) const;

    /** Total references issued (register-to-L1 traffic proxy). */
    std::int64_t totalAccesses() const { return total_accesses_; }

    /** Flush all levels (counts writebacks). */
    void flushAll();

    /** Line size in words. */
    std::int64_t lineWords() const { return line_words_; }

    std::string summary() const;

  private:
    /** Cascade a dirty victim from level-1 into @p level and beyond. */
    void writebackInto(std::size_t level, std::int64_t word_addr);

    std::vector<LruCache> caches_;
    std::int64_t line_words_;
    std::int64_t total_accesses_ = 0;
};

} // namespace mopt

#endif // MOPT_CACHESIM_HIERARCHY_HH
