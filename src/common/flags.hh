/**
 * @file
 * Minimal flag/environment parsing for benchmark harnesses and
 * examples: "--name=value" arguments plus MOPT_* environment fallback.
 */

#ifndef MOPT_COMMON_FLAGS_HH
#define MOPT_COMMON_FLAGS_HH

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>

namespace mopt {

/**
 * Parsed command line of the form: prog --a=1 --b foo --flag.
 * Both "--name=value" and space-separated "--name value" are
 * accepted; a bare "--flag" (at the end, or followed by another
 * "--" argument) is treated as "--flag=1". Environment variables of
 * the form MOPT_<UPPERCASE_NAME> act as defaults (CLI wins).
 */
class Flags
{
  public:
    /** Parse argv; positional arguments and a flag given twice are
     *  rejected (a duplicate is almost always a shell-history editing
     *  accident, and silently keeping either value hides it). */
    Flags(int argc, char **argv);

    /** Construct empty (environment-only) flags. */
    Flags() = default;

    /** String value with default. */
    std::string getString(const std::string &name,
                          const std::string &def) const;

    /** Integer value with default. */
    std::int64_t getInt(const std::string &name, std::int64_t def) const;

    /** Double value with default. */
    double getDouble(const std::string &name, double def) const;

    /** Boolean value with default: 1/true/yes/on and 0/false/no/off
     *  (case-insensitive) are accepted; anything else is a fatal
     *  user error (it is usually a stray positional token). */
    bool getBool(const std::string &name, bool def) const;

    /** Whether the flag was given on the CLI or via the environment. */
    bool has(const std::string &name) const;

    /**
     * Reject any CLI-provided flag outside @p known: a typo like
     * --effrot=fast must fail loudly instead of silently running with
     * the default. Only command-line flags are checked — MOPT_*
     * environment defaults are shared across tools with different
     * vocabularies. Call once, after parsing, with the full flag list
     * of the command (sub)mode.
     */
    void rejectUnknown(std::initializer_list<const char *> known) const;

  private:
    /** Raw lookup: CLI first, then MOPT_<NAME> env var. */
    bool lookup(const std::string &name, std::string &out) const;

    std::map<std::string, std::string> values_;
};

/**
 * True when MOPT_BENCH_FULL=1: benches use paper-scale repetition counts
 * and problem sizes instead of the fast defaults.
 */
bool benchFullScale();

} // namespace mopt

#endif // MOPT_COMMON_FLAGS_HH
