/**
 * @file
 * Logging and error-reporting utilities for the MOpt library.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, invalid arguments) and exits cleanly; panic() is for
 * internal invariant violations and aborts.
 */

#ifndef MOPT_COMMON_LOGGING_HH
#define MOPT_COMMON_LOGGING_HH

#include <cstdarg>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mopt {

/** Severity levels for runtime log messages. */
enum class LogLevel {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Silent = 4,
};

/**
 * Global log-level threshold. Messages below this level are suppressed.
 * Initialized from the MOPT_LOG environment variable
 * (debug|info|warn|error|silent); defaults to Warn.
 */
LogLevel logLevel();

/** Override the global log level programmatically. */
void setLogLevel(LogLevel level);

/** Emit a log line to stderr if @p level passes the global threshold. */
void logMessage(LogLevel level, const std::string &msg);

/** Exception type thrown by fatal() so callers/tests can intercept it. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what) : std::runtime_error(what) {}
};

/**
 * Report an unrecoverable *user* error (bad configuration, invalid
 * argument) by throwing FatalError. Library code never calls exit().
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal invariant violation (a bug in MOpt itself).
 * Aborts the process after printing @p msg.
 */
[[noreturn]] void panic(const std::string &msg);

namespace detail {

/** Build a message from stream-style arguments. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Stream-style convenience wrappers. */
template <typename... Args>
void
logDebug(Args &&...args)
{
    logMessage(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logInfo(Args &&...args)
{
    logMessage(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logWarn(Args &&...args)
{
    logMessage(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/**
 * Check a user-facing precondition; throws FatalError with @p msg when
 * @p cond is false.
 */
inline void
checkUser(bool cond, const std::string &msg)
{
    if (!cond)
        fatal(msg);
}

/** Check an internal invariant; aborts with @p msg when @p cond is false. */
inline void
checkInvariant(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace mopt

#endif // MOPT_COMMON_LOGGING_HH
