#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace mopt {

namespace {

/** Nesting beyond this is rejected: the parser recurses per level,
 *  and since the RPC server feeds it untrusted network input, a
 *  '[[[[...' line must draw a parse error, not overflow the handler
 *  thread's stack. Every legitimate document (journal records, RPC
 *  frames) nests fewer than 8 deep. */
constexpr int kMaxDepth = 64;

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        return pos_ == s_.size(); // Trailing garbage is corruption.
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (pos_ >= s_.size() || depth > kMaxDepth)
            return false;
        switch (s_[pos_]) {
        case '{': return parseObject(out, depth);
        case '[': return parseArray(out, depth);
        case '"':
            out.type = JsonValue::Type::String;
            return parseString(out.str);
        case 't':
            out.type = JsonValue::Type::Bool;
            out.b = true;
            return literal("true");
        case 'f':
            out.type = JsonValue::Type::Bool;
            out.b = false;
            return literal("false");
        case 'n':
            out.type = JsonValue::Type::Null;
            return literal("null");
        default: return parseNumber(out);
        }
    }

    bool
    parseString(std::string &out)
    {
        if (s_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_++];
                switch (e) {
                case '"': c = '"'; break;
                case '\\': c = '\\'; break;
                case '/': c = '/'; break;
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'r': c = '\r'; break;
                case 'b': c = '\b'; break;
                case 'f': c = '\f'; break;
                case 'u': {
                    // Neither the journal nor the RPC protocol emits
                    // \u escapes for their own keys; decode the code
                    // unit as Latin-1 best-effort.
                    if (pos_ + 4 > s_.size())
                        return false;
                    unsigned v = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char hc = s_[pos_++];
                        v <<= 4;
                        if (hc >= '0' && hc <= '9')
                            v |= static_cast<unsigned>(hc - '0');
                        else if (hc >= 'a' && hc <= 'f')
                            v |= static_cast<unsigned>(hc - 'a' + 10);
                        else if (hc >= 'A' && hc <= 'F')
                            v |= static_cast<unsigned>(hc - 'A' + 10);
                        else
                            return false;
                    }
                    c = static_cast<char>(v & 0xff);
                    break;
                }
                default: return false;
                }
            }
            out += c;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // Closing quote.
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return false;
        try {
            std::size_t used = 0;
            out.num = std::stod(s_.substr(start, pos_ - start), &used);
            if (used != pos_ - start || !std::isfinite(out.num))
                return false;
        } catch (...) {
            return false;
        }
        out.type = JsonValue::Type::Number;
        return true;
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        out.type = JsonValue::Type::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue v;
            skipWs();
            if (!parseValue(v, depth + 1))
                return false;
            out.arr.push_back(std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        out.type = JsonValue::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (pos_ >= s_.size() || !parseString(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return false;
            ++pos_;
            skipWs();
            JsonValue v;
            if (!parseValue(v, depth + 1))
                return false;
            out.obj.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &kv : obj)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

bool
jsonParse(const std::string &text, JsonValue &out)
{
    return JsonParser(text).parse(out);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonHex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
jsonParseHex16(const std::string &s, std::uint64_t &out)
{
    if (s.size() != 16)
        return false;
    std::uint64_t v = 0;
    for (const char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    out = v;
    return true;
}

bool
jsonGetInt(const JsonValue &obj, const char *key, std::int64_t &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->type != JsonValue::Type::Number)
        return false;
    if (v->num != std::floor(v->num) || std::abs(v->num) > 1e15)
        return false;
    out = static_cast<std::int64_t>(v->num);
    return true;
}

bool
jsonGetString(const JsonValue &obj, const char *key, std::string &out)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->type != JsonValue::Type::String)
        return false;
    out = v->str;
    return true;
}

} // namespace mopt
