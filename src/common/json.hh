/**
 * @file
 * Minimal JSON value, recursive-descent parser, and emission helpers,
 * shared by the solution-cache journal and the RPC wire protocol
 * (which deliberately speaks the journal's dialect). This is not a
 * general-purpose JSON library: numbers are doubles, \u escapes decode
 * as Latin-1 code units, and the parser rejects trailing garbage —
 * exactly the properties the journal format was specified with, now
 * the single source of truth for every line of JSON the library reads.
 */

#ifndef MOPT_COMMON_JSON_HH
#define MOPT_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mopt {

/** One parsed JSON value (object members keep their input order). */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    /** First member named @p key, or nullptr (objects only). */
    const JsonValue *find(const std::string &key) const;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }
};

/**
 * Parse @p text into @p out. Returns false on any syntax error,
 * non-finite number, or trailing non-whitespace (a torn journal line
 * must never half-parse).
 */
bool jsonParse(const std::string &text, JsonValue &out);

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** 16-digit lowercase hex encoding of @p v (fingerprint fields). */
std::string jsonHex16(std::uint64_t v);

/** Decode jsonHex16 output; false unless exactly 16 hex digits. */
bool jsonParseHex16(const std::string &s, std::uint64_t &out);

/**
 * Integer member of @p obj that is an exact whole number with
 * |value| <= 1e15 (the range doubles represent exactly).
 */
bool jsonGetInt(const JsonValue &obj, const char *key, std::int64_t &out);

/** String member of @p obj. */
bool jsonGetString(const JsonValue &obj, const char *key,
                   std::string &out);

} // namespace mopt

#endif // MOPT_COMMON_JSON_HH
