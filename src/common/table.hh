/**
 * @file
 * ASCII table printer used by all benchmark harnesses to emit
 * paper-shaped rows (Table 1, Figs. 5-8 series).
 */

#ifndef MOPT_COMMON_TABLE_HH
#define MOPT_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace mopt {

/**
 * A simple column-aligned text table. Cells are strings; numeric
 * convenience adders format with fixed precision.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent add() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &add(const std::string &cell);

    /** Append a formatted double cell (default 3 decimal places). */
    Table &add(double v, int precision = 3);

    /** Append an integer cell. */
    Table &add(long long v);

    /** Render the table with aligned columns to @p os. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string str() const;

    /** Number of data rows so far. */
    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mopt

#endif // MOPT_COMMON_TABLE_HH
