/**
 * @file
 * Deadline: a point in monotonic time that bounds blocking work, and
 * the exception that reports running past one.
 *
 * Lives in common/ because both layers of the serving stack speak it:
 * the socket layer (rpc/tcp.hh) bounds poll() waits with it, and the
 * service layer (service/solve_scheduler.hh, network_optimizer)
 * bounds future waits with it — without either depending on the
 * other. One Deadline threaded through a multi-step operation
 * (connect, send, solve, await response) naturally budgets the whole
 * operation rather than resetting the clock at each step.
 */

#ifndef MOPT_COMMON_DEADLINE_HH
#define MOPT_COMMON_DEADLINE_HH

#include <chrono>

#include "common/logging.hh"

namespace mopt {

/** A monotonic-clock deadline; infinite by default. Cheap to copy. */
class Deadline
{
  public:
    /** No deadline: block forever (the historical behavior). */
    static Deadline never() { return Deadline(); }

    /** A deadline @p ms milliseconds from now. Negative clamps to 0
     *  (already expired); use never() for "no deadline", not -1. */
    static Deadline in(long ms)
    {
        Deadline d;
        d.infinite_ = false;
        d.at_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(ms < 0 ? 0 : ms);
        return d;
    }

    bool infinite() const { return infinite_; }

    bool expired() const { return !infinite_ && remainingMs() == 0; }

    /** Milliseconds until the deadline, clamped to >= 0; meaningless
     *  (0) for an infinite deadline — check infinite() first. */
    long remainingMs() const
    {
        if (infinite_)
            return 0;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                at_ - std::chrono::steady_clock::now())
                .count();
        return left < 0 ? 0 : static_cast<long>(left);
    }

    /**
     * The timeout to hand poll(): -1 (block) when infinite, else the
     * remaining milliseconds capped at @p cap_ms when @p cap_ms >= 0.
     * An expired deadline yields 0 (poll returns immediately).
     */
    int pollTimeout(int cap_ms = -1) const
    {
        if (infinite_)
            return cap_ms;
        long left = remainingMs();
        if (cap_ms >= 0 && left > cap_ms)
            left = cap_ms;
        return static_cast<int>(left);
    }

  private:
    Deadline() = default;

    bool infinite_ = true;
    std::chrono::steady_clock::time_point at_{};
};

/**
 * Thrown when work was abandoned because its Deadline expired. A
 * subtype of FatalError so existing catch sites degrade to a plain
 * user error; sites that care (the RPC server, which answers with a
 * machine-readable deadline_exceeded code) catch this type first.
 */
class DeadlineExceeded : public FatalError
{
  public:
    explicit DeadlineExceeded(const std::string &what)
        : FatalError(what)
    {}
};

} // namespace mopt

#endif // MOPT_COMMON_DEADLINE_HH
