/**
 * @file
 * Descriptive statistics used by the benchmark harnesses: mean, standard
 * deviation, geometric mean, 95% confidence interval (the paper reports
 * mean GFLOPS with 95% CIs per Georges et al.), and rank correlations
 * used by the Fig. 6 reproduction.
 */

#ifndef MOPT_COMMON_STATS_HH
#define MOPT_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace mopt {

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Unbiased (n-1) sample standard deviation; 0 for n < 2. */
double stddev(const std::vector<double> &xs);

/** Geometric mean; requires strictly positive values. */
double geomean(const std::vector<double> &xs);

/** Minimum / maximum; sample must be non-empty. */
double minValue(const std::vector<double> &xs);
double maxValue(const std::vector<double> &xs);

/** Median (average of middle two for even n); sample must be non-empty. */
double median(std::vector<double> xs);

/**
 * Half-width of the 95% confidence interval of the mean, using the
 * normal approximation 1.96 * s / sqrt(n) (as in the paper's
 * statistically rigorous measurement methodology).
 */
double confidence95(const std::vector<double> &xs);

/** Pearson linear correlation coefficient; 0 if degenerate. */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Spearman rank correlation (Pearson of the rank vectors, mid-ranks for
 * ties); the Fig. 6 reproduction reports this between model-predicted
 * ordering and measured metrics.
 */
double spearman(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Ranks of @p xs (1-based, mid-rank for ties): result[i] is the rank of
 * xs[i] in ascending order.
 */
std::vector<double> ranks(const std::vector<double> &xs);

/** Index of the minimum / maximum element; sample must be non-empty. */
std::size_t argmin(const std::vector<double> &xs);
std::size_t argmax(const std::vector<double> &xs);

/**
 * Indices of the k smallest elements in ascending order of value
 * (k clamped to size).
 */
std::vector<std::size_t> smallestK(const std::vector<double> &xs,
                                   std::size_t k);

} // namespace mopt

#endif // MOPT_COMMON_STATS_HH
