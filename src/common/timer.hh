/**
 * @file
 * Wall-clock timing helper (steady clock) used by measurement code and
 * the search-time benchmarks.
 */

#ifndef MOPT_COMMON_TIMER_HH
#define MOPT_COMMON_TIMER_HH

#include <chrono>

namespace mopt {

/** Steady-clock stopwatch, running from construction or reset(). */
class Timer
{
  public:
    Timer() : start_(std::chrono::steady_clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = std::chrono::steady_clock::now(); }

    /** Elapsed seconds since construction/reset. */
    double
    seconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

    /** Elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace mopt

#endif // MOPT_COMMON_TIMER_HH
