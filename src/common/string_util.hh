/**
 * @file
 * Small string helpers shared by the table printer, code emitter, and
 * CLI parsing.
 */

#ifndef MOPT_COMMON_STRING_UTIL_HH
#define MOPT_COMMON_STRING_UTIL_HH

#include <string>
#include <vector>

namespace mopt {

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Join @p parts with @p sep between elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Strip ASCII whitespace from both ends. */
std::string trim(const std::string &s);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Fixed-precision formatting of a double (printf "%.*f"). */
std::string formatDouble(double v, int precision);

/**
 * Human-readable engineering formatting: 1536 -> "1.5K", 2.5e9 -> "2.5G".
 */
std::string formatEng(double v);

/** Left/right-pad @p s with spaces to width @p w. */
std::string padLeft(const std::string &s, std::size_t w);
std::string padRight(const std::string &s, std::size_t w);

/** Lower-case an ASCII string. */
std::string toLower(std::string s);

} // namespace mopt

#endif // MOPT_COMMON_STRING_UTIL_HH
