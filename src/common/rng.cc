#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace mopt {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    checkInvariant(lo <= hi, "uniformInt: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t r;
    do {
        r = next();
    } while (r >= limit);
    return lo + static_cast<std::int64_t>(r % span);
}

double
Rng::uniform01()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniform01();
}

double
Rng::normal()
{
    double u1 = uniform01();
    double u2 = uniform01();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

std::size_t
Rng::index(std::size_t n)
{
    checkInvariant(n > 0, "Rng::index on empty range");
    return static_cast<std::size_t>(uniformInt(0, static_cast<std::int64_t>(n) - 1));
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa02bdbf7bb3c0a7ull);
}

} // namespace mopt
