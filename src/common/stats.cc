#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace mopt {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / (xs.size() - 1));
}

double
geomean(const std::vector<double> &xs)
{
    checkUser(!xs.empty(), "geomean of empty sample");
    double acc = 0.0;
    for (double x : xs) {
        checkUser(x > 0.0, "geomean requires positive values");
        acc += std::log(x);
    }
    return std::exp(acc / xs.size());
}

double
minValue(const std::vector<double> &xs)
{
    checkUser(!xs.empty(), "minValue of empty sample");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxValue(const std::vector<double> &xs)
{
    checkUser(!xs.empty(), "maxValue of empty sample");
    return *std::max_element(xs.begin(), xs.end());
}

double
median(std::vector<double> xs)
{
    checkUser(!xs.empty(), "median of empty sample");
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
confidence95(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    return 1.96 * stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    checkUser(xs.size() == ys.size(), "pearson: size mismatch");
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

std::vector<double>
ranks(const std::vector<double> &xs)
{
    const std::size_t n = xs.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
    std::vector<double> result(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && xs[order[j + 1]] == xs[order[i]])
            ++j;
        // Mid-rank for the tie group [i, j].
        const double r = 0.5 * (static_cast<double>(i + 1) +
                                static_cast<double>(j + 1));
        for (std::size_t k = i; k <= j; ++k)
            result[order[k]] = r;
        i = j + 1;
    }
    return result;
}

double
spearman(const std::vector<double> &xs, const std::vector<double> &ys)
{
    checkUser(xs.size() == ys.size(), "spearman: size mismatch");
    return pearson(ranks(xs), ranks(ys));
}

std::size_t
argmin(const std::vector<double> &xs)
{
    checkUser(!xs.empty(), "argmin of empty sample");
    return static_cast<std::size_t>(
        std::min_element(xs.begin(), xs.end()) - xs.begin());
}

std::size_t
argmax(const std::vector<double> &xs)
{
    checkUser(!xs.empty(), "argmax of empty sample");
    return static_cast<std::size_t>(
        std::max_element(xs.begin(), xs.end()) - xs.begin());
}

std::vector<std::size_t>
smallestK(const std::vector<double> &xs, std::size_t k)
{
    std::vector<std::size_t> order(xs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
    if (k < order.size())
        order.resize(k);
    return order;
}

} // namespace mopt
