#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/logging.hh"

namespace mopt {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    checkUser(num_threads >= 1, "ThreadPool needs >= 1 thread");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                if (stop_)
                    return;
                continue;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    parallelForImpl(count, body, workers_.size());
}

void
ThreadPool::parallelForImpl(std::size_t count,
                            const std::function<void(std::size_t)> &body,
                            std::size_t max_helpers)
{
    if (count == 0)
        return;

    // All loop state is heap-allocated and shared with every queued task:
    // parallelFor may return (all iterations claimed and finished) before a
    // worker ever dequeues its copy of the task, so the task must not
    // reference any caller-stack state. A stale task sees next >= count and
    // exits without touching `body`.
    struct State
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::size_t count = 0;
        const std::function<void(std::size_t)> *body = nullptr;
        std::exception_ptr first_error;
        std::mutex mutex;
        std::condition_variable done_cv;
    };
    auto state = std::make_shared<State>();
    state->count = count;
    state->body = &body;

    auto run = [state]() {
        for (;;) {
            const std::size_t i = state->next.fetch_add(1);
            if (i >= state->count)
                break;
            try {
                (*state->body)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!state->first_error)
                    state->first_error = std::current_exception();
            }
            if (state->done.fetch_add(1) + 1 == state->count) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->done_cv.notify_all();
            }
        }
    };

    const std::size_t helpers =
        std::min({workers_.size(), count, max_helpers});
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < helpers; ++i)
            tasks_.push(run);
    }
    cv_.notify_all();

    // The caller participates too, then waits for stragglers. `body` is
    // only dereferenced for claimed iterations, all of which complete
    // before the wait below returns, so the caller's reference stays valid
    // for exactly as long as any task can use it.
    run();
    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->done_cv.wait(
            lock, [&] { return state->done.load() >= state->count; });
    }
    if (state->first_error)
        std::rethrow_exception(state->first_error);
}

void
ThreadPool::parallelForIndexed(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)> &body)
{
    parallelForIndexedImpl(count, grain, body, workers_.size());
}

void
ThreadPool::parallelForIndexedImpl(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)> &body,
    std::size_t max_helpers)
{
    if (count == 0)
        return;
    if (grain == 0)
        grain = 1;

    // Same lifetime discipline as parallelFor: all loop state is
    // heap-allocated and shared with the queued tasks, which may be
    // dequeued after this call already returned.
    struct State
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::size_t count = 0;
        std::size_t grain = 1;
        const std::function<void(std::size_t, std::size_t, std::size_t)>
            *body = nullptr;
        std::exception_ptr first_error;
        std::mutex mutex;
        std::condition_variable done_cv;
    };
    auto state = std::make_shared<State>();
    state->count = count;
    state->grain = grain;
    state->body = &body;

    auto run = [state](std::size_t worker) {
        for (;;) {
            const std::size_t begin =
                state->next.fetch_add(state->grain);
            if (begin >= state->count)
                break;
            const std::size_t end =
                std::min(begin + state->grain, state->count);
            try {
                (*state->body)(worker, begin, end);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!state->first_error)
                    state->first_error = std::current_exception();
            }
            const std::size_t claimed = end - begin;
            if (state->done.fetch_add(claimed) + claimed ==
                state->count) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->done_cv.notify_all();
            }
        }
    };

    const std::size_t chunks = (count + grain - 1) / grain;
    const std::size_t helpers =
        std::min({workers_.size(), chunks, max_helpers});
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < helpers; ++i)
            tasks_.push([run, i] { run(i + 1); });
    }
    cv_.notify_all();

    run(0); // the caller participates as worker 0
    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->done_cv.wait(
            lock, [&] { return state->done.load() >= state->count; });
    }
    if (state->first_error)
        std::rethrow_exception(state->first_error);
}

void
ThreadPool::parallelForChunked(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)> &body)
{
    if (count == 0)
        return;
    const std::size_t nchunks = std::min(workers_.size() + 1, count);
    const std::size_t chunk = (count + nchunks - 1) / nchunks;
    parallelFor(nchunks, [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, count);
        if (begin < end)
            body(begin, end);
    });
}

ThreadPool &
globalPool()
{
    static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
    return pool;
}

} // namespace mopt
