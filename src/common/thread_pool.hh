/**
 * @file
 * A fixed-size thread pool with blocking parallel-for variants, used
 * by the optimizer's flattened solve fan-out, the parallel tiled
 * executor (Sec. 7 of the paper), and the benchmark harnesses.
 *
 * The worker-indexed scratch contract (parallelForIndexed): every
 * participating thread — the caller counts as worker 0 — has a stable
 * worker id in [0, size()], so a caller that preallocates size()+1
 * scratch slots and indexes them by worker id gets lock-free,
 * allocation-free per-thread state for the duration of the call.
 * Iteration-to-worker assignment is dynamic (an atomic chunk counter)
 * and therefore nondeterministic; deterministic callers must write
 * results into per-iteration slots and reduce in iteration order
 * afterwards, the way optimizeConv does (see docs/ARCHITECTURE.md,
 * "Threading and determinism invariants").
 */

#ifndef MOPT_COMMON_THREAD_POOL_HH
#define MOPT_COMMON_THREAD_POOL_HH

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mopt {

/**
 * Fixed-size worker pool. Tasks are std::function<void()>; parallelFor
 * blocks until all iterations complete. Exceptions inside tasks
 * propagate out of parallelFor (first one wins).
 *
 * Several callers may issue parallel-for calls on one pool
 * concurrently; their tasks interleave in the shared queue and each
 * call completes independently (every caller participates in its own
 * loop, so progress never depends on a helper being dequeued). To
 * share a pool *fairly*, take a SubWidth handle per caller: it caps
 * how many helpers one call may recruit, partitioning the pool's
 * width across concurrent callers (the solve scheduler runs N
 * concurrent solves at 1/N width each this way).
 */
class ThreadPool
{
  public:
    /**
     * A width-capped view of a pool: the same parallel-for surface,
     * but at most width()-1 helper tasks are enqueued per call (the
     * caller is always the width()-th participant). Worker ids passed
     * to parallelForIndexed bodies are dense in [0, size()], exactly
     * as on the full pool, so per-worker scratch sized size()+1 works
     * unchanged. Copyable; must not outlive the pool.
     */
    class SubWidth
    {
      public:
        /** Helper count this handle may recruit (mirrors
         *  ThreadPool::size(): participants = size() + 1). */
        std::size_t size() const { return width_ - 1; }

        /** Max participating threads, caller included (>= 1). */
        std::size_t width() const { return width_; }

        /** ThreadPool::parallelFor, capped to this handle's width. */
        void parallelFor(std::size_t count,
                         const std::function<void(std::size_t)> &body)
        {
            pool_->parallelForImpl(count, body, width_ - 1);
        }

        /** ThreadPool::parallelForIndexed, capped to this handle's
         *  width. Worker ids lie in [0, size()]. */
        void parallelForIndexed(
            std::size_t count, std::size_t grain,
            const std::function<void(std::size_t worker,
                                     std::size_t begin,
                                     std::size_t end)> &body)
        {
            pool_->parallelForIndexedImpl(count, grain, body,
                                          width_ - 1);
        }

      private:
        friend class ThreadPool;
        SubWidth(ThreadPool &pool, std::size_t width)
            : pool_(&pool), width_(width)
        {}

        ThreadPool *pool_;
        std::size_t width_; //!< Participants incl. caller; >= 1.
    };

    /** Spawn @p num_threads workers (>= 1). */
    explicit ThreadPool(std::size_t num_threads);

    /** Joins all workers. Pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /** A handle capped to @p width participating threads (caller
     *  included), clamped to [1, size() + 1]. */
    SubWidth subWidth(std::size_t width)
    {
        return SubWidth(*this,
                        std::min(std::max<std::size_t>(width, 1),
                                 workers_.size() + 1));
    }

    /** The uncapped handle (width = size() + 1), for callers written
     *  against the SubWidth surface. */
    SubWidth fullWidth() { return subWidth(workers_.size() + 1); }

    /**
     * Run body(i) for i in [0, count) across the pool and wait for all
     * of them. The calling thread also executes work.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /**
     * Static-chunked variant: splits [0, count) into one contiguous
     * range per worker and calls body(begin, end). Useful when
     * iterations are uniform and cheap.
     */
    void parallelForChunked(
        std::size_t count,
        const std::function<void(std::size_t, std::size_t)> &body);

    /**
     * Worker-indexed, dynamically chunked variant: participating
     * threads repeatedly claim the next @p grain iterations from a
     * shared atomic counter and call body(worker, begin, end). The
     * worker id is stable per participating thread and lies in
     * [0, size()] (the calling thread is worker 0), so callers can
     * maintain per-worker scratch state with no locking. Iterations
     * may run in any order; exceptions propagate (first one wins).
     */
    void parallelForIndexed(
        std::size_t count, std::size_t grain,
        const std::function<void(std::size_t worker, std::size_t begin,
                                 std::size_t end)> &body);

  private:
    void workerLoop();

    void parallelForImpl(std::size_t count,
                         const std::function<void(std::size_t)> &body,
                         std::size_t max_helpers);
    void parallelForIndexedImpl(
        std::size_t count, std::size_t grain,
        const std::function<void(std::size_t, std::size_t,
                                 std::size_t)> &body,
        std::size_t max_helpers);

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/** Process-wide pool sized to hardware_concurrency (lazily created). */
ThreadPool &globalPool();

} // namespace mopt

#endif // MOPT_COMMON_THREAD_POOL_HH
