#include "common/string_util.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace mopt {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
formatDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
formatEng(double v)
{
    static const char *suffix[] = {"", "K", "M", "G", "T", "P"};
    int idx = 0;
    double a = std::fabs(v);
    while (a >= 1000.0 && idx < 5) {
        a /= 1000.0;
        v /= 1000.0;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3g%s", v, suffix[idx]);
    return buf;
}

std::string
padLeft(const std::string &s, std::size_t w)
{
    if (s.size() >= w)
        return s;
    return std::string(w - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t w)
{
    if (s.size() >= w)
        return s;
    return s + std::string(w - s.size(), ' ');
}

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

} // namespace mopt
