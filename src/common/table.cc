#include "common/table.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/string_util.hh"

namespace mopt {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    checkUser(!headers_.empty(), "Table needs at least one column");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::add(const std::string &cell)
{
    checkUser(!rows_.empty(), "Table::add before Table::row");
    checkUser(rows_.back().size() < headers_.size(),
              "Table row has more cells than headers");
    rows_.back().push_back(cell);
    return *this;
}

Table &
Table::add(double v, int precision)
{
    return add(formatDouble(v, precision));
}

Table &
Table::add(long long v)
{
    return add(std::to_string(v));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << (c ? "  " : "") << padRight(cell, widths[c]);
        }
        os << "\n";
    };

    emitRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &r : rows_)
        emitRow(r);
}

std::string
Table::str() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace mopt
