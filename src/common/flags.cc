#include "common/flags.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/string_util.hh"

namespace mopt {

Flags::Flags(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg(argv[i]);
        checkUser(startsWith(arg, "--"),
                  "unexpected positional argument: " + arg);
        arg = arg.substr(2);
        std::string name, value;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else if (i + 1 < argc && !startsWith(argv[i + 1], "--")) {
            // "--name value" form: consume the next token as the value.
            // (Length-explicit append sidesteps a GCC 12 -Wrestrict
            // false positive on string::operator=(const char *).)
            name = arg;
            const char *v = argv[++i];
            value.append(v, std::strlen(v));
        } else {
            name = arg;
            value.push_back('1');
        }
        checkUser(!values_.count(name),
                  "--" + name + " given more than once");
        values_[name] = value;
    }
}

void
Flags::rejectUnknown(std::initializer_list<const char *> known) const
{
    for (const auto &kv : values_) {
        bool found = false;
        for (const char *k : known) {
            if (kv.first == k) {
                found = true;
                break;
            }
        }
        checkUser(found, "unknown flag --" + kv.first +
                             " (see --help for this command's flags)");
    }
}

bool
Flags::lookup(const std::string &name, std::string &out) const
{
    const auto it = values_.find(name);
    if (it != values_.end()) {
        out = it->second;
        return true;
    }
    std::string env_name = "MOPT_";
    for (char c : name) {
        if (c == '-')
            env_name.push_back('_');
        else
            env_name.push_back(
                static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
    if (const char *env = std::getenv(env_name.c_str())) {
        out = env;
        return true;
    }
    return false;
}

std::string
Flags::getString(const std::string &name, const std::string &def) const
{
    std::string v;
    return lookup(name, v) ? v : def;
}

std::int64_t
Flags::getInt(const std::string &name, std::int64_t def) const
{
    std::string v;
    if (!lookup(name, v))
        return def;
    return std::strtoll(v.c_str(), nullptr, 10);
}

double
Flags::getDouble(const std::string &name, double def) const
{
    std::string v;
    if (!lookup(name, v))
        return def;
    return std::strtod(v.c_str(), nullptr);
}

bool
Flags::getBool(const std::string &name, bool def) const
{
    std::string v;
    if (!lookup(name, v))
        return def;
    const std::string s = toLower(trim(v));
    if (s == "1" || s == "true" || s == "yes" || s == "on")
        return true;
    if (s == "0" || s == "false" || s == "no" || s == "off")
        return false;
    // A stray token after a bare boolean flag ("--verify tiled") is
    // parsed as its value; reject it loudly rather than silently
    // returning false.
    fatal("--" + name + ": expected a boolean, got \"" + v + "\"");
}

bool
Flags::has(const std::string &name) const
{
    std::string v;
    return lookup(name, v);
}

bool
benchFullScale()
{
    static const bool full = [] {
        const char *env = std::getenv("MOPT_BENCH_FULL");
        return env && std::string(env) == "1";
    }();
    return full;
}

} // namespace mopt
