#include "common/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace mopt {

namespace {

std::mutex log_mutex;

LogLevel
parseEnvLevel()
{
    const char *env = std::getenv("MOPT_LOG");
    if (!env)
        return LogLevel::Warn;
    std::string s(env);
    if (s == "debug")
        return LogLevel::Debug;
    if (s == "info")
        return LogLevel::Info;
    if (s == "warn")
        return LogLevel::Warn;
    if (s == "error")
        return LogLevel::Error;
    if (s == "silent")
        return LogLevel::Silent;
    return LogLevel::Warn;
}

LogLevel &
levelStorage()
{
    static LogLevel level = parseEnvLevel();
    return level;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "DEBUG";
      case LogLevel::Info:
        return "INFO";
      case LogLevel::Warn:
        return "WARN";
      case LogLevel::Error:
        return "ERROR";
      default:
        return "?";
    }
}

} // namespace

LogLevel
logLevel()
{
    return levelStorage();
}

void
setLogLevel(LogLevel level)
{
    levelStorage() = level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    std::lock_guard<std::mutex> lock(log_mutex);
    std::cerr << "[mopt:" << levelName(level) << "] " << msg << "\n";
}

void
fatal(const std::string &msg)
{
    logMessage(LogLevel::Error, "fatal: " + msg);
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(log_mutex);
    std::cerr << "[mopt:PANIC] " << msg << std::endl;
    std::abort();
}

} // namespace mopt
