/**
 * @file
 * Deterministic random-number utilities.
 *
 * All stochastic components of the library (grid sampler, auto-tuner,
 * multi-start solver) accept an explicit Rng so experiments are
 * reproducible run-to-run.
 */

#ifndef MOPT_COMMON_RNG_HH
#define MOPT_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace mopt {

/**
 * A small deterministic RNG (xoshiro256** core) with convenience
 * sampling helpers. Cheap to copy; copies diverge independently.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (splitmix64-expanded state). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform01();

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Pick a uniformly random element index of a size-@p n container. */
    std::size_t index(std::size_t n);

    /** Pick a uniformly random element of @p v (must be non-empty). */
    template <typename T>
    const T &
    choice(const std::vector<T> &v)
    {
        return v[index(v.size())];
    }

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = index(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child stream (for per-thread use). */
    Rng split();

  private:
    std::uint64_t s_[4];
};

} // namespace mopt

#endif // MOPT_COMMON_RNG_HH
