/**
 * @file
 * Client side of the moptd protocol: a connection to one server
 * (Client) and a fleet router (ShardRouter) that partitions the
 * solution-cache key space across N servers by CacheKey::hash() %
 * n_nodes — the hash is stable across processes and machines, so
 * every client in a fleet routes a given (problem, machine, settings)
 * to the same node and that node's cache accumulates all the traffic
 * for its slice of the key space.
 *
 * Availability beats completeness: when a node is unreachable (or
 * answers garbage), the router falls back to solving locally with the
 * same deterministic optimizer the server runs, so a degraded fleet
 * returns byte-identical plans, just more slowly. A node that fails
 * once is marked down for the rest of the routing call; it is retried
 * on the next call.
 */

#ifndef MOPT_RPC_CLIENT_HH
#define MOPT_RPC_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "machine/machine.hh"
#include "optimizer/mopt_optimizer.hh"
#include "rpc/protocol.hh"
#include "rpc/tcp.hh"
#include "service/network_optimizer.hh"

namespace mopt {

/** One server address. */
struct RpcEndpoint
{
    std::string host;
    int port = 0;

    std::string str() const { return host + ":" + std::to_string(port); }
    bool operator==(const RpcEndpoint &o) const = default;
};

/**
 * Parse a "host:port[,host:port...]" list (the --connect flag).
 * Throws FatalError on empty input, a missing/invalid port, or an
 * empty host. IPv6 literals are not supported — this is the CLI's
 * flag syntax, and ":" is its separator.
 */
std::vector<RpcEndpoint> parseEndpointList(const std::string &csv);

/**
 * A blocking connection to one server. Connects lazily on the first
 * call and reconnects after a transport error on the next call. Not
 * thread-safe; one Client per thread.
 */
class Client
{
  public:
    explicit Client(RpcEndpoint ep,
                    std::size_t max_response_bytes = 8u << 20);

    const RpcEndpoint &endpoint() const { return ep_; }

    /**
     * Send @p req, await the response line, parse it into @p out.
     * False + @p err on any transport or parse failure (the
     * connection is dropped so the next call reconnects). A server
     * error report ({"ok":false}) is a *successful* call: true is
     * returned and out.ok is false.
     */
    bool call(const RpcRequest &req, RpcResponse &out,
              std::string *err = nullptr);

    /** Close the connection (next call reconnects). */
    void disconnect();

  private:
    RpcEndpoint ep_;
    std::size_t max_response_bytes_;
    TcpSocket sock_;
};

/** What one ShardRouter::optimize call did, per provenance class. */
struct RouteStats
{
    std::size_t unique_shapes = 0;
    std::size_t remote_hits = 0;   //!< Server answered from its cache.
    std::size_t remote_misses = 0; //!< Server solved on demand.
    std::size_t fallbacks = 0;     //!< Node down; solved locally.
    double solve_seconds = 0;      //!< Remote + local solve time.

    /** remote_hits / unique_shapes (1 when there was nothing to do). */
    double hitRate() const;
};

/**
 * Routes whole-network solves across a fleet. Not thread-safe; one
 * router per thread.
 */
class ShardRouter
{
  public:
    /**
     * @param endpoints  the fleet, in fleet-wide agreed order (routing
     *                   is positional: hash % n picks an index)
     * @param machine    machine description (must match the fleet's)
     * @param opts       search settings (must match the fleet's)
     */
    ShardRouter(std::vector<RpcEndpoint> endpoints,
                const MachineSpec &machine,
                const OptimizerOptions &opts);

    /** Node index that owns @p key: hash % n_nodes. */
    std::size_t nodeOf(const CacheKey &key) const;

    /**
     * Optimize every layer of @p net, one RPC per unique shape to the
     * owning node, local solve on node failure. The returned plan is
     * byte-identical to NetworkOptimizer::optimize on a local cache
     * (same dedupe, same deterministic solves). @p stats_out, when
     * non-null, receives the provenance breakdown.
     */
    NetworkPlan optimize(const std::vector<ConvProblem> &net,
                         RouteStats *stats_out = nullptr);

    std::size_t nodeCount() const { return clients_.size(); }

  private:
    /** Solve one canonical shape, remote first, local on failure. */
    RpcSolveResult solveOne(const CacheKey &key, RouteStats &stats);

    std::vector<Client> clients_;
    std::vector<bool> node_down_; //!< Reset at each optimize() call.
    MachineSpec machine_;
    OptimizerOptions opts_;
    std::uint64_t machine_fp_;
    std::uint64_t settings_fp_;
};

} // namespace mopt

#endif // MOPT_RPC_CLIENT_HH
