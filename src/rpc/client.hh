/**
 * @file
 * Client side of the moptd protocol: a connection to one server
 * (Client) and a fleet router (ShardRouter) that partitions the
 * solution-cache key space across N servers by CacheKey::hash() %
 * n_nodes — the hash is stable across processes and machines, so
 * every client in a fleet routes a given (problem, machine, settings)
 * to the same node and that node's cache accumulates all the traffic
 * for its slice of the key space.
 *
 * Availability beats completeness: when a node is unreachable (or
 * answers garbage), the router falls back to solving locally with the
 * same deterministic optimizer the server runs, so a degraded fleet
 * returns byte-identical plans, just more slowly.
 *
 * Failure policy (FleetOptions; docs/ARCHITECTURE.md "Failure
 * model"):
 *
 *  - **Deadlines.** Every RPC is bounded by deadline_ms end to end
 *    (connect, send, await); the budget also travels in the request
 *    so the server stops working the moment an answer would be too
 *    late. A stalled or blackholed node costs at most the deadline.
 *  - **Retries.** Transport failures and explicit "overloaded"
 *    refusals are retried up to max_retries times with doubling,
 *    jittered backoff. Any *other* refusal (fingerprint mismatch, bad
 *    shape) is a fleet misconfiguration and fails loudly, never
 *    retried — retrying can't fix a wrong question.
 *  - **Hedging.** When an answer hasn't arrived after hedge_ms, the
 *    same request is fired at the next healthy node and the first
 *    answer wins. Plans are deterministic, so either answer is
 *    correct; single-flight coalescing server-side makes the
 *    duplicate nearly free. The loser is abandoned.
 *  - **Mark-down with re-probe.** A node whose calls transport-fail
 *    (or time out entirely) is quarantined for markdown_ms, during
 *    which its keys solve locally, fail over to the owner's ring
 *    successor (which shard-aware replication keeps warm for exactly
 *    those keys — rpc/server.cc), or hedge elsewhere; after the
 *    quarantine one call re-probes it (half-open) and success puts it
 *    back in rotation. Nothing is ever marked down forever. The
 *    standing is kept in a fleet::PeerTable — the same state machine
 *    the server's replication push thread runs — configured for the
 *    router's historical semantics (first failure quarantines, fixed
 *    window, no jitter).
 */

#ifndef MOPT_RPC_CLIENT_HH
#define MOPT_RPC_CLIENT_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "fleet/peer_table.hh"
#include "machine/machine.hh"
#include "optimizer/mopt_optimizer.hh"
#include "rpc/protocol.hh"
#include "rpc/tcp.hh"
#include "service/network_optimizer.hh"

namespace mopt {

/** One server address. */
struct RpcEndpoint
{
    std::string host;
    int port = 0;

    std::string str() const { return host + ":" + std::to_string(port); }
    bool operator==(const RpcEndpoint &o) const = default;
};

/**
 * Parse a "host:port[,host:port...]" list (the --connect flag).
 * Throws FatalError on empty input, a missing/invalid port, or an
 * empty host. IPv6 literals are not supported — this is the CLI's
 * flag syntax, and ":" is its separator.
 */
std::vector<RpcEndpoint> parseEndpointList(const std::string &csv);

/**
 * Failure policy of a fleet client (ShardRouter and the CLI's
 * single-node retry path). The defaults reproduce the historical
 * behavior: no deadline, one attempt, no hedging.
 */
struct FleetOptions
{
    /** Per-RPC budget in ms (connect + send + await response), also
     *  sent to the server as the request's deadline_ms. 0 = none. */
    long deadline_ms = 0;

    /** Extra attempts after a transport failure or an explicit
     *  "overloaded" refusal. 0 = single attempt. */
    int max_retries = 0;

    /** First retry backoff in ms; doubles per retry, plus up to 50%
     *  deterministic jitter (seeded) so a thundering herd of clients
     *  doesn't re-arrive in lockstep. */
    long backoff_ms = 50;

    /** Fire a duplicate request at the next healthy node when no
     *  answer arrived after this many ms; first answer wins. 0 =
     *  hedging off. */
    long hedge_ms = 0;

    /** Quarantine after a node is marked down, in ms; the first call
     *  routed to it afterwards re-probes it (half-open). */
    long markdown_ms = 1000;

    /** Backoff-jitter seed (deterministic; vary per client). */
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;

    /** Solve locally when a shard is unavailable past every retry.
     *  false (the CLI's --no-fallback) turns that degradation into a
     *  hard FatalError instead — the mode used to *prove* an answer
     *  came from the fleet (replication smoke tests, cache audits),
     *  where a silent local solve would mask a cold peer. */
    bool local_fallback = true;
};

/**
 * A blocking connection to one server. Connects lazily on the first
 * call and reconnects after a transport error on the next call. Not
 * thread-safe; one Client per thread.
 *
 * Two calling styles: call() is the one-shot request/response used
 * almost everywhere; startCall()/waitResponse()/abandon() split the
 * same exchange so a caller can poll several servers at once (the
 * router's hedging) without threads — Timeout from waitResponse keeps
 * the call in flight, and any partial response bytes stay buffered
 * for the next slice.
 */
class Client
{
  public:
    explicit Client(RpcEndpoint ep,
                    std::size_t max_response_bytes = 8u << 20);

    /** Movable (drops any in-flight call); not copyable. */
    Client(Client &&o) noexcept;
    Client &operator=(Client &&o) noexcept;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    const RpcEndpoint &endpoint() const { return ep_; }

    /**
     * Send @p req, await the response line, parse it into @p out —
     * all before @p dl. False + @p err on any transport failure,
     * parse failure, or deadline expiry (the connection is dropped so
     * the next call reconnects). A server error report ({"ok":false})
     * is a *successful* call: true is returned and out.ok is false.
     */
    bool call(const RpcRequest &req, RpcResponse &out,
              std::string *err = nullptr,
              Deadline dl = Deadline::never());

    /**
     * call() under @p policy: per-attempt deadline from deadline_ms,
     * transport failures and "overloaded" refusals retried
     * max_retries times with doubling jittered backoff. Other
     * refusals return immediately (true, out.ok false) — the caller
     * decides how loud to be. @p retries_out, when non-null, is
     * incremented per retry taken.
     */
    bool callRetrying(const RpcRequest &req, const FleetOptions &policy,
                      RpcResponse &out, std::string *err = nullptr,
                      std::size_t *retries_out = nullptr);

    /** waitResponse outcome. */
    enum class CallWait {
        Ready,    //!< Response parsed; the call is complete.
        Timeout,  //!< Deadline expired; call still in flight.
        Transport //!< Connection lost or unparseable response; call
                  //!< aborted and connection dropped.
    };

    /**
     * Begin a call: connect (lazily) and send @p req, all before
     * @p dl. False + @p err on failure (connection dropped). On true,
     * the call is in flight: follow with waitResponse() until it
     * stops returning Timeout, or abandon().
     */
    bool startCall(const RpcRequest &req, std::string *err = nullptr,
                   Deadline dl = Deadline::never());

    /**
     * Await the in-flight call's response until @p dl. Ready parses
     * into @p out (like call(), a server error report is Ready with
     * out.ok false). Timeout leaves the call in flight — partial
     * bytes stay buffered; poll again with a later deadline.
     */
    CallWait waitResponse(RpcResponse &out, std::string *err = nullptr,
                          Deadline dl = Deadline::never());

    /** Drop an in-flight call (hedging loser). Disconnects: a
     *  response may already be in the socket, so the stream cannot be
     *  reused. The next call() reconnects. */
    void abandon();

    /** Close the connection (next call reconnects). */
    void disconnect();

  private:
    RpcEndpoint ep_;
    std::size_t max_response_bytes_;
    TcpSocket sock_;

    /** Live only while a call is in flight (start → Ready/Transport/
     *  abandon); owns the response framing state across Timeout
     *  slices. References sock_, hence the explicit move ops. */
    std::unique_ptr<LineReader> reader_;

    Rng rng_{0x9e3779b97f4a7c15ull}; //!< callRetrying backoff jitter.
};

/** Health snapshot of one fleet node (RouteStats::nodes). */
struct RouteNodeState
{
    RpcEndpoint endpoint;
    bool down = false;
    /** When down: ms until the half-open re-probe (0 = due now). */
    long retry_in_ms = 0;
};

/** What one ShardRouter::optimize call did, per provenance class. */
struct RouteStats
{
    std::size_t unique_shapes = 0;
    std::size_t remote_hits = 0;   //!< Server answered from its cache.
    std::size_t remote_misses = 0; //!< Server solved on demand.
    std::size_t fallbacks = 0;     //!< Node down; solved locally.
    double solve_seconds = 0;      //!< Remote + local solve time.

    std::size_t retries = 0;    //!< Re-attempts (transport/overload).
    std::size_t hedges = 0;     //!< Duplicate requests fired.
    std::size_t hedge_wins = 0; //!< Hedges that answered first.

    /** Per-node health after the call (node index = fleet order). */
    std::vector<RouteNodeState> nodes;

    /** remote_hits / unique_shapes (1 when there was nothing to do). */
    double hitRate() const;
};

/**
 * Routes whole-network solves across a fleet. Not thread-safe; one
 * router per thread. Node health (mark-down + re-probe timing)
 * persists across optimize() calls — see FleetOptions.
 */
class ShardRouter
{
  public:
    /**
     * @param endpoints  the fleet, in fleet-wide agreed order (routing
     *                   is positional: hash % n picks an index)
     * @param machine    machine description (must match the fleet's)
     * @param opts       search settings (must match the fleet's)
     * @param fleet      failure policy (defaults: one attempt, no
     *                   deadline, no hedging — the historical
     *                   behavior)
     */
    ShardRouter(std::vector<RpcEndpoint> endpoints,
                const MachineSpec &machine,
                const OptimizerOptions &opts, FleetOptions fleet = {});

    /** Node index that owns @p key: hash % n_nodes. */
    std::size_t nodeOf(const CacheKey &key) const;

    /**
     * Optimize every layer of @p net, one RPC per unique shape to the
     * owning node, local solve on node failure. The returned plan is
     * byte-identical to NetworkOptimizer::optimize on a local cache
     * (same dedupe, same deterministic solves). @p stats_out, when
     * non-null, receives the provenance breakdown.
     */
    NetworkPlan optimize(const std::vector<ConvProblem> &net,
                         RouteStats *stats_out = nullptr);

    std::size_t nodeCount() const { return clients_.size(); }

    /** Current per-node health (also on RouteStats::nodes). */
    std::vector<RouteNodeState> nodeStates() const;

  private:
    /** How one remote attempt ended. */
    enum class Attempt {
        Done,       //!< Result obtained (or a fatal refusal threw).
        Overloaded, //!< Server shed the request; back off and retry.
        Transport   //!< Connect/transport failure or deadline expiry.
    };

    /** Solve one canonical shape, remote first, local on failure. */
    RpcSolveResult solveOne(const CacheKey &key, RouteStats &stats);

    /** One deadline-bounded attempt against @p primary, hedged onto
     *  the next healthy node after hedge_ms. Fills @p out on Done. */
    Attempt attemptHedged(std::size_t primary, const RpcRequest &req,
                          RouteStats &stats, RpcSolveResult &out);

    /** Finish a completed exchange: count provenance, fill @p out.
     *  Throws (checkUser) on a non-retryable refusal. */
    Attempt finishResponse(std::size_t node, const RpcResponse &resp,
                           RouteStats &stats, RpcSolveResult &out);

    bool nodeUp(std::size_t node) const;
    void markDown(std::size_t node);

    /** Next healthy node after @p primary in ring order, or
     *  n (= none). */
    std::size_t nextUpNode(std::size_t primary) const;

    std::vector<Client> clients_;

    /** Persistent node standing: first failure quarantines for
     *  markdown_ms, then one call re-probes (half-open). */
    PeerTable peers_;

    FleetOptions fleet_;
    MachineSpec machine_;
    OptimizerOptions opts_;
    std::uint64_t machine_fp_;
    std::uint64_t settings_fp_;
    Rng rng_; //!< Backoff jitter (seeded, deterministic).
};

} // namespace mopt

#endif // MOPT_RPC_CLIENT_HH
