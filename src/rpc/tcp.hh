/**
 * @file
 * Thin blocking-socket wrappers for the RPC layer: an RAII connected
 * socket (TcpSocket), a listener that can be unblocked from another
 * thread (TcpListener), and a buffered newline framer (LineReader).
 *
 * Deliberately minimal — IPv4/IPv6 via getaddrinfo, blocking I/O, no
 * TLS — because the protocol above it is a trusted-fleet line
 * protocol, not an internet-facing endpoint. All sends use
 * MSG_NOSIGNAL so a peer that vanished mid-response surfaces as an
 * error return instead of SIGPIPE.
 *
 * Every potentially-blocking operation (connect, send, recv, and
 * therefore readLine) takes a Deadline (common/deadline.hh): a
 * monotonic-clock point in time that poll() bounds the wait against.
 * Deadline::never() reproduces the historical fully-blocking
 * behavior, so a peer that stalls, blackholes, or half-opens can
 * never hang a caller that set one — the call returns a
 * distinguishable timeout instead. The failure model built on top
 * (client retries/hedging, server admission control, src/rpc/client.hh
 * and server.hh) assumes exactly this property.
 *
 * Unblocking a blocked accept() portably is the one subtle part:
 * TcpListener owns a self-pipe and accept() poll()s {listen fd, pipe};
 * close() writes the pipe, so a server can be stopped from any thread
 * without races on the fd number.
 */

#ifndef MOPT_RPC_TCP_HH
#define MOPT_RPC_TCP_HH

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>

#include "common/deadline.hh"

namespace mopt {

/** RAII wrapper of one connected (or accepted) stream socket. */
class TcpSocket
{
  public:
    /** recvSome return value when the deadline expired first. */
    static constexpr long kTimedOut = -2;

    TcpSocket() = default;

    /** Take ownership of @p fd (-1 = invalid). */
    explicit TcpSocket(int fd) : fd_(fd) {}

    ~TcpSocket() { close(); }

    TcpSocket(TcpSocket &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    TcpSocket &operator=(TcpSocket &&o) noexcept;
    TcpSocket(const TcpSocket &) = delete;
    TcpSocket &operator=(const TcpSocket &) = delete;

    /**
     * Connect to @p host : @p port, giving up at @p dl (a half-open
     * listener or a blackholed SYN then surfaces as an error instead
     * of hanging for the kernel's minutes-long default). Returns an
     * invalid socket and fills @p err (when non-null) on failure.
     */
    static TcpSocket connectTo(const std::string &host, int port,
                               std::string *err = nullptr,
                               Deadline dl = Deadline::never());

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Send all of @p data before @p dl; false on any error or on
     *  deadline expiry (a stalled peer with a full receive window
     *  cannot wedge the caller). */
    bool sendAll(const std::string &data,
                 Deadline dl = Deadline::never());

    /**
     * Receive up to @p len bytes. Returns the byte count, 0 on orderly
     * peer shutdown, -1 on error, kTimedOut (-2) when @p dl expired
     * with no data. Retries EINTR internally.
     */
    long recvSome(char *buf, std::size_t len,
                  Deadline dl = Deadline::never());

    /** Peer address ("ip:port", or "?" when unavailable) — the
     *  identity the server's per-client admission control keys on. */
    std::string peerAddress() const;

    /** Toggle O_NONBLOCK. The readiness-driven server core runs every
     *  connection non-blocking; the client side stays blocking and
     *  bounds waits with poll() instead. */
    bool setNonBlocking(bool on);

    /** Half-close both directions (wakes a blocked peer recv). */
    void shutdownBoth();

    /** Half-close the read side only: the peer's sends see EOF while
     *  our pending response can still be written (graceful drain). */
    void shutdownRead();

    void close();

  private:
    int fd_ = -1;
};

/** Listening socket; accept() is unblockable via close(). */
class TcpListener
{
  public:
    TcpListener() = default;

    /** Requires that no accept() is in flight (join the accept
     *  thread first). */
    ~TcpListener()
    {
        close();
        closeFds();
    }
    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Bind and listen on @p host : @p port (port 0 = ephemeral; the
     * chosen port is readable via port()). False + @p err on failure.
     */
    bool listenOn(const std::string &host, int port,
                  std::string *err = nullptr);

    /** The bound port (after listenOn), or -1. */
    int port() const { return port_; }

    bool listening() const { return fd_ >= 0; }

    /** The listening descriptor (for epoll registration), or -1. */
    int fd() const { return fd_; }

    /** Toggle O_NONBLOCK on the listening descriptor (tryAccept
     *  callers want accept(2) to return EAGAIN, never block). */
    bool setNonBlocking(bool on);

    /**
     * Block until a connection arrives (returns it) or close() is
     * called from another thread (returns an invalid socket).
     *
     * At most one thread may be in accept() at a time, and after
     * close() has been observed (accept returned invalid) the caller
     * must not call accept() again — the observing call closes the
     * descriptors.
     */
    TcpSocket accept();

    /**
     * Non-blocking accept for readiness-driven callers: returns the
     * connection, or an invalid socket with @p would_block set when no
     * connection is pending (EAGAIN). The listener must have been put
     * in non-blocking mode via setNonBlocking(true) first; an invalid
     * socket with @p would_block false is a real accept error.
     */
    TcpSocket tryAccept(bool *would_block);

    /**
     * Stop listening and wake any blocked accept(). Idempotent and
     * callable from any thread. Only *signals*: the descriptors are
     * closed by the accept() call that observes the wakeup (so a
     * racing accept never polls a recycled fd number), or by the
     * destructor when no accept() is in flight.
     */
    void close();

    /** Close the descriptors immediately. Caller must guarantee no
     *  accept() is in flight (the epoll loop, which is the only
     *  thread touching the listener, qualifies). Releases the bound
     *  port right away instead of at destruction. */
    void retire()
    {
        close();
        closeFds();
    }

  private:
    /** Actually close the descriptors (observing thread only). */
    void closeFds();

    int fd_ = -1;
    int wake_rd_ = -1; //!< Self-pipe read end, poll()ed by accept.
    int wake_wr_ = -1; //!< Self-pipe write end, written by close.
    int port_ = -1;
    std::atomic<bool> closing_{false};

    /** Serializes close()'s pipe write against closeFds(), so the
     *  signal never lands on a closed-and-recycled descriptor. */
    std::mutex close_mu_;
};

/**
 * Buffered newline framing over a TcpSocket: accumulates bytes across
 * arbitrarily fragmented recvs and yields one line (without the
 * terminator) per readLine call. A line longer than @p max_line is a
 * protocol violation: readLine returns TooLong and the stream must be
 * dropped (resynchronizing on a hostile peer is not worth the code).
 *
 * readLine takes a Deadline; Timeout means the deadline expired with
 * the line still incomplete — the partial bytes stay buffered, so a
 * caller polling in slices (the hedging client) can keep calling with
 * later deadlines and lose nothing.
 */
class LineReader
{
  public:
    enum class Status { Ok, Eof, TooLong, Error, Timeout };

    LineReader(TcpSocket &sock, std::size_t max_line)
        : sock_(sock), max_line_(max_line)
    {}

    Status readLine(std::string &out, Deadline dl = Deadline::never());

    /** Append bytes received elsewhere (the readiness loop recvs
     *  non-blocking and feeds the framer; readLine recvs itself). */
    void feed(const char *data, std::size_t n) { buf_.append(data, n); }

    /**
     * Extract the next complete line from the buffer without touching
     * the socket. Ok = a line was produced; Timeout = no complete
     * line buffered yet (feed more bytes and retry — nothing is
     * lost); TooLong = the '\n'-free prefix exceeds max_line and the
     * stream must be dropped.
     */
    Status pollLine(std::string &out);

    /** Drop buffered bytes (after a reconnect: stale bytes from the
     *  previous connection must not frame into the new stream). */
    void reset()
    {
        buf_.clear();
        scanned_ = 0;
    }

  private:
    TcpSocket &sock_;
    std::size_t max_line_;
    std::string buf_;
    std::size_t scanned_ = 0; //!< buf_ prefix known to be '\n'-free.
};

} // namespace mopt

#endif // MOPT_RPC_TCP_HH
