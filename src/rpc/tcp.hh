/**
 * @file
 * Thin blocking-socket wrappers for the RPC layer: an RAII connected
 * socket (TcpSocket), a listener that can be unblocked from another
 * thread (TcpListener), and a buffered newline framer (LineReader).
 *
 * Deliberately minimal — IPv4/IPv6 via getaddrinfo, blocking I/O, no
 * TLS, no timeouts — because the protocol above it is a trusted-fleet
 * line protocol, not an internet-facing endpoint. All sends use
 * MSG_NOSIGNAL so a peer that vanished mid-response surfaces as an
 * error return instead of SIGPIPE.
 *
 * Unblocking a blocked accept() portably is the one subtle part:
 * TcpListener owns a self-pipe and accept() poll()s {listen fd, pipe};
 * close() writes the pipe, so a server can be stopped from any thread
 * without races on the fd number.
 */

#ifndef MOPT_RPC_TCP_HH
#define MOPT_RPC_TCP_HH

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>

namespace mopt {

/** RAII wrapper of one connected (or accepted) stream socket. */
class TcpSocket
{
  public:
    TcpSocket() = default;

    /** Take ownership of @p fd (-1 = invalid). */
    explicit TcpSocket(int fd) : fd_(fd) {}

    ~TcpSocket() { close(); }

    TcpSocket(TcpSocket &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    TcpSocket &operator=(TcpSocket &&o) noexcept;
    TcpSocket(const TcpSocket &) = delete;
    TcpSocket &operator=(const TcpSocket &) = delete;

    /**
     * Blocking connect to @p host : @p port. Returns an invalid socket
     * and fills @p err (when non-null) on failure.
     */
    static TcpSocket connectTo(const std::string &host, int port,
                               std::string *err = nullptr);

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Send all of @p data; false on any error (peer gone, ...). */
    bool sendAll(const std::string &data);

    /**
     * Receive up to @p len bytes. Returns the byte count, 0 on orderly
     * peer shutdown, -1 on error. Retries EINTR internally.
     */
    long recvSome(char *buf, std::size_t len);

    /** Half-close both directions (wakes a blocked peer recv). */
    void shutdownBoth();

    void close();

  private:
    int fd_ = -1;
};

/** Listening socket; accept() is unblockable via close(). */
class TcpListener
{
  public:
    TcpListener() = default;

    /** Requires that no accept() is in flight (join the accept
     *  thread first). */
    ~TcpListener()
    {
        close();
        closeFds();
    }
    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Bind and listen on @p host : @p port (port 0 = ephemeral; the
     * chosen port is readable via port()). False + @p err on failure.
     */
    bool listenOn(const std::string &host, int port,
                  std::string *err = nullptr);

    /** The bound port (after listenOn), or -1. */
    int port() const { return port_; }

    bool listening() const { return fd_ >= 0; }

    /**
     * Block until a connection arrives (returns it) or close() is
     * called from another thread (returns an invalid socket).
     *
     * At most one thread may be in accept() at a time, and after
     * close() has been observed (accept returned invalid) the caller
     * must not call accept() again — the observing call closes the
     * descriptors.
     */
    TcpSocket accept();

    /**
     * Stop listening and wake any blocked accept(). Idempotent and
     * callable from any thread. Only *signals*: the descriptors are
     * closed by the accept() call that observes the wakeup (so a
     * racing accept never polls a recycled fd number), or by the
     * destructor when no accept() is in flight.
     */
    void close();

  private:
    /** Actually close the descriptors (observing thread only). */
    void closeFds();

    int fd_ = -1;
    int wake_rd_ = -1; //!< Self-pipe read end, poll()ed by accept.
    int wake_wr_ = -1; //!< Self-pipe write end, written by close.
    int port_ = -1;
    std::atomic<bool> closing_{false};

    /** Serializes close()'s pipe write against closeFds(), so the
     *  signal never lands on a closed-and-recycled descriptor. */
    std::mutex close_mu_;
};

/**
 * Buffered newline framing over a TcpSocket: accumulates bytes across
 * arbitrarily fragmented recvs and yields one line (without the
 * terminator) per readLine call. A line longer than @p max_line is a
 * protocol violation: readLine returns TooLong and the stream must be
 * dropped (resynchronizing on a hostile peer is not worth the code).
 */
class LineReader
{
  public:
    enum class Status { Ok, Eof, TooLong, Error };

    LineReader(TcpSocket &sock, std::size_t max_line)
        : sock_(sock), max_line_(max_line)
    {}

    Status readLine(std::string &out);

  private:
    TcpSocket &sock_;
    std::size_t max_line_;
    std::string buf_;
    std::size_t scanned_ = 0; //!< buf_ prefix known to be '\n'-free.
};

} // namespace mopt

#endif // MOPT_RPC_TCP_HH
