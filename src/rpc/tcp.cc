#include "rpc/tcp.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace mopt {

namespace {

std::string
errnoString()
{
    return std::strerror(errno);
}

void
setError(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
}

/** getaddrinfo for a numeric-or-named host; nullptr on failure. */
addrinfo *
resolve(const std::string &host, int port, bool passive,
        std::string *err)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = passive ? AI_PASSIVE : 0;
    addrinfo *res = nullptr;
    const std::string port_str = std::to_string(port);
    const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                 port_str.c_str(), &hints, &res);
    if (rc != 0) {
        setError(err, "resolve " + host + ": " + gai_strerror(rc));
        return nullptr;
    }
    return res;
}

bool
fdSetNonBlocking(int fd, bool on)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    return flags == want || ::fcntl(fd, F_SETFL, want) == 0;
}

/**
 * Wait for @p events on @p fd until @p dl. Returns >0 when ready, 0 on
 * deadline expiry, <0 on poll error. EINTR just re-polls: the deadline
 * is absolute, so a signal storm cannot extend the wait.
 */
int
pollFd(int fd, short events, const Deadline &dl)
{
    for (;;) {
        pollfd pfd;
        pfd.fd = fd;
        pfd.events = events;
        pfd.revents = 0;
        const int rc = ::poll(&pfd, 1, dl.pollTimeout());
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (rc == 0)
            return 0;
        return 1;
    }
}

/**
 * Finish a non-blocking connect on @p fd before @p dl: wait for
 * writability, then read SO_ERROR for the real outcome. True on a
 * fully established connection.
 */
bool
awaitConnect(int fd, const Deadline &dl, std::string *last_err)
{
    const int rc = pollFd(fd, POLLOUT, dl);
    if (rc < 0) {
        *last_err = "connect poll: " + errnoString();
        return false;
    }
    if (rc == 0) {
        *last_err = "connect: timed out";
        return false;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
        *last_err = "getsockopt: " + errnoString();
        return false;
    }
    if (so_error != 0) {
        *last_err =
            std::string("connect: ") + std::strerror(so_error);
        return false;
    }
    return true;
}

std::string
addrToString(const sockaddr_storage &sa)
{
    char host[INET6_ADDRSTRLEN] = {0};
    int port = 0;
    if (sa.ss_family == AF_INET) {
        const auto *in = reinterpret_cast<const sockaddr_in *>(&sa);
        ::inet_ntop(AF_INET, &in->sin_addr, host, sizeof(host));
        port = ntohs(in->sin_port);
    } else if (sa.ss_family == AF_INET6) {
        const auto *in6 = reinterpret_cast<const sockaddr_in6 *>(&sa);
        ::inet_ntop(AF_INET6, &in6->sin6_addr, host, sizeof(host));
        port = ntohs(in6->sin6_port);
    } else {
        return "?";
    }
    return std::string(host) + ":" + std::to_string(port);
}

} // namespace

TcpSocket &
TcpSocket::operator=(TcpSocket &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = o.fd_;
        o.fd_ = -1;
    }
    return *this;
}

TcpSocket
TcpSocket::connectTo(const std::string &host, int port, std::string *err,
                     Deadline dl)
{
    addrinfo *res = resolve(host, port, /*passive=*/false, err);
    if (!res)
        return TcpSocket();
    int fd = -1;
    std::string last_err = "no addresses";
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_err = "socket: " + errnoString();
            continue;
        }
        // Non-blocking connect + poll so the handshake honors the
        // deadline (a blackholed SYN otherwise blocks for the
        // kernel's multi-minute default). The socket itself stays
        // blocking afterward; I/O deadlines come from poll() in
        // sendAll/recvSome, not O_NONBLOCK.
        if (!fdSetNonBlocking(fd, true)) {
            last_err = "fcntl: " + errnoString();
            ::close(fd);
            fd = -1;
            continue;
        }
        const int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
        bool ok = rc == 0;
        if (!ok && errno == EINPROGRESS)
            ok = awaitConnect(fd, dl, &last_err);
        else if (!ok)
            last_err = "connect: " + errnoString();
        if (ok && !fdSetNonBlocking(fd, false)) {
            last_err = "fcntl: " + errnoString();
            ok = false;
        }
        if (ok)
            break;
        ::close(fd);
        fd = -1;
        if (dl.expired())
            break; // Don't burn the caller's budget on more addresses.
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        setError(err, host + ":" + std::to_string(port) + ": " + last_err);
        return TcpSocket();
    }
    // The protocol is request/response on small lines; latency beats
    // batching.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpSocket(fd);
}

bool
TcpSocket::sendAll(const std::string &data, Deadline dl)
{
    if (fd_ < 0)
        return false;
    std::size_t off = 0;
    while (off < data.size()) {
        if (!dl.infinite()) {
            const int rc = pollFd(fd_, POLLOUT, dl);
            if (rc <= 0)
                return false; // Timeout or poll error: give up.
        }
        const ssize_t n = ::send(fd_, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

long
TcpSocket::recvSome(char *buf, std::size_t len, Deadline dl)
{
    if (fd_ < 0)
        return -1;
    if (!dl.infinite()) {
        const int rc = pollFd(fd_, POLLIN, dl);
        if (rc < 0)
            return -1;
        if (rc == 0)
            return kTimedOut;
    }
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, len, 0);
        if (n < 0 && errno == EINTR)
            continue;
        return static_cast<long>(n);
    }
}

std::string
TcpSocket::peerAddress() const
{
    if (fd_ < 0)
        return "?";
    sockaddr_storage sa{};
    socklen_t sa_len = sizeof(sa);
    if (::getpeername(fd_, reinterpret_cast<sockaddr *>(&sa), &sa_len) !=
        0)
        return "?";
    return addrToString(sa);
}

bool
TcpSocket::setNonBlocking(bool on)
{
    return fd_ >= 0 && fdSetNonBlocking(fd_, on);
}

void
TcpSocket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
TcpSocket::shutdownRead()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RD);
}

void
TcpSocket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
TcpListener::listenOn(const std::string &host, int port, std::string *err)
{
    // Re-binding an already-listening instance is only supported when
    // no accept() is in flight (same contract as the destructor).
    closeFds();
    closing_.store(false, std::memory_order_release);
    addrinfo *res = resolve(host, port, /*passive=*/true, err);
    if (!res)
        return false;
    std::string last_err = "no addresses";
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        const int fd =
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_err = "socket: " + errnoString();
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
            ::listen(fd, 64) != 0) {
            last_err = "bind/listen: " + errnoString();
            ::close(fd);
            continue;
        }
        fd_ = fd;
        break;
    }
    ::freeaddrinfo(res);
    if (fd_ < 0) {
        setError(err, host + ":" + std::to_string(port) + ": " + last_err);
        return false;
    }

    // Learn the kernel-assigned port (meaningful when port was 0).
    sockaddr_storage sa{};
    socklen_t sa_len = sizeof(sa);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&sa), &sa_len) ==
        0) {
        if (sa.ss_family == AF_INET)
            port_ = ntohs(reinterpret_cast<sockaddr_in *>(&sa)->sin_port);
        else if (sa.ss_family == AF_INET6)
            port_ =
                ntohs(reinterpret_cast<sockaddr_in6 *>(&sa)->sin6_port);
    }

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        setError(err, "pipe: " + errnoString());
        close();
        return false;
    }
    wake_rd_ = pipe_fds[0];
    wake_wr_ = pipe_fds[1];
    return true;
}

TcpSocket
TcpListener::accept()
{
    for (;;) {
        if (closing_.load(std::memory_order_acquire)) {
            // This thread observes the shutdown and is therefore the
            // one that retires the descriptors (close() never touches
            // them, so poll() below can never see a recycled number).
            closeFds();
            return TcpSocket();
        }
        if (fd_ < 0)
            return TcpSocket();
        pollfd fds[2];
        fds[0].fd = fd_;
        fds[0].events = POLLIN;
        fds[1].fd = wake_rd_;
        fds[1].events = POLLIN;
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            closeFds();
            return TcpSocket();
        }
        if (fds[1].revents) { // close() wrote the self-pipe.
            closeFds();
            return TcpSocket();
        }
        if (!(fds[0].revents & POLLIN))
            continue;
        const int conn = ::accept(fd_, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            closeFds();
            return TcpSocket();
        }
        const int one = 1;
        ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return TcpSocket(conn);
    }
}

bool
TcpListener::setNonBlocking(bool on)
{
    return fd_ >= 0 && fdSetNonBlocking(fd_, on);
}

TcpSocket
TcpListener::tryAccept(bool *would_block)
{
    *would_block = false;
    for (;;) {
        if (fd_ < 0 || closing_.load(std::memory_order_acquire))
            return TcpSocket();
        const int conn = ::accept(fd_, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                *would_block = true;
            return TcpSocket();
        }
        const int one = 1;
        ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return TcpSocket(conn);
    }
}

void
TcpListener::close()
{
    if (closing_.exchange(true, std::memory_order_acq_rel))
        return;
    std::lock_guard<std::mutex> lock(close_mu_);
    if (wake_wr_ >= 0) {
        const char b = 'x';
        [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &b, 1);
    }
}

void
TcpListener::closeFds()
{
    std::lock_guard<std::mutex> lock(close_mu_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (wake_rd_ >= 0) {
        ::close(wake_rd_);
        wake_rd_ = -1;
    }
    if (wake_wr_ >= 0) {
        ::close(wake_wr_);
        wake_wr_ = -1;
    }
    port_ = -1;
}

LineReader::Status
LineReader::pollLine(std::string &out)
{
    const std::size_t nl = buf_.find('\n', scanned_);
    if (nl != std::string::npos) {
        out.assign(buf_, 0, nl);
        if (!out.empty() && out.back() == '\r')
            out.pop_back();
        buf_.erase(0, nl + 1);
        scanned_ = 0;
        return Status::Ok;
    }
    scanned_ = buf_.size();
    if (buf_.size() > max_line_)
        return Status::TooLong;
    return Status::Timeout; // No complete line buffered yet.
}

LineReader::Status
LineReader::readLine(std::string &out, Deadline dl)
{
    for (;;) {
        const Status st = pollLine(out);
        if (st != Status::Timeout)
            return st;

        char chunk[4096];
        const long n = sock_.recvSome(chunk, sizeof(chunk), dl);
        if (n == 0)
            return Status::Eof;
        if (n == TcpSocket::kTimedOut)
            return Status::Timeout;
        if (n < 0)
            return Status::Error;
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace mopt
