#include "rpc/tcp.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace mopt {

namespace {

std::string
errnoString()
{
    return std::strerror(errno);
}

void
setError(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
}

/** getaddrinfo for a numeric-or-named host; nullptr on failure. */
addrinfo *
resolve(const std::string &host, int port, bool passive,
        std::string *err)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = passive ? AI_PASSIVE : 0;
    addrinfo *res = nullptr;
    const std::string port_str = std::to_string(port);
    const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                 port_str.c_str(), &hints, &res);
    if (rc != 0) {
        setError(err, "resolve " + host + ": " + gai_strerror(rc));
        return nullptr;
    }
    return res;
}

} // namespace

TcpSocket &
TcpSocket::operator=(TcpSocket &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = o.fd_;
        o.fd_ = -1;
    }
    return *this;
}

TcpSocket
TcpSocket::connectTo(const std::string &host, int port, std::string *err)
{
    addrinfo *res = resolve(host, port, /*passive=*/false, err);
    if (!res)
        return TcpSocket();
    int fd = -1;
    std::string last_err = "no addresses";
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_err = "socket: " + errnoString();
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        last_err = "connect: " + errnoString();
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        setError(err, host + ":" + std::to_string(port) + ": " + last_err);
        return TcpSocket();
    }
    // The protocol is request/response on small lines; latency beats
    // batching.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpSocket(fd);
}

bool
TcpSocket::sendAll(const std::string &data)
{
    if (fd_ < 0)
        return false;
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

long
TcpSocket::recvSome(char *buf, std::size_t len)
{
    if (fd_ < 0)
        return -1;
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, len, 0);
        if (n < 0 && errno == EINTR)
            continue;
        return static_cast<long>(n);
    }
}

void
TcpSocket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
TcpSocket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
TcpListener::listenOn(const std::string &host, int port, std::string *err)
{
    // Re-binding an already-listening instance is only supported when
    // no accept() is in flight (same contract as the destructor).
    closeFds();
    closing_.store(false, std::memory_order_release);
    addrinfo *res = resolve(host, port, /*passive=*/true, err);
    if (!res)
        return false;
    std::string last_err = "no addresses";
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        const int fd =
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_err = "socket: " + errnoString();
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
            ::listen(fd, 64) != 0) {
            last_err = "bind/listen: " + errnoString();
            ::close(fd);
            continue;
        }
        fd_ = fd;
        break;
    }
    ::freeaddrinfo(res);
    if (fd_ < 0) {
        setError(err, host + ":" + std::to_string(port) + ": " + last_err);
        return false;
    }

    // Learn the kernel-assigned port (meaningful when port was 0).
    sockaddr_storage sa{};
    socklen_t sa_len = sizeof(sa);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&sa), &sa_len) ==
        0) {
        if (sa.ss_family == AF_INET)
            port_ = ntohs(reinterpret_cast<sockaddr_in *>(&sa)->sin_port);
        else if (sa.ss_family == AF_INET6)
            port_ =
                ntohs(reinterpret_cast<sockaddr_in6 *>(&sa)->sin6_port);
    }

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        setError(err, "pipe: " + errnoString());
        close();
        return false;
    }
    wake_rd_ = pipe_fds[0];
    wake_wr_ = pipe_fds[1];
    return true;
}

TcpSocket
TcpListener::accept()
{
    for (;;) {
        if (closing_.load(std::memory_order_acquire)) {
            // This thread observes the shutdown and is therefore the
            // one that retires the descriptors (close() never touches
            // them, so poll() below can never see a recycled number).
            closeFds();
            return TcpSocket();
        }
        if (fd_ < 0)
            return TcpSocket();
        pollfd fds[2];
        fds[0].fd = fd_;
        fds[0].events = POLLIN;
        fds[1].fd = wake_rd_;
        fds[1].events = POLLIN;
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            closeFds();
            return TcpSocket();
        }
        if (fds[1].revents) { // close() wrote the self-pipe.
            closeFds();
            return TcpSocket();
        }
        if (!(fds[0].revents & POLLIN))
            continue;
        const int conn = ::accept(fd_, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            closeFds();
            return TcpSocket();
        }
        const int one = 1;
        ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return TcpSocket(conn);
    }
}

void
TcpListener::close()
{
    if (closing_.exchange(true, std::memory_order_acq_rel))
        return;
    std::lock_guard<std::mutex> lock(close_mu_);
    if (wake_wr_ >= 0) {
        const char b = 'x';
        [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &b, 1);
    }
}

void
TcpListener::closeFds()
{
    std::lock_guard<std::mutex> lock(close_mu_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (wake_rd_ >= 0) {
        ::close(wake_rd_);
        wake_rd_ = -1;
    }
    if (wake_wr_ >= 0) {
        ::close(wake_wr_);
        wake_wr_ = -1;
    }
    port_ = -1;
}

LineReader::Status
LineReader::readLine(std::string &out)
{
    for (;;) {
        const std::size_t nl = buf_.find('\n', scanned_);
        if (nl != std::string::npos) {
            out.assign(buf_, 0, nl);
            if (!out.empty() && out.back() == '\r')
                out.pop_back();
            buf_.erase(0, nl + 1);
            scanned_ = 0;
            return Status::Ok;
        }
        scanned_ = buf_.size();
        if (buf_.size() > max_line_)
            return Status::TooLong;

        char chunk[4096];
        const long n = sock_.recvSome(chunk, sizeof(chunk));
        if (n == 0)
            return Status::Eof;
        if (n < 0)
            return Status::Error;
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace mopt
