#include "rpc/client.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/logging.hh"
#include "common/string_util.hh"
#include "common/timer.hh"
#include "model/multi_level.hh"
#include "service/cache_key.hh"

namespace mopt {

std::vector<RpcEndpoint>
parseEndpointList(const std::string &csv)
{
    std::vector<RpcEndpoint> out;
    for (const std::string &part : split(csv, ',')) {
        const std::string tok = trim(part);
        checkUser(!tok.empty(),
                  "--connect: empty endpoint in \"" + csv + "\"");
        const auto colon = tok.rfind(':');
        checkUser(colon != std::string::npos && colon > 0,
                  "--connect: expected host:port, got \"" + tok + "\"");
        const std::string host = tok.substr(0, colon);
        const std::string port_str = tok.substr(colon + 1);
        checkUser(!port_str.empty() &&
                      port_str.find_first_not_of("0123456789") ==
                          std::string::npos,
                  "--connect: bad port in \"" + tok + "\"");
        const long port = std::strtol(port_str.c_str(), nullptr, 10);
        checkUser(port >= 1 && port <= 65535,
                  "--connect: port out of range in \"" + tok + "\"");
        out.push_back(RpcEndpoint{host, static_cast<int>(port)});
    }
    checkUser(!out.empty(), "--connect: no endpoints given");
    return out;
}

Client::Client(RpcEndpoint ep, std::size_t max_response_bytes)
    : ep_(std::move(ep)), max_response_bytes_(max_response_bytes)
{}

bool
Client::call(const RpcRequest &req, RpcResponse &out, std::string *err)
{
    if (!sock_.valid()) {
        sock_ = TcpSocket::connectTo(ep_.host, ep_.port, err);
        if (!sock_.valid())
            return false;
    }
    if (!sock_.sendAll(requestToJsonLine(req) + "\n")) {
        if (err)
            *err = ep_.str() + ": send failed";
        disconnect();
        return false;
    }
    // One response line per request; a fresh reader per call is fine
    // because the server never sends unsolicited bytes.
    LineReader reader(sock_, max_response_bytes_);
    std::string line;
    const LineReader::Status st = reader.readLine(line);
    if (st != LineReader::Status::Ok) {
        if (err)
            *err = ep_.str() + ": connection lost awaiting response";
        disconnect();
        return false;
    }
    std::string perr;
    if (!responseFromJsonLine(line, out, &perr)) {
        if (err)
            *err = ep_.str() + ": bad response: " + perr;
        disconnect();
        return false;
    }
    return true;
}

void
Client::disconnect()
{
    sock_.close();
}

double
RouteStats::hitRate() const
{
    if (unique_shapes == 0)
        return 1.0;
    return static_cast<double>(remote_hits) /
           static_cast<double>(unique_shapes);
}

ShardRouter::ShardRouter(std::vector<RpcEndpoint> endpoints,
                         const MachineSpec &machine,
                         const OptimizerOptions &opts)
    : machine_(machine), opts_(opts),
      machine_fp_(CacheKey::machineFingerprint(machine)),
      settings_fp_(CacheKey::settingsFingerprint(opts))
{
    checkUser(!endpoints.empty(), "ShardRouter: no endpoints");
    machine_.validate();
    clients_.reserve(endpoints.size());
    for (RpcEndpoint &ep : endpoints)
        clients_.emplace_back(std::move(ep));
    node_down_.assign(clients_.size(), false);
}

std::size_t
ShardRouter::nodeOf(const CacheKey &key) const
{
    return static_cast<std::size_t>(key.hash() % clients_.size());
}

RpcSolveResult
ShardRouter::solveOne(const CacheKey &key, RouteStats &stats)
{
    const std::size_t node = nodeOf(key);
    if (!node_down_[node]) {
        RpcRequest req;
        req.op = RpcOp::Solve;
        req.problem = key.problem;
        req.machine_fp = machine_fp_;
        req.settings_fp = settings_fp_;
        RpcResponse resp;
        std::string err;
        if (clients_[node].call(req, resp, &err)) {
            // A *refusal* is a fleet misconfiguration (wrong machine,
            // wrong settings, bad shape); silently solving locally
            // would mask it on every future query. Fail loudly.
            checkUser(resp.ok, "moptd node " +
                                   clients_[node].endpoint().str() +
                                   " refused solve: " + resp.error);
            (resp.solve.cache_hit ? stats.remote_hits
                                  : stats.remote_misses)++;
            stats.solve_seconds += resp.solve_seconds;
            return resp.solve;
        }
        logWarn("moptd node ", clients_[node].endpoint().str(),
                " unreachable (", err, "); falling back to local solve");
        node_down_[node] = true;
    }
    // Local fallback: the same deterministic pipeline the server
    // runs, so the plan is byte-identical, just paid for locally.
    Timer t;
    const OptimizeOutput out = optimizeConv(key.problem, machine_, opts_);
    checkInvariant(!out.candidates.empty(),
                   "ShardRouter: optimizeConv returned no candidates");
    stats.fallbacks++;
    stats.solve_seconds += t.seconds();
    const Candidate &best = out.candidates.front();
    return RpcSolveResult{
        key,
        CachedSolution{best.config, best.predicted.total_seconds,
                       best.perm_label},
        /*cache_hit=*/false};
}

NetworkPlan
ShardRouter::optimize(const std::vector<ConvProblem> &net,
                      RouteStats *stats_out)
{
    Timer total;
    std::fill(node_down_.begin(), node_down_.end(), false);

    NetworkPlan plan;
    plan.layers.resize(net.size());
    plan.stats.layers = net.size();
    RouteStats rstats;

    // Same first-seen-order dedupe as NetworkOptimizer::optimize, so
    // remote, degraded, and local plans line up layer for layer.
    struct Group
    {
        CacheKey key;
        std::vector<std::size_t> layers;
    };
    std::vector<Group> groups;
    std::map<std::uint64_t, std::vector<std::size_t>> by_hash;
    for (std::size_t i = 0; i < net.size(); ++i) {
        net[i].validate();
        const CacheKey key = CacheKey::make(net[i], machine_, opts_);
        auto &indices = by_hash[key.hash()];
        bool found = false;
        for (const std::size_t gi : indices) {
            if (groups[gi].key == key) {
                groups[gi].layers.push_back(i);
                found = true;
                break;
            }
        }
        if (!found) {
            indices.push_back(groups.size());
            groups.push_back(Group{key, {i}});
        }
    }
    plan.stats.unique_shapes = groups.size();
    rstats.unique_shapes = groups.size();

    for (const Group &g : groups) {
        const ConvProblem &rep = net[g.layers.front()];
        const RpcSolveResult r = solveOne(g.key, rstats);

        Candidate best;
        best.config = r.sol.config;
        best.perm_label = r.sol.perm_label;
        // Deterministic model: re-deriving the breakdown locally
        // reproduces the server's numbers exactly (the same contract
        // NetworkOptimizer's cache-hit path relies on).
        best.predicted =
            evalMultiLevel(best.config, rep, machine_, opts_.parallel);

        for (std::size_t li = 0; li < g.layers.size(); ++li) {
            const std::size_t layer = g.layers[li];
            LayerPlan &lp = plan.layers[layer];
            lp.problem = net[layer];
            lp.best = best;
            lp.cache_hit = r.cache_hit;
            lp.dedup_hit = li > 0;
        }
        if (r.cache_hit)
            plan.stats.cache_hits++;
        else
            plan.stats.cache_misses++;
    }

    plan.stats.solve_seconds = rstats.solve_seconds;
    plan.stats.total_seconds = total.seconds();
    if (stats_out)
        *stats_out = rstats;
    return plan;
}

} // namespace mopt
