#include "rpc/client.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "common/string_util.hh"
#include "common/timer.hh"
#include "fleet/backoff.hh"
#include "model/multi_level.hh"
#include "service/cache_key.hh"

namespace mopt {

namespace {

/** Poll slice while alternating between two hedged calls: long enough
 *  to avoid spinning, short enough that the loser's answer is
 *  abandoned promptly once the winner lands. */
constexpr long kHedgePollSliceMs = 20;

/** PeerTable configuration reproducing the router's historical
 *  mark-down: the first transport failure quarantines for a fixed
 *  markdown_ms window (base == cap, no jitter), after which one call
 *  re-probes half-open. */
PeerTableOptions
routerPeerOptions(const FleetOptions &fleet)
{
    PeerTableOptions po;
    po.down_after = 1;
    po.probe_backoff_ms = fleet.markdown_ms;
    po.probe_backoff_cap_ms = fleet.markdown_ms;
    po.jitter = false;
    po.seed = fleet.seed;
    return po;
}

} // namespace

std::vector<RpcEndpoint>
parseEndpointList(const std::string &csv)
{
    std::vector<RpcEndpoint> out;
    for (const std::string &part : split(csv, ',')) {
        const std::string tok = trim(part);
        checkUser(!tok.empty(),
                  "--connect: empty endpoint in \"" + csv + "\"");
        const auto colon = tok.rfind(':');
        checkUser(colon != std::string::npos && colon > 0,
                  "--connect: expected host:port, got \"" + tok + "\"");
        const std::string host = tok.substr(0, colon);
        const std::string port_str = tok.substr(colon + 1);
        checkUser(!port_str.empty() &&
                      port_str.find_first_not_of("0123456789") ==
                          std::string::npos,
                  "--connect: bad port in \"" + tok + "\"");
        const long port = std::strtol(port_str.c_str(), nullptr, 10);
        checkUser(port >= 1 && port <= 65535,
                  "--connect: port out of range in \"" + tok + "\"");
        out.push_back(RpcEndpoint{host, static_cast<int>(port)});
    }
    checkUser(!out.empty(), "--connect: no endpoints given");
    return out;
}

Client::Client(RpcEndpoint ep, std::size_t max_response_bytes)
    : ep_(std::move(ep)), max_response_bytes_(max_response_bytes)
{}

Client::Client(Client &&o) noexcept
    : ep_(std::move(o.ep_)), max_response_bytes_(o.max_response_bytes_),
      sock_(std::move(o.sock_)), rng_(o.rng_)
{
    // reader_ references o.sock_, so an in-flight call cannot move;
    // drop it (the moved-from client is dead anyway).
    o.reader_.reset();
}

Client &
Client::operator=(Client &&o) noexcept
{
    if (this != &o) {
        reader_.reset();
        o.reader_.reset();
        ep_ = std::move(o.ep_);
        max_response_bytes_ = o.max_response_bytes_;
        sock_ = std::move(o.sock_);
        rng_ = o.rng_;
    }
    return *this;
}

bool
Client::startCall(const RpcRequest &req, std::string *err, Deadline dl)
{
    reader_.reset(); // A previous call's leftovers never frame into
                     // this one.
    if (!sock_.valid()) {
        sock_ = TcpSocket::connectTo(ep_.host, ep_.port, err, dl);
        if (!sock_.valid())
            return false;
    }
    if (!sock_.sendAll(requestToJsonLine(req) + "\n", dl)) {
        if (err)
            *err = ep_.str() + ": send failed";
        disconnect();
        return false;
    }
    reader_ =
        std::make_unique<LineReader>(sock_, max_response_bytes_);
    return true;
}

Client::CallWait
Client::waitResponse(RpcResponse &out, std::string *err, Deadline dl)
{
    if (!reader_) {
        if (err)
            *err = ep_.str() + ": no call in flight";
        return CallWait::Transport;
    }
    std::string line;
    const LineReader::Status st = reader_->readLine(line, dl);
    if (st == LineReader::Status::Timeout)
        return CallWait::Timeout; // Partial bytes stay buffered.
    if (st != LineReader::Status::Ok) {
        if (err)
            *err = ep_.str() + ": connection lost awaiting response";
        abandon();
        return CallWait::Transport;
    }
    reader_.reset(); // Call complete.
    std::string perr;
    if (!responseFromJsonLine(line, out, &perr)) {
        if (err)
            *err = ep_.str() + ": bad response: " + perr;
        disconnect();
        return CallWait::Transport;
    }
    return CallWait::Ready;
}

void
Client::abandon()
{
    // The response (whole or partial) may still arrive on this
    // stream; dropping the connection is the only way to keep it from
    // framing into the next call.
    reader_.reset();
    sock_.close();
}

bool
Client::call(const RpcRequest &req, RpcResponse &out, std::string *err,
             Deadline dl)
{
    if (!startCall(req, err, dl))
        return false;
    const CallWait w = waitResponse(out, err, dl);
    if (w == CallWait::Ready)
        return true;
    if (w == CallWait::Timeout) {
        if (err)
            *err = ep_.str() + ": timed out awaiting response";
        abandon();
    }
    return false;
}

bool
Client::callRetrying(const RpcRequest &req, const FleetOptions &policy,
                     RpcResponse &out, std::string *err,
                     std::size_t *retries_out)
{
    for (int attempt = 0;; ++attempt) {
        if (attempt > 0) {
            if (retries_out)
                ++*retries_out;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                backoffDelayMs(policy.backoff_ms, attempt, rng_)));
        }
        const Deadline dl = policy.deadline_ms > 0
                                ? Deadline::in(policy.deadline_ms)
                                : Deadline::never();
        if (call(req, out, err, dl)) {
            // Only an explicit overload shed is retryable; any other
            // refusal means retrying can't fix the question.
            if (out.ok || out.code != RpcErrorCode::Overloaded ||
                attempt >= policy.max_retries)
                return true;
            continue;
        }
        if (attempt >= policy.max_retries)
            return false;
    }
}

void
Client::disconnect()
{
    reader_.reset();
    sock_.close();
}

double
RouteStats::hitRate() const
{
    if (unique_shapes == 0)
        return 1.0;
    return static_cast<double>(remote_hits) /
           static_cast<double>(unique_shapes);
}

ShardRouter::ShardRouter(std::vector<RpcEndpoint> endpoints,
                         const MachineSpec &machine,
                         const OptimizerOptions &opts, FleetOptions fleet)
    : peers_(endpoints.size(), routerPeerOptions(fleet)), fleet_(fleet),
      machine_(machine), opts_(opts),
      machine_fp_(CacheKey::machineFingerprint(machine)),
      settings_fp_(CacheKey::settingsFingerprint(opts)),
      rng_(fleet.seed)
{
    checkUser(!endpoints.empty(), "ShardRouter: no endpoints");
    machine_.validate();
    clients_.reserve(endpoints.size());
    for (RpcEndpoint &ep : endpoints)
        clients_.emplace_back(std::move(ep));
}

std::size_t
ShardRouter::nodeOf(const CacheKey &key) const
{
    return static_cast<std::size_t>(key.hash() % clients_.size());
}

bool
ShardRouter::nodeUp(std::size_t node) const
{
    // A down node past its quarantine is offered again: the next call
    // routed here is the half-open probe, and markDown() re-arms the
    // quarantine if it fails.
    return peers_.offerable(node);
}

void
ShardRouter::markDown(std::size_t node)
{
    peers_.reportFailure(node);
}

std::size_t
ShardRouter::nextUpNode(std::size_t primary) const
{
    const std::size_t n = clients_.size();
    for (std::size_t off = 1; off < n; ++off) {
        const std::size_t node = (primary + off) % n;
        if (nodeUp(node))
            return node;
    }
    return n;
}

std::vector<RouteNodeState>
ShardRouter::nodeStates() const
{
    std::vector<RouteNodeState> out;
    out.reserve(clients_.size());
    for (std::size_t i = 0; i < clients_.size(); ++i) {
        RouteNodeState st;
        st.endpoint = clients_[i].endpoint();
        const PeerInfo info = peers_.info(i);
        // "Down" here means *currently quarantined*: a Down peer whose
        // half-open window has opened is reported up (it is offerable,
        // and the next call decides its fate).
        st.down = info.state == PeerState::Down && info.retry_in_ms > 0;
        if (st.down)
            st.retry_in_ms = info.retry_in_ms;
        out.push_back(std::move(st));
    }
    return out;
}

ShardRouter::Attempt
ShardRouter::finishResponse(std::size_t node, const RpcResponse &resp,
                            RouteStats &stats, RpcSolveResult &out)
{
    if (!resp.ok) {
        if (resp.code == RpcErrorCode::Overloaded)
            return Attempt::Overloaded;
        // A *refusal* is a fleet misconfiguration (wrong machine,
        // wrong settings, bad shape); silently solving locally would
        // mask it on every future query. Fail loudly.
        checkUser(false, "moptd node " +
                             clients_[node].endpoint().str() +
                             " refused solve: " + resp.error);
    }
    peers_.reportSuccess(node); // The answer proves the node up.
    (resp.solve.cache_hit ? stats.remote_hits : stats.remote_misses)++;
    stats.solve_seconds += resp.solve_seconds;
    out = resp.solve;
    return Attempt::Done;
}

ShardRouter::Attempt
ShardRouter::attemptHedged(std::size_t primary, const RpcRequest &req,
                           RouteStats &stats, RpcSolveResult &out)
{
    Client &pc = clients_[primary];
    const Deadline dl = fleet_.deadline_ms > 0
                            ? Deadline::in(fleet_.deadline_ms)
                            : Deadline::never();
    std::string err;
    if (!pc.startCall(req, &err, dl)) {
        logWarn("moptd node ", pc.endpoint().str(),
                " unreachable (", err, ")");
        markDown(primary);
        return Attempt::Transport;
    }

    // Phase 1: wait for the primary alone, up to the hedge threshold
    // (or the whole deadline when hedging is off or there is nowhere
    // to hedge to).
    const std::size_t secondary =
        fleet_.hedge_ms > 0 ? nextUpNode(primary) : clients_.size();
    const bool can_hedge = secondary < clients_.size();
    RpcResponse resp;
    Deadline first = dl;
    if (can_hedge) {
        const Deadline hedge_at = Deadline::in(fleet_.hedge_ms);
        if (dl.infinite() ||
            hedge_at.remainingMs() < dl.remainingMs())
            first = hedge_at;
    }
    Client::CallWait w = pc.waitResponse(resp, &err, first);
    if (w == Client::CallWait::Ready)
        return finishResponse(primary, resp, stats, out);
    if (w == Client::CallWait::Transport) {
        logWarn("moptd node ", pc.endpoint().str(), " unreachable (",
                err, ")");
        markDown(primary);
        return Attempt::Transport;
    }
    if (!can_hedge) {
        // Timeout with nowhere to hedge: the node is slow past the
        // whole budget — quarantine it and let the caller fall back.
        logWarn("moptd node ", pc.endpoint().str(),
                " timed out after ", fleet_.deadline_ms, " ms");
        pc.abandon();
        markDown(primary);
        return Attempt::Transport;
    }

    // Phase 2: primary is slow, not (yet) dead. Fire the hedge and
    // poll both in slices; first answer wins, the loser is abandoned.
    // Byte-identical plans make either answer correct.
    stats.hedges++;
    Client &sc = clients_[secondary];
    std::string serr;
    bool primary_live = true;
    bool secondary_live = sc.startCall(req, &serr, dl);
    if (!secondary_live)
        markDown(secondary);
    while ((primary_live || secondary_live) && !dl.expired()) {
        if (primary_live) {
            const Deadline slice =
                Deadline::in(std::min(kHedgePollSliceMs,
                                      std::max(1L, dl.remainingMs())));
            w = pc.waitResponse(resp, &err, slice);
            if (w == Client::CallWait::Ready) {
                if (secondary_live)
                    sc.abandon();
                return finishResponse(primary, resp, stats, out);
            }
            if (w == Client::CallWait::Transport) {
                markDown(primary);
                primary_live = false;
            }
        }
        if (secondary_live) {
            const Deadline slice =
                Deadline::in(std::min(kHedgePollSliceMs,
                                      std::max(1L, dl.remainingMs())));
            w = sc.waitResponse(resp, &serr, slice);
            if (w == Client::CallWait::Ready) {
                if (primary_live)
                    pc.abandon();
                stats.hedge_wins++;
                return finishResponse(secondary, resp, stats, out);
            }
            if (w == Client::CallWait::Transport) {
                markDown(secondary);
                secondary_live = false;
            }
        }
    }
    // Deadline expired with neither leg answering (or both legs died
    // on transport): quarantine whatever is still silent.
    if (primary_live) {
        pc.abandon();
        markDown(primary);
    }
    if (secondary_live) {
        sc.abandon();
        markDown(secondary);
    }
    logWarn("moptd node ", pc.endpoint().str(),
            " (and hedge) timed out after ", fleet_.deadline_ms,
            " ms");
    return Attempt::Transport;
}

RpcSolveResult
ShardRouter::solveOne(const CacheKey &key, RouteStats &stats)
{
    const std::size_t node = nodeOf(key);
    RpcRequest req;
    req.op = RpcOp::Solve;
    req.problem = key.problem;
    req.machine_fp = machine_fp_;
    req.settings_fp = settings_fp_;
    req.deadline_ms = fleet_.deadline_ms;

    {
        RpcSolveResult result;
        for (int attempt = 0; attempt <= fleet_.max_retries;
             ++attempt) {
            if (attempt > 0) {
                stats.retries++;
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    backoffDelayMs(fleet_.backoff_ms, attempt, rng_)));
            }
            // Pick the target fresh each attempt. When the owner is
            // offerable (never failed, or its quarantine window has
            // opened) route to it — a retry against a just-opened
            // quarantine IS the half-open re-probe. While the owner
            // is quarantined, fail over to the next live ring node:
            // under shard-aware replication (rpc/server.cc) the
            // owner's ring successors are exactly the nodes that hold
            // this key's replica, so the failover answer is warm.
            // With nowhere live to fail over, keep probing the owner
            // — a dead node fails fast (refused) or at worst costs
            // one deadline (blackholed), bounded by max_retries.
            std::size_t target = node;
            if (!nodeUp(node)) {
                const std::size_t next = nextUpNode(node);
                target = next < clients_.size() ? next : node;
            }
            const Attempt a =
                attemptHedged(target, req, stats, result);
            if (a == Attempt::Done)
                return result;
            // Overloaded and Transport both retry (the next attempt
            // re-probes, fails over, or hedges); exhausted retries
            // fall through to the local solve.
        }
        if (fleet_.local_fallback)
            logWarn("moptd node ", clients_[node].endpoint().str(),
                    " unavailable; falling back to local solve");
    }
    if (!fleet_.local_fallback)
        throw FatalError("shard " +
                         clients_[node].endpoint().str() +
                         " did not answer for " + key.str() +
                         " and local fallback is disabled");
    // Local fallback: the same deterministic pipeline the server
    // runs, so the plan is byte-identical, just paid for locally.
    Timer t;
    const OptimizeOutput out = optimizeConv(key.problem, machine_, opts_);
    checkInvariant(!out.candidates.empty(),
                   "ShardRouter: optimizeConv returned no candidates");
    stats.fallbacks++;
    stats.solve_seconds += t.seconds();
    const Candidate &best = out.candidates.front();
    return RpcSolveResult{
        key,
        CachedSolution{best.config, best.predicted.total_seconds,
                       best.perm_label},
        /*cache_hit=*/false};
}

NetworkPlan
ShardRouter::optimize(const std::vector<ConvProblem> &net,
                      RouteStats *stats_out)
{
    Timer total;

    NetworkPlan plan;
    plan.layers.resize(net.size());
    plan.stats.layers = net.size();
    RouteStats rstats;

    // Same first-seen-order dedupe as NetworkOptimizer::optimize, so
    // remote, degraded, and local plans line up layer for layer.
    struct Group
    {
        CacheKey key;
        std::vector<std::size_t> layers;
    };
    std::vector<Group> groups;
    std::map<std::uint64_t, std::vector<std::size_t>> by_hash;
    for (std::size_t i = 0; i < net.size(); ++i) {
        net[i].validate();
        const CacheKey key = CacheKey::make(net[i], machine_, opts_);
        auto &indices = by_hash[key.hash()];
        bool found = false;
        for (const std::size_t gi : indices) {
            if (groups[gi].key == key) {
                groups[gi].layers.push_back(i);
                found = true;
                break;
            }
        }
        if (!found) {
            indices.push_back(groups.size());
            groups.push_back(Group{key, {i}});
        }
    }
    plan.stats.unique_shapes = groups.size();
    rstats.unique_shapes = groups.size();

    for (const Group &g : groups) {
        const ConvProblem &rep = net[g.layers.front()];
        const RpcSolveResult r = solveOne(g.key, rstats);

        Candidate best;
        best.config = r.sol.config;
        best.perm_label = r.sol.perm_label;
        // Deterministic model: re-deriving the breakdown locally
        // reproduces the server's numbers exactly (the same contract
        // NetworkOptimizer's cache-hit path relies on).
        best.predicted =
            evalMultiLevel(best.config, rep, machine_, opts_.parallel);

        for (std::size_t li = 0; li < g.layers.size(); ++li) {
            const std::size_t layer = g.layers[li];
            LayerPlan &lp = plan.layers[layer];
            lp.problem = net[layer];
            lp.best = best;
            lp.cache_hit = r.cache_hit;
            lp.dedup_hit = li > 0;
        }
        if (r.cache_hit)
            plan.stats.cache_hits++;
        else
            plan.stats.cache_misses++;
    }

    plan.stats.solve_seconds = rstats.solve_seconds;
    plan.stats.total_seconds = total.seconds();
    rstats.nodes = nodeStates();
    if (stats_out)
        *stats_out = rstats;
    return plan;
}

} // namespace mopt
