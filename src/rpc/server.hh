/**
 * @file
 * moptd: the long-lived optimizer server. Accepts connections on a
 * worker pool and answers the line-delimited JSON protocol
 * (rpc/protocol.hh) through one shared NetworkOptimizer and one
 * shared, optionally persistent, SolutionCache.
 *
 * Concurrency model: an accept loop (the thread that called serve())
 * hands connections to N worker threads over a queue; each worker
 * owns one connection at a time and answers its requests in order.
 * Cache lookups run lock-free across workers (the cache is sharded);
 * cache *misses* — actual optimizeConv solves — go through one shared
 * SolveScheduler (service/solve_scheduler.hh): duplicate concurrent
 * requests coalesce onto a single in-flight solve (workers block on
 * its shared future, not a mutex queue), while distinct shapes solve
 * concurrently up to the --solve-concurrency budget, each on a
 * partition of the thread-pool width. Solves are width-independent
 * (docs/ARCHITECTURE.md), so responses are byte-identical for any
 * budget, and a budget of 1 reproduces the historical serialized
 * behavior. A warm server scales with worker count; a cold one now
 * scales with the solve budget too.
 *
 * Admission control: the accept loop sheds connections past a bounded
 * pending budget, and workers shed connections past the per-client
 * cap — both with an explicit "overloaded" refusal (protocol.hh error
 * code) so a well-behaved client backs off and retries another shard
 * instead of timing out blind. A request carrying "deadline_ms" is
 * refused up front when already expired and bounds the worker's solve
 * wait; either way the worker answers "deadline_exceeded" instead of
 * burning time on an answer nobody is waiting for.
 *
 * Shutdown paths: a "shutdown" RPC, or stop() from another thread.
 * Both close the listener (waking the accept loop) and read-side
 * half-close every in-flight connection: workers blocked in recv see
 * EOF and drain promptly, while responses already being written still
 * flush — in-flight work completes, new work is refused.
 */

#ifndef MOPT_RPC_SERVER_HH
#define MOPT_RPC_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "machine/machine.hh"
#include "optimizer/mopt_optimizer.hh"
#include "rpc/protocol.hh"
#include "rpc/tcp.hh"
#include "service/network_optimizer.hh"
#include "service/solution_cache.hh"
#include "service/solve_scheduler.hh"

namespace mopt {

/** Construction-time options of a Server. */
struct ServerOptions
{
    /** Bind address. Loopback by default: exposing the fleet beyond
     *  the host is a deliberate act. */
    std::string host = "127.0.0.1";

    /** Listen port; 0 = kernel-assigned (read back via port()). */
    int port = 0;

    /** Connection-handling worker threads. */
    int workers = 4;

    /** Requests longer than this (bytes, excluding the newline) are
     *  answered with an error and the connection is dropped. */
    std::size_t max_request_bytes = 1 << 20;

    /** Concurrent cold-miss solves (the SolveScheduler budget). 1 =
     *  the historical one-solve-at-a-time behavior; higher values
     *  split the solver thread-pool width across that many flights.
     *  Plans are byte-identical either way. */
    int solve_concurrency = 1;

    /** Bound on accepted connections awaiting a worker. Past it the
     *  accept loop answers "overloaded" (code on the wire) and closes
     *  instead of queueing unboundedly — shedding early keeps the
     *  refusal latency flat while the fleet retries elsewhere. */
    int max_pending_conns = 128;

    /** Concurrent connections served per client address (peer IP);
     *  0 = unlimited. The cap stops one misbehaving client from
     *  occupying every worker; excess connections are refused with
     *  the same "overloaded" code. */
    int max_per_client = 0;

    /** Budget for writing a refusal to a client being shed (ms). The
     *  shed path runs on the accept thread, so a client too slow to
     *  take even the error line is simply dropped. */
    long shed_write_ms = 1000;

    /** Calibration provenance surfaced by the stats op. The server
     *  never rescales the machine itself — the CLI applies
     *  Calibration::applyTo before constructing it — so these only
     *  report what the operator chose to serve with. */
    std::int64_t calib_samples = 0; //!< Samples behind the correction.
    bool calib_active = false;      //!< Non-identity fit applied.
};

/** Monotonic server counters (snapshot-read; updated with relaxed
 *  atomics by the workers). */
struct ServerCounters
{
    std::atomic<std::int64_t> connections{0};
    std::atomic<std::int64_t> requests{0};
    std::atomic<std::int64_t> errors{0}; //!< Error responses sent.

    // Admission control (each shed also counts toward errors when a
    // refusal was actually written).
    std::atomic<std::int64_t> shed_overload{0}; //!< Pending budget hit.
    std::atomic<std::int64_t> shed_client{0};   //!< Per-client cap hit.
    std::atomic<std::int64_t> shed_deadline{0}; //!< Deadline expired.
};

/**
 * The moptd server. Construct, start() (binds and spawns workers),
 * then serve() from the thread that should run the accept loop.
 * Thread-safe: stop() may be called from anywhere, including a
 * request handler (the shutdown op does exactly that).
 */
class Server
{
  public:
    /**
     * @param machine  machine description every solve targets
     * @param opts     search settings applied to every solve
     * @param cache    shared solution cache (not owned; may be null)
     * @param options  socket and worker configuration
     */
    Server(const MachineSpec &machine, const OptimizerOptions &opts,
           SolutionCache *cache, ServerOptions options = {});

    /** Joins workers; equivalent to stop() + serve() returning. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and spawn the worker pool. False + @p err when
     *  the address cannot be bound. */
    bool start(std::string *err = nullptr);

    /** The bound port (valid after start()), or -1. */
    int port() const { return listener_.port(); }

    /**
     * Run the accept loop on the calling thread until stop() or a
     * shutdown RPC, then drain the workers. Returns the number of
     * connections served.
     */
    std::int64_t serve();

    /** Request shutdown: close the listener and every connection. */
    void stop();

    /** True once stop() (or a shutdown RPC) has been requested. */
    bool stopping() const
    {
        return stopping_.load(std::memory_order_acquire);
    }

    const ServerCounters &counters() const { return counters_; }

    /** The single-flight scheduler's counters (also on the stats RPC). */
    SolveSchedulerStats schedulerStats() const
    {
        return scheduler_.stats();
    }

    /** Handle one already-parsed request (exposed for unit tests;
     *  the wire path goes through exactly this). */
    RpcResponse handle(const RpcRequest &req);

  private:
    void workerLoop();
    void handleConnection(TcpSocket conn);

    /** Refuse @p conn with an "overloaded" error line (write bounded
     *  by shed_write_ms) and close it. Runs on the accept thread or a
     *  worker, never blocks past the budget. */
    void shedConnection(TcpSocket conn, const std::string &msg);

    RpcResponse handleSolve(const RpcRequest &req, const Deadline &dl);
    RpcResponse handleSolveNetwork(const RpcRequest &req,
                                   const Deadline &dl);
    RpcResponse handleStats();

    /** Fingerprint guard: nonzero client fingerprints must match the
     *  server's identity. Returns false and fills @p resp on reject. */
    bool checkIdentity(const RpcRequest &req, RpcResponse &resp) const;

    MachineSpec machine_;
    OptimizerOptions opts_;
    SolutionCache *cache_;
    ServerOptions options_;

    /** Single-flight, bounded-concurrency solve admission for every
     *  miss (both solve and solve_network go through it, so their
     *  duplicate shapes coalesce against one table). */
    SolveScheduler scheduler_;
    NetworkOptimizer optimizer_;
    std::uint64_t machine_fp_;
    std::uint64_t settings_fp_;

    TcpListener listener_;
    std::vector<std::thread> workers_;
    std::atomic<bool> stopping_{false};

    std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    std::deque<TcpSocket> queue_;
    bool queue_closed_ = false;

    /** fds of live connections, so stop() can half-close them. */
    std::mutex conns_mu_;
    std::unordered_set<int> conn_fds_;

    /** Peer IP -> connections currently being served (per-client
     *  admission cap). */
    std::mutex clients_mu_;
    std::unordered_map<std::string, int> client_conns_;

    ServerCounters counters_;
};

} // namespace mopt

#endif // MOPT_RPC_SERVER_HH
