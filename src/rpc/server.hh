/**
 * @file
 * moptd: the long-lived optimizer server. Answers the line-delimited
 * JSON protocol (rpc/protocol.hh) through one shared NetworkOptimizer
 * and one shared, optionally persistent, SolutionCache.
 *
 * Concurrency model (the readiness core): a single epoll(7) event
 * loop — the thread that called serve() — owns every socket. The
 * listener and all client connections are registered non-blocking;
 * the loop does readiness-driven reads into per-connection LineReader
 * buffers (fragmented frames resume across reads for free) and
 * dispatches only *complete* request lines to the worker pool. The
 * workers never touch a socket: they parse, run the solve through the
 * shared SolveScheduler, serialize, and hand the response bytes back
 * to the loop over a completion queue + wakeup pipe; the loop writes
 * them out, falling back to EPOLLOUT-driven flushing when a client's
 * receive window is full. The ownership split is strict — the loop
 * owns fds, the workers own solves — so N workers serve thousands of
 * mostly-idle connections: an idle connection costs one registered fd
 * and a buffer, not a thread.
 *
 * Cache lookups run lock-free across workers (the cache is sharded);
 * cache *misses* — actual optimizeConv solves — go through one shared
 * SolveScheduler (service/solve_scheduler.hh): duplicate concurrent
 * requests coalesce onto a single in-flight solve (workers block on
 * its shared future, not a mutex queue), while distinct shapes solve
 * concurrently up to the --solve-concurrency budget, each on a
 * partition of the thread-pool width. Solves are width-independent
 * (docs/ARCHITECTURE.md), so responses are byte-identical for any
 * budget, and a budget of 1 reproduces the historical serialized
 * behavior.
 *
 * Admission control: new connections are shed when the dispatched-
 * request backlog is saturated (max_pending_conns) or the peer is
 * over its per-client connection cap — both with an explicit
 * "overloaded" refusal (protocol.hh error code) written under a
 * bounded deadline (shed_write_ms), so a well-behaved client backs
 * off and retries another shard instead of timing out blind. A
 * request carrying "deadline_ms" is refused up front when already
 * expired and bounds the worker's solve wait; either way the worker
 * answers "deadline_exceeded" instead of burning time on an answer
 * nobody is waiting for.
 *
 * Warm-entry replication (optional, --replicate): when a cold solve
 * inserts a fresh entry, the scheduler's on_insert hook enqueues the
 * journal record and a dedicated replicator thread pushes it to the
 * key's replica set — the ring owner (hash % fleet size) and its
 * replication_factor - 1 followers — via the protocol's "replicate"
 * op, asynchronously with bounded-backoff retries. Peer liveness
 * lives in a fleet/peer_table.hh PeerTable: pushes and pings feed it,
 * a Down peer stops receiving pushes (its records spool and ride the
 * drain when a half-open probe succeeds) and the walk spills over to
 * the next live ring slot so the fleet still holds F live copies. At
 * start(), the server *pulls* from its peers — entries newer than its
 * own journal high-water sequence (the "since" cursor), so a
 * rejoining node converges via delta, not a full transfer. A periodic
 * low-priority anti-entropy round exchanges (count, fingerprint)
 * digests with Up peers and pulls only what this node is missing, so
 * even a blackholed push is eventually repaired.
 *
 * Shutdown paths: a "shutdown" RPC, or stop() from another thread.
 * Both retire the listener and read-side half-close every connection:
 * clients see EOF, in-flight solves complete and their responses
 * still flush (bounded by shed_write_ms), new work is refused.
 */

#ifndef MOPT_RPC_SERVER_HH
#define MOPT_RPC_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "fleet/peer_table.hh"
#include "machine/machine.hh"
#include "optimizer/mopt_optimizer.hh"
#include "rpc/client.hh"
#include "rpc/protocol.hh"
#include "rpc/tcp.hh"
#include "service/network_optimizer.hh"
#include "service/solution_cache.hh"
#include "service/solve_scheduler.hh"

namespace mopt {

/** Construction-time options of a Server. */
struct ServerOptions
{
    /** Bind address. Loopback by default: exposing the fleet beyond
     *  the host is a deliberate act. */
    std::string host = "127.0.0.1";

    /** Listen port; 0 = kernel-assigned (read back via port()). */
    int port = 0;

    /** Request-handling worker threads (parse + solve + serialize;
     *  they never touch a socket). */
    int workers = 4;

    /** Requests longer than this (bytes, excluding the newline) are
     *  answered with an error and the connection is dropped. */
    std::size_t max_request_bytes = 1 << 20;

    /** Concurrent cold-miss solves (the SolveScheduler budget). 1 =
     *  the historical one-solve-at-a-time behavior; higher values
     *  split the solver thread-pool width across that many flights.
     *  Plans are byte-identical either way. */
    int solve_concurrency = 1;

    /** Bound on dispatched requests awaiting (or inside) a worker.
     *  Past it, *new connections* are answered "overloaded" (code on
     *  the wire) and closed instead of queueing unboundedly —
     *  shedding early keeps the refusal latency flat while the fleet
     *  retries elsewhere. Idle connections are free and never count
     *  against this. */
    int max_pending_conns = 128;

    /** Concurrent connections served per client address (peer IP);
     *  0 = unlimited. The cap bounds one misbehaving client's share
     *  of the connection table; excess connections are refused with
     *  the same "overloaded" code. */
    int max_per_client = 0;

    /** Budget for flushing a refusal (or, during shutdown, a final
     *  response) to a slow client, in ms. A client too slow to take
     *  even the error line is simply dropped. */
    long shed_write_ms = 1000;

    /** Peer endpoints ("host:port[,host:port...]") for warm-entry
     *  replication; empty = replication off. Fresh cold-solve inserts
     *  are pushed to the key's replica set (see replication_factor),
     *  and start() prefetches what the peers hold past this node's
     *  own journal high-water sequence. */
    std::string replicate;

    /** Replica-set size F: a fresh insert lands on the key's ring
     *  owner (CacheKey::hash() % fleet size) and its F - 1 ring
     *  followers. 0 (or >= the fleet size) = every node — the
     *  historical full-fanout behavior and the default. */
    int replication_factor = 0;

    /** This node's slot on the fleet ring: its position in the
     *  fleet's endpoint order (self + peers must agree fleet-wide).
     *  Shard-aware push and anti-entropy digests key off it. */
    int fleet_index = 0;

    /** Anti-entropy period in ms; <= 0 disables. Each round swaps a
     *  (count, fingerprint) digest with every Up peer and pulls only
     *  the records this node is missing. */
    long anti_entropy_ms = 1000;

    /** Calibration provenance surfaced by the stats op. The server
     *  never rescales the machine itself — the CLI applies
     *  Calibration::applyTo before constructing it — so these only
     *  report what the operator chose to serve with. */
    std::int64_t calib_samples = 0; //!< Samples behind the correction.
    bool calib_active = false;      //!< Non-identity fit applied.
};

/** Monotonic server counters (snapshot-read; updated with relaxed
 *  atomics by the loop and the workers). */
struct ServerCounters
{
    std::atomic<std::int64_t> connections{0};
    std::atomic<std::int64_t> requests{0};
    std::atomic<std::int64_t> errors{0}; //!< Error responses sent.

    // Admission control (each shed also counts toward errors when a
    // refusal was actually written).
    std::atomic<std::int64_t> shed_overload{0}; //!< Pending budget hit.
    std::atomic<std::int64_t> shed_client{0};   //!< Per-client cap hit.
    std::atomic<std::int64_t> shed_deadline{0}; //!< Deadline expired.

    // Warm-entry replication (all 0 unless --replicate).
    std::atomic<std::int64_t> repl_pushed{0};      //!< Records delivered.
    std::atomic<std::int64_t> repl_push_failed{0}; //!< Pushes dropped.
    std::atomic<std::int64_t> repl_applied{0};     //!< Peer pushes taken.
    std::atomic<std::int64_t> repl_prefetched{0};  //!< Pulled at join.

    // Self-healing fabric (all 0 unless --replicate).
    std::atomic<std::int64_t> repl_push_retries{0}; //!< Backoff retries.
    std::atomic<std::int64_t> repl_spooled{0};  //!< Held for a Down peer.
    std::atomic<std::int64_t> repl_probes{0};   //!< Half-open pings sent.
    std::atomic<std::int64_t> repl_ae_applied{0}; //!< Anti-entropy pulls.
    /** Gauge, not a counter: the "since" cursor the join-time prefetch
     *  sent (0 = fresh journal, full pull). */
    std::atomic<std::int64_t> repl_prefetch_since{0};
};

/**
 * The moptd server. Construct, start() (binds, prefetches from
 * replication peers, spawns workers), then serve() from the thread
 * that should run the event loop. Thread-safe: stop() may be called
 * from anywhere, including a request handler (the shutdown op does
 * exactly that).
 */
class Server
{
  public:
    /**
     * @param machine  machine description every solve targets
     * @param opts     search settings applied to every solve
     * @param cache    shared solution cache (not owned; may be null)
     * @param options  socket and worker configuration
     */
    Server(const MachineSpec &machine, const OptimizerOptions &opts,
           SolutionCache *cache, ServerOptions options = {});

    /** Joins workers; equivalent to stop() + serve() returning. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, prefetch from replication peers, and spawn the
     *  worker pool. False + @p err when the address cannot be bound
     *  (a dead replication peer is *not* an error — the fleet heals
     *  through pushes later). */
    bool start(std::string *err = nullptr);

    /** The bound port (valid after start()), or -1. */
    int port() const { return listener_.port(); }

    /**
     * Run the event loop on the calling thread until stop() or a
     * shutdown RPC, then drain in-flight work and join the workers.
     * Returns the number of connections accepted.
     */
    std::int64_t serve();

    /** Request shutdown: wake the loop, which retires the listener
     *  and drains every connection. */
    void stop();

    /** True once stop() (or a shutdown RPC) has been requested. */
    bool stopping() const
    {
        return stopping_.load(std::memory_order_acquire);
    }

    const ServerCounters &counters() const { return counters_; }

    /** The single-flight scheduler's counters (also on the stats RPC). */
    SolveSchedulerStats schedulerStats() const
    {
        return scheduler_.stats();
    }

    /** Handle one already-parsed request (exposed for unit tests;
     *  the wire path goes through exactly this). */
    RpcResponse handle(const RpcRequest &req);

  private:
    /** Per-connection state owned exclusively by the event loop
     *  (defined in server.cc). */
    struct Conn;

    /** One complete request line dispatched to a worker. */
    struct Job
    {
        std::uint64_t conn_id = 0;
        std::string line;
    };

    /** A worker's finished response heading back to the loop. */
    struct Completion
    {
        std::uint64_t conn_id = 0;
        std::string bytes;     //!< Serialized response + '\n'.
        bool shutdown = false; //!< Successful shutdown op: stop after.
    };

    void workerLoop();
    void replicatorLoop();

    /** Poke the event loop's wakeup pipe (worker completion or
     *  stop()). Safe from any thread while the loop may run. */
    void wakeLoop();

    // Event-loop internals (serve() thread only).
    void acceptReady(std::int64_t *served);
    void admitConn(TcpSocket sock);
    void shedNewConn(TcpSocket sock, const std::string &msg);
    bool connReadable(Conn &c);  //!< false = conn destroyed.
    bool flushConn(Conn &c);     //!< false = conn destroyed.
    bool extractLines(Conn &c);  //!< false = conn destroyed.
    bool pumpConn(Conn &c);      //!< Dispatch pending work.
    /** Queue @p bytes on @p c's output buffer and flush what the
     *  socket will take now. false = conn destroyed. */
    bool appendOutput(Conn &c, const std::string &bytes);
    bool maybeCloseConn(Conn &c);//!< false = conn destroyed.
    void updateEvents(Conn &c);
    void destroyConn(std::uint64_t id);
    void processCompletions();
    void beginDrain();
    int loopTimeoutMs() const;
    void expireWriteDeadlines();

    /** Walk the record's replica ring: push to live members, spool
     *  for quarantined ones, spill over to the next live slot until F
     *  copies are live (replicator thread). */
    void pushRecord(std::vector<Client> &peers,
                    const RpcReplRecord &rec);

    /** Bounded-backoff push of one record to one peer; feeds the
     *  peer table. True = delivered (replicator thread). */
    bool pushToPeer(std::vector<Client> &peers, std::size_t peer,
                    const RpcReplRecord &rec);

    /** Append @p rec to @p peer's spool, dropping (and counting) the
     *  oldest record past the bound (replicator thread). */
    void spoolFor(std::size_t peer, const RpcReplRecord &rec);

    /** Re-push a recovered peer's spooled records until the spool is
     *  empty or the peer fails again (replicator thread). */
    void drainSpool(std::vector<Client> &peers, std::size_t peer);

    /** Half-open probing: ping each Down peer whose quarantine has
     *  expired; success drains its spool (replicator thread). */
    void probeDownPeers(std::vector<Client> &peers);

    /** One anti-entropy round: digest exchange with every Up peer,
     *  delta pull of whatever is missing (replicator thread). */
    void antiEntropy(std::vector<Client> &peers);

    /** Pull records (seq > since when since >= 0, filtered to this
     *  node's ring slot when for_slot) and apply the missing ones.
     *  Returns how many were applied. */
    std::int64_t pullFromPeer(Client &peer, std::int64_t since,
                              bool for_slot);

    /** (count, XOR-of-mixed-key-hashes) over the entries ring slot
     *  @p slot should hold; slot < 0 = the whole cache. Requires
     *  cache_. Thread-safe (the cache is sharded). */
    std::pair<std::int64_t, std::uint64_t> digestForSlot(int slot) const;

    /** Join-time delta prefetch: pull entries newer than this node's
     *  journal high-water sequence from each peer (start()). */
    void prefetchFromPeers();

    /** Scheduler on_insert target: enqueue for the replicator. */
    void enqueueReplication(const CacheKey &key,
                            const CachedSolution &sol, std::int64_t seq);

    RpcResponse handleSolve(const RpcRequest &req, const Deadline &dl);
    RpcResponse handleSolveNetwork(const RpcRequest &req,
                                   const Deadline &dl);
    RpcResponse handleStats();
    RpcResponse handleReplicate(const RpcRequest &req);
    RpcResponse handlePing() const;

    /** Fingerprint guard: nonzero client fingerprints must match the
     *  server's identity. Returns false and fills @p resp on reject. */
    bool checkIdentity(const RpcRequest &req, RpcResponse &resp) const;

    MachineSpec machine_;
    OptimizerOptions opts_;
    SolutionCache *cache_;
    ServerOptions options_;
    std::uint64_t machine_fp_;
    std::uint64_t settings_fp_;

    ServerCounters counters_;

    // Replication state. Declared before scheduler_ on purpose: the
    // scheduler's on_insert hook may fire from a runner thread during
    // the scheduler's own destruction, so the queue it targets must
    // still be alive then (members are destroyed in reverse order).
    std::vector<RpcEndpoint> repl_peers_;
    std::mutex repl_mu_;
    std::condition_variable repl_cv_;
    std::deque<RpcReplRecord> repl_queue_;
    bool repl_stop_ = false;

    /** Per-peer anti-entropy bookkeeping (replicator thread only):
     *  escalate from delta to full pull only when the same mismatched
     *  peer digest survives a delta round that applied nothing. */
    struct AeState
    {
        std::uint64_t last_fp = 0;    //!< Peer digest, last round.
        std::int64_t last_count = -1; //!< -1 = no round yet.
        bool full_done = false; //!< Full pull tried for this digest.
    };

    /** Shared peer state machine (internally locked; sized by
     *  start()). The replicator consults it before every push. */
    std::unique_ptr<PeerTable> peer_table_;
    std::vector<std::deque<RpcReplRecord>> repl_spool_; //!< Replicator only.
    std::vector<AeState> ae_;                 //!< Replicator only.
    Rng repl_rng_{0x5265706c696361ull}; //!< Replicator only (jitter).
    std::thread repl_thread_;

    /** Single-flight, bounded-concurrency solve admission for every
     *  miss (both solve and solve_network go through it, so their
     *  duplicate shapes coalesce against one table). */
    SolveScheduler scheduler_;
    NetworkOptimizer optimizer_;

    TcpListener listener_;
    std::vector<std::thread> workers_;
    std::atomic<bool> stopping_{false};

    // Dispatch queue: complete request lines, loop -> workers.
    std::mutex queue_mu_;
    std::condition_variable queue_cv_;
    std::deque<Job> queue_;
    bool queue_closed_ = false;

    // Completion queue: response bytes, workers -> loop.
    std::mutex done_mu_;
    std::deque<Completion> done_;

    int epfd_ = -1;    //!< epoll instance (created by start()).
    int wake_rd_ = -1; //!< Wakeup pipe, read end (registered in epoll).
    int wake_wr_ = -1; //!< Wakeup pipe, write end (workers / stop()).

    // Loop-owned state: only the serve() thread touches these, so no
    // locks (stop() communicates through stopping_ + the wake pipe).
    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
    std::unordered_map<std::string, int> client_conns_;
    std::uint64_t next_conn_id_ = 2; //!< 0 = listener, 1 = wake pipe.
    int inflight_jobs_ = 0; //!< Dispatched, completion not yet applied.
    bool drain_begun_ = false;
};

} // namespace mopt

#endif // MOPT_RPC_SERVER_HH
