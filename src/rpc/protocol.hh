/**
 * @file
 * The moptd wire protocol: newline-delimited JSON, one object per
 * request and one per response, over a plain TCP stream.
 *
 * Requests (the "op" member selects the operation):
 *
 *   {"v":1,"op":"solve", "machine":"<fp>", "settings":"<fp>",
 *    "n":1,"k":64,"c":3,"r":7,"s":7,"h":112,"w":112,
 *    "stride":2,"dilation":1,"groups":8}
 *   {"v":1,"op":"solve_network", "machine":"<fp>", "settings":"<fp>",
 *    "net":"resnet18", "batch":8}
 *   {"v":1,"op":"solve_network", "machine":"<fp>", "settings":"<fp>",
 *    "ir":{"name":"tiny","layers":[...]}, "batch":4}
 *   {"v":1,"op":"stats"}
 *   {"v":1,"op":"shutdown"}
 *   {"v":1,"op":"replicate", "machine":"<fp>", "settings":"<fp>",
 *    "record":{...journal record...}}            (warm-entry push)
 *   {"v":1,"op":"replicate", "machine":"<fp>", "settings":"<fp>",
 *    "pull":1, "since":412, "for":2}             (join-time prefetch)
 *   {"v":1,"op":"replicate", "machine":"<fp>", "settings":"<fp>",
 *    "digest":1, "for":2}                        (anti-entropy digest)
 *   {"v":1,"op":"ping"}
 *
 * "replicate" is the optional fleet-internal warm-entry op (PR 9): a
 * node that just finished a cold solve *pushes* the journal record to
 * its peers, and a node joining the fleet *pulls* every entry its
 * peers hold. It stays inside v1 because it is a new op, and the
 * protocol's standing rule is that an unknown op is answered with an
 * error while the connection stays usable — an old server simply
 * refuses the push and the fleet degrades to cold-start behavior.
 * Push response: {"ok":true,"op":"replicate","applied":0|1} (0 = the
 * entry was already present). Pull response:
 * {"ok":true,"op":"replicate","records":[{...},...]}.
 *
 * The self-healing extensions (PR 10) stay inside v1 the same way —
 * every new field is optional with the old semantics as the default.
 * A record may carry "seq", the origin's journal sequence; a pull may
 * carry "since" (only records with seq > since are returned; absent =
 * everything, the old full pull) and "for" (a fleet ring slot: only
 * records whose static replica set contains that slot are returned;
 * absent = no filter). "digest":1 asks for a summary instead of
 * records — {"ok":true,"op":"replicate","count":N,"fp":"<hex16>"},
 * the count and XOR-of-mixed-key-hashes of the entries the responder
 * would return for the same "for" filter — which anti-entropy
 * compares against its own before paying for a pull. "ping" is a
 * liveness probe: {"ok":true,"op":"ping"}, answered without identity
 * checks (probing asks "are you there", not "are you me").
 *
 * Any request may carry an optional "deadline_ms": the client's
 * remaining per-request budget in milliseconds at send time. The
 * server refuses work it cannot finish in time (an expired deadline is
 * answered immediately) and bounds its own solve wait by it, so a
 * slow solve is answered with an explicit deadline_exceeded error
 * instead of a response the client already gave up on. Absent = no
 * deadline (the pre-deadline semantics), which keeps this inside v1.
 *
 * "v" is the protocol major version. This build speaks exactly v1; a
 * request carrying any other version is refused with a clear error
 * *before* its fields are interpreted (a future v2 may rename them),
 * and an absent "v" is treated as 1 so pre-versioning clients keep
 * working. The groups/batch/ir extensions stay inside v1 because
 * every one of them is optional with today's semantics as the
 * default: an absent "groups" is a dense conv, an absent "batch" is
 * 1, and "ir" (an inline frontend NetworkDef, networkDefToJson's
 * format) is an *alternative* to "net" — exactly one of the two must
 * be present, and old clients only ever send "net".
 *
 * "machine" and "settings" are the client's CacheKey fingerprints
 * (16-digit hex, the journal's encoding). The server compares them
 * against its own machine spec and search settings and rejects a
 * mismatch — a client configured for the wrong machine gets a loud
 * error instead of silently wrong tilings. Either may be omitted to
 * skip the check (fleet tooling that just drains a queue).
 *
 * Responses always carry "ok". Failures: {"ok":false,"error":"..."},
 * optionally with a machine-readable "code" naming *why* — today
 * "overloaded" (the server shed the request under admission control;
 * retrying after backoff is correct) or "deadline_exceeded" (the
 * request's own budget ran out; retrying with the same budget will
 * likely fail again). An absent or unrecognized code reads as a plain
 * refusal, so old clients keep treating every failure as fatal and a
 * v1 client talking to a newer server degrades safely.
 * Successful solves embed the solution in the journal's record format
 * (solutionToJsonLine) under "record", plus cache provenance:
 *
 *   {"ok":true,"op":"solve","cache":"hit"|"miss",
 *    "solve_s":0.31,"record":{...journal record...}}
 *   {"ok":true,"op":"solve_network","plan":"<rendered table>",
 *    "layers":[{"cache":"hit","record":{...}}, ...],
 *    "unique":11,"hits":11,"misses":0,"solve_s":0.0,"evals":0}
 *   {"ok":true,"op":"stats","machine":"<fp>","settings":"<fp>",
 *    "machine_name":"i7-9700K","entries":11,"shards":8,
 *    "lookups_hit":20,"lookups_miss":11,"inserts":11,"evictions":0,
 *    "journal_loaded":0,"journal_skipped":0,
 *    "sched_solves":11,"sched_coalesced":3,"sched_inflight":0,
 *    "sched_peak":2,"sched_budget":2,
 *    "srv_shed_overload":0,"srv_shed_client":0,"srv_shed_deadline":0,
 *    "calib_samples":0,"calib_active":0,
 *    "repl_queue_depth":0,"journal_seq":412,
 *    "entry_hits":[{"key":"...","hits":3}, ...]}
 *   {"ok":true,"op":"shutdown"}
 *
 * The "sched_*" members are the server's single-flight solve
 * scheduler counters (service/solve_scheduler.hh): solver
 * invocations, requests coalesced onto an in-flight solve, solves
 * executing right now, the peak observed concurrency, and the
 * configured --solve-concurrency budget. The "srv_shed_*" members are
 * the admission-control shed counters (requests refused for pending
 * budget, per-client cap, or an already-expired deadline). The
 * "calib_*" members report the machine calibration the server was
 * started with (sample count behind the fit, and whether it is
 * non-identity). Clients parse all of these as optional (absent reads
 * as 0) so a new client can still drain stats from an older server.
 *
 * Framing rules: a request larger than the server's limit (default
 * 1 MiB) is answered with an error and the connection is dropped;
 * malformed JSON or an unknown op is answered with an error and the
 * connection stays usable (the next line re-synchronizes, because
 * frames are lines).
 */

#ifndef MOPT_RPC_PROTOCOL_HH
#define MOPT_RPC_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "conv/problem.hh"
#include "frontend/network_def.hh"
#include "service/solution_cache.hh"

namespace mopt {

/** Operations a server understands. */
enum class RpcOp { Solve, SolveNetwork, Stats, Shutdown, Replicate, Ping };

/** Printable op name (the wire spelling). */
std::string rpcOpName(RpcOp op);

/**
 * Machine-readable failure cause on an error response. None covers
 * both "no code sent" and "code we don't recognize" — either way the
 * failure is a plain refusal, fatal to the caller. The distinction
 * matters to the retry policy: Overloaded is explicitly retryable
 * (after backoff, or on another shard), DeadlineExceeded means the
 * budget itself ran out.
 */
enum class RpcErrorCode { None, Overloaded, DeadlineExceeded };

/** Wire spelling of @p code ("" for None — the field is omitted). */
std::string rpcErrorCodeName(RpcErrorCode code);

/** The protocol major version this build speaks. */
constexpr std::int64_t kRpcProtocolVersion = 1;

/** One parsed request. */
struct RpcRequest
{
    /** Protocol major version; absent on the wire parses as 1. */
    std::int64_t v = kRpcProtocolVersion;

    RpcOp op = RpcOp::Solve;

    /** Solve: the shape to optimize (canonical; name ignored). */
    ConvProblem problem;

    /** SolveNetwork: registered network name; empty when @ref ir is
     *  carried instead. */
    std::string net;

    /** SolveNetwork: inline network IR (when @ref has_ir). */
    NetworkDef ir;
    bool has_ir = false;

    /** SolveNetwork: batch size applied to the network (absent on the
     *  wire parses as 1, the pre-batch semantics). */
    std::int64_t batch = 1;

    /** Client-side CacheKey fingerprints (0 = skip the check). */
    std::uint64_t machine_fp = 0;
    std::uint64_t settings_fp = 0;

    /** Remaining client budget in ms at send time; 0 = no deadline
     *  (absent on the wire). The server refuses work it cannot finish
     *  in time. */
    std::int64_t deadline_ms = 0;

    /** Replicate (push form): the journal record being replicated,
     *  and the origin's journal sequence for it (0 = none carried). */
    CacheKey repl_key;
    CachedSolution repl_sol;
    std::int64_t repl_seq = 0;
    bool has_record = false;

    /** Replicate (pull form): ask the peer for its entries. */
    bool repl_pull = false;

    /** Replicate (pull/digest): only entries with seq > since; -1 =
     *  absent on the wire = everything (the old full pull). */
    std::int64_t repl_since = -1;

    /** Replicate (pull/digest): only entries whose static replica set
     *  contains this fleet ring slot; -1 = absent = no filter. */
    std::int64_t repl_for = -1;

    /** Replicate (digest form): ask for (count, fingerprint) instead
     *  of the records themselves. */
    bool repl_digest = false;
};

std::string requestToJsonLine(const RpcRequest &req);

/** False + @p err on malformed input (bad JSON, unknown op, bad
 *  shape); @p out is untouched on failure. */
bool requestFromJsonLine(const std::string &line, RpcRequest &out,
                         std::string *err);

/** One solved layer as it travels over the wire. */
struct RpcSolveResult
{
    CacheKey key;       //!< Identity the server solved (cross-check).
    CachedSolution sol; //!< Winning configuration.
    bool cache_hit = false;
};

/** One replicated cache entry (a journal record on the wire). */
struct RpcReplRecord
{
    CacheKey key;
    CachedSolution sol;
    std::int64_t seq = 0; //!< Origin journal sequence (0 = none).
};

/** Per-entry telemetry row of a stats response. */
struct RpcEntryHits
{
    std::string key; //!< CacheKey::str() of the entry.
    std::int64_t hits = 0;
};

/** One parsed response (fields populated per op; see file header). */
struct RpcResponse
{
    bool ok = false;
    std::string error;

    /** Why the call failed (None unless the server sent a code the
     *  client recognizes). Only meaningful when !ok. */
    RpcErrorCode code = RpcErrorCode::None;

    RpcOp op = RpcOp::Solve;

    // Solve.
    RpcSolveResult solve;
    double solve_seconds = 0;

    // SolveNetwork.
    std::vector<RpcSolveResult> layers; //!< One per input layer.
    std::string plan_text; //!< NetworkPlan::str() rendering.
    std::int64_t unique_shapes = 0;
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
    std::int64_t solver_evals = 0;

    // Stats.
    SolutionCacheStats cache;
    std::int64_t entries = 0;
    int shards = 0;
    std::uint64_t machine_fp = 0;
    std::uint64_t settings_fp = 0;
    std::string machine_name;
    std::vector<RpcEntryHits> entry_hits;

    // Stats: solve-scheduler counters (optional on the wire; absent
    // parses as 0 — see the file header).
    std::int64_t sched_solves = 0;
    std::int64_t sched_coalesced = 0;
    std::int64_t sched_inflight = 0;
    std::int64_t sched_peak = 0;
    std::int64_t sched_budget = 0;

    // Stats: admission-control counters (optional on the wire; absent
    // parses as 0 — a pre-admission server simply never shed).
    std::int64_t srv_shed_overload = 0; //!< Refused: pending budget.
    std::int64_t srv_shed_client = 0;   //!< Refused: per-client cap.
    std::int64_t srv_shed_deadline = 0; //!< Refused: budget expired.

    // Stats: calibration provenance (optional on the wire; absent
    // parses as 0 — an uncalibrated server).
    std::int64_t calib_samples = 0; //!< Samples behind the correction.
    std::int64_t calib_active = 0;  //!< 1 when a non-identity fit applies.

    // Stats: warm-entry replication counters (optional on the wire;
    // absent parses as 0 — a server without --replicate never pushes).
    std::int64_t srv_repl_pushed = 0;      //!< Records pushed to peers.
    std::int64_t srv_repl_push_failed = 0; //!< Pushes dropped (peer down).
    std::int64_t srv_repl_applied = 0;     //!< Pushed records accepted.
    std::int64_t srv_repl_prefetched = 0;  //!< Entries pulled at join.

    // Stats: replication-fabric gauges (optional on the wire; absent
    // parses as 0 — an older server has no queue and no sequence).
    std::int64_t repl_queue_depth = 0; //!< Records awaiting push.
    std::int64_t journal_seq = 0;      //!< Journal high-water sequence.

    // Replicate.
    std::int64_t repl_applied = 0; //!< Push form: 1 = newly inserted.
    bool repl_is_pull = false;     //!< Response carries records[].
    std::vector<RpcReplRecord> repl_records; //!< Pull form payload.

    // Replicate (digest form).
    bool repl_has_digest = false;
    std::int64_t repl_digest_count = 0;  //!< Entries behind the digest.
    std::uint64_t repl_digest_fp = 0;    //!< XOR of mixed key hashes.
};

/** An error response for @p msg (op-independent). */
RpcResponse rpcErrorResponse(const std::string &msg,
                             RpcErrorCode code = RpcErrorCode::None);

std::string responseToJsonLine(const RpcResponse &resp);

/** False + @p err on malformed input; @p out untouched on failure. */
bool responseFromJsonLine(const std::string &line, RpcResponse &out,
                          std::string *err);

} // namespace mopt

#endif // MOPT_RPC_PROTOCOL_HH
