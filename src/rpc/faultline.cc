#include "rpc/faultline.hh"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <utility>

#include "common/logging.hh"

namespace mopt {

namespace {

/** Poll granularity of the pump loops: small enough that stop() is
 *  prompt, large enough not to spin. */
constexpr long kPumpSliceMs = 50;

} // namespace

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::Delay: return "delay";
    case FaultKind::Drop: return "drop";
    case FaultKind::PartialWrite: return "partial_write";
    case FaultKind::Garbage: return "garbage";
    case FaultKind::Blackhole: return "blackhole";
    case FaultKind::Flapping: return "flapping";
    }
    panic("faultKindName: bad kind");
}

FaultlineProxy::FaultlineProxy(FaultlineOptions options)
    : options_(std::move(options))
{}

FaultlineProxy::~FaultlineProxy()
{
    stop();
}

bool
FaultlineProxy::start(std::string *err)
{
    if (!listener_.listenOn("127.0.0.1", 0, err))
        return false;
    flap_epoch_ = std::chrono::steady_clock::now();
    started_.store(true, std::memory_order_release);
    accept_thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
FaultlineProxy::stop()
{
    if (stopping_.exchange(true, std::memory_order_acq_rel))
        return;
    listener_.close();
    if (accept_thread_.joinable())
        accept_thread_.join();
    std::vector<std::thread> pumps;
    {
        std::lock_guard<std::mutex> lock(mu_);
        pumps.swap(pumps_);
    }
    // Pump loops poll in kPumpSliceMs slices and observe stopping_,
    // so the join is bounded.
    for (std::thread &t : pumps)
        if (t.joinable())
            t.join();
}

FaultlineStats
FaultlineProxy::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
FaultlineProxy::acceptLoop()
{
    Rng schedule_rng(options_.seed);
    std::int64_t index = 0;
    for (;;) {
        TcpSocket client = listener_.accept();
        if (!client.valid())
            return; // stop() closed the listener.
        FaultKind kind = FaultKind::None;
        if (!options_.schedule.empty())
            kind = options_.schedule[static_cast<std::size_t>(
                index % static_cast<std::int64_t>(
                            options_.schedule.size()))];
        ++index;
        // Each connection gets an independent deterministic stream:
        // same seed + same accept order = same garbage bytes.
        Rng conn_rng = schedule_rng.split();
        std::lock_guard<std::mutex> lock(mu_);
        stats_.connections++;
        switch (kind) {
        case FaultKind::None: break;
        case FaultKind::Delay: stats_.delays++; break;
        case FaultKind::Drop: stats_.drops++; break;
        case FaultKind::PartialWrite: stats_.partial_writes++; break;
        case FaultKind::Garbage: stats_.garbage++; break;
        case FaultKind::Blackhole: stats_.blackholes++; break;
        case FaultKind::Flapping: stats_.flapping++; break;
        }
        if (kind != FaultKind::None)
            stats_.faults++;
        pumps_.emplace_back(
            [this, kind, conn_rng](TcpSocket c) mutable {
                runConnection(std::move(c), kind, conn_rng);
            },
            std::move(client));
    }
}

bool
FaultlineProxy::flapDown() const
{
    const long up = options_.flap_up_ms;
    const long down = options_.flap_down_ms;
    if (up <= 0 || down <= 0)
        return false; // Degenerate duty cycle: never down.
    const long elapsed = static_cast<long>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - flap_epoch_)
            .count());
    return elapsed % (up + down) >= up;
}

void
FaultlineProxy::runConnection(TcpSocket client, FaultKind kind, Rng rng)
{
    if (kind == FaultKind::Flapping && flapDown())
        return; // Down window: refuse by closing, like a dead peer.
    if (kind == FaultKind::Blackhole) {
        // Swallow everything, answer nothing, hold the connection
        // open: the peer's only way out is its own deadline.
        char buf[4096];
        while (!stopping_.load(std::memory_order_acquire)) {
            const long n = client.recvSome(
                buf, sizeof(buf), Deadline::in(kPumpSliceMs));
            if (n == 0 || n == -1)
                return; // Peer gave up.
        }
        return;
    }

    std::string err;
    TcpSocket server = TcpSocket::connectTo(
        options_.upstream_host, options_.upstream_port, &err,
        Deadline::in(5000));
    if (!server.valid()) {
        logWarn("faultline: upstream connect failed: ", err);
        return; // Client sees the close — an honest connection drop.
    }
    pump(client, server, kind, rng);
}

void
FaultlineProxy::pump(TcpSocket &client, TcpSocket &server,
                     FaultKind kind, Rng &rng)
{
    char buf[4096];
    while (!stopping_.load(std::memory_order_acquire)) {
        if (kind == FaultKind::Flapping && flapDown())
            return; // The peer just went down, mid-stream.
        // Alternate short-deadline reads on both directions. Not as
        // slick as one poll over both fds, but the pump is test
        // infrastructure and kPumpSliceMs bounds the added latency.
        long n = client.recvSome(buf, sizeof(buf),
                                 Deadline::in(kPumpSliceMs));
        if (n > 0) {
            // Request path is always forwarded verbatim (the faults
            // under test are response-side; a dead request path is
            // just Blackhole).
            if (kind == FaultKind::Delay)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(options_.delay_ms));
            if (!server.sendAll(
                    std::string(buf, static_cast<std::size_t>(n))))
                return;
        } else if (n == 0 || n == -1) {
            return; // Client closed; cut both (RAII).
        }

        n = server.recvSome(buf, sizeof(buf),
                            Deadline::in(kPumpSliceMs));
        if (n == 0 || n == -1)
            return; // Server closed.
        if (n == TcpSocket::kTimedOut)
            continue;
        const std::string chunk(buf, static_cast<std::size_t>(n));
        switch (kind) {
        case FaultKind::None:
            if (!client.sendAll(chunk))
                return;
            break;
        case FaultKind::Delay:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(options_.delay_ms));
            if (!client.sendAll(chunk))
                return;
            break;
        case FaultKind::Drop:
            // The server did the work; the answer dies here.
            return;
        case FaultKind::PartialWrite:
            // Torn frame, then the cut.
            client.sendAll(chunk.substr(
                0, std::min(options_.partial_bytes, chunk.size())));
            return;
        case FaultKind::Garbage: {
            // A line of printable junk: definitely a frame, definitely
            // not JSON — the parser must reject it, the client must
            // drop the stream.
            std::string junk;
            junk.reserve(32);
            for (int i = 0; i < 24; ++i)
                junk.push_back(static_cast<char>(
                    rng.uniformInt('!', '~')));
            junk.push_back('\n');
            client.sendAll(junk);
            return;
        }
        case FaultKind::Blackhole:
            return; // Unreachable (handled before connect).
        case FaultKind::Flapping:
            // Up window: transparent (the loop head cuts the down
            // windows).
            if (!client.sendAll(chunk))
                return;
            break;
        }
    }
}

} // namespace mopt
