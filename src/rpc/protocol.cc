#include "rpc/protocol.hh"

#include <cstdio>
#include <sstream>
#include <utility>

#include "common/json.hh"
#include "common/logging.hh"

namespace mopt {

namespace {

void
setError(std::string *err, const std::string &msg)
{
    if (err)
        *err = msg;
}

/** The problem members of a solve request (journal field names). */
void
appendProblemFields(std::ostringstream &oss, const ConvProblem &p)
{
    oss << ",\"n\":" << p.n << ",\"k\":" << p.k << ",\"c\":" << p.c
        << ",\"r\":" << p.r << ",\"s\":" << p.s << ",\"h\":" << p.h
        << ",\"w\":" << p.w << ",\"stride\":" << p.stride
        << ",\"dilation\":" << p.dilation;
    // Optional, default 1: dense-conv requests stay byte-identical to
    // the pre-groups wire format.
    if (p.groups != 1)
        oss << ",\"groups\":" << p.groups;
}

bool
problemFromJson(const JsonValue &root, ConvProblem &out, std::string *err)
{
    ConvProblem p;
    std::int64_t stride = 0, dilation = 0;
    if (!jsonGetInt(root, "n", p.n) || !jsonGetInt(root, "k", p.k) ||
        !jsonGetInt(root, "c", p.c) || !jsonGetInt(root, "r", p.r) ||
        !jsonGetInt(root, "s", p.s) || !jsonGetInt(root, "h", p.h) ||
        !jsonGetInt(root, "w", p.w) ||
        !jsonGetInt(root, "stride", stride) ||
        !jsonGetInt(root, "dilation", dilation)) {
        setError(err, "solve: missing or non-integer shape field");
        return false;
    }
    p.stride = static_cast<int>(stride);
    p.dilation = static_cast<int>(dilation);
    if (root.find("groups") && !jsonGetInt(root, "groups", p.groups)) {
        setError(err, "solve: non-integer \"groups\"");
        return false;
    }
    try {
        p.validate();
    } catch (const FatalError &e) {
        setError(err, std::string("solve: invalid shape: ") + e.what());
        return false;
    }
    out = std::move(p);
    return true;
}

/** Optional hex-fingerprint member; absent parses as 0 (skip check). */
bool
fingerprintFromJson(const JsonValue &root, const char *key,
                    std::uint64_t &out, std::string *err)
{
    const JsonValue *v = root.find(key);
    if (!v) {
        out = 0;
        return true;
    }
    if (!v->isString() || !jsonParseHex16(v->str, out)) {
        setError(err, std::string(key) + ": expected 16 hex digits");
        return false;
    }
    return true;
}

void
appendFingerprints(std::ostringstream &oss, std::uint64_t machine_fp,
                   std::uint64_t settings_fp)
{
    if (machine_fp)
        oss << ",\"machine\":\"" << jsonHex16(machine_fp) << "\"";
    if (settings_fp)
        oss << ",\"settings\":\"" << jsonHex16(settings_fp) << "\"";
}

/** One solved layer: {"cache":"hit","record":{...}}. */
void
appendSolveResult(std::ostringstream &oss, const RpcSolveResult &r)
{
    oss << "{\"cache\":\"" << (r.cache_hit ? "hit" : "miss")
        << "\",\"record\":" << solutionToJsonLine(r.key, r.sol) << "}";
}

bool
solveResultFromJson(const JsonValue &v, RpcSolveResult &out,
                    std::string *err)
{
    std::string cache;
    if (!v.isObject() || !jsonGetString(v, "cache", cache) ||
        (cache != "hit" && cache != "miss")) {
        setError(err, "solve result: missing cache provenance");
        return false;
    }
    const JsonValue *rec = v.find("record");
    RpcSolveResult r;
    if (!rec || !solutionFromJson(*rec, r.key, r.sol)) {
        setError(err, "solve result: bad record");
        return false;
    }
    r.cache_hit = cache == "hit";
    out = std::move(r);
    return true;
}

RpcErrorCode
errorCodeFromName(const std::string &name)
{
    if (name == "overloaded")
        return RpcErrorCode::Overloaded;
    if (name == "deadline_exceeded")
        return RpcErrorCode::DeadlineExceeded;
    // Unknown codes read as None: a newer server's refinement of
    // "refused" must not change an old client's (fatal) handling.
    return RpcErrorCode::None;
}

bool
opFromName(const std::string &name, RpcOp &out)
{
    if (name == "solve")
        out = RpcOp::Solve;
    else if (name == "solve_network")
        out = RpcOp::SolveNetwork;
    else if (name == "stats")
        out = RpcOp::Stats;
    else if (name == "shutdown")
        out = RpcOp::Shutdown;
    else if (name == "replicate")
        out = RpcOp::Replicate;
    else if (name == "ping")
        out = RpcOp::Ping;
    else
        return false;
    return true;
}

} // namespace

std::string
rpcOpName(RpcOp op)
{
    switch (op) {
    case RpcOp::Solve: return "solve";
    case RpcOp::SolveNetwork: return "solve_network";
    case RpcOp::Stats: return "stats";
    case RpcOp::Shutdown: return "shutdown";
    case RpcOp::Replicate: return "replicate";
    case RpcOp::Ping: return "ping";
    }
    panic("rpcOpName: bad op");
}

std::string
rpcErrorCodeName(RpcErrorCode code)
{
    switch (code) {
    case RpcErrorCode::None: return "";
    case RpcErrorCode::Overloaded: return "overloaded";
    case RpcErrorCode::DeadlineExceeded: return "deadline_exceeded";
    }
    panic("rpcErrorCodeName: bad code");
}

std::string
requestToJsonLine(const RpcRequest &req)
{
    std::ostringstream oss;
    oss << "{\"v\":" << req.v << ",\"op\":\"" << rpcOpName(req.op)
        << "\"";
    appendFingerprints(oss, req.machine_fp, req.settings_fp);
    // Optional, default 0 = none: deadline-less requests stay
    // byte-identical to the pre-deadline wire format.
    if (req.deadline_ms > 0)
        oss << ",\"deadline_ms\":" << req.deadline_ms;
    switch (req.op) {
    case RpcOp::Solve:
        appendProblemFields(oss, req.problem);
        break;
    case RpcOp::SolveNetwork:
        if (req.has_ir)
            oss << ",\"ir\":" << networkDefToJson(req.ir);
        else
            oss << ",\"net\":\"" << jsonEscape(req.net) << "\"";
        if (req.batch != 1)
            oss << ",\"batch\":" << req.batch;
        break;
    case RpcOp::Replicate:
        if (req.repl_digest)
            oss << ",\"digest\":1";
        else if (req.repl_pull)
            oss << ",\"pull\":1";
        else
            oss << ",\"record\":"
                << solutionToJsonLine(req.repl_key, req.repl_sol, 0,
                                      req.repl_seq);
        // Optional cursors, absent by default: a full unfiltered pull
        // stays byte-identical to the PR 9 wire format.
        if ((req.repl_digest || req.repl_pull) && req.repl_since >= 0)
            oss << ",\"since\":" << req.repl_since;
        if ((req.repl_digest || req.repl_pull) && req.repl_for >= 0)
            oss << ",\"for\":" << req.repl_for;
        break;
    case RpcOp::Stats:
    case RpcOp::Shutdown:
    case RpcOp::Ping:
        break;
    }
    oss << "}";
    return oss.str();
}

bool
requestFromJsonLine(const std::string &line, RpcRequest &out,
                    std::string *err)
{
    JsonValue root;
    if (!jsonParse(line, root) || !root.isObject()) {
        setError(err, "request is not a JSON object");
        return false;
    }
    RpcRequest req;
    // Version gate first: a future major version may rename every
    // other field, so nothing else is interpreted until the request
    // is known to speak our dialect. Absent = 1 (pre-versioning
    // clients).
    if (root.find("v") && !jsonGetInt(root, "v", req.v)) {
        setError(err, "\"v\": expected an integer protocol version");
        return false;
    }
    if (req.v != kRpcProtocolVersion) {
        setError(err, "unsupported protocol version v=" +
                          std::to_string(req.v) +
                          " (this server speaks v=" +
                          std::to_string(kRpcProtocolVersion) + ")");
        return false;
    }
    std::string op_name;
    if (!jsonGetString(root, "op", op_name)) {
        setError(err, "request has no \"op\"");
        return false;
    }
    if (!opFromName(op_name, req.op)) {
        setError(err, "unknown op \"" + op_name + "\"");
        return false;
    }
    if (!fingerprintFromJson(root, "machine", req.machine_fp, err) ||
        !fingerprintFromJson(root, "settings", req.settings_fp, err))
        return false;
    if (root.find("deadline_ms") &&
        (!jsonGetInt(root, "deadline_ms", req.deadline_ms) ||
         req.deadline_ms < 0)) {
        setError(err, "\"deadline_ms\": expected a non-negative "
                      "integer");
        return false;
    }
    switch (req.op) {
    case RpcOp::Solve:
        if (!problemFromJson(root, req.problem, err))
            return false;
        break;
    case RpcOp::SolveNetwork: {
        const JsonValue *ir = root.find("ir");
        if (ir) {
            if (root.find("net")) {
                setError(err, "solve_network: \"net\" and \"ir\" are "
                              "mutually exclusive");
                return false;
            }
            std::string ir_err;
            if (!networkDefFromJson(*ir, req.ir, &ir_err)) {
                setError(err, "solve_network: bad \"ir\": " + ir_err);
                return false;
            }
            req.has_ir = true;
        } else if (!jsonGetString(root, "net", req.net) ||
                   req.net.empty()) {
            setError(err, "solve_network: missing \"net\" or \"ir\"");
            return false;
        }
        if (root.find("batch") &&
            (!jsonGetInt(root, "batch", req.batch) || req.batch < 1)) {
            setError(err, "solve_network: \"batch\" must be a positive "
                          "integer");
            return false;
        }
        break;
    }
    case RpcOp::Replicate: {
        if (root.find("pull")) {
            std::int64_t pull = 0;
            if (!jsonGetInt(root, "pull", pull)) {
                setError(err, "replicate: non-integer \"pull\"");
                return false;
            }
            req.repl_pull = pull != 0;
        }
        if (root.find("digest")) {
            std::int64_t digest = 0;
            if (!jsonGetInt(root, "digest", digest)) {
                setError(err, "replicate: non-integer \"digest\"");
                return false;
            }
            req.repl_digest = digest != 0;
        }
        if (root.find("since") &&
            (!jsonGetInt(root, "since", req.repl_since) ||
             req.repl_since < 0)) {
            setError(err, "replicate: \"since\" must be a non-negative "
                          "integer");
            return false;
        }
        if (root.find("for") &&
            (!jsonGetInt(root, "for", req.repl_for) ||
             req.repl_for < 0)) {
            setError(err, "replicate: \"for\" must be a non-negative "
                          "integer");
            return false;
        }
        const JsonValue *rec = root.find("record");
        if (rec) {
            if (!solutionFromJson(*rec, req.repl_key, req.repl_sol,
                                  nullptr, &req.repl_seq)) {
                setError(err, "replicate: bad \"record\"");
                return false;
            }
            req.has_record = true;
        }
        if (!req.repl_pull && !req.repl_digest && !req.has_record) {
            setError(err, "replicate: missing \"record\", \"pull\", "
                          "or \"digest\"");
            return false;
        }
        break;
    }
    case RpcOp::Stats:
    case RpcOp::Shutdown:
    case RpcOp::Ping:
        break;
    }
    out = std::move(req);
    return true;
}

RpcResponse
rpcErrorResponse(const std::string &msg, RpcErrorCode code)
{
    RpcResponse resp;
    resp.ok = false;
    resp.error = msg;
    resp.code = code;
    return resp;
}

std::string
responseToJsonLine(const RpcResponse &resp)
{
    std::ostringstream oss;
    if (!resp.ok) {
        oss << "{\"ok\":false,\"error\":\"" << jsonEscape(resp.error)
            << "\"";
        if (resp.code != RpcErrorCode::None)
            oss << ",\"code\":\"" << rpcErrorCodeName(resp.code)
                << "\"";
        oss << "}";
        return oss.str();
    }
    oss << "{\"ok\":true,\"op\":\"" << rpcOpName(resp.op) << "\"";
    char num[32];
    switch (resp.op) {
    case RpcOp::Solve:
        oss << ",\"cache\":\"" << (resp.solve.cache_hit ? "hit" : "miss")
            << "\"";
        std::snprintf(num, sizeof(num), "%.17g", resp.solve_seconds);
        oss << ",\"solve_s\":" << num
            << ",\"record\":" << solutionToJsonLine(resp.solve.key,
                                                    resp.solve.sol);
        break;
    case RpcOp::SolveNetwork:
        oss << ",\"plan\":\"" << jsonEscape(resp.plan_text) << "\""
            << ",\"unique\":" << resp.unique_shapes
            << ",\"hits\":" << resp.cache_hits
            << ",\"misses\":" << resp.cache_misses
            << ",\"evals\":" << resp.solver_evals;
        std::snprintf(num, sizeof(num), "%.17g", resp.solve_seconds);
        oss << ",\"solve_s\":" << num << ",\"layers\":[";
        for (std::size_t i = 0; i < resp.layers.size(); ++i) {
            if (i)
                oss << ",";
            appendSolveResult(oss, resp.layers[i]);
        }
        oss << "]";
        break;
    case RpcOp::Stats:
        oss << ",\"machine\":\"" << jsonHex16(resp.machine_fp) << "\""
            << ",\"settings\":\"" << jsonHex16(resp.settings_fp) << "\""
            << ",\"machine_name\":\"" << jsonEscape(resp.machine_name)
            << "\",\"entries\":" << resp.entries
            << ",\"shards\":" << resp.shards
            << ",\"lookups_hit\":" << resp.cache.hits
            << ",\"lookups_miss\":" << resp.cache.misses
            << ",\"inserts\":" << resp.cache.inserts
            << ",\"evictions\":" << resp.cache.evictions
            << ",\"journal_loaded\":" << resp.cache.journal_loaded
            << ",\"journal_skipped\":" << resp.cache.journal_skipped
            << ",\"sched_solves\":" << resp.sched_solves
            << ",\"sched_coalesced\":" << resp.sched_coalesced
            << ",\"sched_inflight\":" << resp.sched_inflight
            << ",\"sched_peak\":" << resp.sched_peak
            << ",\"sched_budget\":" << resp.sched_budget
            << ",\"srv_shed_overload\":" << resp.srv_shed_overload
            << ",\"srv_shed_client\":" << resp.srv_shed_client
            << ",\"srv_shed_deadline\":" << resp.srv_shed_deadline
            << ",\"calib_samples\":" << resp.calib_samples
            << ",\"calib_active\":" << resp.calib_active
            << ",\"srv_repl_pushed\":" << resp.srv_repl_pushed
            << ",\"srv_repl_push_failed\":" << resp.srv_repl_push_failed
            << ",\"srv_repl_applied\":" << resp.srv_repl_applied
            << ",\"srv_repl_prefetched\":" << resp.srv_repl_prefetched
            << ",\"repl_queue_depth\":" << resp.repl_queue_depth
            << ",\"journal_seq\":" << resp.journal_seq
            << ",\"entry_hits\":[";
        for (std::size_t i = 0; i < resp.entry_hits.size(); ++i) {
            if (i)
                oss << ",";
            oss << "{\"key\":\"" << jsonEscape(resp.entry_hits[i].key)
                << "\",\"hits\":" << resp.entry_hits[i].hits << "}";
        }
        oss << "]";
        break;
    case RpcOp::Replicate:
        if (resp.repl_has_digest) {
            oss << ",\"count\":" << resp.repl_digest_count
                << ",\"fp\":\"" << jsonHex16(resp.repl_digest_fp)
                << "\"";
        } else if (resp.repl_is_pull) {
            oss << ",\"records\":[";
            for (std::size_t i = 0; i < resp.repl_records.size(); ++i) {
                if (i)
                    oss << ",";
                oss << solutionToJsonLine(resp.repl_records[i].key,
                                          resp.repl_records[i].sol, 0,
                                          resp.repl_records[i].seq);
            }
            oss << "]";
        } else {
            oss << ",\"applied\":" << resp.repl_applied;
        }
        break;
    case RpcOp::Shutdown:
    case RpcOp::Ping:
        break;
    }
    oss << "}";
    return oss.str();
}

bool
responseFromJsonLine(const std::string &line, RpcResponse &out,
                     std::string *err)
{
    JsonValue root;
    if (!jsonParse(line, root) || !root.isObject()) {
        setError(err, "response is not a JSON object");
        return false;
    }
    const JsonValue *ok = root.find("ok");
    if (!ok || ok->type != JsonValue::Type::Bool) {
        setError(err, "response has no \"ok\"");
        return false;
    }
    RpcResponse resp;
    resp.ok = ok->b;
    if (!resp.ok) {
        jsonGetString(root, "error", resp.error);
        if (resp.error.empty())
            resp.error = "unspecified server error";
        std::string code;
        if (jsonGetString(root, "code", code))
            resp.code = errorCodeFromName(code);
        out = std::move(resp);
        return true;
    }
    std::string op_name;
    if (!jsonGetString(root, "op", op_name) ||
        !opFromName(op_name, resp.op)) {
        setError(err, "response has no valid \"op\"");
        return false;
    }
    switch (resp.op) {
    case RpcOp::Solve: {
        // Same shape as one solve_network layer, flattened.
        if (!solveResultFromJson(root, resp.solve, err))
            return false;
        const JsonValue *s = root.find("solve_s");
        if (!s || !s->isNumber() || s->num < 0) {
            setError(err, "solve: missing solve_s");
            return false;
        }
        resp.solve_seconds = s->num;
        break;
    }
    case RpcOp::SolveNetwork: {
        if (!jsonGetString(root, "plan", resp.plan_text) ||
            !jsonGetInt(root, "unique", resp.unique_shapes) ||
            !jsonGetInt(root, "hits", resp.cache_hits) ||
            !jsonGetInt(root, "misses", resp.cache_misses) ||
            !jsonGetInt(root, "evals", resp.solver_evals)) {
            setError(err, "solve_network: missing summary fields");
            return false;
        }
        const JsonValue *s = root.find("solve_s");
        if (!s || !s->isNumber() || s->num < 0) {
            setError(err, "solve_network: missing solve_s");
            return false;
        }
        resp.solve_seconds = s->num;
        const JsonValue *layers = root.find("layers");
        if (!layers || !layers->isArray()) {
            setError(err, "solve_network: missing layers");
            return false;
        }
        resp.layers.reserve(layers->arr.size());
        for (const JsonValue &v : layers->arr) {
            RpcSolveResult r;
            if (!solveResultFromJson(v, r, err))
                return false;
            resp.layers.push_back(std::move(r));
        }
        break;
    }
    case RpcOp::Stats: {
        if (!fingerprintFromJson(root, "machine", resp.machine_fp,
                                 err) ||
            !fingerprintFromJson(root, "settings", resp.settings_fp, err))
            return false;
        jsonGetString(root, "machine_name", resp.machine_name);
        std::int64_t shards = 0;
        if (!jsonGetInt(root, "entries", resp.entries) ||
            !jsonGetInt(root, "shards", shards) ||
            !jsonGetInt(root, "lookups_hit", resp.cache.hits) ||
            !jsonGetInt(root, "lookups_miss", resp.cache.misses) ||
            !jsonGetInt(root, "inserts", resp.cache.inserts) ||
            !jsonGetInt(root, "evictions", resp.cache.evictions) ||
            !jsonGetInt(root, "journal_loaded",
                        resp.cache.journal_loaded) ||
            !jsonGetInt(root, "journal_skipped",
                        resp.cache.journal_skipped)) {
            setError(err, "stats: missing counter fields");
            return false;
        }
        resp.shards = static_cast<int>(shards);
        // Scheduler and admission counters are optional: an older
        // server simply doesn't send them, and 0 is the honest
        // reading.
        for (const auto &[key, dst] :
             {std::pair<const char *, std::int64_t *>{
                  "sched_solves", &resp.sched_solves},
              {"sched_coalesced", &resp.sched_coalesced},
              {"sched_inflight", &resp.sched_inflight},
              {"sched_peak", &resp.sched_peak},
              {"sched_budget", &resp.sched_budget},
              {"srv_shed_overload", &resp.srv_shed_overload},
              {"srv_shed_client", &resp.srv_shed_client},
              {"srv_shed_deadline", &resp.srv_shed_deadline},
              {"calib_samples", &resp.calib_samples},
              {"calib_active", &resp.calib_active},
              {"srv_repl_pushed", &resp.srv_repl_pushed},
              {"srv_repl_push_failed", &resp.srv_repl_push_failed},
              {"srv_repl_applied", &resp.srv_repl_applied},
              {"srv_repl_prefetched", &resp.srv_repl_prefetched},
              {"repl_queue_depth", &resp.repl_queue_depth},
              {"journal_seq", &resp.journal_seq}}) {
            if (root.find(key) && !jsonGetInt(root, key, *dst)) {
                setError(err, std::string("stats: bad ") + key);
                return false;
            }
        }
        const JsonValue *eh = root.find("entry_hits");
        if (!eh || !eh->isArray()) {
            setError(err, "stats: missing entry_hits");
            return false;
        }
        for (const JsonValue &v : eh->arr) {
            RpcEntryHits row;
            if (!v.isObject() || !jsonGetString(v, "key", row.key) ||
                !jsonGetInt(v, "hits", row.hits)) {
                setError(err, "stats: bad entry_hits row");
                return false;
            }
            resp.entry_hits.push_back(std::move(row));
        }
        break;
    }
    case RpcOp::Replicate: {
        const JsonValue *recs = root.find("records");
        const JsonValue *fp = root.find("fp");
        if (fp) {
            if (!fp->isString() ||
                !jsonParseHex16(fp->str, resp.repl_digest_fp) ||
                !jsonGetInt(root, "count", resp.repl_digest_count) ||
                resp.repl_digest_count < 0) {
                setError(err, "replicate: bad digest");
                return false;
            }
            resp.repl_has_digest = true;
        } else if (recs) {
            if (!recs->isArray()) {
                setError(err, "replicate: bad records");
                return false;
            }
            resp.repl_is_pull = true;
            resp.repl_records.reserve(recs->arr.size());
            for (const JsonValue &v : recs->arr) {
                RpcReplRecord r;
                if (!solutionFromJson(v, r.key, r.sol, nullptr,
                                      &r.seq)) {
                    setError(err, "replicate: bad record in records");
                    return false;
                }
                resp.repl_records.push_back(std::move(r));
            }
        } else if (root.find("applied") &&
                   !jsonGetInt(root, "applied", resp.repl_applied)) {
            setError(err, "replicate: bad applied");
            return false;
        }
        break;
    }
    case RpcOp::Shutdown:
    case RpcOp::Ping:
        break;
    }
    out = std::move(resp);
    return true;
}

} // namespace mopt
