#include "rpc/server.hh"

#include <algorithm>
#include <utility>

#include <sys/socket.h>

#include "common/logging.hh"
#include "frontend/registry.hh"
#include "service/cache_key.hh"

namespace mopt {

Server::Server(const MachineSpec &machine, const OptimizerOptions &opts,
               SolutionCache *cache, ServerOptions options)
    : machine_(machine), opts_(opts), cache_(cache),
      options_([&options] {
          options.workers = std::max(1, options.workers);
          options.solve_concurrency =
              std::max(1, options.solve_concurrency);
          options.max_pending_conns =
              std::max(1, options.max_pending_conns);
          options.max_per_client = std::max(0, options.max_per_client);
          return std::move(options);
      }()),
      scheduler_(machine_, opts_, cache_,
                 SolveSchedulerOptions{options_.solve_concurrency}),
      optimizer_(machine_, opts_, cache_, &scheduler_),
      machine_fp_(CacheKey::machineFingerprint(machine_)),
      settings_fp_(CacheKey::settingsFingerprint(opts_))
{}

Server::~Server()
{
    stop();
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queue_closed_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();
}

bool
Server::start(std::string *err)
{
    if (!listener_.listenOn(options_.host, options_.port, err))
        return false;
    workers_.reserve(static_cast<std::size_t>(options_.workers));
    for (int i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    return true;
}

std::int64_t
Server::serve()
{
    std::int64_t served = 0;
    for (;;) {
        TcpSocket conn = listener_.accept();
        if (!conn.valid())
            break; // stop() closed the listener (or a fatal error).
        ++served;
        counters_.connections.fetch_add(1, std::memory_order_relaxed);
        bool admitted = false;
        {
            std::lock_guard<std::mutex> lock(queue_mu_);
            if (static_cast<int>(queue_.size()) <
                options_.max_pending_conns) {
                queue_.push_back(std::move(conn));
                admitted = true;
            }
        }
        if (admitted) {
            queue_cv_.notify_one();
        } else {
            // Every worker is busy and the backlog is full: refuse
            // now, explicitly, rather than let the queue (and every
            // queued client's latency) grow without bound.
            counters_.shed_overload.fetch_add(
                1, std::memory_order_relaxed);
            shedConnection(std::move(conn),
                           "server overloaded: pending-connection "
                           "budget (" +
                               std::to_string(
                                   options_.max_pending_conns) +
                               ") exhausted");
        }
    }
    {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queue_closed_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();
    workers_.clear();
    return served;
}

void
Server::stop()
{
    if (stopping_.exchange(true, std::memory_order_acq_rel))
        return;
    listener_.close();
    // Read-side half-close of in-flight connections: workers blocked
    // in recv see EOF and drain, but a response mid-write still
    // flushes (SHUT_RDWR would truncate it — the client would see a
    // transport error on work the server actually finished). Guarded
    // by conns_mu_: fds are unregistered before they are closed, so
    // we never shut down a recycled descriptor.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const int fd : conn_fds_)
        ::shutdown(fd, SHUT_RD);
}

void
Server::shedConnection(TcpSocket conn, const std::string &msg)
{
    const RpcResponse resp =
        rpcErrorResponse(msg, RpcErrorCode::Overloaded);
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    conn.sendAll(responseToJsonLine(resp) + "\n",
                 Deadline::in(options_.shed_write_ms));
    // RAII closes the socket; a client too slow to take the error
    // line just sees the close.
}

void
Server::workerLoop()
{
    for (;;) {
        TcpSocket conn;
        {
            std::unique_lock<std::mutex> lock(queue_mu_);
            queue_cv_.wait(lock, [this] {
                return !queue_.empty() || queue_closed_;
            });
            if (queue_.empty())
                return; // Closed and drained.
            conn = std::move(queue_.front());
            queue_.pop_front();
        }
        if (stopping())
            continue; // Drop queued connections during shutdown.
        handleConnection(std::move(conn));
    }
}

void
Server::handleConnection(TcpSocket conn)
{
    const int fd = conn.fd();
    {
        // Register-then-recheck under the same lock stop() takes:
        // either stop() sees this fd in the set and half-closes it,
        // or we see stopping() here — no window where an idle client
        // could keep a worker (and thus serve()'s join) blocked.
        std::lock_guard<std::mutex> lock(conns_mu_);
        conn_fds_.insert(fd);
        if (stopping()) {
            conn_fds_.erase(fd);
            return;
        }
    }

    // Per-client admission: cap concurrent connections per peer host
    // (ports stripped — one client opens many ephemeral ports) so a
    // single runaway client cannot occupy every worker.
    std::string client_ip;
    if (options_.max_per_client > 0) {
        client_ip = conn.peerAddress();
        const std::size_t colon = client_ip.rfind(':');
        if (colon != std::string::npos)
            client_ip.erase(colon);
        bool over = false;
        {
            std::lock_guard<std::mutex> lock(clients_mu_);
            over = ++client_conns_[client_ip] >
                   options_.max_per_client;
        }
        if (over) {
            {
                std::lock_guard<std::mutex> lock(clients_mu_);
                --client_conns_[client_ip];
            }
            {
                std::lock_guard<std::mutex> lock(conns_mu_);
                conn_fds_.erase(fd);
            }
            counters_.shed_client.fetch_add(1,
                                            std::memory_order_relaxed);
            shedConnection(std::move(conn),
                           "server overloaded: per-client connection "
                           "cap (" +
                               std::to_string(options_.max_per_client) +
                               ") reached");
            return;
        }
    }

    LineReader reader(conn, options_.max_request_bytes);
    std::string line;
    for (;;) {
        const LineReader::Status st = reader.readLine(line);
        if (st == LineReader::Status::Eof ||
            st == LineReader::Status::Error)
            break;
        if (st == LineReader::Status::TooLong) {
            // Framing is gone; answer once and drop the stream.
            counters_.errors.fetch_add(1, std::memory_order_relaxed);
            conn.sendAll(responseToJsonLine(rpcErrorResponse(
                             "request exceeds " +
                             std::to_string(options_.max_request_bytes) +
                             " bytes")) +
                         "\n");
            break;
        }
        if (line.find_first_not_of(" \t") == std::string::npos)
            continue; // Blank keep-alive lines are harmless.
        counters_.requests.fetch_add(1, std::memory_order_relaxed);

        RpcRequest req;
        std::string perr;
        RpcResponse resp;
        if (!requestFromJsonLine(line, req, &perr)) {
            // A bad line is the client's bug, not a framing loss: the
            // next newline re-synchronizes, so keep the connection.
            resp = rpcErrorResponse(perr);
        } else {
            resp = handle(req);
        }
        if (!resp.ok)
            counters_.errors.fetch_add(1, std::memory_order_relaxed);
        if (!conn.sendAll(responseToJsonLine(resp) + "\n"))
            break;
        if (resp.ok && req.op == RpcOp::Shutdown) {
            stop();
            break;
        }
    }
    if (options_.max_per_client > 0) {
        std::lock_guard<std::mutex> lock(clients_mu_);
        if (--client_conns_[client_ip] == 0)
            client_conns_.erase(client_ip);
    }
    {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conn_fds_.erase(fd);
    }
}

bool
Server::checkIdentity(const RpcRequest &req, RpcResponse &resp) const
{
    if (req.machine_fp && req.machine_fp != machine_fp_) {
        resp = rpcErrorResponse(
            "machine fingerprint mismatch: server optimizes for " +
            machine_.name + " (" + jsonHex16(machine_fp_) + ")");
        return false;
    }
    if (req.settings_fp && req.settings_fp != settings_fp_) {
        resp = rpcErrorResponse(
            "settings fingerprint mismatch: server solves with " +
            jsonHex16(settings_fp_));
        return false;
    }
    return true;
}

RpcResponse
Server::handle(const RpcRequest &req)
{
    // The client sends its *remaining* budget at send time; the clock
    // on it starts here. Network transit time is the client's margin
    // to keep (it knows its own absolute deadline, we don't).
    const Deadline dl = req.deadline_ms > 0
                            ? Deadline::in(req.deadline_ms)
                            : Deadline::never();
    try {
        switch (req.op) {
        case RpcOp::Solve: return handleSolve(req, dl);
        case RpcOp::SolveNetwork: return handleSolveNetwork(req, dl);
        case RpcOp::Stats: return handleStats();
        case RpcOp::Shutdown: {
            RpcResponse resp;
            resp.ok = true;
            resp.op = RpcOp::Shutdown;
            return resp;
        }
        }
        return rpcErrorResponse("unhandled op");
    } catch (const DeadlineExceeded &e) {
        // Machine-readable: the client's own budget ran out, which is
        // not the server's failure — retrying with the same budget on
        // a warmer cache may well succeed.
        counters_.shed_deadline.fetch_add(1, std::memory_order_relaxed);
        return rpcErrorResponse(e.what(),
                                RpcErrorCode::DeadlineExceeded);
    } catch (const FatalError &e) {
        // User-level failures (unknown network name, ...) belong on
        // the wire, not in the server's lap.
        return rpcErrorResponse(e.what());
    }
}

RpcResponse
Server::handleSolve(const RpcRequest &req, const Deadline &dl)
{
    RpcResponse resp;
    if (!checkIdentity(req, resp))
        return resp;
    resp.ok = true;
    resp.op = RpcOp::Solve;
    // The scheduler handles the whole miss path: cache lookup,
    // coalescing with any in-flight solve of this key (this worker
    // then blocks on the shared future), or a fresh bounded-
    // concurrency solve. A coalesced request reports a miss with
    // zero solve time — the flight's leader paid for it. The wait is
    // deadline-bounded; an abandoned flight still lands in the cache.
    const SolveTicket ticket = scheduler_.submit(req.problem);
    ScheduledSolve r;
    if (!ticket.waitFor(dl, r))
        throw DeadlineExceeded("solve ran past its deadline");
    resp.solve =
        RpcSolveResult{std::move(r.key), std::move(r.sol), r.cache_hit};
    resp.solve_seconds = r.solve_seconds;
    return resp;
}

RpcResponse
Server::handleSolveNetwork(const RpcRequest &req, const Deadline &dl)
{
    RpcResponse resp;
    if (!checkIdentity(req, resp))
        return resp;
    // Name or inline IR, at the request's batch size: an absent wire
    // batch is 1, so legacy name-only requests keep their semantics.
    NetworkDef def = req.has_ir ? req.ir : networkDefByName(req.net);
    def.batch = req.batch;
    const std::vector<ConvProblem> net = def.lower();

    // No lock: the optimizer submits its miss groups to the shared
    // scheduler, so concurrent network solves pipeline and their
    // overlapping shapes coalesce fleet-wide. Throws DeadlineExceeded
    // past dl (handle() turns that into the wire code).
    const NetworkPlan plan = optimizer_.optimize(net, dl);
    resp.ok = true;
    resp.op = RpcOp::SolveNetwork;
    resp.plan_text = plan.str();
    resp.unique_shapes =
        static_cast<std::int64_t>(plan.stats.unique_shapes);
    resp.cache_hits = static_cast<std::int64_t>(plan.stats.cache_hits);
    resp.cache_misses =
        static_cast<std::int64_t>(plan.stats.cache_misses);
    resp.solver_evals = plan.stats.solver_evals;
    resp.solve_seconds = plan.stats.solve_seconds;
    resp.layers.reserve(plan.layers.size());
    for (const LayerPlan &lp : plan.layers) {
        RpcSolveResult r;
        r.key = CacheKey::make(lp.problem, machine_, opts_);
        r.sol = CachedSolution{lp.best.config,
                               lp.best.predicted.total_seconds,
                               lp.best.perm_label};
        r.cache_hit = lp.cache_hit;
        resp.layers.push_back(std::move(r));
    }
    return resp;
}

RpcResponse
Server::handleStats()
{
    RpcResponse resp;
    resp.ok = true;
    resp.op = RpcOp::Stats;
    resp.machine_fp = machine_fp_;
    resp.settings_fp = settings_fp_;
    resp.machine_name = machine_.name;
    if (cache_) {
        resp.cache = cache_->stats();
        resp.entries = static_cast<std::int64_t>(cache_->size());
        resp.shards = cache_->shardCount();
        for (const SolutionCacheEntryStats &e : cache_->entryStats())
            resp.entry_hits.push_back(
                RpcEntryHits{e.key.str(), e.hits});
    }
    const SolveSchedulerStats ss = scheduler_.stats();
    resp.sched_solves = ss.solves;
    resp.sched_coalesced = ss.coalesced;
    resp.sched_inflight = ss.in_flight;
    resp.sched_peak = ss.peak_concurrency;
    resp.sched_budget = scheduler_.concurrency();
    resp.srv_shed_overload =
        counters_.shed_overload.load(std::memory_order_relaxed);
    resp.srv_shed_client =
        counters_.shed_client.load(std::memory_order_relaxed);
    resp.srv_shed_deadline =
        counters_.shed_deadline.load(std::memory_order_relaxed);
    resp.calib_samples = options_.calib_samples;
    resp.calib_active = options_.calib_active ? 1 : 0;
    return resp;
}

} // namespace mopt
